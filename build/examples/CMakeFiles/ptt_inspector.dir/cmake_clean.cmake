file(REMOVE_RECURSE
  "CMakeFiles/ptt_inspector.dir/ptt_inspector.cpp.o"
  "CMakeFiles/ptt_inspector.dir/ptt_inspector.cpp.o.d"
  "ptt_inspector"
  "ptt_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptt_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
