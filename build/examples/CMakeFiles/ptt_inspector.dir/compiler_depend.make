# Empty compiler generated dependencies file for ptt_inspector.
# This may be replaced when dependencies are built.
