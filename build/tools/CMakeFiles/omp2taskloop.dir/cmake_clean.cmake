file(REMOVE_RECURSE
  "CMakeFiles/omp2taskloop.dir/omp2taskloop/main.cpp.o"
  "CMakeFiles/omp2taskloop.dir/omp2taskloop/main.cpp.o.d"
  "omp2taskloop"
  "omp2taskloop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omp2taskloop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
