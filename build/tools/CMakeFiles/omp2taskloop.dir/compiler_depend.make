# Empty compiler generated dependencies file for omp2taskloop.
# This may be replaced when dependencies are built.
