file(REMOVE_RECURSE
  "CMakeFiles/omp2taskloop_lib.dir/omp2taskloop/convert.cpp.o"
  "CMakeFiles/omp2taskloop_lib.dir/omp2taskloop/convert.cpp.o.d"
  "libomp2taskloop_lib.a"
  "libomp2taskloop_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omp2taskloop_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
