file(REMOVE_RECURSE
  "libomp2taskloop_lib.a"
)
