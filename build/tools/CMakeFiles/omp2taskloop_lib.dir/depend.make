# Empty dependencies file for omp2taskloop_lib.
# This may be replaced when dependencies are built.
