file(REMOVE_RECURSE
  "CMakeFiles/ilan_mem.dir/mem/cache_model.cpp.o"
  "CMakeFiles/ilan_mem.dir/mem/cache_model.cpp.o.d"
  "CMakeFiles/ilan_mem.dir/mem/data_region.cpp.o"
  "CMakeFiles/ilan_mem.dir/mem/data_region.cpp.o.d"
  "CMakeFiles/ilan_mem.dir/mem/flow_network.cpp.o"
  "CMakeFiles/ilan_mem.dir/mem/flow_network.cpp.o.d"
  "CMakeFiles/ilan_mem.dir/mem/memory_system.cpp.o"
  "CMakeFiles/ilan_mem.dir/mem/memory_system.cpp.o.d"
  "libilan_mem.a"
  "libilan_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilan_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
