
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/cache_model.cpp" "src/CMakeFiles/ilan_mem.dir/mem/cache_model.cpp.o" "gcc" "src/CMakeFiles/ilan_mem.dir/mem/cache_model.cpp.o.d"
  "/root/repo/src/mem/data_region.cpp" "src/CMakeFiles/ilan_mem.dir/mem/data_region.cpp.o" "gcc" "src/CMakeFiles/ilan_mem.dir/mem/data_region.cpp.o.d"
  "/root/repo/src/mem/flow_network.cpp" "src/CMakeFiles/ilan_mem.dir/mem/flow_network.cpp.o" "gcc" "src/CMakeFiles/ilan_mem.dir/mem/flow_network.cpp.o.d"
  "/root/repo/src/mem/memory_system.cpp" "src/CMakeFiles/ilan_mem.dir/mem/memory_system.cpp.o" "gcc" "src/CMakeFiles/ilan_mem.dir/mem/memory_system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ilan_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ilan_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
