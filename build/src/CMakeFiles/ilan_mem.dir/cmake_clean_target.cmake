file(REMOVE_RECURSE
  "libilan_mem.a"
)
