# Empty compiler generated dependencies file for ilan_mem.
# This may be replaced when dependencies are built.
