# Empty compiler generated dependencies file for ilan_kernels.
# This may be replaced when dependencies are built.
