file(REMOVE_RECURSE
  "CMakeFiles/ilan_kernels.dir/kernels/bt.cpp.o"
  "CMakeFiles/ilan_kernels.dir/kernels/bt.cpp.o.d"
  "CMakeFiles/ilan_kernels.dir/kernels/cg.cpp.o"
  "CMakeFiles/ilan_kernels.dir/kernels/cg.cpp.o.d"
  "CMakeFiles/ilan_kernels.dir/kernels/ft.cpp.o"
  "CMakeFiles/ilan_kernels.dir/kernels/ft.cpp.o.d"
  "CMakeFiles/ilan_kernels.dir/kernels/lu.cpp.o"
  "CMakeFiles/ilan_kernels.dir/kernels/lu.cpp.o.d"
  "CMakeFiles/ilan_kernels.dir/kernels/lulesh.cpp.o"
  "CMakeFiles/ilan_kernels.dir/kernels/lulesh.cpp.o.d"
  "CMakeFiles/ilan_kernels.dir/kernels/matmul.cpp.o"
  "CMakeFiles/ilan_kernels.dir/kernels/matmul.cpp.o.d"
  "CMakeFiles/ilan_kernels.dir/kernels/program.cpp.o"
  "CMakeFiles/ilan_kernels.dir/kernels/program.cpp.o.d"
  "CMakeFiles/ilan_kernels.dir/kernels/registry.cpp.o"
  "CMakeFiles/ilan_kernels.dir/kernels/registry.cpp.o.d"
  "CMakeFiles/ilan_kernels.dir/kernels/sp.cpp.o"
  "CMakeFiles/ilan_kernels.dir/kernels/sp.cpp.o.d"
  "libilan_kernels.a"
  "libilan_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilan_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
