file(REMOVE_RECURSE
  "libilan_kernels.a"
)
