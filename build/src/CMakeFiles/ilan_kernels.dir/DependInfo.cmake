
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/bt.cpp" "src/CMakeFiles/ilan_kernels.dir/kernels/bt.cpp.o" "gcc" "src/CMakeFiles/ilan_kernels.dir/kernels/bt.cpp.o.d"
  "/root/repo/src/kernels/cg.cpp" "src/CMakeFiles/ilan_kernels.dir/kernels/cg.cpp.o" "gcc" "src/CMakeFiles/ilan_kernels.dir/kernels/cg.cpp.o.d"
  "/root/repo/src/kernels/ft.cpp" "src/CMakeFiles/ilan_kernels.dir/kernels/ft.cpp.o" "gcc" "src/CMakeFiles/ilan_kernels.dir/kernels/ft.cpp.o.d"
  "/root/repo/src/kernels/lu.cpp" "src/CMakeFiles/ilan_kernels.dir/kernels/lu.cpp.o" "gcc" "src/CMakeFiles/ilan_kernels.dir/kernels/lu.cpp.o.d"
  "/root/repo/src/kernels/lulesh.cpp" "src/CMakeFiles/ilan_kernels.dir/kernels/lulesh.cpp.o" "gcc" "src/CMakeFiles/ilan_kernels.dir/kernels/lulesh.cpp.o.d"
  "/root/repo/src/kernels/matmul.cpp" "src/CMakeFiles/ilan_kernels.dir/kernels/matmul.cpp.o" "gcc" "src/CMakeFiles/ilan_kernels.dir/kernels/matmul.cpp.o.d"
  "/root/repo/src/kernels/program.cpp" "src/CMakeFiles/ilan_kernels.dir/kernels/program.cpp.o" "gcc" "src/CMakeFiles/ilan_kernels.dir/kernels/program.cpp.o.d"
  "/root/repo/src/kernels/registry.cpp" "src/CMakeFiles/ilan_kernels.dir/kernels/registry.cpp.o" "gcc" "src/CMakeFiles/ilan_kernels.dir/kernels/registry.cpp.o.d"
  "/root/repo/src/kernels/sp.cpp" "src/CMakeFiles/ilan_kernels.dir/kernels/sp.cpp.o" "gcc" "src/CMakeFiles/ilan_kernels.dir/kernels/sp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ilan_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ilan_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ilan_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ilan_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ilan_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
