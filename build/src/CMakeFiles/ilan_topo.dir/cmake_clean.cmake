file(REMOVE_RECURSE
  "CMakeFiles/ilan_topo.dir/topo/builder.cpp.o"
  "CMakeFiles/ilan_topo.dir/topo/builder.cpp.o.d"
  "CMakeFiles/ilan_topo.dir/topo/format.cpp.o"
  "CMakeFiles/ilan_topo.dir/topo/format.cpp.o.d"
  "CMakeFiles/ilan_topo.dir/topo/presets.cpp.o"
  "CMakeFiles/ilan_topo.dir/topo/presets.cpp.o.d"
  "CMakeFiles/ilan_topo.dir/topo/topology.cpp.o"
  "CMakeFiles/ilan_topo.dir/topo/topology.cpp.o.d"
  "libilan_topo.a"
  "libilan_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilan_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
