file(REMOVE_RECURSE
  "libilan_topo.a"
)
