# Empty dependencies file for ilan_topo.
# This may be replaced when dependencies are built.
