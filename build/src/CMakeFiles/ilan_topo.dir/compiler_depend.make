# Empty compiler generated dependencies file for ilan_topo.
# This may be replaced when dependencies are built.
