# Empty dependencies file for ilan_sim.
# This may be replaced when dependencies are built.
