file(REMOVE_RECURSE
  "CMakeFiles/ilan_sim.dir/sim/engine.cpp.o"
  "CMakeFiles/ilan_sim.dir/sim/engine.cpp.o.d"
  "CMakeFiles/ilan_sim.dir/sim/noise.cpp.o"
  "CMakeFiles/ilan_sim.dir/sim/noise.cpp.o.d"
  "CMakeFiles/ilan_sim.dir/sim/rng.cpp.o"
  "CMakeFiles/ilan_sim.dir/sim/rng.cpp.o.d"
  "libilan_sim.a"
  "libilan_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilan_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
