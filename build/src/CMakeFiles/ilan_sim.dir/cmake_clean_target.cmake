file(REMOVE_RECURSE
  "libilan_sim.a"
)
