file(REMOVE_RECURSE
  "CMakeFiles/ilan_rt.dir/rt/baseline_ws_scheduler.cpp.o"
  "CMakeFiles/ilan_rt.dir/rt/baseline_ws_scheduler.cpp.o.d"
  "CMakeFiles/ilan_rt.dir/rt/cost_model.cpp.o"
  "CMakeFiles/ilan_rt.dir/rt/cost_model.cpp.o.d"
  "CMakeFiles/ilan_rt.dir/rt/runtime.cpp.o"
  "CMakeFiles/ilan_rt.dir/rt/runtime.cpp.o.d"
  "CMakeFiles/ilan_rt.dir/rt/task.cpp.o"
  "CMakeFiles/ilan_rt.dir/rt/task.cpp.o.d"
  "CMakeFiles/ilan_rt.dir/rt/team.cpp.o"
  "CMakeFiles/ilan_rt.dir/rt/team.cpp.o.d"
  "CMakeFiles/ilan_rt.dir/rt/work_sharing_scheduler.cpp.o"
  "CMakeFiles/ilan_rt.dir/rt/work_sharing_scheduler.cpp.o.d"
  "CMakeFiles/ilan_rt.dir/rt/ws_deque.cpp.o"
  "CMakeFiles/ilan_rt.dir/rt/ws_deque.cpp.o.d"
  "libilan_rt.a"
  "libilan_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilan_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
