file(REMOVE_RECURSE
  "libilan_rt.a"
)
