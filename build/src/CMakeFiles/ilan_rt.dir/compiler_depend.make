# Empty compiler generated dependencies file for ilan_rt.
# This may be replaced when dependencies are built.
