
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rt/baseline_ws_scheduler.cpp" "src/CMakeFiles/ilan_rt.dir/rt/baseline_ws_scheduler.cpp.o" "gcc" "src/CMakeFiles/ilan_rt.dir/rt/baseline_ws_scheduler.cpp.o.d"
  "/root/repo/src/rt/cost_model.cpp" "src/CMakeFiles/ilan_rt.dir/rt/cost_model.cpp.o" "gcc" "src/CMakeFiles/ilan_rt.dir/rt/cost_model.cpp.o.d"
  "/root/repo/src/rt/runtime.cpp" "src/CMakeFiles/ilan_rt.dir/rt/runtime.cpp.o" "gcc" "src/CMakeFiles/ilan_rt.dir/rt/runtime.cpp.o.d"
  "/root/repo/src/rt/task.cpp" "src/CMakeFiles/ilan_rt.dir/rt/task.cpp.o" "gcc" "src/CMakeFiles/ilan_rt.dir/rt/task.cpp.o.d"
  "/root/repo/src/rt/team.cpp" "src/CMakeFiles/ilan_rt.dir/rt/team.cpp.o" "gcc" "src/CMakeFiles/ilan_rt.dir/rt/team.cpp.o.d"
  "/root/repo/src/rt/work_sharing_scheduler.cpp" "src/CMakeFiles/ilan_rt.dir/rt/work_sharing_scheduler.cpp.o" "gcc" "src/CMakeFiles/ilan_rt.dir/rt/work_sharing_scheduler.cpp.o.d"
  "/root/repo/src/rt/ws_deque.cpp" "src/CMakeFiles/ilan_rt.dir/rt/ws_deque.cpp.o" "gcc" "src/CMakeFiles/ilan_rt.dir/rt/ws_deque.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ilan_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ilan_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ilan_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ilan_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
