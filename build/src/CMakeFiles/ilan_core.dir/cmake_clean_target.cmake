file(REMOVE_RECURSE
  "libilan_core.a"
)
