file(REMOVE_RECURSE
  "CMakeFiles/ilan_core.dir/core/config.cpp.o"
  "CMakeFiles/ilan_core.dir/core/config.cpp.o.d"
  "CMakeFiles/ilan_core.dir/core/config_selector.cpp.o"
  "CMakeFiles/ilan_core.dir/core/config_selector.cpp.o.d"
  "CMakeFiles/ilan_core.dir/core/distributor.cpp.o"
  "CMakeFiles/ilan_core.dir/core/distributor.cpp.o.d"
  "CMakeFiles/ilan_core.dir/core/ilan_scheduler.cpp.o"
  "CMakeFiles/ilan_core.dir/core/ilan_scheduler.cpp.o.d"
  "CMakeFiles/ilan_core.dir/core/manual_scheduler.cpp.o"
  "CMakeFiles/ilan_core.dir/core/manual_scheduler.cpp.o.d"
  "CMakeFiles/ilan_core.dir/core/node_mask.cpp.o"
  "CMakeFiles/ilan_core.dir/core/node_mask.cpp.o.d"
  "CMakeFiles/ilan_core.dir/core/ptt.cpp.o"
  "CMakeFiles/ilan_core.dir/core/ptt.cpp.o.d"
  "CMakeFiles/ilan_core.dir/core/steal_policy.cpp.o"
  "CMakeFiles/ilan_core.dir/core/steal_policy.cpp.o.d"
  "libilan_core.a"
  "libilan_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilan_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
