
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/config.cpp" "src/CMakeFiles/ilan_core.dir/core/config.cpp.o" "gcc" "src/CMakeFiles/ilan_core.dir/core/config.cpp.o.d"
  "/root/repo/src/core/config_selector.cpp" "src/CMakeFiles/ilan_core.dir/core/config_selector.cpp.o" "gcc" "src/CMakeFiles/ilan_core.dir/core/config_selector.cpp.o.d"
  "/root/repo/src/core/distributor.cpp" "src/CMakeFiles/ilan_core.dir/core/distributor.cpp.o" "gcc" "src/CMakeFiles/ilan_core.dir/core/distributor.cpp.o.d"
  "/root/repo/src/core/ilan_scheduler.cpp" "src/CMakeFiles/ilan_core.dir/core/ilan_scheduler.cpp.o" "gcc" "src/CMakeFiles/ilan_core.dir/core/ilan_scheduler.cpp.o.d"
  "/root/repo/src/core/manual_scheduler.cpp" "src/CMakeFiles/ilan_core.dir/core/manual_scheduler.cpp.o" "gcc" "src/CMakeFiles/ilan_core.dir/core/manual_scheduler.cpp.o.d"
  "/root/repo/src/core/node_mask.cpp" "src/CMakeFiles/ilan_core.dir/core/node_mask.cpp.o" "gcc" "src/CMakeFiles/ilan_core.dir/core/node_mask.cpp.o.d"
  "/root/repo/src/core/ptt.cpp" "src/CMakeFiles/ilan_core.dir/core/ptt.cpp.o" "gcc" "src/CMakeFiles/ilan_core.dir/core/ptt.cpp.o.d"
  "/root/repo/src/core/steal_policy.cpp" "src/CMakeFiles/ilan_core.dir/core/steal_policy.cpp.o" "gcc" "src/CMakeFiles/ilan_core.dir/core/steal_policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ilan_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ilan_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ilan_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ilan_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ilan_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
