# Empty compiler generated dependencies file for ilan_core.
# This may be replaced when dependencies are built.
