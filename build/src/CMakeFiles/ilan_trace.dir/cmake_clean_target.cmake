file(REMOVE_RECURSE
  "libilan_trace.a"
)
