
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/chrome_trace.cpp" "src/CMakeFiles/ilan_trace.dir/trace/chrome_trace.cpp.o" "gcc" "src/CMakeFiles/ilan_trace.dir/trace/chrome_trace.cpp.o.d"
  "/root/repo/src/trace/energy.cpp" "src/CMakeFiles/ilan_trace.dir/trace/energy.cpp.o" "gcc" "src/CMakeFiles/ilan_trace.dir/trace/energy.cpp.o.d"
  "/root/repo/src/trace/overhead.cpp" "src/CMakeFiles/ilan_trace.dir/trace/overhead.cpp.o" "gcc" "src/CMakeFiles/ilan_trace.dir/trace/overhead.cpp.o.d"
  "/root/repo/src/trace/stats.cpp" "src/CMakeFiles/ilan_trace.dir/trace/stats.cpp.o" "gcc" "src/CMakeFiles/ilan_trace.dir/trace/stats.cpp.o.d"
  "/root/repo/src/trace/table.cpp" "src/CMakeFiles/ilan_trace.dir/trace/table.cpp.o" "gcc" "src/CMakeFiles/ilan_trace.dir/trace/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
