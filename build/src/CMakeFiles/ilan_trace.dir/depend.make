# Empty dependencies file for ilan_trace.
# This may be replaced when dependencies are built.
