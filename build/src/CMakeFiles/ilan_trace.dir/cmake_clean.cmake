file(REMOVE_RECURSE
  "CMakeFiles/ilan_trace.dir/trace/chrome_trace.cpp.o"
  "CMakeFiles/ilan_trace.dir/trace/chrome_trace.cpp.o.d"
  "CMakeFiles/ilan_trace.dir/trace/energy.cpp.o"
  "CMakeFiles/ilan_trace.dir/trace/energy.cpp.o.d"
  "CMakeFiles/ilan_trace.dir/trace/overhead.cpp.o"
  "CMakeFiles/ilan_trace.dir/trace/overhead.cpp.o.d"
  "CMakeFiles/ilan_trace.dir/trace/stats.cpp.o"
  "CMakeFiles/ilan_trace.dir/trace/stats.cpp.o.d"
  "CMakeFiles/ilan_trace.dir/trace/table.cpp.o"
  "CMakeFiles/ilan_trace.dir/trace/table.cpp.o.d"
  "libilan_trace.a"
  "libilan_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilan_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
