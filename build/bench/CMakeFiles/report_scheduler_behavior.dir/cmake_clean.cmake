file(REMOVE_RECURSE
  "CMakeFiles/report_scheduler_behavior.dir/report_scheduler_behavior.cpp.o"
  "CMakeFiles/report_scheduler_behavior.dir/report_scheduler_behavior.cpp.o.d"
  "report_scheduler_behavior"
  "report_scheduler_behavior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report_scheduler_behavior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
