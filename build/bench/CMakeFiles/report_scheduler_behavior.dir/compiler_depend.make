# Empty compiler generated dependencies file for report_scheduler_behavior.
# This may be replaced when dependencies are built.
