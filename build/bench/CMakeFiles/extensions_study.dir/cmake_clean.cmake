file(REMOVE_RECURSE
  "CMakeFiles/extensions_study.dir/extensions_study.cpp.o"
  "CMakeFiles/extensions_study.dir/extensions_study.cpp.o.d"
  "extensions_study"
  "extensions_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extensions_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
