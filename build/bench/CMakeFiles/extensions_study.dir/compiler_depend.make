# Empty compiler generated dependencies file for extensions_study.
# This may be replaced when dependencies are built.
