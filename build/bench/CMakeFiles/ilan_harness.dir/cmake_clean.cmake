file(REMOVE_RECURSE
  "CMakeFiles/ilan_harness.dir/harness.cpp.o"
  "CMakeFiles/ilan_harness.dir/harness.cpp.o.d"
  "libilan_harness.a"
  "libilan_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilan_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
