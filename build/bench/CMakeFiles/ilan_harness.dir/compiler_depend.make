# Empty compiler generated dependencies file for ilan_harness.
# This may be replaced when dependencies are built.
