file(REMOVE_RECURSE
  "libilan_harness.a"
)
