# Empty dependencies file for fig2_overall_speedup.
# This may be replaced when dependencies are built.
