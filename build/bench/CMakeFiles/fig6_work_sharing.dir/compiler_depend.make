# Empty compiler generated dependencies file for fig6_work_sharing.
# This may be replaced when dependencies are built.
