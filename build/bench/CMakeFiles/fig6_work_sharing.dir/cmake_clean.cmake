file(REMOVE_RECURSE
  "CMakeFiles/fig6_work_sharing.dir/fig6_work_sharing.cpp.o"
  "CMakeFiles/fig6_work_sharing.dir/fig6_work_sharing.cpp.o.d"
  "fig6_work_sharing"
  "fig6_work_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_work_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
