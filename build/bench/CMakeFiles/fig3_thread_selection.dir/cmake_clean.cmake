file(REMOVE_RECURSE
  "CMakeFiles/fig3_thread_selection.dir/fig3_thread_selection.cpp.o"
  "CMakeFiles/fig3_thread_selection.dir/fig3_thread_selection.cpp.o.d"
  "fig3_thread_selection"
  "fig3_thread_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_thread_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
