# Empty compiler generated dependencies file for report_width_sweep.
# This may be replaced when dependencies are built.
