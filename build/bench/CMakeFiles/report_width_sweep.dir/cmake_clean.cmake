file(REMOVE_RECURSE
  "CMakeFiles/report_width_sweep.dir/report_width_sweep.cpp.o"
  "CMakeFiles/report_width_sweep.dir/report_width_sweep.cpp.o.d"
  "report_width_sweep"
  "report_width_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report_width_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
