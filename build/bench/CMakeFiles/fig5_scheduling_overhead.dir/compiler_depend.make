# Empty compiler generated dependencies file for fig5_scheduling_overhead.
# This may be replaced when dependencies are built.
