file(REMOVE_RECURSE
  "CMakeFiles/fig4_no_moldability.dir/fig4_no_moldability.cpp.o"
  "CMakeFiles/fig4_no_moldability.dir/fig4_no_moldability.cpp.o.d"
  "fig4_no_moldability"
  "fig4_no_moldability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_no_moldability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
