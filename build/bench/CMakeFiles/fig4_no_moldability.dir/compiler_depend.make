# Empty compiler generated dependencies file for fig4_no_moldability.
# This may be replaced when dependencies are built.
