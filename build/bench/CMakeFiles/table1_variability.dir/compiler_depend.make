# Empty compiler generated dependencies file for table1_variability.
# This may be replaced when dependencies are built.
