file(REMOVE_RECURSE
  "CMakeFiles/table1_variability.dir/table1_variability.cpp.o"
  "CMakeFiles/table1_variability.dir/table1_variability.cpp.o.d"
  "table1_variability"
  "table1_variability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_variability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
