file(REMOVE_RECURSE
  "CMakeFiles/test_omp2taskloop.dir/omp2taskloop_test.cpp.o"
  "CMakeFiles/test_omp2taskloop.dir/omp2taskloop_test.cpp.o.d"
  "test_omp2taskloop"
  "test_omp2taskloop.pdb"
  "test_omp2taskloop[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_omp2taskloop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
