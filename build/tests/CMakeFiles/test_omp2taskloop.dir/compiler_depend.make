# Empty compiler generated dependencies file for test_omp2taskloop.
# This may be replaced when dependencies are built.
