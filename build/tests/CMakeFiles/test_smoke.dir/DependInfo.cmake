
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/smoke_test.cpp" "tests/CMakeFiles/test_smoke.dir/smoke_test.cpp.o" "gcc" "tests/CMakeFiles/test_smoke.dir/smoke_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ilan_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ilan_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ilan_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ilan_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ilan_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ilan_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ilan_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
