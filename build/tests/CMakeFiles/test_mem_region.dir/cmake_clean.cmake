file(REMOVE_RECURSE
  "CMakeFiles/test_mem_region.dir/mem_region_test.cpp.o"
  "CMakeFiles/test_mem_region.dir/mem_region_test.cpp.o.d"
  "test_mem_region"
  "test_mem_region.pdb"
  "test_mem_region[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem_region.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
