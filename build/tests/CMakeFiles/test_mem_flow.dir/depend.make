# Empty dependencies file for test_mem_flow.
# This may be replaced when dependencies are built.
