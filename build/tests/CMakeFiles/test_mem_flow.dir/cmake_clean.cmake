file(REMOVE_RECURSE
  "CMakeFiles/test_mem_flow.dir/mem_flow_test.cpp.o"
  "CMakeFiles/test_mem_flow.dir/mem_flow_test.cpp.o.d"
  "test_mem_flow"
  "test_mem_flow.pdb"
  "test_mem_flow[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
