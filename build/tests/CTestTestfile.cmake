# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_topo[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_mem_flow[1]_include.cmake")
include("/root/repo/build/tests/test_mem_region[1]_include.cmake")
include("/root/repo/build/tests/test_mem_cache[1]_include.cmake")
include("/root/repo/build/tests/test_mem_system[1]_include.cmake")
include("/root/repo/build/tests/test_rt[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_omp2taskloop[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
