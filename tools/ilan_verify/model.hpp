// ilan-verify's semantic model: a project-wide symbol table and call graph
// extracted from the ilan-lint token stream (ilan_lint/lex.hpp).
//
// This is a heuristic declaration/call extractor, not a C++ parser. It
// tracks namespace/class/function scopes by brace matching, recognizes
// function *definitions* (free, member, out-of-line qualified, with
// ctor-initializer lists and trailing return types), and records inside
// each body:
//   * call sites (qualified, member, or bare),
//   * determinism-taint seeds (host clocks, host RNGs, std::hash,
//     pointer-printing "%p", pointer-to-integer reinterpret_casts),
//   * ILAN_* knob string literals with the call they are an argument of,
//   * obs metric registrations/lookups and their name literals,
// plus, per file, event-tag constant/case tables (sim/event_tags.hpp) and
// ilan-verify allow() annotations.
//
// Known limits (by construction, documented in DESIGN.md §14): operator
// overload bodies are skipped; lambdas are attributed to their enclosing
// function; preprocessor-conditional branches are all extracted; overload
// sets resolve by name with scope-preference, not by signature.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "ilan_lint/lex.hpp"

namespace ilan::verify {

struct SourceFile {
  std::string path;
  std::string content;
};

struct CallSite {
  std::string name;       // callee identifier
  std::string qualifier;  // "a::b" chain before the name ("" when unqualified)
  bool member = false;    // x.f() / x->f()
  int line = 0;
};

// A direct touch of a nondeterminism primitive inside a function body.
struct TaintSeed {
  std::string what;    // "wall-clock", "rand", "std-hash", "pointer-identity"
  std::string detail;  // the offending token/literal
  int line = 0;
};

struct Function {
  std::string name;        // unqualified
  std::string qualified;   // scope-joined, e.g. "ilan::mem::MemorySystem::resolve"
  std::string class_name;  // innermost class scope or out-of-line qualifier ("" if free)
  std::string file;
  int line = 0;  // line of the definition's name
  std::vector<CallSite> calls;
  std::vector<TaintSeed> seeds;
};

// One ILAN_* string literal and the call expression it sits in.
struct KnobUse {
  std::string knob;      // e.g. "ILAN_BENCH_RUNS"
  std::string context;   // enclosing call's name ("" when not a call argument)
  std::string file;
  int line = 0;
  std::string function;  // enclosing function's qualified name ("" at file scope)
};

// One obs metric registration (counter/gauge/histogram) or lookup (find_*).
struct MetricUse {
  std::string kind;  // "counter", "gauge" or "histogram"
  bool lookup = false;
  std::string name;      // the string literal's text (whole name or fragment)
  bool complete = false; // literal is the entire first argument
  std::string file;
  int line = 0;
};

struct ClassInfo {
  std::string name;
  std::vector<std::string> bases;  // qualified base names, access specifiers dropped
  std::string file;
  int line = 0;
};

// Constant/case table of an event-tag registry header (*event_tags.hpp).
struct TagTable {
  std::string file;
  std::vector<std::pair<std::string, int>> constants;  // (kTag* name, line)
  std::set<std::string> handled;                       // `case <name>:` labels
};

struct Model {
  std::vector<Function> functions;
  std::multimap<std::string, std::size_t> by_name;  // name -> functions index
  std::vector<ClassInfo> classes;
  std::vector<KnobUse> knobs;
  std::vector<MetricUse> metrics;
  std::vector<TagTable> tag_tables;
  // file -> line -> verify allow annotation.
  std::map<std::string, std::map<int, lint::VerifyAllow>> allows;
};

[[nodiscard]] Model build_model(const std::vector<SourceFile>& files);

}  // namespace ilan::verify
