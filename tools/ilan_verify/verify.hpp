// ilan-verify rule passes over the semantic model (model.hpp).
//
// Rules (each suppressible on the finding's line with a verify allow()
// annotation — see ilan_lint/lex.hpp; the justification is mandatory):
//
//   taint            determinism taint: a function touching wall-clock /
//                    host-RNG / std::hash / pointer-identity primitives is
//                    tainted; taint propagates to callers; a finding fires
//                    when a digest/trace/selfcheck sink is tainted. Anchored
//                    at the seed site, with the sink→seed call path.
//   observer-mutation rt::TaskObserver callback implementations (and their
//                    transitive callees) must not call runtime/scheduler
//                    mutation APIs. Anchored at the mutating call site.
//   event-tag        every EventTag constant in *event_tags.hpp must appear
//                    as a `case` label somewhere in the scanned tree.
//   knob-drift       every ILAN_* literal read in code must be in the README
//                    env table; documented knobs must have a live read (code
//                    or shell script); env values must be parsed with the
//                    strict obs:: parsers, not std::atoi/atof.
//   metric-grammar   registered obs metric names follow the dotted grammar
//                    segment(.segment)+, segment = [a-z][a-z0-9_]*; a name
//                    must keep one kind across registrations and lookups.
//   allow-syntax     an allow() annotation without a justification string
//                    (or naming an unknown rule) — such annotations never
//                    suppress.
//
// Findings carry a stable key `rule<TAB>file<TAB>symbol` used by the
// checked-in baseline (tools/ilan_verify/baseline.txt): baselined findings
// are reported but do not fail the gate, so the tool can land strict rules
// while drift is paid down incrementally. The shipped baseline is empty.
#pragma once

#include <iosfwd>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "ilan_verify/model.hpp"

namespace ilan::verify {

struct RuleInfo {
  std::string name;
  std::string description;
};

[[nodiscard]] const std::vector<RuleInfo>& rules();

struct Finding {
  std::string rule;
  std::string file;
  int line = 0;
  std::string symbol;   // sink/knob/metric/tag the finding is about
  std::string message;
  std::vector<std::string> path;  // taint: sink → … → seed call chain
};

struct Suppressed {
  Finding finding;
  std::string justification;  // echoed into the JSON report
};

struct Options {
  std::string readme;          // README.md content; checks skipped when empty
  bool check_readme = true;
  std::set<std::string> shell_knob_reads;  // ILAN_* referenced by *.sh files
  std::set<std::string> baseline;          // accepted finding keys
};

struct Report {
  std::vector<Finding> findings;      // active — these fail the gate
  std::vector<Suppressed> suppressed; // allow()'d with justification
  std::vector<Finding> baselined;     // known drift, reported not fatal
};

// Stable identity of a finding: rule<TAB>file<TAB>symbol (line-free so
// baselines survive unrelated edits).
[[nodiscard]] std::string finding_key(const Finding& f);

[[nodiscard]] Report analyze(const Model& model, const Options& opts);
[[nodiscard]] Report analyze_sources(const std::vector<SourceFile>& files,
                                     const Options& opts);

// Baseline file: one key per line, '#' comments and blank lines ignored.
[[nodiscard]] std::set<std::string> parse_baseline(std::string_view text);

// All ILAN_* tokens in free text → first-mention line (1-based). Used for
// the README side of knob-drift and for shell-script knob reads.
[[nodiscard]] std::map<std::string, int> scan_knob_mentions(
    std::string_view text);

// Machine-readable report (hand-rolled JSON, schema in DESIGN.md §14).
void write_json(std::ostream& os, const Report& report);

}  // namespace ilan::verify
