#include "ilan_verify/model.hpp"

#include <algorithm>
#include <cctype>

namespace ilan::verify {

namespace {

using lint::Lexed;
using lint::Token;
using lint::TokKind;

// Identifiers that can precede '(' without being a callee or a function
// name: control keywords, builtin types, cast-like operators.
const std::set<std::string>& non_call_names() {
  static const std::set<std::string> kSet = {
      "if",       "for",      "while",   "switch",   "return",  "catch",
      "sizeof",   "alignof",  "alignas", "decltype", "noexcept", "throw",
      "new",      "delete",   "case",    "default",  "else",     "do",
      "goto",     "int",      "char",    "bool",     "float",    "double",
      "void",     "auto",     "unsigned", "signed",  "long",     "short",
      "const",    "constexpr", "operator", "requires", "defined",
      "static_assert", "co_await", "co_return", "co_yield", "assert",
  };
  return kSet;
}

const std::set<std::string>& wall_clock_names() {
  static const std::set<std::string> kSet = {
      "steady_clock", "system_clock",  "high_resolution_clock",
      "gettimeofday", "clock_gettime", "timespec_get"};
  return kSet;
}

const std::set<std::string>& rand_names() {
  static const std::set<std::string> kSet = {
      "rand",       "srand",       "random_device",
      "mt19937",    "mt19937_64",  "minstd_rand",
      "default_random_engine",     "random_shuffle"};
  return kSet;
}

const std::set<std::string>& metric_call_names() {
  static const std::set<std::string> kSet = {
      "counter",      "gauge",      "histogram",
      "find_counter", "find_gauge", "find_histogram"};
  return kSet;
}

bool is_knob_literal(const std::string& s) {
  if (s.rfind("ILAN_", 0) != 0 || s.size() <= 5) return false;
  return std::all_of(s.begin() + 5, s.end(), [](unsigned char c) {
    return (std::isupper(c) != 0) || (std::isdigit(c) != 0) || c == '_';
  });
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

struct Scope {
  enum Kind { kNamespace, kClass, kFunction } kind;
  std::string name;
  int open_depth = 0;          // brace depth while inside this scope
  std::size_t fn_index = 0;    // Model::functions index (kFunction only)
};

class Extractor {
 public:
  Extractor(Model& model, std::set<std::string>& case_labels,
            const SourceFile& file)
      : model_(model),
        case_labels_(case_labels),
        file_(file.path),
        lx_(lint::lex(file.content, {.keep_strings = true})) {}

  void run() {
    if (!lx_.verify_allows.empty()) {
      model_.allows[file_] = lx_.verify_allows;
    }
    if (ends_with(file_, "event_tags.hpp")) extract_tag_table();
    walk();
  }

 private:
  const std::vector<Token>& toks() const { return lx_.tokens; }

  bool in_function() const {
    return !scopes_.empty() && scopes_.back().kind == Scope::kFunction;
  }

  Function* current_fn() {
    if (!in_function()) return nullptr;
    return &model_.functions[scopes_.back().fn_index];
  }

  // ---- balanced-region skippers (token indices) -------------------------

  // `open` points at '('; returns index just past the matching ')'.
  std::size_t skip_parens(std::size_t open) const {
    const auto& T = toks();
    int depth = 0;
    for (std::size_t j = open; j < T.size(); ++j) {
      if (T[j].kind != TokKind::kPunct) continue;
      if (T[j].text == "(") ++depth;
      if (T[j].text == ")" && --depth == 0) return j + 1;
    }
    return T.size();
  }

  // `open` points at '{'; returns index just past the matching '}'.
  std::size_t skip_braces(std::size_t open) const {
    const auto& T = toks();
    int depth = 0;
    for (std::size_t j = open; j < T.size(); ++j) {
      if (T[j].kind != TokKind::kPunct) continue;
      if (T[j].text == "{") ++depth;
      if (T[j].text == "}" && --depth == 0) return j + 1;
    }
    return T.size();
  }

  // `open` points at '<'; returns index just past the matching '>', or
  // `open + 1` when the angles do not balance before ';' or '{' (then it
  // was a comparison, not template arguments). "->"'s '>' is not counted.
  std::size_t skip_angles(std::size_t open) const {
    const auto& T = toks();
    int depth = 0;
    for (std::size_t j = open; j < T.size(); ++j) {
      const std::string& t = T[j].text;
      if (T[j].kind != TokKind::kPunct) continue;
      if (t == "<") ++depth;
      if (t == ">") {
        if (j > 0 && T[j - 1].text == "-") continue;  // ->
        if (--depth == 0) return j + 1;
      }
      if (depth > 0 && (t == ";" || t == "{")) break;
    }
    return open + 1;
  }

  // ---- declaration-scope constructs -------------------------------------

  // `i` points at 'namespace'. Returns resume index.
  std::size_t handle_namespace(std::size_t i) {
    const auto& T = toks();
    std::size_t j = i + 1;
    std::string name;
    while (j < T.size() && T[j].kind == TokKind::kIdent) {
      if (!name.empty()) name += "::";
      name += T[j].text;
      ++j;
      if (j + 1 < T.size() && T[j].text == ":" && T[j + 1].text == ":") {
        j += 2;
        continue;
      }
      break;
    }
    if (j < T.size() && T[j].text == "{") {
      scopes_.push_back({Scope::kNamespace, name, depth_ + 1, 0});
      ++depth_;
      return j + 1;
    }
    if (j < T.size() && T[j].text == "=") {  // namespace alias
      while (j < T.size() && T[j].text != ";") ++j;
      return j + 1;
    }
    return j;
  }

  // `i` points at 'class'/'struct' (prev token is not 'enum'). Returns
  // resume index; pushes a class scope when a definition body opens.
  std::size_t handle_class(std::size_t i) {
    const auto& T = toks();
    std::size_t j = i + 1;
    // Skip [[attr]] / alignas(...) between the keyword and the name.
    while (j < T.size()) {
      if (T[j].text == "[" && j + 1 < T.size() && T[j + 1].text == "[") {
        int d = 0;
        for (; j < T.size(); ++j) {
          if (T[j].text == "[") ++d;
          if (T[j].text == "]" && --d == 0) { ++j; break; }
        }
      } else if (T[j].text == "alignas" && j + 1 < T.size() &&
                 T[j + 1].text == "(") {
        j = skip_parens(j + 1);
      } else {
        break;
      }
    }
    std::string name;
    int name_line = 0;
    if (j < T.size() && T[j].kind == TokKind::kIdent) {
      name = T[j].text;
      name_line = T[j].line;
      ++j;
    }
    std::vector<std::string> bases;
    std::string cur;
    bool in_bases = false;
    int angle = 0;
    auto flush = [&] {
      if (!cur.empty()) bases.push_back(cur);
      cur.clear();
    };
    for (; j < T.size(); ++j) {
      const Token& t = T[j];
      if (t.kind == TokKind::kPunct && t.text == "<") ++angle;
      if (t.kind == TokKind::kPunct && t.text == ">" && angle > 0) {
        --angle;
        continue;
      }
      if (angle > 0) continue;
      if (t.text == ";") return j + 1;  // fwd declaration / member decl
      if (t.text == "{") {
        flush();
        model_.classes.push_back({name, bases, file_, name_line});
        scopes_.push_back({Scope::kClass, name, depth_ + 1, 0});
        ++depth_;
        return j + 1;
      }
      if (t.kind == TokKind::kPunct && t.text == ":") {
        const bool dbl = (j > 0 && T[j - 1].text == ":") ||
                         (j + 1 < T.size() && T[j + 1].text == ":");
        if (!dbl && !in_bases) {
          in_bases = true;
          continue;
        }
        if (in_bases && dbl) cur += ":";
        continue;
      }
      if (!in_bases) continue;
      if (t.text == ",") {
        flush();
      } else if (t.kind == TokKind::kIdent &&
                 t.text != "public" && t.text != "protected" &&
                 t.text != "private" && t.text != "virtual") {
        cur += t.text;
      }
    }
    return j;
  }

  // `i` points at 'enum'. Skips the whole enumerator body (enumerator
  // names are not declarations we model). Returns resume index.
  std::size_t handle_enum(std::size_t i) {
    const auto& T = toks();
    for (std::size_t j = i + 1; j < T.size(); ++j) {
      if (T[j].text == ";") return j + 1;  // opaque declaration
      if (T[j].text == "{") return skip_braces(j);
    }
    return T.size();
  }

  // `open` points at the '(' after an identifier at declaration scope.
  // Decides declaration vs definition; on a definition, records the
  // Function and pushes its scope. Returns resume index.
  std::size_t handle_possible_definition(std::size_t open) {
    const auto& T = toks();
    const std::size_t name_idx = open - 1;
    std::string name = T[name_idx].text;
    if (non_call_names().count(name) != 0) return open + 1;
    // Backward ident::ident:: qualifier chain (out-of-line members).
    std::vector<std::string> quals;
    std::size_t k = name_idx;
    while (k >= 3 && T[k - 1].text == ":" && T[k - 2].text == ":" &&
           T[k - 3].kind == TokKind::kIdent) {
      quals.insert(quals.begin(), T[k - 3].text);
      k -= 3;
    }
    if (k >= 1 && T[k - 1].text == "~") name = "~" + name;  // destructor

    std::size_t j = skip_parens(open);
    while (j < T.size()) {
      const std::string& t = T[j].text;
      if (t == "const" || t == "noexcept" || t == "override" || t == "final" ||
          t == "mutable" || t == "volatile" || t == "&" || t == "throw") {
        if ((t == "noexcept" || t == "throw") && j + 1 < T.size() &&
            T[j + 1].text == "(") {
          j = skip_parens(j + 1);
        } else {
          ++j;
        }
        continue;
      }
      if (t == "-" && j + 1 < T.size() && T[j + 1].text == ">") {
        // Trailing return type: scan to the body or terminator.
        j += 2;
        while (j < T.size() && T[j].text != "{" && T[j].text != ";" &&
               T[j].text != "=") {
          if (T[j].text == "<") { j = skip_angles(j); continue; }
          if (T[j].text == "(") { j = skip_parens(j); continue; }
          ++j;
        }
        continue;
      }
      if (t == ":" && !(j + 1 < T.size() && T[j + 1].text == ":")) {
        j = skip_ctor_init_list(j + 1);
        continue;
      }
      if (t == ";") return j + 1;  // pure declaration
      if (t == "=") {              // = default / = delete / = 0;
        while (j < T.size() && T[j].text != ";") ++j;
        return j + 1;
      }
      if (t == "{") {
        Function fn;
        fn.name = name;
        fn.class_name = innermost_class_name(quals);
        fn.qualified = qualify(quals, name);
        fn.file = file_;
        fn.line = T[name_idx].line;
        const std::size_t idx = model_.functions.size();
        model_.functions.push_back(std::move(fn));
        model_.by_name.emplace(name, idx);
        scopes_.push_back({Scope::kFunction, name, depth_ + 1, idx});
        ++depth_;
        return j + 1;
      }
      // Not a function header after all (e.g. a parenthesized declarator).
      return j;
    }
    return j;
  }

  // `j` points just past the ':' that opens a ctor-initializer list.
  // Walks `member(expr)` / `Base{expr}` items to the body '{'.
  std::size_t skip_ctor_init_list(std::size_t j) {
    const auto& T = toks();
    while (j < T.size()) {
      // Initializer name: idents, '::', template args.
      while (j < T.size()) {
        if (T[j].kind == TokKind::kIdent) { ++j; continue; }
        if (T[j].text == ":" && j + 1 < T.size() && T[j + 1].text == ":") {
          j += 2;
          continue;
        }
        if (T[j].text == "<") { j = skip_angles(j); continue; }
        break;
      }
      if (j < T.size() && T[j].text == "(") {
        j = skip_parens(j);
      } else if (j < T.size() && T[j].text == "{") {
        // Either an initializer {…} or — when no name preceded — the body.
        if (j > 0 && (T[j - 1].kind == TokKind::kIdent || T[j - 1].text == ">")) {
          j = skip_braces(j);
        } else {
          return j;
        }
      } else {
        return j;
      }
      if (j < T.size() && T[j].text == ",") {
        ++j;
        continue;
      }
      return j;  // expect the body '{' next
    }
    return j;
  }

  // `open` points at the '(' after 'operator' + symbol tokens. Operator
  // bodies are skipped wholesale (documented limit). `i` points at
  // 'operator'; returns resume index.
  std::size_t handle_operator(std::size_t i) {
    const auto& T = toks();
    std::size_t j = i + 1;
    // operator()() — the first "()" pair is the operator's name.
    if (j + 1 < T.size() && T[j].text == "(" && T[j + 1].text == ")") j += 2;
    // Conversion operators / symbol operators: advance to the param list.
    while (j < T.size() && T[j].text != "(" && T[j].text != ";" &&
           T[j].text != "{") {
      if (T[j].text == "<" && j > i + 1) { j = skip_angles(j); continue; }
      ++j;
    }
    if (j >= T.size() || T[j].text != "(") return j;
    j = skip_parens(j);
    while (j < T.size()) {
      const std::string& t = T[j].text;
      if (t == ";") return j + 1;
      if (t == "=") {
        while (j < T.size() && T[j].text != ";") ++j;
        return j + 1;
      }
      if (t == "{") return skip_braces(j);
      if (t == "(") { j = skip_parens(j); continue; }
      ++j;
    }
    return j;
  }

  std::string innermost_class_name(const std::vector<std::string>& quals) const {
    if (!quals.empty()) return quals.back();
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::kClass) return it->name;
    }
    return "";
  }

  std::string qualify(const std::vector<std::string>& quals,
                      const std::string& name) const {
    std::string out;
    for (const Scope& s : scopes_) {
      if (s.name.empty()) continue;
      out += s.name;
      out += "::";
    }
    for (const std::string& q : quals) {
      out += q;
      out += "::";
    }
    out += name;
    return out;
  }

  // ---- in-function constructs -------------------------------------------

  // `open` points at '(' whose previous token is a callable identifier.
  void record_call(std::size_t open) {
    const auto& T = toks();
    const std::size_t name_idx = open - 1;
    const std::string& name = T[name_idx].text;
    CallSite call;
    call.name = name;
    call.line = T[name_idx].line;
    std::size_t k = name_idx;
    std::vector<std::string> quals;
    while (k >= 3 && T[k - 1].text == ":" && T[k - 2].text == ":" &&
           T[k - 3].kind == TokKind::kIdent) {
      quals.insert(quals.begin(), T[k - 3].text);
      k -= 3;
    }
    for (std::size_t q = 0; q < quals.size(); ++q) {
      if (q != 0) call.qualifier += "::";
      call.qualifier += quals[q];
    }
    if (k >= 1 &&
        (T[k - 1].text == "." ||
         (k >= 2 && T[k - 1].text == ">" && T[k - 2].text == "-"))) {
      call.member = true;
    }
    current_fn()->calls.push_back(std::move(call));
    maybe_record_metric(open, name);
  }

  void maybe_record_metric(std::size_t open, const std::string& name) {
    if (metric_call_names().count(name) == 0) return;
    const auto& T = toks();
    MetricUse use;
    use.lookup = name.rfind("find_", 0) == 0;
    use.kind = use.lookup ? name.substr(5) : name;
    use.file = file_;
    const std::size_t first = open + 1;
    if (first < T.size() && T[first].kind == TokKind::kString) {
      const bool complete =
          first + 1 < T.size() &&
          (T[first + 1].text == "," || T[first + 1].text == ")");
      use.name = T[first].text;
      use.complete = complete;
      use.line = T[first].line;
      model_.metrics.push_back(use);
      if (complete) return;
      // Fall through: also record any further fragments of the same call.
    }
    int depth = 0;
    for (std::size_t j = open; j < T.size(); ++j) {
      if (T[j].kind == TokKind::kString) {
        if (j == first && !model_.metrics.empty() &&
            model_.metrics.back().line == T[j].line &&
            model_.metrics.back().name == T[j].text) {
          continue;  // already recorded above
        }
        MetricUse frag = use;
        frag.name = T[j].text;
        frag.complete = false;
        frag.line = T[j].line;
        model_.metrics.push_back(std::move(frag));
        continue;
      }
      if (T[j].kind != TokKind::kPunct) continue;
      if (T[j].text == "(") ++depth;
      if (T[j].text == ")" && --depth == 0) break;
    }
  }

  void record_seeds(std::size_t i) {
    const auto& T = toks();
    const Token& t = T[i];
    Function* fn = current_fn();
    if (t.kind == TokKind::kString) {
      if (t.text.find("%p") != std::string::npos) {
        fn->seeds.push_back({"pointer-identity", "\"%p\" format", t.line});
      }
      return;
    }
    if (t.kind != TokKind::kIdent) return;
    if (wall_clock_names().count(t.text) != 0) {
      fn->seeds.push_back({"wall-clock", t.text, t.line});
    } else if (rand_names().count(t.text) != 0) {
      fn->seeds.push_back({"rand", t.text, t.line});
    } else if (t.text == "hash" && i >= 3 && T[i - 1].text == ":" &&
               T[i - 2].text == ":" && T[i - 3].text == "std") {
      fn->seeds.push_back({"std-hash", "std::hash", t.line});
    } else if (t.text == "reinterpret_cast" && i + 1 < T.size() &&
               T[i + 1].text == "<") {
      const std::size_t end = skip_angles(i + 1);
      for (std::size_t j = i + 2; j + 1 < end; ++j) {
        if (T[j].text == "uintptr_t" || T[j].text == "intptr_t") {
          fn->seeds.push_back(
              {"pointer-identity", "reinterpret_cast<" + T[j].text + ">", t.line});
          break;
        }
      }
    }
  }

  void record_knob(const Token& t) {
    if (t.kind != TokKind::kString || !is_knob_literal(t.text)) return;
    KnobUse use;
    use.knob = t.text;
    use.context = call_ctx_.empty() ? "" : call_ctx_.back();
    use.file = file_;
    use.line = t.line;
    if (const Function* fn = in_function()
                                 ? &model_.functions[scopes_.back().fn_index]
                                 : nullptr) {
      use.function = fn->qualified;
    }
    model_.knobs.push_back(std::move(use));
  }

  // ---- tag tables --------------------------------------------------------

  void extract_tag_table() {
    const auto& T = toks();
    TagTable table;
    table.file = file_;
    for (std::size_t i = 0; i + 2 < T.size(); ++i) {
      if (T[i].text == "EventTag" && T[i + 1].kind == TokKind::kIdent &&
          T[i + 2].text == "=") {
        table.constants.emplace_back(T[i + 1].text, T[i + 1].line);
      }
    }
    if (!table.constants.empty()) model_.tag_tables.push_back(std::move(table));
  }

  // ---- main walk ---------------------------------------------------------

  void walk() {
    const auto& T = toks();
    std::size_t i = 0;
    while (i < T.size()) {
      const Token& t = T[i];
      // Preprocessor line (honoring trailing-backslash continuations).
      if (t.kind == TokKind::kPunct && t.text == "#" &&
          (i == 0 || T[i - 1].line != t.line)) {
        int line = t.line;
        std::size_t j = i + 1;
        while (j < T.size()) {
          if (T[j].line > line) {
            if (T[j - 1].text == "\\") {
              line = T[j].line;
            } else {
              break;
            }
          }
          ++j;
        }
        i = j;
        continue;
      }
      if (t.kind == TokKind::kIdent) {
        if (t.text == "case") {
          // Record every identifier in the label expression (qualified
          // labels like `case sim::kTagTaskRun:` included).
          std::size_t j = i + 1;
          while (j < T.size()) {
            if (T[j].kind == TokKind::kIdent) case_labels_.insert(T[j].text);
            const bool lone_colon =
                T[j].text == ":" && T[j - 1].text != ":" &&
                !(j + 1 < T.size() && T[j + 1].text == ":");
            if (lone_colon || T[j].text == ";" || T[j].text == "}") break;
            ++j;
          }
          i = j + 1;
          continue;
        }
        if (t.text == "namespace") { i = handle_namespace(i); continue; }
        if ((t.text == "class" || t.text == "struct") &&
            (i == 0 || T[i - 1].text != "enum")) {
          i = handle_class(i);
          continue;
        }
        if (t.text == "enum") { i = handle_enum(i); continue; }
        if (t.text == "template") {
          i = (i + 1 < T.size() && T[i + 1].text == "<") ? skip_angles(i + 1)
                                                         : i + 1;
          continue;
        }
        if (!in_function() && (t.text == "using" || t.text == "typedef")) {
          while (i < T.size() && T[i].text != ";") ++i;
          ++i;
          continue;
        }
        if (!in_function() && t.text == "operator") {
          i = handle_operator(i);
          continue;
        }
      }
      if (t.kind == TokKind::kPunct && t.text == "(") {
        const bool callable_prev =
            i > 0 && T[i - 1].kind == TokKind::kIdent &&
            non_call_names().count(T[i - 1].text) == 0;
        if (callable_prev && !in_function()) {
          i = handle_possible_definition(i);
          continue;
        }
        if (callable_prev && in_function()) record_call(i);
        call_ctx_.push_back(callable_prev ? T[i - 1].text : "");
        ++i;
        continue;
      }
      if (t.kind == TokKind::kPunct && t.text == ")") {
        if (!call_ctx_.empty()) call_ctx_.pop_back();
        ++i;
        continue;
      }
      if (t.kind == TokKind::kPunct && t.text == "{") {
        ++depth_;
        ++i;
        continue;
      }
      if (t.kind == TokKind::kPunct && t.text == "}") {
        --depth_;
        while (!scopes_.empty() && scopes_.back().open_depth > depth_) {
          scopes_.pop_back();
        }
        ++i;
        continue;
      }
      if (in_function()) record_seeds(i);
      record_knob(t);
      ++i;
    }
  }

  Model& model_;
  std::set<std::string>& case_labels_;
  std::string file_;
  Lexed lx_;
  std::vector<Scope> scopes_;
  std::vector<std::string> call_ctx_;
  int depth_ = 0;
};

}  // namespace

Model build_model(const std::vector<SourceFile>& files) {
  Model model;
  std::set<std::string> case_labels;
  for (const SourceFile& f : files) {
    Extractor(model, case_labels, f).run();
  }
  // `case` labels are collected project-wide (the switches over event tags
  // live in selfcheck/trace, not next to the tag registry).
  for (TagTable& table : model.tag_tables) {
    table.handled = case_labels;
  }
  return model;
}

}  // namespace ilan::verify
