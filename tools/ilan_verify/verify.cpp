#include "ilan_verify/verify.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <map>
#include <ostream>
#include <tuple>

namespace ilan::verify {

namespace {

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Split a qualified name into :: components.
std::vector<std::string> components(std::string_view qualified) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= qualified.size()) {
    const auto pos = qualified.find("::", start);
    if (pos == std::string_view::npos) {
      out.emplace_back(qualified.substr(start));
      break;
    }
    out.emplace_back(qualified.substr(start, pos - start));
    start = pos + 2;
  }
  return out;
}

// Shared leading scope components (function name excluded on both sides).
std::size_t shared_scope(const std::string& a, const std::string& b) {
  const auto ca = components(a);
  const auto cb = components(b);
  const std::size_t na = ca.empty() ? 0 : ca.size() - 1;
  const std::size_t nb = cb.empty() ? 0 : cb.size() - 1;
  std::size_t k = 0;
  while (k < na && k < nb && ca[k] == cb[k]) ++k;
  return k;
}

// Names shared with the STL container/iterator surface. An unqualified
// call to one of these (`accesses.begin()`, `clocks_.size()`, …) is almost
// never a call into a project class that happens to reuse the name, so
// these resolve same-class only; anything else is treated as external.
// Explicit qualification (`MemorySystem::begin(...)`) bypasses this.
bool is_ambient_name(const std::string& name) {
  static const std::set<std::string> kAmbient = {
      "begin",  "cbegin", "end",    "cend",   "rbegin",  "rend",
      "size",   "empty",  "clear",  "data",   "front",   "back",
      "at",     "count",  "find",   "insert", "erase",   "emplace",
      "emplace_back",     "push_back",        "pop_back",
      "push_front",       "pop_front",        "reserve", "resize",
      "assign", "swap",   "get",    "reset",  "value",   "str",
      "c_str",  "first",  "second", "length", "substr",  "append",
      "test",   "contains"};
  return kAmbient.count(name) != 0;
}

// Over-approximate name-based call resolution with scope preference:
// same class → same file → deepest shared namespace → every candidate.
// Qualified calls filter strictly by suffix, so std::/chrono:: calls
// resolve to nothing (external) instead of shadowing local names.
std::vector<std::size_t> resolve(const Model& m, const Function& caller,
                                 const CallSite& call) {
  std::vector<std::size_t> cands;
  auto [lo, hi] = m.by_name.equal_range(call.name);
  for (auto it = lo; it != hi; ++it) cands.push_back(it->second);
  if (cands.empty()) return {};
  if (!call.qualifier.empty()) {
    const std::string suffix = call.qualifier + "::" + call.name;
    std::vector<std::size_t> filtered;
    for (const std::size_t idx : cands) {
      const std::string& q = m.functions[idx].qualified;
      if (q == suffix || ends_with(q, "::" + suffix)) filtered.push_back(idx);
    }
    return filtered;
  }
  if (is_ambient_name(call.name)) {
    std::vector<std::size_t> tier;
    if (!caller.class_name.empty()) {
      for (const std::size_t idx : cands) {
        if (m.functions[idx].class_name == caller.class_name) tier.push_back(idx);
      }
    }
    return tier;
  }
  if (!caller.class_name.empty()) {
    std::vector<std::size_t> tier;
    for (const std::size_t idx : cands) {
      if (m.functions[idx].class_name == caller.class_name) tier.push_back(idx);
    }
    if (!tier.empty()) return tier;
  }
  {
    std::vector<std::size_t> tier;
    for (const std::size_t idx : cands) {
      if (m.functions[idx].file == caller.file) tier.push_back(idx);
    }
    if (!tier.empty()) return tier;
  }
  std::size_t best = 0;
  for (const std::size_t idx : cands) {
    best = std::max(best, shared_scope(caller.qualified, m.functions[idx].qualified));
  }
  if (best > 0) {
    std::vector<std::size_t> tier;
    for (const std::size_t idx : cands) {
      if (shared_scope(caller.qualified, m.functions[idx].qualified) == best) {
        tier.push_back(idx);
      }
    }
    return tier;
  }
  return cands;
}

struct CallGraph {
  // edges[u] = resolved callee indices; rev[v] = callers of v.
  std::vector<std::vector<std::size_t>> edges;
  std::vector<std::vector<std::size_t>> rev;
};

CallGraph build_graph(const Model& m) {
  CallGraph g;
  g.edges.resize(m.functions.size());
  g.rev.resize(m.functions.size());
  for (std::size_t u = 0; u < m.functions.size(); ++u) {
    std::set<std::size_t> seen;
    for (const CallSite& call : m.functions[u].calls) {
      for (const std::size_t v : resolve(m, m.functions[u], call)) {
        if (v == u || !seen.insert(v).second) continue;
        g.edges[u].push_back(v);
        g.rev[v].push_back(u);
      }
    }
  }
  return g;
}

// ---- taint ---------------------------------------------------------------

const std::vector<std::string>& sink_specs() {
  static const std::vector<std::string> kSinks = {
      "Engine::commit_event",
      "Engine::digest_step",
      "Engine::event_digest",
      "MetricsRegistry::digest",
      "analysis::digest_of",
      "analysis::compare_traces",
      "analysis::describe_event",
      "analysis::describe_divergence",
      "ChromeTraceWriter::write",
      "ChromeTraceWriter::to_json",
  };
  return kSinks;
}

bool is_sink(const std::string& qualified) {
  for (const std::string& spec : sink_specs()) {
    if (qualified == spec || ends_with(qualified, "::" + spec)) return true;
  }
  return false;
}

void pass_taint(const Model& m, const CallGraph& g, std::vector<Finding>& out) {
  std::vector<char> tainted(m.functions.size(), 0);
  std::vector<std::size_t> pred(m.functions.size(), SIZE_MAX);
  std::deque<std::size_t> queue;
  for (std::size_t i = 0; i < m.functions.size(); ++i) {
    if (!m.functions[i].seeds.empty()) {
      tainted[i] = 1;
      queue.push_back(i);
    }
  }
  while (!queue.empty()) {
    const std::size_t v = queue.front();
    queue.pop_front();
    for (const std::size_t u : g.rev[v]) {
      if (tainted[u]) continue;
      tainted[u] = 1;
      pred[u] = v;  // u is tainted because u calls v
      queue.push_back(u);
    }
  }
  for (std::size_t s = 0; s < m.functions.size(); ++s) {
    if (!tainted[s] || !is_sink(m.functions[s].qualified)) continue;
    std::vector<std::string> path;
    std::size_t cur = s;
    path.push_back(m.functions[cur].qualified);
    while (pred[cur] != SIZE_MAX) {
      cur = pred[cur];
      path.push_back(m.functions[cur].qualified);
    }
    const Function& origin = m.functions[cur];
    const TaintSeed& seed = origin.seeds.front();
    Finding f;
    f.rule = "taint";
    f.file = origin.file;
    f.line = seed.line;
    f.symbol = m.functions[s].qualified;
    f.message = "determinism sink '" + m.functions[s].qualified +
                "' is tainted by " + seed.what + " primitive '" + seed.detail +
                "' in '" + origin.qualified + "'";
    f.path = std::move(path);
    out.push_back(std::move(f));
  }
}

// ---- observer discipline -------------------------------------------------

void pass_observer(const Model& m, const CallGraph& g,
                   std::vector<Finding>& out) {
  static const std::set<std::string> kCallbacks = {
      "on_loop_begin", "on_task_start", "on_task_finish", "on_loop_end"};
  static const std::set<std::string> kMutators = {
      "run_taskloop", "set_observer", "set_metrics", "schedule_at",
      "schedule_after", "cancel",     "begin_task",  "inject",
      "set_health",   "demote"};
  std::set<std::string> observer_classes;
  for (const ClassInfo& c : m.classes) {
    for (const std::string& base : c.bases) {
      if (base.find("TaskObserver") != std::string::npos) {
        observer_classes.insert(c.name);
      }
    }
  }
  std::set<std::string> reported;  // file:line:entry dedup
  for (std::size_t e = 0; e < m.functions.size(); ++e) {
    const Function& entry = m.functions[e];
    if (kCallbacks.count(entry.name) == 0 ||
        observer_classes.count(entry.class_name) == 0) {
      continue;
    }
    // Forward closure from the callback, tracking how each function was
    // reached so the finding can print the callback → mutation chain.
    std::vector<std::size_t> pred(m.functions.size(), SIZE_MAX);
    std::vector<char> visited(m.functions.size(), 0);
    std::deque<std::size_t> queue{e};
    visited[e] = 1;
    while (!queue.empty()) {
      const std::size_t u = queue.front();
      queue.pop_front();
      for (const CallSite& call : m.functions[u].calls) {
        if (kMutators.count(call.name) != 0) {
          Finding f;
          f.rule = "observer-mutation";
          f.file = m.functions[u].file;
          f.line = call.line;
          f.symbol = entry.qualified;
          f.message = "observer callback '" + entry.qualified +
                      "' reaches runtime mutation '" + call.name + "()' in '" +
                      m.functions[u].qualified +
                      "'; TaskObserver implementations must be read-only";
          for (std::size_t cur = u; cur != SIZE_MAX; cur = pred[cur]) {
            f.path.insert(f.path.begin(), m.functions[cur].qualified);
          }
          f.path.push_back(call.name + "()");
          const std::string key =
              f.file + ":" + std::to_string(f.line) + ":" + f.symbol;
          if (reported.insert(key).second) out.push_back(std::move(f));
        }
      }
      for (const std::size_t v : g.edges[u]) {
        if (!visited[v]) {
          visited[v] = 1;
          pred[v] = u;
          queue.push_back(v);
        }
      }
    }
  }
}

// ---- event-tag exhaustiveness --------------------------------------------

void pass_event_tags(const Model& m, std::vector<Finding>& out) {
  for (const TagTable& table : m.tag_tables) {
    for (const auto& [name, line] : table.constants) {
      if (table.handled.count(name) != 0) continue;
      Finding f;
      f.rule = "event-tag";
      f.file = table.file;
      f.line = line;
      f.symbol = name;
      f.message = "event tag '" + name +
                  "' has no `case` handler anywhere in the scanned tree "
                  "(selfcheck/trace switches must stay exhaustive)";
      out.push_back(std::move(f));
    }
  }
}

// ---- knob drift ----------------------------------------------------------

bool is_knob_char(char c) {
  return (std::isupper(static_cast<unsigned char>(c)) != 0) ||
         (std::isdigit(static_cast<unsigned char>(c)) != 0) || c == '_';
}

}  // namespace

std::map<std::string, int> scan_knob_mentions(std::string_view text) {
  std::map<std::string, int> out;
  int line = 1;
  for (std::size_t i = 0; i < text.size();) {
    if (text[i] == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (text.compare(i, 5, "ILAN_") == 0 &&
        (i == 0 || !is_knob_char(text[i - 1]))) {
      std::size_t j = i + 5;
      while (j < text.size() && is_knob_char(text[j])) ++j;
      if (j > i + 5) out.emplace(std::string(text.substr(i, j - i)), line);
      i = j;
      continue;
    }
    ++i;
  }
  return out;
}

namespace {

void pass_knobs(const Model& m, const Options& opts,
                std::vector<Finding>& out) {
  static const std::set<std::string> kReadContexts = {
      "parse_env_int", "parse_env_double", "parse_full_int",
      "parse_full_double", "env_flag", "getenv"};
  std::map<std::string, std::vector<const KnobUse*>> reads;
  for (const KnobUse& use : m.knobs) {
    if (kReadContexts.count(use.context) != 0) reads[use.knob].push_back(&use);
  }
  const bool readme_on = opts.check_readme && !opts.readme.empty();
  std::map<std::string, int> documented;
  if (readme_on) documented = scan_knob_mentions(opts.readme);

  // Function lookup for the weak-parse check. Keyed by (file, qualified):
  // qualified alone collides across the many per-binary `main`s.
  std::map<std::string, const Function*> by_qualified;
  for (const Function& fn : m.functions) {
    by_qualified.emplace(fn.file + "\t" + fn.qualified, &fn);
  }

  for (const auto& [knob, uses] : reads) {
    if (readme_on && documented.count(knob) == 0) {
      const KnobUse& first = *uses.front();
      Finding f;
      f.rule = "knob-drift";
      f.file = first.file;
      f.line = first.line;
      f.symbol = knob;
      f.message = "knob '" + knob +
                  "' is read here but missing from the README environment "
                  "table";
      out.push_back(std::move(f));
    }
    for (const KnobUse* use : uses) {
      if (use->context != "getenv" || use->function.empty()) continue;
      const auto it = by_qualified.find(use->file + "\t" + use->function);
      if (it == by_qualified.end()) continue;
      for (const CallSite& call : it->second->calls) {
        if (call.name == "atoi" || call.name == "atof") {
          Finding f;
          f.rule = "knob-drift";
          f.file = use->file;
          f.line = use->line;
          f.symbol = knob;
          f.message = "knob '" + knob + "' is parsed with std::" + call.name +
                      " (silent 0 on garbage); use obs::parse_env_int / "
                      "parse_env_double";
          out.push_back(std::move(f));
          break;
        }
      }
    }
  }
  if (readme_on) {
    for (const auto& [knob, line] : documented) {
      if (reads.count(knob) != 0 || opts.shell_knob_reads.count(knob) != 0) {
        continue;
      }
      Finding f;
      f.rule = "knob-drift";
      f.file = "README.md";
      f.line = line;
      f.symbol = knob;
      f.message = "knob '" + knob +
                  "' is documented but never read by any scanned source or "
                  "shell script (dead knob)";
      out.push_back(std::move(f));
    }
  }
}

// ---- metric-name grammar -------------------------------------------------

bool grammar_segment(std::string_view seg) {
  if (seg.empty() || std::islower(static_cast<unsigned char>(seg[0])) == 0) {
    return false;
  }
  return std::all_of(seg.begin(), seg.end(), [](unsigned char c) {
    return (std::islower(c) != 0) || (std::isdigit(c) != 0) || c == '_';
  });
}

bool grammar_complete(std::string_view name) {
  std::size_t segments = 0;
  std::size_t start = 0;
  while (true) {
    const auto dot = name.find('.', start);
    const auto seg = name.substr(start, dot == std::string_view::npos
                                            ? std::string_view::npos
                                            : dot - start);
    if (!grammar_segment(seg)) return false;
    ++segments;
    if (dot == std::string_view::npos) break;
    start = dot + 1;
  }
  return segments >= 2;
}

bool grammar_fragment(std::string_view frag) {
  return !frag.empty() && std::all_of(frag.begin(), frag.end(), [](unsigned char c) {
    return (std::islower(c) != 0) || (std::isdigit(c) != 0) || c == '_' ||
           c == '.';
  });
}

void pass_metrics(const Model& m, std::vector<Finding>& out) {
  std::map<std::string, std::set<std::string>> kinds;  // name → kinds seen
  std::map<std::string, const MetricUse*> first_use;
  for (const MetricUse& use : m.metrics) {
    const bool ok =
        use.complete ? grammar_complete(use.name) : grammar_fragment(use.name);
    if (!ok) {
      Finding f;
      f.rule = "metric-grammar";
      f.file = use.file;
      f.line = use.line;
      f.symbol = use.name;
      f.message = use.complete
                      ? "metric name '" + use.name +
                            "' violates the dotted grammar "
                            "segment(.segment)+, segment = [a-z][a-z0-9_]*"
                      : "metric name fragment '" + use.name +
                            "' contains characters outside [a-z0-9_.]";
      out.push_back(std::move(f));
    }
    if (use.complete) {
      kinds[use.name].insert(use.kind);
      first_use.emplace(use.name, &use);
    }
  }
  for (const auto& [name, seen] : kinds) {
    if (seen.size() <= 1) continue;
    const MetricUse& use = *first_use.at(name);
    std::string list;
    for (const std::string& k : seen) {
      if (!list.empty()) list += ", ";
      list += k;
    }
    Finding f;
    f.rule = "metric-grammar";
    f.file = use.file;
    f.line = use.line;
    f.symbol = name;
    f.message = "metric '" + name +
                "' is used with conflicting kinds (" + list +
                "); one name must keep one kind across registrations and "
                "lookups";
    out.push_back(std::move(f));
  }
}

// ---- allow() syntax ------------------------------------------------------

void pass_allow_syntax(const Model& m, std::vector<Finding>& out) {
  std::set<std::string> known;
  for (const RuleInfo& r : rules()) known.insert(r.name);
  for (const auto& [file, lines] : m.allows) {
    for (const auto& [line, allow] : lines) {
      std::string joined;
      for (const std::string& r : allow.rules) {
        if (!joined.empty()) joined += ",";
        joined += r;
      }
      if (!allow.has_justification) {
        Finding f;
        f.rule = "allow-syntax";
        f.file = file;
        f.line = line;
        f.symbol = joined;
        f.message = "ilan-verify: allow(" + joined +
                    ") has no quoted justification; the annotation does not "
                    "suppress anything until one is given";
        out.push_back(std::move(f));
        continue;
      }
      for (const std::string& r : allow.rules) {
        if (r == "all" || known.count(r) != 0) continue;
        Finding f;
        f.rule = "allow-syntax";
        f.file = file;
        f.line = line;
        f.symbol = r;
        f.message = "ilan-verify: allow() names unknown rule '" + r + "'";
        out.push_back(std::move(f));
      }
    }
  }
}

// ---- routing -------------------------------------------------------------

const lint::VerifyAllow* allow_at(const Model& m, const std::string& file,
                                  int line) {
  const auto fit = m.allows.find(file);
  if (fit == m.allows.end()) return nullptr;
  const auto lit = fit->second.find(line);
  if (lit == fit->second.end()) return nullptr;
  return &lit->second;
}

void sort_findings(std::vector<Finding>& v) {
  std::sort(v.begin(), v.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule, a.symbol) <
           std::tie(b.file, b.line, b.rule, b.symbol);
  });
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_finding(std::ostream& os, const Finding& f, const char* indent) {
  os << indent << "{\"rule\": \"" << json_escape(f.rule) << "\", \"file\": \""
     << json_escape(f.file) << "\", \"line\": " << f.line
     << ", \"symbol\": \"" << json_escape(f.symbol) << "\", \"message\": \""
     << json_escape(f.message) << "\"";
  if (!f.path.empty()) {
    os << ", \"path\": [";
    for (std::size_t i = 0; i < f.path.size(); ++i) {
      if (i != 0) os << ", ";
      os << "\"" << json_escape(f.path[i]) << "\"";
    }
    os << "]";
  }
  os << "}";
}

}  // namespace

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kRules = {
      {"taint",
       "no wall-clock/RNG/std::hash/pointer-identity taint reaching "
       "digest, trace or selfcheck sinks"},
      {"observer-mutation",
       "TaskObserver callbacks (and their callees) never mutate the "
       "runtime or scheduler"},
      {"event-tag",
       "every EventTag constant is handled by a `case` label somewhere"},
      {"knob-drift",
       "ILAN_* knobs: read ⇔ documented in the README, parsed strictly"},
      {"metric-grammar",
       "obs metric names follow segment(.segment)+ and keep one kind"},
      {"allow-syntax",
       "every allow() suppression carries a quoted justification"},
  };
  return kRules;
}

std::string finding_key(const Finding& f) {
  return f.rule + "\t" + f.file + "\t" + f.symbol;
}

Report analyze(const Model& model, const Options& opts) {
  const CallGraph graph = build_graph(model);
  std::vector<Finding> raw;
  pass_taint(model, graph, raw);
  pass_observer(model, graph, raw);
  pass_event_tags(model, raw);
  pass_knobs(model, opts, raw);
  pass_metrics(model, raw);
  pass_allow_syntax(model, raw);

  Report report;
  for (Finding& f : raw) {
    const lint::VerifyAllow* allow = allow_at(model, f.file, f.line);
    const bool matches =
        allow != nullptr &&
        (allow->rules.count(f.rule) != 0 || allow->rules.count("all") != 0);
    if (matches && allow->has_justification && f.rule != "allow-syntax") {
      report.suppressed.push_back({std::move(f), allow->justification});
    } else if (opts.baseline.count(finding_key(f)) != 0) {
      report.baselined.push_back(std::move(f));
    } else {
      report.findings.push_back(std::move(f));
    }
  }
  sort_findings(report.findings);
  sort_findings(report.baselined);
  std::sort(report.suppressed.begin(), report.suppressed.end(),
            [](const Suppressed& a, const Suppressed& b) {
              return std::tie(a.finding.file, a.finding.line, a.finding.rule) <
                     std::tie(b.finding.file, b.finding.line, b.finding.rule);
            });
  return report;
}

Report analyze_sources(const std::vector<SourceFile>& files,
                       const Options& opts) {
  return analyze(build_model(files), opts);
}

std::set<std::string> parse_baseline(std::string_view text) {
  std::set<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    auto end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.remove_suffix(1);
    }
    if (!line.empty() && line[0] != '#') out.emplace(line);
    start = end + 1;
  }
  return out;
}

void write_json(std::ostream& os, const Report& report) {
  os << "{\n  \"tool\": \"ilan-verify\",\n";
  os << "  \"counts\": {\"findings\": " << report.findings.size()
     << ", \"suppressed\": " << report.suppressed.size()
     << ", \"baselined\": " << report.baselined.size() << "},\n";
  os << "  \"findings\": [";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n");
    write_finding(os, report.findings[i], "    ");
  }
  os << (report.findings.empty() ? "]" : "\n  ]") << ",\n";
  os << "  \"suppressed\": [";
  for (std::size_t i = 0; i < report.suppressed.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n");
    const Suppressed& s = report.suppressed[i];
    os << "    {\"justification\": \"" << json_escape(s.justification)
       << "\", \"finding\": ";
    write_finding(os, s.finding, "");
    os << "}";
  }
  os << (report.suppressed.empty() ? "]" : "\n  ]") << ",\n";
  os << "  \"baselined\": [";
  for (std::size_t i = 0; i < report.baselined.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n");
    write_finding(os, report.baselined[i], "    ");
  }
  os << (report.baselined.empty() ? "]" : "\n  ]") << "\n}\n";
}

}  // namespace ilan::verify
