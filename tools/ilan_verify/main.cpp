// ilan-verify CLI.
//
//   ilan-verify [options] <dir|file>...
//       build the semantic model over every *.hpp/*.cpp/*.h/*.cc under the
//       given roots (skipping build*/.* directories) and run the rule
//       passes. *.sh files under the roots count as shell knob reads for
//       the knob-drift rule.
//   ilan-verify --list
//       print the rule table.
//
// Options:
//   --json FILE       write the machine-readable report to FILE
//   --baseline FILE   accept the finding keys listed in FILE (reported as
//                     "baselined", not fatal)
//   --readme FILE     README for the knob-drift documentation checks
//                     (default: ./README.md; checks are skipped with a note
//                     when it does not exist)
//   --no-readme       skip the README-side knob checks
//
// File paths in findings are reported relative to each root's parent
// (e.g. "src/sim/engine.hpp"), so baseline keys are stable no matter where
// the binary is invoked from.
//
// Exit status: 0 clean, 1 findings, 2 usage/IO error.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "ilan_verify/verify.hpp"

namespace {

namespace fs = std::filesystem;

bool read_file(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

bool is_source_ext(const fs::path& p) {
  const auto ext = p.extension();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

bool skip_dir(const fs::path& p) {
  const std::string name = p.filename().string();
  return name.rfind("build", 0) == 0 || (!name.empty() && name[0] == '.');
}

struct Inputs {
  std::vector<ilan::verify::SourceFile> sources;
  std::set<std::string> shell_knob_reads;
};

int collect(const std::string& root_arg, Inputs& inputs) {
  const fs::path root = fs::path(root_arg).lexically_normal();
  auto add = [&](const fs::path& file, const std::string& display) -> int {
    std::string content;
    if (!read_file(file, content)) {
      std::cerr << "ilan-verify: cannot read '" << file.string() << "'\n";
      return 2;
    }
    if (file.extension() == ".sh") {
      for (const auto& [knob, line] : ilan::verify::scan_knob_mentions(content)) {
        (void)line;
        inputs.shell_knob_reads.insert(knob);
      }
    } else {
      inputs.sources.push_back({display, std::move(content)});
    }
    return 0;
  };
  if (fs::is_regular_file(root)) {
    return add(root, root.generic_string());
  }
  if (!fs::is_directory(root)) {
    std::cerr << "ilan-verify: no such file or directory: '" << root_arg << "'\n";
    return 2;
  }
  std::vector<fs::path> files;
  fs::recursive_directory_iterator it(root), end;
  while (it != end) {
    if (it->is_directory() && skip_dir(it->path())) {
      it.disable_recursion_pending();
    } else if (it->is_regular_file() &&
               (is_source_ext(it->path()) || it->path().extension() == ".sh")) {
      files.push_back(it->path());
    }
    ++it;
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& file : files) {
    // Display as "<root-name>/relative", e.g. "src/sim/engine.hpp".
    const fs::path rel = file.lexically_relative(root);
    const std::string display = (root.filename() / rel).generic_string();
    if (const int rc = add(file, display); rc != 0) return rc;
  }
  return 0;
}

void print_finding(const ilan::verify::Finding& f) {
  std::cout << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
            << "\n";
  if (f.path.size() > 1) {
    std::cout << "    call path:";
    for (const std::string& hop : f.path) std::cout << " -> " << hop;
    std::cout << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (!args.empty() && args[0] == "--list") {
    for (const auto& r : ilan::verify::rules()) {
      std::cout << r.name << "  " << r.description << "\n";
    }
    return 0;
  }
  std::string json_path;
  std::string baseline_path;
  std::string readme_path;
  bool no_readme = false;
  std::vector<std::string> roots;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto value = [&](const char* flag) -> const std::string* {
      if (i + 1 >= args.size()) {
        std::cerr << "ilan-verify: " << flag << " needs an argument\n";
        return nullptr;
      }
      return &args[++i];
    };
    if (a == "--json") {
      const auto* v = value("--json");
      if (v == nullptr) return 2;
      json_path = *v;
    } else if (a == "--baseline") {
      const auto* v = value("--baseline");
      if (v == nullptr) return 2;
      baseline_path = *v;
    } else if (a == "--readme") {
      const auto* v = value("--readme");
      if (v == nullptr) return 2;
      readme_path = *v;
    } else if (a == "--no-readme") {
      no_readme = true;
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "ilan-verify: unknown option '" << a << "'\n";
      return 2;
    } else {
      roots.push_back(a);
    }
  }
  if (roots.empty()) {
    std::cerr << "usage: ilan-verify [--list] [--json FILE] [--baseline FILE]"
                 " [--readme FILE] [--no-readme] <dir|file>...\n";
    return 2;
  }

  Inputs inputs;
  for (const std::string& root : roots) {
    if (const int rc = collect(root, inputs); rc != 0) return rc;
  }

  ilan::verify::Options opts;
  opts.shell_knob_reads = std::move(inputs.shell_knob_reads);
  opts.check_readme = !no_readme;
  if (opts.check_readme) {
    const fs::path readme = readme_path.empty() ? "README.md" : readme_path;
    if (!read_file(readme, opts.readme)) {
      if (!readme_path.empty()) {
        std::cerr << "ilan-verify: cannot read '" << readme_path << "'\n";
        return 2;
      }
      std::cerr << "ilan-verify: note: no README.md here; knob documentation "
                   "checks skipped (pass --readme FILE to enable)\n";
      opts.check_readme = false;
    }
  }
  if (!baseline_path.empty()) {
    std::string text;
    if (!read_file(baseline_path, text)) {
      std::cerr << "ilan-verify: cannot read baseline '" << baseline_path
                << "'\n";
      return 2;
    }
    opts.baseline = ilan::verify::parse_baseline(text);
  }

  const ilan::verify::Report report =
      ilan::verify::analyze_sources(inputs.sources, opts);

  for (const auto& f : report.findings) print_finding(f);
  for (const auto& f : report.baselined) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule
              << "] (baselined) " << f.message << "\n";
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::cerr << "ilan-verify: cannot write '" << json_path << "'\n";
      return 2;
    }
    ilan::verify::write_json(out, report);
  }
  std::cout << "ilan-verify: " << inputs.sources.size() << " files, "
            << report.findings.size() << " finding(s), "
            << report.suppressed.size() << " suppressed, "
            << report.baselined.size() << " baselined\n";
  return report.findings.empty() ? 0 : 1;
}
