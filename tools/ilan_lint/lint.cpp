#include "ilan_lint/lint.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "ilan_lint/lex.hpp"

namespace ilan::lint {

namespace {

class Linter {
 public:
  Linter(std::string path, const Lexed& lx) : path_(std::move(path)), lx_(lx) {}

  std::vector<Finding> run() {
    collect_unordered_names();
    const auto& toks = lx_.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      check_wall_clock(i);
      check_rand(i);
      check_std_hash(i);
      check_unordered_iter(i);
      check_callback_sbo(i);
    }
    return std::move(findings_);
  }

 private:
  void add(std::size_t tok_idx, const std::string& rule, std::string message) {
    const int line = lx_.tokens[tok_idx].line;
    const auto it = lx_.allows.find(line);
    if (it != lx_.allows.end() &&
        (it->second.count(rule) != 0 || it->second.count("all") != 0)) {
      return;
    }
    findings_.push_back(Finding{path_, line, rule, std::move(message)});
  }

  // Skips a balanced <...> starting at `i` (which must point at '<').
  // Returns the index just past the closing '>', or `i` when unbalanced.
  [[nodiscard]] std::size_t skip_angles(std::size_t i) const {
    const auto& toks = lx_.tokens;
    int depth = 0;
    std::size_t j = i;
    for (; j < toks.size(); ++j) {
      if (toks[j].text == "<") ++depth;
      if (toks[j].text == ">" && --depth == 0) return j + 1;
      if (toks[j].text == ";") break;  // statement ended: not template args
    }
    return i;
  }

  void collect_unordered_names() {
    const auto& toks = lx_.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].text.rfind("unordered_", 0) != 0) continue;
      std::size_t j = i + 1;
      if (j < toks.size() && toks[j].text == "<") j = skip_angles(j);
      while (j < toks.size() &&
             (toks[j].text == "*" || toks[j].text == "&" || toks[j].text == "const")) {
        ++j;
      }
      if (j < toks.size() && is_identifier(toks[j])) {
        unordered_names_.insert(toks[j].text);
      }
    }
  }

  void check_wall_clock(std::size_t i) {
    static const std::set<std::string> kBanned = {
        "steady_clock",  "system_clock", "high_resolution_clock",
        "gettimeofday",  "clock_gettime", "timespec_get"};
    const auto& t = lx_.tokens[i].text;
    if (kBanned.count(t) != 0) {
      add(i, "wall-clock",
          "'" + t + "': simulation code must take time from sim::Engine, not the host clock");
    }
  }

  void check_rand(std::size_t i) {
    static const std::set<std::string> kBanned = {
        "rand",    "srand",      "random_device",        "mt19937",
        "mt19937_64", "minstd_rand", "default_random_engine", "random_shuffle"};
    const auto& t = lx_.tokens[i].text;
    if (kBanned.count(t) != 0) {
      add(i, "rand",
          "'" + t + "': simulation code must draw randomness from sim::rng (seeded), "
          "not host RNGs");
    }
  }

  void check_std_hash(std::size_t i) {
    const auto& toks = lx_.tokens;
    if (i + 3 < toks.size() && toks[i].text == "std" && toks[i + 1].text == ":" &&
        toks[i + 2].text == ":" && toks[i + 3].text == "hash") {
      add(i + 3, "std-hash",
          "std::hash values are implementation-defined; simulation state must not "
          "depend on them");
    }
  }

  void check_unordered_iter(std::size_t i) {
    const auto& toks = lx_.tokens;
    // Range-for whose range expression names an unordered container.
    if (toks[i].text == "for" && i + 1 < toks.size() && toks[i + 1].text == "(") {
      int depth = 0;
      std::size_t colon = 0;
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        if (toks[j].text == "(") ++depth;
        if (toks[j].text == ")" && --depth == 0) break;
        if (toks[j].text == ";") break;  // classic for loop
        const bool lone_colon =
            toks[j].text == ":" &&
            (j == 0 || toks[j - 1].text != ":") &&
            (j + 1 >= toks.size() || toks[j + 1].text != ":");
        if (depth == 1 && lone_colon) {
          colon = j;
          break;
        }
      }
      if (colon != 0) {
        int depth2 = 1;
        for (std::size_t j = colon + 1; j < toks.size(); ++j) {
          if (toks[j].text == "(") ++depth2;
          if (toks[j].text == ")" && --depth2 == 0) break;
          if (is_identifier(toks[j]) && (unordered_names_.count(toks[j].text) != 0 ||
                                         toks[j].text.rfind("unordered_", 0) == 0)) {
            add(i, "unordered-iter",
                "range-for over unordered container '" + toks[j].text +
                    "': bucket order is nondeterministic and must not feed "
                    "simulation state");
            return;
          }
        }
      }
    }
    // name.begin() / name->begin() on a tracked unordered container.
    if (is_identifier(toks[i]) && unordered_names_.count(toks[i].text) != 0 &&
        i + 2 < toks.size()) {
      const bool dot = toks[i + 1].text == ".";
      const bool arrow = toks[i + 1].text == "-" && toks[i + 2].text == ">";
      const std::size_t member = arrow ? i + 3 : i + 2;
      if ((dot || arrow) && member < toks.size() &&
          (toks[member].text == "begin" || toks[member].text == "cbegin")) {
        add(i, "unordered-iter",
            "iteration over unordered container '" + toks[i].text +
                "': bucket order is nondeterministic and must not feed simulation "
                "state");
      }
    }
  }

  void check_callback_sbo(std::size_t i) {
    const auto& toks = lx_.tokens;
    if (toks[i].text != "schedule_at" && toks[i].text != "schedule_after") return;
    if (i + 1 >= toks.size() || toks[i + 1].text != "(") return;
    // Find the first lambda introducer among the call's arguments.
    int depth = 0;
    std::size_t open = 0;
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      if (toks[j].text == "(") ++depth;
      if (toks[j].text == ")" && --depth == 0) break;
      if (toks[j].text == "[") {
        open = j;
        break;
      }
    }
    if (open == 0) return;  // no lambda argument (declaration or prebuilt Callback)
    // Count top-level captures between [ and ].
    int captures = 0;
    bool any = false;
    bool default_capture = false;
    int d_paren = 0, d_brace = 0, d_brack = 1;
    for (std::size_t j = open + 1; j < toks.size(); ++j) {
      const std::string& t = toks[j].text;
      if (t == "[") ++d_brack;
      if (t == "]" && --d_brack == 0) break;
      if (t == "(") ++d_paren;
      if (t == ")") --d_paren;
      if (t == "{") ++d_brace;
      if (t == "}") --d_brace;
      if (!any && (t == "=" || t == "&") && j + 1 < toks.size() &&
          (toks[j + 1].text == "]" || toks[j + 1].text == ",")) {
        default_capture = true;
      }
      any = true;
      if (t == "," && d_paren == 0 && d_brace == 0 && d_brack == 1) ++captures;
    }
    if (any) ++captures;
    if (default_capture) {
      add(open, "callback-sbo",
          "default capture in an engine callback: capture explicitly so the 64-byte "
          "inline budget (InlineCallback::kInlineBytes) stays auditable");
    } else if (captures > 8) {
      add(open, "callback-sbo",
          "engine callback captures " + std::to_string(captures) +
              " values; more than 8 risks overflowing the 64-byte inline buffer "
              "(InlineCallback::kInlineBytes) and heap-allocating on the hot path");
    }
  }

  std::string path_;
  const Lexed& lx_;
  std::set<std::string> unordered_names_;
  std::vector<Finding> findings_;
};

}  // namespace

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kRules = {
      {"wall-clock", "no host clocks in simulation code (use sim::Engine time)"},
      {"rand", "no host RNGs in simulation code (use sim::rng)"},
      {"unordered-iter", "no iteration over unordered containers feeding sim state"},
      {"std-hash", "no dependence on implementation-defined std::hash values"},
      {"callback-sbo", "engine callbacks stay within the 64-byte inline buffer"},
  };
  return kRules;
}

bool in_scope(std::string_view path) {
  for (const std::string_view dir :
       {"sim", "core", "rt", "mem", "fault", "obs", "sched", "serve",
        "kernels", "analysis"}) {
    const std::string mid = "/" + std::string(dir) + "/";
    if (path.find(mid) != std::string_view::npos) return true;
    if (path.rfind(std::string(dir) + "/", 0) == 0) return true;
  }
  return false;
}

std::vector<Finding> lint_source(const std::string& path, std::string_view source) {
  if (!in_scope(path)) return {};
  const Lexed lx = lex(source);  // default options: strings stripped, as always
  return Linter(path, lx).run();
}

std::vector<Finding> lint_tree(const std::string& src_root) {
  namespace fs = std::filesystem;
  std::vector<Finding> all;
  bool any_dir = false;
  for (const std::string_view dir :
       {"sim", "core", "rt", "mem", "fault", "obs", "sched", "serve",
        "kernels", "analysis"}) {
    const fs::path root = fs::path(src_root) / dir;
    if (!fs::is_directory(root)) continue;
    any_dir = true;
    std::vector<fs::path> files;
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      const auto ext = entry.path().extension();
      if (ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc") {
        files.push_back(entry.path());
      }
    }
    std::sort(files.begin(), files.end());
    for (const auto& file : files) {
      std::ifstream in(file, std::ios::binary);
      std::ostringstream ss;
      ss << in.rdbuf();
      const auto found = lint_source(file.string(), ss.str());
      all.insert(all.end(), found.begin(), found.end());
    }
  }
  if (!any_dir) {
    throw std::runtime_error("ilan-lint: no sim/core/rt/mem directories under '" +
                             src_root + "'");
  }
  return all;
}

}  // namespace ilan::lint
