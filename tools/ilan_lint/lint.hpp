// ilan-lint: repo-specific determinism and hot-path rules, enforced at the
// token level.
//
// The simulator's contract is "bit-identical results across runs, build
// modes and host thread counts". Generic tooling cannot see the
// repo-specific ways that contract breaks, so this linter encodes them:
//
//   wall-clock      simulation code (src/sim|core|rt|mem|fault|sched|serve|kernels|analysis) must
//                   derive time from sim::Engine, never the host clock.
//   rand            simulation code must draw randomness from sim::rng
//                   (seeded, self-contained), never libc/libstdc++ RNGs.
//   unordered-iter  no iteration over unordered containers in simulation
//                   code: bucket order is std::hash/libstdc++-dependent and
//                   feeds simulation state nondeterministically.
//   std-hash        std::hash values are implementation-defined; anything
//                   ordered by them diverges across standard libraries.
//   callback-sbo    engine event callbacks must fit the 64-byte inline
//                   buffer (InlineCallback::kInlineBytes): no default
//                   captures (unbounded) and at most 8 explicit captures in
//                   lambdas passed to schedule_at/schedule_after.
//
// Rules apply to files whose path lies under
// src/{sim,core,rt,mem,fault,obs,sched,serve,kernels,analysis};
// other paths lint clean by construction. A finding on line N is suppressed by a
// trailing comment on that line: // ilan-lint: allow(<rule>[,<rule>...]).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ilan::lint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct RuleInfo {
  std::string_view name;
  std::string_view summary;
};

// The rule table, in evaluation order.
[[nodiscard]] const std::vector<RuleInfo>& rules();

// True when scoped rules apply to `path` (under sim/, core/, rt/, mem/,
// fault/, obs/, sched/, serve/, kernels/ or analysis/).
[[nodiscard]] bool in_scope(std::string_view path);

// Lints one translation unit. `path` decides rule scope; `source` is the
// file's full contents.
[[nodiscard]] std::vector<Finding> lint_source(const std::string& path,
                                               std::string_view source);

// Lints every *.hpp/*.cpp under src_root/{sim,core,rt,mem,fault,obs,sched,serve,kernels,analysis}.
// Throws std::runtime_error when src_root has none of those directories (a wrong
// path must not pass as clean).
[[nodiscard]] std::vector<Finding> lint_tree(const std::string& src_root);

}  // namespace ilan::lint
