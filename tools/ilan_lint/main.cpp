// ilan-lint CLI.
//
//   ilan-lint <src-dir>       lint every *.hpp/*.cpp under {sim,core,rt,mem}
//   ilan-lint <file>...       lint specific files (scope rules still apply)
//   ilan-lint --list          print the rule table
//
// Exit status: 0 clean, 1 findings, 2 usage/IO error.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "ilan_lint/lint.hpp"

namespace {

int lint_paths(const std::vector<std::string>& paths) {
  std::vector<ilan::lint::Finding> all;
  for (const std::string& path : paths) {
    if (std::filesystem::is_directory(path)) {
      const auto found = ilan::lint::lint_tree(path);
      all.insert(all.end(), found.begin(), found.end());
    } else {
      std::ifstream in(path, std::ios::binary);
      if (!in) {
        std::cerr << "ilan-lint: cannot read '" << path << "'\n";
        return 2;
      }
      std::ostringstream ss;
      ss << in.rdbuf();
      const auto found = ilan::lint::lint_source(path, ss.str());
      all.insert(all.end(), found.begin(), found.end());
    }
  }
  for (const auto& f : all) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message << "\n";
  }
  if (all.empty()) {
    std::cout << "ilan-lint: clean\n";
    return 0;
  }
  std::cout << "ilan-lint: " << all.size() << " finding(s)\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (!args.empty() && args[0] == "--list") {
    for (const auto& r : ilan::lint::rules()) {
      std::cout << r.name << "  " << r.summary << "\n";
    }
    return 0;
  }
  if (args.empty()) {
    std::cerr << "usage: ilan-lint [--list] <src-dir | file...>\n";
    return 2;
  }
  try {
    return lint_paths(args);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}
