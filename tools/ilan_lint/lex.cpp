#include "ilan_lint/lex.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace ilan::lint {

namespace {

// `ilan-lint: allow(rand,wall-clock)` — comma-separated rule list, no
// justification required (lint predates the requirement and its findings
// are single-line/local; the justification lives in code review).
void record_lint_allow(Lexed& out, std::string_view comment, int line) {
  const std::string_view marker = "ilan-lint: allow(";
  const auto pos = comment.find(marker);
  if (pos == std::string_view::npos) return;
  const auto start = pos + marker.size();
  const auto close = comment.find(')', start);
  if (close == std::string_view::npos) return;
  std::string rules_text(comment.substr(start, close - start));
  std::stringstream ss(rules_text);
  std::string rule;
  while (std::getline(ss, rule, ',')) {
    rule.erase(std::remove_if(rule.begin(), rule.end(),
                              [](unsigned char c) { return std::isspace(c) != 0; }),
               rule.end());
    if (!rule.empty()) out.allows[line].insert(rule);
  }
}

// Verify-allow dialect: comma-separated rule names up to the first quote,
// then the mandatory quoted justification (backslash escapes honored) —
// e.g. `ilan-verify: allow(taint, "host time never reaches the digest")`.
// A missing justification is recorded as such, not ignored: the verify
// pass turns it into an `allow-syntax` finding.
void record_verify_allow(Lexed& out, std::string_view comment, int line) {
  const std::string_view marker = "ilan-verify: allow(";
  const auto pos = comment.find(marker);
  if (pos == std::string_view::npos) return;
  std::size_t i = pos + marker.size();
  VerifyAllow allow;
  std::string rule;
  auto flush_rule = [&] {
    rule.erase(std::remove_if(rule.begin(), rule.end(),
                              [](unsigned char c) { return std::isspace(c) != 0; }),
               rule.end());
    if (!rule.empty()) allow.rules.insert(rule);
    rule.clear();
  };
  while (i < comment.size()) {
    const char c = comment[i];
    if (c == '"') {
      // Quoted justification; runs to the closing quote.
      ++i;
      std::string just;
      while (i < comment.size() && comment[i] != '"') {
        if (comment[i] == '\\' && i + 1 < comment.size()) ++i;
        just += comment[i];
        ++i;
      }
      if (i < comment.size()) {
        allow.justification = just;
        allow.has_justification = true;
      }
      ++i;
    } else if (c == ',') {
      flush_rule();
      ++i;
    } else if (c == ')') {
      break;
    } else {
      rule += c;
      ++i;
    }
  }
  flush_rule();
  if (allow.rules.empty()) return;
  auto [it, inserted] = out.verify_allows.emplace(line, allow);
  if (!inserted) {
    // Two annotations landing on one line merge; the first justification
    // wins (one line, one reason).
    it->second.rules.insert(allow.rules.begin(), allow.rules.end());
    if (!it->second.has_justification && allow.has_justification) {
      it->second.justification = allow.justification;
      it->second.has_justification = true;
    }
  }
}

void record_allows(Lexed& out, std::string_view comment, int line) {
  record_lint_allow(out, comment, line);
  record_verify_allow(out, comment, line);
}

}  // namespace

bool is_identifier(const Token& t) {
  const char c = t.text.empty() ? '\0' : t.text[0];
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Comments are consumed (harvesting allow annotations at their opening
// line); string/char literals are dropped or kept per LexOptions;
// identifiers and numbers are whole tokens, every other non-space
// character is its own token.
Lexed lex(std::string_view src, LexOptions opts) {
  Lexed out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
    } else if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
    } else if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const auto eol = src.find('\n', i);
      const auto end = eol == std::string_view::npos ? n : eol;
      record_allows(out, src.substr(i, end - i), line);
      i = end;
    } else if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const int open_line = line;
      const auto close = src.find("*/", i + 2);
      const auto end = close == std::string_view::npos ? n : close + 2;
      record_allows(out, src.substr(i, end - i), open_line);
      for (std::size_t k = i; k < end; ++k) {
        if (src[k] == '\n') ++line;
      }
      i = end;
    } else if (c == '"' || c == '\'') {
      const char quote = c;
      const int open_line = line;
      ++i;
      std::string text;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) {
          text += src[i];
          ++i;
        }
        if (src[i] == '\n') ++line;
        text += src[i];
        ++i;
      }
      if (i < n) ++i;  // closing quote
      if (opts.keep_strings) {
        out.tokens.push_back({std::move(text), open_line, TokKind::kString});
      }
    } else if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      std::size_t j = i + 1;
      while (j < n && (std::isalnum(static_cast<unsigned char>(src[j])) != 0 ||
                       src[j] == '_')) {
        ++j;
      }
      const std::string_view id = src.substr(i, j - i);
      // Raw string literal R"delim( ... )delim" — without this the inner
      // quotes/parens of e.g. chrome_trace.cpp's JSON templates leak into
      // the token stream and unbalance brace matching.
      const bool raw_prefix =
          id == "R" || id == "u8R" || id == "uR" || id == "LR" || id == "UR";
      if (raw_prefix && j < n && src[j] == '"') {
        const auto open = src.find('(', j + 1);
        if (open != std::string_view::npos) {
          const std::string term =
              ")" + std::string(src.substr(j + 1, open - j - 1)) + "\"";
          const auto close = src.find(term, open + 1);
          const std::size_t body_end =
              close == std::string_view::npos ? n : close;
          const std::size_t end =
              close == std::string_view::npos ? n : close + term.size();
          const int open_line = line;
          for (std::size_t k = i; k < end; ++k) {
            if (src[k] == '\n') ++line;
          }
          if (opts.keep_strings) {
            out.tokens.push_back({std::string(src.substr(open + 1, body_end - open - 1)),
                                  open_line, TokKind::kString});
          }
          i = end;
          continue;
        }
      }
      out.tokens.push_back({std::string(id), line, TokKind::kIdent});
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t j = i + 1;
      while (j < n && (std::isalnum(static_cast<unsigned char>(src[j])) != 0 ||
                       src[j] == '.' || src[j] == '\'')) {
        ++j;
      }
      out.tokens.push_back({std::string(src.substr(i, j - i)), line, TokKind::kNumber});
      i = j;
    } else {
      out.tokens.push_back({std::string(1, c), line, TokKind::kPunct});
      ++i;
    }
  }
  return out;
}

}  // namespace ilan::lint
