// Shared heuristic C++ lexer for the repo's own static-analysis tools.
//
// ilan-lint (token rules) and ilan-verify (declaration/call model) both
// work from this token stream: comments are consumed (harvesting the
// tools' allow() annotations on the way), string/char literals are either
// dropped (lint's historical behavior) or kept as whole tokens
// (ilan-verify needs ILAN_* knob literals and metric names), identifiers
// and numbers are whole tokens, and every other non-space character is
// its own single-character token.
//
// Two annotation dialects are harvested into the Lexed result:
//
//   // ilan-lint: allow(rule[,rule...])
//       suppresses lint findings on the comment's (opening) line.
//
//   // ilan-verify: allow(taint, "single wall-clock read, gated off")
//       suppresses verify findings anchored on that line; multiple rules
//       may be listed before the quoted justification. The justification
//       is mandatory; an allow without one does not suppress and is
//       itself reported (rule `allow-syntax`), so every suppression in
//       the tree carries its reason. (This comment is a valid example on
//       purpose — the lexer harvests any comment matching the marker.)
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace ilan::lint {

enum class TokKind : std::uint8_t {
  kIdent,   // identifier or keyword
  kNumber,  // numeric literal (pp-number heuristic)
  kString,  // string/char literal *contents* (quotes stripped); only
            // produced when LexOptions.keep_strings is set
  kPunct,   // any other single character
};

struct Token {
  std::string text;
  int line = 0;
  TokKind kind = TokKind::kPunct;
};

// One harvested verify allow() annotation. `rules` may contain "all".
// `justification` is empty when the annotation omitted the mandatory
// quoted string — the verify pass reports that instead of suppressing.
struct VerifyAllow {
  std::set<std::string> rules;
  std::string justification;
  bool has_justification = false;
};

struct Lexed {
  std::vector<Token> tokens;
  // line -> lint rules allowed on that line ("all" allows everything).
  std::map<int, std::set<std::string>> allows;
  // line -> verify allow annotation opening on that line.
  std::map<int, VerifyAllow> verify_allows;
};

struct LexOptions {
  // Keep string/char literals as kString tokens instead of dropping them.
  bool keep_strings = false;
};

[[nodiscard]] Lexed lex(std::string_view src, LexOptions opts = {});

// True for kIdent tokens (textual check kept for lint's historical use).
[[nodiscard]] bool is_identifier(const Token& t);

}  // namespace ilan::lint
