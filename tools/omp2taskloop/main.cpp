// omp2taskloop CLI: reads a source file (or stdin with "-"), writes the
// converted source to stdout, warnings to stderr.
#include <fstream>
#include <iostream>
#include <sstream>

#include "omp2taskloop/convert.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: omp2taskloop <file.c|file.cpp|->\n"
                 "Rewrites '#pragma omp (parallel) for' into taskloop form.\n";
    return 2;
  }
  std::string source;
  if (std::string_view(argv[1]) == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    source = ss.str();
  } else {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "omp2taskloop: cannot open " << argv[1] << '\n';
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    source = ss.str();
  }

  const auto result = omp2taskloop::convert(source);
  std::cout << result.output;
  for (const auto& w : result.warnings) std::cerr << "warning: " << w << '\n';
  std::cerr << result.loops_converted << " loop directive(s) converted\n";
  return 0;
}
