// omp2taskloop — rewrites OpenMP work-sharing loop directives into taskloop
// directives (the simple conversion tool the paper mentions using to adapt
// data-parallel benchmarks for a tasking scheduler).
//
// Rewrites performed, preserving indentation and line structure:
//   #pragma omp parallel for [clauses]
//     -> #pragma omp parallel
//        #pragma omp single
//        #pragma omp taskloop [translated clauses]
//   #pragma omp for [clauses]
//     -> #pragma omp taskloop [translated clauses]
//
// Clause translation: schedule(...) and ordered are dropped (meaningless
// for taskloop; a warning is recorded); nowait is preserved on plain `for`
// conversions and dropped for `parallel for`; everything else passes
// through. Continuation lines (trailing backslash) are handled.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace omp2taskloop {

struct Conversion {
  std::string output;                 // rewritten source
  int loops_converted = 0;            // directives rewritten
  std::vector<std::string> warnings;  // dropped clauses etc., one per event
};

[[nodiscard]] Conversion convert(std::string_view source);

}  // namespace omp2taskloop
