#include "omp2taskloop/convert.hpp"

#include <cctype>
#include <sstream>

namespace omp2taskloop {
namespace {

std::string_view ltrim(std::string_view s) {
  std::size_t i = 0;
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
  return s.substr(i);
}

// Splits a clause list like "schedule(static, 4) private(i) nowait" into
// top-level clauses (parenthesis-aware).
std::vector<std::string> split_clauses(std::string_view text) {
  std::vector<std::string> out;
  std::string cur;
  int depth = 0;
  for (const char c : text) {
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if ((c == ' ' || c == '\t' || c == ',') && depth == 0) {
      if (!cur.empty()) {
        out.push_back(cur);
        cur.clear();
      }
      continue;
    }
    cur += c;
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

std::string clause_head(const std::string& clause) {
  const auto p = clause.find('(');
  return p == std::string::npos ? clause : clause.substr(0, p);
}

}  // namespace

Conversion convert(std::string_view source) {
  Conversion result;
  std::ostringstream out;

  // Walk line by line, joining directive continuation lines.
  std::size_t pos = 0;
  int line_no = 0;
  bool first = true;
  while (pos <= source.size()) {
    if (pos == source.size() && !first) break;
    const auto nl = source.find('\n', pos);
    std::string line(source.substr(
        pos, nl == std::string_view::npos ? std::string_view::npos : nl - pos));
    pos = (nl == std::string_view::npos) ? source.size() : nl + 1;
    ++line_no;
    const bool had_newline = nl != std::string_view::npos;
    first = false;

    const std::string_view trimmed = ltrim(line);
    const std::string indent(line.substr(0, line.size() - trimmed.size()));

    std::string_view rest = trimmed;
    if (!rest.starts_with("#pragma")) {
      out << line;
      if (had_newline) out << '\n';
      continue;
    }
    // Join continuation lines into `line`.
    std::string directive(line);
    while (!directive.empty() && directive.back() == '\\' && pos <= source.size()) {
      directive.pop_back();
      const auto nl2 = source.find('\n', pos);
      const std::string cont(source.substr(
          pos, nl2 == std::string_view::npos ? std::string_view::npos : nl2 - pos));
      pos = (nl2 == std::string_view::npos) ? source.size() : nl2 + 1;
      ++line_no;
      directive += ' ';
      directive += std::string(ltrim(cont));
    }

    std::string_view d = ltrim(directive);
    d.remove_prefix(7);  // "#pragma"
    d = ltrim(d);
    if (!d.starts_with("omp")) {
      out << directive;
      if (had_newline || pos <= source.size()) out << '\n';
      continue;
    }
    d.remove_prefix(3);
    d = ltrim(d);

    bool parallel_for = false;
    bool plain_for = false;
    if (d.starts_with("parallel")) {
      auto after = ltrim(d.substr(8));
      if (after.starts_with("for") &&
          (after.size() == 3 || !(std::isalnum(static_cast<unsigned char>(after[3])) ||
                                  after[3] == '_'))) {
        parallel_for = true;
        d = after.substr(3);
      }
    } else if (d.starts_with("for") &&
               (d.size() == 3 || !(std::isalnum(static_cast<unsigned char>(d[3])) ||
                                   d[3] == '_'))) {
      plain_for = true;
      d = d.substr(3);
    }

    if (!parallel_for && !plain_for) {
      out << directive;
      if (had_newline || pos <= source.size()) out << '\n';
      continue;
    }

    // Translate the clause list.
    std::string kept;
    for (const auto& clause : split_clauses(d)) {
      const std::string head = clause_head(clause);
      if (head == "schedule" || head == "ordered") {
        result.warnings.push_back("line " + std::to_string(line_no) + ": dropped '" +
                                  clause + "' (not applicable to taskloop)");
        continue;
      }
      if (head == "nowait" && parallel_for) {
        result.warnings.push_back("line " + std::to_string(line_no) +
                                  ": dropped 'nowait' (parallel for conversion)");
        continue;
      }
      kept += ' ';
      kept += clause;
    }

    if (parallel_for) {
      out << indent << "#pragma omp parallel\n"
          << indent << "#pragma omp single\n"
          << indent << "#pragma omp taskloop" << kept << '\n';
    } else {
      out << indent << "#pragma omp taskloop" << kept << '\n';
    }
    ++result.loops_converted;
  }

  result.output = out.str();
  return result;
}

}  // namespace omp2taskloop
