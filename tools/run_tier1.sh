#!/usr/bin/env bash
# Tier-1 gate: configure, build, and run the full ctest suite.
#
#   tools/run_tier1.sh                         # plain build in build/
#   ILAN_SANITIZE=address tools/run_tier1.sh   # ASan build in build-asan/
#   ILAN_SANITIZE=thread  tools/run_tier1.sh   # TSan build in build-tsan/
#
# Sanitized builds get their own build directory so they never dirty the
# primary one. The TSan run is what keeps the bench harness's run_many
# worker pool honest: the suite's parallel-vs-sequential determinism tests
# execute under instrumentation.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 2)"
san="${ILAN_SANITIZE:-}"
case "$san" in
  "")      build_dir=build ;;
  address) build_dir=build-asan ;;
  thread)  build_dir=build-tsan ;;
  *) echo "ILAN_SANITIZE must be 'address' or 'thread', got '$san'" >&2; exit 2 ;;
esac

cmake -B "$build_dir" -S . ${san:+-DILAN_SANITIZE="$san"}
cmake --build "$build_dir" -j "$jobs"
ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"
