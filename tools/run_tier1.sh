#!/usr/bin/env bash
# Tier-1 gate: configure, build, and run the full ctest suite.
#
#   tools/run_tier1.sh                            # plain build in build/
#   tools/run_tier1.sh lint                       # ilan-lint + clang-tidy
#   tools/run_tier1.sh analyze                    # sanitizer matrix + selfcheck
#   tools/run_tier1.sh faults                     # fault-injection gate
#   tools/run_tier1.sh obs                        # observability gate
#   tools/run_tier1.sh sched                      # scheduler-registry gate
#   tools/run_tier1.sh solver                     # incremental-solver gate
#   tools/run_tier1.sh serve                      # serving-layer SLO gate
#   tools/run_tier1.sh dag                        # task-graph gate
#   tools/run_tier1.sh topo                       # topology-registry gate
#   ILAN_SANITIZE=address   tools/run_tier1.sh    # ASan build in build-asan/
#   ILAN_SANITIZE=thread    tools/run_tier1.sh    # TSan build in build-tsan/
#   ILAN_SANITIZE=undefined tools/run_tier1.sh    # UBSan build in build-ubsan/
#
# Sanitized builds get their own build directory so they never dirty the
# primary one. The TSan run is what keeps the bench harness's run_many
# worker pool honest: the suite's parallel-vs-sequential determinism tests
# execute under instrumentation.
#
# `lint` builds the primary tree, runs ilan-lint over src/, runs the
# ilan-verify semantic analysis (call-graph taint, observer discipline,
# event-tag exhaustiveness, knob drift, metric grammar — DESIGN.md §14)
# over src/ bench/ tools/ against the checked-in baseline, and — when
# clang-tidy is installed — runs the .clang-tidy baseline over the
# simulation sources using the exported compile commands. A missing
# clang-tidy is a printed skip by default and a hard failure with
# ILAN_REQUIRE_CLANG_TIDY=1.
#
# `analyze` is the full correctness-analysis pass: lint + ilan-verify on
# the primary build, the ASan/TSan/UBSan matrix (each suite in its own
# build dir — their full ctest runs repeat the ilan_verify_gate under
# instrumentation) plus the determinism/race selfcheck binary
# (bench/selfcheck) on the primary build.
#
# `faults` is the fault-injection gate: the fault-focused test binaries and
# `bench/selfcheck --faults` (digest parity for every shipped ILAN_FAULTS
# scenario + watchdog structured-failure check) run on the primary build and
# then under each sanitizer build — deterministic perturbation must stay
# deterministic with instrumentation and a racing run_many pool.
#
# `obs` is the observability gate: the full selfcheck sweep with
# ILAN_METRICS=1 (so 2-run digest parity and jobs=1-vs-4 parity also cover
# the metrics-registry digests), run on the primary build and then under
# ASan and TSan — attaching the registry must not perturb the committed
# event stream, and the metrics themselves must be bit-reproducible.
#
# `sched` is the scheduler-registry gate: the registry/spec unit tests plus
# the sched_equivalence digest gate (registry-built schedulers must
# reproduce the pre-refactor monolithic schedulers bit-for-bit), run on the
# primary build and then under ASan and TSan.
#
# `serve` is the serving-layer gate: the serve unit tests,
# `bench/selfcheck --serve` (2-run digest + metrics parity and jobs=1-vs-4
# seed-series parity for every traffic scenario, plus the overload
# engagement check: shedding AND breaker trips), and the bench/serve_slo
# nominal-SLO gate (shed-rate floor + p99 bound). Runs on the primary
# build and then under ASan and TSan — admission, deadline watchdogs,
# backoff and breakers must stay bit-deterministic with instrumentation.
#
# `dag` is the task-graph gate: the task-graph unit tests (rt + analysis
# release-edge races + sched narrowed-carve matrix) and
# `bench/selfcheck --dag` (2-run digest + metrics parity and race-audit
# cleanliness for every DAG kernel under the standard schedulers plus
# dist=dep-aware, and jobs=1-vs-4 run_many parity over the DAG path). Runs
# on the primary build and then under ASan and TSan.
#
# `topo` is the topology-registry gate: the topo unit tests (registry spec
# grammar, builder validation, far tier, heterogeneous cores) and
# `bench/selfcheck --topo` (2-run digest + metrics parity and jobs=1-vs-4
# parity for every registered ILAN_TOPO topology, plus the default ==
# legacy-zen4-preset anchor). Runs on the primary build and then under
# ASan and TSan.
#
# `solver` is the incremental-solver gate: the FlowNetwork unit tests
# (including the randomized full-vs-delta equivalence test), the
# bench/solver_gate regression gate (delta-vs-rebuild speedup floor, cache
# hit-rate floor, events/s floor — timing floors disable themselves in
# sanitized builds), and a solver_gate rerun with ILAN_SOLVER_CHECK=1 so
# every resolve of the sp/cg runs is cross-checked bit-for-bit against a
# from-scratch solve. Runs on the primary build and then under ASan and
# TSan.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 2)"
mode="${1:-build}"

build_one() {
  local san="$1" build_dir
  case "$san" in
    "")        build_dir=build ;;
    address)   build_dir=build-asan ;;
    thread)    build_dir=build-tsan ;;
    undefined) build_dir=build-ubsan ;;
    *) echo "ILAN_SANITIZE must be 'address', 'thread' or 'undefined', got '$san'" >&2
       exit 2 ;;
  esac
  cmake -B "$build_dir" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    ${san:+-DILAN_SANITIZE="$san"}
  cmake --build "$build_dir" -j "$jobs"
  ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"
}

run_lint() {
  cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
  cmake --build build -j "$jobs" --target ilan-lint ilan-verify
  echo "== ilan-lint src/ =="
  ./build/tools/ilan-lint src
  echo "== ilan-verify src/ bench/ tools/ (semantic analysis) =="
  ./build/tools/ilan-verify --baseline tools/ilan_verify/baseline.txt \
    --readme README.md src bench tools
  if command -v clang-tidy >/dev/null 2>&1; then
    echo "== clang-tidy (baseline .clang-tidy) =="
    find src -name '*.cpp' -print0 |
      xargs -0 -P "$jobs" -n 4 clang-tidy -p build --quiet
  elif [ "${ILAN_REQUIRE_CLANG_TIDY:-0}" != "0" ]; then
    echo "== clang-tidy not installed but ILAN_REQUIRE_CLANG_TIDY is set: failing ==" >&2
    exit 1
  else
    echo "== clang-tidy not installed; skipped (ilan-lint/ilan-verify still gate;" \
         "set ILAN_REQUIRE_CLANG_TIDY=1 to make this a failure) =="
  fi
}

run_faults_one() {
  local san="$1" build_dir
  case "$san" in
    "")        build_dir=build ;;
    address)   build_dir=build-asan ;;
    thread)    build_dir=build-tsan ;;
    undefined) build_dir=build-ubsan ;;
  esac
  cmake -B "$build_dir" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    ${san:+-DILAN_SANITIZE="$san"}
  cmake --build "$build_dir" -j "$jobs" --target selfcheck test_fault
  echo "== fault tests (${san:-plain}) =="
  ctest --test-dir "$build_dir" --output-on-failure -j "$jobs" -R 'Fault|fault'
  echo "== selfcheck --faults (${san:-plain}) =="
  ILAN_BENCH_JSON=0 "./$build_dir/bench/selfcheck" --faults
}

run_obs_one() {
  local san="$1" build_dir
  case "$san" in
    "")        build_dir=build ;;
    address)   build_dir=build-asan ;;
    thread)    build_dir=build-tsan ;;
    undefined) build_dir=build-ubsan ;;
  esac
  cmake -B "$build_dir" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    ${san:+-DILAN_SANITIZE="$san"}
  cmake --build "$build_dir" -j "$jobs" --target selfcheck test_obs test_trace
  echo "== obs + trace tests (${san:-plain}) =="
  "./$build_dir/tests/test_obs"
  "./$build_dir/tests/test_trace"
  echo "== selfcheck with ILAN_METRICS=1 (${san:-plain}) =="
  ILAN_BENCH_JSON=0 ILAN_METRICS=1 "./$build_dir/bench/selfcheck"
}

run_sched_one() {
  local san="$1" build_dir
  case "$san" in
    "")        build_dir=build ;;
    address)   build_dir=build-asan ;;
    thread)    build_dir=build-tsan ;;
    undefined) build_dir=build-ubsan ;;
  esac
  cmake -B "$build_dir" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    ${san:+-DILAN_SANITIZE="$san"}
  cmake --build "$build_dir" -j "$jobs" --target test_sched test_sched_equivalence
  echo "== scheduler registry tests (${san:-plain}) =="
  "./$build_dir/tests/test_sched"
  echo "== sched_equivalence digest gate (${san:-plain}) =="
  "./$build_dir/tests/test_sched_equivalence"
}

run_dag_one() {
  local san="$1" build_dir
  case "$san" in
    "")        build_dir=build ;;
    address)   build_dir=build-asan ;;
    thread)    build_dir=build-tsan ;;
    undefined) build_dir=build-ubsan ;;
  esac
  cmake -B "$build_dir" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    ${san:+-DILAN_SANITIZE="$san"}
  cmake --build "$build_dir" -j "$jobs" --target selfcheck test_rt test_analysis test_sched
  echo "== task-graph unit tests (${san:-plain}) =="
  "./$build_dir/tests/test_rt" --gtest_filter='TaskGraph.*:Team.*'
  "./$build_dir/tests/test_analysis" --gtest_filter='RaceAuditorGraph.*'
  "./$build_dir/tests/test_sched" --gtest_filter='SchedDist.*:SchedRegistry.DepAware*'
  echo "== selfcheck --dag (${san:-plain}) =="
  ILAN_BENCH_JSON=0 "./$build_dir/bench/selfcheck" --dag
}

run_topo_one() {
  local san="$1" build_dir
  case "$san" in
    "")        build_dir=build ;;
    address)   build_dir=build-asan ;;
    thread)    build_dir=build-tsan ;;
    undefined) build_dir=build-ubsan ;;
  esac
  cmake -B "$build_dir" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    ${san:+-DILAN_SANITIZE="$san"}
  cmake --build "$build_dir" -j "$jobs" --target selfcheck test_topo test_mem_system
  echo "== topology tests (${san:-plain}) =="
  "./$build_dir/tests/test_topo"
  echo "== far-tier memory tests (${san:-plain}) =="
  "./$build_dir/tests/test_mem_system" --gtest_filter='FarTier.*'
  echo "== selfcheck --topo (${san:-plain}) =="
  ILAN_BENCH_JSON=0 "./$build_dir/bench/selfcheck" --topo
}

run_solver_one() {
  local san="$1" build_dir
  case "$san" in
    "")        build_dir=build ;;
    address)   build_dir=build-asan ;;
    thread)    build_dir=build-tsan ;;
    undefined) build_dir=build-ubsan ;;
  esac
  cmake -B "$build_dir" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    ${san:+-DILAN_SANITIZE="$san"}
  cmake --build "$build_dir" -j "$jobs" --target test_mem_flow solver_gate
  echo "== FlowNetwork tests incl. full-vs-delta equivalence (${san:-plain}) =="
  "./$build_dir/tests/test_mem_flow"
  echo "== solver_gate (${san:-plain}) =="
  ILAN_BENCH_JSON=0 "./$build_dir/bench/solver_gate"
  echo "== solver_gate with ILAN_SOLVER_CHECK=1 (${san:-plain}) =="
  ILAN_BENCH_JSON=0 ILAN_SOLVER_CHECK=1 ILAN_SOLVER_MIN_SPEEDUP=0 \
    ILAN_SOLVER_MIN_EVPS=0 "./$build_dir/bench/solver_gate"
}

run_serve_one() {
  local san="$1" build_dir
  case "$san" in
    "")        build_dir=build ;;
    address)   build_dir=build-asan ;;
    thread)    build_dir=build-tsan ;;
    undefined) build_dir=build-ubsan ;;
  esac
  cmake -B "$build_dir" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    ${san:+-DILAN_SANITIZE="$san"}
  cmake --build "$build_dir" -j "$jobs" --target test_serve selfcheck serve_slo
  echo "== serve tests (${san:-plain}) =="
  "./$build_dir/tests/test_serve"
  echo "== selfcheck --serve (${san:-plain}) =="
  ILAN_BENCH_JSON=0 "./$build_dir/bench/selfcheck" --serve
  echo "== serve_slo nominal-SLO gate (${san:-plain}) =="
  ILAN_BENCH_JSON=0 "./$build_dir/bench/serve_slo"
}

case "$mode" in
  build)
    build_one "${ILAN_SANITIZE:-}"
    ;;
  lint)
    run_lint
    ;;
  analyze)
    run_lint
    for san in address thread undefined; do
      echo "== sanitizer: $san =="
      build_one "$san"
    done
    echo "== determinism/race selfcheck =="
    cmake --build build -j "$jobs" --target selfcheck
    ILAN_BENCH_JSON=0 ./build/bench/selfcheck
    ;;
  faults)
    run_faults_one ""
    for san in address thread undefined; do
      echo "== sanitizer: $san =="
      run_faults_one "$san"
    done
    ;;
  obs)
    run_obs_one ""
    for san in address thread; do
      echo "== sanitizer: $san =="
      run_obs_one "$san"
    done
    ;;
  sched)
    run_sched_one ""
    for san in address thread; do
      echo "== sanitizer: $san =="
      run_sched_one "$san"
    done
    ;;
  dag)
    run_dag_one ""
    for san in address thread; do
      echo "== sanitizer: $san =="
      run_dag_one "$san"
    done
    ;;
  topo)
    run_topo_one ""
    for san in address thread; do
      echo "== sanitizer: $san =="
      run_topo_one "$san"
    done
    ;;
  solver)
    run_solver_one ""
    for san in address thread; do
      echo "== sanitizer: $san =="
      run_solver_one "$san"
    done
    ;;
  serve)
    run_serve_one ""
    for san in address thread; do
      echo "== sanitizer: $san =="
      run_serve_one "$san"
    done
    ;;
  *)
    echo "usage: tools/run_tier1.sh [build|lint|analyze|faults|obs|sched|dag|topo|solver|serve]" >&2
    exit 2
    ;;
esac
