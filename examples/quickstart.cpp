// Quickstart: build the paper's machine, define a taskloop workload, run it
// under ILAN, and watch the configuration search converge.
//
//   $ ./examples/quickstart
//
// Walks through the whole public API surface in ~60 lines of user code:
// MachineParams -> Machine -> scheduler -> Team -> TaskloopSpec ->
// run_taskloop -> PTT/ history introspection.
#include <cstdio>

#include "sched/schedulers.hpp"
#include "rt/team.hpp"
#include "topo/registry.hpp"

using namespace ilan;

int main() {
  // 1. A machine: resolved from ILAN_TOPO (default "zen4" — dual-socket
  //    64-core Zen 4, 8 NUMA nodes, the paper's platform). Seed selects the
  //    run's noise realization.
  rt::MachineParams params;
  params.spec = topo::machine_spec_from_env();
  params.seed = 2025;
  rt::Machine machine(params);
  std::printf("machine: %s — %d cores, %d NUMA nodes, %d CCDs\n\n",
              machine.topology().name().c_str(), machine.topology().num_cores(),
              machine.topology().num_nodes(), machine.topology().num_ccds());

  // 2. Data: a 512 MB array, placed by first touch like any malloc'd buffer.
  const auto data = machine.regions().create("field", 512ull << 20,
                                             mem::Placement::kFirstTouch);

  // 3. A taskloop: 2048 iterations; each iteration streams its slice of the
  //    array and burns some cycles. The demand function is the only thing a
  //    workload has to provide.
  rt::TaskloopSpec loop;
  loop.loop_id = 1;
  loop.name = "stencil-sweep";
  loop.iterations = 2048;
  loop.demand = [data](std::int64_t b, std::int64_t e) {
    rt::TaskDemand d;
    d.cpu_cycles = 150e3 * static_cast<double>(e - b);
    const std::uint64_t slice = (512ull << 20) / 2048;
    d.accesses.push_back(mem::AccessDescriptor{
        data, static_cast<std::uint64_t>(b) * slice,
        static_cast<std::uint64_t>(e - b) * slice, mem::AccessKind::kRead});
    return d;
  };

  // 4. The ILAN scheduler + a team of workers pinned 1:1 to cores.
  sched::IlanScheduler scheduler;
  rt::Team team(machine, scheduler);

  // 5. Run the loop repeatedly (a timestepped application): ILAN explores
  //    thread counts with Algorithm 1, then locks the best configuration.
  std::printf("%-5s %-8s %-10s %-12s %s\n", "exec", "threads", "node_mask",
              "steal", "wall_ms");
  for (int step = 0; step < 12; ++step) {
    const auto& stats = team.run_taskloop(loop);
    std::printf("%-5d %-8d 0x%-8llx %-12s %.3f%s\n", step + 1,
                stats.config.num_threads,
                static_cast<unsigned long long>(stats.config.node_mask.bits()),
                to_string(stats.config.steal_policy),
                sim::to_seconds(stats.wall) * 1e3,
                scheduler.search_finished(loop.loop_id) && step >= 1 ? "" : "  (exploring)");
  }

  std::printf("\nsearch finished: %s; executions recorded in PTT: %d\n",
              scheduler.search_finished(loop.loop_id) ? "yes" : "no",
              scheduler.executions(loop.loop_id));
  std::printf("weighted average threads: %.1f\n", team.weighted_avg_threads());
  std::printf("traffic: %.2f GB local, %.2f GB remote\n",
              machine.memory().traffic().local_bytes / 1e9,
              machine.memory().traffic().remote_bytes / 1e9);
  return 0;
}
