// PTT inspector: run a benchmark under ILAN and dump the Performance Trace
// Table — every configuration the search visited with its samples — plus
// the per-node locality ranking. The paper's Section 3.2 in data form.
#include <cstdio>

#include "sched/schedulers.hpp"
#include "kernels/kernels.hpp"
#include "rt/team.hpp"
#include "topo/registry.hpp"

using namespace ilan;

int main(int argc, char** argv) {
  const std::string kernel = argc > 1 ? argv[1] : "sp";

  rt::MachineParams params;
  params.spec = topo::machine_spec_from_env();
  params.seed = 31;
  rt::Machine machine(params);
  sched::IlanScheduler sched;
  rt::Team team(machine, sched);

  kernels::KernelOptions opts;
  opts.timesteps = 30;
  const auto prog = kernels::make_kernel(kernel, machine, opts);
  prog.run(team);

  std::printf("benchmark '%s' under ILAN: %zu taskloop executions, %.4f s total\n\n",
              kernel.c_str(), team.history().size(),
              sim::to_seconds(team.now()));

  // Collect distinct loop ids in program order.
  std::vector<rt::LoopId> loops;
  for (const auto& s : team.history()) {
    if (std::find(loops.begin(), loops.end(), s.loop_id) == loops.end()) {
      loops.push_back(s.loop_id);
    }
  }

  for (const auto loop : loops) {
    std::printf("-- taskloop %lld (executions: %d, search %s) --\n",
                static_cast<long long>(loop), sched.executions(loop),
                sched.search_finished(loop) ? "finished" : "running");
    std::printf("   %-8s %-10s %-7s %-8s %-10s %-10s %-10s\n", "threads", "mask",
                "steal", "samples", "best_s", "mean_s", "worst_s");
    for (const auto* e : sched.ptt().entries(loop)) {
      std::printf("   %-8d 0x%-8llx %-7s %-8zu %-10.5f %-10.5f %-10.5f\n",
                  e->config.num_threads,
                  static_cast<unsigned long long>(e->config.node_mask.bits()),
                  to_string(e->config.steal_policy), e->wall.count(),
                  e->wall.min(), e->wall.mean(), e->wall.max());
    }
    const auto* best = sched.ptt().fastest(loop);
    if (best != nullptr) {
      std::printf("   fastest: %d threads / %s\n", best->config.num_threads,
                  to_string(best->config.steal_policy));
    }
    std::printf("   node ranking (fastest first):");
    for (const auto n : sched.ptt().nodes_ranked(loop, machine.topology().num_nodes())) {
      std::printf(" %d", n.value());
    }
    std::printf("\n\n");
  }
  return 0;
}
