// Custom topology: describe your own machine (inline or via the text
// format), run a paper benchmark on it, and compare schedulers.
//
// Shows that nothing in the library is hard-wired to the paper's platform:
// here a hypothetical single-socket, 4-node, 32-core part with slower
// controllers — the kind of "what would ILAN do on OUR box?" question a
// downstream user has.
#include <cstdio>

#include "sched/schedulers.hpp"
#include "kernels/kernels.hpp"
#include "rt/team.hpp"
#include "topo/format.hpp"

using namespace ilan;

int main() {
  // A machine spec in the library's text format (could live in a .topo file
  // next to your job scripts; topo::load_machine_spec reads files).
  const char* spec_text = R"(
    # hypothetical 32-core single-socket part
    name = custom-1s4n32c
    sockets = 1
    nodes_per_socket = 4
    ccds_per_node = 2
    cores_per_ccd = 4
    core_freq_ghz = 2.8
    core_bw_gbps = 18
    l3_mb_per_ccd = 16
    node_mem_gb = 64
    node_bw_gbps = 55
    node_latency_ns = 105
    xlink_bw_gbps = 96
    dist_same_socket = 12
    dist_cross_socket = 32
  )";
  const auto spec = topo::parse_machine_spec(spec_text);
  std::printf("machine '%s': %d cores over %d nodes\n\n", spec.name.c_str(),
              spec.total_cores(), spec.total_nodes());

  for (const char* kernel : {"sp", "matmul"}) {
    double base_time = 0.0;
    for (const bool use_ilan : {false, true}) {
      rt::MachineParams params;
      params.spec = spec;
      params.seed = 99;
      rt::Machine machine(params);

      std::unique_ptr<rt::Scheduler> scheduler;
      if (use_ilan) {
        scheduler = std::make_unique<sched::IlanScheduler>();
      } else {
        scheduler = std::make_unique<sched::BaselineWsScheduler>();
      }
      rt::Team team(machine, *scheduler);

      kernels::KernelOptions opts;
      opts.timesteps = 40;
      opts.size_factor = 0.5;  // scale class-D data to the smaller machine
      const auto prog = kernels::make_kernel(kernel, machine, opts);
      const double t = sim::to_seconds(prog.run(team));
      if (!use_ilan) base_time = t;
      std::printf("%-7s %-12s %8.4f s   avg threads %4.1f%s\n", kernel,
                  scheduler->name().data(), t, team.weighted_avg_threads(),
                  use_ilan ? (t < base_time ? "   <- faster" : "   <- slower") : "");
    }
    std::printf("\n");
  }
  std::printf("The same scheduler logic adapts to the smaller topology: node\n");
  std::printf("masks span 4 nodes, granularity follows the 8-core node size.\n");
  return 0;
}
