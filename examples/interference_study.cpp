// Interference study: why moldability works.
//
// Defines two synthetic taskloops — a cache-friendly compute kernel and an
// irregular gather kernel — and charts their execution time across fixed
// thread widths (ManualScheduler), then shows what ILAN's online search
// picks for each. The compute kernel wants every core; the gather kernel's
// loaded-latency interference makes a reduced width optimal.
#include <cstdio>

#include "sched/schedulers.hpp"
#include "rt/team.hpp"
#include "topo/registry.hpp"

using namespace ilan;

namespace {

struct Workloads {
  rt::TaskloopSpec compute;
  rt::TaskloopSpec gather;
};

Workloads make_workloads(rt::Machine& machine) {
  const auto table = machine.regions().create("table", 1ull << 30,
                                              mem::Placement::kFirstTouch);
  Workloads w;
  w.compute.loop_id = 1;
  w.compute.name = "compute";
  w.compute.iterations = 2048;
  w.compute.demand = [](std::int64_t b, std::int64_t e) {
    rt::TaskDemand d;
    d.cpu_cycles = 400e3 * static_cast<double>(e - b);
    return d;
  };
  w.gather.loop_id = 2;
  w.gather.name = "gather";
  w.gather.iterations = 2048;
  w.gather.demand = [table](std::int64_t b, std::int64_t e) {
    rt::TaskDemand d;
    d.cpu_cycles = 20e3 * static_cast<double>(e - b);
    d.accesses.push_back(mem::AccessDescriptor{
        table, 0, static_cast<std::uint64_t>(e - b) * 300'000,
        mem::AccessKind::kGather});
    return d;
  };
  return w;
}

// One init pass at full width so first-touch placement spans the machine.
void place_data(rt::Machine& machine, const rt::TaskloopSpec& like) {
  sched::ManualScheduler full(rt::LoopConfig{});
  rt::Team team(machine, full);
  rt::TaskloopSpec init = like;
  init.loop_id = 99;
  init.demand = [&machine](std::int64_t b, std::int64_t e) {
    rt::TaskDemand d;
    d.cpu_cycles = 1e3;
    const std::uint64_t slice = (1ull << 30) / 2048;
    d.accesses.push_back(mem::AccessDescriptor{
        0, static_cast<std::uint64_t>(b) * slice,
        static_cast<std::uint64_t>(e - b) * slice, mem::AccessKind::kWrite});
    return d;
  };
  team.run_taskloop(init);
}

}  // namespace

int main() {
  std::printf("== fixed-width landscape (strict hierarchical schedule) ==\n\n");
  std::printf("%-8s %12s %12s\n", "threads", "compute_ms", "gather_ms");
  for (const int width : {64, 48, 32, 24, 16, 8}) {
    rt::MachineParams params;
    params.spec = topo::machine_spec_from_env();
    params.noise.enabled = false;
    params.seed = 7;
    rt::Machine machine(params);
    auto w = make_workloads(machine);
    place_data(machine, w.gather);

    rt::LoopConfig cfg;
    cfg.num_threads = width;
    cfg.steal_policy = rt::StealPolicy::kStrict;
    sched::ManualScheduler sched(cfg);
    rt::Team team(machine, sched);
    team.run_taskloop(w.compute);
    const double tc = sim::to_seconds(team.history().back().wall) * 1e3;
    team.run_taskloop(w.gather);
    team.run_taskloop(w.gather);  // warm
    const double tg = sim::to_seconds(team.history().back().wall) * 1e3;
    std::printf("%-8d %12.3f %12.3f\n", width, tc, tg);
  }

  std::printf("\n== what ILAN's search selects ==\n\n");
  rt::MachineParams params;
  params.spec = topo::machine_spec_from_env();
  params.noise.enabled = false;
  params.seed = 7;
  rt::Machine machine(params);
  auto w = make_workloads(machine);
  place_data(machine, w.gather);
  sched::IlanScheduler sched;
  rt::Team team(machine, sched);
  for (int i = 0; i < 12; ++i) {
    team.run_taskloop(w.compute);
    team.run_taskloop(w.gather);
  }
  std::map<rt::LoopId, const rt::LoopExecStats*> last;
  for (const auto& s : team.history()) last[s.loop_id] = &s;
  for (const auto& [id, s] : last) {
    std::printf("loop %lld (%s): locked %d threads, %s stealing\n",
                static_cast<long long>(id), id == 1 ? "compute" : "gather",
                s->config.num_threads, to_string(s->config.steal_policy));
  }
  std::printf(
      "\nThe compute loop keeps the full machine; the gather loop molds down —\n"
      "the per-taskloop adaptivity the ILAN paper's Section 3.2 describes.\n");
  return 0;
}
