// Trace export: run a benchmark with the Chrome-trace collector attached
// and write a timeline you can open at https://ui.perfetto.dev or
// chrome://tracing — one row per core, one slice per task, remote-steal
// migrations in their own color category.
//
//   $ ./examples/trace_export cg /tmp/cg.trace.json
#include <cstdio>
#include <fstream>

#include "sched/schedulers.hpp"
#include "kernels/kernels.hpp"
#include "rt/team.hpp"
#include "topo/registry.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/energy.hpp"

using namespace ilan;

int main(int argc, char** argv) {
  const std::string kernel = argc > 1 ? argv[1] : "cg";
  const std::string path = argc > 2 ? argv[2] : "ilan_trace.json";

  rt::MachineParams params;
  params.spec = topo::machine_spec_from_env();
  params.seed = 5;
  rt::Machine machine(params);
  sched::IlanScheduler sched;
  rt::Team team(machine, sched);

  trace::ChromeTraceWriter tracer;
  team.set_tracer(&tracer);

  kernels::KernelOptions opts;
  opts.timesteps = 8;  // a short run keeps the trace readable
  const auto prog = kernels::make_kernel(kernel, machine, opts);
  const auto total = prog.run(team);

  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  tracer.write(out);

  double joules = 0.0;
  for (const auto& s : team.history()) {
    joules += trace::estimate_energy(s, machine.topology().num_nodes()).total_j();
  }
  std::printf("ran '%s' for %d timesteps: %.4f s simulated, ~%.1f J estimated\n",
              kernel.c_str(), opts.timesteps, sim::to_seconds(total), joules);
  std::printf("%zu trace events -> %s (open in chrome://tracing / perfetto)\n",
              tracer.num_events(), path.c_str());
  return 0;
}
