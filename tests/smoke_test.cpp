// End-to-end smoke: build the paper's machine, run a kernel under every
// scheduler, and sanity-check the outcome.
#include <gtest/gtest.h>

#include "sched/schedulers.hpp"
#include "kernels/kernels.hpp"
#include "rt/team.hpp"
#include "topo/presets.hpp"

namespace {

using namespace ilan;

rt::MachineParams small_machine(std::uint64_t seed) {
  rt::MachineParams p;
  p.spec = topo::presets::tiny_2n8c();
  p.seed = seed;
  return p;
}

TEST(Smoke, CgRunsUnderEveryScheduler) {
  for (int which = 0; which < 3; ++which) {
    rt::Machine machine(small_machine(42));
    std::unique_ptr<rt::Scheduler> scheduler;
    switch (which) {
      case 0: scheduler = std::make_unique<sched::BaselineWsScheduler>(); break;
      case 1: scheduler = std::make_unique<sched::WorkSharingScheduler>(); break;
      default: scheduler = std::make_unique<sched::IlanScheduler>(); break;
    }
    rt::Team team(machine, *scheduler);
    kernels::KernelOptions opts;
    opts.timesteps = 4;
    opts.size_factor = 0.1;
    const auto prog = kernels::make_cg(machine, opts);
    const sim::SimTime t = prog.run(team);
    EXPECT_GT(t, 0) << scheduler->name();
    // init + 4 steps x 2 loops
    EXPECT_EQ(team.history().size(), 1u + 4u * 2u) << scheduler->name();
  }
}

}  // namespace
