// Cross-module integration: full benchmarks on the paper machine (scaled
// down for test speed) reproducing the paper's qualitative claims.
#include <gtest/gtest.h>

#include "sched/schedulers.hpp"
#include "kernels/kernels.hpp"
#include "rt/team.hpp"
#include "topo/presets.hpp"

namespace {

using namespace ilan;

rt::MachineParams paper_params(std::uint64_t seed, bool noise = false) {
  rt::MachineParams p;
  p.spec = topo::presets::zen4_epyc9354_2s();
  p.mem.remote_eff_exponent = 0.22;
  p.noise.enabled = noise;
  p.seed = seed;
  return p;
}

// Scheduler comparisons run WITH the noise model: without it the baseline's
// steal pattern repeats identically every timestep and it accidentally
// inherits a stable chunk->core mapping (and thus L3 reuse) that no real
// machine would give it — the fragility the paper's Section 5.4 describes.
double run_kernel(const std::string& kernel, rt::Scheduler& sched,
                  std::uint64_t seed, int timesteps) {
  rt::Machine machine(paper_params(seed, /*noise=*/true));
  rt::Team team(machine, sched);
  kernels::KernelOptions opts;
  opts.timesteps = timesteps;
  const auto prog = kernels::make_kernel(kernel, machine, opts);
  return sim::to_seconds(prog.run(team));
}

TEST(Integration, IlanBeatsBaselineOnMemoryBoundKernels) {
  // 60 timesteps — the benchmark default — so the exploration phase
  // amortizes as in the paper's methodology (FT ran 200 iterations there
  // for exactly this reason).
  for (const auto& k : {"sp", "cg", "ft", "bt", "lu", "lulesh"}) {
    sched::BaselineWsScheduler base;
    sched::IlanScheduler ilan_s;
    const double tb = run_kernel(k, base, 11, 60);
    const double ti = run_kernel(k, ilan_s, 11, 60);
    EXPECT_LT(ti, tb) << k;
  }
}

TEST(Integration, MatmulRegressionStaysSmall) {
  sched::BaselineWsScheduler base;
  sched::IlanScheduler ilan_s;
  const double tb = run_kernel("matmul", base, 12, 40);
  const double ti = run_kernel("matmul", ilan_s, 12, 40);
  // The paper reports a slight loss; ours must stay within ~6%.
  EXPECT_LT(ti, tb * 1.06);
  EXPECT_GT(ti, tb * 0.98);
}

TEST(Integration, MoldabilityReducesThreadsForIrregularKernels) {
  for (const auto& k : {"cg", "sp"}) {
    rt::Machine machine(paper_params(13));
    sched::IlanScheduler sched;
    rt::Team team(machine, sched);
    kernels::KernelOptions opts;
    opts.timesteps = 40;
    const auto prog = kernels::make_kernel(k, machine, opts);
    prog.run(team);
    EXPECT_LT(team.weighted_avg_threads(), 52.0) << k;
  }
}

TEST(Integration, ComputeBoundKernelsKeepTheMachine) {
  for (const auto& k : {"matmul", "bt", "ft"}) {
    rt::Machine machine(paper_params(14));
    sched::IlanScheduler sched;
    rt::Team team(machine, sched);
    kernels::KernelOptions opts;
    opts.timesteps = 30;
    const auto prog = kernels::make_kernel(k, machine, opts);
    prog.run(team);
    EXPECT_GT(team.weighted_avg_threads(), 58.0) << k;
    // Converged configuration is the full machine.
    EXPECT_EQ(team.history().back().config.num_threads, 64) << k;
  }
}

TEST(Integration, MoldabilityIsWhatHelpsCg) {
  // Figure 4's key contrast: full ILAN clearly above ILAN-without-
  // moldability on CG.
  sched::IlanScheduler full;
  core::IlanParams nm;
  nm.moldability = false;
  sched::IlanScheduler nomold(nm);
  const double tf = run_kernel("cg", full, 15, 40);
  const double tn = run_kernel("cg", nomold, 15, 40);
  EXPECT_LT(tf, tn * 0.9);
}

TEST(Integration, WorkSharingWinsOnBalancedFt) {
  sched::WorkSharingScheduler ws;
  sched::IlanScheduler ilan_s;
  const double tw = run_kernel("ft", ws, 16, 30);
  const double ti = run_kernel("ft", ilan_s, 16, 30);
  EXPECT_LT(tw, ti * 1.02);  // work-sharing at least matches ILAN on FT
}

TEST(Integration, TaskingBeatsWorkSharingOnImbalancedCg) {
  sched::WorkSharingScheduler ws;
  sched::IlanScheduler ilan_s;
  const double tw = run_kernel("cg", ws, 17, 40);
  const double ti = run_kernel("cg", ilan_s, 17, 40);
  EXPECT_LT(ti, tw);
}

TEST(Integration, IlanImprovesTrafficLocality) {
  const auto remote_frac = [](rt::Scheduler& sched) {
    rt::Machine machine(paper_params(18));
    rt::Team team(machine, sched);
    kernels::KernelOptions opts;
    opts.timesteps = 10;
    const auto prog = kernels::make_kernel("bt", machine, opts);
    prog.run(team);
    const auto& t = machine.memory().traffic();
    return t.remote_bytes / t.total();
  };
  sched::BaselineWsScheduler base;
  sched::IlanScheduler ilan_s;
  EXPECT_LT(remote_frac(ilan_s), remote_frac(base) * 0.5);
}

TEST(Integration, FullProgramIsDeterministicPerSeed) {
  const auto run = [](std::uint64_t seed) {
    rt::Machine machine(paper_params(seed, /*noise=*/true));
    sched::IlanScheduler sched;
    rt::Team team(machine, sched);
    kernels::KernelOptions opts;
    opts.timesteps = 6;
    opts.size_factor = 0.2;
    const auto prog = kernels::make_kernel("lulesh", machine, opts);
    return prog.run(team);
  };
  EXPECT_EQ(run(99), run(99));
  EXPECT_NE(run(99), run(100));
}

TEST(Integration, StealPolicyGetsEvaluatedExactlyOnce) {
  rt::Machine machine(paper_params(19));
  sched::IlanScheduler sched;
  rt::Team team(machine, sched);
  kernels::KernelOptions opts;
  opts.timesteps = 30;
  const auto prog = kernels::make_kernel("bt", machine, opts);
  prog.run(team);
  // After convergence each loop ran a full-policy trial at most a handful
  // of times: count executions with full policy at the converged width.
  std::map<rt::LoopId, int> full_at_converged;
  for (const auto& s : team.history()) {
    if (s.config.steal_policy == rt::StealPolicy::kFull) {
      ++full_at_converged[s.loop_id];
    }
  }
  for (const auto& [loop, n] : full_at_converged) {
    // Either the trial lost (exactly 1 full run) or it won (many).
    EXPECT_TRUE(n == 1 || n > 5) << "loop " << loop << " ran full " << n << "x";
  }
}

TEST(Integration, OverheadScalesWithScheduler) {
  rt::Machine m1(paper_params(20));
  rt::Machine m2(paper_params(20));
  sched::BaselineWsScheduler base;
  sched::WorkSharingScheduler ws;
  rt::Team t1(m1, base);
  rt::Team t2(m2, ws);
  kernels::KernelOptions opts;
  opts.timesteps = 10;
  kernels::make_kernel("lu", m1, opts).run(t1);
  kernels::make_kernel("lu", m2, opts).run(t2);
  // Work-sharing has no task creation and no stealing: far less overhead.
  EXPECT_LT(t2.overhead().grand_total(), t1.overhead().grand_total() / 3);
}

}  // namespace
