// Deterministic fault injection and graceful degradation: plan parsing and
// realization, injector effects on the live machine, node health, the
// simulated-time watchdog, and the scheduler's reactive paths.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "core/distributor.hpp"
#include "sched/schedulers.hpp"
#include "core/node_mask.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "rt/team.hpp"
#include "topo/presets.hpp"

namespace {

using namespace ilan;

rt::MachineParams tiny_params(std::uint64_t seed) {
  rt::MachineParams p;
  p.spec = topo::presets::tiny_2n8c();
  p.noise.enabled = false;
  p.seed = seed;
  return p;
}

rt::TaskloopSpec cpu_loop(rt::LoopId id, std::int64_t iters, double cycles_per_iter) {
  rt::TaskloopSpec spec;
  spec.loop_id = id;
  spec.name = "cpu";
  spec.iterations = iters;
  spec.demand = [cycles_per_iter](std::int64_t b, std::int64_t e) {
    rt::TaskDemand d;
    d.cpu_cycles = cycles_per_iter * static_cast<double>(e - b);
    return d;
  };
  return spec;
}

// --- FaultPlan parsing ----------------------------------------------------

TEST(FaultPlan, CatalogScenariosParseAndNoneIsEmpty) {
  rt::Machine machine(tiny_params(1));
  for (const auto& name : fault::scenario_names()) {
    ASSERT_TRUE(fault::is_scenario(name)) << name;
    const auto plan = fault::parse_plan(name, 42, machine.topology());
    if (name == "none") {
      EXPECT_TRUE(plan.empty());
      continue;
    }
    EXPECT_FALSE(plan.empty()) << name;
    for (const auto& c : plan.clauses) {
      EXPECT_GE(c.start, 0) << name;
      EXPECT_GT(c.magnitude, 0.0) << name;
      EXPECT_LT(c.node, machine.topology().num_nodes()) << name;
      if (c.period > 0) {
        EXPECT_LE(c.duration, c.period) << name;
      }
    }
  }
  EXPECT_FALSE(fault::is_scenario("no-such-scenario"));
}

TEST(FaultPlan, RealizationIsAPureFunctionOfSpecAndSeed) {
  rt::Machine machine(tiny_params(1));
  const auto a = fault::parse_plan("storm", 1234, machine.topology());
  const auto b = fault::parse_plan("storm", 1234, machine.topology());
  ASSERT_EQ(a.clauses.size(), b.clauses.size());
  for (std::size_t i = 0; i < a.clauses.size(); ++i) {
    EXPECT_EQ(a.clauses[i].kind, b.clauses[i].kind);
    EXPECT_EQ(a.clauses[i].start, b.clauses[i].start);
    EXPECT_EQ(a.clauses[i].duration, b.clauses[i].duration);
    EXPECT_EQ(a.clauses[i].period, b.clauses[i].period);
    EXPECT_EQ(a.clauses[i].node, b.clauses[i].node);
    EXPECT_EQ(a.clauses[i].magnitude, b.clauses[i].magnitude);
  }
  // A different seed still realizes a valid plan (the draws differ, the
  // clause structure does not).
  const auto c = fault::parse_plan("storm", 99, machine.topology());
  ASSERT_EQ(c.clauses.size(), a.clauses.size());
}

TEST(FaultPlan, DslHonorsExplicitValues) {
  rt::Machine machine(tiny_params(1));
  const auto plan = fault::parse_plan(
      "burst(at=0.001, dur=0.002, period=0.01, node=1, mag=4); latency(mag=6)", 7,
      machine.topology());
  ASSERT_EQ(plan.clauses.size(), 2u);
  const auto& b = plan.clauses[0];
  EXPECT_EQ(b.kind, fault::FaultKind::kBandwidthBurst);
  EXPECT_EQ(b.start, sim::from_seconds(0.001));
  EXPECT_EQ(b.duration, sim::from_seconds(0.002));
  EXPECT_EQ(b.period, sim::from_seconds(0.01));
  EXPECT_EQ(b.node, 1);
  EXPECT_DOUBLE_EQ(b.magnitude, 4.0);
  const auto& l = plan.clauses[1];
  EXPECT_EQ(l.kind, fault::FaultKind::kLatencySpike);
  EXPECT_EQ(l.node, -1);  // machine-wide
  EXPECT_DOUBLE_EQ(l.magnitude, 6.0);
}

TEST(FaultPlan, RejectsInvalidSpecs) {
  rt::Machine machine(tiny_params(1));
  const auto& topo = machine.topology();
  EXPECT_THROW((void)fault::parse_plan("bogus", 1, topo), std::invalid_argument);
  EXPECT_THROW((void)fault::parse_plan("burst(mag=0)", 1, topo), std::invalid_argument);
  EXPECT_THROW((void)fault::parse_plan("throttle(mag=1.5)", 1, topo),
               std::invalid_argument);
  EXPECT_THROW((void)fault::parse_plan("degrade(dur=0.02,period=0.01)", 1, topo),
               std::invalid_argument);
  EXPECT_THROW((void)fault::parse_plan("burst(node=9)", 1, topo), std::invalid_argument);
  EXPECT_THROW((void)fault::parse_plan("latency(node=0)", 1, topo),
               std::invalid_argument);
  EXPECT_THROW((void)fault::parse_plan("burst(frobnicate=1)", 1, topo),
               std::invalid_argument);
}

// --- NodeHealth -----------------------------------------------------------

TEST(NodeHealth, TracksConditionsCountsAndEpoch) {
  rt::NodeHealth h(2);
  EXPECT_TRUE(h.all_healthy());
  const auto epoch0 = h.epoch();
  h.set(topo::NodeId{1}, rt::NodeCondition::kDegraded);
  EXPECT_FALSE(h.all_healthy());
  EXPECT_EQ(h.condition(topo::NodeId{1}), rt::NodeCondition::kDegraded);
  EXPECT_GT(h.epoch(), epoch0);
  // Setting the same condition again is a no-op (no epoch bump).
  const auto epoch1 = h.epoch();
  h.set(topo::NodeId{1}, rt::NodeCondition::kDegraded);
  EXPECT_EQ(h.epoch(), epoch1);
  h.set(topo::NodeId{1}, rt::NodeCondition::kHealthy);
  EXPECT_TRUE(h.all_healthy());
  EXPECT_THROW(rt::NodeHealth(0), std::invalid_argument);
}

// --- FaultInjector --------------------------------------------------------

TEST(FaultInjector, AppliesAndRevertsCompositeEffects) {
  rt::Machine machine(tiny_params(1));
  const auto plan = fault::parse_plan(
      "throttle(at=0.001, dur=0.002, node=0, mag=0.5);"
      "degrade(at=0.001, dur=0.002, node=1, mag=0.4)",
      1, machine.topology());
  fault::FaultInjector injector(machine, plan);
  injector.arm();

  const int core0 = machine.topology().node(topo::NodeId{0}).cores.front().value();
  struct Snapshot {
    double freq0 = 0.0, bw1 = 0.0;
    rt::NodeCondition cond1 = rt::NodeCondition::kHealthy;
  };
  std::map<int, Snapshot> at;  // keyed by microsecond sample point
  auto sample = [&](int us) {
    Snapshot s;
    s.freq0 = machine.noise().freq_scale(core0);
    s.bw1 = machine.memory().bw_scale(topo::NodeId{1});
    s.cond1 = machine.health().condition(topo::NodeId{1});
    at[us] = s;
  };
  for (const int us : {500, 1500, 3500}) {
    machine.engine().schedule_at(sim::from_seconds(us * 1e-6), [&, us] { sample(us); });
  }
  machine.engine().run();

  // Before the window: untouched.
  EXPECT_DOUBLE_EQ(at[500].freq0, 1.0);
  EXPECT_DOUBLE_EQ(at[500].bw1, 1.0);
  EXPECT_EQ(at[500].cond1, rt::NodeCondition::kHealthy);
  // Inside [1ms, 3ms): throttled, degraded.
  EXPECT_DOUBLE_EQ(at[1500].freq0, 0.5);
  EXPECT_DOUBLE_EQ(at[1500].bw1, 0.4);
  EXPECT_EQ(at[1500].cond1, rt::NodeCondition::kDegraded);
  // After both reverts: restored exactly.
  EXPECT_DOUBLE_EQ(at[3500].freq0, 1.0);
  EXPECT_DOUBLE_EQ(at[3500].bw1, 1.0);
  EXPECT_EQ(at[3500].cond1, rt::NodeCondition::kHealthy);
  EXPECT_TRUE(machine.health().all_healthy());
  EXPECT_EQ(injector.applications(), 2);
  EXPECT_EQ(injector.reversions(), 2);
  EXPECT_THROW(injector.arm(), std::logic_error);  // arm() is once
}

TEST(FaultInjector, DaemonEventsNeverExtendTheRun) {
  rt::Machine machine(tiny_params(1));
  // An indefinitely repeating clause: without daemon semantics this would
  // keep the engine alive forever.
  const auto plan =
      fault::parse_plan("burst(at=0, dur=0.001, period=0.002, node=0, mag=4)", 1,
                        machine.topology());
  fault::FaultInjector injector(machine, plan);
  injector.arm();
  const sim::SimTime last_work = sim::from_seconds(0.0005);
  bool ran = false;
  machine.engine().schedule_at(last_work, [&] { ran = true; });
  machine.engine().run();
  EXPECT_TRUE(ran);
  // The engine stopped at (or before) the last regular event; pending
  // daemon re-applications were abandoned, not simulated.
  EXPECT_LE(machine.engine().now(), last_work);
  EXPECT_EQ(machine.engine().pending_regular(), 0u);
}

TEST(FaultInjector, DegradedTargetsListsFaultedNodesOnce) {
  rt::Machine machine(tiny_params(1));
  const auto plan = fault::parse_plan(
      "degrade(node=1); offline(node=1); burst(node=0)", 1, machine.topology());
  const fault::FaultInjector injector(machine, plan);
  const auto targets = injector.degraded_targets();
  ASSERT_EQ(targets.size(), 1u);
  EXPECT_EQ(targets.front(), topo::NodeId{1});
}

// --- watchdog -------------------------------------------------------------

TEST(Watchdog, TightDeadlineThrowsStructuredTimeout) {
  rt::Machine machine(tiny_params(1));
  sched::IlanScheduler sched;
  rt::Team team(machine, sched);
  team.set_deadline(sim::from_seconds(1e-9));
  bool threw = false;
  try {
    team.run_taskloop(cpu_loop(1, 256, 2e5));
  } catch (const rt::WatchdogTimeout& e) {
    threw = true;
    EXPECT_EQ(e.deadline(), sim::from_seconds(1e-9));
    EXPECT_NE(std::string(e.what()).find("watchdog"), std::string::npos);
  }
  EXPECT_TRUE(threw);
}

TEST(Watchdog, GenerousDeadlineDoesNotPerturbTheRun) {
  // Digest parity: watchdog off vs a deadline the run never reaches.
  auto digest_with_deadline = [](sim::SimTime deadline) {
    rt::Machine machine(tiny_params(9));
    machine.engine().set_digest_enabled(true);
    sched::IlanScheduler sched;
    rt::Team team(machine, sched);
    if (deadline > 0) team.set_deadline(deadline);
    for (int i = 0; i < 4; ++i) team.run_taskloop(cpu_loop(1, 128, 1e5));
    return machine.engine().event_digest();
  };
  EXPECT_EQ(digest_with_deadline(0), digest_with_deadline(sim::from_seconds(100.0)));
}

// --- health-aware node-mask selection ------------------------------------

TEST(NodeMaskHealth, DemotesUnhealthySeedAndFillsHealthyFirst) {
  rt::MachineParams p;
  p.spec = topo::presets::small_4n16c();
  p.noise.enabled = false;
  p.seed = 1;
  rt::Machine machine(p);
  const auto& topo = machine.topology();
  core::PerfTraceTable ptt;  // empty: ranked order is node id order

  // Blind (or all-healthy) selection seeds at node 0.
  const auto blind = core::select_node_mask(topo, ptt, 1, 4, 4);
  EXPECT_TRUE(blind.test(topo::NodeId{0}));
  EXPECT_EQ(blind.count(), 1);
  rt::NodeHealth all_ok(topo.num_nodes());
  EXPECT_EQ(core::select_node_mask(topo, ptt, 1, 4, 4, &all_ok).bits(), blind.bits());

  // Node 0 degraded: the seed moves to the first healthy ranked node.
  rt::NodeHealth h(topo.num_nodes());
  h.set(topo::NodeId{0}, rt::NodeCondition::kDegraded);
  const auto demoted = core::select_node_mask(topo, ptt, 1, 4, 4, &h);
  EXPECT_FALSE(demoted.test(topo::NodeId{0}));
  EXPECT_EQ(demoted.count(), 1);

  // Wider mask: healthy nodes fill before the degraded one.
  const auto wide = core::select_node_mask(topo, ptt, 1, 12, 4, &h);
  EXPECT_EQ(wide.count(), 3);
  EXPECT_FALSE(wide.test(topo::NodeId{0}));

  // When every node is needed the mask stays full — demotion never starves
  // a configuration of the nodes it must have.
  const auto full = core::select_node_mask(topo, ptt, 1, 16, 4, &h);
  EXPECT_EQ(full.count(), 4);
}

// --- health-weighted distribution ----------------------------------------

TEST(Distributor, HealthWeightingShiftsBlocksAwayFromUnhealthyNodes) {
  rt::Machine machine(tiny_params(1));
  sched::IlanScheduler sched;
  rt::Team team(machine, sched);

  rt::TaskloopSpec spec = cpu_loop(5, 160, 0.0);
  spec.grainsize = 10;  // 16 tasks
  rt::LoopConfig cfg;
  cfg.num_threads = 8;
  cfg.node_mask = rt::NodeMask::all(2);
  cfg.steal_policy = rt::StealPolicy::kFull;
  core::DistributionOptions opts;
  opts.react_to_health = true;
  sim::SimTime cost = 0;

  // All healthy: identical to the classic nc*ni/nn split (8 + 8).
  core::distribute_hierarchical(spec, cfg, team, opts, cost);
  EXPECT_EQ(team.worker(0).deque.size(), 8u);
  EXPECT_EQ(team.worker(4).deque.size(), 8u);
  team.worker(0).deque.clear();
  team.worker(4).deque.clear();

  // Node 0 degraded: weight 1 vs 2 — it carries 1/3 of the tasks.
  machine.health().set(topo::NodeId{0}, rt::NodeCondition::kDegraded);
  core::distribute_hierarchical(spec, cfg, team, opts, cost);
  EXPECT_EQ(team.worker(0).deque.size(), 5u);
  EXPECT_EQ(team.worker(4).deque.size(), 11u);
  team.worker(0).deque.clear();
  team.worker(4).deque.clear();

  // Node 0 offline: weight 0 — everything lands on node 1.
  machine.health().set(topo::NodeId{0}, rt::NodeCondition::kOffline);
  core::distribute_hierarchical(spec, cfg, team, opts, cost);
  EXPECT_EQ(team.worker(0).deque.size(), 0u);
  EXPECT_EQ(team.worker(4).deque.size(), 16u);
  team.worker(4).deque.clear();

  // Both nodes offline: the even-split fallback still places every task.
  machine.health().set(topo::NodeId{1}, rt::NodeCondition::kOffline);
  core::distribute_hierarchical(spec, cfg, team, opts, cost);
  EXPECT_EQ(team.worker(0).deque.size() + team.worker(4).deque.size(), 16u);
  team.worker(0).deque.clear();
  team.worker(4).deque.clear();
}

// --- steal-policy escalation ---------------------------------------------

TEST(Escalation, RescueStealsDrainAStrictDegradedNode) {
  rt::Machine machine(tiny_params(3));
  sched::IlanScheduler sched;  // reactive by default
  rt::Team team(machine, sched);

  // Node 0 is degraded and crawling at 5% frequency; the distributor still
  // hands it a share (weight 1), all NUMA-strict during the search's strict
  // phase. Healthy node 1 must finish its block and rescue node 0's strict
  // tasks — permitted only through escalation.
  machine.health().set(topo::NodeId{0}, rt::NodeCondition::kDegraded);
  for (const topo::CoreId c : machine.topology().node(topo::NodeId{0}).cores) {
    machine.noise().set_freq_scale(c.value(), 0.05);
  }
  team.run_taskloop(cpu_loop(7, 256, 5e5));
  EXPECT_GT(team.total_escalated_steals(), 0);
}

TEST(Escalation, AllHealthyNeverEscalates) {
  rt::Machine machine(tiny_params(3));
  sched::IlanScheduler sched;
  rt::Team team(machine, sched);
  for (int i = 0; i < 6; ++i) team.run_taskloop(cpu_loop(7, 256, 5e5));
  EXPECT_EQ(team.total_escalated_steals(), 0);
}

// --- PTT staleness re-exploration ----------------------------------------

TEST(Reexploration, PersistentSlowdownReopensTheSearch) {
  rt::Machine machine(tiny_params(11));
  core::IlanParams params;
  params.staleness_patience = 2;
  sched::IlanScheduler sched(params);
  rt::Team team(machine, sched);

  const auto spec = cpu_loop(77, 256, 2e5);
  // Converge the selection under clean conditions (either the full thread
  // search finishing or the counter-guided compute-bound lock-in counts).
  auto locked_in = [&] {
    return sched.search_finished(77) || sched.counter_locked(77);
  };
  int warm = 0;
  while (!locked_in() && warm < 20) {
    team.run_taskloop(spec);
    ++warm;
  }
  ASSERT_TRUE(locked_in());
  ASSERT_EQ(sched.reexplorations(77), 0);

  // Machine-wide persistent throttling from "now" on: every execution of
  // the locked configuration lands far above the PTT's best wall time.
  char dsl[128];
  const double t0 = sim::to_seconds(machine.engine().now()) + 1e-6;
  std::snprintf(dsl, sizeof(dsl),
                "throttle(at=%.9f,dur=0,period=0,node=0,mag=0.2);"
                "throttle(at=%.9f,dur=0,period=0,node=1,mag=0.2)",
                t0, t0);
  fault::FaultInjector injector(machine, fault::parse_plan(dsl, 1, machine.topology()));
  injector.arm();

  int extra = 0;
  while (sched.reexplorations(77) == 0 && extra < 12) {
    team.run_taskloop(spec);
    ++extra;
  }
  EXPECT_GT(sched.reexplorations(77), 0);
  EXPECT_EQ(sched.total_reexplorations(), sched.reexplorations(77));
  // The search actually reopened (and will converge again).
  EXPECT_LE(extra, 12);
}

TEST(Reexploration, NonReactiveSchedulerNeverReopens) {
  rt::Machine machine(tiny_params(11));
  core::IlanParams params;
  params.reactive = false;
  sched::IlanScheduler sched(params);
  rt::Team team(machine, sched);
  const auto spec = cpu_loop(77, 256, 2e5);
  for (int i = 0; i < 8; ++i) team.run_taskloop(spec);
  char dsl[96];
  std::snprintf(dsl, sizeof(dsl), "throttle(at=%.9f,dur=0,period=0,node=0,mag=0.2)",
                sim::to_seconds(machine.engine().now()) + 1e-6);
  fault::FaultInjector injector(machine,
                                fault::parse_plan(dsl, 1, machine.topology()));
  injector.arm();
  for (int i = 0; i < 8; ++i) team.run_taskloop(spec);
  EXPECT_EQ(sched.total_reexplorations(), 0);
}

// --- end-to-end determinism with faults ----------------------------------

TEST(FaultDeterminism, InjectedRunsAreBitReproducible) {
  auto digest = [](const char* spec_text) {
    rt::Machine machine(tiny_params(21));
    machine.engine().set_digest_enabled(true);
    sched::IlanScheduler sched;
    rt::Team team(machine, sched);
    std::unique_ptr<fault::FaultInjector> injector;
    if (spec_text != nullptr) {
      injector = std::make_unique<fault::FaultInjector>(
          machine, fault::parse_plan(spec_text, machine.seed(), machine.topology()));
      injector->arm();
    }
    for (int i = 0; i < 5; ++i) team.run_taskloop(cpu_loop(1, 192, 2e5));
    return machine.engine().event_digest();
  };
  const char* storm = "storm";
  EXPECT_EQ(digest(storm), digest(storm));
  // And the perturbation is real: the faulted digest differs from clean.
  EXPECT_NE(digest(storm), digest(nullptr));
}

}  // namespace
