#include <gtest/gtest.h>

#include "omp2taskloop/convert.hpp"

namespace {

using omp2taskloop::convert;

TEST(Convert, PlainForBecomesTaskloop) {
  const auto r = convert("#pragma omp for\nfor (int i = 0; i < n; ++i) a[i] = 0;\n");
  EXPECT_EQ(r.loops_converted, 1);
  EXPECT_NE(r.output.find("#pragma omp taskloop\n"), std::string::npos);
  EXPECT_EQ(r.output.find("omp for"), std::string::npos);
}

TEST(Convert, ParallelForExpandsToSingleTaskloop) {
  const auto r = convert("  #pragma omp parallel for private(j)\n  loop();\n");
  EXPECT_EQ(r.loops_converted, 1);
  EXPECT_NE(r.output.find("  #pragma omp parallel\n"), std::string::npos);
  EXPECT_NE(r.output.find("  #pragma omp single\n"), std::string::npos);
  EXPECT_NE(r.output.find("  #pragma omp taskloop private(j)\n"), std::string::npos);
}

TEST(Convert, DropsScheduleWithWarning) {
  const auto r = convert("#pragma omp for schedule(static, 4) reduction(+:s)\n");
  EXPECT_EQ(r.loops_converted, 1);
  EXPECT_EQ(r.output.find("schedule"), std::string::npos);
  EXPECT_NE(r.output.find("reduction(+:s)"), std::string::npos);
  ASSERT_EQ(r.warnings.size(), 1u);
  EXPECT_NE(r.warnings[0].find("schedule"), std::string::npos);
  EXPECT_NE(r.warnings[0].find("line 1"), std::string::npos);
}

TEST(Convert, KeepsNowaitOnPlainFor) {
  const auto r = convert("#pragma omp for nowait\n");
  EXPECT_NE(r.output.find("taskloop nowait"), std::string::npos);
  EXPECT_TRUE(r.warnings.empty());
}

TEST(Convert, DropsNowaitOnParallelFor) {
  const auto r = convert("#pragma omp parallel for nowait\n");
  EXPECT_EQ(r.output.find("nowait"), std::string::npos);
  EXPECT_EQ(r.warnings.size(), 1u);
}

TEST(Convert, LeavesOtherPragmasAlone) {
  const std::string src =
      "#pragma once\n"
      "#pragma omp parallel\n"
      "#pragma omp critical\n"
      "#pragma omp taskloop grainsize(8)\n"
      "#pragma GCC ivdep\n";
  const auto r = convert(src);
  EXPECT_EQ(r.loops_converted, 0);
  EXPECT_EQ(r.output, src);
}

TEST(Convert, DoesNotMatchForeign) {
  // "fortran"-like tokens must not be treated as `for`.
  const auto r = convert("#pragma omp formatted\n");
  EXPECT_EQ(r.loops_converted, 0);
}

TEST(Convert, HandlesContinuationLines) {
  const auto r = convert(
      "#pragma omp parallel for \\\n"
      "    schedule(dynamic) \\\n"
      "    firstprivate(x)\n"
      "body();\n");
  EXPECT_EQ(r.loops_converted, 1);
  EXPECT_NE(r.output.find("taskloop firstprivate(x)"), std::string::npos);
  EXPECT_EQ(r.output.find("schedule"), std::string::npos);
}

TEST(Convert, PreservesIndentationAndSurroundingCode) {
  const std::string src =
      "void f() {\n"
      "    #pragma omp for\n"
      "    for (;;) {}\n"
      "}\n";
  const auto r = convert(src);
  EXPECT_NE(r.output.find("    #pragma omp taskloop\n"), std::string::npos);
  EXPECT_NE(r.output.find("void f() {"), std::string::npos);
  EXPECT_NE(r.output.find("    for (;;) {}"), std::string::npos);
}

TEST(Convert, CountsMultipleLoops) {
  const auto r = convert(
      "#pragma omp for\n"
      "x();\n"
      "#pragma omp parallel for\n"
      "y();\n"
      "#pragma omp for collapse(2)\n"
      "z();\n");
  EXPECT_EQ(r.loops_converted, 3);
  EXPECT_NE(r.output.find("taskloop collapse(2)"), std::string::npos);
}

TEST(Convert, EmptyInputIsEmptyOutput) {
  const auto r = convert("");
  EXPECT_EQ(r.loops_converted, 0);
  EXPECT_TRUE(r.output.empty());
}

}  // namespace
