#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "sim/engine.hpp"
#include "sim/noise.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace {

using namespace ilan::sim;

TEST(Time, Conversions) {
  EXPECT_EQ(from_ns(1.0), 1'000);
  EXPECT_EQ(from_us(1.0), 1'000'000);
  EXPECT_EQ(from_ms(1.0), 1'000'000'000);
  EXPECT_EQ(from_seconds(1.0), 1'000'000'000'000);
  EXPECT_DOUBLE_EQ(to_seconds(from_seconds(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(to_ns(from_ns(42.0)), 42.0);
}

TEST(Engine, FiresInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(300, [&] { order.push_back(3); });
  e.schedule_at(100, [&] { order.push_back(1); });
  e.schedule_at(200, [&] { order.push_back(2); });
  EXPECT_EQ(e.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 300);
}

TEST(Engine, SimultaneousEventsAreFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    e.schedule_at(500, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, CancelPreventsFiring) {
  Engine e;
  bool fired = false;
  const auto id = e.schedule_at(100, [&] { fired = true; });
  EXPECT_TRUE(e.cancel(id));
  EXPECT_FALSE(e.cancel(id));  // second cancel is a no-op
  e.run();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(e.idle());
}

TEST(Engine, CancelAfterFireReturnsFalse) {
  Engine e;
  const auto id = e.schedule_at(10, [] {});
  e.run();
  EXPECT_FALSE(e.cancel(id));
}

TEST(Engine, RunUntilStopsAtLimit) {
  Engine e;
  int count = 0;
  e.schedule_at(100, [&] { ++count; });
  e.schedule_at(200, [&] { ++count; });
  e.schedule_at(300, [&] { ++count; });
  EXPECT_EQ(e.run_until(200), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(e.pending(), 1u);
  e.run();
  EXPECT_EQ(count, 3);
}

TEST(Engine, EventsCanScheduleEvents) {
  Engine e;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) e.schedule_after(10, recurse);
  };
  e.schedule_at(0, recurse);
  e.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(e.now(), 40);
}

TEST(Engine, SchedulingInThePastThrows) {
  Engine e;
  e.schedule_at(100, [] {});
  e.run();
  EXPECT_THROW(e.schedule_at(50, [] {}), std::logic_error);
  EXPECT_THROW(e.schedule_at(100, Engine::Callback{}), std::invalid_argument);
}

TEST(Engine, ResetClearsEverything) {
  Engine e;
  e.schedule_at(100, [] {});
  e.schedule_at(200, [] {});
  e.run_until(150);
  e.reset();
  EXPECT_EQ(e.now(), 0);
  EXPECT_TRUE(e.idle());
  EXPECT_EQ(e.run(), 0u);
}

TEST(Engine, StaleIdOfReusedSlotDoesNotCancel) {
  Engine e;
  // Fire one event so its slot returns to the free list...
  const auto stale = e.schedule_at(10, [] {});
  e.run();
  // ...then re-occupy it. The slot pool is LIFO, so the very next event
  // reuses the slot, with a bumped generation.
  int fired = 0;
  const auto fresh = e.schedule_at(20, [&] { ++fired; });
  EXPECT_EQ(static_cast<std::uint32_t>(stale), static_cast<std::uint32_t>(fresh));
  EXPECT_NE(stale, fresh);
  EXPECT_FALSE(e.cancel(stale));  // stale handle must miss the reused slot
  e.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(e.cancel(fresh));  // already fired
}

TEST(Engine, SelfCancelFromCallbackIsNoop) {
  Engine e;
  EventId self = kInvalidEvent;
  int fired = 0;
  self = e.schedule_at(10, [&] {
    ++fired;
    EXPECT_FALSE(e.cancel(self));  // an executing event is no longer pending
  });
  e.run();
  EXPECT_EQ(fired, 1);
}

TEST(Engine, StressInterleavedScheduleCancelReset) {
  Engine e;
  Xoshiro256ss rng(2024);
  std::uint64_t fired = 0;
  std::uint64_t cancelled = 0;
  std::vector<EventId> pending;
  std::vector<EventId> spent;  // fired or cancelled: must never cancel again
  for (int round = 0; round < 50; ++round) {
    for (int op = 0; op < 400; ++op) {
      const auto r = rng.below(100);
      if (r < 55 || pending.empty()) {
        pending.push_back(
            e.schedule_after(static_cast<SimTime>(1 + rng.below(500)), [&] { ++fired; }));
      } else if (r < 80) {
        const auto i = rng.below(static_cast<std::uint32_t>(pending.size()));
        EXPECT_TRUE(e.cancel(pending[i]));
        ++cancelled;
        spent.push_back(pending[i]);
        pending[i] = pending.back();
        pending.pop_back();
      } else {
        e.run_until(e.now() + static_cast<SimTime>(rng.below(300)));
        // Cancel whatever survived the window; either way every handle is
        // now spent and must stay dead.
        for (const auto id : pending) {
          if (e.cancel(id)) ++cancelled;
          spent.push_back(id);
        }
        pending.clear();
      }
    }
    // Stale handles (fired or cancelled) must stay dead even though their
    // slots have long been reused.
    for (const auto id : spent) EXPECT_FALSE(e.cancel(id));
    e.run();
    EXPECT_TRUE(e.idle());
    EXPECT_EQ(e.pending(), 0u);
    if (round % 10 == 9) {
      e.reset();
      EXPECT_EQ(e.now(), 0);
      spent.clear();  // reset invalidates ids by generation bump, checked above
    }
    pending.clear();
  }
  EXPECT_GT(fired, 0u);
  EXPECT_GT(cancelled, 0u);
  // The pool's high-water mark is bounded by the max concurrently-pending
  // events, not by the ~20k events scheduled over the test.
  EXPECT_GT(e.pool_slots(), 0u);
  EXPECT_LE(e.pool_slots(), 1024u);
}

TEST(Rng, SplitMix64ReferenceVector) {
  // Reference values for seed 1234567 from the SplitMix64 reference code.
  SplitMix64 sm(1234567);
  const std::uint64_t a = sm.next();
  const std::uint64_t b = sm.next();
  EXPECT_NE(a, b);
  // Determinism.
  SplitMix64 sm2(1234567);
  EXPECT_EQ(sm2.next(), a);
  EXPECT_EQ(sm2.next(), b);
}

TEST(Rng, DeterministicPerSeed) {
  Xoshiro256ss a(42);
  Xoshiro256ss b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
  Xoshiro256ss c(43);
  bool any_diff = false;
  Xoshiro256ss a2(42);
  for (int i = 0; i < 100; ++i) any_diff |= (a2() != c());
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformInRange) {
  Xoshiro256ss rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1'000; ++i) {
    const double v = rng.uniform(3.0, 5.0);
    EXPECT_GE(v, 3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, BelowInRangeAndRoughlyUniform) {
  Xoshiro256ss rng(11);
  std::vector<int> hist(10, 0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const auto v = rng.below(10);
    ASSERT_LT(v, 10u);
    ++hist[static_cast<std::size_t>(v)];
  }
  for (const int h : hist) {
    EXPECT_NEAR(h, n / 10, n / 100);  // within 10% relative
  }
}

TEST(Rng, NormalMoments) {
  Xoshiro256ss rng(13);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(Rng, SplitProducesIndependentStream) {
  Xoshiro256ss rng(99);
  auto s1 = rng.split(1);
  auto s2 = rng.split(2);
  bool differ = false;
  for (int i = 0; i < 16; ++i) differ |= (s1() != s2());
  EXPECT_TRUE(differ);
  // Split is a const operation on the parent.
  auto s1b = rng.split(1);
  Xoshiro256ss s1c = rng.split(1);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(s1b(), s1c());
}

TEST(Noise, DeterministicPerSeed) {
  const NoiseParams p;
  NoiseModel a(p, 5, 64);
  NoiseModel b(p, 5, 64);
  for (int c = 0; c < 64; ++c) {
    EXPECT_DOUBLE_EQ(a.core_freq_factor(c), b.core_freq_factor(c));
  }
  EXPECT_DOUBLE_EQ(a.sched_jitter(), b.sched_jitter());
}

TEST(Noise, FactorsAreClamped) {
  const NoiseParams p;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    NoiseModel m(p, seed, 16);
    for (int c = 0; c < 16; ++c) {
      EXPECT_GE(m.core_freq_factor(c), 0.5);
      EXPECT_LE(m.core_freq_factor(c), 1.15);
    }
    EXPECT_GE(m.sched_jitter(), 0.5);
  }
}

TEST(Noise, DisabledMeansUnity) {
  NoiseParams p;
  p.enabled = false;
  NoiseModel m(p, 77, 8);
  for (int c = 0; c < 8; ++c) EXPECT_DOUBLE_EQ(m.core_freq_factor(c), 1.0);
  EXPECT_DOUBLE_EQ(m.sched_jitter(), 1.0);
  EXPECT_FALSE(m.has_disturbed_core());
}

TEST(Noise, DisturbedCoreAppearsAtDocumentedRate) {
  const NoiseParams p;
  int disturbed = 0;
  const int trials = 2'000;
  for (int seed = 0; seed < trials; ++seed) {
    NoiseModel m(p, static_cast<std::uint64_t>(seed), 64);
    if (m.has_disturbed_core()) {
      ++disturbed;
      EXPECT_GE(m.disturbed_core(), 0);
      EXPECT_LT(m.disturbed_core(), 64);
      // The disturbed core is meaningfully slower.
      EXPECT_LT(m.core_freq_factor(m.disturbed_core()), 0.85);
    }
  }
  // ~5% +- generous margin.
  EXPECT_GT(disturbed, trials / 40);
  EXPECT_LT(disturbed, trials / 10);
}

// --- determinism digest and event trace ------------------------------------

TEST(EngineDigest, IdenticalSchedulesYieldIdenticalDigests) {
  auto run = [] {
    Engine e;
    e.set_digest_enabled(true);
    e.schedule_at(100, [] {}, 7);
    e.schedule_at(200, [] {}, 8);
    e.schedule_at(200, [] {}, 9);
    e.run();
    return e.event_digest();
  };
  EXPECT_NE(run(), 0u);
  EXPECT_EQ(run(), run());
}

TEST(EngineDigest, OffByDefaultAndZeroWhenOff) {
  Engine e;
  EXPECT_FALSE(e.digest_enabled());
  e.schedule_at(100, [] {}, 7);
  e.run();
  EXPECT_EQ(e.event_digest(), 0u);
}

TEST(EngineDigest, TagTimeAndOrderAllChangeTheDigest) {
  auto run = [](SimTime at, EventTag tag, bool swap) {
    Engine e;
    e.set_digest_enabled(true);
    if (swap) {
      e.schedule_at(500, [] {}, 2);
      e.schedule_at(at, [] {}, tag);
    } else {
      e.schedule_at(at, [] {}, tag);
      e.schedule_at(500, [] {}, 2);
    }
    e.run();
    return e.event_digest();
  };
  const auto base = run(500, 1, false);
  EXPECT_NE(run(500, 3, false), base);  // tag
  EXPECT_NE(run(400, 1, false), base);  // timestamp
  // FIFO order among simultaneous events is part of the committed stream.
  EXPECT_NE(run(500, 1, true), base);
}

TEST(EngineDigest, CancelledEventsNeverCommit) {
  auto run = [](bool with_cancelled) {
    Engine e;
    e.set_digest_enabled(true);
    e.schedule_at(100, [] {}, 1);
    if (with_cancelled) {
      const EventId id = e.schedule_at(150, [] {}, 9);
      EXPECT_TRUE(e.cancel(id));
    }
    e.schedule_at(200, [] {}, 2);
    e.run();
    return e.event_digest();
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(EngineDigest, TraceMatchesDigestAndTruncates) {
  Engine e;
  e.set_digest_enabled(true);
  e.enable_trace(2);
  e.schedule_at(100, [] {}, 1);
  e.schedule_at(200, [] {}, 2);
  e.schedule_at(300, [] {}, 3);
  e.run();
  ASSERT_EQ(e.trace().size(), 2u);  // capped
  EXPECT_TRUE(e.trace_truncated());
  EXPECT_EQ(e.trace()[0].at, 100);
  EXPECT_EQ(e.trace()[0].tag, 1u);
  EXPECT_EQ(e.trace()[1].at, 200);

  // An uncapped trace folds to exactly the streaming digest.
  Engine f;
  f.set_digest_enabled(true);
  f.enable_trace(16);
  f.schedule_at(100, [] {}, 1);
  f.schedule_at(200, [] {}, 2);
  f.schedule_at(300, [] {}, 3);
  f.run();
  std::uint64_t folded = 0;
  for (const FiredEvent& ev : f.trace()) folded = Engine::digest_step(folded, ev);
  EXPECT_EQ(folded, f.event_digest());
  EXPECT_FALSE(f.trace_truncated());
}

// Daemon events (fault injection and other background perturbations) fire
// in time order while real work pends but can never keep the engine alive.
TEST(EngineDaemon, DaemonsAloneNeverRun) {
  Engine e;
  bool fired = false;
  e.schedule_at(100, [&fired] { fired = true; }, 0, /*daemon=*/true);
  EXPECT_EQ(e.run(), 0u);
  EXPECT_FALSE(fired);
  EXPECT_EQ(e.now(), 0);
  EXPECT_EQ(e.pending(), 1u);
  EXPECT_EQ(e.pending_regular(), 0u);
}

TEST(EngineDaemon, DaemonsInterleaveOnlyUpToTheLastRegularEvent) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(50, [&order] { order.push_back(1); }, 0, true);
  e.schedule_at(100, [&order] { order.push_back(2); });
  e.schedule_at(150, [&order] { order.push_back(3); }, 0, true);  // never fires
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(e.now(), 100);
  EXPECT_EQ(e.pending(), 1u);  // the 150 daemon stays queued
  EXPECT_EQ(e.pending_regular(), 0u);
}

TEST(EngineDaemon, CancelKeepsRegularAccountingExact) {
  Engine e;
  const EventId d = e.schedule_at(10, [] {}, 0, true);
  const EventId r = e.schedule_at(20, [] {});
  EXPECT_EQ(e.pending(), 2u);
  EXPECT_EQ(e.pending_regular(), 1u);
  EXPECT_TRUE(e.cancel(d));
  EXPECT_EQ(e.pending_regular(), 1u);  // cancelling a daemon changes nothing
  EXPECT_TRUE(e.cancel(r));
  EXPECT_EQ(e.pending_regular(), 0u);
  EXPECT_EQ(e.run(), 0u);
}

TEST(EngineDaemon, SelfReschedulingDaemonCannotExtendTheRun) {
  Engine e;
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    e.schedule_after(10, [&tick] { tick(); }, 0, true);
  };
  e.schedule_at(5, [&tick] { tick(); }, 0, true);
  e.schedule_at(47, [] {});
  e.run();
  EXPECT_EQ(e.now(), 47);
  EXPECT_EQ(ticks, 5);  // fired at 5, 15, 25, 35, 45; the 55 one stays queued
  EXPECT_EQ(e.pending_regular(), 0u);
}

TEST(EngineDaemon, RunUntilHonorsTheLimitForDaemonsToo) {
  Engine e;
  int daemon_fires = 0;
  e.schedule_at(10, [&daemon_fires] { ++daemon_fires; }, 0, true);
  e.schedule_at(30, [&daemon_fires] { ++daemon_fires; }, 0, true);
  e.schedule_at(40, [] {});
  e.run_until(20);
  EXPECT_EQ(daemon_fires, 1);
  EXPECT_EQ(e.pending_regular(), 1u);
  e.run();
  EXPECT_EQ(daemon_fires, 2);
  EXPECT_EQ(e.now(), 40);
}

TEST(EngineDigest, ResetClearsDigestAndTrace) {
  Engine e;
  e.set_digest_enabled(true);
  e.enable_trace(8);
  e.schedule_at(100, [] {}, 1);
  e.run();
  EXPECT_NE(e.event_digest(), 0u);
  e.reset();
  EXPECT_EQ(e.event_digest(), 0u);
  EXPECT_TRUE(e.trace().empty());
}

}  // namespace
