// Tests of the shared experiment harness, most importantly that the
// run_many worker pool is invisible in the results: simulation outputs are
// bit-for-bit identical no matter how many host threads produced them.
#include <gtest/gtest.h>

#include <cstdlib>

#include "harness.hpp"

namespace {

using namespace ilan;

kernels::KernelOptions small_opts() {
  kernels::KernelOptions opts;
  opts.timesteps = 2;
  opts.size_factor = 0.25;
  return opts;
}

void expect_bit_identical(const bench::Series& a, const bench::Series& b) {
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    const auto& ra = a.runs[i];
    const auto& rb = b.runs[i];
    // Exact equality on purpose: each run is a deterministic function of
    // its seed, so host-side parallelism must not perturb a single bit.
    EXPECT_EQ(ra.total_s, rb.total_s) << "run " << i;
    EXPECT_EQ(ra.avg_threads, rb.avg_threads) << "run " << i;
    EXPECT_EQ(ra.overhead_s, rb.overhead_s) << "run " << i;
    EXPECT_EQ(ra.steals_local, rb.steals_local) << "run " << i;
    EXPECT_EQ(ra.steals_remote, rb.steals_remote) << "run " << i;
    EXPECT_EQ(ra.local_bytes, rb.local_bytes) << "run " << i;
    EXPECT_EQ(ra.remote_bytes, rb.remote_bytes) << "run " << i;
    EXPECT_EQ(ra.final_configs, rb.final_configs) << "run " << i;
    EXPECT_EQ(ra.events_fired, rb.events_fired) << "run " << i;
    EXPECT_EQ(ra.solver.resolves, rb.solver.resolves) << "run " << i;
    EXPECT_EQ(ra.solver.full_builds, rb.solver.full_builds) << "run " << i;
    EXPECT_EQ(ra.solver.cap_updates, rb.solver.cap_updates) << "run " << i;
    EXPECT_EQ(ra.solver.skipped, rb.solver.skipped) << "run " << i;
    EXPECT_EQ(ra.solver.coalesced, rb.solver.coalesced) << "run " << i;
    EXPECT_EQ(ra.solver.compactions, rb.solver.compactions) << "run " << i;
    EXPECT_EQ(ra.solver.flows_reclaimed, rb.solver.flows_reclaimed) << "run " << i;
    EXPECT_EQ(ra.solver.delta_solves, rb.solver.delta_solves) << "run " << i;
    EXPECT_EQ(ra.solver.delta_rounds_reused, rb.solver.delta_rounds_reused)
        << "run " << i;
    EXPECT_EQ(ra.solver.delta_rounds_total, rb.solver.delta_rounds_total)
        << "run " << i;
  }
}

TEST(Harness, ParallelRunManyMatchesSequentialBitForBit) {
  setenv("ILAN_BENCH_JSON", "0", 1);
  const auto opts = small_opts();

  setenv("ILAN_BENCH_JOBS", "1", 1);
  const auto seq = bench::run_many("cg", "ilan", 4, 7, opts);
  setenv("ILAN_BENCH_JOBS", "4", 1);
  const auto par = bench::run_many("cg", "ilan", 4, 7, opts);
  // More workers than runs must also be harmless.
  setenv("ILAN_BENCH_JOBS", "16", 1);
  const auto over = bench::run_many("cg", "ilan", 4, 7, opts);
  unsetenv("ILAN_BENCH_JOBS");

  expect_bit_identical(seq, par);
  expect_bit_identical(seq, over);
}

TEST(Harness, RunManySeedsFollowRunIndex) {
  setenv("ILAN_BENCH_JSON", "0", 1);
  const auto opts = small_opts();
  setenv("ILAN_BENCH_JOBS", "2", 1);
  const auto s = bench::run_many("ft", "baseline", 3, 42, opts);
  unsetenv("ILAN_BENCH_JOBS");
  ASSERT_EQ(s.runs.size(), 3u);
  // runs[i] must be the run for seed 42 + 1000*(i+1), independent of which
  // worker executed it.
  for (std::size_t i = 0; i < s.runs.size(); ++i) {
    const auto solo =
        bench::run_once("ft", "baseline", 42 + 1000ull * (i + 1), opts);
    EXPECT_EQ(s.runs[i].total_s, solo.total_s) << "run " << i;
    EXPECT_EQ(s.runs[i].final_configs, solo.final_configs) << "run " << i;
  }
}

TEST(Harness, SeriesAggregatesCoverAllRuns) {
  setenv("ILAN_BENCH_JSON", "0", 1);
  const auto opts = small_opts();
  const auto s = bench::run_many("ft", "baseline", 2, 9, opts);
  EXPECT_GT(s.host_s, 0.0);
  EXPECT_EQ(s.total_events_fired(), s.runs[0].events_fired + s.runs[1].events_fired);
  const auto t = s.solver_totals();
  EXPECT_EQ(t.resolves, s.runs[0].solver.resolves + s.runs[1].solver.resolves);
  EXPECT_EQ(t.resolves, t.full_builds + t.cap_updates + t.skipped + t.coalesced);
  EXPECT_GT(t.resolves, 0u);
  EXPECT_EQ(s.ok_count(), 2);
  EXPECT_EQ(s.failed_count(), 0);
}

// The point of the incremental-resolve work: a steady-state kernel must
// serve the vast majority of its resolves in place on the persistent
// network (cap_updates or skipped, not full_builds). Guards the exact
// regression BENCH_harness.json used to show — full_builds ~= resolves,
// cap_updates == 0 — from coming back.
TEST(Harness, SteadyStateResolvesStayIncremental) {
  setenv("ILAN_BENCH_JSON", "0", 1);
  const auto r = bench::run_once("sp", "ilan", 42, small_opts());
  ASSERT_TRUE(r.ok()) << r.error;
  const auto& t = r.solver;
  EXPECT_EQ(t.resolves, t.full_builds + t.cap_updates + t.skipped + t.coalesced);
  EXPECT_GT(t.cap_updates, 0u);
  // Full rebuilds are only the initial build plus tombstone compactions.
  EXPECT_EQ(t.full_builds, 1u + t.compactions);
  EXPECT_LE(t.delta_rounds_reused, t.delta_rounds_total);
  EXPECT_GE(t.hit_rate(), 0.8) << "full_builds=" << t.full_builds
                               << " resolves=" << t.resolves;
}

TEST(Harness, FaultedRunsAreBitIdenticalAcrossJobs) {
  setenv("ILAN_BENCH_JSON", "0", 1);
  setenv("ILAN_FAULTS", "storm", 1);
  const auto opts = small_opts();
  setenv("ILAN_BENCH_JOBS", "1", 1);
  const auto seq = bench::run_many("cg", "ilan", 3, 7, opts);
  setenv("ILAN_BENCH_JOBS", "4", 1);
  const auto par = bench::run_many("cg", "ilan", 3, 7, opts);
  unsetenv("ILAN_BENCH_JOBS");
  unsetenv("ILAN_FAULTS");
  expect_bit_identical(seq, par);
  for (const auto& r : seq.runs) {
    EXPECT_TRUE(r.ok());
    EXPECT_GT(r.faults_applied, 0);
  }
}

TEST(Harness, WatchdogFailuresAreQuarantinedNotThrown) {
  setenv("ILAN_BENCH_JSON", "0", 1);
  setenv("ILAN_WATCHDOG", "0.000000001", 1);
  const auto s = bench::run_many("cg", "ilan", 2, 7, small_opts());
  unsetenv("ILAN_WATCHDOG");
  ASSERT_EQ(s.runs.size(), 2u);
  for (const auto& r : s.runs) {
    EXPECT_EQ(r.status, bench::RunStatus::kWatchdog);
    EXPECT_FALSE(r.ok());
    EXPECT_FALSE(r.error.empty());
    // A watchdog hit is deterministic: re-running the same seed cannot
    // pass, so it is never retried.
    EXPECT_EQ(r.attempts, 1);
  }
  EXPECT_EQ(s.ok_count(), 0);
  EXPECT_EQ(s.failed_count(), 2);
}

TEST(Harness, SeriesBreakdownSplitsFailuresByStatus) {
  setenv("ILAN_BENCH_JSON", "0", 1);
  bench::Series s;
  bench::RunResult ok1;
  ok1.attempts = 1;
  bench::RunResult wd;
  wd.status = bench::RunStatus::kWatchdog;
  wd.attempts = 3;
  bench::RunResult err;
  err.status = bench::RunStatus::kError;
  err.attempts = 2;
  s.runs = {ok1, wd, err};
  EXPECT_EQ(s.ok_count(), 1);
  EXPECT_EQ(s.failed_count(), 2);
  EXPECT_EQ(s.watchdog_count(), 1);
  EXPECT_EQ(s.error_count(), 1);
  EXPECT_EQ(s.watchdog_count() + s.error_count(), s.failed_count());
  EXPECT_EQ(s.retry_attempts(), 3);  // (3-1) + (2-1)
}

// Satellite: a fault realization that trips the watchdog on attempt 1 must
// succeed on a retry (attempt-salted realization), with the series
// statistics built from the successful attempt only and the retry volume
// recorded for BENCH json (Series::retry_attempts()).
TEST(Harness, WatchdogUnderFaultsRetriesWithResaltedRealization) {
  setenv("ILAN_BENCH_JSON", "0", 1);
  setenv("ILAN_FAULTS", "storm", 1);
  const auto opts = small_opts();

  // The storm realization is seed-dependent, so hunt for a seed whose
  // attempt-1 runtime exceeds its attempt-2 runtime by a usable margin and
  // place the watchdog deadline between the two.
  std::uint64_t seed = 0;
  double t1 = 0.0, t2 = 0.0;
  for (std::uint64_t cand = 1042; cand < 1042 + 40 * 1000ull; cand += 1000) {
    const auto a1 = bench::run_once("cg", "ilan", cand, opts, /*attempt=*/1);
    const auto a2 = bench::run_once("cg", "ilan", cand, opts, /*attempt=*/2);
    ASSERT_TRUE(a1.ok());
    ASSERT_TRUE(a2.ok());
    if (a1.total_s > a2.total_s * 1.02) {
      seed = cand;
      t1 = a1.total_s;
      t2 = a2.total_s;
      break;
    }
  }
  ASSERT_NE(seed, 0u) << "no seed with a slower attempt-1 realization found";
  // Attempt 1 must be bit-compatible with the historical (attempt-less)
  // entry point; attempt 2 is a different realization of the same spec.
  const auto legacy = bench::run_once("cg", "ilan", seed, opts);
  const auto salted = bench::run_once("cg", "ilan", seed, opts, /*attempt=*/2);
  EXPECT_EQ(legacy.event_digest,
            bench::run_once("cg", "ilan", seed, opts, /*attempt=*/1).event_digest);
  EXPECT_NE(legacy.event_digest, salted.event_digest);

  const double wd = 0.5 * (t1 + t2);
  setenv("ILAN_WATCHDOG", std::to_string(wd).c_str(), 1);
  setenv("ILAN_BENCH_RETRIES", "2", 1);
  // base_seed is chosen so run 0's derived seed (base + 1000) is `seed`.
  const auto s = bench::run_many("cg", "ilan", 1, seed - 1000, opts);
  unsetenv("ILAN_BENCH_RETRIES");
  unsetenv("ILAN_WATCHDOG");
  unsetenv("ILAN_FAULTS");

  ASSERT_EQ(s.runs.size(), 1u);
  const auto& r = s.runs[0];
  EXPECT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.attempts, 2);  // watchdog on attempt 1, pass on attempt 2
  EXPECT_EQ(r.total_s, t2);  // statistics come from the surviving attempt
  EXPECT_EQ(s.ok_count(), 1);
  EXPECT_EQ(s.watchdog_count(), 0);
  EXPECT_EQ(s.error_count(), 0);
  EXPECT_EQ(s.retry_attempts(), 1);  // what BENCH json reports
  ASSERT_EQ(s.times().size(), 1u);
  EXPECT_EQ(s.times()[0], t2);
}

TEST(Harness, ErrorRunsAreRetriedThenQuarantinedInPlace) {
  setenv("ILAN_BENCH_JSON", "0", 1);
  setenv("ILAN_BENCH_RETRIES", "2", 1);
  const auto s =
      bench::run_many("no-such-kernel", "ilan", 2, 7, small_opts());
  unsetenv("ILAN_BENCH_RETRIES");
  ASSERT_EQ(s.runs.size(), 2u);
  for (const auto& r : s.runs) {
    EXPECT_EQ(r.status, bench::RunStatus::kError);
    EXPECT_FALSE(r.ok());
    EXPECT_FALSE(r.error.empty());
    EXPECT_EQ(r.attempts, 3);  // 1 try + ILAN_BENCH_RETRIES retries
  }
  EXPECT_EQ(s.failed_count(), 2);
}

}  // namespace
