#include <gtest/gtest.h>

#include <numeric>

#include "mem/data_region.hpp"

namespace {

using namespace ilan::mem;
using ilan::topo::NodeId;

constexpr std::uint64_t kMB = 1ull << 20;

TEST(DataRegion, BlockPlacementCoversNodesContiguously) {
  DataRegion r(0, "u", 64 * kMB, Placement::kBlock, 4, 2 * kMB);
  EXPECT_EQ(r.num_pages(), 32u);
  EXPECT_EQ(r.placed_pages(), 32u);
  // First quarter on node 0, last quarter on node 3.
  EXPECT_EQ(r.node_of(0), NodeId{0});
  EXPECT_EQ(r.node_of(63 * kMB), NodeId{3});
  for (const auto pages : r.pages_per_node()) EXPECT_EQ(pages, 8u);
  // Monotone node ids along the address space.
  NodeId prev{0};
  for (std::uint64_t off = 0; off < 64 * kMB; off += 2 * kMB) {
    const NodeId n = r.node_of(off);
    EXPECT_GE(n.value(), prev.value());
    prev = n;
  }
}

TEST(DataRegion, InterleavePlacementRoundRobins) {
  DataRegion r(0, "u", 16 * kMB, Placement::kInterleave, 4, 2 * kMB);
  for (std::uint64_t p = 0; p < 8; ++p) {
    EXPECT_EQ(r.node_of(p * 2 * kMB), NodeId{static_cast<std::int32_t>(p % 4)});
  }
}

TEST(DataRegion, NodeBoundPlacement) {
  DataRegion r(0, "u", 8 * kMB, Placement::kNodeBound, 4, 2 * kMB, NodeId{2});
  for (std::uint64_t p = 0; p < 4; ++p) {
    EXPECT_EQ(r.node_of(p * 2 * kMB), NodeId{2});
  }
  EXPECT_THROW(DataRegion(0, "x", 8 * kMB, Placement::kNodeBound, 4, 2 * kMB),
               std::invalid_argument);
}

TEST(DataRegion, FirstTouchPlacesLazily) {
  DataRegion r(0, "u", 8 * kMB, Placement::kFirstTouch, 4, 2 * kMB);
  EXPECT_EQ(r.placed_pages(), 0u);
  EXPECT_FALSE(r.node_of(0).valid());
  EXPECT_EQ(r.touch(0, 3 * kMB, NodeId{1}), 2u);  // pages 0,1
  EXPECT_EQ(r.node_of(0), NodeId{1});
  EXPECT_EQ(r.node_of(2 * kMB + 1), NodeId{1});
  // Re-touch by another node does not move pages.
  EXPECT_EQ(r.touch(0, 3 * kMB, NodeId{3}), 0u);
  EXPECT_EQ(r.node_of(0), NodeId{1});
  EXPECT_EQ(r.placed_pages(), 2u);
}

TEST(DataRegion, BytesByNodeSumsToLength) {
  DataRegion r(0, "u", 64 * kMB, Placement::kBlock, 4, 2 * kMB);
  std::vector<double> out(4, 0.0);
  r.bytes_by_node(3 * kMB, 21 * kMB, out);
  EXPECT_NEAR(std::accumulate(out.begin(), out.end(), 0.0),
              static_cast<double>(21 * kMB), 1.0);
}

TEST(DataRegion, BytesByNodeAttributesUnplacedRoundRobin) {
  DataRegion r(0, "u", 16 * kMB, Placement::kFirstTouch, 4, 2 * kMB);
  std::vector<double> out(4, 0.0);
  r.bytes_by_node(0, 16 * kMB, out);
  EXPECT_NEAR(std::accumulate(out.begin(), out.end(), 0.0),
              static_cast<double>(16 * kMB), 1.0);
  // Round-robin attribution: all nodes get something.
  for (const double b : out) EXPECT_GT(b, 0.0);
}

TEST(DataRegion, SpreadByHistogramFollowsPlacement) {
  DataRegion r(0, "u", 16 * kMB, Placement::kFirstTouch, 4, 2 * kMB);
  r.touch(0, 8 * kMB, NodeId{0});       // 4 pages on node 0
  r.touch(8 * kMB, 4 * kMB, NodeId{2});  // 2 pages on node 2
  std::vector<double> out(4, 0.0);
  r.spread_by_histogram(600.0, out);
  EXPECT_NEAR(out[0], 400.0, 1e-9);
  EXPECT_NEAR(out[2], 200.0, 1e-9);
  EXPECT_DOUBLE_EQ(out[1], 0.0);
  EXPECT_DOUBLE_EQ(out[3], 0.0);
}

TEST(DataRegion, SpreadWithNothingPlacedIsUniform) {
  DataRegion r(0, "u", 16 * kMB, Placement::kFirstTouch, 4, 2 * kMB);
  std::vector<double> out(4, 0.0);
  r.spread_by_histogram(100.0, out);
  for (const double b : out) EXPECT_NEAR(b, 25.0, 1e-9);
}

TEST(DataRegion, OutOfRangeAccessThrows) {
  DataRegion r(0, "u", 4 * kMB, Placement::kBlock, 2, 2 * kMB);
  EXPECT_THROW(r.node_of(4 * kMB), std::out_of_range);
  EXPECT_THROW(r.touch(3 * kMB, 2 * kMB, NodeId{0}), std::out_of_range);
  std::vector<double> out(2, 0.0);
  EXPECT_THROW(r.bytes_by_node(0, 5 * kMB, out), std::out_of_range);
  std::vector<double> small(1, 0.0);
  EXPECT_THROW(r.bytes_by_node(0, kMB, small), std::invalid_argument);
}

TEST(DataRegion, ResetPlacementRestoresPolicy) {
  DataRegion ft(0, "u", 8 * kMB, Placement::kFirstTouch, 4, 2 * kMB);
  ft.touch(0, 8 * kMB, NodeId{3});
  EXPECT_EQ(ft.placed_pages(), 4u);
  ft.reset_placement();
  EXPECT_EQ(ft.placed_pages(), 0u);

  DataRegion blk(1, "v", 8 * kMB, Placement::kBlock, 4, 2 * kMB);
  blk.reset_placement();
  EXPECT_EQ(blk.placed_pages(), 4u);  // block re-places eagerly
}

TEST(DataRegion, RejectsDegenerateArguments) {
  EXPECT_THROW(DataRegion(0, "u", 0, Placement::kBlock, 4), std::invalid_argument);
  EXPECT_THROW(DataRegion(0, "u", 8, Placement::kBlock, 0), std::invalid_argument);
  EXPECT_THROW(DataRegion(0, "u", 8, Placement::kBlock, 4, 0), std::invalid_argument);
}

TEST(RegionTable, CreatesDenseIds) {
  RegionTable t(4);
  const auto a = t.create("a", kMB, Placement::kBlock);
  const auto b = t.create("b", kMB, Placement::kInterleave);
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.get(a).name(), "a");
  EXPECT_EQ(t.get(b).policy(), Placement::kInterleave);
}

TEST(RegionTable, ResetPlacementPropagates) {
  RegionTable t(2);
  const auto a = t.create("a", 8 * kMB, Placement::kFirstTouch, 2 * kMB);
  t.get(a).touch(0, 8 * kMB, NodeId{1});
  EXPECT_GT(t.get(a).placed_pages(), 0u);
  t.reset_placement();
  EXPECT_EQ(t.get(a).placed_pages(), 0u);
}

}  // namespace
