#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/env.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace ilan::obs;

// --- MetricsRegistry -------------------------------------------------------

TEST(MetricsRegistry, RegistrationOrderIsFirstUseOrder) {
  MetricsRegistry m;
  m.counter("c.one").inc();
  const std::vector<double> edges = {1.0, 2.0};
  m.gauge("g.two").set(5.0);
  m.histogram("h.three", edges).record(1.5);
  m.counter("c.one").inc();  // re-use must not re-register
  ASSERT_EQ(m.size(), 3u);
  EXPECT_EQ(m.entries()[0].name, "c.one");
  EXPECT_EQ(m.entries()[0].kind, MetricKind::kCounter);
  EXPECT_EQ(m.entries()[1].name, "g.two");
  EXPECT_EQ(m.entries()[1].kind, MetricKind::kGauge);
  EXPECT_EQ(m.entries()[2].name, "h.three");
  EXPECT_EQ(m.entries()[2].kind, MetricKind::kHistogram);
}

TEST(MetricsRegistry, GetOrCreateReturnsStableHandles) {
  MetricsRegistry m;
  Counter& a = m.counter("steals");
  // Registering many more metrics must not move the first handle (deque
  // storage backs the cached-pointer instrumentation pattern).
  for (int i = 0; i < 100; ++i) m.counter("c" + std::to_string(i));
  Counter& b = m.counter("steals");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(m.find_counter("steals")->value(), 3);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  MetricsRegistry m;
  m.counter("x");
  EXPECT_THROW((void)m.gauge("x"), std::invalid_argument);
  const std::vector<double> edges = {1.0};
  EXPECT_THROW((void)m.histogram("x", edges), std::invalid_argument);
  EXPECT_EQ(m.find_gauge("x"), nullptr);
  EXPECT_NE(m.find_counter("x"), nullptr);
}

TEST(MetricsRegistry, HistogramEdgeMismatchThrows) {
  MetricsRegistry m;
  const std::vector<double> e1 = {1.0, 2.0};
  const std::vector<double> e2 = {1.0, 3.0};
  (void)m.histogram("h", e1);
  EXPECT_THROW((void)m.histogram("h", e2), std::invalid_argument);
  (void)m.histogram("h", e1);  // identical edges: fine
}

TEST(Histogram, UpperEdgeInclusiveBucketing) {
  MetricsRegistry m;
  const std::vector<double> edges = {1.0, 2.0, 4.0};
  Histogram& h = m.histogram("h", edges);
  h.record(1.0);  // exactly on edge 0 -> bucket 0 (x <= edges[0])
  h.record(1.5);  // bucket 1
  h.record(4.0);  // exactly on the last edge -> bucket 2, not overflow
  h.record(5.0);  // overflow
  ASSERT_EQ(h.counts().size(), 4u);
  EXPECT_EQ(h.counts()[0], 1);
  EXPECT_EQ(h.counts()[1], 1);
  EXPECT_EQ(h.counts()[2], 1);
  EXPECT_EQ(h.counts()[3], 1);
  EXPECT_EQ(h.total_count(), 4);
  EXPECT_DOUBLE_EQ(h.sum(), 11.5);
  EXPECT_DOUBLE_EQ(h.mean(), 11.5 / 4.0);
}

TEST(MetricsRegistry, MergeSemantics) {
  MetricsRegistry a;
  a.counter("c").inc(2);
  a.gauge("g").set(10.0);
  const std::vector<double> edges = {1.0, 2.0};
  a.histogram("h", edges).record(0.5);

  MetricsRegistry b;
  b.counter("c").inc(3);
  b.gauge("g").set(20.0);
  b.histogram("h", edges).record(1.5);
  b.counter("only_in_b").inc(7);

  a.merge(b);
  EXPECT_EQ(a.find_counter("c")->value(), 5);
  // Gauges merge as (sum, samples) so mean() is the per-run average.
  EXPECT_DOUBLE_EQ(a.find_gauge("g")->value(), 30.0);
  EXPECT_EQ(a.find_gauge("g")->samples(), 2);
  EXPECT_DOUBLE_EQ(a.find_gauge("g")->mean(), 15.0);
  const Histogram* h = a.find_histogram("h");
  EXPECT_EQ(h->counts()[0], 1);
  EXPECT_EQ(h->counts()[1], 1);
  EXPECT_EQ(h->total_count(), 2);
  // Names absent in `a` are appended in `b`'s registration order.
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(a.entries()[3].name, "only_in_b");
  EXPECT_EQ(a.find_counter("only_in_b")->value(), 7);
}

TEST(MetricsRegistry, MergeKindMismatchThrows) {
  MetricsRegistry a;
  a.counter("x");
  MetricsRegistry b;
  b.gauge("x");
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(MetricsRegistry, DigestIsValueAndOrderSensitive) {
  auto build = [](std::int64_t c, double g) {
    MetricsRegistry m;
    m.counter("steals").inc(c);
    m.gauge("level").set(g);
    return m;
  };
  const MetricsRegistry m1 = build(4, 2.5);
  const MetricsRegistry m2 = build(4, 2.5);
  EXPECT_EQ(m1.digest(), m2.digest());
  EXPECT_NE(m1.digest(), build(5, 2.5).digest());
  EXPECT_NE(m1.digest(), build(4, 2.625).digest());

  // Same values, different registration order -> different digest: order is
  // part of the determinism contract.
  MetricsRegistry swapped;
  swapped.gauge("level").set(2.5);
  swapped.counter("steals").inc(4);
  EXPECT_NE(m1.digest(), swapped.digest());

  EXPECT_EQ(MetricsRegistry{}.digest(), MetricsRegistry{}.digest());
}

TEST(MetricsRegistry, CopySnapshotIsIndependent) {
  MetricsRegistry m;
  m.counter("c").inc(1);
  const MetricsRegistry snap = m;
  m.counter("c").inc(10);
  EXPECT_EQ(snap.find_counter("c")->value(), 1);
  EXPECT_EQ(m.find_counter("c")->value(), 11);
  EXPECT_NE(snap.digest(), m.digest());
}

TEST(MetricsRegistry, JsonIsFiniteAndNamesEverything) {
  MetricsRegistry m;
  m.counter("c").inc(2);
  m.gauge("g").set(1.5);
  const std::vector<double> edges = {1.0};
  m.histogram("h", edges).record(0.5);
  // Non-finite values must serialize as null, never "inf"/"nan" (invalid
  // JSON).
  m.gauge("bad").set(1e308 * 10.0);
  const std::string js = m.to_json();
  EXPECT_NE(js.find("\"c\""), std::string::npos);
  EXPECT_NE(js.find("\"g\""), std::string::npos);
  EXPECT_NE(js.find("\"buckets\""), std::string::npos);
  EXPECT_NE(js.find("null"), std::string::npos);
  EXPECT_EQ(js.find("inf"), std::string::npos);
  EXPECT_EQ(js.find("nan"), std::string::npos);
}

// --- strict env parsing ----------------------------------------------------

TEST(ParseEnv, IntFallbackOnlyWhenUnsetOrEmpty) {
  const ScopedEnv unset("ILAN_TEST_INT");
  EXPECT_EQ(parse_env_int("ILAN_TEST_INT", 7), 7);
  const ScopedEnv empty("ILAN_TEST_INT", "");
  EXPECT_EQ(parse_env_int("ILAN_TEST_INT", 7), 7);
}

TEST(ParseEnv, IntStrictFullStringParse) {
  const ScopedEnv v("ILAN_TEST_INT", "42");
  EXPECT_EQ(parse_env_int("ILAN_TEST_INT", 0), 42);
  {
    const ScopedEnv neg("ILAN_TEST_INT", "-3");
    EXPECT_EQ(parse_env_int("ILAN_TEST_INT", 0), -3);
  }
  for (const char* bad : {"abc", "4x", "3O", " 42", "42 ", "4.2", "0x10"}) {
    const ScopedEnv b("ILAN_TEST_INT", bad);
    EXPECT_THROW((void)parse_env_int("ILAN_TEST_INT", 0), std::invalid_argument)
        << "value: '" << bad << "'";
  }
}

TEST(ParseEnv, IntRangeAndOverflow) {
  {
    // Overflows long long entirely.
    const ScopedEnv v("ILAN_TEST_INT", "99999999999999999999999");
    EXPECT_THROW((void)parse_env_int("ILAN_TEST_INT", 0), std::invalid_argument);
  }
  {
    // Fits long long but not the caller's range.
    const ScopedEnv v("ILAN_TEST_INT", "5000000000");
    EXPECT_THROW((void)parse_env_int("ILAN_TEST_INT", 0), std::invalid_argument);
  }
  {
    const ScopedEnv v("ILAN_TEST_INT", "11");
    EXPECT_THROW((void)parse_env_int("ILAN_TEST_INT", 0, 0, 10), std::invalid_argument);
    EXPECT_EQ(parse_env_int("ILAN_TEST_INT", 0, 0, 11), 11);
  }
}

TEST(ParseEnv, DoubleStrictAndRanged) {
  const ScopedEnv unset("ILAN_TEST_DBL");
  EXPECT_DOUBLE_EQ(parse_env_double("ILAN_TEST_DBL", 1.25), 1.25);
  {
    const ScopedEnv v("ILAN_TEST_DBL", "2.5");
    EXPECT_DOUBLE_EQ(parse_env_double("ILAN_TEST_DBL", 0.0), 2.5);
  }
  for (const char* bad : {"abc", "1.5x", "1e999", "nan"}) {
    const ScopedEnv b("ILAN_TEST_DBL", bad);
    EXPECT_THROW((void)parse_env_double("ILAN_TEST_DBL", 0.0), std::invalid_argument)
        << "value: '" << bad << "'";
  }
  {
    const ScopedEnv v("ILAN_TEST_DBL", "1.5");
    EXPECT_THROW((void)parse_env_double("ILAN_TEST_DBL", 0.0, 0.0, 1.0),
                 std::invalid_argument);
  }
}

TEST(ParseEnv, FullIntPrimitive) {
  EXPECT_EQ(parse_full_int("123").value(), 123);
  EXPECT_EQ(parse_full_int("-9").value(), -9);
  EXPECT_FALSE(parse_full_int("").has_value());
  EXPECT_FALSE(parse_full_int("12abc").has_value());
  EXPECT_FALSE(parse_full_int("99999999999999999999999").has_value());
}

TEST(ParseEnv, Flag) {
  const ScopedEnv unset("ILAN_TEST_FLAG");
  EXPECT_FALSE(env_flag("ILAN_TEST_FLAG"));
  for (const char* off : {"", "0", "false", "off", "no"}) {
    const ScopedEnv v("ILAN_TEST_FLAG", off);
    EXPECT_FALSE(env_flag("ILAN_TEST_FLAG")) << "value: '" << off << "'";
  }
  for (const char* on : {"1", "true", "on", "yes", "2"}) {
    const ScopedEnv v("ILAN_TEST_FLAG", on);
    EXPECT_TRUE(env_flag("ILAN_TEST_FLAG")) << "value: '" << on << "'";
  }
}

// --- ScopedEnv -------------------------------------------------------------

TEST(ScopedEnvTest, RestoreOfUnsetUnsets) {
  ::unsetenv("ILAN_TEST_SCOPE");
  {
    const ScopedEnv v("ILAN_TEST_SCOPE", "x");
    EXPECT_STREQ(std::getenv("ILAN_TEST_SCOPE"), "x");
  }
  // Must be ABSENT, not present-but-empty: getenv-based guards treat an
  // empty string as "set".
  EXPECT_EQ(std::getenv("ILAN_TEST_SCOPE"), nullptr);
}

TEST(ScopedEnvTest, RestoresPriorValue) {
  ::setenv("ILAN_TEST_SCOPE", "orig", 1);
  {
    const ScopedEnv v("ILAN_TEST_SCOPE", "inner");
    EXPECT_STREQ(std::getenv("ILAN_TEST_SCOPE"), "inner");
  }
  EXPECT_STREQ(std::getenv("ILAN_TEST_SCOPE"), "orig");
  ::unsetenv("ILAN_TEST_SCOPE");
}

TEST(ScopedEnvTest, NestedScopesUnwindInReverseOrder) {
  ::setenv("ILAN_TEST_SCOPE", "base", 1);
  {
    const ScopedEnv outer("ILAN_TEST_SCOPE", "outer");
    {
      const ScopedEnv inner("ILAN_TEST_SCOPE", "inner");
      EXPECT_STREQ(std::getenv("ILAN_TEST_SCOPE"), "inner");
      {
        const ScopedEnv cleared("ILAN_TEST_SCOPE");  // unset for this scope
        EXPECT_EQ(std::getenv("ILAN_TEST_SCOPE"), nullptr);
      }
      EXPECT_STREQ(std::getenv("ILAN_TEST_SCOPE"), "inner");
    }
    EXPECT_STREQ(std::getenv("ILAN_TEST_SCOPE"), "outer");
  }
  EXPECT_STREQ(std::getenv("ILAN_TEST_SCOPE"), "base");
  ::unsetenv("ILAN_TEST_SCOPE");
}

}  // namespace
