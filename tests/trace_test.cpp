#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "trace/chrome_trace.hpp"
#include "trace/overhead.hpp"
#include "trace/stats.hpp"
#include "trace/table.hpp"

namespace {

using namespace ilan::trace;

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.1 * i * i - 3.0 * i;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(Summarize, QuantilesAndMoments) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(static_cast<double>(i));
  const auto s = summarize(xs);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.median, 50.5, 1e-9);
  EXPECT_NEAR(s.p05, 5.95, 1e-9);
  EXPECT_NEAR(s.p95, 95.05, 1e-9);
}

TEST(Summarize, EmptyIsZeroes) {
  const auto s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Summarize, SingleSampleEveryQuantileIsTheSample) {
  const auto s = summarize({5.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 5.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
  EXPECT_DOUBLE_EQ(s.p05, 5.0);
  EXPECT_DOUBLE_EQ(s.p95, 5.0);
}

TEST(Summarize, TwoSamplesInterpolateLinearly) {
  const auto s = summarize({2.0, 10.0});
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.mean, 6.0);
  EXPECT_DOUBLE_EQ(s.median, 6.0);
  EXPECT_NEAR(s.p05, 2.4, 1e-12);   // 2 + 0.05 * (10 - 2)
  EXPECT_NEAR(s.p95, 9.6, 1e-12);   // 2 + 0.95 * (10 - 2)
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 10.0);
}

TEST(Summarize, AllEqualSamplesCollapse) {
  const auto s = summarize({3.0, 3.0, 3.0, 3.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.p05, 3.0);
  EXPECT_DOUBLE_EQ(s.p95, 3.0);
}

TEST(Speedup, RatioAndValidation) {
  EXPECT_DOUBLE_EQ(speedup(2.0, 1.0), 2.0);
  EXPECT_THROW(speedup(1.0, 0.0), std::invalid_argument);
}

TEST(Overhead, ChargesAccumulatePerComponent) {
  OverheadTracker t;
  t.charge(OverheadComponent::kEnqueue, 100);
  t.charge(OverheadComponent::kEnqueue, 50);
  t.charge(OverheadComponent::kStealHit, 10);
  EXPECT_EQ(t.total(OverheadComponent::kEnqueue), 150);
  EXPECT_EQ(t.count(OverheadComponent::kEnqueue), 2u);
  EXPECT_EQ(t.grand_total(), 160);
  t.reset();
  EXPECT_EQ(t.grand_total(), 0);
  EXPECT_EQ(t.count(OverheadComponent::kEnqueue), 0u);
}

TEST(Overhead, ComponentNames) {
  for (int c = 0; c < static_cast<int>(OverheadComponent::kCount); ++c) {
    EXPECT_NE(to_string(static_cast<OverheadComponent>(c)), "unknown");
  }
}

// --- Chrome trace JSON round-trip -----------------------------------------
//
// A minimal recursive-descent JSON reader: enough to prove the writer's
// output is well-formed (strict parsers reject trailing commas, scientific
// notation produced by the old double-streaming bug, bare inf/nan, ...).
// Records the raw text of every number so the fixed-point guarantee is
// checkable.
class MiniJson {
 public:
  explicit MiniJson(std::string text) : text_(std::move(text)) {}

  bool parse() {
    pos_ = 0;
    ok_ = true;
    value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage");
    return ok_;
  }

  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] const std::vector<std::string>& numbers() const { return numbers_; }

 private:
  void fail(const std::string& why) {
    if (ok_) error_ = why + " at offset " + std::to_string(pos_);
    ok_ = false;
  }
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  void expect(char c) {
    if (!eat(c)) fail(std::string("expected '") + c + "'");
  }
  void value() {
    if (!ok_) return;
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end");
    const char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_lit();
    if (c == '-' || (std::isdigit(static_cast<unsigned char>(c)) != 0)) return number();
    for (const char* kw : {"true", "false", "null"}) {
      const std::string_view k(kw);
      if (text_.compare(pos_, k.size(), k) == 0) {
        pos_ += k.size();
        return;
      }
    }
    fail("unrecognized value");
  }
  void object() {
    expect('{');
    if (eat('}')) return;
    do {
      skip_ws();
      string_lit();
      expect(':');
      value();
    } while (ok_ && eat(','));
    expect('}');
  }
  void array() {
    expect('[');
    if (eat(']')) return;
    do {
      value();
    } while (ok_ && eat(','));
    expect(']');
  }
  void string_lit() {
    if (!eat('"')) return fail("expected string");
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;  // skip the escaped char
      ++pos_;
    }
    if (pos_ >= text_.size()) return fail("unterminated string");
    ++pos_;  // closing quote
  }
  void number() {
    const std::size_t begin = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&] {
      const std::size_t d0 = pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
      return pos_ > d0;
    };
    if (!digits()) return fail("bad number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digits()) return fail("bad fraction");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (!digits()) return fail("bad exponent");
    }
    numbers_.emplace_back(text_.substr(begin, pos_ - begin));
  }

  std::string text_;
  std::size_t pos_ = 0;
  bool ok_ = true;
  std::string error_;
  std::vector<std::string> numbers_;
};

TEST(ChromeTrace, JsonRoundTripParsesClean) {
  ChromeTraceWriter w;
  // Two NUMA-node lanes, a loop marker, a scheduler instant and a fault
  // span — every event family the writer emits.
  w.add_task({"stream[0,64)", /*core=*/0, /*node=*/0, /*start=*/0,
              /*end=*/1'234'567'000, /*stolen_remote=*/false});
  w.add_task({"stream[64,128)", /*core=*/9, /*node=*/1, /*start=*/500'000,
              /*end=*/2'000'500'000, /*stolen_remote=*/true});
  w.add_marker({"loop stream", 0});
  w.add_instant({"ptt lock loop 0 @8thr", 750'000'000});
  w.add_span({"bandwidth node0 mag0.5", 100'000'000, 900'000'000});
  EXPECT_EQ(w.num_events(), 5u);

  const std::string js = w.to_json();
  MiniJson parsed(js);
  EXPECT_TRUE(parsed.parse()) << parsed.error() << "\n" << js;

  // Fixed-point timestamps: every number is plain decimal, no scientific
  // notation and no negatives (durations are end - start of ordered times).
  ASSERT_FALSE(parsed.numbers().empty());
  for (const auto& n : parsed.numbers()) {
    EXPECT_EQ(n.find_first_of("eE"), std::string::npos) << n;
    EXPECT_NE(n[0], '-') << n;
  }

  // 1'234'567'000 ps = 1234.567 us, printed exactly.
  EXPECT_NE(js.find("\"ts\":0.000"), std::string::npos);
  EXPECT_NE(js.find("\"dur\":1234.567"), std::string::npos);

  // Lane layout: control lane pid 0 plus one named process per node.
  EXPECT_NE(js.find("\"scheduler+faults\""), std::string::npos);
  EXPECT_NE(js.find("\"node0\""), std::string::npos);
  EXPECT_NE(js.find("\"node1\""), std::string::npos);
  EXPECT_NE(js.find("\"cat\":\"remote-steal\""), std::string::npos);
  EXPECT_NE(js.find("\"cat\":\"sched\""), std::string::npos);
  EXPECT_NE(js.find("\"cat\":\"fault\""), std::string::npos);
  // Node 1's task lands in node 1's process lane (pid = 1 + node).
  EXPECT_NE(js.find("\"pid\":2,\"tid\":9"), std::string::npos);
}

TEST(ChromeTrace, EscapesControlAndQuoteCharacters) {
  ChromeTraceWriter w;
  w.add_marker({"odd \"name\" with \\ and \n newline", 1'000'000});
  const std::string js = w.to_json();
  MiniJson parsed(js);
  EXPECT_TRUE(parsed.parse()) << parsed.error() << "\n" << js;
  EXPECT_NE(js.find("\\\"name\\\""), std::string::npos);
  EXPECT_NE(js.find("\\n"), std::string::npos);
}

TEST(ChromeTrace, ClearResetsEverything) {
  ChromeTraceWriter w;
  w.add_task({"t", 0, 0, 0, 1'000'000, false});
  w.add_instant({"i", 0});
  w.add_span({"s", 0, 1});
  w.clear();
  EXPECT_EQ(w.num_events(), 0u);
  MiniJson parsed(w.to_json());
  EXPECT_TRUE(parsed.parse()) << parsed.error();
}

TEST(TableTest, AlignedOutputAndCsv) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.print(os);
  const auto text = os.str();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
  EXPECT_EQ(t.to_csv(), "name,value\nalpha,1\nb,22\n");
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.row(1)[1], "22");
}

TEST(TableTest, FormattersAndValidation) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::pct(1.132), "+13.2%");
  EXPECT_EQ(Table::pct(0.975), "-2.5%");
  Table t({"a"});
  EXPECT_THROW(t.add_row({"x", "y"}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

}  // namespace
