#include <gtest/gtest.h>

#include <sstream>

#include "trace/overhead.hpp"
#include "trace/stats.hpp"
#include "trace/table.hpp"

namespace {

using namespace ilan::trace;

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.1 * i * i - 3.0 * i;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(Summarize, QuantilesAndMoments) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(static_cast<double>(i));
  const auto s = summarize(xs);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.median, 50.5, 1e-9);
  EXPECT_NEAR(s.p05, 5.95, 1e-9);
  EXPECT_NEAR(s.p95, 95.05, 1e-9);
}

TEST(Summarize, EmptyIsZeroes) {
  const auto s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Speedup, RatioAndValidation) {
  EXPECT_DOUBLE_EQ(speedup(2.0, 1.0), 2.0);
  EXPECT_THROW(speedup(1.0, 0.0), std::invalid_argument);
}

TEST(Overhead, ChargesAccumulatePerComponent) {
  OverheadTracker t;
  t.charge(OverheadComponent::kEnqueue, 100);
  t.charge(OverheadComponent::kEnqueue, 50);
  t.charge(OverheadComponent::kStealHit, 10);
  EXPECT_EQ(t.total(OverheadComponent::kEnqueue), 150);
  EXPECT_EQ(t.count(OverheadComponent::kEnqueue), 2u);
  EXPECT_EQ(t.grand_total(), 160);
  t.reset();
  EXPECT_EQ(t.grand_total(), 0);
  EXPECT_EQ(t.count(OverheadComponent::kEnqueue), 0u);
}

TEST(Overhead, ComponentNames) {
  for (int c = 0; c < static_cast<int>(OverheadComponent::kCount); ++c) {
    EXPECT_NE(to_string(static_cast<OverheadComponent>(c)), "unknown");
  }
}

TEST(TableTest, AlignedOutputAndCsv) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.print(os);
  const auto text = os.str();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
  EXPECT_EQ(t.to_csv(), "name,value\nalpha,1\nb,22\n");
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.row(1)[1], "22");
}

TEST(TableTest, FormattersAndValidation) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::pct(1.132), "+13.2%");
  EXPECT_EQ(Table::pct(0.975), "-2.5%");
  Table t({"a"});
  EXPECT_THROW(t.add_row({"x", "y"}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

}  // namespace
