#include <gtest/gtest.h>

#include "mem/cache_model.hpp"
#include "topo/builder.hpp"
#include "topo/presets.hpp"

namespace {

using namespace ilan::mem;
using ilan::topo::CcdId;

CacheModel make_cache(CacheParams p = {}) {
  static const auto topo = ilan::topo::build(ilan::topo::presets::tiny_2n8c());
  return CacheModel(topo, p);
}

constexpr std::uint64_t kBlock = 256 * 1024;

TEST(CacheModel, ColdAccessMissesThenHits) {
  auto cache = make_cache();
  EXPECT_DOUBLE_EQ(cache.access(CcdId{0}, 0, 0, 4 * kBlock), 0.0);
  const double hit = cache.access(CcdId{0}, 0, 0, 4 * kBlock);
  EXPECT_NEAR(hit, CacheParams{}.resident_hit_rate, 1e-9);
}

TEST(CacheModel, CcdsAreIndependent) {
  auto cache = make_cache();
  cache.access(CcdId{0}, 0, 0, 4 * kBlock);
  EXPECT_DOUBLE_EQ(cache.access(CcdId{1}, 0, 0, 4 * kBlock), 0.0);
}

TEST(CacheModel, RegionsAreDistinct) {
  auto cache = make_cache();
  cache.access(CcdId{0}, 0, 0, 4 * kBlock);
  EXPECT_DOUBLE_EQ(cache.access(CcdId{0}, 1, 0, 4 * kBlock), 0.0);
}

TEST(CacheModel, LruEvictsOldest) {
  // tiny preset: 16 MB L3 -> 64 blocks per CCD; bypass above 48 blocks.
  auto cache = make_cache();
  cache.access(CcdId{0}, 0, 0, 40 * kBlock);  // resident working set
  cache.access(CcdId{0}, 1, 0, 32 * kBlock);  // evicts the 8 oldest of region 0
  // The head of region 0 is gone, the tail survives.
  EXPECT_DOUBLE_EQ(cache.access(CcdId{0}, 0, 0, kBlock), 0.0);
  EXPECT_GT(cache.access(CcdId{0}, 0, 39 * kBlock, kBlock), 0.0);
}

TEST(CacheModel, StreamingBypassDoesNotThrash) {
  auto cache = make_cache();
  cache.access(CcdId{0}, 0, 0, 8 * kBlock);  // resident working set
  // A huge streaming access (>75% of 64-block capacity) bypasses the LRU...
  cache.access(CcdId{0}, 1, 0, 60 * kBlock);
  // ...so the original working set still hits.
  EXPECT_GT(cache.access(CcdId{0}, 0, 0, 8 * kBlock), 0.5);
}

TEST(CacheModel, PartialResidencyGivesFractionalHit) {
  auto cache = make_cache();
  cache.access(CcdId{0}, 0, 0, 2 * kBlock);  // blocks 0,1 resident
  const double h = cache.access(CcdId{0}, 0, 0, 4 * kBlock);  // probe 0..3
  EXPECT_NEAR(h, 0.5 * CacheParams{}.resident_hit_rate, 1e-9);
}

TEST(CacheModel, InvalidateClearsOneCcd) {
  auto cache = make_cache();
  cache.access(CcdId{0}, 0, 0, 4 * kBlock);
  cache.access(CcdId{1}, 0, 0, 4 * kBlock);
  cache.invalidate(CcdId{0});
  EXPECT_DOUBLE_EQ(cache.access(CcdId{0}, 0, 0, 4 * kBlock), 0.0);
  EXPECT_GT(cache.access(CcdId{1}, 0, 0, 4 * kBlock), 0.0);
}

TEST(CacheModel, CountsHitsAndProbes) {
  auto cache = make_cache();
  cache.access(CcdId{0}, 0, 0, 4 * kBlock);
  cache.access(CcdId{0}, 0, 0, 4 * kBlock);
  EXPECT_EQ(cache.probes(), 8u);
  EXPECT_EQ(cache.hits(), 4u);
  cache.invalidate_all();
  EXPECT_EQ(cache.probes(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(CacheModel, ZeroLengthAccessIsFree) {
  auto cache = make_cache();
  EXPECT_DOUBLE_EQ(cache.access(CcdId{0}, 0, 0, 0), 0.0);
  EXPECT_EQ(cache.probes(), 0u);
}

TEST(CacheModel, RejectsZeroBlockSize) {
  CacheParams p;
  p.block_bytes = 0;
  EXPECT_THROW(make_cache(p), std::invalid_argument);
}

}  // namespace
