// Workload models: registry, structural invariants, imbalance properties.
#include <gtest/gtest.h>

#include "kernels/kernels.hpp"
#include "sched/schedulers.hpp"
#include "rt/team.hpp"
#include "topo/presets.hpp"

namespace {

using namespace ilan;

rt::MachineParams tiny_params(std::uint64_t seed) {
  rt::MachineParams p;
  p.spec = topo::presets::tiny_2n8c();
  p.noise.enabled = false;
  p.seed = seed;
  return p;
}

TEST(Registry, ListsTheSevenBenchmarks) {
  const auto& names = kernels::kernel_names();
  EXPECT_EQ(names.size(), 7u);
  for (const auto& expect : {"cg", "ft", "bt", "sp", "lu", "matmul", "lulesh"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expect), names.end()) << expect;
  }
}

TEST(Registry, UnknownKernelThrows) {
  rt::Machine machine(tiny_params(1));
  EXPECT_THROW(kernels::make_kernel("mg", machine, {}), std::invalid_argument);
}

class KernelStructure : public ::testing::TestWithParam<std::string> {};

TEST_P(KernelStructure, HasInitAndStepLoopsWithUniqueIds) {
  rt::Machine machine(tiny_params(2));
  const auto prog = kernels::make_kernel(GetParam(), machine, {});
  EXPECT_FALSE(prog.init_loops.empty());
  EXPECT_FALSE(prog.step_loops.empty());
  EXPECT_GT(prog.timesteps, 0);
  std::set<rt::LoopId> ids;
  for (const auto& l : prog.init_loops) ids.insert(l.loop_id);
  for (const auto& l : prog.step_loops) ids.insert(l.loop_id);
  EXPECT_EQ(ids.size(), prog.init_loops.size() + prog.step_loops.size());
}

TEST_P(KernelStructure, DemandsArePositiveAndPure) {
  rt::Machine machine(tiny_params(3));
  const auto prog = kernels::make_kernel(GetParam(), machine, {});
  for (const auto& loop : prog.step_loops) {
    const auto d1 = loop.demand(0, 16);
    const auto d2 = loop.demand(0, 16);
    EXPECT_GE(d1.cpu_cycles, 0.0);
    EXPECT_EQ(d1.cpu_cycles, d2.cpu_cycles) << "demand must be pure";
    EXPECT_EQ(d1.accesses.size(), d2.accesses.size());
    double bytes = 0.0;
    for (const auto& a : d1.accesses) bytes += static_cast<double>(a.len);
    EXPECT_GT(bytes + d1.cpu_cycles, 0.0) << loop.name;
  }
}

TEST_P(KernelStructure, StreamSlicesStayInsideRegions) {
  rt::Machine machine(tiny_params(4));
  const auto prog = kernels::make_kernel(GetParam(), machine, {});
  for (const auto& loop : prog.step_loops) {
    for (const std::int64_t b : {std::int64_t{0}, loop.iterations / 2, loop.iterations - 1}) {
      const auto d = loop.demand(b, std::min(loop.iterations, b + 16));
      for (const auto& a : d.accesses) {
        const auto& region = machine.regions().get(a.region);
        EXPECT_LE(a.offset + a.len, region.bytes())
            << loop.name << " range [" << b << ")";
      }
    }
  }
}

TEST_P(KernelStructure, RunsQuicklyUnderBaseline) {
  rt::Machine machine(tiny_params(5));
  sched::BaselineWsScheduler sched;
  rt::Team team(machine, sched);
  kernels::KernelOptions opts;
  opts.timesteps = 2;
  opts.size_factor = 0.05;
  const auto prog = kernels::make_kernel(GetParam(), machine, opts);
  const auto t = prog.run(team);
  EXPECT_GT(t, 0);
  EXPECT_EQ(team.history().size(),
            prog.init_loops.size() + 2 * prog.step_loops.size());
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelStructure,
                         ::testing::ValuesIn(kernels::kernel_names()),
                         [](const auto& info) { return info.param; });

TEST(KernelOptions, TimestepsOverrideApplies) {
  rt::Machine machine(tiny_params(6));
  kernels::KernelOptions opts;
  opts.timesteps = 7;
  const auto prog = kernels::make_cg(machine, opts);
  EXPECT_EQ(prog.timesteps, 7);
}

TEST(KernelOptions, SizeFactorScalesRegions) {
  rt::Machine m1(tiny_params(7));
  rt::Machine m2(tiny_params(7));
  kernels::KernelOptions half;
  half.size_factor = 0.5;
  kernels::make_cg(m1, {});
  kernels::make_cg(m2, half);
  EXPECT_NEAR(static_cast<double>(m2.regions().get(0).bytes()),
              static_cast<double>(m1.regions().get(0).bytes()) * 0.5,
              static_cast<double>(m1.regions().get(0).bytes()) * 0.01);
}

// --- imbalance model ---------------------------------------------------------

TEST(Imbalance, ZeroAmplitudeIsUnity) {
  EXPECT_DOUBLE_EQ(kernels::imbalance_factor(1, 0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(kernels::imbalance_factor_range(1, 0, 100, 0.0), 1.0);
}

TEST(Imbalance, WithinAmplitudeBounds) {
  for (std::int64_t b = 0; b < 200; b += 8) {
    const double f = kernels::imbalance_factor(42, b, 0.3);
    EXPECT_GE(f, 0.7);
    EXPECT_LE(f, 1.3);
  }
}

TEST(Imbalance, MeanIsApproximatelyOne) {
  double sum = 0.0;
  const int n = 4096;
  for (int b = 0; b < n; ++b) {
    sum += kernels::imbalance_factor_range(7, b * 8, b * 8 + 8, 0.35);
  }
  EXPECT_NEAR(sum / n, 1.0, 0.02);
}

TEST(Imbalance, ChunkingIndependence) {
  // The total work of [0, 512) must not depend on how it is chunked.
  const auto total = [&](std::int64_t chunk) {
    double sum = 0.0;
    for (std::int64_t b = 0; b < 512; b += chunk) {
      sum += kernels::imbalance_factor_range(99, b, b + chunk, 0.35, 0.05, 3.0) *
             static_cast<double>(chunk);
    }
    return sum;
  };
  EXPECT_NEAR(total(8), total(16), 1e-9);
  EXPECT_NEAR(total(8), total(64), 1e-9);
  EXPECT_NEAR(total(8), total(512), 1e-9);
}

TEST(Imbalance, TailsAppearAtTheConfiguredRate) {
  int tails = 0;
  const int n = 10'000;
  for (int b = 0; b < n; ++b) {
    const double f = kernels::imbalance_factor(5, b * 8, 0.0, 0.02, 3.0);
    if (f > 2.0) ++tails;
  }
  EXPECT_NEAR(static_cast<double>(tails) / n, 0.02, 0.006);
}

TEST(Imbalance, DeterministicPerSeed) {
  EXPECT_DOUBLE_EQ(kernels::imbalance_factor_range(3, 0, 64, 0.3, 0.02, 3.0),
                   kernels::imbalance_factor_range(3, 0, 64, 0.3, 0.02, 3.0));
  EXPECT_NE(kernels::imbalance_factor_range(3, 0, 64, 0.3),
            kernels::imbalance_factor_range(4, 0, 64, 0.3));
}

}  // namespace
