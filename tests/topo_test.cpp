#include <gtest/gtest.h>

#include <stdexcept>

#include "topo/builder.hpp"
#include "topo/format.hpp"
#include "topo/presets.hpp"

namespace {

using namespace ilan::topo;

TEST(StrongId, BasicSemantics) {
  const CoreId a{3};
  const CoreId b{3};
  const CoreId c{4};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);
  EXPECT_EQ(a.value(), 3);
  EXPECT_EQ(a.index(), 3u);
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE(CoreId::invalid().valid());
}

TEST(StrongId, Hashable) {
  std::hash<CoreId> h;
  EXPECT_EQ(h(CoreId{5}), h(CoreId{5}));
  EXPECT_NE(h(CoreId{5}), h(CoreId{6}));
}

TEST(Builder, Zen4PresetShape) {
  const auto topo = build(presets::zen4_epyc9354_2s());
  EXPECT_EQ(topo.num_sockets(), 2);
  EXPECT_EQ(topo.num_nodes(), 8);
  EXPECT_EQ(topo.num_ccds(), 16);
  EXPECT_EQ(topo.num_cores(), 64);
  EXPECT_EQ(topo.cores_per_node(), 8);
}

TEST(Builder, HierarchyIsConsistent) {
  const auto topo = build(presets::zen4_epyc9354_2s());
  for (const auto& core : topo.cores()) {
    const auto& ccd = topo.ccd(core.ccd);
    EXPECT_EQ(ccd.node, core.node);
    const auto& node = topo.node(core.node);
    EXPECT_EQ(node.socket, core.socket);
    // Core is listed by its ccd and node.
    EXPECT_NE(std::find(ccd.cores.begin(), ccd.cores.end(), core.id), ccd.cores.end());
    EXPECT_NE(std::find(node.cores.begin(), node.cores.end(), core.id),
              node.cores.end());
  }
  for (const auto& node : topo.nodes()) {
    EXPECT_EQ(node.cores.size(), 8u);
    EXPECT_EQ(node.ccds.size(), 2u);
    EXPECT_EQ(topo.node_of(node.primary_core), node.id);
  }
}

TEST(Builder, DistancesFollowSlitConventions) {
  const auto topo = build(presets::zen4_epyc9354_2s());
  for (const auto& a : topo.nodes()) {
    for (const auto& b : topo.nodes()) {
      const double d = topo.distance(a.id, b.id);
      if (a.id == b.id) {
        EXPECT_EQ(d, 10.0);
      } else if (a.socket == b.socket) {
        EXPECT_EQ(d, 12.0);
      } else {
        EXPECT_EQ(d, 32.0);
      }
      // Symmetry.
      EXPECT_EQ(d, topo.distance(b.id, a.id));
    }
  }
}

TEST(Builder, NodesByDistanceOrdering) {
  const auto topo = build(presets::zen4_epyc9354_2s());
  const auto order = topo.nodes_by_distance(NodeId{2});
  ASSERT_EQ(order.size(), 8u);
  // Self first, then same-socket nodes (0,1,3), then cross-socket.
  EXPECT_EQ(order[0], NodeId{2});
  for (int i = 1; i <= 3; ++i) {
    EXPECT_TRUE(topo.same_socket(order[static_cast<std::size_t>(i)], NodeId{2}))
        << "position " << i;
  }
  for (int i = 4; i < 8; ++i) {
    EXPECT_FALSE(topo.same_socket(order[static_cast<std::size_t>(i)], NodeId{2}))
        << "position " << i;
  }
  // Deterministic tie-break: ascending ids within each distance class.
  EXPECT_EQ(order[1], NodeId{0});
  EXPECT_EQ(order[2], NodeId{1});
  EXPECT_EQ(order[3], NodeId{3});
  EXPECT_EQ(order[4], NodeId{4});
}

TEST(Builder, TotalBandwidthSumsControllers) {
  const auto spec = presets::zen4_epyc9354_2s();
  const auto topo = build(spec);
  EXPECT_DOUBLE_EQ(topo.total_mem_bw_gbps(), spec.node_bw_gbps * 8);
}

TEST(Builder, RejectsNonPositiveCounts) {
  auto spec = presets::tiny_2n8c();
  spec.sockets = 0;
  EXPECT_THROW(build(spec), std::invalid_argument);
  spec = presets::tiny_2n8c();
  spec.cores_per_ccd = -1;
  EXPECT_THROW(build(spec), std::invalid_argument);
  spec = presets::tiny_2n8c();
  spec.node_bw_gbps = 0.0;
  EXPECT_THROW(build(spec), std::invalid_argument);
  spec = presets::tiny_2n8c();
  spec.dist_same_socket = 9.0;  // below SLIT local
  EXPECT_THROW(build(spec), std::invalid_argument);
}

class PresetTest : public ::testing::TestWithParam<MachineSpec> {};

TEST_P(PresetTest, BuildsAndValidates) {
  const auto topo = build(GetParam());
  EXPECT_EQ(topo.num_cores(), GetParam().total_cores());
  EXPECT_EQ(topo.num_nodes(), GetParam().total_nodes());
  EXPECT_GT(topo.cores_per_node(), 0);
  // Every core reachable through ids.
  for (int c = 0; c < topo.num_cores(); ++c) {
    EXPECT_EQ(topo.core(CoreId{c}).id, CoreId{c});
  }
}

INSTANTIATE_TEST_SUITE_P(AllPresets, PresetTest,
                         ::testing::Values(presets::zen4_epyc9354_2s(),
                                           presets::tiny_2n8c(),
                                           presets::small_4n16c()),
                         [](const auto& info) {
                           std::string n = info.param.name;
                           for (auto& ch : n) {
                             if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
                           }
                           return n;
                         });

TEST(Format, RoundTripsEveryField) {
  const auto spec = presets::zen4_epyc9354_2s();
  const auto parsed = ilan::topo::parse_machine_spec(serialize(spec));
  EXPECT_EQ(parsed.name, spec.name);
  EXPECT_EQ(parsed.sockets, spec.sockets);
  EXPECT_EQ(parsed.nodes_per_socket, spec.nodes_per_socket);
  EXPECT_EQ(parsed.ccds_per_node, spec.ccds_per_node);
  EXPECT_EQ(parsed.cores_per_ccd, spec.cores_per_ccd);
  EXPECT_DOUBLE_EQ(parsed.core_freq_ghz, spec.core_freq_ghz);
  EXPECT_DOUBLE_EQ(parsed.core_bw_gbps, spec.core_bw_gbps);
  EXPECT_DOUBLE_EQ(parsed.l3_mb_per_ccd, spec.l3_mb_per_ccd);
  EXPECT_DOUBLE_EQ(parsed.node_mem_gb, spec.node_mem_gb);
  EXPECT_DOUBLE_EQ(parsed.node_bw_gbps, spec.node_bw_gbps);
  EXPECT_DOUBLE_EQ(parsed.node_latency_ns, spec.node_latency_ns);
  EXPECT_DOUBLE_EQ(parsed.xlink_bw_gbps, spec.xlink_bw_gbps);
  EXPECT_DOUBLE_EQ(parsed.dist_same_socket, spec.dist_same_socket);
  EXPECT_DOUBLE_EQ(parsed.dist_cross_socket, spec.dist_cross_socket);
}

TEST(Format, AcceptsCommentsAndBlankLines) {
  const auto spec = parse_machine_spec(
      "# a machine\n"
      "\n"
      "name = demo   # trailing comment\n"
      "sockets = 2\n");
  EXPECT_EQ(spec.name, "demo");
  EXPECT_EQ(spec.sockets, 2);
}

TEST(Format, RejectsUnknownKey) {
  EXPECT_THROW(parse_machine_spec("socket_count = 2\n"), std::invalid_argument);
}

TEST(Format, RejectsMalformedLine) {
  EXPECT_THROW(parse_machine_spec("sockets 2\n"), std::invalid_argument);
  EXPECT_THROW(parse_machine_spec("sockets = two\n"), std::invalid_argument);
  EXPECT_THROW(parse_machine_spec("sockets = \n"), std::invalid_argument);
}

TEST(Format, ReportsLineNumber) {
  try {
    parse_machine_spec("name = x\nbogus = 1\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Format, LoadMissingFileThrows) {
  EXPECT_THROW(load_machine_spec("/nonexistent/machine.topo"), std::runtime_error);
}

}  // namespace
