#include <gtest/gtest.h>

#include <stdexcept>

#include "obs/env.hpp"
#include "topo/builder.hpp"
#include "topo/format.hpp"
#include "topo/presets.hpp"
#include "topo/registry.hpp"

namespace {

using namespace ilan::topo;

TEST(StrongId, BasicSemantics) {
  const CoreId a{3};
  const CoreId b{3};
  const CoreId c{4};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);
  EXPECT_EQ(a.value(), 3);
  EXPECT_EQ(a.index(), 3u);
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE(CoreId::invalid().valid());
}

TEST(StrongId, Hashable) {
  std::hash<CoreId> h;
  EXPECT_EQ(h(CoreId{5}), h(CoreId{5}));
  EXPECT_NE(h(CoreId{5}), h(CoreId{6}));
}

TEST(Builder, Zen4PresetShape) {
  const auto topo = build(presets::zen4_epyc9354_2s());
  EXPECT_EQ(topo.num_sockets(), 2);
  EXPECT_EQ(topo.num_nodes(), 8);
  EXPECT_EQ(topo.num_ccds(), 16);
  EXPECT_EQ(topo.num_cores(), 64);
  EXPECT_EQ(topo.cores_per_node(), 8);
}

TEST(Builder, HierarchyIsConsistent) {
  const auto topo = build(presets::zen4_epyc9354_2s());
  for (const auto& core : topo.cores()) {
    const auto& ccd = topo.ccd(core.ccd);
    EXPECT_EQ(ccd.node, core.node);
    const auto& node = topo.node(core.node);
    EXPECT_EQ(node.socket, core.socket);
    // Core is listed by its ccd and node.
    EXPECT_NE(std::find(ccd.cores.begin(), ccd.cores.end(), core.id), ccd.cores.end());
    EXPECT_NE(std::find(node.cores.begin(), node.cores.end(), core.id),
              node.cores.end());
  }
  for (const auto& node : topo.nodes()) {
    EXPECT_EQ(node.cores.size(), 8u);
    EXPECT_EQ(node.ccds.size(), 2u);
    EXPECT_EQ(topo.node_of(node.primary_core), node.id);
  }
}

TEST(Builder, DistancesFollowSlitConventions) {
  const auto topo = build(presets::zen4_epyc9354_2s());
  for (const auto& a : topo.nodes()) {
    for (const auto& b : topo.nodes()) {
      const double d = topo.distance(a.id, b.id);
      if (a.id == b.id) {
        EXPECT_EQ(d, 10.0);
      } else if (a.socket == b.socket) {
        EXPECT_EQ(d, 12.0);
      } else {
        EXPECT_EQ(d, 32.0);
      }
      // Symmetry.
      EXPECT_EQ(d, topo.distance(b.id, a.id));
    }
  }
}

TEST(Builder, NodesByDistanceOrdering) {
  const auto topo = build(presets::zen4_epyc9354_2s());
  const auto order = topo.nodes_by_distance(NodeId{2});
  ASSERT_EQ(order.size(), 8u);
  // Self first, then same-socket nodes (0,1,3), then cross-socket.
  EXPECT_EQ(order[0], NodeId{2});
  for (int i = 1; i <= 3; ++i) {
    EXPECT_TRUE(topo.same_socket(order[static_cast<std::size_t>(i)], NodeId{2}))
        << "position " << i;
  }
  for (int i = 4; i < 8; ++i) {
    EXPECT_FALSE(topo.same_socket(order[static_cast<std::size_t>(i)], NodeId{2}))
        << "position " << i;
  }
  // Deterministic tie-break: ascending ids within each distance class.
  EXPECT_EQ(order[1], NodeId{0});
  EXPECT_EQ(order[2], NodeId{1});
  EXPECT_EQ(order[3], NodeId{3});
  EXPECT_EQ(order[4], NodeId{4});
}

TEST(Builder, TotalBandwidthSumsControllers) {
  const auto spec = presets::zen4_epyc9354_2s();
  const auto topo = build(spec);
  EXPECT_DOUBLE_EQ(topo.total_mem_bw_gbps(), spec.node_bw_gbps * 8);
}

TEST(Builder, RejectsNonPositiveCounts) {
  auto spec = presets::tiny_2n8c();
  spec.sockets = 0;
  EXPECT_THROW(build(spec), std::invalid_argument);
  spec = presets::tiny_2n8c();
  spec.cores_per_ccd = -1;
  EXPECT_THROW(build(spec), std::invalid_argument);
  spec = presets::tiny_2n8c();
  spec.node_bw_gbps = 0.0;
  EXPECT_THROW(build(spec), std::invalid_argument);
  spec = presets::tiny_2n8c();
  spec.dist_same_socket = 9.0;  // below SLIT local
  EXPECT_THROW(build(spec), std::invalid_argument);
}

class PresetTest : public ::testing::TestWithParam<MachineSpec> {};

TEST_P(PresetTest, BuildsAndValidates) {
  const auto topo = build(GetParam());
  EXPECT_EQ(topo.num_cores(), GetParam().total_cores());
  EXPECT_EQ(topo.num_nodes(), GetParam().total_nodes());
  EXPECT_GT(topo.cores_per_node(), 0);
  // Every core reachable through ids.
  for (int c = 0; c < topo.num_cores(); ++c) {
    EXPECT_EQ(topo.core(CoreId{c}).id, CoreId{c});
  }
}

INSTANTIATE_TEST_SUITE_P(AllPresets, PresetTest,
                         ::testing::Values(presets::zen4_epyc9354_2s(),
                                           presets::tiny_2n8c(),
                                           presets::small_4n16c(),
                                           presets::quad_4s16n256c(),
                                           presets::cxl_zen4_far(),
                                           presets::hetero_zen4_pe()),
                         [](const auto& info) {
                           std::string n = info.param.name;
                           for (auto& ch : n) {
                             if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
                           }
                           return n;
                         });

TEST(Format, RoundTripsEveryField) {
  const auto spec = presets::zen4_epyc9354_2s();
  const auto parsed = ilan::topo::parse_machine_spec(serialize(spec));
  EXPECT_EQ(parsed.name, spec.name);
  EXPECT_EQ(parsed.sockets, spec.sockets);
  EXPECT_EQ(parsed.nodes_per_socket, spec.nodes_per_socket);
  EXPECT_EQ(parsed.ccds_per_node, spec.ccds_per_node);
  EXPECT_EQ(parsed.cores_per_ccd, spec.cores_per_ccd);
  EXPECT_DOUBLE_EQ(parsed.core_freq_ghz, spec.core_freq_ghz);
  EXPECT_DOUBLE_EQ(parsed.core_bw_gbps, spec.core_bw_gbps);
  EXPECT_DOUBLE_EQ(parsed.l3_mb_per_ccd, spec.l3_mb_per_ccd);
  EXPECT_DOUBLE_EQ(parsed.node_mem_gb, spec.node_mem_gb);
  EXPECT_DOUBLE_EQ(parsed.node_bw_gbps, spec.node_bw_gbps);
  EXPECT_DOUBLE_EQ(parsed.node_latency_ns, spec.node_latency_ns);
  EXPECT_DOUBLE_EQ(parsed.xlink_bw_gbps, spec.xlink_bw_gbps);
  EXPECT_DOUBLE_EQ(parsed.dist_same_socket, spec.dist_same_socket);
  EXPECT_DOUBLE_EQ(parsed.dist_cross_socket, spec.dist_cross_socket);
}

TEST(Format, AcceptsCommentsAndBlankLines) {
  const auto spec = parse_machine_spec(
      "# a machine\n"
      "\n"
      "name = demo   # trailing comment\n"
      "sockets = 2\n");
  EXPECT_EQ(spec.name, "demo");
  EXPECT_EQ(spec.sockets, 2);
}

TEST(Format, RejectsUnknownKey) {
  EXPECT_THROW(parse_machine_spec("socket_count = 2\n"), std::invalid_argument);
}

TEST(Format, RejectsMalformedLine) {
  EXPECT_THROW(parse_machine_spec("sockets 2\n"), std::invalid_argument);
  EXPECT_THROW(parse_machine_spec("sockets = two\n"), std::invalid_argument);
  EXPECT_THROW(parse_machine_spec("sockets = \n"), std::invalid_argument);
}

TEST(Format, ReportsLineNumber) {
  try {
    parse_machine_spec("name = x\nbogus = 1\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Format, LoadMissingFileThrows) {
  EXPECT_THROW(load_machine_spec("/nonexistent/machine.topo"), std::runtime_error);
}

TEST(Format, RoundTripsFarAndHeteroFields) {
  auto spec = presets::cxl_zen4_far();
  spec.e_freq_ghz = 2.1;
  spec.e_per_ccd = 1;
  const auto parsed = parse_machine_spec(serialize(spec));
  EXPECT_DOUBLE_EQ(parsed.far_gb, spec.far_gb);
  EXPECT_DOUBLE_EQ(parsed.far_bw_gbps, spec.far_bw_gbps);
  EXPECT_DOUBLE_EQ(parsed.far_lat_ns, spec.far_lat_ns);
  EXPECT_DOUBLE_EQ(parsed.e_freq_ghz, spec.e_freq_ghz);
  EXPECT_EQ(parsed.e_per_ccd, spec.e_per_ccd);
}

// Builder validation must name the offending MachineSpec key so a bad
// ILAN_TOPO override is diagnosable from the message alone.
TEST(Builder, DegenerateSpecsNameTheOffendingKey) {
  const auto expect_key = [](MachineSpec spec, const char* key) {
    try {
      (void)build(spec);
      FAIL() << "expected throw naming '" << key << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(key), std::string::npos) << e.what();
    }
  };
  auto spec = presets::tiny_2n8c();
  spec.sockets = 0;
  expect_key(spec, "sockets");
  spec = presets::tiny_2n8c();
  spec.cores_per_ccd = -3;
  expect_key(spec, "cores_per_ccd");
  spec = presets::tiny_2n8c();
  spec.node_bw_gbps = -5.0;
  expect_key(spec, "node_bw_gbps");
  spec = presets::tiny_2n8c();
  spec.node_mem_gb = 0.0;
  expect_key(spec, "node_mem_gb");
  spec = presets::tiny_2n8c();
  spec.far_bw_gbps = -1.0;
  expect_key(spec, "far_bw_gbps");
  // Far tier needs all three attributes: capacity/latency without bandwidth
  // is a half-specified tier, not a tierless machine.
  spec = presets::tiny_2n8c();
  spec.far_gb = 64.0;
  expect_key(spec, "far_bw_gbps");
  spec = presets::tiny_2n8c();
  spec.far_bw_gbps = 30.0;  // bandwidth without capacity/latency
  expect_key(spec, "far_gb");
  // E-cores must leave at least one P-core per CCD and carry a frequency.
  spec = presets::tiny_2n8c();
  spec.e_per_ccd = spec.cores_per_ccd;
  spec.e_freq_ghz = 2.0;
  expect_key(spec, "e_per_ccd");
  spec = presets::tiny_2n8c();
  spec.e_per_ccd = 1;
  expect_key(spec, "e_freq_ghz");
  spec = presets::tiny_2n8c();
  spec.e_freq_ghz = 2.0;  // frequency without any E-core
  expect_key(spec, "e_per_ccd");
}

TEST(Builder, RejectsMoreThan64Nodes) {
  // rt::NodeMask is a 64-bit word; the builder must refuse anything wider.
  auto spec = presets::tiny_2n8c();
  spec.sockets = 5;
  spec.nodes_per_socket = 13;  // 65 nodes
  EXPECT_THROW(build(spec), std::invalid_argument);
  spec.sockets = 4;
  spec.nodes_per_socket = 16;  // exactly 64: fine
  EXPECT_NO_THROW(build(spec));
}

TEST(Builder, FarTierLandsOnEveryNode) {
  const auto topo = build(presets::cxl_zen4_far());
  EXPECT_TRUE(topo.has_far_tier());
  for (const auto& node : topo.nodes()) {
    EXPECT_TRUE(node.far.present());
    EXPECT_GT(node.far.bytes, 0.0);
    EXPECT_GT(node.far.latency_ns, node.mem_latency_ns);
  }
  EXPECT_FALSE(build(presets::zen4_epyc9354_2s()).has_far_tier());
}

TEST(Builder, HeteroAssignsECoresPerCcd) {
  const auto spec = presets::hetero_zen4_pe();
  const auto topo = build(spec);
  for (const auto& ccd : topo.ccds()) {
    int e_cores = 0;
    for (const auto core_id : ccd.cores) {
      const auto& core = topo.core(core_id);
      if (core.base_freq_ghz == spec.e_freq_ghz) ++e_cores;
      else EXPECT_DOUBLE_EQ(core.base_freq_ghz, spec.core_freq_ghz);
    }
    EXPECT_EQ(e_cores, spec.e_per_ccd);
    // The E-cores are the trailing cores of the CCD, so the node primary
    // (front core) always runs at P-core frequency.
    EXPECT_DOUBLE_EQ(topo.core(ccd.cores.front()).base_freq_ghz, spec.core_freq_ghz);
  }
}

// --- topology registry ----------------------------------------------------

TEST(TopoRegistry, KnowsBuiltins) {
  const auto& reg = TopologyRegistry::instance();
  for (const char* name : {"zen4", "tiny", "small", "quad", "cxl", "hetero"}) {
    EXPECT_TRUE(reg.contains(name)) << name;
    EXPECT_FALSE(reg.description(name).empty()) << name;
    EXPECT_NO_THROW((void)build(reg.make(name))) << name;
  }
}

TEST(TopoRegistry, ZenSpecMatchesLegacyPreset) {
  // The spec-driven default must be the hard-coded preset, field for field
  // (serialize covers every MachineSpec field).
  EXPECT_EQ(serialize(make_machine_spec("zen4")),
            serialize(presets::zen4_epyc9354_2s()));
}

TEST(TopoRegistry, ParsesSpecGrammar) {
  const auto spec = parse_topo_spec("quad:sockets=4,cores=256");
  EXPECT_EQ(spec.name, "quad");
  ASSERT_EQ(spec.options.size(), 2u);
  EXPECT_EQ(spec.options[0].key, "sockets");
  EXPECT_EQ(spec.options[0].value, "4");
  EXPECT_EQ(spec.to_string(), "quad:sockets=4,cores=256");
  EXPECT_THROW((void)parse_topo_spec(""), std::invalid_argument);
  EXPECT_THROW((void)parse_topo_spec("zen4:freq"), std::invalid_argument);
  EXPECT_THROW((void)parse_topo_spec("zen4:a=1,a=2"), std::invalid_argument);
}

TEST(TopoRegistry, OptionsOverrideBase) {
  const auto ms = make_machine_spec("zen4:core_freq=2.5,node_bw=100");
  EXPECT_DOUBLE_EQ(ms.core_freq_ghz, 2.5);
  EXPECT_DOUBLE_EQ(ms.node_bw_gbps, 100.0);
  EXPECT_EQ(ms.sockets, 2);  // untouched structure stays zen4

  // Structure keys are machine totals, re-derived into per-level counts.
  const auto quad = make_machine_spec("quad:sockets=2,nodes=8,ccds=16,cores=128");
  EXPECT_EQ(quad.sockets, 2);
  EXPECT_EQ(quad.nodes_per_socket, 4);
  EXPECT_EQ(quad.ccds_per_node, 2);
  EXPECT_EQ(quad.cores_per_ccd, 8);
}

TEST(TopoRegistry, ErrorsNameOffenderAndListTopologies) {
  const auto expect_contains = [](const char* text, std::vector<const char*> needles) {
    try {
      (void)make_machine_spec(text);
      FAIL() << "expected throw for '" << text << "'";
    } catch (const std::invalid_argument& e) {
      for (const char* n : needles) {
        EXPECT_NE(std::string(e.what()).find(n), std::string::npos)
            << "'" << e.what() << "' should contain '" << n << "'";
      }
    }
  };
  expect_contains("nope", {"nope", "registered topologies", "zen4"});
  expect_contains("zen4:bogus=1", {"bogus", "registered"});
  expect_contains("zen4:cores=banana", {"cores", "banana"});
  // Structure totals must divide: 10 nodes over 4 sockets is not a machine.
  expect_contains("quad:nodes=10", {"nodes", "divisible"});
  // Semantically invalid overrides surface the builder's key-naming error.
  expect_contains("zen4:node_bw=-3", {"node_bw"});
}

TEST(TopoRegistry, ResolveIsIdempotentAndExplicit) {
  const auto& reg = TopologyRegistry::instance();
  for (const auto& name : reg.names()) {
    const std::string resolved = reg.resolve(name);
    EXPECT_EQ(reg.resolve(resolved), resolved) << name;
    // Resolved text is a complete spec: making it reproduces the machine.
    EXPECT_EQ(serialize(reg.make(resolved)), serialize(reg.make(name))) << name;
  }
  // Overrides survive resolution.
  EXPECT_NE(reg.resolve("zen4:core_freq=2.5").find("core_freq=2.5"),
            std::string::npos);
}

TEST(TopoRegistry, EnvKnobSelectsMachine) {
  {
    const ilan::obs::ScopedEnv unset("ILAN_TOPO");
    EXPECT_EQ(env_topo_spec(), "zen4");
    EXPECT_EQ(serialize(machine_spec_from_env()),
              serialize(presets::zen4_epyc9354_2s()));
  }
  {
    const ilan::obs::ScopedEnv set("ILAN_TOPO", "tiny");
    EXPECT_EQ(env_topo_spec(), "tiny");
    EXPECT_EQ(machine_spec_from_env().name, presets::tiny_2n8c().name);
  }
  {
    const ilan::obs::ScopedEnv bad("ILAN_TOPO", "not-a-machine");
    EXPECT_THROW((void)machine_spec_from_env(), std::invalid_argument);
  }
}

}  // namespace
