// The paper's contribution: Algorithm 1, PTT, node-mask selection, steal
// policy evaluation, hierarchical distribution, and the composed scheduler.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <thread>
#include <vector>

#include "core/backoff.hpp"
#include "core/config_selector.hpp"
#include "core/distributor.hpp"
#include "sched/schedulers.hpp"
#include "core/node_mask.hpp"
#include "core/steal_policy.hpp"
#include "rt/team.hpp"
#include "topo/presets.hpp"

namespace {

using namespace ilan;
using core::Algo1Input;
using core::algorithm1_step;

// --- Algorithm 1 ----------------------------------------------------------

TEST(Algorithm1, ConvergesWhenWithinOneGranularityStep) {
  const auto out = algorithm1_step({.best_threads = 64,
                                    .second_threads = 56,
                                    .cur_threads = 56,
                                    .k = 5,
                                    .g = 8});
  EXPECT_TRUE(out.search_finished);
  EXPECT_EQ(out.next_threads, 64);
}

TEST(Algorithm1, ExploresMidpointRoundedToGranularity) {
  const auto out = algorithm1_step({.best_threads = 64,
                                    .second_threads = 32,
                                    .cur_threads = 32,
                                    .k = 4,
                                    .g = 8});
  EXPECT_FALSE(out.search_finished);
  EXPECT_EQ(out.next_threads, 32 + ((32 / 2) / 8) * 8);  // 48
}

TEST(Algorithm1, MidpointAlreadyExecutedFinishesOnBest) {
  const auto out = algorithm1_step({.best_threads = 64,
                                    .second_threads = 40,
                                    .cur_threads = 48,  // == midpoint 40+8
                                    .k = 6,
                                    .g = 8});
  EXPECT_TRUE(out.search_finished);
  EXPECT_EQ(out.next_threads, 64);
}

TEST(Algorithm1, K3SpecialCaseProbesSmallest) {
  // Halving helped (32 beat 64): probe the smallest configuration.
  const auto out = algorithm1_step({.best_threads = 32,
                                    .second_threads = 64,
                                    .cur_threads = 32,
                                    .k = 3,
                                    .g = 8});
  EXPECT_FALSE(out.search_finished);
  EXPECT_EQ(out.next_threads, 8);
}

TEST(Algorithm1, K3NothingBelowGFinishes) {
  const auto out = algorithm1_step({.best_threads = 8,
                                    .second_threads = 16,
                                    .cur_threads = 8,
                                    .k = 3,
                                    .g = 8});
  EXPECT_TRUE(out.search_finished);
  EXPECT_EQ(out.next_threads, 8);
}

TEST(Algorithm1, K3OnlyTriggersWhenReducingHelped) {
  // 64 beat 32 at k=3: the general midpoint path applies instead.
  const auto out = algorithm1_step({.best_threads = 64,
                                    .second_threads = 32,
                                    .cur_threads = 32,
                                    .k = 3,
                                    .g = 8});
  EXPECT_FALSE(out.search_finished);
  EXPECT_EQ(out.next_threads, 48);
}

TEST(Algorithm1, RejectsBadInput) {
  EXPECT_THROW(algorithm1_step({.best_threads = 8, .second_threads = 16, .cur_threads = 8, .k = 3, .g = 0}),
               std::invalid_argument);
  EXPECT_THROW(algorithm1_step({.best_threads = 0, .second_threads = 16, .cur_threads = 8, .k = 3, .g = 8}),
               std::invalid_argument);
}

// Drive ThreadSearch through a synthetic PTT where 32 threads is optimal and
// verify the full binary-search trajectory 64 -> 32 -> 8 -> 48 -> 40 -> lock 32.
TEST(ThreadSearch, WalksTheBinarySearchPath) {
  core::PerfTraceTable ptt;
  const rt::LoopId loop = 9;
  // Synthetic landscape: seconds per execution at each width.
  const std::map<int, double> landscape = {{64, 1.00}, {56, 0.97}, {48, 0.95},
                                           {40, 0.92}, {32, 0.85}, {24, 0.93},
                                           {16, 1.10}, {8, 1.80}};
  core::ThreadSearch search(64, 8);
  std::vector<int> visited;
  for (int k = 1; k <= 10 && !search.finished(); ++k) {
    const int t = search.next_threads(k, ptt, loop);
    visited.push_back(t);
    rt::LoopExecStats stats;
    stats.loop_id = loop;
    stats.config.num_threads = t;
    stats.config.node_mask = rt::NodeMask::first_n(t / 8);
    stats.wall = sim::from_seconds(landscape.at(t));
    ptt.record(loop, stats);
  }
  EXPECT_TRUE(search.finished());
  EXPECT_EQ(search.current_threads(), 32);
  ASSERT_GE(visited.size(), 5u);
  EXPECT_EQ(visited[0], 64);
  EXPECT_EQ(visited[1], 32);
  EXPECT_EQ(visited[2], 8);   // k=3 special case
  EXPECT_EQ(visited[3], 48);  // midpoint of [32, 64]
  EXPECT_EQ(visited[4], 40);  // midpoint of [32, 48]
}

TEST(ThreadSearch, MonotoneLandscapeLocksMax) {
  core::PerfTraceTable ptt;
  const rt::LoopId loop = 3;
  core::ThreadSearch search(64, 8);
  for (int k = 1; k <= 10 && !search.finished(); ++k) {
    const int t = search.next_threads(k, ptt, loop);
    rt::LoopExecStats stats;
    stats.loop_id = loop;
    stats.config.num_threads = t;
    stats.wall = sim::from_seconds(64.0 / t);  // perfect scaling
    ptt.record(loop, stats);
  }
  EXPECT_TRUE(search.finished());
  EXPECT_EQ(search.current_threads(), 64);
}

TEST(ThreadSearch, SingleStepMachineFinishesImmediately) {
  core::PerfTraceTable ptt;
  core::ThreadSearch search(8, 8);
  EXPECT_EQ(search.next_threads(1, ptt, 1), 8);
  EXPECT_TRUE(search.finished());
}

// --- PTT -------------------------------------------------------------------

rt::LoopExecStats make_stats(rt::LoopId loop, int threads, double secs,
                             rt::StealPolicy pol = rt::StealPolicy::kStrict) {
  rt::LoopExecStats s;
  s.loop_id = loop;
  s.config.num_threads = threads;
  s.config.node_mask = rt::NodeMask::first_n(std::max(1, threads / 8));
  s.config.steal_policy = pol;
  s.wall = sim::from_seconds(secs);
  s.node_busy.assign(8, 0);
  s.node_iters.assign(8, 0);
  return s;
}

TEST(Ptt, FastestAndSecondFastest) {
  core::PerfTraceTable ptt;
  ptt.record(1, make_stats(1, 64, 1.0));
  ptt.record(1, make_stats(1, 32, 0.7));
  ptt.record(1, make_stats(1, 48, 0.8));
  EXPECT_EQ(ptt.fastest(1)->config.num_threads, 32);
  EXPECT_EQ(ptt.second_fastest(1)->config.num_threads, 48);
  EXPECT_EQ(ptt.executions(1), 3);
  EXPECT_EQ(ptt.entries(1).size(), 3u);
}

TEST(Ptt, ComparesByBestObservedTime) {
  core::PerfTraceTable ptt;
  ptt.record(1, make_stats(1, 64, 2.0));  // cold first execution
  ptt.record(1, make_stats(1, 64, 0.5));  // warm
  ptt.record(1, make_stats(1, 32, 0.7));
  EXPECT_EQ(ptt.fastest(1)->config.num_threads, 64);
}

TEST(Ptt, SamplesAccumulatePerConfig) {
  core::PerfTraceTable ptt;
  ptt.record(1, make_stats(1, 64, 1.0));
  ptt.record(1, make_stats(1, 64, 2.0));
  const auto* e = ptt.find(1, 64, rt::StealPolicy::kStrict);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->wall.count(), 2u);
  EXPECT_NEAR(e->wall.mean(), 1.5, 1e-12);
}

TEST(Ptt, FindDistinguishesPolicies) {
  core::PerfTraceTable ptt;
  ptt.record(1, make_stats(1, 64, 1.0, rt::StealPolicy::kStrict));
  ptt.record(1, make_stats(1, 64, 0.9, rt::StealPolicy::kFull));
  EXPECT_NE(ptt.find(1, 64, rt::StealPolicy::kStrict), nullptr);
  EXPECT_NE(ptt.find(1, 64, rt::StealPolicy::kFull), nullptr);
  EXPECT_EQ(ptt.find(1, 32, rt::StealPolicy::kFull), nullptr);
  EXPECT_EQ(ptt.find(2, 64, rt::StealPolicy::kStrict), nullptr);
}

TEST(Ptt, NodeRankingPrefersFasterNodes) {
  core::PerfTraceTable ptt;
  auto s = make_stats(1, 64, 1.0);
  for (int n = 0; n < 8; ++n) {
    s.node_iters[static_cast<std::size_t>(n)] = 100;
    // Node 5 is fastest per iteration, node 0 slowest.
    s.node_busy[static_cast<std::size_t>(n)] = sim::from_ms(n == 5 ? 1.0 : 2.0 + n);
  }
  ptt.record(1, s);
  const auto ranked = ptt.nodes_ranked(1, 8);
  EXPECT_EQ(ranked.front(), topo::NodeId{5});
  EXPECT_EQ(ranked.back(), topo::NodeId{7});
}

TEST(Ptt, UnknownLoopRanksById) {
  core::PerfTraceTable ptt;
  const auto ranked = ptt.nodes_ranked(99, 4);
  ASSERT_EQ(ranked.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(ranked[static_cast<std::size_t>(i)], topo::NodeId{i});
  EXPECT_EQ(ptt.fastest(99), nullptr);
  EXPECT_EQ(ptt.second_fastest(99), nullptr);
}

// --- Node mask --------------------------------------------------------------

TEST(NodeMaskSelect, FullWidthIsAllNodes) {
  const auto topo = topo::build(topo::presets::zen4_epyc9354_2s());
  core::PerfTraceTable ptt;
  EXPECT_EQ(core::select_node_mask(topo, ptt, 1, 64, 8), rt::NodeMask::all(8));
}

TEST(NodeMaskSelect, SeedsOnFastestNodeAndFillsSameSocket) {
  const auto topo = topo::build(topo::presets::zen4_epyc9354_2s());
  core::PerfTraceTable ptt;
  auto s = make_stats(1, 64, 1.0);
  for (int n = 0; n < 8; ++n) {
    s.node_iters[static_cast<std::size_t>(n)] = 100;
    s.node_busy[static_cast<std::size_t>(n)] = sim::from_ms(n == 6 ? 1.0 : 3.0);
  }
  ptt.record(1, s);
  const auto mask = core::select_node_mask(topo, ptt, 1, 24, 8);
  EXPECT_EQ(mask.count(), 3);
  EXPECT_TRUE(mask.test(topo::NodeId{6}));
  // Fill stays on node 6's socket (nodes 4-7).
  for (const auto n : mask.to_nodes()) {
    EXPECT_TRUE(topo.same_socket(n, topo::NodeId{6}));
  }
}

TEST(NodeMaskSelect, ColdStartIsDeterministic) {
  const auto topo = topo::build(topo::presets::zen4_epyc9354_2s());
  core::PerfTraceTable ptt;
  const auto mask = core::select_node_mask(topo, ptt, 1, 16, 8);
  EXPECT_EQ(mask.count(), 2);
  EXPECT_TRUE(mask.test(topo::NodeId{0}));
  EXPECT_TRUE(mask.test(topo::NodeId{1}));
}

TEST(NodeMaskSelect, RoundsThreadsUpToNodes) {
  const auto topo = topo::build(topo::presets::zen4_epyc9354_2s());
  core::PerfTraceTable ptt;
  EXPECT_EQ(core::select_node_mask(topo, ptt, 1, 9, 8).count(), 2);
  EXPECT_EQ(core::select_node_mask(topo, ptt, 1, 8, 8).count(), 1);
}

// --- Steal policy ------------------------------------------------------------

TEST(StealPolicy, StrictDuringSearch) {
  core::StealPolicyEvaluator eval;
  core::PerfTraceTable ptt;
  EXPECT_EQ(eval.next_policy(false, 64, ptt, 1), rt::StealPolicy::kStrict);
  EXPECT_EQ(eval.next_policy(false, 64, ptt, 1), rt::StealPolicy::kStrict);
  EXPECT_FALSE(eval.decided());
}

TEST(StealPolicy, TrialsFullOnceThenKeepsWinner) {
  core::StealPolicyEvaluator eval;
  core::PerfTraceTable ptt;
  ptt.record(1, make_stats(1, 64, 1.0, rt::StealPolicy::kStrict));
  // Search finished: first call trials full.
  EXPECT_EQ(eval.next_policy(true, 64, ptt, 1), rt::StealPolicy::kFull);
  // The full trial was slower.
  ptt.record(1, make_stats(1, 64, 1.4, rt::StealPolicy::kFull));
  EXPECT_EQ(eval.next_policy(true, 64, ptt, 1), rt::StealPolicy::kStrict);
  EXPECT_TRUE(eval.decided());
  EXPECT_EQ(eval.next_policy(true, 64, ptt, 1), rt::StealPolicy::kStrict);
}

TEST(StealPolicy, KeepsFullWhenItWins) {
  core::StealPolicyEvaluator eval;
  core::PerfTraceTable ptt;
  ptt.record(1, make_stats(1, 64, 1.0, rt::StealPolicy::kStrict));
  eval.next_policy(true, 64, ptt, 1);
  ptt.record(1, make_stats(1, 64, 0.8, rt::StealPolicy::kFull));
  EXPECT_EQ(eval.next_policy(true, 64, ptt, 1), rt::StealPolicy::kFull);
  EXPECT_EQ(eval.decision(), rt::StealPolicy::kFull);
}

// --- Distributor ---------------------------------------------------------------

rt::MachineParams tiny_params(std::uint64_t seed) {
  rt::MachineParams p;
  p.spec = topo::presets::tiny_2n8c();
  p.noise.enabled = false;
  p.seed = seed;
  return p;
}

TEST(Distributor, BlockMapsToNodePrimariesWithStrictHead) {
  rt::Machine machine(tiny_params(1));
  sched::IlanScheduler sched;  // any scheduler; we call the free function
  rt::Team team(machine, sched);

  rt::TaskloopSpec spec;
  spec.loop_id = 5;
  spec.iterations = 160;
  spec.grainsize = 10;  // 16 tasks -> 8 per node
  spec.demand = [](std::int64_t, std::int64_t) { return rt::TaskDemand{}; };

  rt::LoopConfig cfg;
  cfg.num_threads = 8;
  cfg.node_mask = rt::NodeMask::all(2);
  cfg.steal_policy = rt::StealPolicy::kFull;

  core::DistributionOptions opts;
  opts.stealable_fraction = 0.25;
  sim::SimTime cost = 0;
  const auto n = core::distribute_hierarchical(spec, cfg, team, opts, cost);
  EXPECT_EQ(n, 16u);
  EXPECT_GT(cost, 0);

  // Tasks live only on node primaries (workers 0 and 4 in tiny_2n8c).
  EXPECT_EQ(team.worker(0).deque.size(), 8u);
  EXPECT_EQ(team.worker(4).deque.size(), 8u);
  for (const int w : {1, 2, 3, 5, 6, 7}) {
    EXPECT_TRUE(team.worker(w).deque.empty());
  }

  // Node 0 owns the first half of the iteration space in order; 6 strict
  // head tasks, 2 stealable tail tasks (25% of 8).
  int strict = 0;
  std::int64_t expect = 0;
  while (auto t = team.worker(0).deque.pop_front()) {
    EXPECT_EQ(t->begin, expect);
    expect = t->end;
    EXPECT_EQ(t->home_node, topo::NodeId{0});
    if (t->numa_strict) ++strict;
  }
  EXPECT_EQ(expect, 80);
  EXPECT_EQ(strict, 6);
  team.worker(4).deque.clear();
}

TEST(Distributor, StrictPolicyMarksEverythingStrict) {
  rt::Machine machine(tiny_params(2));
  sched::IlanScheduler sched;
  rt::Team team(machine, sched);
  rt::TaskloopSpec spec;
  spec.loop_id = 5;
  spec.iterations = 64;
  spec.demand = [](std::int64_t, std::int64_t) { return rt::TaskDemand{}; };
  rt::LoopConfig cfg;
  cfg.num_threads = 8;
  cfg.node_mask = rt::NodeMask::all(2);
  cfg.steal_policy = rt::StealPolicy::kStrict;
  sim::SimTime cost = 0;
  core::distribute_hierarchical(spec, cfg, team, {}, cost);
  for (const int w : {0, 4}) {
    while (auto t = team.worker(w).deque.pop_front()) {
      EXPECT_TRUE(t->numa_strict);
    }
  }
}

// --- IlanScheduler end-to-end -----------------------------------------------

TEST(IlanScheduler, ExploresThenLocksOnTinyMachine) {
  rt::Machine machine(tiny_params(3));
  sched::IlanScheduler sched;
  rt::Team team(machine, sched);

  rt::TaskloopSpec spec;
  spec.loop_id = 77;
  spec.name = "loop";
  spec.iterations = 256;
  spec.demand = [](std::int64_t b, std::int64_t e) {
    rt::TaskDemand d;
    d.cpu_cycles = 2e5 * static_cast<double>(e - b);
    return d;
  };

  for (int i = 0; i < 10; ++i) team.run_taskloop(spec);
  EXPECT_TRUE(sched.search_finished(77));
  EXPECT_EQ(sched.executions(77), 10);
  // Compute-bound loop on a 2-node machine: must lock the full machine.
  EXPECT_EQ(team.history().back().config.num_threads, 8);
  // Exploration visited the half-machine configuration.
  EXPECT_NE(sched.ptt().find(77, 4, rt::StealPolicy::kStrict), nullptr);
}

TEST(IlanScheduler, EveryIterationRunsExactlyOnceDuringExploration) {
  rt::Machine machine(tiny_params(4));
  sched::IlanScheduler sched;
  rt::Team team(machine, sched);
  auto seen = std::make_shared<std::map<std::int64_t, int>>();
  rt::TaskloopSpec spec;
  spec.loop_id = 1;
  spec.iterations = 300;
  spec.demand = [seen](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) (*seen)[i] += 1;
    rt::TaskDemand d;
    d.cpu_cycles = 1e5 * static_cast<double>(e - b);
    return d;
  };
  const int reps = 8;
  for (int i = 0; i < reps; ++i) team.run_taskloop(spec);
  EXPECT_EQ(seen->size(), 300u);
  for (const auto& [i, n] : *seen) EXPECT_EQ(n, reps);
}

TEST(IlanScheduler, NoMoldabilityKeepsAllThreads) {
  rt::Machine machine(tiny_params(5));
  core::IlanParams params;
  params.moldability = false;
  sched::IlanScheduler sched(params);
  rt::Team team(machine, sched);
  rt::TaskloopSpec spec;
  spec.loop_id = 2;
  spec.iterations = 128;
  spec.demand = [](std::int64_t b, std::int64_t e) {
    rt::TaskDemand d;
    d.cpu_cycles = 1e5 * static_cast<double>(e - b);
    return d;
  };
  for (int i = 0; i < 5; ++i) team.run_taskloop(spec);
  for (const auto& s : team.history()) {
    EXPECT_EQ(s.config.num_threads, 8);
  }
  EXPECT_EQ(sched.name(), "ilan-nomold");
}

TEST(IlanScheduler, ValidatesParams) {
  core::IlanParams p;
  p.stealable_fraction = 1.5;
  EXPECT_THROW(sched::IlanScheduler{p}, std::invalid_argument);
  p = {};
  p.granularity = -2;
  EXPECT_THROW(sched::IlanScheduler{p}, std::invalid_argument);
}

TEST(ManualScheduler, PinsTheRequestedConfig) {
  rt::Machine machine(tiny_params(6));
  rt::LoopConfig cfg;
  cfg.num_threads = 4;
  cfg.steal_policy = rt::StealPolicy::kStrict;
  sched::ManualScheduler sched(cfg);
  rt::Team team(machine, sched);
  rt::TaskloopSpec spec;
  spec.loop_id = 1;
  spec.iterations = 64;
  spec.demand = [](std::int64_t b, std::int64_t e) {
    rt::TaskDemand d;
    d.cpu_cycles = 1e5 * static_cast<double>(e - b);
    return d;
  };
  team.run_taskloop(spec);
  EXPECT_EQ(team.history().front().config.num_threads, 4);
  EXPECT_EQ(team.history().front().config.node_mask.count(), 1);
  EXPECT_EQ(team.history().front().steals_remote, 0);
}

// --- core::Backoff --------------------------------------------------------

TEST(Backoff, DelayIsAPureFunctionOfSeedAndAttempt) {
  const core::Backoff a(42, core::BackoffParams{});
  const core::Backoff b(42, core::BackoffParams{});
  for (int n = 1; n <= 12; ++n) {
    EXPECT_EQ(a.delay(n), b.delay(n)) << "attempt " << n;
    // Stateless: querying out of order or repeatedly changes nothing.
    EXPECT_EQ(a.delay(n), a.delay(n));
  }
  EXPECT_EQ(a.delay(5), a.delay(5));
  EXPECT_EQ(a.delay(1), b.delay(1));
}

TEST(Backoff, JitteredDelaysStayWithinTheConfiguredBand) {
  core::BackoffParams p;
  p.base = sim::from_us(100);
  p.multiplier = 2.0;
  p.cap = sim::from_ms(100);
  p.jitter = 0.5;
  const core::Backoff b(7, p);
  for (int n = 1; n <= 16; ++n) {
    const double nominal = std::min(
        static_cast<double>(p.base) * std::pow(2.0, n - 1),
        static_cast<double>(p.cap));
    const auto d = b.delay(n);
    EXPECT_GE(d, static_cast<sim::SimTime>(nominal * 0.5) - 1) << "attempt " << n;
    EXPECT_LE(d, static_cast<sim::SimTime>(nominal * 1.5) + 1) << "attempt " << n;
    EXPECT_GE(d, 1) << "attempt " << n;
  }
}

TEST(Backoff, CapBoundsTheExponentialGrowth) {
  core::BackoffParams p;
  p.base = sim::from_us(50);
  p.multiplier = 2.0;
  p.cap = sim::from_us(400);
  p.jitter = 0.0;  // deterministic magnitudes for exact comparison
  const core::Backoff b(1, p);
  EXPECT_EQ(b.delay(1), sim::from_us(50));
  EXPECT_EQ(b.delay(2), sim::from_us(100));
  EXPECT_EQ(b.delay(3), sim::from_us(200));
  EXPECT_EQ(b.delay(4), sim::from_us(400));
  EXPECT_EQ(b.delay(9), sim::from_us(400));  // capped forever after
}

TEST(Backoff, DifferentSeedsDesynchronizeRetries) {
  const core::Backoff a(1, core::BackoffParams{});
  const core::Backoff b(2, core::BackoffParams{});
  bool any_diff = false;
  for (int n = 1; n <= 8; ++n) any_diff = any_diff || a.delay(n) != b.delay(n);
  EXPECT_TRUE(any_diff) << "jitter ignored the seed";
}

TEST(Backoff, DelaysAreIdenticalAcrossConcurrentCallers) {
  // The harness retry path and the serving layer query Backoff from pool
  // workers; a pure function needs no synchronization to stay identical.
  const core::Backoff b(42, core::BackoffParams{});
  std::vector<sim::SimTime> expect;
  for (int n = 1; n <= 8; ++n) expect.push_back(b.delay(n));
  std::vector<std::vector<sim::SimTime>> got(4);
  std::vector<std::thread> pool;
  for (auto& out : got) {
    pool.emplace_back([&b, &out] {
      for (int n = 1; n <= 8; ++n) out.push_back(b.delay(n));
    });
  }
  for (auto& t : pool) t.join();
  for (const auto& out : got) EXPECT_EQ(out, expect);
}

TEST(Backoff, InvalidParamsThrow) {
  core::BackoffParams p;
  p.jitter = 1.0;
  EXPECT_THROW(core::Backoff(1, p), std::invalid_argument);
  p = core::BackoffParams{};
  p.multiplier = 0.5;
  EXPECT_THROW(core::Backoff(1, p), std::invalid_argument);
  p = core::BackoffParams{};
  p.base = -1;
  EXPECT_THROW(core::Backoff(1, p), std::invalid_argument);
}

}  // namespace
