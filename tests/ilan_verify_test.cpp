// ilan-verify unit tests: model extraction over fixture sources, one
// seeded defect per rule, allow() suppression with justification echo,
// and baseline filtering. Fixtures are tiny C++ snippets fed through
// analyze_sources, so each rule's detection is pinned end to end.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "ilan_verify/verify.hpp"

namespace {

using ilan::verify::analyze_sources;
using ilan::verify::build_model;
using ilan::verify::Finding;
using ilan::verify::finding_key;
using ilan::verify::Model;
using ilan::verify::Options;
using ilan::verify::Report;
using ilan::verify::SourceFile;

Options no_readme() {
  Options opts;
  opts.check_readme = false;
  return opts;
}

bool has_finding(const std::vector<Finding>& v, const std::string& rule,
                 const std::string& symbol_part) {
  return std::any_of(v.begin(), v.end(), [&](const Finding& f) {
    return f.rule == rule &&
           f.symbol.find(symbol_part) != std::string::npos;
  });
}

const Finding* find_finding(const std::vector<Finding>& v,
                            const std::string& rule,
                            const std::string& symbol_part) {
  for (const Finding& f : v) {
    if (f.rule == rule && f.symbol.find(symbol_part) != std::string::npos) {
      return &f;
    }
  }
  return nullptr;
}

const ilan::verify::Function* function_by_qualified(const Model& m,
                                                    const std::string& q) {
  for (const auto& fn : m.functions) {
    if (fn.qualified == q) return &fn;
  }
  return nullptr;
}

// ---- model extraction ----------------------------------------------------

TEST(IlanVerifyModel, ExtractsOutOfLineMembersAndCtorInitLists) {
  const char* src = R"cpp(
namespace ilan {
class Widget {
 public:
  Widget();
  int area() const;
 private:
  int w_, h_;
};
Widget::Widget() : w_(7), h_{2} { init(); }
int Widget::area() const { return helper(w_); }
int helper(int v) { return v * 2; }
void init() {}
}  // namespace ilan
)cpp";
  const Model m = build_model({{"src/x.cpp", src}});
  const ilan::verify::Function* ctor =
      function_by_qualified(m, "ilan::Widget::Widget");
  ASSERT_NE(ctor, nullptr);
  EXPECT_EQ(ctor->class_name, "Widget");
  ASSERT_EQ(ctor->calls.size(), 1u);  // init(); ctor-init list is skipped
  EXPECT_EQ(ctor->calls[0].name, "init");

  const ilan::verify::Function* area =
      function_by_qualified(m, "ilan::Widget::area");
  ASSERT_NE(area, nullptr);
  ASSERT_EQ(area->calls.size(), 1u);
  EXPECT_EQ(area->calls[0].name, "helper");
  ASSERT_EQ(m.classes.size(), 1u);
  EXPECT_EQ(m.classes[0].name, "Widget");
}

TEST(IlanVerifyModel, TrailingReturnTypesAndTemplatesParse) {
  const char* src = R"cpp(
template <typename T>
auto twice(T v) -> decltype(v + v) { return v + v; }
)cpp";
  const Model m = build_model({{"src/t.cpp", src}});
  ASSERT_EQ(m.functions.size(), 1u);
  EXPECT_EQ(m.functions[0].name, "twice");
}

TEST(IlanVerifyModel, RawStringsDoNotUnbalanceScopes) {
  const char* src =
      "namespace n {\n"
      "const char* j() { return R\"({\"a\":(1)})\"; }\n"
      "int after() { return 1; }\n"
      "}\n";
  const Model m = build_model({{"src/r.cpp", src}});
  ASSERT_EQ(m.functions.size(), 2u);
  EXPECT_EQ(m.functions[0].qualified, "n::j");
  EXPECT_EQ(m.functions[1].qualified, "n::after");
}

// ---- taint ---------------------------------------------------------------

const char* kTaintFixture = R"cpp(
namespace ilan::sim {
double host_now() {
  return steady_clock::now().time_since_epoch().count();
}
double shim() { return host_now(); }
class Engine {
 public:
  void commit_event(int tag) { last_ = shim(); }
 private:
  double last_ = 0;
};
}  // namespace ilan::sim
)cpp";

TEST(IlanVerifyTaint, SeedPropagatesThroughCallChainToSink) {
  const Report r = analyze_sources({{"src/sim/fx.cpp", kTaintFixture}}, no_readme());
  const Finding* f = find_finding(r.findings, "taint", "Engine::commit_event");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->file, "src/sim/fx.cpp");
  EXPECT_EQ(f->line, 4);  // the steady_clock line, where allow() would go
  ASSERT_EQ(f->path.size(), 3u);
  EXPECT_EQ(f->path[0], "ilan::sim::Engine::commit_event");
  EXPECT_EQ(f->path[1], "ilan::sim::shim");
  EXPECT_EQ(f->path[2], "ilan::sim::host_now");
}

TEST(IlanVerifyTaint, AllowWithJustificationSuppressesAndEchoesIntoJson) {
  // The annotation must sit on the seed line (the finding's anchor).
  std::string src = kTaintFixture;
  const std::string anchor = "count();";
  src.insert(src.find(anchor) + anchor.size(),
             "  // ilan-verify: allow(taint, \"fixture clock, never digested\")");
  const Report r = analyze_sources({{"src/sim/fx.cpp", src}}, no_readme());
  EXPECT_FALSE(has_finding(r.findings, "taint", "commit_event"));
  ASSERT_EQ(r.suppressed.size(), 1u);
  EXPECT_EQ(r.suppressed[0].justification, "fixture clock, never digested");

  std::ostringstream json;
  ilan::verify::write_json(json, r);
  EXPECT_NE(json.str().find("fixture clock, never digested"), std::string::npos);
  EXPECT_NE(json.str().find("\"suppressed\""), std::string::npos);
}

TEST(IlanVerifyTaint, AllowWithoutJustificationDoesNotSuppress) {
  std::string src = kTaintFixture;
  const std::string anchor = "count();";
  src.insert(src.find(anchor) + anchor.size(),
             "  // ilan-verify: allow(taint)");
  const Report r = analyze_sources({{"src/sim/fx.cpp", src}}, no_readme());
  EXPECT_TRUE(has_finding(r.findings, "taint", "commit_event"));
  EXPECT_TRUE(has_finding(r.findings, "allow-syntax", "taint"));
  EXPECT_TRUE(r.suppressed.empty());
}

TEST(IlanVerifyTaint, UnknownRuleInAllowIsReported) {
  const char* src = R"cpp(
// ilan-verify: allow(taintt, "typo should be caught")
int f() { return 1; }
)cpp";
  const Report r = analyze_sources({{"src/a.cpp", src}}, no_readme());
  EXPECT_TRUE(has_finding(r.findings, "allow-syntax", "taintt"));
}

// ---- observer discipline -------------------------------------------------

TEST(IlanVerifyObserver, CallbackReachingMutatorIsFlagged) {
  const char* src = R"cpp(
namespace ilan::rt {
class TaskObserver {};
}
namespace ilan::analysis {
class Auditor : public rt::TaskObserver {
 public:
  void on_task_start(int t) { note(t); }
 private:
  void note(int t) { eng_.schedule_at(t, 0); }
  int eng_ = 0;
};
}  // namespace ilan::analysis
)cpp";
  const Report r = analyze_sources({{"src/analysis/fx.cpp", src}}, no_readme());
  const Finding* f =
      find_finding(r.findings, "observer-mutation", "Auditor::on_task_start");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->line, 10);  // the schedule_at call site
  ASSERT_GE(f->path.size(), 3u);
  EXPECT_EQ(f->path.front(), "ilan::analysis::Auditor::on_task_start");
  EXPECT_EQ(f->path.back(), "schedule_at()");
}

TEST(IlanVerifyObserver, ReadOnlyCallbackIsClean) {
  const char* src = R"cpp(
namespace ilan::rt {
class TaskObserver {};
}
namespace ilan::analysis {
class Auditor : public rt::TaskObserver {
 public:
  void on_task_start(int t) { count_ += t; }
 private:
  int count_ = 0;
};
}  // namespace ilan::analysis
)cpp";
  const Report r = analyze_sources({{"src/analysis/fx.cpp", src}}, no_readme());
  EXPECT_FALSE(has_finding(r.findings, "observer-mutation", "Auditor"));
}

// ---- event tags ----------------------------------------------------------

TEST(IlanVerifyEventTags, UnhandledConstantIsFlagged) {
  const char* src = R"cpp(
namespace ilan::sim {
using EventTag = int;
inline constexpr EventTag kTagA = 1;
inline constexpr EventTag kTagB = 2;
inline const char* tag_name(EventTag t) {
  switch (t) {
    case kTagA: return "a";
  }
  return "?";
}
}  // namespace ilan::sim
)cpp";
  const Report r =
      analyze_sources({{"src/sim/event_tags.hpp", src}}, no_readme());
  EXPECT_TRUE(has_finding(r.findings, "event-tag", "kTagB"));
  EXPECT_FALSE(has_finding(r.findings, "event-tag", "kTagA"));
}

TEST(IlanVerifyEventTags, HandlersInOtherFilesCount) {
  const char* tags = R"cpp(
namespace ilan::sim {
using EventTag = int;
inline constexpr EventTag kTagA = 1;
}
)cpp";
  const char* selfcheck = R"cpp(
namespace ilan {
int describe(int t) {
  switch (t) {
    case sim::kTagA: return 1;
  }
  return 0;
}
}
)cpp";
  const Report r = analyze_sources(
      {{"src/sim/event_tags.hpp", tags}, {"bench/selfcheck.cpp", selfcheck}},
      no_readme());
  EXPECT_FALSE(has_finding(r.findings, "event-tag", "kTagA"));
}

// ---- knob drift ----------------------------------------------------------

TEST(IlanVerifyKnobs, UndocumentedDeadAndWeakParseAreFlagged) {
  const char* src = R"cpp(
namespace b {
int strict() { return obs::parse_env_int("ILAN_TEST_KNOB", 1, 0, 10); }
int weak() {
  const char* v = getenv("ILAN_WEAK");
  return v ? atoi(v) : 0;
}
}
)cpp";
  Options opts;
  opts.readme =
      "| `ILAN_WEAK` | 0 | weakly parsed |\n"
      "| `ILAN_DEAD` | 1 | documented but never read |\n";
  const Report r = analyze_sources({{"bench/fx.cpp", src}}, opts);
  EXPECT_TRUE(has_finding(r.findings, "knob-drift", "ILAN_TEST_KNOB"));
  const Finding* dead = find_finding(r.findings, "knob-drift", "ILAN_DEAD");
  ASSERT_NE(dead, nullptr);
  EXPECT_EQ(dead->file, "README.md");
  EXPECT_EQ(dead->line, 2);
  const Finding* weak = find_finding(r.findings, "knob-drift", "ILAN_WEAK");
  ASSERT_NE(weak, nullptr);
  EXPECT_NE(weak->message.find("atoi"), std::string::npos);
}

TEST(IlanVerifyKnobs, ShellReadsExemptDocumentedKnobs) {
  Options opts;
  opts.readme = "| `ILAN_SHELL_ONLY` | off | gate toggle |\n";
  opts.shell_knob_reads = {"ILAN_SHELL_ONLY"};
  const Report r = analyze_sources({{"src/empty.cpp", "namespace e {}\n"}}, opts);
  EXPECT_FALSE(has_finding(r.findings, "knob-drift", "ILAN_SHELL_ONLY"));
}

TEST(IlanVerifyKnobs, ScanKnobMentionsFindsTokensWithLines) {
  const auto mentions = ilan::verify::scan_knob_mentions(
      "line one\nexport ILAN_FOO=1\nILAN_BAR ILAN_FOO\n");
  ASSERT_EQ(mentions.size(), 2u);
  EXPECT_EQ(mentions.at("ILAN_FOO"), 2);
  EXPECT_EQ(mentions.at("ILAN_BAR"), 3);
}

// ---- metric grammar ------------------------------------------------------

TEST(IlanVerifyMetrics, GrammarAndKindConflictsAreFlagged) {
  const char* src = R"cpp(
namespace b {
void wire(Registry& reg) {
  reg.counter("rt.loops");
  reg.counter("BadName");
  reg.gauge("rt.loops");
  reg.histogram(prefix + ".ok_fragment");
}
}
)cpp";
  const Report r = analyze_sources({{"src/obs/fx.cpp", src}}, no_readme());
  EXPECT_TRUE(has_finding(r.findings, "metric-grammar", "BadName"));
  const Finding* conflict =
      find_finding(r.findings, "metric-grammar", "rt.loops");
  ASSERT_NE(conflict, nullptr);
  EXPECT_NE(conflict->message.find("conflicting kinds"), std::string::npos);
  EXPECT_FALSE(has_finding(r.findings, "metric-grammar", ".ok_fragment"));
}

TEST(IlanVerifyMetrics, SingleSegmentNamesAreRejected) {
  const char* src = R"cpp(
namespace b {
void wire(Registry& reg) { reg.counter("loops"); }
}
)cpp";
  const Report r = analyze_sources({{"src/obs/fx.cpp", src}}, no_readme());
  EXPECT_TRUE(has_finding(r.findings, "metric-grammar", "loops"));
}

// ---- baseline ------------------------------------------------------------

TEST(IlanVerifyBaseline, BaselinedFindingsDoNotFailTheGate) {
  const Report first =
      analyze_sources({{"src/sim/fx.cpp", kTaintFixture}}, no_readme());
  ASSERT_EQ(first.findings.size(), 1u);

  Options opts = no_readme();
  opts.baseline = {finding_key(first.findings[0])};
  const Report second =
      analyze_sources({{"src/sim/fx.cpp", kTaintFixture}}, opts);
  EXPECT_TRUE(second.findings.empty());
  ASSERT_EQ(second.baselined.size(), 1u);
  EXPECT_EQ(second.baselined[0].symbol, first.findings[0].symbol);
}

TEST(IlanVerifyBaseline, ParserSkipsCommentsBlanksAndCrLf) {
  const auto keys = ilan::verify::parse_baseline(
      "# comment\n\nrule\tfile\tsymbol\r\nother\tf\ts  \n");
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_TRUE(keys.count("rule\tfile\tsymbol"));
  EXPECT_TRUE(keys.count("other\tf\ts"));
}

TEST(IlanVerifyRules, TableNamesEveryEmittedRule) {
  std::vector<std::string> names;
  for (const auto& r : ilan::verify::rules()) names.push_back(r.name);
  for (const char* expected :
       {"taint", "observer-mutation", "event-tag", "knob-drift",
        "metric-grammar", "allow-syntax"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

}  // namespace
