// The Section 3.5 extensions: energy objective, counter-guided selection,
// chunked remote stealing, Chrome-trace export.
#include <gtest/gtest.h>

#include "sched/schedulers.hpp"
#include "kernels/kernels.hpp"
#include "rt/team.hpp"
#include "topo/presets.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/energy.hpp"

namespace {

using namespace ilan;

rt::MachineParams tiny_params(std::uint64_t seed) {
  rt::MachineParams p;
  p.spec = topo::presets::tiny_2n8c();
  p.noise.enabled = false;
  p.seed = seed;
  return p;
}

rt::LoopExecStats sample_stats() {
  rt::LoopExecStats s;
  s.config.num_threads = 8;
  s.wall = sim::from_ms(10.0);
  s.worker_busy.assign(8, sim::from_ms(8.0));
  s.bytes_moved = 1e9;
  s.remote_bytes_moved = 4e8;
  return s;
}

TEST(Energy, BreakdownIsConsistent) {
  const auto e = trace::estimate_energy(sample_stats(), /*total_nodes=*/2);
  // 64 ms of busy time at 3.6 W.
  EXPECT_NEAR(e.core_active_j, 0.064 * 3.6, 1e-9);
  // 80 ms of team time minus 64 ms busy = 16 ms idle at 0.7 W.
  EXPECT_NEAR(e.core_idle_j, 0.016 * 0.7, 1e-9);
  // 10 ms x 2 nodes x 5.5 W.
  EXPECT_NEAR(e.uncore_j, 0.010 * 2 * 5.5, 1e-9);
  // 1 GB at 65 pJ/B + 0.4 GB extra at 25 pJ/B.
  EXPECT_NEAR(e.dram_j, 0.065 + 0.01, 1e-9);
  EXPECT_NEAR(e.total_j(), e.core_active_j + e.core_idle_j + e.uncore_j + e.dram_j,
              1e-12);
  EXPECT_NEAR(e.edp_js, e.total_j() * 0.010, 1e-9);
}

TEST(Energy, ObjectiveValues) {
  const auto s = sample_stats();
  EXPECT_NEAR(trace::objective_value(trace::Objective::kTime, s, 2), 0.010, 1e-12);
  EXPECT_GT(trace::objective_value(trace::Objective::kEnergy, s, 2), 0.0);
  EXPECT_NEAR(trace::objective_value(trace::Objective::kEdp, s, 2),
              trace::objective_value(trace::Objective::kEnergy, s, 2) * 0.010, 1e-9);
  EXPECT_THROW(trace::estimate_energy(s, 0), std::invalid_argument);
  EXPECT_STREQ(trace::to_string(trace::Objective::kEnergy), "energy");
}

TEST(Energy, MoreBytesCostMore) {
  auto a = sample_stats();
  auto b = sample_stats();
  b.bytes_moved *= 3;
  EXPECT_GT(trace::estimate_energy(b, 2).total_j(),
            trace::estimate_energy(a, 2).total_j());
}

TEST(PttObjective, RankingFollowsObjectiveNotWall) {
  core::PerfTraceTable ptt;
  rt::LoopExecStats fast_hot;  // faster but higher objective (e.g. energy)
  fast_hot.loop_id = 1;
  fast_hot.config.num_threads = 64;
  fast_hot.wall = sim::from_ms(1.0);
  rt::LoopExecStats slow_cool;
  slow_cool.loop_id = 1;
  slow_cool.config.num_threads = 32;
  slow_cool.wall = sim::from_ms(2.0);
  ptt.record(1, fast_hot, /*objective=*/10.0);
  ptt.record(1, slow_cool, /*objective=*/4.0);
  EXPECT_EQ(ptt.fastest(1)->config.num_threads, 32);
}

TEST(CounterGuided, LocksComputeBoundLoopAfterOneExecution) {
  rt::Machine machine(tiny_params(1));
  core::IlanParams p;
  p.counter_guided = true;
  sched::IlanScheduler sched(p);
  rt::Team team(machine, sched);

  rt::TaskloopSpec loop;
  loop.loop_id = 1;
  loop.iterations = 128;
  loop.demand = [](std::int64_t b, std::int64_t e) {
    rt::TaskDemand d;  // pure compute, no memory traffic
    d.cpu_cycles = 5e5 * static_cast<double>(e - b);
    return d;
  };
  team.run_taskloop(loop);
  EXPECT_TRUE(sched.counter_locked(1));
  for (int i = 0; i < 4; ++i) team.run_taskloop(loop);
  // Never explored below the full machine.
  for (const auto& s : team.history()) EXPECT_EQ(s.config.num_threads, 8);
  EXPECT_TRUE(sched.search_finished(1));
}

TEST(CounterGuided, MemoryBoundLoopStillExplores) {
  rt::Machine machine(tiny_params(2));
  const auto r = machine.regions().create("u", 1u << 30, mem::Placement::kBlock);
  core::IlanParams p;
  p.counter_guided = true;
  sched::IlanScheduler sched(p);
  rt::Team team(machine, sched);

  rt::TaskloopSpec loop;
  loop.loop_id = 1;
  loop.iterations = 128;
  loop.demand = [r](std::int64_t b, std::int64_t e) {
    rt::TaskDemand d;
    d.cpu_cycles = 1e3;
    const std::uint64_t slice = (1u << 30) / 128;
    d.accesses.push_back(mem::AccessDescriptor{
        r, static_cast<std::uint64_t>(b) * slice,
        static_cast<std::uint64_t>(e - b) * slice, mem::AccessKind::kRead});
    return d;
  };
  for (int i = 0; i < 3; ++i) team.run_taskloop(loop);
  EXPECT_FALSE(sched.counter_locked(1));
  // The second execution explored the half machine.
  EXPECT_EQ(team.history()[1].config.num_threads, 4);
}

TEST(ChunkedSteal, AmortizesRemoteStealRoundTrips) {
  // A loop whose first half (node 0's share) is 20x heavier than the
  // second: node 1 drains early and migrates node-0 tasks. With a larger
  // remote_steal_chunk the same number of tasks migrate in fewer remote
  // steal round trips (fewer kRemoteSteal charges than migrated tasks).
  const auto run = [](int chunk) {
    rt::Machine machine(tiny_params(3));
    rt::LoopConfig cfg;
    cfg.num_threads = 8;
    cfg.node_mask = rt::NodeMask::all(2);
    cfg.steal_policy = rt::StealPolicy::kFull;
    core::IlanParams p;
    p.stealable_fraction = 1.0;
    p.remote_steal_chunk = chunk;
    sched::ManualScheduler sched(cfg, p);
    rt::Team team(machine, sched);
    rt::TaskloopSpec spec;
    spec.loop_id = 1;
    spec.iterations = 256;
    spec.grainsize = 4;
    spec.demand = [](std::int64_t b, std::int64_t e) {
      rt::TaskDemand d;
      d.cpu_cycles = (b < 128 ? 2e6 : 1e5) * static_cast<double>(e - b);
      return d;
    };
    const auto& stats = team.run_taskloop(spec);
    return std::pair<std::int64_t, std::uint64_t>(
        stats.steals_remote,
        team.overhead().count(trace::OverheadComponent::kRemoteSteal));
  };
  const auto [migrated1, trips1] = run(1);
  const auto [migrated4, trips4] = run(4);
  EXPECT_GT(migrated1, 0);
  EXPECT_EQ(static_cast<std::uint64_t>(migrated1), trips1);  // one per trip
  EXPECT_GT(migrated4, 0);
  EXPECT_LT(trips4, static_cast<std::uint64_t>(migrated4));  // amortized
}

TEST(ChunkedSteal, ValidatesParameter) {
  core::IlanParams p;
  p.remote_steal_chunk = 0;
  EXPECT_THROW(sched::IlanScheduler{p}, std::invalid_argument);
}

TEST(ChromeTrace, WritesWellFormedJson) {
  trace::ChromeTraceWriter w;
  w.add_task({"loop[0,16)", 3, 0, sim::from_us(10), sim::from_us(25), false});
  w.add_task({"loop[16,32)", 5, 1, sim::from_us(12), sim::from_us(30), true});
  w.add_marker({"loop start", 0});
  EXPECT_EQ(w.num_events(), 3u);
  const auto json = w.to_json();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find(R"("ph":"X")"), std::string::npos);
  EXPECT_NE(json.find(R"("tid":3)"), std::string::npos);
  EXPECT_NE(json.find("remote-steal"), std::string::npos);
  EXPECT_NE(json.find(R"("ph":"i")"), std::string::npos);
  // Balanced brackets and escaping.
  trace::ChromeTraceWriter esc;
  esc.add_task({"we\"ird\\name", 0, 0, 0, 1, false});
  EXPECT_NE(esc.to_json().find(R"(we\"ird\\name)"), std::string::npos);
  w.clear();
  EXPECT_EQ(w.num_events(), 0u);
}

TEST(ChromeTrace, TeamRecordsTasksAndMarkers) {
  rt::Machine machine(tiny_params(4));
  sched::IlanScheduler sched;
  rt::Team team(machine, sched);
  trace::ChromeTraceWriter tracer;
  team.set_tracer(&tracer);
  rt::TaskloopSpec loop;
  loop.loop_id = 1;
  loop.name = "traced";
  loop.iterations = 64;
  loop.demand = [](std::int64_t b, std::int64_t e) {
    rt::TaskDemand d;
    d.cpu_cycles = 1e5 * static_cast<double>(e - b);
    return d;
  };
  team.run_taskloop(loop);
  const auto n_tasks = team.history().front().tasks;
  // One slice per task, the loop-boundary marker, and the chosen-config
  // instant on the control lane.
  EXPECT_EQ(tracer.num_events(), static_cast<std::size_t>(n_tasks) + 2u);
  EXPECT_NE(tracer.to_json().find("traced[0,"), std::string::npos);
  EXPECT_NE(tracer.to_json().find("traced: cfg"), std::string::npos);
}

}  // namespace
