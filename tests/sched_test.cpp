// Tests of the scheduler policy registry: spec parsing round-trips, resolve
// idempotence, the strict error contract (bad specs name the offender AND
// list the registered schedulers), facade-vs-registry spec parity, and the
// env-knob / spec-key precedence rule.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "obs/env.hpp"
#include "rt/team.hpp"
#include "sched/composed.hpp"
#include "sched/policies.hpp"
#include "sched/registry.hpp"
#include "sched/schedulers.hpp"
#include "topo/presets.hpp"

namespace {

using namespace ilan;

// Runs `fn`, expecting std::invalid_argument whose message contains every
// `needles` substring. Every registry diagnostic must also carry the
// registered-name list (the satellite error contract).
template <typename Fn>
void expect_spec_error(Fn&& fn, std::initializer_list<const char*> needles) {
  try {
    fn();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    for (const char* needle : needles) {
      EXPECT_NE(msg.find(needle), std::string::npos)
          << "message missing '" << needle << "': " << msg;
    }
  }
}

// --- parsing -----------------------------------------------------------------

TEST(SchedSpec, ParseRoundTripsThroughToString) {
  for (const char* text :
       {"ilan", "ilan:mold=off", "manual:threads=16,policy=full",
        "composed:config=fixed,dist=flat,steal=full,stealable=0.25"}) {
    const sched::SchedulerSpec spec = sched::parse_spec(text);
    EXPECT_EQ(spec.to_string(), text);
    // Parsing the serialization again yields the same structure.
    const sched::SchedulerSpec again = sched::parse_spec(spec.to_string());
    EXPECT_EQ(again.name, spec.name);
    ASSERT_EQ(again.options.size(), spec.options.size());
    for (std::size_t i = 0; i < spec.options.size(); ++i) {
      EXPECT_EQ(again.options[i].key, spec.options[i].key);
      EXPECT_EQ(again.options[i].value, spec.options[i].value);
    }
  }
}

TEST(SchedSpec, ParseRejectsMalformedSpecs) {
  EXPECT_THROW((void)sched::parse_spec(""), std::invalid_argument);
  EXPECT_THROW((void)sched::parse_spec(":mold=off"), std::invalid_argument);
  EXPECT_THROW((void)sched::parse_spec("ilan:mold"), std::invalid_argument);
  EXPECT_THROW((void)sched::parse_spec("ilan:=off"), std::invalid_argument);
  EXPECT_THROW((void)sched::parse_spec("ilan:mold=on,mold=off"),
               std::invalid_argument);
}

// --- the error contract ------------------------------------------------------

TEST(SchedRegistry, UnknownSchedulerNamesOffenderAndListsRegistered) {
  expect_spec_error([] { (void)sched::make_scheduler("bogus"); },
                    {"bogus", "unknown scheduler", "registered schedulers:",
                     "baseline", "composed", "ilan", "ilan-nomold", "manual",
                     "work-sharing"});
}

TEST(SchedRegistry, UnknownKeyNamesKeyAndListsRegistered) {
  expect_spec_error([] { (void)sched::make_scheduler("ilan:wat=1"); },
                    {"wat", "unknown key", "registered schedulers:"});
}

TEST(SchedRegistry, MalformedValueNamesKey) {
  expect_spec_error([] { (void)sched::make_scheduler("ilan:stealable=1.5"); },
                    {"stealable", "registered schedulers:"});
  expect_spec_error([] { (void)sched::make_scheduler("ilan:mold=maybe"); },
                    {"mold", "on/off", "maybe"});
  expect_spec_error([] { (void)sched::make_scheduler("ilan:granularity=abc"); },
                    {"granularity", "abc"});
  expect_spec_error([] { (void)sched::make_scheduler("ilan:objective=joules"); },
                    {"objective", "time/energy/edp"});
  expect_spec_error([] { (void)sched::make_scheduler("manual:policy=loose"); },
                    {"policy", "strict/full"});
}

TEST(SchedRegistry, BaselineAndWorkSharingAcceptNoOptions) {
  expect_spec_error([] { (void)sched::make_scheduler("baseline:threads=4"); },
                    {"baseline", "accepts no options", "threads"});
  expect_spec_error([] { (void)sched::make_scheduler("work-sharing:x=1"); },
                    {"work-sharing", "accepts no options"});
}

TEST(SchedRegistry, ComposedValidatesAxisValues) {
  expect_spec_error([] { (void)sched::make_scheduler("composed:config=magic"); },
                    {"config", "ptt-search/fixed/counter-only/oracle-best"});
  expect_spec_error(
      [] { (void)sched::make_scheduler("composed:dist=round-robin"); },
      {"dist",
       "hierarchical/flat/static-block/health-weighted/dep-aware/depth-aware"});
  expect_spec_error([] { (void)sched::make_scheduler("composed:steal=polite"); },
                    {"steal", "tiered/strict/full/rescue-only/random/none"});
  expect_spec_error([] { (void)sched::make_scheduler("composed:feedback=loud"); },
                    {"feedback", "ptt/none"});
}

// --- registry contents -------------------------------------------------------

TEST(SchedRegistry, BuiltInsAreRegisteredSorted) {
  const auto names = sched::SchedulerRegistry::instance().names();
  const std::vector<std::string> expected = {"baseline", "composed",     "ilan",
                                             "ilan-nomold", "manual", "work-sharing"};
  // Other tests may register extras; the built-ins must all be present and
  // the list sorted.
  for (const auto& n : expected) {
    EXPECT_TRUE(sched::SchedulerRegistry::instance().contains(n)) << n;
    EXPECT_FALSE(sched::SchedulerRegistry::instance().description(n).empty()) << n;
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(SchedRegistry, RegisterCustomScheduler) {
  auto& reg = sched::SchedulerRegistry::instance();
  reg.register_scheduler("test-custom", "unit-test scheduler",
                         [](const sched::SchedulerSpec&) {
                           return std::make_unique<sched::BaselineWsScheduler>();
                         });
  EXPECT_TRUE(reg.contains("test-custom"));
  const auto s = reg.make("test-custom");
  EXPECT_EQ(s->name(), "baseline-ws");
}

// --- resolve -----------------------------------------------------------------

TEST(SchedRegistry, ResolveSpellsEveryKnob) {
  const std::string r = sched::resolve_spec("ilan");
  EXPECT_EQ(r,
            "ilan:mold=on,counter=off,reactive=on,objective=time,granularity=0,"
            "stealable=0.2,chunk=1,staleness-factor=1.6,staleness-patience=2,"
            "max-reexplorations=4");
  // "ilan-nomold" and "ilan:mold=off" are the same scheduler.
  EXPECT_EQ(sched::resolve_spec("ilan-nomold"), sched::resolve_spec("ilan:mold=off"));
  EXPECT_EQ(sched::resolve_spec("baseline"), "baseline");
  EXPECT_EQ(sched::resolve_spec("work-sharing"), "work-sharing");
  // rt::LoopConfig defaults to the full steal policy.
  EXPECT_EQ(sched::resolve_spec("manual"),
            "manual:threads=0,policy=full,stealable=0.2,chunk=1");
}

TEST(SchedRegistry, ResolveIsIdempotent) {
  for (const char* spec :
       {"ilan", "ilan-nomold", "ilan:mold=off,stealable=0.35", "baseline",
        "work-sharing", "manual", "manual:threads=16,policy=full",
        "composed", "composed:config=fixed,dist=flat,steal=full,threads=8",
        "composed:config=counter-only,steal=rescue-only"}) {
    const std::string once = sched::resolve_spec(spec);
    EXPECT_EQ(sched::resolve_spec(once), once) << spec;
  }
}

TEST(SchedRegistry, ComposedCounterOnlyForcesCounterOn) {
  const std::string r = sched::resolve_spec("composed:config=counter-only");
  EXPECT_NE(r.find("config=counter-only"), std::string::npos) << r;
  EXPECT_NE(r.find("counter=on"), std::string::npos) << r;
}

TEST(SchedRegistry, ComposedDefaultsMirrorIlanPolicies) {
  const std::string r = sched::resolve_spec("composed");
  EXPECT_NE(r.find("config=ptt-search"), std::string::npos) << r;
  EXPECT_NE(r.find("dist=hierarchical"), std::string::npos) << r;
  EXPECT_NE(r.find("steal=tiered"), std::string::npos) << r;
  EXPECT_NE(r.find("feedback=ptt"), std::string::npos) << r;
}

// --- facade / registry parity ------------------------------------------------

TEST(SchedRegistry, FacadesAndRegistryAgreeOnSpecs) {
  EXPECT_EQ(sched::make_scheduler("ilan")->introspect().spec,
            sched::IlanScheduler().introspect().spec);
  EXPECT_EQ(sched::make_scheduler("baseline")->introspect().spec,
            sched::BaselineWsScheduler().introspect().spec);
  EXPECT_EQ(sched::make_scheduler("work-sharing")->introspect().spec,
            sched::WorkSharingScheduler().introspect().spec);
  EXPECT_EQ(sched::make_scheduler("manual")->introspect().spec,
            sched::ManualScheduler(rt::LoopConfig{}).introspect().spec);
}

TEST(SchedRegistry, SchedulerNamesMatchPreRefactorClasses) {
  EXPECT_EQ(sched::make_scheduler("ilan")->name(), "ilan");
  EXPECT_EQ(sched::make_scheduler("ilan-nomold")->name(), "ilan-nomold");
  EXPECT_EQ(sched::make_scheduler("ilan:mold=off")->name(), "ilan-nomold");
  EXPECT_EQ(sched::make_scheduler("baseline")->name(), "baseline-ws");
  EXPECT_EQ(sched::make_scheduler("work-sharing")->name(), "work-sharing");
  EXPECT_EQ(sched::make_scheduler("manual")->name(), "ilan-manual");
  EXPECT_EQ(sched::make_scheduler("composed")->name(), "composed");
}

// --- env-knob precedence -----------------------------------------------------

TEST(SchedRegistry, SpecKeysOverrideEnvKnobsOverrideDefaults) {
  const obs::ScopedEnv env("ILAN_STEALABLE_FRACTION", "0.4");
  // Env knob applies when the spec is silent...
  EXPECT_NE(sched::resolve_spec("ilan").find("stealable=0.4"), std::string::npos);
  // ...and the spec key wins when both are present.
  EXPECT_NE(sched::resolve_spec("ilan:stealable=0.1").find("stealable=0.1"),
            std::string::npos);
}

// --- introspection -----------------------------------------------------------

TEST(SchedRegistry, IntrospectReportsResolvedSpec) {
  const auto s = sched::make_scheduler("composed:dist=flat,steal=random");
  const rt::SchedulerInfo info = s->introspect();
  EXPECT_EQ(info.spec, sched::resolve_spec("composed:dist=flat,steal=random"));
  EXPECT_EQ(info.total_reexplorations, 0);
}

TEST(SchedRegistry, DepAwareDistIsRegistered) {
  const auto s = sched::make_scheduler("composed:dist=dep-aware");
  EXPECT_EQ(s->name(), "composed");
  EXPECT_NE(sched::resolve_spec("composed:dist=dep-aware").find("dist=dep-aware"),
            std::string::npos);
}

TEST(SchedRegistry, DepthAwareDistIsRegistered) {
  const auto s = sched::make_scheduler("composed:dist=depth-aware");
  EXPECT_EQ(s->name(), "composed");
  EXPECT_NE(
      sched::resolve_spec("composed:dist=depth-aware").find("dist=depth-aware"),
      std::string::npos);
}

// --- narrowed-carve dist x mask matrix ---------------------------------------
//
// Every registered DistributionPolicy must place all of a taskloop's chunks
// on workers that are actually active under the loop's config — never on the
// parked primary of a trailing mask node. Stealing is disabled (NoSteal) so
// a single stranded chunk deadlocks the loop instead of being silently
// rescued: completion alone proves the placement was correct.

rt::MachineParams carve_params(std::uint64_t seed) {
  rt::MachineParams p;
  p.spec = topo::presets::tiny_2n8c();
  p.noise.enabled = false;
  p.seed = seed;
  return p;
}

rt::TaskloopSpec carve_loop(std::int64_t iters,
                            std::shared_ptr<std::map<std::int64_t, int>> seen) {
  rt::TaskloopSpec spec;
  spec.loop_id = 7;
  spec.name = "carve-matrix";
  spec.iterations = iters;
  spec.demand = [seen](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) (*seen)[i] += 1;
    rt::TaskDemand d;
    d.cpu_cycles = 1e5 * static_cast<double>(e - b);
    return d;
  };
  return spec;
}

std::unique_ptr<sched::DistributionPolicy> make_dist(const std::string& name) {
  if (name == "hierarchical") {
    return std::make_unique<sched::HierarchicalDist>(
        sched::HierarchicalDist::Health::kReactive);
  }
  if (name == "flat") return std::make_unique<sched::FlatDist>();
  if (name == "static-block") return std::make_unique<sched::StaticBlockDist>();
  if (name == "health-weighted") {
    return std::make_unique<sched::HierarchicalDist>(
        sched::HierarchicalDist::Health::kForced);
  }
  if (name == "dep-aware") return std::make_unique<sched::DepAwareDist>();
  if (name == "depth-aware") return std::make_unique<sched::DepthAwareDist>();
  throw std::invalid_argument("make_dist: " + name);
}

TEST(SchedDist, NarrowedCarveMatrixExecutesEveryIteration) {
  // tiny_2n8c: 2 nodes x 4 cores. Case A carves the loop onto node 1 only
  // (all four threads live there); case B gives a two-node mask but only
  // four threads, so node 1's workers are all parked — the narrowed carve
  // that stranded strict-head chunks before the distributor fix.
  struct Carve {
    const char* label;
    rt::NodeMask mask;
  };
  const Carve carves[] = {
      {"single-node", rt::NodeMask(0b10)},
      {"two-node-narrowed", rt::NodeMask(0b11)},
  };
  const char* dists[] = {"hierarchical",    "flat",      "static-block",
                         "health-weighted", "dep-aware", "depth-aware"};
  std::uint64_t seed = 100;
  for (const char* dist : dists) {
    for (const Carve& carve : carves) {
      SCOPED_TRACE(std::string(dist) + " / " + carve.label);
      rt::LoopConfig cfg;
      cfg.num_threads = 4;
      cfg.node_mask = carve.mask;
      cfg.steal_policy = rt::StealPolicy::kStrict;
      sched::ComposedScheduler sched(
          "composed", "composed:test-carve", core::IlanParams{},
          std::make_unique<sched::FixedConfig>(cfg), make_dist(dist),
          std::make_unique<sched::NoSteal>(),
          std::make_unique<sched::NoFeedback>());
      rt::Machine machine(carve_params(seed++));
      rt::Team team(machine, sched);
      auto seen = std::make_shared<std::map<std::int64_t, int>>();
      const auto& stats = team.run_taskloop(carve_loop(96, seen));
      EXPECT_EQ(stats.iterations, 96);
      EXPECT_EQ(seen->size(), 96u);
      for (const auto& [i, n] : *seen) EXPECT_EQ(n, 1) << "iteration " << i;
    }
  }
}

// --- depth-aware distribution on a deep topology -----------------------------

TEST(SchedDist, DepthAwareSpreadsAcrossCcdsOnQuad) {
  // quad_4s16n256c: 4 sockets x 4 nodes x 2 CCDs x 8 cores — 16 NUMA nodes,
  // 32 CCDs. The depth-aware map must put one contiguous sub-run on each
  // CCD's first worker instead of piling both CCDs' tasks onto the node
  // primary the way the node-level block map does.
  rt::MachineParams p;
  p.spec = topo::presets::quad_4s16n256c();
  p.noise.enabled = false;
  p.seed = 9;
  rt::Machine machine(p);
  sched::IlanScheduler placeholder;
  rt::Team team(machine, placeholder);
  for (int w = 0; w < team.num_workers(); ++w) team.worker(w).active = true;

  rt::TaskloopSpec spec;
  spec.loop_id = 11;
  spec.iterations = 320;
  spec.grainsize = 10;  // 32 tasks -> 2 per node -> 1 per CCD
  spec.demand = [](std::int64_t, std::int64_t) { return rt::TaskDemand{}; };
  rt::LoopConfig cfg;
  cfg.num_threads = 256;
  cfg.node_mask = rt::NodeMask::all(16);
  cfg.steal_policy = rt::StealPolicy::kFull;

  sched::DepthAwareDist dist;
  sched::SchedState state;
  sim::SimTime cost = 0;
  EXPECT_EQ(dist.distribute(spec, cfg, team, state, cost), 32u);
  EXPECT_GT(cost, 0);

  // Every CCD's first worker (cores 16n and 16n+8) holds exactly one task
  // covering its slice of the iteration space; nobody else holds anything.
  std::int64_t expect_begin = 0;
  for (int w = 0; w < team.num_workers(); ++w) {
    auto& dq = team.worker(w).deque;
    if (w % 8 != 0) {
      EXPECT_TRUE(dq.empty()) << "worker " << w;
      continue;
    }
    ASSERT_EQ(dq.size(), 1u) << "worker " << w;
    const auto t = dq.pop_front();
    EXPECT_EQ(t->begin, expect_begin);
    EXPECT_EQ(t->end, expect_begin + 10);
    EXPECT_EQ(t->home_node, team.worker(w).node);
    expect_begin = t->end;
  }
  EXPECT_EQ(expect_begin, 320);
}

}  // namespace
