// Correctness analysis layer: vector clocks, the happens-before race
// auditor (clean runs + seeded fault injection for every report kind),
// determinism trace comparison, and the NodeMask / StealPolicy edge cases
// the invariant checks are driven through.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/determinism.hpp"
#include "analysis/race_auditor.hpp"
#include "analysis/vector_clock.hpp"
#include "sched/composed.hpp"
#include "sched/policies.hpp"
#include "sched/schedulers.hpp"
#include "rt/task_graph.hpp"
#include "rt/team.hpp"
#include "rt/worker.hpp"
#include "sim/event_tags.hpp"
#include "topo/presets.hpp"

namespace {

using namespace ilan;
using analysis::RaceAuditor;
using analysis::RaceAuditorOptions;
using analysis::ReportKind;
using analysis::VectorClock;

// --- VectorClock -----------------------------------------------------------

TEST(VectorClockTest, TickAdvancesOneComponent) {
  VectorClock a(3);
  EXPECT_TRUE(a.leq(VectorClock(3)));
  a.tick(1);
  EXPECT_FALSE(a.leq(VectorClock(3)));
  EXPECT_TRUE(VectorClock(3).leq(a));
}

TEST(VectorClockTest, JoinIsElementwiseMax) {
  VectorClock a(2), b(2);
  a.tick(0);
  a.tick(0);
  b.tick(1);
  VectorClock j = a;
  j.join(b);
  EXPECT_TRUE(a.leq(j));
  EXPECT_TRUE(b.leq(j));
  EXPECT_FALSE(j.leq(a));
  EXPECT_FALSE(j.leq(b));
}

TEST(VectorClockTest, ConcurrentIffNeitherLeq) {
  VectorClock a(2), b(2);
  a.tick(0);
  b.tick(1);
  EXPECT_TRUE(VectorClock::concurrent(a, b));
  VectorClock c = a;
  c.join(b);
  c.tick(0);
  EXPECT_FALSE(VectorClock::concurrent(a, c));  // a happens-before c
  EXPECT_TRUE(a.leq(c));
}

TEST(VectorClockTest, MissingComponentsReadAsZero) {
  VectorClock small(1), big(4);
  small.tick(0);
  big.tick(3);
  // Different sizes still compare: small has implicit zeros for 1..3.
  EXPECT_TRUE(VectorClock::concurrent(small, big));
  small.join(big);
  EXPECT_TRUE(big.leq(small));
}

// --- fixtures --------------------------------------------------------------

rt::MachineParams tiny_params(std::uint64_t seed) {
  rt::MachineParams p;
  p.spec = topo::presets::tiny_2n8c();
  p.noise.enabled = false;
  p.seed = seed;
  return p;
}

rt::TaskloopSpec compute_spec(rt::LoopId id, std::int64_t iters) {
  rt::TaskloopSpec spec;
  spec.loop_id = id;
  spec.name = "loop" + std::to_string(id);
  spec.iterations = iters;
  spec.demand = [](std::int64_t b, std::int64_t e) {
    rt::TaskDemand d;
    d.cpu_cycles = 1e5 * static_cast<double>(e - b);
    return d;
  };
  return spec;
}

// --- race auditor: clean runs ----------------------------------------------

TEST(RaceAuditorClean, DisjointSlicesProduceNoReports) {
  rt::Machine machine(tiny_params(1));
  const auto region =
      machine.regions().create("r", 1 << 20, mem::Placement::kBlock);
  sched::IlanScheduler sched;
  rt::Team team(machine, sched);
  RaceAuditor auditor(RaceAuditorOptions{}, &machine.regions());
  team.set_observer(&auditor);

  auto spec = compute_spec(1, 256);
  spec.demand = [region](std::int64_t b, std::int64_t e) {
    rt::TaskDemand d;
    d.cpu_cycles = 1e5 * static_cast<double>(e - b);
    // Each task writes exactly its own slice: properly synchronized.
    d.accesses.push_back(mem::AccessDescriptor{
        region, static_cast<std::uint64_t>(b) * 64,
        static_cast<std::uint64_t>(e - b) * 64, mem::AccessKind::kWrite});
    return d;
  };
  for (int i = 0; i < 3; ++i) team.run_taskloop(spec);

  EXPECT_TRUE(auditor.clean()) << auditor.reports().front().message;
  EXPECT_EQ(auditor.counters().loops, 3u);
  EXPECT_GT(auditor.counters().tasks, 0u);
  EXPECT_GT(auditor.counters().accesses, 0u);
}

TEST(RaceAuditorClean, SharedReadsAreNotRaces) {
  rt::Machine machine(tiny_params(2));
  const auto region =
      machine.regions().create("ro", 1 << 20, mem::Placement::kInterleave);
  sched::IlanScheduler sched;
  rt::Team team(machine, sched);
  RaceAuditor auditor(RaceAuditorOptions{}, &machine.regions());
  team.set_observer(&auditor);

  auto spec = compute_spec(2, 128);
  spec.demand = [region](std::int64_t b, std::int64_t e) {
    rt::TaskDemand d;
    d.cpu_cycles = 1e5 * static_cast<double>(e - b);
    d.accesses.push_back(
        mem::AccessDescriptor{region, 0, 4096, mem::AccessKind::kRead});
    return d;
  };
  team.run_taskloop(spec);
  EXPECT_TRUE(auditor.clean());
  EXPECT_GT(auditor.counters().accesses, 0u);
}

TEST(RaceAuditorClean, AmplifiedTrafficWithDisjointFootprintsIsClean) {
  // len models traffic and may spill past the owned slice (imbalance
  // amplification); the footprint field is what the auditor intersects.
  rt::Machine machine(tiny_params(3));
  const auto region =
      machine.regions().create("amp", 1 << 20, mem::Placement::kBlock);
  sched::IlanScheduler sched;
  rt::Team team(machine, sched);
  RaceAuditor auditor(RaceAuditorOptions{}, &machine.regions());
  team.set_observer(&auditor);

  auto spec = compute_spec(3, 128);
  spec.demand = [region](std::int64_t b, std::int64_t e) {
    rt::TaskDemand d;
    d.cpu_cycles = 1e5 * static_cast<double>(e - b);
    const auto off = static_cast<std::uint64_t>(b) * 64;
    const auto slice = static_cast<std::uint64_t>(e - b) * 64;
    d.accesses.push_back(mem::AccessDescriptor{region, off, slice * 2,
                                               mem::AccessKind::kWrite, slice});
    return d;
  };
  team.run_taskloop(spec);
  EXPECT_TRUE(auditor.clean()) << auditor.reports().front().message;
}

// --- race auditor: seeded fault injection ----------------------------------

TEST(RaceAuditorInjection, OverlappingWritesAreFlagged) {
  rt::Machine machine(tiny_params(4));
  const auto region =
      machine.regions().create("hot", 1 << 20, mem::Placement::kBlock);
  sched::IlanScheduler sched;
  rt::Team team(machine, sched);
  RaceAuditor auditor(RaceAuditorOptions{}, &machine.regions());
  team.set_observer(&auditor);

  auto spec = compute_spec(7, 256);
  spec.demand = [region](std::int64_t b, std::int64_t e) {
    rt::TaskDemand d;
    d.cpu_cycles = 1e5 * static_cast<double>(e - b);
    // Every task writes the same 100 bytes: a racing reduction.
    d.accesses.push_back(
        mem::AccessDescriptor{region, 0, 100, mem::AccessKind::kWrite});
    return d;
  };
  team.run_taskloop(spec);

  ASSERT_FALSE(auditor.clean());
  EXPECT_EQ(auditor.reports().front().kind, ReportKind::kDataRace);
  EXPECT_NE(auditor.reports().front().message.find("hot"), std::string::npos);
  EXPECT_GT(auditor.counters().pairs_checked, 0u);
}

TEST(RaceAuditorInjection, WriteReadOverlapIsFlagged) {
  rt::Machine machine(tiny_params(5));
  const auto region =
      machine.regions().create("wr", 1 << 20, mem::Placement::kBlock);
  sched::IlanScheduler sched;
  rt::Team team(machine, sched);
  RaceAuditor auditor(RaceAuditorOptions{}, &machine.regions());
  team.set_observer(&auditor);

  auto spec = compute_spec(8, 256);
  spec.demand = [region](std::int64_t b, std::int64_t e) {
    rt::TaskDemand d;
    d.cpu_cycles = 1e5 * static_cast<double>(e - b);
    if (b == 0) {
      d.accesses.push_back(
          mem::AccessDescriptor{region, 0, 4096, mem::AccessKind::kWrite});
    } else {
      d.accesses.push_back(
          mem::AccessDescriptor{region, 0, 4096, mem::AccessKind::kRead});
    }
    return d;
  };
  team.run_taskloop(spec);
  ASSERT_FALSE(auditor.clean());
  EXPECT_EQ(auditor.reports().front().kind, ReportKind::kDataRace);
}

TEST(RaceAuditorInjection, ReportCapIsHonoured) {
  rt::Machine machine(tiny_params(6));
  const auto region =
      machine.regions().create("cap", 1 << 20, mem::Placement::kBlock);
  sched::IlanScheduler sched;
  rt::Team team(machine, sched);
  RaceAuditorOptions opts;
  opts.max_reports = 2;
  RaceAuditor auditor(opts, &machine.regions());
  team.set_observer(&auditor);

  auto spec = compute_spec(9, 256);
  spec.demand = [region](std::int64_t b, std::int64_t e) {
    rt::TaskDemand d;
    d.cpu_cycles = 1e5 * static_cast<double>(e - b);
    d.accesses.push_back(
        mem::AccessDescriptor{region, 0, 100, mem::AccessKind::kWrite});
    return d;
  };
  team.run_taskloop(spec);
  EXPECT_EQ(auditor.reports().size(), 2u);
}

// --- race auditor: task-graph release edges ---------------------------------
//
// Two DAG nodes with overlapping write footprints: with no dependency edge
// between them they are concurrent under the auditor's happens-before model
// (the missing-edge bug class), while the edged graph is ordered through the
// release edge (finish of the predecessor joins into the successor's start
// clock) and must audit clean even though the nodes run on different workers.

rt::TaskGraphSpec overlap_graph(rt::LoopId id, bool with_edge,
                                mem::RegionId region) {
  rt::TaskGraphSpec g;
  g.graph_id = id;
  g.name = with_edge ? "overlap-edged" : "overlap-raced";
  g.add_node();
  g.add_node(with_edge ? std::vector<std::int32_t>{0}
                       : std::vector<std::int32_t>{});
  g.demand = [region](std::int64_t /*b*/, std::int64_t /*e*/) {
    rt::TaskDemand d;
    d.cpu_cycles = 2e6;
    // Both nodes write the same bytes: only a dependency edge orders them.
    d.accesses.push_back(
        mem::AccessDescriptor{region, 0, 256, mem::AccessKind::kWrite});
    return d;
  };
  return g;
}

// Full-team composed scheduler whose block-map placement spreads the two
// roots across both NUMA nodes, and whose NoSteal policy pins them there —
// the raced graph genuinely executes its nodes on different workers.
std::unique_ptr<sched::ComposedScheduler> spread_sched() {
  rt::LoopConfig cfg;
  cfg.num_threads = 8;
  cfg.node_mask = rt::NodeMask::all(2);
  return std::make_unique<sched::ComposedScheduler>(
      "composed", "composed:test-dag-race", core::IlanParams{},
      std::make_unique<sched::FixedConfig>(cfg),
      std::make_unique<sched::FlatDist>(), std::make_unique<sched::NoSteal>(),
      std::make_unique<sched::NoFeedback>());
}

TEST(RaceAuditorGraph, MissingDependencyEdgeIsFlagged) {
  rt::Machine machine(tiny_params(31));
  const auto region =
      machine.regions().create("dagbuf", 1 << 20, mem::Placement::kBlock);
  const auto sched = spread_sched();
  rt::Team team(machine, *sched);
  RaceAuditor auditor(RaceAuditorOptions{}, &machine.regions());
  team.set_observer(&auditor);

  team.run_taskgraph(overlap_graph(40, /*with_edge=*/false, region));

  ASSERT_FALSE(auditor.clean());
  EXPECT_EQ(auditor.reports().front().kind, ReportKind::kDataRace);
  EXPECT_NE(auditor.reports().front().message.find("dagbuf"), std::string::npos);
}

TEST(RaceAuditorGraph, DependencyEdgeOrdersTheSameFootprints) {
  rt::Machine machine(tiny_params(32));
  const auto region =
      machine.regions().create("dagbuf", 1 << 20, mem::Placement::kBlock);
  const auto sched = spread_sched();
  rt::Team team(machine, *sched);
  RaceAuditor auditor(RaceAuditorOptions{}, &machine.regions());
  team.set_observer(&auditor);

  team.run_taskgraph(overlap_graph(41, /*with_edge=*/true, region));

  EXPECT_TRUE(auditor.clean())
      << auditor.reports().front().message;
  EXPECT_GT(auditor.counters().accesses, 0u);
}

// Invariant checks exercised through the hook interface directly: the
// scheduler implementations in-tree never violate them (that is the point),
// so fault injection builds the violating schedules by hand.
class InvariantInjection : public ::testing::Test {
 protected:
  InvariantInjection()
      : machine_(tiny_params(7)), sched_(rt::LoopConfig{}), team_(machine_, sched_) {}

  rt::Worker worker(int id, int node) {
    rt::Worker w;
    w.id = id;
    w.node = topo::NodeId{node};
    return w;
  }

  rt::Task task(std::int64_t b, std::int64_t e, int home, bool strict = false) {
    rt::Task t;
    t.begin = b;
    t.end = e;
    t.home_node = topo::NodeId{home};
    t.numa_strict = strict;
    return t;
  }

  rt::Machine machine_;
  sched::ManualScheduler sched_;
  rt::Team team_;
  RaceAuditor auditor_;
};

TEST_F(InvariantInjection, ExecutionOutsideNodeMaskIsFlagged) {
  auto spec = compute_spec(1, 16);
  rt::LoopConfig cfg;
  cfg.num_threads = 4;
  cfg.node_mask = rt::NodeMask::first_n(1);  // node 0 only
  auditor_.on_loop_begin(spec, cfg, team_, 0);
  const auto w = worker(5, /*node=*/1);  // off-mask worker
  auditor_.on_task_start(task(0, 8, 1), w, {}, 10);
  ASSERT_FALSE(auditor_.clean());
  EXPECT_EQ(auditor_.reports().front().kind, ReportKind::kMaskViolation);
}

TEST_F(InvariantInjection, StrictLoopNeverExecutesOffHomeNode) {
  auto spec = compute_spec(2, 16);
  rt::LoopConfig cfg;
  cfg.num_threads = 8;
  cfg.node_mask = rt::NodeMask::all(2);
  cfg.steal_policy = rt::StealPolicy::kStrict;
  auditor_.on_loop_begin(spec, cfg, team_, 0);
  // A cross-node steal under the strict policy: home 0, executed on node 1.
  auditor_.on_task_start(task(0, 8, /*home=*/0), worker(5, /*node=*/1), {}, 10);
  ASSERT_FALSE(auditor_.clean());
  EXPECT_EQ(auditor_.reports().front().kind, ReportKind::kStrictViolation);
}

TEST_F(InvariantInjection, NumaStrictTaskMayNotMigrateEvenUnderFullPolicy) {
  auto spec = compute_spec(3, 16);
  rt::LoopConfig cfg;
  cfg.num_threads = 8;
  cfg.node_mask = rt::NodeMask::all(2);
  cfg.steal_policy = rt::StealPolicy::kFull;
  auditor_.on_loop_begin(spec, cfg, team_, 0);
  auditor_.on_task_start(task(0, 8, /*home=*/0, /*strict=*/true),
                         worker(5, /*node=*/1), {}, 10);
  ASSERT_FALSE(auditor_.clean());
  EXPECT_EQ(auditor_.reports().front().kind, ReportKind::kStrictViolation);
}

TEST_F(InvariantInjection, StealableTaskMigrationUnderFullPolicyIsLegal) {
  auto spec = compute_spec(4, 16);
  rt::LoopConfig cfg;
  cfg.num_threads = 8;
  cfg.node_mask = rt::NodeMask::all(2);
  cfg.steal_policy = rt::StealPolicy::kFull;
  auditor_.on_loop_begin(spec, cfg, team_, 0);
  auditor_.on_task_start(task(0, 8, /*home=*/0, /*strict=*/false),
                         worker(5, /*node=*/1), {}, 10);
  EXPECT_TRUE(auditor_.clean());
}

TEST_F(InvariantInjection, ReconfigWithTasksInFlightIsFlagged) {
  auto spec = compute_spec(5, 16);
  rt::LoopConfig a;
  a.num_threads = 8;
  auditor_.on_loop_begin(spec, a, team_, 0);
  auditor_.on_task_start(task(0, 8, 0), worker(0, 0), {}, 10);
  // Same loop id begins again, reconfigured, with the task still running.
  rt::LoopConfig b;
  b.num_threads = 4;
  auditor_.on_loop_begin(spec, b, team_, 20);
  ASSERT_FALSE(auditor_.clean());
  bool saw_nested = false, saw_reconfig = false;
  for (const auto& r : auditor_.reports()) {
    saw_nested = saw_nested || r.kind == ReportKind::kNestedLoop;
    saw_reconfig = saw_reconfig || r.kind == ReportKind::kReconfigOverlap;
  }
  EXPECT_TRUE(saw_nested);
  EXPECT_TRUE(saw_reconfig);
}

TEST_F(InvariantInjection, CompletedTasksDoNotTripTheReconfigCheck) {
  auto spec = compute_spec(6, 16);
  rt::LoopConfig a;
  a.num_threads = 8;
  auditor_.on_loop_begin(spec, a, team_, 0);
  const auto w = worker(0, 0);
  auditor_.on_task_start(task(0, 8, 0), w, {}, 10);
  auditor_.on_task_finish(task(0, 8, 0), w, 15);
  auditor_.on_loop_end(spec, rt::LoopExecStats{}, 20);
  rt::LoopConfig b;
  b.num_threads = 4;
  auditor_.on_loop_begin(spec, b, team_, 30);
  EXPECT_TRUE(auditor_.clean());
}

// --- determinism helpers ----------------------------------------------------

TEST(Determinism, IdenticalTracesHaveNoDivergence) {
  const std::vector<sim::FiredEvent> a = {{100, 0, 1}, {200, 1, 2}};
  EXPECT_FALSE(analysis::compare_traces(a, a).has_value());
}

TEST(Determinism, FirstDivergentEventIsPinpointed) {
  const std::vector<sim::FiredEvent> a = {{100, 0, 1}, {200, 1, 2}, {300, 2, 3}};
  std::vector<sim::FiredEvent> b = a;
  b[1].at = 250;
  const auto div = analysis::compare_traces(a, b);
  ASSERT_TRUE(div.has_value());
  EXPECT_EQ(div->index, 1u);
  const std::string msg = analysis::describe_divergence(*div);
  EXPECT_NE(msg.find("250"), std::string::npos);
}

TEST(Determinism, LengthMismatchDivergesAtTheShorterEnd) {
  const std::vector<sim::FiredEvent> a = {{100, 0, 1}, {200, 1, 2}};
  const std::vector<sim::FiredEvent> b = {{100, 0, 1}};
  const auto div = analysis::compare_traces(a, b);
  ASSERT_TRUE(div.has_value());
  EXPECT_EQ(div->index, 1u);
  EXPECT_TRUE(div->first.has_value());
  EXPECT_FALSE(div->second.has_value());
}

TEST(Determinism, DigestOfTraceMatchesStreamingFold) {
  const std::vector<sim::FiredEvent> a = {{100, 0, 1}, {200, 1, 2}};
  std::uint64_t d = 0;
  for (const auto& e : a) d = sim::Engine::digest_step(d, e);
  EXPECT_EQ(analysis::digest_of(a), d);
  EXPECT_NE(analysis::digest_of(a), 0u);
}

TEST(Determinism, EventTagNamesAreStable) {
  EXPECT_STREQ(sim::tag_name(sim::kTagWorkerWake), "worker-wake");
  EXPECT_STREQ(sim::tag_name(sim::kTagTaskStart), "task-start");
  EXPECT_STREQ(sim::tag_name(999), "unknown");
}

// --- NodeMask / StealPolicy edge cases (driven through the invariants) ------

TEST(NodeMaskEdges, EmptyMaskSemantics) {
  const rt::NodeMask empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.count(), 0);
  EXPECT_FALSE(empty.test(topo::NodeId{0}));
  EXPECT_EQ(rt::NodeMask::first_n(0).bits(), 0u);
}

TEST(NodeMaskEdges, SingleNodeAndBoundaries) {
  const auto one = rt::NodeMask::first_n(1);
  EXPECT_EQ(one.count(), 1);
  EXPECT_TRUE(one.test(topo::NodeId{0}));
  EXPECT_FALSE(one.test(topo::NodeId{1}));
  EXPECT_EQ(rt::NodeMask::first_n(64).bits(), ~0ull);  // no 1<<64 UB
  EXPECT_EQ(rt::NodeMask::first_n(2).bits(), 0x3u);
  rt::NodeMask m;
  m.set(topo::NodeId{3});
  EXPECT_EQ(m.count(), 1);
  m.clear(topo::NodeId{3});
  EXPECT_TRUE(m.empty());
}

TEST(NodeMaskEdges, EmptyMaskInConfigMeansUnconstrained) {
  // The auditor treats an empty mask as "no constraint": no report even
  // though test() is false for every node.
  rt::Machine machine(tiny_params(8));
  sched::ManualScheduler sched(rt::LoopConfig{});
  rt::Team team(machine, sched);
  RaceAuditor auditor;
  auto spec = compute_spec(1, 16);
  rt::LoopConfig cfg;  // empty mask
  cfg.num_threads = 8;
  auditor.on_loop_begin(spec, cfg, team, 0);
  rt::Worker w;
  w.id = 5;
  w.node = topo::NodeId{1};
  rt::Task t;
  t.begin = 0;
  t.end = 8;
  auditor.on_task_start(t, w, {}, 10);
  EXPECT_TRUE(auditor.clean());
}

TEST(StealPolicyEdges, StrictManualRunIsAuditCleanWithNoRemoteSteals) {
  rt::Machine machine(tiny_params(9));
  rt::LoopConfig cfg;
  cfg.num_threads = 8;
  cfg.node_mask = rt::NodeMask::all(2);
  cfg.steal_policy = rt::StealPolicy::kStrict;
  sched::ManualScheduler sched(cfg);
  rt::Team team(machine, sched);
  RaceAuditor auditor;
  team.set_observer(&auditor);
  team.run_taskloop(compute_spec(1, 256));
  EXPECT_TRUE(auditor.clean()) << auditor.reports().front().message;
  EXPECT_EQ(team.history().back().steals_remote, 0);
}

TEST(StealPolicyEdges, FullManualRunIsAuditClean) {
  rt::Machine machine(tiny_params(10));
  rt::LoopConfig cfg;
  cfg.num_threads = 8;
  cfg.node_mask = rt::NodeMask::all(2);
  cfg.steal_policy = rt::StealPolicy::kFull;
  sched::ManualScheduler sched(cfg);
  rt::Team team(machine, sched);
  RaceAuditor auditor;
  team.set_observer(&auditor);
  team.run_taskloop(compute_spec(1, 256));
  EXPECT_TRUE(auditor.clean()) << auditor.reports().front().message;
}

TEST(StealPolicyEdges, SingleNodeMaskConfinesExecution) {
  rt::Machine machine(tiny_params(11));
  rt::LoopConfig cfg;
  cfg.num_threads = 4;
  cfg.node_mask = rt::NodeMask::first_n(1);
  cfg.steal_policy = rt::StealPolicy::kStrict;
  sched::ManualScheduler sched(cfg);
  rt::Team team(machine, sched);
  RaceAuditor auditor;
  team.set_observer(&auditor);
  team.run_taskloop(compute_spec(1, 128));
  // Mask + strict invariants both checked on every task start.
  EXPECT_TRUE(auditor.clean()) << auditor.reports().front().message;
  EXPECT_EQ(team.history().back().config.node_mask.count(), 1);
  EXPECT_EQ(team.history().back().steals_remote, 0);
}

// clear() resets every bit of auditor state for reuse.
TEST(RaceAuditorState, ClearResets) {
  rt::Machine machine(tiny_params(12));
  const auto region =
      machine.regions().create("c", 1 << 20, mem::Placement::kBlock);
  sched::IlanScheduler sched;
  rt::Team team(machine, sched);
  RaceAuditor auditor(RaceAuditorOptions{}, &machine.regions());
  team.set_observer(&auditor);
  auto spec = compute_spec(1, 128);
  spec.demand = [region](std::int64_t b, std::int64_t e) {
    rt::TaskDemand d;
    d.cpu_cycles = 1e5 * static_cast<double>(e - b);
    d.accesses.push_back(
        mem::AccessDescriptor{region, 0, 64, mem::AccessKind::kWrite});
    return d;
  };
  team.run_taskloop(spec);
  ASSERT_FALSE(auditor.clean());
  auditor.clear();
  EXPECT_TRUE(auditor.clean());
  EXPECT_EQ(auditor.counters().loops, 0u);
}

}  // namespace
