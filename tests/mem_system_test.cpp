// MemorySystem: task execution timing under the fluid model.
#include <gtest/gtest.h>

#include "mem/memory_system.hpp"
#include "sim/engine.hpp"
#include "topo/builder.hpp"
#include "topo/presets.hpp"

namespace {

using namespace ilan;
using mem::AccessDescriptor;
using mem::AccessKind;

struct Fixture {
  sim::Engine engine;
  topo::Topology topo;
  mem::RegionTable regions;
  mem::MemorySystem ms;

  explicit Fixture(mem::MemParams params = {}, topo::MachineSpec spec =
                                                   topo::presets::tiny_2n8c())
      : topo(topo::build(spec)),
        regions(topo.num_nodes()),
        ms(engine, topo, params, regions, nullptr) {}
};

// tiny_2n8c: 2 nodes x 4 cores, 3 GHz, core 20 GB/s, node 60 GB/s,
// same-socket distance 12.

TEST(MemorySystem, PureComputeDuration) {
  Fixture f;
  sim::SimTime done = -1;
  f.ms.begin(topo::CoreId{0}, 3e9, {}, [&] { done = f.engine.now(); });
  f.engine.run();
  // 3e9 cycles at 3 GHz = 1 second.
  EXPECT_NEAR(sim::to_seconds(done), 1.0, 1e-6);
}

TEST(MemorySystem, PureLocalStreamDuration) {
  Fixture f;
  const auto r = f.regions.create("u", 1u << 30, mem::Placement::kNodeBound,
                                  2ull << 20, topo::NodeId{0});
  sim::SimTime done = -1;
  const AccessDescriptor acc[] = {{r, 0, 200'000'000, AccessKind::kRead}};
  f.ms.begin(topo::CoreId{0}, 0.0, acc, [&] { done = f.engine.now(); });
  f.engine.run();
  // 200 MB at the 20 GB/s core cap = 10 ms.
  EXPECT_NEAR(sim::to_seconds(done), 0.010, 0.0005);
}

TEST(MemorySystem, RooflineTakesTheMax) {
  Fixture f;
  const auto r = f.regions.create("u", 1u << 30, mem::Placement::kNodeBound,
                                  2ull << 20, topo::NodeId{0});
  // cpu: 60 ms; mem: 10 ms -> 60 ms total (overlapped).
  sim::SimTime done = -1;
  const AccessDescriptor acc[] = {{r, 0, 200'000'000, AccessKind::kRead}};
  f.ms.begin(topo::CoreId{0}, 0.18e9, acc, [&] { done = f.engine.now(); });
  f.engine.run();
  EXPECT_NEAR(sim::to_seconds(done), 0.060, 0.001);
}

TEST(MemorySystem, RemoteStreamIsSlowerThanLocal) {
  mem::MemParams p;
  Fixture f(p);
  const auto local = f.regions.create("l", 1u << 30, mem::Placement::kNodeBound,
                                      2ull << 20, topo::NodeId{0});
  const auto remote = f.regions.create("r", 1u << 30, mem::Placement::kNodeBound,
                                       2ull << 20, topo::NodeId{1});
  sim::SimTime t_local = 0;
  sim::SimTime t_remote = 0;
  {
    const AccessDescriptor acc[] = {{local, 0, 100'000'000, AccessKind::kRead}};
    sim::SimTime start = f.engine.now();
    f.ms.begin(topo::CoreId{0}, 0.0, acc, [&] { t_local = f.engine.now() - start; });
    f.engine.run();
  }
  {
    const AccessDescriptor acc[] = {{remote, 0, 100'000'000, AccessKind::kRead}};
    sim::SimTime start = f.engine.now();
    f.ms.begin(topo::CoreId{0}, 0.0, acc, [&] { t_remote = f.engine.now() - start; });
    f.engine.run();
  }
  EXPECT_GT(t_remote, t_local);
  // (10/12)^0.22 efficiency: a few percent, not catastrophic.
  EXPECT_LT(sim::to_seconds(t_remote), sim::to_seconds(t_local) * 1.2);
}

TEST(MemorySystem, ContentionSlowsConcurrentStreams) {
  Fixture f;
  const auto r = f.regions.create("u", 1u << 30, mem::Placement::kNodeBound,
                                  2ull << 20, topo::NodeId{0});
  // One stream alone: 100 MB at 20 GB/s = 5 ms. Four streams on one 60 GB/s
  // controller: 15 GB/s each minimum, plus congestion derating.
  std::vector<sim::SimTime> done(4, 0);
  for (int c = 0; c < 4; ++c) {
    const AccessDescriptor acc[] = {{r, 0, 100'000'000, AccessKind::kRead}};
    f.ms.begin(topo::CoreId{c}, 0.0, acc,
               [&done, c, &f] { done[static_cast<std::size_t>(c)] = f.engine.now(); });
  }
  f.engine.run();
  for (const auto t : done) {
    EXPECT_GT(sim::to_seconds(t), 0.0063);  // clearly slower than solo 5 ms
    EXPECT_LT(sim::to_seconds(t), 0.02);
  }
}

TEST(MemorySystem, GatherSlowsWithStreamPressure) {
  // A gather alone vs a gather while 4 streams queue at the controllers.
  const auto run_gather = [](bool with_streams) {
    Fixture f;
    const auto g = f.regions.create("g", 64u << 20, mem::Placement::kInterleave);
    const auto s = f.regions.create("s", 1u << 30, mem::Placement::kInterleave);
    if (with_streams) {
      for (int c = 1; c < 4; ++c) {
        const AccessDescriptor acc[] = {{s, 0, 500'000'000, AccessKind::kRead}};
        f.ms.begin(topo::CoreId{c}, 0.0, acc, [] {});
      }
      for (int c = 4; c < 8; ++c) {
        const AccessDescriptor acc[] = {{s, 0, 500'000'000, AccessKind::kRead}};
        f.ms.begin(topo::CoreId{c}, 0.0, acc, [] {});
      }
    }
    sim::SimTime done = -1;
    const AccessDescriptor acc[] = {{g, 0, 10'000'000, AccessKind::kGather}};
    f.ms.begin(topo::CoreId{0}, 0.0, acc, [&] { done = f.engine.now(); });
    f.engine.run_until(sim::from_seconds(10));
    return sim::to_seconds(done);
  };
  const double alone = run_gather(false);
  const double contended = run_gather(true);
  EXPECT_GT(alone, 0.0);
  EXPECT_GT(contended, alone * 1.3) << "loaded latency must slow gathers";
}

TEST(MemorySystem, FirstTouchHappensOnAccess) {
  Fixture f;
  const auto r = f.regions.create("u", 64u << 20, mem::Placement::kFirstTouch);
  EXPECT_EQ(f.regions.get(r).placed_pages(), 0u);
  const AccessDescriptor acc[] = {{r, 0, 8u << 20, AccessKind::kWrite}};
  f.ms.begin(topo::CoreId{5}, 0.0, acc, [] {});  // core 5 is on node 1
  f.engine.run();
  EXPECT_GT(f.regions.get(r).placed_pages(), 0u);
  EXPECT_EQ(f.regions.get(r).node_of(0), topo::NodeId{1});
}

TEST(MemorySystem, CallbackFiresExactlyOnce) {
  Fixture f;
  int count = 0;
  f.ms.begin(topo::CoreId{0}, 1e6, {}, [&] { ++count; });
  f.engine.run();
  EXPECT_EQ(count, 1);
  EXPECT_EQ(f.ms.active_executions(), 0u);
}

TEST(MemorySystem, TrafficStatsClassifyLocality) {
  Fixture f;
  const auto local = f.regions.create("l", 1u << 30, mem::Placement::kNodeBound,
                                      2ull << 20, topo::NodeId{0});
  const auto remote = f.regions.create("r", 1u << 30, mem::Placement::kNodeBound,
                                       2ull << 20, topo::NodeId{1});
  const AccessDescriptor acc[] = {{local, 0, 1'000'000, AccessKind::kRead},
                                  {remote, 0, 2'000'000, AccessKind::kRead}};
  f.ms.begin(topo::CoreId{0}, 0.0, acc, [] {});
  f.engine.run();
  EXPECT_NEAR(f.ms.traffic().local_bytes, 1e6, 1e4);
  EXPECT_NEAR(f.ms.traffic().remote_bytes, 2e6, 1e4);
  // tiny preset is single socket: no cross-socket traffic.
  EXPECT_DOUBLE_EQ(f.ms.traffic().cross_socket_bytes, 0.0);
}

TEST(MemorySystem, ResetRunRequiresIdle) {
  Fixture f;
  f.ms.begin(topo::CoreId{0}, 1e9, {}, [] {});
  EXPECT_THROW(f.ms.reset_run(), std::logic_error);
  f.engine.run();
  f.ms.reset_run();
  EXPECT_DOUBLE_EQ(f.ms.traffic().total(), 0.0);
}

TEST(MemorySystem, SnapshotExposesActiveExecutions) {
  Fixture f;
  const auto r = f.regions.create("u", 1u << 30, mem::Placement::kNodeBound,
                                  2ull << 20, topo::NodeId{0});
  const AccessDescriptor acc[] = {{r, 0, 100'000'000, AccessKind::kRead}};
  f.ms.begin(topo::CoreId{2}, 1e9, acc, [] {});
  f.engine.run_until(sim::from_ms(1));
  const auto snap = f.ms.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].core, topo::CoreId{2});
  EXPECT_GT(snap[0].cpu_remaining, 0.0);
  ASSERT_EQ(snap[0].flows.size(), 1u);
  EXPECT_GT(snap[0].flows[0].rate_bytes_per_s, 0.0);
  f.engine.run();
}

TEST(MemorySystem, EmptyTaskCompletesImmediately) {
  Fixture f;
  sim::SimTime done = -1;
  f.ms.begin(topo::CoreId{0}, 0.0, {}, [&] { done = f.engine.now(); });
  f.engine.run();
  EXPECT_EQ(done, 0);
}

TEST(MemorySystem, RejectsBadArguments) {
  Fixture f;
  EXPECT_THROW(f.ms.begin(topo::CoreId{0}, -1.0, {}, [] {}), std::invalid_argument);
  EXPECT_THROW(f.ms.begin(topo::CoreId{0}, 1.0, {}, nullptr), std::invalid_argument);
}

// --- CXL far-memory tier --------------------------------------------------
//
// tiny machine with near DRAM shrunk to 10 MB/node and a 6 GB/s far device:
// a 100 MB node-bound region spills ~90% of its pages past near capacity, so
// streams over it split into a near flow and a far flow behind the device
// constraint (run_tier1.sh topo runs this suite under every sanitizer).

topo::MachineSpec tiny_with_far() {
  auto spec = topo::presets::tiny_2n8c();
  spec.node_mem_gb = 0.01;  // 10 MB near DRAM per node
  spec.far_gb = 64.0;
  spec.far_bw_gbps = 6.0;
  spec.far_lat_ns = 350.0;
  return spec;
}

TEST(FarTier, SpillSplitsStreamIntoNearAndFarFlows) {
  Fixture f({}, tiny_with_far());
  EXPECT_TRUE(f.topo.has_far_tier());
  const auto r = f.regions.create("spill", 100u << 20, mem::Placement::kNodeBound,
                                  2ull << 20, topo::NodeId{0});
  const AccessDescriptor acc[] = {{r, 0, 50'000'000, AccessKind::kRead}};
  f.ms.begin(topo::CoreId{0}, 0.0, acc, [] {});
  f.engine.run_until(sim::from_us(1));
  const auto snap = f.ms.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  ASSERT_EQ(snap[0].flows.size(), 2u);
  const auto& a = snap[0].flows[0];
  const auto& b = snap[0].flows[1];
  EXPECT_NE(a.far, b.far);
  const auto& far = a.far ? a : b;
  const auto& near = a.far ? b : a;
  // (placed - capacity) / placed of the 50 MB goes far: the clear majority.
  EXPECT_GT(far.remaining_bytes, near.remaining_bytes * 4);
  EXPECT_GT(far.rate_bytes_per_s, 0.0);
  EXPECT_GT(near.rate_bytes_per_s, 0.0);
  f.engine.run();
}

TEST(FarTier, FarStreamGetsLessBandwidthUnderContention) {
  // Four spilling streams on node 0 vs four near-only streams on node 1.
  // Max-min over the shared 6 GB/s far device must hand every far flow less
  // bandwidth than any purely-local flow gets from its controller.
  Fixture f({}, tiny_with_far());
  const auto spill = f.regions.create("spill", 100u << 20, mem::Placement::kNodeBound,
                                      2ull << 20, topo::NodeId{0});
  const auto near = f.regions.create("near", 8u << 20, mem::Placement::kNodeBound,
                                     2ull << 20, topo::NodeId{1});
  for (int c = 0; c < 4; ++c) {  // cores 0..3 live on node 0
    const AccessDescriptor acc[] = {{spill, 0, 50'000'000, AccessKind::kRead}};
    f.ms.begin(topo::CoreId{c}, 0.0, acc, [] {});
  }
  for (int c = 4; c < 8; ++c) {  // cores 4..7 live on node 1
    const AccessDescriptor acc[] = {{near, 0, 8'000'000, AccessKind::kRead}};
    f.ms.begin(topo::CoreId{c}, 0.0, acc, [] {});
  }
  f.engine.run_until(sim::from_us(1));
  double max_far_rate = 0.0;
  double min_local_rate = 1e30;
  int far_flows = 0;
  int local_flows = 0;
  for (const auto& exec : f.ms.snapshot()) {
    for (const auto& flow : exec.flows) {
      if (flow.far) {
        max_far_rate = std::max(max_far_rate, flow.rate_bytes_per_s);
        ++far_flows;
      } else if (flow.src_node == 1) {
        min_local_rate = std::min(min_local_rate, flow.rate_bytes_per_s);
        ++local_flows;
      }
    }
  }
  EXPECT_EQ(far_flows, 4);
  EXPECT_EQ(local_flows, 4);
  EXPECT_GT(max_far_rate, 0.0);
  EXPECT_LT(max_far_rate, min_local_rate)
      << "far-tier streams must see less bandwidth than local ones";
  f.engine.run();
}

TEST(FarTier, SpillSlowsTheStreamEndToEnd) {
  // The same 50 MB stream: all-near on the stock tiny machine vs ~90%
  // spilled behind the 6 GB/s device. The tier must cost wall-clock time.
  const auto run_stream = [](const topo::MachineSpec& spec) {
    Fixture f({}, spec);
    const auto r = f.regions.create("u", 100u << 20, mem::Placement::kNodeBound,
                                    2ull << 20, topo::NodeId{0});
    sim::SimTime done = -1;
    const AccessDescriptor acc[] = {{r, 0, 50'000'000, AccessKind::kRead}};
    f.ms.begin(topo::CoreId{0}, 0.0, acc, [&] { done = f.engine.now(); });
    f.engine.run();
    return sim::to_seconds(done);
  };
  const double t_near = run_stream(topo::presets::tiny_2n8c());
  const double t_far = run_stream(tiny_with_far());
  EXPECT_GT(t_far, t_near * 2.0);
}

TEST(FarTier, TierlessMachineHasNoFarFlows) {
  Fixture f;  // stock tiny: no far tier, snapshot far flags all false
  EXPECT_FALSE(f.topo.has_far_tier());
  const auto r = f.regions.create("u", 1u << 30, mem::Placement::kNodeBound,
                                  2ull << 20, topo::NodeId{0});
  const AccessDescriptor acc[] = {{r, 0, 100'000'000, AccessKind::kRead}};
  f.ms.begin(topo::CoreId{0}, 0.0, acc, [] {});
  f.engine.run_until(sim::from_us(1));
  for (const auto& exec : f.ms.snapshot()) {
    for (const auto& flow : exec.flows) EXPECT_FALSE(flow.far);
  }
  f.engine.run();
}

}  // namespace
