// Runtime layer: chunking, deques, node masks, team execution semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sched/schedulers.hpp"
#include "rt/team.hpp"
#include "topo/presets.hpp"

namespace {

using namespace ilan;
using rt::NodeMask;
using rt::Task;
using rt::TaskloopSpec;

TEST(MakeChunks, GrainsizeSplitsExactly) {
  const auto chunks = rt::make_chunks(100, 32, 8, 2);
  ASSERT_EQ(chunks.size(), 4u);
  EXPECT_EQ(chunks[0], (std::pair<std::int64_t, std::int64_t>{0, 32}));
  EXPECT_EQ(chunks[3], (std::pair<std::int64_t, std::int64_t>{96, 100}));
}

TEST(MakeChunks, DefaultUsesTasksPerThread) {
  const auto chunks = rt::make_chunks(2048, 0, 64, 2);
  EXPECT_EQ(chunks.size(), 128u);
}

TEST(MakeChunks, FewIterationsOneEach) {
  const auto chunks = rt::make_chunks(5, 0, 64, 2);
  EXPECT_EQ(chunks.size(), 5u);
}

TEST(MakeChunks, RejectsBadInput) {
  EXPECT_THROW(rt::make_chunks(-1, 0, 4, 2), std::invalid_argument);
  EXPECT_THROW(rt::make_chunks(10, 0, 0, 2), std::invalid_argument);
  EXPECT_TRUE(rt::make_chunks(0, 0, 4, 2).empty());
}

class ChunkProperty : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ChunkProperty, CoversEveryIterationOnce) {
  const auto [iters, threads, tpt] = GetParam();
  const auto chunks = rt::make_chunks(iters, 0, threads, tpt);
  std::int64_t expect_begin = 0;
  std::int64_t max_size = 0;
  std::int64_t min_size = iters + 1;
  for (const auto& [b, e] : chunks) {
    EXPECT_EQ(b, expect_begin);  // contiguous, no gaps, no overlap
    EXPECT_LT(b, e);
    max_size = std::max(max_size, e - b);
    min_size = std::min(min_size, e - b);
    expect_begin = e;
  }
  EXPECT_EQ(expect_begin, iters);
  EXPECT_LE(max_size - min_size, 1);  // balanced within one iteration
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ChunkProperty,
    ::testing::Combine(::testing::Values(1, 7, 64, 1000, 2048),
                       ::testing::Values(1, 8, 64),
                       ::testing::Values(1, 2, 4)));

TEST(WsDeque, OwnerFrontThiefBack) {
  rt::WsDeque dq;
  TaskloopSpec spec;
  for (int i = 0; i < 3; ++i) {
    Task t;
    t.begin = i;
    t.end = i + 1;
    t.loop = &spec;
    dq.push_back(t);
  }
  EXPECT_EQ(dq.pop_front()->begin, 0);        // owner: iteration order
  EXPECT_EQ(dq.steal_back(true)->begin, 2);   // thief: far end
  EXPECT_EQ(dq.pop_front()->begin, 1);
  EXPECT_FALSE(dq.pop_front().has_value());
  EXPECT_FALSE(dq.steal_back(true).has_value());
}

TEST(WsDeque, StrictTasksResistCrossNodeTheft) {
  rt::WsDeque dq;
  TaskloopSpec spec;
  Task t;
  t.loop = &spec;
  t.numa_strict = true;
  dq.push_back(t);
  EXPECT_EQ(dq.peek_back(false), nullptr);
  EXPECT_FALSE(dq.steal_back(false).has_value());
  EXPECT_EQ(dq.size(), 1u);                    // still there
  EXPECT_TRUE(dq.steal_back(true).has_value());  // same-node thief may take it
}

TEST(NodeMaskTest, BitOperations) {
  NodeMask m;
  EXPECT_TRUE(m.empty());
  m.set(topo::NodeId{3});
  m.set(topo::NodeId{5});
  EXPECT_TRUE(m.test(topo::NodeId{3}));
  EXPECT_FALSE(m.test(topo::NodeId{4}));
  EXPECT_EQ(m.count(), 2);
  m.clear(topo::NodeId{3});
  EXPECT_EQ(m.count(), 1);
  EXPECT_EQ(NodeMask::first_n(3).bits(), 0b111u);
  EXPECT_EQ(NodeMask::all(8).count(), 8);
  const auto nodes = NodeMask(0b101).to_nodes();
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_EQ(nodes[0], topo::NodeId{0});
  EXPECT_EQ(nodes[1], topo::NodeId{2});
}

TEST(NodeMaskTest, WideMasksBeyondEightNodes) {
  // 16-node machines (quad preset) and the 64-bit boundary: first_n must
  // saturate instead of shifting by the full word width (UB).
  EXPECT_EQ(NodeMask::first_n(16).count(), 16);
  EXPECT_EQ(NodeMask::first_n(16).bits(), 0xffffu);
  EXPECT_EQ(NodeMask::first_n(63).count(), 63);
  EXPECT_EQ(NodeMask::first_n(64).bits(), ~0ull);
  EXPECT_EQ(NodeMask::first_n(100).bits(), ~0ull);
  EXPECT_EQ(NodeMask::all(64).count(), 64);
  NodeMask m = NodeMask::first_n(16);
  m.clear(topo::NodeId{15});
  EXPECT_EQ(m.count(), 15);
  EXPECT_FALSE(m.test(topo::NodeId{15}));
  EXPECT_EQ(m.to_nodes().size(), 15u);
}

// --- Team execution semantics -------------------------------------------

rt::MachineParams tiny_params(std::uint64_t seed) {
  rt::MachineParams p;
  p.spec = topo::presets::tiny_2n8c();
  p.noise.enabled = false;
  p.seed = seed;
  return p;
}

TaskloopSpec counting_loop(rt::LoopId id, std::int64_t iters,
                           std::shared_ptr<std::map<std::int64_t, int>> seen) {
  TaskloopSpec spec;
  spec.loop_id = id;
  spec.name = "counting";
  spec.iterations = iters;
  spec.demand = [seen](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) (*seen)[i] += 1;
    rt::TaskDemand d;
    d.cpu_cycles = 1e5 * static_cast<double>(e - b);
    return d;
  };
  return spec;
}

TEST(Team, BaselineExecutesEveryIterationExactlyOnce) {
  rt::Machine machine(tiny_params(1));
  sched::BaselineWsScheduler sched;
  rt::Team team(machine, sched);
  auto seen = std::make_shared<std::map<std::int64_t, int>>();
  const auto spec = counting_loop(1, 333, seen);
  const auto& stats = team.run_taskloop(spec);
  EXPECT_EQ(seen->size(), 333u);
  for (const auto& [i, n] : *seen) EXPECT_EQ(n, 1) << "iteration " << i;
  EXPECT_GT(stats.wall, 0);
  EXPECT_EQ(stats.iterations, 333);
}

TEST(Team, WorkSharingNeverSteals) {
  rt::Machine machine(tiny_params(2));
  sched::WorkSharingScheduler sched;
  rt::Team team(machine, sched);
  auto seen = std::make_shared<std::map<std::int64_t, int>>();
  const auto& stats = team.run_taskloop(counting_loop(1, 256, seen));
  EXPECT_EQ(stats.steals_local, 0);
  EXPECT_EQ(stats.steals_remote, 0);
  EXPECT_EQ(seen->size(), 256u);
}

TEST(Team, BaselineStealsPlenty) {
  rt::Machine machine(tiny_params(3));
  sched::BaselineWsScheduler sched;
  rt::Team team(machine, sched);
  auto seen = std::make_shared<std::map<std::int64_t, int>>();
  const auto& stats = team.run_taskloop(counting_loop(1, 256, seen));
  // Everything sits in worker 0's queue; the other 7 workers must steal.
  EXPECT_GT(stats.steals_local + stats.steals_remote, 7);
}

TEST(Team, BusyTimeIsAccounted) {
  rt::Machine machine(tiny_params(4));
  sched::BaselineWsScheduler sched;
  rt::Team team(machine, sched);
  auto seen = std::make_shared<std::map<std::int64_t, int>>();
  const auto& stats = team.run_taskloop(counting_loop(1, 512, seen));
  sim::SimTime total_busy = 0;
  for (const auto b : stats.worker_busy) total_busy += b;
  EXPECT_GT(total_busy, 0);
  EXPECT_LE(total_busy, stats.wall * 8);  // 8 workers
  std::int64_t node_iters = 0;
  for (const auto n : stats.node_iters) node_iters += n;
  EXPECT_EQ(node_iters, 512);
}

TEST(Team, HistoryAccumulatesAcrossLoops) {
  rt::Machine machine(tiny_params(5));
  sched::BaselineWsScheduler sched;
  rt::Team team(machine, sched);
  auto seen = std::make_shared<std::map<std::int64_t, int>>();
  team.run_taskloop(counting_loop(1, 64, seen));
  team.run_taskloop(counting_loop(2, 64, seen));
  EXPECT_EQ(team.history().size(), 2u);
  EXPECT_GT(team.total_loop_time(), 0);
  EXPECT_NEAR(team.weighted_avg_threads(), 8.0, 1e-9);
}

TEST(Team, SerialComputeAdvancesTime) {
  rt::Machine machine(tiny_params(6));
  sched::BaselineWsScheduler sched;
  rt::Team team(machine, sched);
  const auto before = team.now();
  team.serial_compute(3e9);  // 1 second at 3 GHz
  EXPECT_NEAR(sim::to_seconds(team.now() - before), 1.0, 1e-6);
}

TEST(Team, RejectsDegenerateLoops) {
  rt::Machine machine(tiny_params(7));
  sched::BaselineWsScheduler sched;
  rt::Team team(machine, sched);
  TaskloopSpec no_demand;
  no_demand.loop_id = 1;
  no_demand.iterations = 4;
  EXPECT_THROW(team.run_taskloop(no_demand), std::invalid_argument);
  TaskloopSpec no_iters;
  no_iters.loop_id = 2;
  no_iters.demand = [](std::int64_t, std::int64_t) { return rt::TaskDemand{}; };
  EXPECT_THROW(team.run_taskloop(no_iters), std::invalid_argument);
}

TEST(Team, DeterministicForEqualSeeds) {
  const auto run = [](std::uint64_t seed) {
    rt::Machine machine(tiny_params(seed));
    sched::BaselineWsScheduler sched;
    rt::Team team(machine, sched);
    auto seen = std::make_shared<std::map<std::int64_t, int>>();
    team.run_taskloop(counting_loop(1, 512, seen));
    return team.history().front().wall;
  };
  EXPECT_EQ(run(42), run(42));
}

TEST(Team, DifferentSeedsDifferUnderNoise) {
  const auto run = [](std::uint64_t seed) {
    auto p = tiny_params(seed);
    p.noise.enabled = true;
    rt::Machine machine(p);
    sched::BaselineWsScheduler sched;
    rt::Team team(machine, sched);
    auto seen = std::make_shared<std::map<std::int64_t, int>>();
    team.run_taskloop(counting_loop(1, 512, seen));
    return team.history().front().wall;
  };
  EXPECT_NE(run(42), run(43));
}

TEST(Team, OverheadTrackerSeesActivity) {
  rt::Machine machine(tiny_params(8));
  sched::BaselineWsScheduler sched;
  rt::Team team(machine, sched);
  auto seen = std::make_shared<std::map<std::int64_t, int>>();
  team.run_taskloop(counting_loop(1, 128, seen));
  EXPECT_GT(team.overhead().grand_total(), 0);
  EXPECT_GT(team.overhead().count(trace::OverheadComponent::kTaskCreate), 0u);
  EXPECT_GT(team.overhead().count(trace::OverheadComponent::kBarrier), 0u);
}

// --- nested / async reentry diagnostics ----------------------------------

TEST(Team, ReentryDuringAsyncLoopNamesAsyncState) {
  rt::Machine machine(tiny_params(9));
  sched::BaselineWsScheduler sched;
  rt::Team team(machine, sched);
  auto seen = std::make_shared<std::map<std::int64_t, int>>();
  const auto spec = counting_loop(1, 64, seen);
  bool done = false;
  team.start_taskloop(spec, [&done](const rt::LoopExecStats&) { done = true; });
  // Reentry while the async execution is in flight is not "nesting" — the
  // diagnostic must point at the un-driven start_taskloop.
  try {
    team.run_taskloop(spec);
    FAIL() << "expected reentry to throw";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("asynchronous"), std::string::npos)
        << e.what();
  }
  machine.engine().run();
  EXPECT_TRUE(done);
  // Once driven to completion, the team is reusable.
  team.run_taskloop(counting_loop(2, 32, seen));
}

TEST(Team, TrueNestedTaskloopNamesNesting) {
  rt::Machine machine(tiny_params(10));
  sched::BaselineWsScheduler sched;
  rt::Team team(machine, sched);
  // Re-enter run_taskloop from inside a demand function (a blocking run is
  // on the stack): the diagnostic must say "nested".
  auto inner_seen = std::make_shared<std::map<std::int64_t, int>>();
  const auto inner = counting_loop(7, 8, inner_seen);
  auto message = std::make_shared<std::string>();
  TaskloopSpec outer;
  outer.loop_id = 6;
  outer.name = "outer";
  outer.iterations = 16;
  outer.demand = [&team, inner, message](std::int64_t, std::int64_t) {
    if (message->empty()) {
      try {
        team.run_taskloop(inner);
      } catch (const std::logic_error& e) {
        *message = e.what();
      }
    }
    return rt::TaskDemand{};
  };
  team.run_taskloop(outer);
  EXPECT_NE(message->find("nested"), std::string::npos) << *message;
}

// --- task graphs ----------------------------------------------------------

// A graph whose demand function counts node executions.
rt::TaskGraphSpec counting_graph(rt::LoopId id,
                                 std::vector<std::vector<std::int32_t>> preds,
                                 std::shared_ptr<std::map<std::int64_t, int>> seen,
                                 double cycles = 1e5) {
  rt::TaskGraphSpec g;
  g.graph_id = id;
  g.name = "counting-graph";
  g.preds = std::move(preds);
  g.demand = [seen, cycles](std::int64_t b, std::int64_t) {
    (*seen)[b] += 1;
    rt::TaskDemand d;
    d.cpu_cycles = cycles;
    return d;
  };
  return g;
}

TEST(TaskGraph, ValidateRejectsBadGraphs) {
  auto seen = std::make_shared<std::map<std::int64_t, int>>();
  EXPECT_THROW(counting_graph(1, {}, seen).validate(), std::invalid_argument);
  // Out-of-range predecessor.
  EXPECT_THROW(counting_graph(1, {{3}}, seen).validate(), std::invalid_argument);
  // Self-dependency.
  EXPECT_THROW(counting_graph(1, {{0}}, seen).validate(), std::invalid_argument);
  // Duplicate predecessor.
  EXPECT_THROW(counting_graph(1, {{}, {0, 0}}, seen).validate(),
               std::invalid_argument);
  // Cycle: 1 -> 2 -> 1.
  EXPECT_THROW(counting_graph(1, {{}, {2}, {1}}, seen).validate(),
               std::invalid_argument);
  // Missing demand.
  rt::TaskGraphSpec g;
  g.preds = {{}};
  EXPECT_THROW(g.validate(), std::invalid_argument);
  // A valid diamond passes.
  EXPECT_NO_THROW(counting_graph(1, {{}, {0}, {0}, {1, 2}}, seen).validate());
}

TEST(TaskGraph, RunsEveryNodeExactlyOnce) {
  rt::Machine machine(tiny_params(11));
  sched::BaselineWsScheduler sched;
  rt::Team team(machine, sched);
  auto seen = std::make_shared<std::map<std::int64_t, int>>();
  // Diamond over 6 nodes: 0 -> {1,2,3,4} -> 5.
  const auto g = counting_graph(
      3, {{}, {0}, {0}, {0}, {0}, {1, 2, 3, 4}}, seen);
  const auto& stats = team.run_taskgraph(g);
  EXPECT_EQ(stats.tasks, 6);
  ASSERT_EQ(seen->size(), 6u);
  for (const auto& [node, count] : *seen) EXPECT_EQ(count, 1) << "node " << node;
}

TEST(TaskGraph, RespectsDependencyOrder) {
  rt::Machine machine(tiny_params(12));
  sched::BaselineWsScheduler sched;
  rt::Team team(machine, sched);
  // Record the order nodes execute (demand evaluation order is commit
  // order on the single host thread).
  auto order = std::make_shared<std::vector<std::int64_t>>();
  rt::TaskGraphSpec g;
  g.graph_id = 4;
  g.name = "chain-plus-fanout";
  // 0 -> 1 -> 2, and 0 -> 3 (free to run any time after 0).
  g.preds = {{}, {0}, {1}, {0}};
  g.demand = [order](std::int64_t b, std::int64_t) {
    order->push_back(b);
    rt::TaskDemand d;
    d.cpu_cycles = 5e4;
    return d;
  };
  team.run_taskgraph(g);
  ASSERT_EQ(order->size(), 4u);
  const auto pos = [&](std::int64_t n) {
    return std::find(order->begin(), order->end(), n) - order->begin();
  };
  EXPECT_LT(pos(0), pos(1));
  EXPECT_LT(pos(1), pos(2));
  EXPECT_LT(pos(0), pos(3));
}

TEST(TaskGraph, DeterministicDigestAcrossReruns) {
  const auto run = [](std::vector<std::vector<std::int32_t>> preds) {
    rt::Machine machine(tiny_params(21));
    machine.engine().set_digest_enabled(true);
    sched::BaselineWsScheduler sched;
    rt::Team team(machine, sched);
    auto seen = std::make_shared<std::map<std::int64_t, int>>();
    team.run_taskgraph(counting_graph(5, std::move(preds), seen));
    return machine.engine().event_digest();
  };
  const std::vector<std::vector<std::int32_t>> wide{{}, {}, {0}, {1}, {2, 3}};
  const std::vector<std::vector<std::int32_t>> chain{{}, {0}, {1}, {2}, {3}};
  // Same graph -> bit-identical event stream; different dependency
  // structure -> different release schedule -> different digest.
  EXPECT_EQ(run(wide), run(wide));
  EXPECT_NE(run(wide), run(chain));
}

TEST(TaskGraph, AsyncStartMirrorsBlockingRun) {
  rt::Machine machine(tiny_params(13));
  sched::BaselineWsScheduler sched;
  rt::Team team(machine, sched);
  auto seen = std::make_shared<std::map<std::int64_t, int>>();
  const auto g = counting_graph(6, {{}, {0}, {0}, {1, 2}}, seen);
  std::int64_t done_tasks = 0;
  team.start_taskgraph(g, [&done_tasks](const rt::LoopExecStats& s) {
    done_tasks = s.tasks;
  });
  // Reentry while in flight names the async state.
  try {
    team.run_taskgraph(g);
    FAIL() << "expected reentry to throw";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("asynchronous"), std::string::npos)
        << e.what();
  }
  machine.engine().run();
  EXPECT_EQ(done_tasks, 4);
  for (const auto& [node, count] : *seen) EXPECT_EQ(count, 1) << "node " << node;
}

}  // namespace
