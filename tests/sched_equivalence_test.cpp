// The digest-equivalence gate for the composable-scheduler refactor: every
// registry-built scheduler must reproduce the pre-refactor monolithic
// classes bit-for-bit. The golden table below was captured on the last
// commit before the refactor (run_once, paper machine, seed 42, 3
// timesteps, ILAN_METRICS=1) — both the event digest (every committed
// simulation event, including the overhead cost-model charges) and the
// metrics digest (the full observability registry). Equal digests <=>
// bit-identical simulations, so a pass here proves the policy decomposition
// changed nothing observable.
//
// If a deliberate behaviour change ever invalidates this table, recapture
// it with the snippet in the comment at the bottom and say so loudly in the
// commit message.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "harness.hpp"
#include "kernels/kernels.hpp"
#include "obs/env.hpp"
#include "rt/team.hpp"
#include "sched/registry.hpp"
#include "sched/schedulers.hpp"

namespace {

using namespace ilan;

struct Golden {
  const char* kernel;
  const char* spec;
  std::uint64_t event_digest;
  std::uint64_t metrics_digest;
};

// Event-digest column: captured pre-refactor and NEVER recaptured since —
// every change so far (policy decomposition, observability, fault layer,
// incremental resolves) has kept the committed event stream bit-identical.
// Metrics-digest column: recaptured when the incremental-resolve work
// extended SolverStats (coalesced/compactions/flows_reclaimed/delta_* now
// feed mem.solver.* counters, and the counter VALUES are the quantity that
// optimization changes — full_builds collapse into cap_updates/skipped).
// Recapture tool: bench/dump_digests (see the recipe at the bottom).
constexpr Golden kGolden[] = {
    {"ft", "baseline", 0x352f2e1598c4d673ull, 0xaf531c4ba51cf644ull},
    {"ft", "work-sharing", 0x57dfe0b38edc8da2ull, 0xfbfdce9c8407b4d4ull},
    {"ft", "ilan", 0x77267bca4f464839ull, 0xdbd41ae0029de667ull},
    {"ft", "ilan-nomold", 0xac926d34b9cdaf29ull, 0x4850231aa0df13eeull},
    {"bt", "baseline", 0x8623cc7d3cf0a422ull, 0x6f73037b26f7e290ull},
    {"bt", "work-sharing", 0x8f75f76abf1be48dull, 0x5f4c65f066e4b287ull},
    {"bt", "ilan", 0x0a61d49051a204deull, 0x8ec965f5c50f617dull},
    {"bt", "ilan-nomold", 0xeca86cda89c9123dull, 0x2f4f732e63f73798ull},
    {"cg", "baseline", 0xb5269114d03643c8ull, 0x9656b32127a098f8ull},
    {"cg", "work-sharing", 0x019073fde28ab125ull, 0x545ce5396bc90de3ull},
    {"cg", "ilan", 0xf59a52a6ed87614eull, 0xc7c80f45b28fc21aull},
    {"cg", "ilan-nomold", 0x27ea69d1e4a8ee8eull, 0x86eb7b4e416bb011ull},
    {"lu", "baseline", 0x78bf556442e9636full, 0xe5a947f4025c840full},
    {"lu", "work-sharing", 0x971bd480789c0e02ull, 0xca817cad410838f5ull},
    {"lu", "ilan", 0x2e5e7338383939f4ull, 0xcad991981c887699ull},
    {"lu", "ilan-nomold", 0x60fd46aa7f068719ull, 0x42e683e82fb1d5beull},
    {"sp", "baseline", 0x02f5f0b5c81def7bull, 0x0c3bdbef9fa5c58eull},
    {"sp", "work-sharing", 0x01f467aeeca95dafull, 0xc68fb637c6c91d2full},
    {"sp", "ilan", 0xb7efc125ce352ce8ull, 0x76bfb3cddf3c9798ull},
    {"sp", "ilan-nomold", 0x5674fed27a691c96ull, 0xecbf6a1c2a5f997cull},
    {"matmul", "baseline", 0xf612162ea65c9a5full, 0xdf91f7f42964e112ull},
    {"matmul", "work-sharing", 0x1621402ca73cfd2dull, 0xdf310c7722f39b38ull},
    {"matmul", "ilan", 0x878bc2a68e9e3657ull, 0xee907f221a2d1070ull},
    {"matmul", "ilan-nomold", 0x6c965d60f7cbf4f2ull, 0x277c341424c550aeull},
    {"lulesh", "baseline", 0x4149864b36fe00d1ull, 0xbff1d279595f0cc5ull},
    {"lulesh", "work-sharing", 0x362d5f59d2decfd5ull, 0x4afc90d5f7dec552ull},
    {"lulesh", "ilan", 0x141d2132e152c13eull, 0x18d80010baa8c285ull},
    {"lulesh", "ilan-nomold", 0x2ad2b7473eb6f2efull, 0xc644b91257a50c0full},
};

kernels::KernelOptions golden_opts() {
  kernels::KernelOptions opts;
  opts.timesteps = 3;
  return opts;
}

TEST(SchedEquivalence, RegistrySchedulersReproducePreRefactorDigests) {
  const obs::ScopedEnv metrics_env("ILAN_METRICS", "1");
  const obs::ScopedEnv json_env("ILAN_BENCH_JSON", "0");
  for (const Golden& g : kGolden) {
    const auto r = bench::run_once(g.kernel, g.spec, /*seed=*/42, golden_opts());
    ASSERT_TRUE(r.ok()) << g.kernel << " / " << g.spec << ": " << r.error;
    EXPECT_EQ(r.event_digest, g.event_digest) << g.kernel << " / " << g.spec;
    EXPECT_EQ(r.metrics_digest, g.metrics_digest) << g.kernel << " / " << g.spec;
  }
}

// The explicit registry spelling of the no-mold ablation must be the same
// scheduler as the "ilan-nomold" shorthand, digest for digest.
TEST(SchedEquivalence, MoldOffSpecMatchesNoMoldShorthand) {
  const obs::ScopedEnv metrics_env("ILAN_METRICS", "1");
  const obs::ScopedEnv json_env("ILAN_BENCH_JSON", "0");
  const auto a = bench::run_once("cg", "ilan-nomold", 42, golden_opts());
  const auto b = bench::run_once("cg", "ilan:mold=off", 42, golden_opts());
  EXPECT_EQ(a.event_digest, b.event_digest);
  EXPECT_EQ(a.metrics_digest, b.metrics_digest);
}

// Direct ManualScheduler goldens (fixed configs are not part of run_once's
// scheduler table, so they get their own capture path).
std::uint64_t run_manual(const std::string& kernel, rt::LoopConfig cfg,
                         core::IlanParams p) {
  rt::Machine machine(bench::paper_machine(42));
  machine.engine().set_digest_enabled(true);
  sched::ManualScheduler scheduler(cfg, p);
  rt::Team team(machine, scheduler);
  const auto prog = kernels::make_kernel(kernel, machine, golden_opts());
  (void)prog.run(team);
  return machine.engine().event_digest();
}

TEST(SchedEquivalence, ManualSchedulerReproducesPreRefactorDigests) {
  {
    rt::LoopConfig cfg;  // all threads, default (full) policy
    EXPECT_EQ(run_manual("cg", cfg, {}), 0xd1a93a37a76a780aull);
  }
  {
    rt::LoopConfig cfg;
    cfg.num_threads = 16;
    cfg.steal_policy = rt::StealPolicy::kFull;
    core::IlanParams p;
    p.stealable_fraction = 0.25;
    EXPECT_EQ(run_manual("cg", cfg, p), 0xfb616336af65d336ull);
  }
}

// The registry's "manual" spec builds the same scheduler as the facade.
TEST(SchedEquivalence, ManualSpecMatchesManualFacade) {
  rt::LoopConfig cfg;
  cfg.num_threads = 16;
  cfg.steal_policy = rt::StealPolicy::kFull;
  core::IlanParams p;
  p.stealable_fraction = 0.25;
  const auto facade_spec = sched::ManualScheduler(cfg, p).introspect().spec;
  EXPECT_EQ(sched::resolve_spec("manual:threads=16,policy=full,stealable=0.25"),
            facade_spec);

  rt::Machine machine(bench::paper_machine(42));
  machine.engine().set_digest_enabled(true);
  const auto scheduler =
      sched::make_scheduler("manual:threads=16,policy=full,stealable=0.25");
  rt::Team team(machine, *scheduler);
  const auto prog = kernels::make_kernel("cg", machine, golden_opts());
  (void)prog.run(team);
  EXPECT_EQ(machine.engine().event_digest(), 0xfb616336af65d336ull);
}

}  // namespace

// Recapture recipe (only after a DELIBERATE behaviour change): build and
// run bench/dump_digests — it prints kGolden rows in source form for the
// exact capture configuration (paper machine, seed 42, 3 timesteps,
// ILAN_METRICS=1 ILAN_BENCH_JSON=0) plus the two manual-scheduler goldens.
// Paste over the table and say so loudly in the commit message. An
// event-digest change means the SIMULATION changed — that column is the
// one this gate exists to defend; treat a recapture of it as a red flag.
