// Serving-layer tests: deterministic traffic generation, node carving,
// breaker state machine, percentile/fairness math, and end-to-end Server
// runs (nominal SLO health and overload engagement).
#include <gtest/gtest.h>

#include <set>

#include "serve/breaker.hpp"
#include "serve/server.hpp"
#include "serve/traffic.hpp"
#include "topo/presets.hpp"

namespace {

using namespace ilan;

rt::MachineParams machine_params(std::uint64_t seed) {
  rt::MachineParams p;
  p.spec = topo::presets::zen4_epyc9354_2s();
  p.seed = seed;
  return p;
}

TEST(Traffic, GenerationIsAPureFunctionOfSpecAndSeed) {
  const auto spec = serve::make_scenario("nominal");
  const auto a = serve::generate(spec, 42);
  const auto b = serve::generate(spec, 42);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tenant, b[i].tenant) << i;
    EXPECT_EQ(a[i].cls, b[i].cls) << i;
    EXPECT_EQ(a[i].arrival, b[i].arrival) << i;
    EXPECT_EQ(a[i].deadline, b[i].deadline) << i;
  }
  const auto c = serve::generate(spec, 43);
  bool any_diff = a.size() != c.size();
  for (std::size_t i = 0; !any_diff && i < a.size(); ++i) {
    any_diff = a[i].arrival != c[i].arrival;
  }
  EXPECT_TRUE(any_diff) << "different seeds produced identical schedules";
}

TEST(Traffic, ScheduleIsSortedWithDenseIdsAndDeadlines) {
  const auto spec = serve::make_scenario("burst");
  const auto reqs = serve::generate(spec, 7);
  ASSERT_FALSE(reqs.empty());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(reqs[i].id, static_cast<int>(i));
    EXPECT_GT(reqs[i].deadline, reqs[i].arrival);
    if (i > 0) EXPECT_GE(reqs[i].arrival, reqs[i - 1].arrival);
    EXPECT_GE(reqs[i].tenant, 0);
    EXPECT_LT(reqs[i].tenant, static_cast<int>(spec.tenants.size()));
    EXPECT_GE(reqs[i].cls, 0);
    EXPECT_LT(reqs[i].cls, static_cast<int>(spec.classes.size()));
  }
}

TEST(Traffic, MaxRequestsTruncatesTheMergedSchedule) {
  auto spec = serve::make_scenario("overload");
  spec.max_requests = 10;
  const auto reqs = serve::generate(spec, 42);
  EXPECT_EQ(reqs.size(), 10u);
}

TEST(Traffic, AddingATenantDoesNotPerturbExistingSubstreams) {
  auto spec = serve::make_scenario("nominal");
  spec.max_requests = 1000000;
  const auto before = serve::generate(spec, 42);
  spec.tenants.push_back({"gamma", 25.0, 1.0, ""});
  const auto after = serve::generate(spec, 42);
  // Every alpha/beta request survives with identical timing; gamma's
  // stream interleaves without shifting them.
  std::vector<sim::SimTime> old_arrivals, new_arrivals;
  for (const auto& r : before) old_arrivals.push_back(r.arrival);
  for (const auto& r : after) {
    if (r.tenant < 2) new_arrivals.push_back(r.arrival);
  }
  EXPECT_EQ(old_arrivals, new_arrivals);
}

TEST(Traffic, UnknownScenarioThrows) {
  EXPECT_THROW((void)serve::make_scenario("no-such"), std::invalid_argument);
}

TEST(Breaker, TripsAfterThresholdConsecutiveFailures) {
  serve::Breaker b(3, sim::from_ms(10));
  EXPECT_TRUE(b.allow(0));
  b.on_failure(0);
  b.on_failure(0);
  EXPECT_EQ(b.state(0), serve::Breaker::State::kClosed);
  EXPECT_TRUE(b.allow(0));
  b.on_failure(0);  // third consecutive: trip
  EXPECT_EQ(b.state(0), serve::Breaker::State::kOpen);
  EXPECT_FALSE(b.allow(0));
  EXPECT_EQ(b.trips(), 1);
}

TEST(Breaker, SuccessResetsTheConsecutiveCount) {
  serve::Breaker b(2, sim::from_ms(10));
  b.on_failure(0);
  b.on_success(0);
  b.on_failure(0);
  EXPECT_EQ(b.state(0), serve::Breaker::State::kClosed);
  EXPECT_EQ(b.trips(), 0);
}

TEST(Breaker, HalfOpenAdmitsExactlyOneProbe) {
  serve::Breaker b(1, sim::from_ms(10));
  b.on_failure(0);  // trip
  const sim::SimTime after = sim::from_ms(10);
  EXPECT_EQ(b.state(after), serve::Breaker::State::kHalfOpen);
  EXPECT_TRUE(b.allow(after));    // the probe
  EXPECT_FALSE(b.allow(after));   // everything else rejected
  b.on_success(after);
  EXPECT_EQ(b.state(after), serve::Breaker::State::kClosed);
  EXPECT_TRUE(b.allow(after));
}

TEST(Breaker, FailedProbeDoublesTheCooldownUpToACap) {
  serve::Breaker b(1, sim::from_ms(10));
  sim::SimTime now = 0;
  b.on_failure(now);  // trip #1, cooldown 10ms
  EXPECT_EQ(b.open_until(), sim::from_ms(10));
  now = b.open_until();
  EXPECT_TRUE(b.allow(now));
  b.on_failure(now);  // probe fails: cooldown 20ms
  EXPECT_EQ(b.open_until(), now + sim::from_ms(20));
  now = b.open_until();
  EXPECT_TRUE(b.allow(now));
  b.on_failure(now);  // 40ms
  EXPECT_EQ(b.open_until(), now + sim::from_ms(40));
  now = b.open_until();
  EXPECT_TRUE(b.allow(now));
  b.on_failure(now);  // 80ms == 8x cap
  EXPECT_EQ(b.open_until(), now + sim::from_ms(80));
  now = b.open_until();
  EXPECT_TRUE(b.allow(now));
  b.on_failure(now);  // capped: stays 80ms
  EXPECT_EQ(b.open_until(), now + sim::from_ms(80));
  EXPECT_EQ(b.trips(), 5);
  // Recovery restores the base cadence.
  now = b.open_until();
  EXPECT_TRUE(b.allow(now));
  b.on_success(now);
  b.on_failure(now);
  EXPECT_EQ(b.open_until(), now + sim::from_ms(10));
}

TEST(Percentile, NearestRankOnSmallSamples) {
  EXPECT_EQ(serve::percentile({}, 0.99), 0.0);
  EXPECT_EQ(serve::percentile({5.0}, 0.5), 5.0);
  EXPECT_EQ(serve::percentile({5.0}, 0.999), 5.0);
  std::vector<double> s = {4.0, 1.0, 3.0, 2.0};
  EXPECT_EQ(serve::percentile(s, 0.50), 2.0);
  EXPECT_EQ(serve::percentile(s, 0.75), 3.0);
  EXPECT_EQ(serve::percentile(s, 0.99), 4.0);
}

TEST(ServeReport, JainFairnessOverWeightNormalizedGoodput) {
  serve::ServeReport r;
  r.duration_s = 1.0;
  serve::TenantStats a;
  a.name = "a";
  a.weight = 1.0;
  a.offered = a.ok = 10;
  serve::TenantStats b = a;
  b.name = "b";
  r.tenants = {a, b};
  r.finalize();
  EXPECT_NEAR(r.fairness, 1.0, 1e-12);
  // Starve one tenant: fairness drops below 1.
  r.tenants[1].ok = 1;
  r.finalize();
  EXPECT_LT(r.fairness, 0.8);
  EXPECT_GT(r.fairness, 0.0);
}

TEST(Server, CarvesNodesByWeightWithDisjointMasks) {
  rt::Machine machine(machine_params(42));
  auto spec = serve::make_scenario("burst");  // weights 2/1/1 over 8 nodes
  spec.max_requests = 4;
  serve::Server server(machine, spec, serve::ServeParams{}, "ilan");
  const auto rep = server.run();
  ASSERT_EQ(rep.tenants.size(), 3u);
  std::uint64_t seen = 0;
  const std::vector<int> want_nodes = {4, 2, 2};
  for (std::size_t i = 0; i < rep.tenants.size(); ++i) {
    const std::uint64_t bits = rep.tenants[i].carve_bits;
    ASSERT_NE(bits, 0u);
    EXPECT_EQ(seen & bits, 0u) << "carves overlap";
    seen |= bits;
    EXPECT_EQ(__builtin_popcountll(bits), want_nodes[i]) << rep.tenants[i].name;
  }
  EXPECT_EQ(__builtin_popcountll(seen), 8);
}

TEST(Server, CarveScalesToSixteenNodeQuad) {
  // Same weights (2/1/1) over the 16-node quad machine: the carve must use
  // every node of the wider mask, still disjoint, split 8/4/4.
  rt::MachineParams p;
  p.spec = topo::presets::quad_4s16n256c();
  p.noise.enabled = false;
  p.seed = 42;
  rt::Machine machine(p);
  auto spec = serve::make_scenario("burst");
  spec.max_requests = 4;
  serve::Server server(machine, spec, serve::ServeParams{}, "ilan");
  const auto rep = server.run();
  ASSERT_EQ(rep.tenants.size(), 3u);
  std::uint64_t seen = 0;
  const std::vector<int> want_nodes = {8, 4, 4};
  for (std::size_t i = 0; i < rep.tenants.size(); ++i) {
    const std::uint64_t bits = rep.tenants[i].carve_bits;
    ASSERT_NE(bits, 0u);
    EXPECT_EQ(seen & bits, 0u) << "carves overlap";
    seen |= bits;
    EXPECT_EQ(__builtin_popcountll(bits), want_nodes[i]) << rep.tenants[i].name;
  }
  EXPECT_EQ(__builtin_popcountll(seen), 16);
}

TEST(Server, MoreTenantsThanNodesThrows) {
  rt::Machine machine(machine_params(42));
  auto spec = serve::make_scenario("nominal");
  for (int i = 0; i < 8; ++i) {
    spec.tenants.push_back({"t" + std::to_string(i), 10.0, 1.0, ""});
  }
  EXPECT_THROW(serve::Server(machine, spec, serve::ServeParams{}, "ilan"),
               std::invalid_argument);
}

TEST(Server, NominalTrafficCompletesWithinDeadlines) {
  rt::Machine machine(machine_params(42));
  const auto spec = serve::make_scenario("nominal");
  serve::Server server(machine, spec, serve::ServeParams{}, "ilan");
  const auto rep = server.run();
  EXPECT_GT(rep.offered, 0);
  EXPECT_GT(rep.ok, 0);
  EXPECT_LE(rep.shed_rate, 0.05);
  EXPECT_EQ(rep.tenant_trips + rep.node_trips, 0);
  EXPECT_GT(rep.goodput_rps, 0.0);
  EXPECT_GT(rep.p50_s, 0.0);
  EXPECT_LE(rep.p50_s, rep.p99_s);
  EXPECT_LE(rep.p99_s, rep.p999_s);
  // Conservation: every offered request reached exactly one terminal
  // outcome (ok / miss / expired / dropped).
  EXPECT_EQ(rep.offered, rep.ok + rep.deadline_miss + rep.expired + rep.dropped);
}

TEST(Server, ReportsAreAPureFunctionOfTheSeed) {
  auto run = [](std::uint64_t seed) {
    rt::Machine machine(machine_params(seed));
    machine.engine().set_digest_enabled(true);
    serve::Server server(machine, serve::make_scenario("burst"),
                         serve::ServeParams{}, "ilan");
    const auto rep = server.run();
    return std::make_tuple(machine.engine().event_digest(),
                           machine.engine().events_fired(), rep.ok, rep.dropped,
                           rep.retries, rep.p99_s);
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(std::get<0>(run(42)), std::get<0>(run(43)));
}

TEST(Server, OverloadShedsAndTripsBreakers) {
  rt::Machine machine(machine_params(42));
  const auto spec = serve::make_scenario("overload");
  serve::Server server(machine, spec, serve::ServeParams{}, "ilan");
  const auto rep = server.run();
  EXPECT_GT(rep.shed_queue + rep.shed_slo + rep.shed_breaker, 0);
  EXPECT_GT(rep.tenant_trips, 0);
  EXPECT_GT(rep.shed_breaker, 0);  // open breakers actually rejected traffic
  EXPECT_GT(rep.retries, 0);
  EXPECT_GT(rep.dropped, 0);
  // Even under overload the feasible class keeps completing.
  EXPECT_GT(rep.ok, 0);
  EXPECT_EQ(rep.offered, rep.ok + rep.deadline_miss + rep.expired + rep.dropped);
}

TEST(Server, RunIsOneShot) {
  rt::Machine machine(machine_params(42));
  auto spec = serve::make_scenario("nominal");
  spec.max_requests = 4;
  serve::Server server(machine, spec, serve::ServeParams{}, "ilan");
  (void)server.run();
  EXPECT_THROW((void)server.run(), std::logic_error);
}

TEST(Server, InvalidParamsThrow) {
  rt::Machine machine(machine_params(42));
  const auto spec = serve::make_scenario("nominal");
  serve::ServeParams p;
  p.queue_cap = 0;
  EXPECT_THROW(serve::Server(machine, spec, p, "ilan"), std::invalid_argument);
  p = serve::ServeParams{};
  p.ewma_alpha = 1.5;
  EXPECT_THROW(serve::Server(machine, spec, p, "ilan"), std::invalid_argument);
}

}  // namespace
