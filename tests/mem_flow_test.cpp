// FlowNetwork (weighted max-min fairness) — unit and property tests.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mem/flow_network.hpp"
#include "sim/rng.hpp"

namespace {

using ilan::mem::FlowNetwork;

TEST(FlowNetwork, SingleFlowGetsItsCap) {
  FlowNetwork net;
  const auto c = net.add_constraint(100.0);
  const FlowNetwork::ConstraintIdx cs[] = {c};
  net.add_flow(30.0, 1.0, cs);
  net.solve();
  EXPECT_DOUBLE_EQ(net.rate(0), 30.0);
}

TEST(FlowNetwork, SingleFlowLimitedByConstraint) {
  FlowNetwork net;
  const auto c = net.add_constraint(20.0);
  const FlowNetwork::ConstraintIdx cs[] = {c};
  net.add_flow(30.0, 1.0, cs);
  net.solve();
  EXPECT_DOUBLE_EQ(net.rate(0), 20.0);
}

TEST(FlowNetwork, EqualFlowsShareEqually) {
  FlowNetwork net;
  const auto c = net.add_constraint(90.0);
  const FlowNetwork::ConstraintIdx cs[] = {c};
  for (int i = 0; i < 3; ++i) net.add_flow(100.0, 1.0, cs);
  net.solve();
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(net.rate(i), 30.0, 1e-9);
}

TEST(FlowNetwork, CappedFlowReleasesResidualToOthers) {
  FlowNetwork net;
  const auto c = net.add_constraint(90.0);
  const FlowNetwork::ConstraintIdx cs[] = {c};
  net.add_flow(10.0, 1.0, cs);   // capped below fair share
  net.add_flow(100.0, 1.0, cs);  // takes the released residual
  net.solve();
  EXPECT_NEAR(net.rate(0), 10.0, 1e-9);
  EXPECT_NEAR(net.rate(1), 80.0, 1e-9);
}

TEST(FlowNetwork, WeightConsumesMoreCapacityPerRate) {
  FlowNetwork net;
  const auto c = net.add_constraint(90.0);
  const FlowNetwork::ConstraintIdx cs[] = {c};
  net.add_flow(1000.0, 1.0, cs);
  net.add_flow(1000.0, 2.0, cs);  // remote-like: 2x occupancy
  net.solve();
  // Max-min on rates: both get the same rate r with r + 2r = 90.
  EXPECT_NEAR(net.rate(0), 30.0, 1e-9);
  EXPECT_NEAR(net.rate(1), 30.0, 1e-9);
}

TEST(FlowNetwork, MultiConstraintBottleneck) {
  FlowNetwork net;
  const auto wide = net.add_constraint(1000.0);
  const auto narrow = net.add_constraint(10.0);
  const FlowNetwork::ConstraintIdx both[] = {wide, narrow};
  const FlowNetwork::ConstraintIdx only_wide[] = {wide};
  net.add_flow(500.0, 1.0, both);
  net.add_flow(500.0, 1.0, only_wide);
  net.solve();
  EXPECT_NEAR(net.rate(0), 10.0, 1e-9);   // pinned by narrow
  EXPECT_NEAR(net.rate(1), 500.0, 1e-9);  // its cap; wide has room
}

TEST(FlowNetwork, FlowWithNoConstraintsGetsCap) {
  FlowNetwork net;
  net.add_flow(17.0, 1.0, {});
  net.solve();
  EXPECT_DOUBLE_EQ(net.rate(0), 17.0);
}

TEST(FlowNetwork, ClearAllowsReuse) {
  FlowNetwork net;
  const auto c = net.add_constraint(10.0);
  const FlowNetwork::ConstraintIdx cs[] = {c};
  net.add_flow(100.0, 1.0, cs);
  net.solve();
  net.clear();
  EXPECT_EQ(net.num_flows(), 0);
  EXPECT_EQ(net.num_constraints(), 0);
  const auto c2 = net.add_constraint(50.0);
  const FlowNetwork::ConstraintIdx cs2[] = {c2};
  net.add_flow(100.0, 1.0, cs2);
  net.solve();
  EXPECT_DOUBLE_EQ(net.rate(0), 50.0);
}

TEST(FlowNetwork, RejectsBadInput) {
  FlowNetwork net;
  EXPECT_THROW(net.add_constraint(0.0), std::invalid_argument);
  EXPECT_THROW(net.add_constraint(-5.0), std::invalid_argument);
  EXPECT_THROW(net.add_flow(0.0, 1.0, {}), std::invalid_argument);
  EXPECT_THROW(net.add_flow(1.0, 0.0, {}), std::invalid_argument);
  const FlowNetwork::ConstraintIdx bad[] = {7};
  EXPECT_THROW(net.add_flow(1.0, 1.0, bad), std::out_of_range);
}

// ---------------------------------------------------------------------------
// Property tests on random instances: feasibility (no constraint exceeded),
// non-wastefulness (every flow is blocked by something), and the max-min
// property (no flow can be raised without lowering a slower-or-equal flow).
// ---------------------------------------------------------------------------

struct RandomCase {
  std::uint64_t seed;
};

class FlowNetworkProperty : public ::testing::TestWithParam<RandomCase> {};

TEST_P(FlowNetworkProperty, FeasibleNonWastefulMaxMin) {
  ilan::sim::Xoshiro256ss rng(GetParam().seed);
  FlowNetwork net;

  const int nc = 2 + static_cast<int>(rng.below(6));
  const int nf = 1 + static_cast<int>(rng.below(40));
  std::vector<double> cap(static_cast<std::size_t>(nc));
  for (int c = 0; c < nc; ++c) {
    cap[static_cast<std::size_t>(c)] = rng.uniform(10.0, 200.0);
    net.add_constraint(cap[static_cast<std::size_t>(c)]);
  }
  std::vector<double> fcap(static_cast<std::size_t>(nf));
  std::vector<double> weight(static_cast<std::size_t>(nf));
  std::vector<std::vector<FlowNetwork::ConstraintIdx>> memb(static_cast<std::size_t>(nf));
  for (int f = 0; f < nf; ++f) {
    fcap[static_cast<std::size_t>(f)] = rng.uniform(1.0, 50.0);
    weight[static_cast<std::size_t>(f)] = rng.uniform(1.0, 3.0);
    const int k = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(std::min(nc, 3))));
    std::vector<FlowNetwork::ConstraintIdx> cs;
    for (int j = 0; j < k; ++j) {
      const auto c = static_cast<FlowNetwork::ConstraintIdx>(rng.below(static_cast<std::uint64_t>(nc)));
      if (std::find(cs.begin(), cs.end(), c) == cs.end()) cs.push_back(c);
    }
    memb[static_cast<std::size_t>(f)] = cs;
    net.add_flow(fcap[static_cast<std::size_t>(f)], weight[static_cast<std::size_t>(f)], cs);
  }
  net.solve();

  // Feasibility: weighted usage within capacity.
  std::vector<double> used(static_cast<std::size_t>(nc), 0.0);
  for (int f = 0; f < nf; ++f) {
    EXPECT_GT(net.rate(f), 0.0);
    EXPECT_LE(net.rate(f), fcap[static_cast<std::size_t>(f)] + 1e-6);
    for (const auto c : memb[static_cast<std::size_t>(f)]) {
      used[static_cast<std::size_t>(c)] += net.rate(f) * weight[static_cast<std::size_t>(f)];
    }
  }
  for (int c = 0; c < nc; ++c) {
    EXPECT_LE(used[static_cast<std::size_t>(c)], cap[static_cast<std::size_t>(c)] + 1e-6);
  }

  // Non-wastefulness + max-min: every flow is either at its own cap or in a
  // constraint that is saturated; and in that saturated constraint it has
  // the maximal rate among... (weighted max-min: all unfrozen freeze at the
  // same level, so any flow below another flow's rate in the same saturated
  // constraint must be capped elsewhere).
  for (int f = 0; f < nf; ++f) {
    if (net.rate(f) >= fcap[static_cast<std::size_t>(f)] - 1e-6) continue;
    bool saturated_somewhere = false;
    for (const auto c : memb[static_cast<std::size_t>(f)]) {
      if (used[static_cast<std::size_t>(c)] >= cap[static_cast<std::size_t>(c)] - 1e-6) {
        saturated_somewhere = true;
      }
    }
    EXPECT_TRUE(saturated_somewhere) << "flow " << f << " blocked by nothing";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, FlowNetworkProperty,
                         ::testing::Values(RandomCase{1}, RandomCase{2}, RandomCase{3},
                                           RandomCase{4}, RandomCase{5}, RandomCase{6},
                                           RandomCase{7}, RandomCase{8}, RandomCase{9},
                                           RandomCase{10}, RandomCase{11},
                                           RandomCase{12}),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param.seed);
                         });

// ---------------------------------------------------------------------------
// Persistent-network structural transitions: tombstoning, compact-equivalent
// rebuilds, and the exact-parity contract (a solve on the persistent network
// is bit-identical to a fresh build over the live flows in the same order).
// ---------------------------------------------------------------------------

TEST(FlowNetwork, RemoveFlowZeroesRateAndKeepsIndices) {
  FlowNetwork net;
  const auto c = net.add_constraint(90.0);
  const FlowNetwork::ConstraintIdx cs[] = {c};
  for (int i = 0; i < 3; ++i) net.add_flow(100.0, 1.0, cs);
  net.solve();
  net.remove_flow(1);
  EXPECT_TRUE(net.dead(1));
  EXPECT_FALSE(net.dead(0));
  EXPECT_EQ(net.num_flows(), 3);
  EXPECT_EQ(net.live_flows(), 2u);
  EXPECT_EQ(net.dead_flows(), 1u);
  EXPECT_DOUBLE_EQ(net.rate(1), 0.0);
  net.solve();
  // The survivors split the freed share; the tombstone stays at zero.
  EXPECT_NEAR(net.rate(0), 45.0, 1e-9);
  EXPECT_DOUBLE_EQ(net.rate(1), 0.0);
  EXPECT_NEAR(net.rate(2), 45.0, 1e-9);
}

TEST(FlowNetwork, RemoveFlowErrors) {
  FlowNetwork net;
  net.add_flow(10.0, 1.0, {});
  net.remove_flow(0);
  EXPECT_THROW(net.remove_flow(0), std::logic_error);       // double tombstone
  EXPECT_THROW(net.remove_flow(5), std::out_of_range);      // no such flow
  EXPECT_THROW(net.set_flow_cap(0, 1.0), std::invalid_argument);  // dead flow
}

// The bit-for-bit contract the incremental resolver rests on: after any
// add/remove sequence, solving the persistent network equals solving a
// from-scratch network holding only the live flows, in append order, with
// exact (not approximate) rate equality.
TEST(FlowNetwork, PersistentSolveMatchesFreshBuildBitForBit) {
  ilan::sim::Xoshiro256ss rng(2024);
  for (int round = 0; round < 20; ++round) {
    FlowNetwork persistent;
    const int nc = 2 + static_cast<int>(rng.below(5));
    std::vector<double> cap(static_cast<std::size_t>(nc));
    for (int c = 0; c < nc; ++c) {
      cap[static_cast<std::size_t>(c)] = rng.uniform(10.0, 200.0);
      persistent.add_constraint(cap[static_cast<std::size_t>(c)]);
    }
    const int nf = 4 + static_cast<int>(rng.below(30));
    struct F {
      double cap, weight;
      std::vector<FlowNetwork::ConstraintIdx> cs;
      bool dead = false;
    };
    std::vector<F> flows;
    for (int f = 0; f < nf; ++f) {
      F fl;
      fl.cap = rng.uniform(1.0, 50.0);
      fl.weight = rng.uniform(1.0, 3.0);
      const int k = 1 + static_cast<int>(rng.below(2));
      for (int j = 0; j < k; ++j) {
        const auto c = static_cast<FlowNetwork::ConstraintIdx>(
            rng.below(static_cast<std::uint64_t>(nc)));
        if (std::find(fl.cs.begin(), fl.cs.end(), c) == fl.cs.end()) fl.cs.push_back(c);
      }
      persistent.add_flow(fl.cap, fl.weight, fl.cs);
      flows.push_back(fl);
    }
    // Tombstone a random subset.
    for (int f = 0; f < nf; ++f) {
      if (rng.below(3) == 0) {
        persistent.remove_flow(f);
        flows[static_cast<std::size_t>(f)].dead = true;
      }
    }
    persistent.solve();

    FlowNetwork fresh;
    for (int c = 0; c < nc; ++c) fresh.add_constraint(cap[static_cast<std::size_t>(c)]);
    std::vector<int> live_of;  // fresh index -> persistent index
    for (int f = 0; f < nf; ++f) {
      const auto& fl = flows[static_cast<std::size_t>(f)];
      if (fl.dead) continue;
      fresh.add_flow(fl.cap, fl.weight, fl.cs);
      live_of.push_back(f);
    }
    fresh.solve();
    for (std::size_t i = 0; i < live_of.size(); ++i) {
      // Exact equality on purpose: tombstone exclusion must not perturb a
      // single bit of any surviving flow's rate.
      EXPECT_EQ(fresh.rate(static_cast<FlowNetwork::FlowIdx>(i)),
                persistent.rate(live_of[i]))
          << "round " << round << " live flow " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Delta re-solving: journal replay must be bit-identical to a full solve
// across randomized capacity perturbation sequences — including ones that
// diverge mid-journal — and must actually reuse rounds when updates are
// benign.
// ---------------------------------------------------------------------------

TEST(FlowNetwork, DeltaSolveFallsBackWithoutJournal) {
  FlowNetwork net;
  const auto c = net.add_constraint(50.0);
  const FlowNetwork::ConstraintIdx cs[] = {c};
  net.add_flow(100.0, 1.0, cs);
  // Recording off: solve_delta() degrades to a full solve.
  const auto r = net.solve_delta();
  EXPECT_TRUE(r.full_fallback);
  EXPECT_DOUBLE_EQ(net.rate(0), 50.0);

  net.set_record(true);
  net.solve();
  // Structural edits invalidate the journal; the next delta is a full solve.
  net.add_flow(100.0, 1.0, cs);
  EXPECT_FALSE(net.journal_valid());
  const auto r2 = net.solve_delta();
  EXPECT_TRUE(r2.full_fallback);
  EXPECT_NEAR(net.rate(0), 25.0, 1e-9);
}

TEST(FlowNetwork, DeltaSolveWithNoUpdatesReusesEveryRound) {
  FlowNetwork net;
  net.set_record(true);
  const auto c = net.add_constraint(50.0);
  const FlowNetwork::ConstraintIdx cs[] = {c};
  net.add_flow(100.0, 1.0, cs);
  net.add_flow(10.0, 1.0, cs);
  net.solve();
  const auto r = net.solve_delta();
  EXPECT_FALSE(r.full_fallback);
  EXPECT_EQ(r.rounds_reused, r.rounds_total);
  EXPECT_GT(r.rounds_total, 0);
}

TEST(FlowNetwork, DirtySurvivesJournalInvalidation) {
  FlowNetwork net;
  net.set_record(true);
  const auto c = net.add_constraint(50.0);
  const FlowNetwork::ConstraintIdx cs[] = {c};
  net.add_flow(100.0, 1.0, cs);
  net.add_flow(100.0, 1.0, cs);
  net.solve();
  net.set_capacity(c, 60.0);
  net.remove_flow(1);  // invalidates the journal, must NOT drop the cap dirt
  EXPECT_TRUE(net.dirty());
  const auto r = net.solve_delta();
  EXPECT_TRUE(r.full_fallback);
  EXPECT_NEAR(net.rate(0), 60.0, 1e-9);
}

TEST(FlowNetwork, RandomizedDeltaMatchesFullSolveExactly) {
  ilan::sim::Xoshiro256ss rng(777);
  int divergences = 0;
  int reuses = 0;
  for (int round = 0; round < 10; ++round) {
    FlowNetwork net;
    net.set_record(true);
    const int nc = 2 + static_cast<int>(rng.below(5));
    std::vector<FlowNetwork::ConstraintIdx> cons;
    for (int c = 0; c < nc; ++c) cons.push_back(net.add_constraint(rng.uniform(20.0, 200.0)));
    const int nf = 4 + static_cast<int>(rng.below(24));
    for (int f = 0; f < nf; ++f) {
      std::vector<FlowNetwork::ConstraintIdx> cs;
      const int k = 1 + static_cast<int>(rng.below(2));
      for (int j = 0; j < k; ++j) {
        const auto c = cons[rng.below(static_cast<std::uint64_t>(nc))];
        if (std::find(cs.begin(), cs.end(), c) == cs.end()) cs.push_back(c);
      }
      net.add_flow(rng.uniform(1.0, 50.0), rng.uniform(1.0, 3.0), cs);
    }
    net.solve();
    for (int step = 0; step < 25; ++step) {
      // Mix benign wobbles (replay should survive) with violent swings
      // (replay should diverge); both must land on the full solve's rates.
      const double scale = step % 3 == 0 ? rng.uniform(0.3, 3.0) : rng.uniform(0.95, 1.05);
      const int edits = 1 + static_cast<int>(rng.below(3));
      for (int e = 0; e < edits; ++e) {
        if (rng.below(2) == 0) {
          const auto c = cons[rng.below(static_cast<std::uint64_t>(nc))];
          net.set_capacity(c, rng.uniform(20.0, 200.0) * scale);
        } else {
          const auto f = static_cast<FlowNetwork::FlowIdx>(
              rng.below(static_cast<std::uint64_t>(nf)));
          if (!net.dead(f)) net.set_flow_cap(f, rng.uniform(1.0, 50.0) * scale);
        }
      }
      const auto r = net.solve_delta();
      EXPECT_FALSE(r.full_fallback);
      if (r.rounds_reused > 0) ++reuses;
      if (r.rounds_reused < r.rounds_total) ++divergences;
      // Throws std::logic_error on any bitwise rate mismatch vs. a full
      // re-solve (and re-records the journal for the next step).
      EXPECT_NO_THROW(net.check_against_full()) << "round " << round << " step " << step;
    }
  }
  // The sequence must have exercised both replay outcomes.
  EXPECT_GT(reuses, 0);
  EXPECT_GT(divergences, 0);
}

}  // namespace
