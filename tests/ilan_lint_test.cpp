// ilan-lint rules: every rule must fire on a minimal violating snippet and
// stay quiet on the equivalent clean code, suppressions and scoping must
// work, and the rule table must match what lint_source can emit.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "ilan_lint/lint.hpp"

namespace {

using ilan::lint::Finding;
using ilan::lint::in_scope;
using ilan::lint::lint_source;
using ilan::lint::lint_tree;
using ilan::lint::rules;

constexpr const char* kSimPath = "src/sim/example.cpp";

bool has_rule(const std::vector<Finding>& fs, std::string_view rule) {
  return std::any_of(fs.begin(), fs.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

TEST(LintScope, OnlySimCoreRtMemFaultArePoliced) {
  EXPECT_TRUE(in_scope("src/sim/engine.cpp"));
  EXPECT_TRUE(in_scope("src/core/ptt.hpp"));
  EXPECT_TRUE(in_scope("src/rt/team.cpp"));
  EXPECT_TRUE(in_scope("src/mem/flow_network.cpp"));
  EXPECT_TRUE(in_scope("src/fault/injector.cpp"));
  EXPECT_TRUE(in_scope("src/fault/fault_plan.hpp"));
  EXPECT_TRUE(in_scope("src/sched/policies.cpp"));
  EXPECT_TRUE(in_scope("src/sched/registry.hpp"));
  EXPECT_TRUE(in_scope("src/kernels/lu_dag.cpp"));
  EXPECT_TRUE(in_scope("src/analysis/race_auditor.cpp"));
  EXPECT_TRUE(in_scope("/abs/path/src/rt/team.cpp"));
  EXPECT_FALSE(in_scope("src/trace/stats.cpp"));
  EXPECT_FALSE(in_scope("bench/harness.cpp"));
  EXPECT_FALSE(in_scope("tests/sim_test.cpp"));
}

TEST(LintScope, OutOfScopeFilesLintCleanEvenWithViolations) {
  const auto fs = lint_source("bench/harness.cpp",
                              "auto t = std::chrono::steady_clock::now();\n");
  EXPECT_TRUE(fs.empty());
}

TEST(LintRules, WallClockFires) {
  EXPECT_TRUE(has_rule(
      lint_source(kSimPath, "auto t = std::chrono::steady_clock::now();\n"),
      "wall-clock"));
  EXPECT_TRUE(has_rule(lint_source(kSimPath, "gettimeofday(&tv, nullptr);\n"),
                       "wall-clock"));
  EXPECT_TRUE(has_rule(
      lint_source(kSimPath, "clock_gettime(CLOCK_MONOTONIC, &ts);\n"),
      "wall-clock"));
  EXPECT_FALSE(has_rule(lint_source(kSimPath, "SimTime t = engine.now();\n"),
                        "wall-clock"));
}

TEST(LintRules, RandFires) {
  EXPECT_TRUE(has_rule(lint_source(kSimPath, "int x = rand() % 6;\n"), "rand"));
  EXPECT_TRUE(has_rule(lint_source(kSimPath, "std::mt19937_64 gen(seed);\n"),
                       "rand"));
  EXPECT_TRUE(has_rule(lint_source(kSimPath, "std::random_device rd;\n"),
                       "rand"));
  // Identifiers merely *containing* a banned name are fine.
  EXPECT_FALSE(has_rule(lint_source(kSimPath, "int grand_total = 0;\n"), "rand"));
  EXPECT_FALSE(has_rule(lint_source(kSimPath, "Rng rng(seed); rng.next();\n"),
                        "rand"));
}

TEST(LintRules, StdHashFires) {
  EXPECT_TRUE(has_rule(
      lint_source(kSimPath, "auto h = std::hash<std::uint64_t>{}(x);\n"),
      "std-hash"));
  // A user-defined hash functor is fine; only std::hash is banned.
  EXPECT_FALSE(has_rule(lint_source(kSimPath, "auto h = BlockKeyHash{}(k);\n"),
                        "std-hash"));
}

TEST(LintRules, UnorderedIterFires) {
  const char* src =
      "std::unordered_map<int, int> m;\n"
      "void f() {\n"
      "  for (const auto& [k, v] : m) use(k, v);\n"
      "}\n";
  EXPECT_TRUE(has_rule(lint_source(kSimPath, src), "unordered-iter"));

  const char* begin_src =
      "std::unordered_set<int> s;\n"
      "auto it = s.begin();\n";
  EXPECT_TRUE(has_rule(lint_source(kSimPath, begin_src), "unordered-iter"));

  // Lookup-only use of unordered containers is the supported pattern.
  const char* lookup_src =
      "std::unordered_map<int, int> m;\n"
      "int g(int k) { return m.at(k); }\n"
      "bool h(int k) { return m.find(k) != m.end(); }\n";
  EXPECT_FALSE(has_rule(lint_source(kSimPath, lookup_src), "unordered-iter"));

  // Iterating an ordered container is fine.
  const char* map_src =
      "std::map<int, int> m;\n"
      "void f() {\n"
      "  for (const auto& [k, v] : m) use(k, v);\n"
      "}\n";
  EXPECT_FALSE(has_rule(lint_source(kSimPath, map_src), "unordered-iter"));
}

TEST(LintRules, CallbackSboFires) {
  // Default captures can grab arbitrarily much state.
  EXPECT_TRUE(has_rule(
      lint_source(kSimPath, "engine.schedule_at(t, [=] { use(a, b); });\n"),
      "callback-sbo"));
  EXPECT_TRUE(has_rule(
      lint_source(kSimPath, "engine.schedule_after(d, [&] { use(a); });\n"),
      "callback-sbo"));
  // More than 8 explicit captures cannot fit the 64-byte inline buffer.
  EXPECT_TRUE(has_rule(
      lint_source(kSimPath,
                  "engine.schedule_at(t, [a, b, c, d, e, f, g, h, i] {});\n"),
      "callback-sbo"));
  // Bounded explicit captures are the supported idiom.
  EXPECT_FALSE(has_rule(
      lint_source(kSimPath, "engine.schedule_at(t, [this, a] { go(a); });\n"),
      "callback-sbo"));
  // Lambdas outside schedule calls are unconstrained.
  EXPECT_FALSE(has_rule(
      lint_source(kSimPath, "auto fn = [=] { return a + b; };\n"),
      "callback-sbo"));
}

TEST(LintSuppression, AllowCommentSilencesOneLine) {
  const char* src =
      "int a = rand();  // ilan-lint: allow(rand)\n"
      "int b = rand();\n";
  const auto fs = lint_source(kSimPath, src);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].line, 2);
  EXPECT_EQ(fs[0].rule, "rand");
}

TEST(LintSuppression, AllowListCoversMultipleRules) {
  const char* src =
      "auto t = clock_gettime(c, &ts) + rand();"
      "  // ilan-lint: allow(wall-clock,rand)\n";
  EXPECT_TRUE(lint_source(kSimPath, src).empty());
}

TEST(LintSuppression, AllowForADifferentRuleDoesNotSilence) {
  const char* src = "int a = rand();  // ilan-lint: allow(wall-clock)\n";
  EXPECT_TRUE(has_rule(lint_source(kSimPath, src), "rand"));
}

TEST(LintSuppression, BlockCommentAllowAppliesAtItsOpeningLine) {
  // A /* */ allow spanning lines suppresses only the line it opens on, and
  // the lines it spans still count toward later findings' line numbers.
  const char* src =
      "int a = rand();  /* ilan-lint: allow(rand)\n"
      "   rationale continues\n"
      "   across lines */\n"
      "int b = rand();\n";
  const auto fs = lint_source(kSimPath, src);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].line, 4);
  EXPECT_EQ(fs[0].rule, "rand");
}

TEST(LintSuppression, CrLfEndingsKeepAllowAndLineNumbers) {
  const char* src =
      "int a = rand();  // ilan-lint: allow(rand)\r\n"
      "int b = rand();\r\n";
  const auto fs = lint_source(kSimPath, src);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].line, 2);
  EXPECT_EQ(fs[0].rule, "rand");
}

TEST(LintSuppression, AllowOnLastLineWithoutTrailingNewline) {
  const char* src = "int a = rand();  // ilan-lint: allow(rand)";
  EXPECT_TRUE(lint_source(kSimPath, src).empty());
}

TEST(LintLexer, CommentsAndStringsAreNotCode) {
  EXPECT_TRUE(lint_source(kSimPath, "// call rand() here\n").empty());
  EXPECT_TRUE(lint_source(kSimPath, "/* std::mt19937 gen; */\n").empty());
  EXPECT_TRUE(
      lint_source(kSimPath, "const char* s = \"rand() steady_clock\";\n").empty());
}

TEST(LintLexer, FindingsCarryFileAndLine) {
  const auto fs = lint_source(kSimPath, "int x;\nint y = rand();\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].file, kSimPath);
  EXPECT_EQ(fs[0].line, 2);
  EXPECT_FALSE(fs[0].message.empty());
}

TEST(LintRuleTable, EveryRuleIsListedOnce) {
  const auto& rs = rules();
  ASSERT_EQ(rs.size(), 5u);
  for (const char* name :
       {"wall-clock", "rand", "unordered-iter", "std-hash", "callback-sbo"}) {
    EXPECT_EQ(std::count_if(rs.begin(), rs.end(),
                            [&](const auto& r) { return r.name == name; }),
              1)
        << name;
    for (const auto& r : rs) EXPECT_FALSE(r.summary.empty());
  }
}

TEST(LintTree, WrongRootThrowsInsteadOfPassing) {
  EXPECT_THROW((void)lint_tree("/nonexistent/path"), std::runtime_error);
}

}  // namespace
