// Determinism auditing: digest comparison and first-divergence reporting.
//
// The engine's opt-in audit state (Engine::set_digest_enabled /
// enable_trace) produces a streaming 64-bit digest of the committed event
// stream and, when tracing, the stream itself. Two runs of the same seeded
// simulation must produce identical digests; when they do not, the traces
// pin down the first divergent event — its simulated time, scheduling
// order, and origin tag (sim/event_tags.hpp) name the subsystem that broke
// determinism.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "sim/engine.hpp"

namespace ilan::analysis {

struct Divergence {
  std::size_t index = 0;  // position in the event stream
  // Events at `index`; nullopt when one stream ended early.
  std::optional<sim::FiredEvent> first;
  std::optional<sim::FiredEvent> second;
};

// First position where the two committed event streams differ, or nullopt
// when one is a prefix of the other and both have equal length.
[[nodiscard]] std::optional<Divergence> compare_traces(
    std::span<const sim::FiredEvent> a, std::span<const sim::FiredEvent> b);

// "t=1234ps seq=17 tag=task-start" — human-readable event identity.
[[nodiscard]] std::string describe_event(const sim::FiredEvent& e);

// One-line report of a divergence ("event streams diverge at event 42:
// run A fired ..., run B fired ...").
[[nodiscard]] std::string describe_divergence(const Divergence& d);

// Recomputes the streaming digest from a trace; equals the engine's
// event_digest() when the trace was not truncated. Lets tests validate the
// digest definition independently of the engine.
[[nodiscard]] std::uint64_t digest_of(std::span<const sim::FiredEvent> trace);

}  // namespace ilan::analysis
