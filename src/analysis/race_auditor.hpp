// Happens-before race auditor for simulated taskloop executions.
//
// Attached to a Team as its TaskObserver, the auditor maintains one vector
// clock per worker and threads happens-before edges through the task
// lifecycle the simulator commits:
//
//   spawn     — every task's creation (serial, on the encountering thread)
//               happens-before its start, wherever it runs: tasks carry the
//               encountering thread's clock at loop begin, and a starting
//               worker joins it. Steals (intra- or cross-node) are starts
//               on a non-home worker, so the same edge covers them.
//   program   — consecutive tasks on one worker are ordered by that
//               worker's ticking clock.
//   barrier   — loop end joins every worker's clock into every other, so
//               anything in loop k happens-before everything in loop k+1.
//   release   — on the task-graph path (Team::run_taskgraph), a node's
//               finish happens-before each successor's start: the starting
//               worker joins every predecessor task's finish clock. A
//               missing dependency edge between tasks with overlapping
//               footprints therefore surfaces as a data race.
//
// Two accesses race when they come from tasks with concurrent clocks, at
// least one is a write (kWrite, or first-touch placement implied by any
// access), and their byte ranges on the same DataRegion overlap. Gather
// accesses sample the whole region and are treated as region-wide reads.
//
// The auditor also asserts scheduler invariants at commit points:
//   * a task never executes on a node outside the loop's NodeMask;
//   * under StealPolicy::kStrict — and for any numa_strict task — a task
//     never executes off its home node;
//   * a loop never (re)configures while tasks are still in flight (PTT
//     reconfiguration must not overlap executions of the same LoopId).
//
// Violations accumulate as Reports; the auditor never throws. Zero-cost
// when not attached (Team's observer hook is a null check).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/vector_clock.hpp"
#include "mem/data_region.hpp"
#include "rt/observer.hpp"

namespace ilan::analysis {

enum class ReportKind {
  kDataRace,         // conflicting concurrent accesses to overlapping ranges
  kMaskViolation,    // task executed on a node outside the loop's NodeMask
  kStrictViolation,  // strict-policy loop / numa_strict task left its home node
  kReconfigOverlap,  // loop reconfigured while its tasks were in flight
  kNestedLoop,       // loop began while tasks (of any loop) were in flight
};

[[nodiscard]] const char* to_string(ReportKind kind);

struct Report {
  ReportKind kind = ReportKind::kDataRace;
  rt::LoopId loop = 0;
  sim::SimTime when = 0;
  std::string message;
};

struct RaceAuditorOptions {
  bool check_races = true;
  bool check_invariants = true;
  // Reports stop accumulating past this count (the first report is what
  // matters; an unsynchronized loop would otherwise produce O(tasks^2)).
  std::size_t max_reports = 64;
};

// Counters proving the auditor actually looked at something (a clean result
// with zero tasks audited is a wiring bug, not a clean run).
struct AuditCounters {
  std::uint64_t loops = 0;
  std::uint64_t tasks = 0;
  std::uint64_t accesses = 0;
  std::uint64_t pairs_checked = 0;  // overlapping pairs tested for HB
};

class RaceAuditor final : public rt::TaskObserver {
 public:
  // `regions` (optional) resolves region names and gather extents; it must
  // outlive the auditor when provided.
  explicit RaceAuditor(RaceAuditorOptions opts = {},
                       const mem::RegionTable* regions = nullptr)
      : opts_(opts), regions_(regions) {}

  void on_loop_begin(const rt::TaskloopSpec& spec, const rt::LoopConfig& cfg,
                     const rt::Team& team, sim::SimTime now) override;
  void on_graph_begin(const rt::TaskGraphSpec& graph, const rt::Team& team,
                      sim::SimTime now) override;
  void on_task_start(const rt::Task& task, const rt::Worker& w,
                     std::span<const mem::AccessDescriptor> accesses,
                     sim::SimTime now) override;
  void on_task_finish(const rt::Task& task, const rt::Worker& w,
                      sim::SimTime now) override;
  void on_loop_end(const rt::TaskloopSpec& spec, const rt::LoopExecStats& stats,
                   sim::SimTime loop_end) override;

  [[nodiscard]] const std::vector<Report>& reports() const { return reports_; }
  [[nodiscard]] bool clean() const { return reports_.empty(); }
  [[nodiscard]] const AuditCounters& counters() const { return counters_; }

  // Drops reports, counters and all clock state (e.g. between runs).
  void clear();

 private:
  struct TaskRec {
    std::int64_t begin = 0;
    std::int64_t end = 0;
    int worker = -1;
    VectorClock start_clock;
    VectorClock finish_clock;
    std::vector<mem::AccessDescriptor> accesses;
  };

  void report(ReportKind kind, rt::LoopId loop, sim::SimTime when, std::string msg);
  void check_loop_races(const rt::TaskloopSpec& spec, sim::SimTime when);
  [[nodiscard]] std::string region_label(mem::RegionId id) const;

  RaceAuditorOptions opts_;
  const mem::RegionTable* regions_;

  std::vector<VectorClock> clocks_;  // one per worker
  VectorClock creation_clock_;       // encountering thread at loop begin
  rt::LoopConfig cur_cfg_;
  rt::LoopId cur_loop_ = 0;
  std::vector<TaskRec> tasks_;       // tasks of the current loop
  std::vector<std::int32_t> worker_cur_;  // index into tasks_; -1 = idle
  // Task-graph execution being audited (nullptr on the plain taskloop
  // path). Release edges: a starting node joins every predecessor's finish
  // clock — the Team guarantees predecessors finished before the node was
  // placed, so node_task_ lookups (node id -> tasks_ index) always resolve.
  const rt::TaskGraphSpec* cur_graph_ = nullptr;
  std::vector<std::int32_t> node_task_;  // node id -> tasks_ index; -1 = not started
  std::int64_t in_flight_ = 0;
  std::unordered_map<rt::LoopId, std::int64_t> in_flight_by_loop_;
  std::unordered_map<rt::LoopId, rt::LoopConfig> last_cfg_;

  std::vector<Report> reports_;
  AuditCounters counters_;
};

}  // namespace ilan::analysis
