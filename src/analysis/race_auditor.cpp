#include "analysis/race_auditor.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <set>

#include "rt/team.hpp"
#include "rt/worker.hpp"

namespace ilan::analysis {

namespace {

[[nodiscard]] const char* kind_word(mem::AccessKind k) {
  switch (k) {
    case mem::AccessKind::kRead: return "read";
    case mem::AccessKind::kWrite: return "write";
    case mem::AccessKind::kGather: return "gather";
  }
  return "?";
}

}  // namespace

const char* to_string(ReportKind kind) {
  switch (kind) {
    case ReportKind::kDataRace: return "data-race";
    case ReportKind::kMaskViolation: return "mask-violation";
    case ReportKind::kStrictViolation: return "strict-violation";
    case ReportKind::kReconfigOverlap: return "reconfig-overlap";
    case ReportKind::kNestedLoop: return "nested-loop";
  }
  return "?";
}

void RaceAuditor::report(ReportKind kind, rt::LoopId loop, sim::SimTime when,
                         std::string msg) {
  if (reports_.size() >= opts_.max_reports) return;
  reports_.push_back(Report{kind, loop, when, std::move(msg)});
}

std::string RaceAuditor::region_label(mem::RegionId id) const {
  if (regions_ != nullptr && id >= 0 && static_cast<std::size_t>(id) < regions_->size()) {
    return regions_->get(id).name();
  }
  return "region#" + std::to_string(id);
}

void RaceAuditor::clear() {
  clocks_.clear();
  creation_clock_ = VectorClock();
  tasks_.clear();
  worker_cur_.clear();
  cur_graph_ = nullptr;
  node_task_.clear();
  in_flight_ = 0;
  in_flight_by_loop_.clear();
  last_cfg_.clear();
  reports_.clear();
  counters_ = AuditCounters{};
}

void RaceAuditor::on_loop_begin(const rt::TaskloopSpec& spec, const rt::LoopConfig& cfg,
                                const rt::Team& team, sim::SimTime now) {
  const auto n = static_cast<std::size_t>(team.num_workers());
  if (clocks_.size() != n) clocks_.assign(n, VectorClock(n));

  if (opts_.check_invariants) {
    if (in_flight_ > 0) {
      report(ReportKind::kNestedLoop, spec.loop_id, now,
             "loop " + std::to_string(spec.loop_id) + " '" + spec.name + "' began with " +
                 std::to_string(in_flight_) + " task(s) still in flight");
    }
    const auto it = last_cfg_.find(spec.loop_id);
    if (it != last_cfg_.end() && !(it->second == cfg) &&
        in_flight_by_loop_[spec.loop_id] > 0) {
      report(ReportKind::kReconfigOverlap, spec.loop_id, now,
             "loop " + std::to_string(spec.loop_id) + " '" + spec.name +
                 "' reconfigured (threads " + std::to_string(it->second.num_threads) +
                 " -> " + std::to_string(cfg.num_threads) + ") while " +
                 std::to_string(in_flight_by_loop_[spec.loop_id]) +
                 " of its task(s) were in flight");
    }
    last_cfg_[spec.loop_id] = cfg;
  }

  cur_cfg_ = cfg;
  cur_loop_ = spec.loop_id;
  tasks_.clear();
  worker_cur_.assign(n, -1);
  // Spawn point: everything the encountering thread did so far (including
  // the previous loop's barrier) happens-before every task of this loop.
  if (!clocks_.empty()) {
    clocks_[0].tick(0);
    creation_clock_ = clocks_[0];
  }
  ++counters_.loops;
}

void RaceAuditor::on_graph_begin(const rt::TaskGraphSpec& graph, const rt::Team& /*team*/,
                                 sim::SimTime /*now*/) {
  cur_graph_ = &graph;
  node_task_.assign(static_cast<std::size_t>(graph.num_nodes()), -1);
}

void RaceAuditor::on_task_start(const rt::Task& task, const rt::Worker& w,
                                std::span<const mem::AccessDescriptor> accesses,
                                sim::SimTime now) {
  const auto wid = static_cast<std::size_t>(w.id);
  if (wid >= clocks_.size()) return;  // loop_begin never observed

  if (opts_.check_invariants) {
    if (!cur_cfg_.node_mask.empty() && !cur_cfg_.node_mask.test(w.node)) {
      report(ReportKind::kMaskViolation, cur_loop_, now,
             "task [" + std::to_string(task.begin) + "," + std::to_string(task.end) +
                 ") executed on node " + std::to_string(w.node.value()) +
                 " outside the loop's NodeMask (bits 0x" +
                 [&] {
                   char buf[20];
                   std::snprintf(buf, sizeof buf, "%llx",
                                 static_cast<unsigned long long>(cur_cfg_.node_mask.bits()));
                   return std::string(buf);
                 }() +
                 ")");
    }
    const bool off_home = task.home_node.valid() && task.home_node != w.node;
    if (off_home && cur_cfg_.steal_policy == rt::StealPolicy::kStrict) {
      report(ReportKind::kStrictViolation, cur_loop_, now,
             "strict-policy loop executed task [" + std::to_string(task.begin) + "," +
                 std::to_string(task.end) + ") on node " + std::to_string(w.node.value()) +
                 " away from home node " + std::to_string(task.home_node.value()));
    } else if (off_home && task.numa_strict) {
      report(ReportKind::kStrictViolation, cur_loop_, now,
             "numa-strict task [" + std::to_string(task.begin) + "," +
                 std::to_string(task.end) + ") migrated to node " +
                 std::to_string(w.node.value()) + " away from home node " +
                 std::to_string(task.home_node.value()));
    }
  }

  VectorClock& c = clocks_[wid];
  c.join(creation_clock_);  // spawn (and steal) edge: creation -> start
  if (cur_graph_ != nullptr && task.begin >= 0 &&
      static_cast<std::size_t>(task.begin) < node_task_.size()) {
    // Release edges: each predecessor's finish happens-before this start.
    const auto node = static_cast<std::size_t>(task.begin);
    for (const std::int32_t p : cur_graph_->preds[node]) {
      const std::int32_t pt = node_task_[static_cast<std::size_t>(p)];
      if (pt >= 0) c.join(tasks_[static_cast<std::size_t>(pt)].finish_clock);
    }
    node_task_[node] = static_cast<std::int32_t>(tasks_.size());
  }
  c.tick(wid);

  TaskRec rec;
  rec.begin = task.begin;
  rec.end = task.end;
  rec.worker = w.id;
  rec.start_clock = c;
  if (opts_.check_races) rec.accesses.assign(accesses.begin(), accesses.end());
  worker_cur_[wid] = static_cast<std::int32_t>(tasks_.size());
  tasks_.push_back(std::move(rec));

  ++counters_.tasks;
  counters_.accesses += accesses.size();
  ++in_flight_;
  ++in_flight_by_loop_[cur_loop_];
}

void RaceAuditor::on_task_finish(const rt::Task& /*task*/, const rt::Worker& w,
                                 sim::SimTime /*now*/) {
  const auto wid = static_cast<std::size_t>(w.id);
  if (wid >= clocks_.size()) return;
  clocks_[wid].tick(wid);
  if (wid < worker_cur_.size() && worker_cur_[wid] >= 0) {
    tasks_[static_cast<std::size_t>(worker_cur_[wid])].finish_clock = clocks_[wid];
    worker_cur_[wid] = -1;
  }
  if (in_flight_ > 0) --in_flight_;
  auto& per_loop = in_flight_by_loop_[cur_loop_];
  if (per_loop > 0) --per_loop;
}

void RaceAuditor::on_loop_end(const rt::TaskloopSpec& spec,
                              const rt::LoopExecStats& /*stats*/, sim::SimTime loop_end) {
  if (opts_.check_races) check_loop_races(spec, loop_end);
  // Barrier edge: every worker's history happens-before everything after
  // the loop, on every worker.
  VectorClock joined(clocks_.empty() ? 0 : clocks_[0].size());
  for (const VectorClock& c : clocks_) joined.join(c);
  for (VectorClock& c : clocks_) c = joined;
  cur_graph_ = nullptr;
  node_task_.clear();
}

void RaceAuditor::check_loop_races(const rt::TaskloopSpec& spec, sim::SimTime when) {
  struct Acc {
    mem::RegionId region;
    std::uint64_t lo, hi;
    mem::AccessKind kind;
    std::int32_t task;
  };
  std::vector<Acc> accs;
  for (std::size_t t = 0; t < tasks_.size(); ++t) {
    for (const mem::AccessDescriptor& a : tasks_[t].accesses) {
      Acc acc;
      acc.region = a.region;
      acc.kind = a.kind;
      acc.task = static_cast<std::int32_t>(t);
      if (a.kind == mem::AccessKind::kGather) {
        // Samples the whole region: a region-wide read.
        acc.lo = 0;
        acc.hi = (regions_ != nullptr && a.region >= 0 &&
                  static_cast<std::size_t>(a.region) < regions_->size())
                     ? regions_->get(a.region).bytes()
                     : std::numeric_limits<std::uint64_t>::max();
      } else {
        acc.lo = a.offset;
        acc.hi = a.offset + (a.footprint != 0 ? a.footprint : a.len);
      }
      if (acc.lo < acc.hi) accs.push_back(acc);
    }
  }
  std::sort(accs.begin(), accs.end(), [](const Acc& a, const Acc& b) {
    if (a.region != b.region) return a.region < b.region;
    if (a.lo != b.lo) return a.lo < b.lo;
    return a.hi < b.hi;
  });

  std::set<std::pair<std::int32_t, std::int32_t>> reported;
  for (std::size_t i = 0; i < accs.size(); ++i) {
    if (reports_.size() >= opts_.max_reports) return;
    for (std::size_t j = i + 1; j < accs.size(); ++j) {
      const Acc& a = accs[i];
      const Acc& b = accs[j];
      if (b.region != a.region || b.lo >= a.hi) break;  // sorted by (region, lo)
      if (a.task == b.task) continue;
      const bool writes = a.kind == mem::AccessKind::kWrite ||
                          b.kind == mem::AccessKind::kWrite;
      if (!writes) continue;
      const auto key = std::minmax(a.task, b.task);
      if (reported.count(key) != 0) continue;
      ++counters_.pairs_checked;
      const TaskRec& ta = tasks_[static_cast<std::size_t>(a.task)];
      const TaskRec& tb = tasks_[static_cast<std::size_t>(b.task)];
      const bool ordered = ta.finish_clock.leq(tb.start_clock) ||
                           tb.finish_clock.leq(ta.start_clock);
      if (ordered) continue;
      reported.insert(key);
      report(ReportKind::kDataRace, spec.loop_id, when,
             "data race: loop " + std::to_string(spec.loop_id) + " '" + spec.name +
                 "': " + kind_word(a.kind) + " of " + region_label(a.region) + " [" +
                 std::to_string(a.lo) + "," + std::to_string(a.hi) + ") by task [" +
                 std::to_string(ta.begin) + "," + std::to_string(ta.end) + ")@w" +
                 std::to_string(ta.worker) + " overlaps " + kind_word(b.kind) + " [" +
                 std::to_string(b.lo) + "," + std::to_string(b.hi) + ") by task [" +
                 std::to_string(tb.begin) + "," + std::to_string(tb.end) + ")@w" +
                 std::to_string(tb.worker) + " with no happens-before edge");
      if (reports_.size() >= opts_.max_reports) return;
    }
  }
}

}  // namespace ilan::analysis
