#include "analysis/determinism.hpp"

#include "sim/event_tags.hpp"

namespace ilan::analysis {

std::optional<Divergence> compare_traces(std::span<const sim::FiredEvent> a,
                                         std::span<const sim::FiredEvent> b) {
  const std::size_t n = a.size() < b.size() ? a.size() : b.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (!(a[i] == b[i])) {
      return Divergence{i, a[i], b[i]};
    }
  }
  if (a.size() != b.size()) {
    Divergence d;
    d.index = n;
    if (n < a.size()) d.first = a[n];
    if (n < b.size()) d.second = b[n];
    return d;
  }
  return std::nullopt;
}

std::string describe_event(const sim::FiredEvent& e) {
  return "t=" + std::to_string(e.at) + "ps seq=" + std::to_string(e.seq) +
         " tag=" + sim::tag_name(e.tag);
}

std::string describe_divergence(const Divergence& d) {
  std::string out = "event streams diverge at event " + std::to_string(d.index) + ": ";
  out += d.first ? "run A fired " + describe_event(*d.first)
                 : "run A's stream ended";
  out += d.second ? ", run B fired " + describe_event(*d.second)
                  : ", run B's stream ended";
  return out;
}

std::uint64_t digest_of(std::span<const sim::FiredEvent> trace) {
  std::uint64_t d = 0;
  for (const sim::FiredEvent& e : trace) d = sim::Engine::digest_step(d, e);
  return d;
}

}  // namespace ilan::analysis
