// Vector clocks over simulated workers.
//
// The race auditor tracks happens-before through task lifecycle edges
// (spawn, per-worker program order, barrier). A clock has one component per
// worker; the standard partial order applies: a <= b iff every component of
// a is <= the matching component of b, and two clocks are concurrent when
// neither ordering holds.
#pragma once

#include <cstdint>
#include <vector>

namespace ilan::analysis {

class VectorClock {
 public:
  VectorClock() = default;
  explicit VectorClock(std::size_t workers) : c_(workers, 0) {}

  [[nodiscard]] std::size_t size() const { return c_.size(); }
  [[nodiscard]] std::uint64_t component(std::size_t i) const { return c_[i]; }

  void tick(std::size_t i) { ++c_[i]; }

  // Elementwise max; grows to the larger dimension.
  void join(const VectorClock& o) {
    if (o.c_.size() > c_.size()) c_.resize(o.c_.size(), 0);
    for (std::size_t i = 0; i < o.c_.size(); ++i) {
      if (o.c_[i] > c_[i]) c_[i] = o.c_[i];
    }
  }

  // True when this clock happens-before-or-equals `o` (elementwise <=;
  // missing components count as 0).
  [[nodiscard]] bool leq(const VectorClock& o) const {
    for (std::size_t i = 0; i < c_.size(); ++i) {
      const std::uint64_t rhs = i < o.c_.size() ? o.c_[i] : 0;
      if (c_[i] > rhs) return false;
    }
    return true;
  }

  [[nodiscard]] static bool concurrent(const VectorClock& a, const VectorClock& b) {
    return !a.leq(b) && !b.leq(a);
  }

  friend bool operator==(const VectorClock&, const VectorClock&) = default;

 private:
  std::vector<std::uint64_t> c_;
};

}  // namespace ilan::analysis
