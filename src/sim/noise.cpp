#include "sim/noise.hpp"

#include <algorithm>
#include <stdexcept>

namespace ilan::sim {

NoiseModel::NoiseModel(const NoiseParams& params, std::uint64_t seed, int num_cores)
    : params_(params),
      freq_factor_(static_cast<std::size_t>(num_cores), 1.0),
      freq_scale_(static_cast<std::size_t>(num_cores), 1.0),
      jitter_rng_(Xoshiro256ss(seed).split(0x6a1773)) {
  if (!params_.enabled) return;
  Xoshiro256ss rng(seed);
  for (auto& f : freq_factor_) {
    f = std::clamp(1.0 + params_.freq_jitter_sigma * rng.normal(), 0.85, 1.15);
  }
  if (rng.uniform() < params_.disturbed_core_prob && num_cores > 0) {
    disturbed_core_ = static_cast<int>(rng.below(static_cast<std::uint64_t>(num_cores)));
    freq_factor_[static_cast<std::size_t>(disturbed_core_)] *= params_.disturbed_core_factor;
  }
}

double NoiseModel::sched_jitter() {
  if (!params_.enabled) return sched_scale_;
  const double j = 1.0 + params_.sched_jitter_sigma * jitter_rng_.normal();
  // The dynamic scale multiplies *after* the clamp: the RNG consumption
  // order is identical whether or not a latency spike is active.
  return std::max(0.5, j) * sched_scale_;
}

void NoiseModel::set_freq_scale(int core, double scale) {
  if (scale <= 0.0) throw std::invalid_argument("NoiseModel: freq scale must be > 0");
  freq_scale_.at(static_cast<std::size_t>(core)) = scale;
}

void NoiseModel::set_sched_scale(double scale) {
  if (scale <= 0.0) throw std::invalid_argument("NoiseModel: sched scale must be > 0");
  sched_scale_ = scale;
}

}  // namespace ilan::sim
