// Discrete-event simulation engine.
//
// Single-threaded, deterministic: events at equal timestamps fire in
// scheduling order (FIFO tie-break by a monotonic sequence number). Events
// can be cancelled; cancellation is O(1) (lazy removal on pop).
//
// Hot-path design (this is the innermost loop of every simulated run):
//   * Callbacks live in a slot pool (free list) instead of a hash map; an
//     EventId is (generation << 32) | slot, so cancel() is an array index
//     plus a generation compare, and stale handles from fired/cancelled
//     events can never alias a reused slot.
//   * Callback storage is small-buffer-optimized (`InlineCallback`): any
//     capture list up to kInlineBytes is stored in place, so the common
//     schedule/fire cycle performs zero heap allocations once the pool and
//     heap have reached their high-water marks.
//   * Slots live in fixed-size chunks at stable addresses, so firing
//     invokes the callback in place — no move out of the pool. The slot's
//     generation is bumped before the callback runs (stale ids, including
//     self-cancel, miss) but it only joins the free list afterwards, so a
//     callback scheduling new events can never overwrite the very functor
//     that is executing.
//   * The pending queue is an index-based d-ary (d=4) min-heap: shallower
//     than a binary heap and cache-friendlier than std::priority_queue's
//     pair-of-comparisons on a node type, with sift loops that move the
//     hole instead of swapping.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace ilan::sim {

// Move-only type-erased `void()` callable with inline storage for small
// captures. Larger callables fall back to a single heap allocation.
//
// The common case — a lambda capturing pointers and integers — is
// trivially copyable, so it moves as a plain memcpy of the buffer with no
// manager dispatch and destructs for free (mgr_ == nullptr). Non-trivial
// or heap-stored callables carry a manager table for relocate/destroy.
class InlineCallback {
 public:
  // Large enough for the runtime's biggest capture list
  // ([this, worker id, rt::Task]) with room to spare.
  static constexpr std::size_t kInlineBytes = 64;

  InlineCallback() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback>>>
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    construct(std::forward<F>(f));
  }

  // Destroys the current callable (if any) and constructs `f` in place —
  // the zero-move path used by Engine::schedule_at's template overload.
  template <typename F>
  void emplace(F&& f) {
    reset();
    construct(std::forward<F>(f));
  }

  InlineCallback(InlineCallback&& o) noexcept { steal(o); }

  InlineCallback& operator=(InlineCallback&& o) noexcept {
    if (this != &o) {
      reset();
      steal(o);
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  void reset() noexcept {
    if (mgr_ != nullptr) mgr_->destroy(buf_);
    invoke_ = nullptr;
    mgr_ = nullptr;
  }

  [[nodiscard]] explicit operator bool() const noexcept { return invoke_ != nullptr; }

  void operator()() { invoke_(buf_); }

 private:
  template <typename F>
  void construct(F&& f) {
    using D = std::decay_t<F>;
    if constexpr (fits_inline<D>() && std::is_trivially_copyable_v<D> &&
                  std::is_trivially_destructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      invoke_ = &invoke_inline<D>;
    } else if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      invoke_ = &invoke_inline<D>;
      mgr_ = &mgr_inline<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      invoke_ = &invoke_heap<D>;
      mgr_ = &mgr_heap<D>;
    }
  }

  struct Manager {
    // Move-constructs into dst from src and destroys src.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static D* as(void* p) {
    return std::launder(reinterpret_cast<D*>(p));
  }

  template <typename D>
  static D* heap_ptr(void* p) {
    return *std::launder(reinterpret_cast<D**>(p));
  }

  template <typename D>
  static void invoke_inline(void* p) {
    (*as<D>(p))();
  }

  template <typename D>
  static void invoke_heap(void* p) {
    (*heap_ptr<D>(p))();
  }

  template <typename D>
  static constexpr Manager mgr_inline{
      [](void* dst, void* src) {
        ::new (dst) D(std::move(*as<D>(src)));
        as<D>(src)->~D();
      },
      [](void* p) { as<D>(p)->~D(); },
  };

  template <typename D>
  static constexpr Manager mgr_heap{
      [](void* dst, void* src) { ::new (dst) D*(heap_ptr<D>(src)); },
      [](void* p) { delete heap_ptr<D>(p); },
  };

  void steal(InlineCallback& o) noexcept {
    invoke_ = o.invoke_;
    mgr_ = o.mgr_;
    if (invoke_ != nullptr) {
      if (mgr_ != nullptr) {
        mgr_->relocate(buf_, o.buf_);
      } else {
        __builtin_memcpy(buf_, o.buf_, kInlineBytes);
      }
      o.invoke_ = nullptr;
      o.mgr_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  void (*invoke_)(void*) = nullptr;
  const Manager* mgr_ = nullptr;
};

// (generation << 32) | slot index. Generations start at 1, so no valid id
// is ever 0.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class Engine {
 public:
  using Callback = InlineCallback;

  [[nodiscard]] SimTime now() const { return now_; }

  // Schedules `fn` to run at absolute time `at` (must be >= now()).
  // Returns a handle usable with cancel().
  //
  // The template overload constructs the callable directly inside the
  // event slot (no intermediate InlineCallback move); the Callback
  // overload takes a pre-built callback, e.g. one moved from elsewhere.
  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, Callback>>>
  EventId schedule_at(SimTime at, F&& fn) {
    check_schedule(at);
    const std::uint32_t idx = acquire_slot();
    Slot& s = slot(idx);
    s.fn.emplace(std::forward<F>(fn));
    heap_push(Entry{at, next_seq_++, idx, s.generation});
    ++live_;
    return (static_cast<EventId>(s.generation) << 32) | idx;
  }
  EventId schedule_at(SimTime at, Callback fn);

  // Schedules `fn` to run `delay` after now().
  template <typename F>
  EventId schedule_after(SimTime delay, F&& fn) {
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  // Cancels a pending event. Returns false if the event already fired,
  // was already cancelled, or never existed.
  bool cancel(EventId id);

  // Runs events until the queue drains. Returns the number of events fired.
  std::size_t run();

  // Runs events with time <= limit. Events beyond the limit stay queued.
  std::size_t run_until(SimTime limit);

  [[nodiscard]] bool idle() const { return live_ == 0; }
  [[nodiscard]] std::size_t pending() const { return live_; }
  [[nodiscard]] std::uint64_t events_fired() const { return fired_; }
  [[nodiscard]] std::uint64_t events_scheduled() const { return next_seq_ - 1; }

  // Size of the slot pool (== high-water mark of concurrently pending
  // events). Exposed for tests and diagnostics.
  [[nodiscard]] std::size_t pool_slots() const { return num_slots_; }

  // Resets time to zero and drops all pending events. Slot generations
  // survive the reset so pre-reset EventIds stay invalid.
  void reset();

 private:
  struct Slot {
    Callback fn;
    std::uint32_t generation = 1;
    std::uint32_t next_free = kNoFreeSlot;
  };
  struct Entry {
    SimTime at;
    std::uint64_t seq;  // FIFO tie-break among simultaneous events
    std::uint32_t slot;
    std::uint32_t generation;
  };
  static constexpr std::uint32_t kNoFreeSlot = 0xffffffffu;
  static constexpr std::size_t kArity = 4;        // d-ary heap fan-out
  static constexpr std::uint32_t kChunkShift = 8;  // 256 slots per chunk
  static constexpr std::uint32_t kChunkSlots = 1u << kChunkShift;

  [[nodiscard]] static bool before(const Entry& a, const Entry& b) {
    // Branchless on purpose: heap sift comparisons are data-dependent and
    // mispredict heavily when written as an early-return chain.
    return (a.at < b.at) | ((a.at == b.at) & (a.seq < b.seq));
  }

  [[nodiscard]] Slot& slot(std::uint32_t idx) {
    return chunks_[idx >> kChunkShift][idx & (kChunkSlots - 1)];
  }

  void check_schedule(SimTime at) const {
    if (at < now_) throw std::logic_error("Engine: scheduling into the past");
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t idx);
  void heap_push(const Entry& e);
  void heap_pop_min();

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
  std::uint64_t fired_ = 0;
  std::vector<Entry> heap_;
  // Chunked pool: slot addresses are stable for the engine's lifetime.
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::size_t num_slots_ = 0;
  std::uint32_t free_head_ = kNoFreeSlot;
};

}  // namespace ilan::sim
