// Discrete-event simulation engine.
//
// Single-threaded, deterministic: events at equal timestamps fire in
// scheduling order (FIFO tie-break by sequence number). Events can be
// cancelled; cancellation is O(1) (lazy removal on pop).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace ilan::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class Engine {
 public:
  using Callback = std::function<void()>;

  [[nodiscard]] SimTime now() const { return now_; }

  // Schedules `fn` to run at absolute time `at` (must be >= now()).
  // Returns a handle usable with cancel().
  EventId schedule_at(SimTime at, Callback fn);

  // Schedules `fn` to run `delay` after now().
  EventId schedule_after(SimTime delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  // Cancels a pending event. Returns false if the event already fired,
  // was already cancelled, or never existed.
  bool cancel(EventId id);

  // Runs events until the queue drains. Returns the number of events fired.
  std::size_t run();

  // Runs events with time <= limit. Events beyond the limit stay queued.
  std::size_t run_until(SimTime limit);

  [[nodiscard]] bool idle() const { return live_ == 0; }
  [[nodiscard]] std::size_t pending() const { return live_; }
  [[nodiscard]] std::uint64_t events_fired() const { return fired_; }

  // Resets time to zero and drops all pending events.
  void reset();

 private:
  struct Entry {
    SimTime at;
    EventId id;
    bool operator>(const Entry& o) const {
      if (at != o.at) return at > o.at;
      return id > o.id;  // FIFO among simultaneous events
    }
  };

  SimTime now_ = 0;
  EventId next_id_ = 1;
  std::size_t live_ = 0;
  std::uint64_t fired_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_map<EventId, Callback> callbacks_;
};

}  // namespace ilan::sim
