// Discrete-event simulation engine.
//
// Single-threaded, deterministic: events at equal timestamps fire in
// scheduling order (FIFO tie-break by a monotonic sequence number). Events
// can be cancelled or rescheduled; both operate on the pending entry in
// place (each slot knows its heap position), so the heap only ever holds
// live events.
//
// Hot-path design (this is the innermost loop of every simulated run):
//   * Callbacks live in a slot pool (free list) instead of a hash map; an
//     EventId is (generation << 32) | slot, so cancel() is an array index
//     plus a generation compare, and stale handles from fired/cancelled
//     events can never alias a reused slot.
//   * Callback storage is small-buffer-optimized (`InlineCallback`): any
//     capture list up to kInlineBytes is stored in place, so the common
//     schedule/fire cycle performs zero heap allocations once the pool and
//     heap have reached their high-water marks.
//   * Slots live in fixed-size chunks at stable addresses, so firing
//     invokes the callback in place — no move out of the pool. The slot's
//     generation is bumped before the callback runs (stale ids, including
//     self-cancel, miss) but it only joins the free list afterwards, so a
//     callback scheduling new events can never overwrite the very functor
//     that is executing.
//   * The pending queue is an index-based d-ary (d=4) min-heap: shallower
//     than a binary heap and cache-friendlier than std::priority_queue's
//     pair-of-comparisons on a node type, with sift loops that move the
//     hole instead of swapping.
//   * The heap is *indexed*: every slot records where its entry sits, so
//     cancel() and reschedule() edit the entry in place (one short sift)
//     instead of pushing a replacement and lazily skipping the stale one
//     on pop. Resolve-heavy workloads reschedule every in-flight
//     completion on every resolve; with lazy deletion those reschedules
//     dominated the run (the heap was ~95% corpses, and every corpse cost
//     a full pop). The committed event stream is unchanged: reschedule
//     consumes the same sequence number either way, and a min-heap pops
//     the same live (time, seq) order no matter how removals happen.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace ilan::sim {

// Move-only type-erased `void()` callable with inline storage for small
// captures. Larger callables fall back to a single heap allocation.
//
// The common case — a lambda capturing pointers and integers — is
// trivially copyable, so it moves as a plain memcpy of the buffer with no
// manager dispatch and destructs for free (mgr_ == nullptr). Non-trivial
// or heap-stored callables carry a manager table for relocate/destroy.
class InlineCallback {
 public:
  // Large enough for the runtime's biggest capture list
  // ([this, worker id, rt::Task]) with room to spare.
  static constexpr std::size_t kInlineBytes = 64;

  InlineCallback() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback>>>
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    construct(std::forward<F>(f));
  }

  // Destroys the current callable (if any) and constructs `f` in place —
  // the zero-move path used by Engine::schedule_at's template overload.
  template <typename F>
  void emplace(F&& f) {
    reset();
    construct(std::forward<F>(f));
  }

  InlineCallback(InlineCallback&& o) noexcept { steal(o); }

  InlineCallback& operator=(InlineCallback&& o) noexcept {
    if (this != &o) {
      reset();
      steal(o);
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  void reset() noexcept {
    if (mgr_ != nullptr) mgr_->destroy(buf_);
    invoke_ = nullptr;
    mgr_ = nullptr;
  }

  [[nodiscard]] explicit operator bool() const noexcept { return invoke_ != nullptr; }

  void operator()() { invoke_(buf_); }

 private:
  template <typename F>
  void construct(F&& f) {
    using D = std::decay_t<F>;
    if constexpr (fits_inline<D>() && std::is_trivially_copyable_v<D> &&
                  std::is_trivially_destructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      invoke_ = &invoke_inline<D>;
    } else if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      invoke_ = &invoke_inline<D>;
      mgr_ = &mgr_inline<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      invoke_ = &invoke_heap<D>;
      mgr_ = &mgr_heap<D>;
    }
  }

  struct Manager {
    // Move-constructs into dst from src and destroys src.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static D* as(void* p) {
    return std::launder(reinterpret_cast<D*>(p));
  }

  template <typename D>
  static D* heap_ptr(void* p) {
    return *std::launder(reinterpret_cast<D**>(p));
  }

  template <typename D>
  static void invoke_inline(void* p) {
    (*as<D>(p))();
  }

  template <typename D>
  static void invoke_heap(void* p) {
    (*heap_ptr<D>(p))();
  }

  template <typename D>
  static constexpr Manager mgr_inline{
      [](void* dst, void* src) {
        ::new (dst) D(std::move(*as<D>(src)));
        as<D>(src)->~D();
      },
      [](void* p) { as<D>(p)->~D(); },
  };

  template <typename D>
  static constexpr Manager mgr_heap{
      [](void* dst, void* src) { ::new (dst) D*(heap_ptr<D>(src)); },
      [](void* p) { delete heap_ptr<D>(p); },
  };

  void steal(InlineCallback& o) noexcept {
    invoke_ = o.invoke_;
    mgr_ = o.mgr_;
    if (invoke_ != nullptr) {
      if (mgr_ != nullptr) {
        mgr_->relocate(buf_, o.buf_);
      } else {
        __builtin_memcpy(buf_, o.buf_, kInlineBytes);
      }
      o.invoke_ = nullptr;
      o.mgr_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  void (*invoke_)(void*) = nullptr;
  const Manager* mgr_ = nullptr;
};

// (generation << 32) | slot index. Generations start at 1, so no valid id
// is ever 0.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

// Tag naming an event's origin (see sim/event_tags.hpp for the registry).
// Mixed into the determinism digest alongside timestamp and fire order;
// 0 = untagged. Tags carry no engine semantics — they exist so a digest
// divergence can be attributed to a subsystem.
using EventTag = std::uint32_t;

// One committed (fired) event, as captured by the opt-in event trace.
// `seq` is the fire-order index (events committed before this one), NOT the
// schedule-time sequence: scheduling and cancelling an event must leave the
// committed stream — and so the digest — untouched.
struct FiredEvent {
  SimTime at = 0;
  std::uint64_t seq = 0;
  EventTag tag = 0;

  friend bool operator==(const FiredEvent&, const FiredEvent&) = default;
};

class Engine {
 public:
  using Callback = InlineCallback;

  [[nodiscard]] SimTime now() const { return now_; }

  // Schedules `fn` to run at absolute time `at` (must be >= now()).
  // Returns a handle usable with cancel().
  //
  // The template overload constructs the callable directly inside the
  // event slot (no intermediate InlineCallback move); the Callback
  // overload takes a pre-built callback, e.g. one moved from elsewhere.
  //
  // `daemon` events (fault-injection perturbations and the like) never keep
  // the engine alive: run()/run_until() stop as soon as no regular events
  // are pending, leaving unfired daemons queued. While regular work exists,
  // daemons fire in normal time order — so background perturbations can
  // never extend a run past its real workload, only interleave with it.
  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, Callback>>>
  EventId schedule_at(SimTime at, F&& fn, EventTag tag = 0, bool daemon = false) {
    check_schedule(at);
    const std::uint32_t idx = acquire_slot();
    Slot& s = slot(idx);
    s.fn.emplace(std::forward<F>(fn));
    s.tag = tag;
    s.daemon = daemon;
    heap_push(Entry{at, next_seq_++, idx, s.generation});
    ++live_;
    if (!daemon) ++live_regular_;
    return (static_cast<EventId>(s.generation) << 32) | idx;
  }
  EventId schedule_at(SimTime at, Callback fn, EventTag tag = 0, bool daemon = false);

  // Schedules `fn` to run `delay` after now().
  template <typename F>
  EventId schedule_after(SimTime delay, F&& fn, EventTag tag = 0, bool daemon = false) {
    return schedule_at(now_ + delay, std::forward<F>(fn), tag, daemon);
  }

  // Cancels a pending event. Returns false if the event already fired,
  // was already cancelled, or never existed.
  bool cancel(EventId id);

  // Moves a pending event to a new time, keeping its callback, tag and
  // daemon flag. Equivalent to cancel(id) + schedule_at(at, <same fn>) —
  // including the sequence number the rescheduled event receives, so the
  // FIFO tie-break (and with it the committed event stream) is identical —
  // but without releasing the slot or reconstructing the callback. Returns
  // the new handle, or kInvalidEvent (consuming nothing) when `id` already
  // fired or was cancelled.
  EventId reschedule(EventId id, SimTime at);

  // Runs events until the queue drains. Returns the number of events fired.
  std::size_t run();

  // Runs events with time <= limit. Events beyond the limit stay queued.
  std::size_t run_until(SimTime limit);

  [[nodiscard]] bool idle() const { return live_ == 0; }
  [[nodiscard]] std::size_t pending() const { return live_; }
  // Pending non-daemon events — what actually keeps run()/run_until() going.
  [[nodiscard]] std::size_t pending_regular() const { return live_regular_; }
  [[nodiscard]] std::uint64_t events_fired() const { return fired_; }
  [[nodiscard]] std::uint64_t events_scheduled() const { return next_seq_ - 1; }

  // Size of the slot pool (== high-water mark of concurrently pending
  // events). Exposed for tests and diagnostics.
  [[nodiscard]] std::size_t pool_slots() const { return num_slots_; }

  // Resets time to zero and drops all pending events. Slot generations
  // survive the reset so pre-reset EventIds stay invalid. The determinism
  // digest and event trace restart from their initial state.
  void reset();

  // --- determinism audit (opt-in; one predicted-not-taken branch per
  // fired event when off) -------------------------------------------------
  //
  // Streaming 64-bit digest over the committed event stream: every fired
  // event mixes (timestamp, schedule order, tag) into the running value.
  // Two runs produce equal digests iff they fired the same event stream —
  // same times, same scheduling order, same origins. Cancelled events never
  // commit and are excluded by construction.
  void set_digest_enabled(bool on) { digest_enabled_ = on; }
  [[nodiscard]] bool digest_enabled() const { return digest_enabled_; }
  [[nodiscard]] std::uint64_t event_digest() const { return digest_; }

  // Captures the first `cap` fired events for divergence reporting (see
  // analysis/determinism.hpp). cap == 0 disables capture.
  void enable_trace(std::size_t cap) {
    trace_cap_ = cap;
    trace_.clear();
    trace_truncated_ = false;
    if (cap != 0) trace_.reserve(cap < 4096 ? cap : 4096);
  }
  [[nodiscard]] const std::vector<FiredEvent>& trace() const { return trace_; }
  [[nodiscard]] bool trace_truncated() const { return trace_truncated_; }

  // SplitMix64 finalizer — the digest's mixing primitive. Public so tests
  // and the analysis layer can reproduce digests from traces.
  [[nodiscard]] static constexpr std::uint64_t mix64(std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  [[nodiscard]] static constexpr std::uint64_t digest_step(std::uint64_t digest,
                                                           const FiredEvent& e) {
    std::uint64_t h = mix64(static_cast<std::uint64_t>(e.at) + 0x9E3779B97F4A7C15ull);
    h = mix64(h ^ e.seq);
    h = mix64(h ^ e.tag);
    return mix64(digest ^ h);
  }

 private:
  struct Slot {
    Callback fn;
    std::uint32_t generation = 1;
    std::uint32_t next_free = kNoFreeSlot;
    std::uint32_t heap_pos = kNotInHeap;  // index of this slot's entry
    EventTag tag = 0;
    bool daemon = false;
  };
  struct Entry {
    SimTime at;
    std::uint64_t seq;  // FIFO tie-break among simultaneous events
    std::uint32_t slot;
    std::uint32_t generation;
  };
  static constexpr std::uint32_t kNoFreeSlot = 0xffffffffu;
  static constexpr std::uint32_t kNotInHeap = 0xffffffffu;
  static constexpr std::size_t kArity = 4;        // d-ary heap fan-out
  static constexpr std::uint32_t kChunkShift = 8;  // 256 slots per chunk
  static constexpr std::uint32_t kChunkSlots = 1u << kChunkShift;

  [[nodiscard]] static bool before(const Entry& a, const Entry& b) {
    // Branchless on purpose: heap sift comparisons are data-dependent and
    // mispredict heavily when written as an early-return chain.
    return (a.at < b.at) | ((a.at == b.at) & (a.seq < b.seq));
  }

  [[nodiscard]] Slot& slot(std::uint32_t idx) {
    return chunks_[idx >> kChunkShift][idx & (kChunkSlots - 1)];
  }

  void check_schedule(SimTime at) const {
    if (at < now_) throw std::logic_error("Engine: scheduling into the past");
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t idx);
  void heap_push(const Entry& e);
  void heap_pop_min();
  // Removes the entry at heap position `pos` (slot bookkeeping included).
  void heap_remove(std::size_t pos);
  // Places `e` at position `pos`, sifting up or down as its key demands.
  void heap_sift(std::size_t pos, const Entry& e);

  void commit_event(SimTime at, std::uint64_t fire_index, EventTag tag) {
    const FiredEvent ev{at, fire_index, tag};
    if (digest_enabled_) digest_ = digest_step(digest_, ev);
    if (trace_cap_ != 0) {
      if (trace_.size() < trace_cap_) {
        trace_.push_back(ev);
      } else {
        trace_truncated_ = true;
      }
    }
  }

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
  std::size_t live_regular_ = 0;
  std::uint64_t fired_ = 0;
  bool digest_enabled_ = false;
  bool trace_truncated_ = false;
  std::uint64_t digest_ = 0;
  std::size_t trace_cap_ = 0;
  std::vector<FiredEvent> trace_;
  std::vector<Entry> heap_;
  // Chunked pool: slot addresses are stable for the engine's lifetime.
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::size_t num_slots_ = 0;
  std::uint32_t free_head_ = kNoFreeSlot;
};

}  // namespace ilan::sim
