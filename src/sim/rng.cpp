#include "sim/rng.hpp"

#include <cmath>

namespace ilan::sim {

double Xoshiro256ss::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

}  // namespace ilan::sim
