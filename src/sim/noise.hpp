// Run-to-run system noise.
//
// Models the non-determinism the paper's 30-run methodology averages over:
//  * per-run, per-core effective frequency jitter (DVFS, thermal headroom);
//  * a small chance of one "disturbed" core per run (background OS activity),
//    which is what produces occasional outlier runs like the BT case the
//    paper discusses in Section 5.4;
//  * multiplicative jitter applied to scheduling-path latencies.
//
// Deterministic per (seed, run index): the same pair always produces the
// same noise realization.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"

namespace ilan::sim {

struct NoiseParams {
  double freq_jitter_sigma = 0.012;   // ~1.2% core-to-core frequency spread
  double disturbed_core_prob = 0.05;  // chance a run has one slowed core
  double disturbed_core_factor = 0.72;
  double sched_jitter_sigma = 0.10;   // spread of scheduling-path latencies
  bool enabled = true;
};

class NoiseModel {
 public:
  NoiseModel(const NoiseParams& params, std::uint64_t seed, int num_cores);

  // Multiplier applied to a core's base frequency for this run; ~1.0.
  [[nodiscard]] double core_freq_factor(int core) const {
    return freq_factor_.at(static_cast<std::size_t>(core));
  }

  // Fresh multiplicative jitter for one scheduling-path latency; >= 0.5.
  double sched_jitter();

  [[nodiscard]] bool has_disturbed_core() const { return disturbed_core_ >= 0; }
  [[nodiscard]] int disturbed_core() const { return disturbed_core_; }

 private:
  NoiseParams params_;
  std::vector<double> freq_factor_;
  int disturbed_core_ = -1;
  Xoshiro256ss jitter_rng_;
};

}  // namespace ilan::sim
