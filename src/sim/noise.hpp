// Run-to-run system noise.
//
// Models the non-determinism the paper's 30-run methodology averages over:
//  * per-run, per-core effective frequency jitter (DVFS, thermal headroom);
//  * a small chance of one "disturbed" core per run (background OS activity),
//    which is what produces occasional outlier runs like the BT case the
//    paper discusses in Section 5.4;
//  * multiplicative jitter applied to scheduling-path latencies.
//
// Deterministic per (seed, run index): the same pair always produces the
// same noise realization.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"

namespace ilan::sim {

struct NoiseParams {
  double freq_jitter_sigma = 0.012;   // ~1.2% core-to-core frequency spread
  double disturbed_core_prob = 0.05;  // chance a run has one slowed core
  double disturbed_core_factor = 0.72;
  double sched_jitter_sigma = 0.10;   // spread of scheduling-path latencies
  bool enabled = true;
};

class NoiseModel {
 public:
  NoiseModel(const NoiseParams& params, std::uint64_t seed, int num_cores);

  // Multiplier applied to a core's base frequency for this run: the static
  // per-run draw times the dynamic throttle scale (fault injection; 1.0 when
  // no fault is active, so the product is bit-identical to the static draw).
  [[nodiscard]] double core_freq_factor(int core) const {
    const auto i = static_cast<std::size_t>(core);
    return freq_factor_.at(i) * freq_scale_.at(i);
  }

  // Fresh multiplicative jitter for one scheduling-path latency; >= 0.5
  // before the dynamic latency-spike scale is applied.
  double sched_jitter();

  [[nodiscard]] bool has_disturbed_core() const { return disturbed_core_ >= 0; }
  [[nodiscard]] int disturbed_core() const { return disturbed_core_; }

  // --- dynamic perturbations (fault injection) ----------------------------
  // Unlike the per-run static draws above, these change mid-run. They draw
  // nothing from the RNG streams, so enabling them never shifts the static
  // noise realization.
  void set_freq_scale(int core, double scale);
  [[nodiscard]] double freq_scale(int core) const {
    return freq_scale_.at(static_cast<std::size_t>(core));
  }
  void set_sched_scale(double scale);
  [[nodiscard]] double sched_scale() const { return sched_scale_; }

 private:
  NoiseParams params_;
  std::vector<double> freq_factor_;
  std::vector<double> freq_scale_;  // dynamic, 1.0 = unperturbed
  double sched_scale_ = 1.0;        // dynamic latency multiplier
  int disturbed_core_ = -1;
  Xoshiro256ss jitter_rng_;
};

}  // namespace ilan::sim
