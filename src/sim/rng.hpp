// Deterministic random number generation.
//
// SplitMix64 for seeding/stream splitting, xoshiro256** for bulk draws
// (Blackman & Vigna reference algorithms). Self-contained so runs are
// bit-identical across standard libraries.
#pragma once

#include <array>
#include <cstdint>

namespace ilan::sim {

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256ss(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return UINT64_MAX; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  // Uniform integer in [0, n). n must be > 0. Uses rejection-free
  // multiply-shift (Lemire) — slight bias below 2^-64, irrelevant here.
  std::uint64_t below(std::uint64_t n) {
    const unsigned __int128 m = static_cast<unsigned __int128>((*this)()) * n;
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Standard normal via Marsaglia polar method.
  double normal();

  // Derives an independent stream for substream `tag`.
  [[nodiscard]] Xoshiro256ss split(std::uint64_t tag) const {
    SplitMix64 sm(state_[0] ^ (tag * 0x9E3779B97F4A7C15ULL) ^ state_[3]);
    return Xoshiro256ss(sm.next());
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double spare_ = 0.0;
  bool has_spare_ = false;

  friend class NoiseModel;
};

}  // namespace ilan::sim
