#include "sim/engine.hpp"

#include <stdexcept>

namespace ilan::sim {

EventId Engine::schedule_at(SimTime at, Callback fn) {
  if (at < now_) throw std::logic_error("Engine: scheduling into the past");
  if (!fn) throw std::invalid_argument("Engine: null callback");
  const EventId id = next_id_++;
  heap_.push(Entry{at, id});
  callbacks_.emplace(id, std::move(fn));
  ++live_;
  return id;
}

bool Engine::cancel(EventId id) {
  const auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  --live_;
  return true;
}

std::size_t Engine::run() { return run_until(INT64_MAX); }

std::size_t Engine::run_until(SimTime limit) {
  std::size_t n = 0;
  while (!heap_.empty()) {
    const Entry top = heap_.top();
    auto it = callbacks_.find(top.id);
    if (it == callbacks_.end()) {
      heap_.pop();  // cancelled
      continue;
    }
    if (top.at > limit) break;
    heap_.pop();
    Callback fn = std::move(it->second);
    callbacks_.erase(it);
    --live_;
    now_ = top.at;
    fn();
    ++n;
    ++fired_;
  }
  return n;
}

void Engine::reset() {
  now_ = 0;
  heap_ = {};
  callbacks_.clear();
  live_ = 0;
  fired_ = 0;
}

}  // namespace ilan::sim
