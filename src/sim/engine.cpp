#include "sim/engine.hpp"

#include <stdexcept>

namespace ilan::sim {

std::uint32_t Engine::acquire_slot() {
  if (free_head_ != kNoFreeSlot) {
    const std::uint32_t idx = free_head_;
    Slot& s = slot(idx);
    free_head_ = s.next_free;
    s.next_free = kNoFreeSlot;
    return idx;
  }
  if (num_slots_ == chunks_.size() * kChunkSlots) {
    chunks_.push_back(std::make_unique<Slot[]>(kChunkSlots));
  }
  return static_cast<std::uint32_t>(num_slots_++);
}

void Engine::release_slot(std::uint32_t idx) {
  Slot& s = slot(idx);
  s.fn.reset();
  // Bumping the generation invalidates every outstanding EventId for this
  // slot; 0 is skipped on wraparound so no id ever equals kInvalidEvent.
  if (++s.generation == 0) s.generation = 1;
  s.heap_pos = kNotInHeap;
  s.next_free = free_head_;
  free_head_ = idx;
}

void Engine::heap_push(const Entry& e) {
  std::size_t i = heap_.size();
  heap_.push_back(e);
  // Sift up, moving the hole instead of swapping.
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    slot(heap_[i].slot).heap_pos = static_cast<std::uint32_t>(i);
    i = parent;
  }
  heap_[i] = e;
  slot(e.slot).heap_pos = static_cast<std::uint32_t>(i);
}

void Engine::heap_pop_min() {
  slot(heap_.front().slot).heap_pos = kNotInHeap;
  // Bottom-up (Wegener) deletion: walk the hole from the root down the
  // min-child path to a leaf, then drop the last element into the hole and
  // sift it up. In event-driven workloads the last element is one of the
  // most recently scheduled (and so among the latest) timestamps, so the
  // sift-up almost never moves — this saves the compare-against-moved-key
  // at every level that the textbook sift-down pays.
  const std::size_t n = heap_.size() - 1;  // index of the last element
  if (n == 0) {
    heap_.pop_back();
    return;
  }
  std::size_t hole = 0;
  for (;;) {
    const std::size_t first = hole * kArity + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = first + kArity < n ? first + kArity : n;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    heap_[hole] = heap_[best];
    slot(heap_[hole].slot).heap_pos = static_cast<std::uint32_t>(hole);
    hole = best;
  }
  if (hole != n) {
    const Entry e = heap_[n];
    while (hole > 0) {
      const std::size_t parent = (hole - 1) / kArity;
      if (!before(e, heap_[parent])) break;
      heap_[hole] = heap_[parent];
      slot(heap_[hole].slot).heap_pos = static_cast<std::uint32_t>(hole);
      hole = parent;
    }
    heap_[hole] = e;
    slot(e.slot).heap_pos = static_cast<std::uint32_t>(hole);
  }
  heap_.pop_back();
}

void Engine::heap_sift(std::size_t pos, const Entry& e) {
  // Try up first; if the entry belongs at or below its parent, sift down.
  std::size_t i = pos;
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    slot(heap_[i].slot).heap_pos = static_cast<std::uint32_t>(i);
    i = parent;
  }
  if (i == pos) {
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first = i * kArity + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t last = first + kArity < n ? first + kArity : n;
      for (std::size_t c = first + 1; c < last; ++c) {
        if (before(heap_[c], heap_[best])) best = c;
      }
      if (!before(heap_[best], e)) break;
      heap_[i] = heap_[best];
      slot(heap_[i].slot).heap_pos = static_cast<std::uint32_t>(i);
      i = best;
    }
  }
  heap_[i] = e;
  slot(e.slot).heap_pos = static_cast<std::uint32_t>(i);
}

void Engine::heap_remove(std::size_t pos) {
  slot(heap_[pos].slot).heap_pos = kNotInHeap;
  const std::size_t n = heap_.size() - 1;
  if (pos == n) {
    heap_.pop_back();
    return;
  }
  const Entry e = heap_[n];
  heap_.pop_back();
  heap_sift(pos, e);
}

EventId Engine::schedule_at(SimTime at, Callback fn, EventTag tag, bool daemon) {
  check_schedule(at);
  if (!fn) throw std::invalid_argument("Engine: null callback");
  const std::uint32_t idx = acquire_slot();
  Slot& s = slot(idx);
  s.fn = std::move(fn);
  s.tag = tag;
  s.daemon = daemon;
  heap_push(Entry{at, next_seq_++, idx, s.generation});
  ++live_;
  if (!daemon) ++live_regular_;
  return (static_cast<EventId>(s.generation) << 32) | idx;
}

EventId Engine::reschedule(EventId id, SimTime at) {
  const auto idx = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (idx >= num_slots_ || slot(idx).generation != gen) return kInvalidEvent;
  check_schedule(at);
  Slot& s = slot(idx);
  // Bump the generation (the old id dies, exactly as cancel + schedule_at
  // would arrange) and move the pending entry in place. The sequence
  // number is consumed either way, so the FIFO tie-break — and the
  // committed event stream — is identical to cancel + schedule_at.
  if (++s.generation == 0) s.generation = 1;
  const std::size_t pos = s.heap_pos;
  Entry e = heap_[pos];
  e.at = at;
  e.seq = next_seq_++;
  e.generation = s.generation;
  heap_sift(pos, e);
  return (static_cast<EventId>(s.generation) << 32) | idx;
}

bool Engine::cancel(EventId id) {
  const auto idx = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (idx >= num_slots_ || slot(idx).generation != gen) return false;
  if (!slot(idx).daemon) --live_regular_;
  heap_remove(slot(idx).heap_pos);
  release_slot(idx);
  --live_;
  return true;
}

std::size_t Engine::run() { return run_until(INT64_MAX); }

std::size_t Engine::run_until(SimTime limit) {
  std::size_t n = 0;
  while (!heap_.empty()) {
    // Only daemon events left: stop without firing them — perturbations
    // must never advance time past the real workload.
    if (live_regular_ == 0) break;
    const Entry top = heap_.front();
    Slot& s = slot(top.slot);
    if (top.at > limit) break;
    heap_pop_min();
    // Two-phase release: invalidate the id now (a self-cancel from inside
    // the callback must miss, and any new event in a reused slot must get
    // a fresh generation), but keep the slot off the free list until the
    // callback has finished running in place.
    if (++s.generation == 0) s.generation = 1;
    --live_;
    if (!s.daemon) --live_regular_;
    now_ = top.at;
    commit_event(top.at, fired_, s.tag);
    s.fn();
    s.fn.reset();
    s.next_free = free_head_;
    free_head_ = top.slot;
    ++n;
    ++fired_;
  }
  return n;
}

void Engine::reset() {
  // Release live slots (bumping generations, so stale pre-reset ids can
  // never match post-reset events); every heap entry is live, and each
  // live slot has exactly one entry.
  for (const Entry& e : heap_) {
    release_slot(e.slot);
  }
  heap_.clear();
  now_ = 0;
  live_ = 0;
  live_regular_ = 0;
  fired_ = 0;
  next_seq_ = 1;
  digest_ = 0;
  trace_.clear();
  trace_truncated_ = false;
}

}  // namespace ilan::sim
