// Registry of engine event tags.
//
// Every subsystem that schedules engine events stamps them with a tag from
// this table. The engine mixes the tag into the determinism digest and the
// opt-in event trace, so when two runs diverge the first differing event
// names the subsystem that produced it (see analysis/determinism.hpp).
//
// Tags are append-only: digests are only comparable between binaries built
// from the same tag table, so renumbering an existing tag silently changes
// every digest.
#pragma once

#include "sim/engine.hpp"

namespace ilan::sim {

inline constexpr EventTag kTagUntagged = 0;
// rt::Team — worker wake-up after the serial loop prologue.
inline constexpr EventTag kTagWorkerWake = 1;
// rt::Team — worker resumes with an acquired task (post-acquire latency).
inline constexpr EventTag kTagTaskStart = 2;
// rt::Team — team barrier release at loop end.
inline constexpr EventTag kTagBarrierRelease = 3;
// mem::MemorySystem — deferred max-min rate resolve.
inline constexpr EventTag kTagMemResolve = 4;
// mem::MemorySystem — task execution completion.
inline constexpr EventTag kTagMemComplete = 5;
// fault::FaultInjector — a fault clause takes effect (daemon event).
inline constexpr EventTag kTagFaultApply = 6;
// fault::FaultInjector — a fault clause's effect is reverted (daemon event).
inline constexpr EventTag kTagFaultRevert = 7;
// serve::Server — an open-loop request arrival enters admission.
inline constexpr EventTag kTagServeArrival = 8;
// serve::Server — a shed request re-enters admission after backoff.
inline constexpr EventTag kTagServeRetry = 9;
// serve::Server — per-request deadline watchdog fires on a still-running
// job (daemon event: it observes a miss, it never extends the run).
inline constexpr EventTag kTagServeDeadline = 10;
// rt::Team — a finished task-graph node released successors; parked workers
// wake to pick the newly-ready tasks up.
inline constexpr EventTag kTagDagRelease = 11;

[[nodiscard]] constexpr const char* tag_name(EventTag tag) {
  switch (tag) {
    case kTagUntagged: return "untagged";
    case kTagWorkerWake: return "worker-wake";
    case kTagTaskStart: return "task-start";
    case kTagBarrierRelease: return "barrier-release";
    case kTagMemResolve: return "mem-resolve";
    case kTagMemComplete: return "mem-complete";
    case kTagFaultApply: return "fault-apply";
    case kTagFaultRevert: return "fault-revert";
    case kTagServeArrival: return "serve-arrival";
    case kTagServeRetry: return "serve-retry";
    case kTagServeDeadline: return "serve-deadline";
    case kTagDagRelease: return "dag-release";
    default: return "unknown";
  }
}

}  // namespace ilan::sim
