// Simulated time. Integer picoseconds: deterministic ordering, enough
// resolution for sub-nanosecond costs, ~106 days of range.
#pragma once

#include <cstdint>

namespace ilan::sim {

using SimTime = std::int64_t;  // picoseconds

inline constexpr SimTime kPsPerNs = 1'000;
inline constexpr SimTime kPsPerUs = 1'000'000;
inline constexpr SimTime kPsPerMs = 1'000'000'000;
inline constexpr SimTime kPsPerSec = 1'000'000'000'000;

[[nodiscard]] constexpr SimTime from_ns(double ns) {
  return static_cast<SimTime>(ns * static_cast<double>(kPsPerNs));
}
[[nodiscard]] constexpr SimTime from_us(double us) {
  return static_cast<SimTime>(us * static_cast<double>(kPsPerUs));
}
[[nodiscard]] constexpr SimTime from_ms(double ms) {
  return static_cast<SimTime>(ms * static_cast<double>(kPsPerMs));
}
[[nodiscard]] constexpr SimTime from_seconds(double s) {
  return static_cast<SimTime>(s * static_cast<double>(kPsPerSec));
}
[[nodiscard]] constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kPsPerSec);
}
[[nodiscard]] constexpr double to_ns(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kPsPerNs);
}

}  // namespace ilan::sim
