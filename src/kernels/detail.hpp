// Internal builder shared by the kernel factories.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "kernels/kernels.hpp"

namespace ilan::kernels::detail {

// Per-node demand for task-graph kernels: each node's cycles and access
// descriptors are precomputed at build time, so the graph's DemandFn is a
// single shared_ptr capture and a table lookup — pure and cheap, like
// make_loop's demand.
struct NodeDemand {
  double cycles = 0.0;
  std::vector<mem::AccessDescriptor> accesses;
};

[[nodiscard]] inline rt::DemandFn graph_demand(std::vector<NodeDemand> nodes) {
  auto table = std::make_shared<const std::vector<NodeDemand>>(std::move(nodes));
  return [table](std::int64_t b, std::int64_t /*e*/) {
    rt::TaskDemand d;
    const NodeDemand& nd = (*table)[static_cast<std::size_t>(b)];
    d.cpu_cycles = nd.cycles;
    d.accesses = nd.accesses;
    return d;
  };
}

// Standard iteration count: 2048 iterations -> 128 chunks at 64 threads
// with the default 2 tasks/thread, i.e. 16 iterations per chunk.
inline constexpr std::int64_t kIters = 2048;

class Builder {
 public:
  Builder(rt::Machine& m, std::string name, int default_timesteps,
          const KernelOptions& opts)
      : machine_(m), opts_(opts) {
    prog_.name = std::move(name);
    prog_.timesteps = opts.timesteps > 0 ? opts.timesteps : default_timesteps;
  }

  // Creates a first-touch region of `gb * size_factor` gigabytes.
  mem::RegionId region(const std::string& name, double gb) {
    const auto bytes = static_cast<std::uint64_t>(gb * opts_.size_factor * 1e9);
    return machine_.regions().create(prog_.name + "." + name, std::max<std::uint64_t>(bytes, 1),
                                     mem::Placement::kFirstTouch);
  }

  // One-time init taskloop writing the given regions (first touch decides
  // their page placement, as in the real applications).
  void init_loop(const std::string& name, const std::vector<mem::RegionId>& regions,
                 double cycles_per_iter = 1500.0) {
    LoopShape shape;
    shape.id = next_id_++;
    shape.name = prog_.name + "." + name;
    shape.iterations = kIters;
    shape.cycles_per_iter = cycles_per_iter;
    for (const auto r : regions) {
      shape.streams.push_back(StreamAccess{r, mem::AccessKind::kWrite, 1.0});
    }
    prog_.init_loops.push_back(make_loop(shape, machine_.regions()));
  }

  // Per-timestep taskloop. Fills in id/iterations defaults.
  void step_loop(LoopShape shape) {
    shape.id = next_id_++;
    shape.name = prog_.name + "." + shape.name;
    if (shape.iterations == 0) shape.iterations = kIters;
    if (shape.imbalance_seed == 0) {
      shape.imbalance_seed = static_cast<std::uint64_t>(shape.id) + 0x51ab;
    }
    prog_.step_loops.push_back(make_loop(shape, machine_.regions()));
  }

  // Per-timestep task graph. Fills in graph_id (same id space as the
  // taskloops — LoopExecStats and PTT entries key off it) and the
  // name prefix.
  void step_graph(rt::TaskGraphSpec g) {
    g.graph_id = next_id_++;
    g.name = prog_.name + "." + g.name;
    prog_.step_graphs.push_back(std::move(g));
  }

  void serial_per_step(double cycles) { prog_.per_step_serial.cpu_cycles = cycles; }

  [[nodiscard]] Program take() { return std::move(prog_); }

 private:
  rt::Machine& machine_;
  KernelOptions opts_;
  Program prog_;
  rt::LoopId next_id_ = 1;
};

}  // namespace ilan::kernels::detail
