// The seven evaluation workloads (paper Section 4.2), modelled at the
// granularity a scheduler sees: per-taskloop memory intensity, access
// locality, arithmetic intensity and load imbalance.
//
//   cg      — NPB Conjugate Gradient: sparse matvec, irregular gathers,
//             strong row imbalance, memory-bound (moldability case).
//   ft      — NPB Fourier Transform: three balanced FFT phases with
//             long-distance (transpose) traffic; locality-sensitive.
//   bt      — NPB Block Tri-diagonal: three structured sweeps, mid-to-high
//             arithmetic intensity, L3-tile reuse (hierarchical case).
//   sp      — NPB Scalar Penta-diagonal: three sweeps, lowest arithmetic
//             intensity, bandwidth-saturated (largest moldability win).
//   lu      — NPB Lower-Upper Gauss-Seidel: two wavefront sweeps with
//             pipeline imbalance.
//   lulesh  — LLNL hydrodynamics proxy: force / node-update / EOS loops of
//             mixed character.
//   matmul  — dense blocked matrix multiply: compute-bound, scales with
//             every core (the paper's expected-regression case).
#pragma once

#include <string>
#include <vector>

#include "kernels/program.hpp"
#include "rt/runtime.hpp"

namespace ilan::kernels {

struct KernelOptions {
  int timesteps = 0;         // 0 = kernel default
  double size_factor = 1.0;  // scales data-region sizes (and thus traffic)
};

[[nodiscard]] Program make_cg(rt::Machine& m, const KernelOptions& opts = {});
[[nodiscard]] Program make_ft(rt::Machine& m, const KernelOptions& opts = {});
[[nodiscard]] Program make_bt(rt::Machine& m, const KernelOptions& opts = {});
[[nodiscard]] Program make_sp(rt::Machine& m, const KernelOptions& opts = {});
[[nodiscard]] Program make_lu(rt::Machine& m, const KernelOptions& opts = {});
[[nodiscard]] Program make_lulesh(rt::Machine& m, const KernelOptions& opts = {});
[[nodiscard]] Program make_matmul(rt::Machine& m, const KernelOptions& opts = {});

// Task-graph workloads (rt/task_graph.hpp): dependency-structured phases a
// flat taskloop cannot express.
//
//   lu-dag  — wavefront LU tile grid (ILAN_DAG_TILE per side); parallelism
//             ramps along the anti-diagonals.
//   treered — binary tree reduction (ILAN_DAG_LEAVES heavy leaves feeding
//             cheap combines); parallelism halves per level.
//   dphim   — frequent-itemset mining pass over partitioned transactions
//             (ILAN_DAG_PARTITIONS): parallel counts, a sequential merge
//             chain, then a pruning fan-out.
[[nodiscard]] Program make_lu_dag(rt::Machine& m, const KernelOptions& opts = {});
[[nodiscard]] Program make_treered(rt::Machine& m, const KernelOptions& opts = {});
[[nodiscard]] Program make_dphim(rt::Machine& m, const KernelOptions& opts = {});

// Registry in the paper's presentation order: FT, BT, CG, LU, SP, Matmul,
// LULESH. Deliberately excludes the task-graph workloads so sweeps over
// kernel_names() (bench defaults, golden digest tables) keep their
// historical contents; dag_kernel_names() lists those.
[[nodiscard]] const std::vector<std::string>& kernel_names();
[[nodiscard]] const std::vector<std::string>& dag_kernel_names();
// Resolves names from both lists.
[[nodiscard]] Program make_kernel(const std::string& name, rt::Machine& m,
                                  const KernelOptions& opts = {});

}  // namespace ilan::kernels
