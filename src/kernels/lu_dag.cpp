// Wavefront LU factorization as an explicit task DAG.
//
// The taskloop `lu` kernel approximates the hyperplane pipeline with a
// static imbalance profile; this variant expresses it exactly: a B x B tile
// grid where tile (i, j) depends on its north and west neighbours, so the
// ready front sweeps the anti-diagonals. Parallelism ramps from 1 to B and
// back — the shape that rewards dependency-aware placement (children run
// where their operands just got written) and punishes a scheduler that
// scatters the front.
//
// Knob: ILAN_DAG_TILE — tiles per side (default 12, so 144 nodes).
#include <algorithm>
#include <utility>

#include "kernels/detail.hpp"
#include "obs/env.hpp"

namespace ilan::kernels {

Program make_lu_dag(rt::Machine& m, const KernelOptions& opts) {
  const int tile = obs::parse_env_int("ILAN_DAG_TILE", 12, 2, 64);
  detail::Builder b(m, "lu-dag", /*default_timesteps=*/6, opts);

  const auto u = b.region("u", 0.45);
  const auto rsd = b.region("rsd", 0.45);
  b.init_loop("init", {u, rsd});

  const auto n = static_cast<std::int64_t>(tile) * tile;
  const std::uint64_t u_bytes = m.regions().get(u).bytes();
  const std::uint64_t rsd_bytes = m.regions().get(rsd).bytes();

  rt::TaskGraphSpec g;
  g.name = "wavefront";
  std::vector<detail::NodeDemand> nodes;
  nodes.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < tile; ++i) {
    for (int j = 0; j < tile; ++j) {
      std::vector<std::int32_t> preds;
      if (i > 0) preds.push_back(static_cast<std::int32_t>((i - 1) * tile + j));
      if (j > 0) preds.push_back(static_cast<std::int32_t>(i * tile + (j - 1)));
      g.add_node(std::move(preds));

      const auto node = static_cast<std::int64_t>(i) * tile + j;
      detail::NodeDemand nd;
      // Diagonal tiles carry the panel factorization; off-diagonal tiles
      // are cheaper updates. Deterministic per-tile jitter keeps the front
      // from being perfectly uniform.
      const double base = i == j ? 9.0e6 : 5.5e6;
      nd.cycles = base * imbalance_factor_range(0x1da9, node, node + 1, 0.25);
      // Tile (i, j) owns the slice [node/n, (node+1)/n) of each region:
      // reads its row of u and column strip of rsd, writes its u slice.
      const auto slice = [&](std::uint64_t bytes) {
        const auto off = static_cast<std::uint64_t>(
            static_cast<double>(bytes) * static_cast<double>(node) /
            static_cast<double>(n));
        auto end = static_cast<std::uint64_t>(
            static_cast<double>(bytes) * static_cast<double>(node + 1) /
            static_cast<double>(n));
        end = std::max(end, off + 1);
        return std::pair<std::uint64_t, std::uint64_t>{off, end - off};
      };
      const auto [u_off, u_len] = slice(u_bytes);
      const auto [r_off, r_len] = slice(rsd_bytes);
      nd.accesses.push_back(
          mem::AccessDescriptor{u, u_off, u_len, mem::AccessKind::kRead});
      nd.accesses.push_back(
          mem::AccessDescriptor{rsd, r_off, r_len, mem::AccessKind::kRead});
      nd.accesses.push_back(
          mem::AccessDescriptor{u, u_off, u_len, mem::AccessKind::kWrite});
      nodes.push_back(std::move(nd));
    }
  }
  g.demand = detail::graph_demand(std::move(nodes));
  b.step_graph(std::move(g));
  b.serial_per_step(1.2e6);
  return b.take();
}

}  // namespace ilan::kernels
