// NPB Lower-Upper Gauss-Seidel solver (class-D character, scaled).
//
// Profile: two wavefront sweeps (lower and upper triangular) per timestep.
// The pipelined wavefront gives uneven chunk costs (start-up and drain of
// the hyperplane pipeline), and intensity sits between BT and SP.
#include "kernels/detail.hpp"

namespace ilan::kernels {

Program make_lu(rt::Machine& m, const KernelOptions& opts) {
  detail::Builder b(m, "lu", /*default_timesteps=*/55, opts);

  const auto u = b.region("u", 0.45);
  const auto rsd = b.region("rsd", 0.45);

  b.init_loop("init", {u, rsd});

  for (const char* dir : {"lower-sweep", "upper-sweep"}) {
    LoopShape sweep;
    sweep.name = dir;
    sweep.cycles_per_iter = 400e3;
    sweep.streams = {
        StreamAccess{u, mem::AccessKind::kRead, 1.0},
        StreamAccess{rsd, mem::AccessKind::kRead, 1.0},
        StreamAccess{u, mem::AccessKind::kWrite, 0.6},
    };
    sweep.imbalance = 0.30;  // hyperplane pipeline fill/drain
    b.step_loop(std::move(sweep));
  }
  b.serial_per_step(1.2e6);
  return b.take();
}

}  // namespace ilan::kernels
