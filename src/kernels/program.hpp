// Workload-model infrastructure.
//
// A kernel is described as a Program: data regions (created on a Machine's
// RegionTable), one-time init taskloops (whose first touch decides page
// placement, as in the real applications), and a list of per-timestep
// taskloop phases. Each taskloop's per-iteration demand is declarative: a
// cycles-per-iteration cost, full-slice streaming accesses over regions,
// gather accesses sampled across a region, and an optional deterministic
// imbalance profile — exactly the features that matter to a scheduler
// study (memory intensity, access locality, load imbalance).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rt/task.hpp"
#include "rt/task_graph.hpp"
#include "rt/team.hpp"

namespace ilan::kernels {

// Streaming access: a task covering iterations [b, e) touches the region
// slice [b/iters, e/iters) of the region (scaled by `traffic_factor` for
// partially-read sweeps).
struct StreamAccess {
  mem::RegionId region = -1;
  mem::AccessKind kind = mem::AccessKind::kRead;
  double traffic_factor = 1.0;
};

// Irregular access: bytes_per_iter bytes sampled across the whole region.
struct GatherAccess {
  mem::RegionId region = -1;
  double bytes_per_iter = 0.0;
};

struct LoopShape {
  rt::LoopId id = 0;
  std::string name;
  std::int64_t iterations = 0;
  double cycles_per_iter = 0.0;
  std::vector<StreamAccess> streams;
  std::vector<GatherAccess> gathers;
  // Deterministic per-chunk load imbalance: demands are scaled by
  // 1 + imbalance * u, u in [-1, 1] drawn from a hash of the chunk start.
  double imbalance = 0.0;
  // Heavy-tail component: with probability tail_prob (per chunk) the demand
  // is additionally multiplied by tail_factor — dense rows / expensive
  // material zones that random work stealing absorbs but static or strictly
  // node-confined schedules cannot.
  double tail_prob = 0.0;
  double tail_factor = 1.0;
  std::uint64_t imbalance_seed = 0;
  int tasks_per_thread = 2;
};

// Builds a runtime taskloop spec whose demand function realizes the shape.
// `regions` must outlive the spec.
[[nodiscard]] rt::TaskloopSpec make_loop(const LoopShape& shape,
                                         const mem::RegionTable& regions);

struct SerialSection {
  double cpu_cycles = 0.0;
};

struct Program {
  std::string name;
  int timesteps = 1;
  std::vector<rt::TaskloopSpec> init_loops;  // run once, placement-deciding
  std::vector<rt::TaskloopSpec> step_loops;  // run every timestep, in order
  // Per-timestep task graphs (run after the step loops each round) — the
  // dependency-structured phases (wavefront tiles, reduction trees) that a
  // flat taskloop cannot express.
  std::vector<rt::TaskGraphSpec> step_graphs;
  SerialSection per_step_serial;             // e.g. reductions / convergence checks

  // Executes init loops once and the step loops + step graphs for
  // `timesteps` rounds. Returns the simulated duration of the timed section
  // (everything).
  sim::SimTime run(rt::Team& team) const;
};

// Deterministic imbalance multiplier for the 8-iteration block containing
// chunk_begin: in [1-amplitude, 1+amplitude], optionally scaled by
// tail_factor with probability tail_prob.
[[nodiscard]] double imbalance_factor(std::uint64_t seed, std::int64_t chunk_begin,
                                      double amplitude, double tail_prob = 0.0,
                                      double tail_factor = 1.0);

// Length-weighted average of the block factors across [begin, end) — what a
// chunk covering that iteration range costs relative to the mean. Chunking-
// independent: re-chunking the loop samples the same cost landscape.
[[nodiscard]] double imbalance_factor_range(std::uint64_t seed, std::int64_t begin,
                                            std::int64_t end, double amplitude,
                                            double tail_prob = 0.0,
                                            double tail_factor = 1.0);

}  // namespace ilan::kernels
