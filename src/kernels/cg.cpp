// NPB Conjugate Gradient (class-D character, scaled).
//
// The scheduling-relevant profile: a sparse matrix-vector product that
// streams matrix bands while gathering irregularly from the solution
// vector's index space — dominated by latency-bound gathers whose
// achievable bandwidth collapses under controller queueing (the paper's
// "irregular memory access patterns" for CG). Strong per-row-band nonzero
// imbalance with occasional dense bands: random global stealing absorbs
// them, strictly node-confined schedules cannot — which is why the paper's
// Figure 4 shows CG *losing* 8.6% without moldability while full ILAN
// (an average of ~25 of 64 cores) gains 8%.
#include "kernels/detail.hpp"

namespace ilan::kernels {

Program make_cg(rt::Machine& m, const KernelOptions& opts) {
  detail::Builder b(m, "cg", /*default_timesteps=*/60, opts);

  const auto A = b.region("A", 0.35);       // sparse matrix (vals + indices)
  const auto x = b.region("x", 0.024);      // solution vector
  const auto p = b.region("p", 0.024);      // direction
  const auto q = b.region("q", 0.024);      // A*p
  const auto r = b.region("r", 0.024);      // residual

  b.init_loop("init", {A, x, p, q, r});

  {
    LoopShape matvec;
    matvec.name = "matvec";
    matvec.cycles_per_iter = 25e3;  // ~2 flops per nonzero
    matvec.streams = {
        StreamAccess{q, mem::AccessKind::kWrite, 1.0},
    };
    // Irregular traversal of matrix bands + column gathers.
    matvec.gathers = {GatherAccess{A, 230e3}, GatherAccess{x, 100e3}};
    matvec.imbalance = 0.35;  // nonzeros per row band vary
    matvec.tail_prob = 0.02;  // occasional dense row bands
    matvec.tail_factor = 3.0;
    b.step_loop(std::move(matvec));
  }
  {
    LoopShape vecops;  // alpha/beta updates: p, r, x axpy chain
    vecops.name = "vecops";
    vecops.cycles_per_iter = 15e3;
    vecops.streams = {
        StreamAccess{p, mem::AccessKind::kRead, 1.0},
        StreamAccess{r, mem::AccessKind::kRead, 1.0},
        StreamAccess{x, mem::AccessKind::kWrite, 1.0},
    };
    b.step_loop(std::move(vecops));
  }
  b.serial_per_step(2e6);  // dot-product reductions / convergence check
  return b.take();
}

}  // namespace ilan::kernels
