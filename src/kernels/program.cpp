#include "kernels/program.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/rng.hpp"

namespace ilan::kernels {

namespace {
// Imbalance is defined on fixed 8-iteration blocks of the iteration space,
// so any chunking (any thread count / grainsize) samples the same cost
// landscape — dense rows do not move when the scheduler re-chunks the loop.
constexpr std::int64_t kImbalanceBlock = 8;

double block_factor(std::uint64_t seed, std::int64_t block, double amplitude,
                    double tail_prob, double tail_factor) {
  sim::SplitMix64 h(seed ^ (0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(block + 1)));
  const double u = static_cast<double>(h.next() >> 11) * 0x1.0p-53;  // [0,1)
  double f = 1.0 + amplitude * (2.0 * u - 1.0);
  if (tail_prob > 0.0) {
    const double v = static_cast<double>(h.next() >> 11) * 0x1.0p-53;
    if (v < tail_prob) f *= tail_factor;
  }
  return f;
}
}  // namespace

double imbalance_factor(std::uint64_t seed, std::int64_t chunk_begin,
                        double amplitude, double tail_prob, double tail_factor) {
  return imbalance_factor_range(seed, chunk_begin, chunk_begin + kImbalanceBlock,
                                amplitude, tail_prob, tail_factor);
}

double imbalance_factor_range(std::uint64_t seed, std::int64_t begin, std::int64_t end,
                              double amplitude, double tail_prob, double tail_factor) {
  if ((amplitude <= 0.0 && tail_prob <= 0.0) || end <= begin) return 1.0;
  const std::int64_t first = begin / kImbalanceBlock;
  const std::int64_t last = (end - 1) / kImbalanceBlock;
  double sum = 0.0;
  double weight = 0.0;
  for (std::int64_t blk = first; blk <= last; ++blk) {
    const std::int64_t lo = std::max(begin, blk * kImbalanceBlock);
    const std::int64_t hi = std::min(end, (blk + 1) * kImbalanceBlock);
    const double w = static_cast<double>(hi - lo);
    sum += w * block_factor(seed, blk, amplitude, tail_prob, tail_factor);
    weight += w;
  }
  return sum / weight;
}

rt::TaskloopSpec make_loop(const LoopShape& shape, const mem::RegionTable& regions) {
  if (shape.iterations <= 0) throw std::invalid_argument("make_loop: iterations required");

  // Capture region byte sizes by value: the demand function must be pure
  // and cheap.
  struct StreamInfo {
    mem::RegionId region;
    mem::AccessKind kind;
    double traffic_factor;
    std::uint64_t bytes;
  };
  std::vector<StreamInfo> streams;
  streams.reserve(shape.streams.size());
  for (const auto& s : shape.streams) {
    streams.push_back({s.region, s.kind, s.traffic_factor, regions.get(s.region).bytes()});
  }
  std::vector<GatherAccess> gathers = shape.gathers;

  rt::TaskloopSpec spec;
  spec.loop_id = shape.id;
  spec.name = shape.name;
  spec.iterations = shape.iterations;
  spec.tasks_per_thread = shape.tasks_per_thread;

  const double cpi = shape.cycles_per_iter;
  const double amp = shape.imbalance;
  const double tail_p = shape.tail_prob;
  const double tail_f = shape.tail_factor;
  const std::uint64_t iseed = shape.imbalance_seed;
  const std::int64_t iters = shape.iterations;

  spec.demand = [cpi, amp, tail_p, tail_f, iseed, iters, streams = std::move(streams),
                 gathers = std::move(gathers)](std::int64_t b, std::int64_t e) {
    rt::TaskDemand d;
    const double n = static_cast<double>(e - b);
    const double factor = imbalance_factor_range(iseed, b, e, amp, tail_p, tail_f);
    d.cpu_cycles = cpi * n * factor;
    for (const auto& s : streams) {
      // The slice of the region owned by iterations [b, e).
      const auto off = static_cast<std::uint64_t>(
          static_cast<double>(s.bytes) * static_cast<double>(b) /
          static_cast<double>(iters));
      auto end_off = static_cast<std::uint64_t>(
          static_cast<double>(s.bytes) * static_cast<double>(e) /
          static_cast<double>(iters));
      end_off = std::min<std::uint64_t>(end_off, s.bytes);
      if (end_off <= off) continue;
      auto len = static_cast<std::uint64_t>(
          static_cast<double>(end_off - off) * s.traffic_factor * factor);
      len = std::min<std::uint64_t>(std::max<std::uint64_t>(len, 1), s.bytes - off);
      // len is traffic (imbalance can amplify it past the slice); the
      // distinct bytes this task owns are exactly its slice [off, end_off).
      d.accesses.push_back(
          mem::AccessDescriptor{s.region, off, len, s.kind, end_off - off});
    }
    for (const auto& g : gathers) {
      const auto len = static_cast<std::uint64_t>(g.bytes_per_iter * n * factor);
      if (len == 0) continue;
      d.accesses.push_back(
          mem::AccessDescriptor{g.region, 0, len, mem::AccessKind::kGather});
    }
    return d;
  };
  return spec;
}

sim::SimTime Program::run(rt::Team& team) const {
  const sim::SimTime t0 = team.now();
  for (const auto& loop : init_loops) team.run_taskloop(loop);
  for (int t = 0; t < timesteps; ++t) {
    for (const auto& loop : step_loops) team.run_taskloop(loop);
    for (const auto& graph : step_graphs) team.run_taskgraph(graph);
    if (per_step_serial.cpu_cycles > 0.0) {
      team.serial_compute(per_step_serial.cpu_cycles);
    }
  }
  return team.now() - t0;
}

}  // namespace ilan::kernels
