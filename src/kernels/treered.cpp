// Binary tree reduction as a task DAG.
//
// L heavy leaves (each streaming its own slice of the input) feed a binary
// combine tree of cheap nodes down to a single root — 2L-1 nodes total.
// Parallelism halves every level, so the tail of the execution is
// placement-dominated: a combine node wants to run where its two children
// left their partials. The leaves' imbalance gives work stealing something
// to do while the tree is still wide.
//
// Knob: ILAN_DAG_LEAVES — leaf count (default 256; rounded down to a power
// of two so the tree is perfect).
#include <algorithm>

#include "kernels/detail.hpp"
#include "obs/env.hpp"

namespace ilan::kernels {

Program make_treered(rt::Machine& m, const KernelOptions& opts) {
  int leaves = obs::parse_env_int("ILAN_DAG_LEAVES", 256, 2, 4096);
  while ((leaves & (leaves - 1)) != 0) leaves &= leaves - 1;  // power of two

  detail::Builder b(m, "treered", /*default_timesteps=*/8, opts);

  const auto input = b.region("input", 1.2);
  const auto partials = b.region("partials", 0.02);
  b.init_loop("init", {input, partials});

  const std::uint64_t in_bytes = m.regions().get(input).bytes();
  const std::uint64_t part_bytes = m.regions().get(partials).bytes();
  const auto total = static_cast<std::int64_t>(2 * leaves - 1);

  rt::TaskGraphSpec g;
  g.name = "reduce";
  std::vector<detail::NodeDemand> nodes;
  nodes.reserve(static_cast<std::size_t>(total));

  // Every node (leaf or combine) owns one partial slot; a combine node
  // reads its children's slots and writes its own.
  const auto part_slot = [&](std::int64_t node) {
    const auto off = static_cast<std::uint64_t>(
        static_cast<double>(part_bytes) * static_cast<double>(node) /
        static_cast<double>(total));
    auto end = static_cast<std::uint64_t>(
        static_cast<double>(part_bytes) * static_cast<double>(node + 1) /
        static_cast<double>(total));
    end = std::max(end, off + 1);
    return std::pair<std::uint64_t, std::uint64_t>{off, end - off};
  };

  // Leaves: nodes 0..L-1, each streaming in_bytes/L of the input.
  for (std::int64_t l = 0; l < leaves; ++l) {
    g.add_node();
    detail::NodeDemand nd;
    nd.cycles = 3.0e6 * imbalance_factor_range(0x7ee, l, l + 1, 0.35);
    const auto off = static_cast<std::uint64_t>(
        static_cast<double>(in_bytes) * static_cast<double>(l) /
        static_cast<double>(leaves));
    auto end = static_cast<std::uint64_t>(
        static_cast<double>(in_bytes) * static_cast<double>(l + 1) /
        static_cast<double>(leaves));
    end = std::max(end, off + 1);
    nd.accesses.push_back(
        mem::AccessDescriptor{input, off, end - off, mem::AccessKind::kRead});
    const auto [p_off, p_len] = part_slot(l);
    nd.accesses.push_back(
        mem::AccessDescriptor{partials, p_off, p_len, mem::AccessKind::kWrite});
    nodes.push_back(std::move(nd));
  }

  // Combine levels: each level pairs up the previous level's nodes in
  // order; `lo` tracks where the previous level starts.
  std::int64_t lo = 0;
  std::int64_t width = leaves;
  while (width > 1) {
    for (std::int64_t i = 0; i < width / 2; ++i) {
      const auto left = static_cast<std::int32_t>(lo + 2 * i);
      const auto right = static_cast<std::int32_t>(lo + 2 * i + 1);
      const std::int64_t node = g.add_node({left, right});
      detail::NodeDemand nd;
      nd.cycles = 0.4e6;
      const auto [l_off, l_len] = part_slot(left);
      const auto [r_off, r_len] = part_slot(right);
      const auto [o_off, o_len] = part_slot(node);
      nd.accesses.push_back(
          mem::AccessDescriptor{partials, l_off, l_len, mem::AccessKind::kRead});
      nd.accesses.push_back(
          mem::AccessDescriptor{partials, r_off, r_len, mem::AccessKind::kRead});
      nd.accesses.push_back(
          mem::AccessDescriptor{partials, o_off, o_len, mem::AccessKind::kWrite});
      nodes.push_back(std::move(nd));
    }
    lo += width;
    width /= 2;
  }

  g.demand = detail::graph_demand(std::move(nodes));
  b.step_graph(std::move(g));
  b.serial_per_step(0.8e6);
  return b.take();
}

}  // namespace ilan::kernels
