// LULESH (LLNL shock-hydrodynamics proxy app; the paper runs size 400^3
// over 200 iterations, scaled here).
//
// Profile: three distinct per-timestep loop regions — a compute-heavy
// force/stress calculation, a bandwidth-bound nodal update, and an
// EOS/constraint pass with element->node indirection. Mixed character:
// the paper observes a modest net ILAN gain.
#include "kernels/detail.hpp"

namespace ilan::kernels {

Program make_lulesh(rt::Machine& m, const KernelOptions& opts) {
  detail::Builder b(m, "lulesh", /*default_timesteps=*/50, opts);

  const auto nodes = b.region("nodes", 0.2);      // coordinates, velocities
  const auto elems = b.region("elems", 0.3);      // element state
  const auto derived = b.region("derived", 0.15);  // forces, gradients

  b.init_loop("init", {nodes, elems, derived});

  {
    LoopShape force;
    force.name = "calc-force";
    force.cycles_per_iter = 800e3;  // hourglass + stress integration
    force.streams = {
        StreamAccess{nodes, mem::AccessKind::kRead, 1.0},
        StreamAccess{elems, mem::AccessKind::kRead, 1.0},
        StreamAccess{derived, mem::AccessKind::kWrite, 1.0},
    };
    force.imbalance = 0.20;  // material-dependent branchiness
    b.step_loop(std::move(force));
  }
  {
    LoopShape update;
    update.name = "node-update";
    update.cycles_per_iter = 55e3;  // pure streaming axpy over nodal fields
    update.streams = {
        StreamAccess{derived, mem::AccessKind::kRead, 1.0},
        StreamAccess{nodes, mem::AccessKind::kWrite, 1.0},
    };
    update.imbalance = 0.05;
    b.step_loop(std::move(update));
  }
  {
    LoopShape eos;
    eos.name = "eos";
    eos.cycles_per_iter = 260e3;  // equation of state, Newton iterations
    eos.streams = {
        StreamAccess{elems, mem::AccessKind::kRead, 1.0},
        StreamAccess{elems, mem::AccessKind::kWrite, 0.5},
    };
    eos.gathers = {GatherAccess{derived, 24e3}};  // element->node indirection
    eos.imbalance = 0.10;
    b.step_loop(std::move(eos));
  }
  b.serial_per_step(1.5e6);  // dt computation (global reductions)
  return b.take();
}

}  // namespace ilan::kernels
