// DPHIM-style frequent-itemset mining pass over partitioned transactions.
//
// One mining round as a three-stage DAG: P parallel count nodes (each
// scanning its own transaction partition and writing a private count
// table), a sequential merge chain folding the partial tables left to
// right (merge j depends on merge j-1 and count j), and a P-wide prune
// fan-out off the final merge (each pruning node gathers irregularly over
// the merged table while rescanning its partition). The chain serializes
// the middle — dependency-aware placement keeps it near the freshest
// partials — and the fan-out re-widens instantly, exercising the
// release-then-wake path en masse.
//
// Knob: ILAN_DAG_PARTITIONS — transaction partitions (default 32).
#include <algorithm>

#include "kernels/detail.hpp"
#include "obs/env.hpp"

namespace ilan::kernels {

Program make_dphim(rt::Machine& m, const KernelOptions& opts) {
  const int parts = obs::parse_env_int("ILAN_DAG_PARTITIONS", 32, 2, 1024);

  detail::Builder b(m, "dphim", /*default_timesteps=*/5, opts);

  const auto txns = b.region("txns", 1.6);
  const auto counts = b.region("counts", 0.08);
  b.init_loop("init", {txns, counts});

  const std::uint64_t txn_bytes = m.regions().get(txns).bytes();
  const std::uint64_t cnt_bytes = m.regions().get(counts).bytes();

  const auto txn_slice = [&](int p) {
    const auto off = static_cast<std::uint64_t>(
        static_cast<double>(txn_bytes) * p / parts);
    auto end = static_cast<std::uint64_t>(
        static_cast<double>(txn_bytes) * (p + 1) / parts);
    end = std::max(end, off + 1);
    return std::pair<std::uint64_t, std::uint64_t>{off, end - off};
  };
  // Private count table of partition p: slot p of `counts`; slot `parts`
  // (the last) is the merged table.
  const auto cnt_slot = [&](int p) {
    const auto off = static_cast<std::uint64_t>(
        static_cast<double>(cnt_bytes) * p / (parts + 1));
    auto end = static_cast<std::uint64_t>(
        static_cast<double>(cnt_bytes) * (p + 1) / (parts + 1));
    end = std::max(end, off + 1);
    return std::pair<std::uint64_t, std::uint64_t>{off, end - off};
  };

  rt::TaskGraphSpec g;
  g.name = "mine";
  std::vector<detail::NodeDemand> nodes;
  nodes.reserve(static_cast<std::size_t>(3 * parts));

  // Stage 1 — count: nodes 0..P-1. Transaction skew (long transactions
  // cluster) gives the heavy tail.
  for (int p = 0; p < parts; ++p) {
    g.add_node();
    detail::NodeDemand nd;
    nd.cycles = 4.5e6 * imbalance_factor_range(0xd1a, p, p + 1, 0.4, 0.1, 2.5);
    const auto [t_off, t_len] = txn_slice(p);
    const auto [c_off, c_len] = cnt_slot(p);
    nd.accesses.push_back(
        mem::AccessDescriptor{txns, t_off, t_len, mem::AccessKind::kRead});
    nd.accesses.push_back(
        mem::AccessDescriptor{counts, c_off, c_len, mem::AccessKind::kWrite});
    nodes.push_back(std::move(nd));
  }

  // Stage 2 — merge chain: node P+j folds count j's table into the merged
  // slot. merge 0 depends only on count 0; merge j on merge j-1 + count j.
  const auto [m_off, m_len] = cnt_slot(parts);
  for (int j = 0; j < parts; ++j) {
    std::vector<std::int32_t> preds{static_cast<std::int32_t>(j)};
    if (j > 0) preds.push_back(static_cast<std::int32_t>(parts + j - 1));
    g.add_node(std::move(preds));
    detail::NodeDemand nd;
    nd.cycles = 0.9e6;
    const auto [c_off, c_len] = cnt_slot(j);
    nd.accesses.push_back(
        mem::AccessDescriptor{counts, c_off, c_len, mem::AccessKind::kRead});
    nd.accesses.push_back(
        mem::AccessDescriptor{counts, m_off, m_len, mem::AccessKind::kWrite});
    nodes.push_back(std::move(nd));
  }

  // Stage 3 — prune fan-out: node 2P+p rescans partition p against the
  // merged table (irregular candidate lookups -> gather).
  const auto last_merge = static_cast<std::int32_t>(2 * parts - 1);
  for (int p = 0; p < parts; ++p) {
    g.add_node({last_merge});
    detail::NodeDemand nd;
    nd.cycles = 2.2e6 * imbalance_factor_range(0xd1b, p, p + 1, 0.3);
    const auto [t_off, t_len] = txn_slice(p);
    nd.accesses.push_back(
        mem::AccessDescriptor{txns, t_off, t_len, mem::AccessKind::kRead});
    nd.accesses.push_back(mem::AccessDescriptor{
        counts, 0, std::max<std::uint64_t>(t_len / 16, 1), mem::AccessKind::kGather});
    nodes.push_back(std::move(nd));
  }

  g.demand = detail::graph_demand(std::move(nodes));
  b.step_graph(std::move(g));
  b.serial_per_step(1.0e6);
  return b.take();
}

}  // namespace ilan::kernels
