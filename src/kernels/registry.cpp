#include <stdexcept>

#include "kernels/kernels.hpp"

namespace ilan::kernels {

const std::vector<std::string>& kernel_names() {
  static const std::vector<std::string> names = {"ft", "bt", "cg",     "lu",
                                                 "sp", "matmul", "lulesh"};
  return names;
}

const std::vector<std::string>& dag_kernel_names() {
  static const std::vector<std::string> names = {"lu-dag", "treered", "dphim"};
  return names;
}

Program make_kernel(const std::string& name, rt::Machine& m,
                    const KernelOptions& opts) {
  if (name == "cg") return make_cg(m, opts);
  if (name == "ft") return make_ft(m, opts);
  if (name == "bt") return make_bt(m, opts);
  if (name == "sp") return make_sp(m, opts);
  if (name == "lu") return make_lu(m, opts);
  if (name == "lulesh") return make_lulesh(m, opts);
  if (name == "matmul") return make_matmul(m, opts);
  if (name == "lu-dag") return make_lu_dag(m, opts);
  if (name == "treered") return make_treered(m, opts);
  if (name == "dphim") return make_dphim(m, opts);
  throw std::invalid_argument("make_kernel: unknown kernel '" + name + "'");
}

}  // namespace ilan::kernels
