// NPB Block Tri-diagonal solver (class-D character, scaled).
//
// Profile: three directional sweeps over the grid solving 5x5 block
// systems — mid/high arithmetic intensity with a per-task working set that
// tiles into the CCD L3. When successive executions keep iterations on the
// same CCD (ILAN's deterministic block mapping), the sweeps re-hit their
// tiles and local pages; the paper attributes BT's +16.9% entirely to the
// hierarchical layer (no thread reduction).
#include "kernels/detail.hpp"

namespace ilan::kernels {

Program make_bt(rt::Machine& m, const KernelOptions& opts) {
  detail::Builder b(m, "bt", /*default_timesteps=*/50, opts);

  const auto u = b.region("u", 0.25);
  const auto rhs = b.region("rhs", 0.25);
  const auto fjac = b.region("fjac", 0.10);  // block Jacobians

  b.init_loop("init", {u, rhs, fjac});

  for (const char* dir : {"x-solve", "y-solve", "z-solve"}) {
    LoopShape sweep;
    sweep.name = dir;
    sweep.cycles_per_iter = 345e3;  // 5x5 block LU per cell: compute-heavy
    sweep.streams = {
        StreamAccess{rhs, mem::AccessKind::kRead, 1.0},
        StreamAccess{u, mem::AccessKind::kRead, 1.0},
        StreamAccess{fjac, mem::AccessKind::kRead, 1.0},
        StreamAccess{u, mem::AccessKind::kWrite, 1.0},
    };
    sweep.imbalance = 0.05;
    b.step_loop(std::move(sweep));
  }
  b.serial_per_step(1e6);
  return b.take();
}

}  // namespace ilan::kernels
