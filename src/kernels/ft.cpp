// NPB Fourier Transform (3-D FFT, class-D character, scaled; the paper runs
// FT with its iteration count raised from 25 to 200 so the exploration can
// amortize — we keep proportionally many timesteps).
//
// Profile: three balanced per-timestep phases. The x/y butterfly passes
// stream the grid with moderate arithmetic intensity; the z pass is the
// long-distance one — a transpose whose strided traffic samples the whole
// grid. No load imbalance: this is the benchmark where static work-sharing
// is expected to win (Figure 6) and where ILAN's gains are pure locality.
#include "kernels/detail.hpp"

namespace ilan::kernels {

Program make_ft(rt::Machine& m, const KernelOptions& opts) {
  detail::Builder b(m, "ft", /*default_timesteps=*/60, opts);

  const auto u0 = b.region("u0", 0.6);  // grid (complex)
  const auto u1 = b.region("u1", 0.6);  // scratch / transposed grid

  b.init_loop("init", {u0, u1});

  {
    LoopShape fx;
    fx.name = "fft-x";
    fx.cycles_per_iter = 520e3;
    fx.streams = {
        StreamAccess{u0, mem::AccessKind::kRead, 1.0},
        StreamAccess{u0, mem::AccessKind::kWrite, 1.0},
    };
    b.step_loop(std::move(fx));
  }
  {
    LoopShape fy;
    fy.name = "fft-y";
    fy.cycles_per_iter = 520e3;
    fy.streams = {
        StreamAccess{u0, mem::AccessKind::kRead, 1.0},
        StreamAccess{u0, mem::AccessKind::kWrite, 1.0},
    };
    b.step_loop(std::move(fy));
  }
  {
    LoopShape fz;  // transpose + z butterflies: long-distance communication
    fz.name = "transpose-fft-z";
    fz.cycles_per_iter = 430e3;
    fz.streams = {
        StreamAccess{u0, mem::AccessKind::kRead, 1.0},
        StreamAccess{u1, mem::AccessKind::kWrite, 1.0},
    };
    fz.gathers = {GatherAccess{u0, 64e3}};  // strided remote touches
    b.step_loop(std::move(fz));
  }
  b.serial_per_step(1.5e6);  // checksum
  return b.take();
}

}  // namespace ilan::kernels
