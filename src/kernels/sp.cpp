// NPB Scalar Penta-diagonal solver (class-D character, scaled).
//
// Profile: three directional sweeps whose forward/backward substitutions
// chase dependent, strided lines through the grid — the paper's Section 5.2
// singles out SP (with CG) for "irregular memory access patterns, leading
// to memory contention". Modelled as moderate streaming plus a dominant
// latency-bound gather component whose achievable bandwidth degrades with
// controller queueing: the workload where moldability pays off most
// (the paper's largest win, +45.8%).
#include "kernels/detail.hpp"

namespace ilan::kernels {

Program make_sp(rt::Machine& m, const KernelOptions& opts) {
  detail::Builder b(m, "sp", /*default_timesteps=*/50, opts);

  const auto u = b.region("u", 0.35);
  const auto rhs = b.region("rhs", 0.35);
  const auto lhs = b.region("lhs", 0.45);  // penta-diagonal factor lines

  b.init_loop("init", {u, rhs, lhs});

  for (const char* dir : {"x-sweep", "y-sweep", "z-sweep"}) {
    LoopShape sweep;
    sweep.name = dir;
    sweep.cycles_per_iter = 120e3;  // scalar forward/back substitution
    sweep.streams = {
        StreamAccess{u, mem::AccessKind::kRead, 0.5},
        StreamAccess{rhs, mem::AccessKind::kRead, 0.5},
        StreamAccess{u, mem::AccessKind::kWrite, 0.3},
    };
    // Dependent strided line accesses across the factor arrays.
    sweep.gathers = {GatherAccess{lhs, 800e3}};
    sweep.imbalance = 0.10;
    b.step_loop(std::move(sweep));
  }
  b.serial_per_step(1e6);
  return b.take();
}

}  // namespace ilan::kernels
