// Dense blocked matrix multiplication (the paper: N = 3500, 200 iterations,
// scaled in timesteps).
//
// Profile: overwhelmingly compute-bound — blocked GEMM reuses tiles, so the
// traffic per row band is tiny relative to the FMA volume. Scales with
// every added core: moldability has nothing to find, hierarchical placement
// has little to improve, and the paper reports a small net regression for
// ILAN (its exploration and bookkeeping are pure overhead here).
#include "kernels/detail.hpp"

namespace ilan::kernels {

Program make_matmul(rt::Machine& m, const KernelOptions& opts) {
  detail::Builder b(m, "matmul", /*default_timesteps=*/60, opts);

  const auto A = b.region("A", 0.098);  // 3500^2 doubles
  const auto B = b.region("B", 0.098);
  const auto C = b.region("C", 0.098);

  b.init_loop("init", {A, B, C});

  LoopShape mm;
  mm.name = "gemm";
  mm.cycles_per_iter = 5.2e6;  // 2*N^2 flops per row at ~8 flops/cycle
  mm.streams = {
      StreamAccess{A, mem::AccessKind::kRead, 1.0},
      StreamAccess{C, mem::AccessKind::kWrite, 1.0},
  };
  mm.gathers = {GatherAccess{B, 150e3}};  // tile traffic across all of B
  b.step_loop(std::move(mm));
  return b.take();
}

}  // namespace ilan::kernels
