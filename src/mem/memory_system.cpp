#include "mem/memory_system.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/env.hpp"
#include "sim/event_tags.hpp"

namespace ilan::mem {

namespace {
constexpr double kGB = 1e9;
// Completion tolerance: a record is "drained" below these residuals.
constexpr double kTinyBytes = 0.5;
constexpr double kTinyCycles = 0.5;
}  // namespace

MemorySystem::MemorySystem(sim::Engine& engine, const topo::Topology& topo,
                           const MemParams& params, RegionTable& regions,
                           sim::NoiseModel* noise)
    : engine_(engine),
      topo_(topo),
      params_(params),
      regions_(regions),
      noise_(noise),
      cache_(topo, params.cache) {
  if (regions_.num_nodes() != topo_.num_nodes()) {
    throw std::invalid_argument("MemorySystem: region table node count mismatch");
  }
  stream_bytes_.resize(static_cast<std::size_t>(topo_.num_nodes()));
  gather_bytes_.resize(static_cast<std::size_t>(topo_.num_nodes()));
  extra_streams_.assign(static_cast<std::size_t>(topo_.num_nodes()), 0.0);
  bw_scale_.assign(static_cast<std::size_t>(topo_.num_nodes()), 1.0);
  node_src_bytes_.assign(static_cast<std::size_t>(topo_.num_nodes()), 0.0);
  node_peak_streams_.assign(static_cast<std::size_t>(topo_.num_nodes()), 0.0);
  // Distance is static, so the remote-efficiency pow() is a pure function
  // of the (src, home) node pair — precompute it off the resolve hot path.
  const auto nn = static_cast<std::size_t>(topo_.num_nodes());
  eff_table_.resize(nn * nn);
  for (std::size_t s = 0; s < nn; ++s) {
    for (std::size_t h = 0; h < nn; ++h) {
      const double dist = topo_.distance(topo::NodeId{static_cast<std::int32_t>(s)},
                                         topo::NodeId{static_cast<std::int32_t>(h)});
      eff_table_[s * nn + h] = std::pow(10.0 / dist, params_.remote_eff_exponent);
    }
  }
  far_present_ = topo_.has_far_tier();
  far_eff_.assign(nn, 1.0);
  if (far_present_) {
    far_stream_bytes_.resize(nn);
    for (std::size_t i = 0; i < nn; ++i) {
      const auto& node = topo_.node(topo::NodeId{static_cast<std::int32_t>(i)});
      if (node.far.present()) {
        far_eff_[i] =
            std::pow(node.mem_latency_ns / node.far.latency_ns, params_.remote_eff_exponent);
      }
    }
  }
  controller_c_.assign(nn, -1);
  far_c_.assign(nn, -1);
  core_c_.assign(static_cast<std::size_t>(topo_.num_cores()), -1);
  link_c_.assign(static_cast<std::size_t>(topo_.num_sockets()) *
                     static_cast<std::size_t>(topo_.num_sockets()),
                 -1);
  controller_live_.assign(nn, 0);
  net_.set_record(true);  // journal rounds for delta re-solving
  solver_check_ = obs::env_flag("ILAN_SOLVER_CHECK");
}

void MemorySystem::set_extra_streams(topo::NodeId node, double streams) {
  if (streams < 0.0) {
    throw std::invalid_argument("MemorySystem: extra streams must be >= 0");
  }
  if (extra_streams_.at(node.index()) != streams) resolve_dirty_ = true;
  extra_streams_.at(node.index()) = streams;
}

double MemorySystem::extra_streams(topo::NodeId node) const {
  return extra_streams_.at(node.index());
}

void MemorySystem::set_bw_scale(topo::NodeId node, double scale) {
  if (scale <= 0.0) throw std::invalid_argument("MemorySystem: bw scale must be > 0");
  if (bw_scale_.at(node.index()) != scale) resolve_dirty_ = true;
  bw_scale_.at(node.index()) = scale;
}

double MemorySystem::bw_scale(topo::NodeId node) const {
  return bw_scale_.at(node.index());
}

void MemorySystem::request_resolve() {
  // Conservative: the caller may have changed inputs this system cannot see
  // (per-core frequency factors live in the noise model and are re-read
  // inside resolve()).
  resolve_dirty_ = true;
  schedule_resolve();
}

double MemorySystem::core_hz(topo::CoreId core) const {
  const double base = topo_.core(core).base_freq_ghz * 1e9;
  const double factor = noise_ ? noise_->core_freq_factor(core.value()) : 1.0;
  return base * factor;
}

ExecId MemorySystem::begin(topo::CoreId core, double cpu_cycles,
                           std::span<const AccessDescriptor> accesses,
                           std::function<void()> on_complete) {
  if (cpu_cycles < 0.0) throw std::invalid_argument("MemorySystem::begin: negative cycles");
  if (!on_complete) throw std::invalid_argument("MemorySystem::begin: null callback");

  const ExecId id = next_id_++;
  ExecRecord rec;
  rec.core = core;
  rec.cpu_remaining = cpu_cycles;
  rec.cpu_hz = core_hz(core);
  rec.on_complete = std::move(on_complete);
  rec.last_update = engine_.now();
  build_flows(rec, accesses);
  ExecRecord& stored = active_.emplace(id, std::move(rec)).first->second;
  // ExecIds are monotone and active_ is ExecId-ordered, so appending here
  // keeps the persistent network's live flows in exactly the order a
  // from-scratch build over active_ would emit them.
  append_exec_flows(stored);
  resolve_dirty_ = true;
  schedule_resolve();
  return id;
}

void MemorySystem::build_flows(ExecRecord& rec,
                               std::span<const AccessDescriptor> accesses) {
  const auto n = static_cast<std::size_t>(topo_.num_nodes());
  std::fill(stream_bytes_.begin(), stream_bytes_.end(), 0.0);
  std::fill(gather_bytes_.begin(), gather_bytes_.end(), 0.0);

  const topo::NodeId home = topo_.node_of(rec.core);
  const topo::CcdId ccd = topo_.ccd_of(rec.core);

  for (const auto& a : accesses) {
    if (a.len == 0) continue;
    DataRegion& region = regions_.get(a.region);
    switch (a.kind) {
      case AccessKind::kRead:
      case AccessKind::kWrite: {
        region.touch(a.offset, a.len, home);
        const double hit = cache_.access(ccd, a.region, a.offset, a.len);
        if (hit >= 1.0) break;
        // Distribute the full range, then scale by the miss fraction.
        const double scale = 1.0 - hit;
        if (scale <= 0.0) break;
        bytes_scratch_.assign(n, 0.0);
        region.bytes_by_node(a.offset, a.len, bytes_scratch_);
        for (std::size_t i = 0; i < n; ++i) stream_bytes_[i] += bytes_scratch_[i] * scale;
        break;
      }
      case AccessKind::kGather: {
        // Irregular access over the whole region: caching is ineffective
        // unless the entire region is L3-resident, which the bypass logic
        // in CacheModel already captures for small regions.
        double hit = 0.0;
        if (region.bytes() <= params_.cache.block_bytes * 64) {
          hit = cache_.access(ccd, a.region, 0, region.bytes());
        }
        const double scale = 1.0 - hit;
        if (scale <= 0.0) break;
        region.spread_by_histogram(static_cast<double>(a.len) * scale, gather_bytes_);
        break;
      }
    }
  }

  // Far-tier split: on machines with a CXL tier, the fraction of a node's
  // placed bytes that overflows its near DRAM capacity is served from the
  // far device — those bytes become separate flows that also cross the
  // device constraint. Tierless machines skip the block entirely (no new
  // float ops on the default path).
  if (far_present_) {
    std::fill(far_stream_bytes_.begin(), far_stream_bytes_.end(), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      if (stream_bytes_[i] <= 0.0) continue;
      const double ff = far_fraction(i);
      if (ff <= 0.0) continue;
      far_stream_bytes_[i] = stream_bytes_[i] * ff;
      stream_bytes_[i] -= far_stream_bytes_[i];
    }
  }

  // Merge sub-threshold flows into the largest same-kind flow so no bytes
  // are lost but the solver sees few flows.
  const auto emit = [&](std::vector<double>& by_node, bool gather, bool far) {
    std::size_t largest = n;
    double largest_v = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (by_node[i] > largest_v) {
        largest_v = by_node[i];
        largest = i;
      }
    }
    if (largest == n) return;  // all zero
    double merged = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (i != largest && by_node[i] > 0.0 && by_node[i] < params_.min_flow_bytes) {
        merged += by_node[i];
        by_node[i] = 0.0;
      }
    }
    by_node[largest] += merged;
    for (std::size_t i = 0; i < n; ++i) {
      if (by_node[i] <= 0.0) continue;
      rec.flows.push_back(
          FlowState{static_cast<std::int32_t>(i), gather, by_node[i], 0.0, far});
      node_src_bytes_[i] += by_node[i];
      const topo::NodeId src{static_cast<std::int32_t>(i)};
      if (src == home) {
        traffic_.local_bytes += by_node[i];
      } else {
        traffic_.remote_bytes += by_node[i];
        if (topo_.socket_of(src) != topo_.socket_of(home)) {
          traffic_.cross_socket_bytes += by_node[i];
        }
      }
    }
  };
  emit(stream_bytes_, /*gather=*/false, /*far=*/false);
  if (far_present_) emit(far_stream_bytes_, /*gather=*/false, /*far=*/true);

  // Gathers aggregate into ONE latency-bound flow per task: a dependent
  // load chain has one outstanding miss stream no matter how many
  // controllers its targets live on. Keep the per-node byte fractions for
  // loaded-latency averaging and traffic accounting.
  double gather_total = 0.0;
  for (std::size_t i = 0; i < n; ++i) gather_total += gather_bytes_[i];
  if (gather_total > 0.0) {
    rec.gather_frac.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      if (gather_bytes_[i] <= 0.0) continue;
      rec.gather_frac[i] = gather_bytes_[i] / gather_total;
      node_src_bytes_[i] += gather_bytes_[i];
      const topo::NodeId src{static_cast<std::int32_t>(i)};
      if (src == home) {
        traffic_.local_bytes += gather_bytes_[i];
      } else {
        traffic_.remote_bytes += gather_bytes_[i];
        if (topo_.socket_of(src) != topo_.socket_of(home)) {
          traffic_.cross_socket_bytes += gather_bytes_[i];
        }
      }
    }
    rec.flows.push_back(FlowState{-1, true, gather_total, 0.0});
  }

  // Enforce the per-execution flow cap: repeatedly fold the two smallest
  // flows together. Byte totals (and thus times) are preserved, and merging
  // small-into-small keeps the byte distribution balanced — folding into
  // the largest flow would fabricate a single-controller hotspot that
  // dominates the task's completion time.
  const auto max_flows = static_cast<std::size_t>(std::max(1, params_.max_flows_per_exec));
  while (rec.flows.size() > max_flows) {
    std::size_t s1 = 0;  // smallest
    std::size_t s2 = 1;  // second smallest
    if (rec.flows[s2].remaining < rec.flows[s1].remaining) std::swap(s1, s2);
    for (std::size_t i = 2; i < rec.flows.size(); ++i) {
      if (rec.flows[i].remaining < rec.flows[s1].remaining) {
        s2 = s1;
        s1 = i;
      } else if (rec.flows[i].remaining < rec.flows[s2].remaining) {
        s2 = i;
      }
    }
    rec.flows[s2].remaining += rec.flows[s1].remaining;
    rec.flows.erase(rec.flows.begin() + static_cast<std::ptrdiff_t>(s1));
  }
}

void MemorySystem::schedule_resolve() {
  if (resolve_pending_) return;
  resolve_pending_ = true;
  engine_.schedule_after(
      0,
      [this] {
        resolve_pending_ = false;
        resolve();
      },
      sim::kTagMemResolve);
}

void MemorySystem::advance(ExecRecord& rec, sim::SimTime now) {
  const double dt = sim::to_seconds(now - rec.last_update);
  if (dt > 0.0) {
    rec.cpu_remaining = std::max(0.0, rec.cpu_remaining - dt * rec.cpu_hz);
    for (auto& f : rec.flows) {
      f.remaining = std::max(0.0, f.remaining - dt * f.rate);
    }
  }
  rec.last_update = now;
}

sim::SimTime MemorySystem::eta(const ExecRecord& rec, sim::SimTime now) const {
  double secs = 0.0;
  if (rec.cpu_remaining > kTinyCycles) {
    secs = std::max(secs, rec.cpu_remaining / rec.cpu_hz);
  }
  for (const auto& f : rec.flows) {
    if (f.remaining > kTinyBytes) {
      // rate > 0 is guaranteed by solve(): every flow has a positive cap.
      secs = std::max(secs, f.remaining / f.rate);
    }
  }
  return now + std::max<sim::SimTime>(1, sim::from_seconds(secs));
}

void MemorySystem::reschedule_completions(sim::SimTime now) {
  // Replays exactly the event operations the tail of a full resolve would
  // perform on an unchanged problem: one reschedule (one schedule sequence
  // number) per active execution, in ExecId order, at an unchanged eta —
  // so the committed event stream is bit-identical to the full pipeline.
  for (auto& [id, rec] : active_) {
    rec.completion_event = engine_.reschedule(rec.completion_event, eta(rec, now));
  }
}

double MemorySystem::controller_cap(
    std::size_t node, const std::vector<double>& streams_on_controller) const {
  // Congestion derating: row-buffer/queue interference past the knee, with
  // a floor on how much of peak a controller can lose (see MemParams).
  const auto& n = topo_.node(topo::NodeId{static_cast<std::int32_t>(node)});
  const double derate = std::min(
      params_.congestion_derate_max,
      1.0 + params_.congestion_beta *
                std::max(0.0, streams_on_controller[node] - params_.congestion_knee));
  return n.mem_bw_gbps * bw_scale_[node] * kGB / derate;
}

double MemorySystem::far_fraction(std::size_t node) const {
  const auto& info = topo_.node(topo::NodeId{static_cast<std::int32_t>(node)});
  if (!info.far.present()) return 0.0;
  // Placement-driven spill: near DRAM holds the first mem_bytes of whatever
  // first-touch/interleave placed on this node; the overflow lives on the
  // far device. Deterministic because placement is.
  double placed = 0.0;
  for (std::size_t r = 0; r < regions_.size(); ++r) {
    const DataRegion& reg = regions_.get(static_cast<RegionId>(r));
    placed += static_cast<double>(reg.pages_per_node()[node]) *
              static_cast<double>(reg.page_bytes());
  }
  if (placed <= info.mem_bytes) return 0.0;
  return (placed - info.mem_bytes) / placed;
}

void MemorySystem::append_exec_flows(ExecRecord& rec) {
  const auto& core = topo_.core(rec.core);
  const topo::NodeId home = core.node;
  const auto ns = static_cast<std::size_t>(topo_.num_sockets());
  for (auto& f : rec.flows) {
    if (f.remaining <= kTinyBytes) {
      f.net_idx = -1;  // born (or already) drained: never enters the network
      continue;
    }
    if (core_c_[rec.core.index()] < 0) {
      core_c_[rec.core.index()] = net_.add_constraint(core.core_bw_gbps * kGB);
    }
    if (f.gather) {
      // The cap is a placeholder: every resolve refreshes it from the live
      // stream pressure before any solve reads it.
      const FlowNetwork::ConstraintIdx constraints[1] = {core_c_[rec.core.index()]};
      f.net_idx = net_.add_flow(core.core_bw_gbps * kGB * params_.gather_bw_factor,
                                1.0, constraints);
      net_structural_ = true;
      continue;
    }
    const auto src_i = static_cast<std::size_t>(f.src_node);
    const topo::NodeId src{f.src_node};
    if (controller_c_[src_i] < 0) {
      // Placeholder cap, same contract as the gather cap above.
      controller_c_[src_i] = net_.add_constraint(topo_.node(src).mem_bw_gbps * kGB);
    }
    ++controller_live_[src_i];
    // Far-tier flows compose the distance efficiency with the device's
    // latency handicap and additionally cross the per-node device
    // constraint; eff stays the plain distance factor everywhere else
    // (far_eff_ is 1.0 only on tierless nodes, never multiplied here).
    const double eff = f.far ? eff_to(src, home) * far_eff_[src_i] : eff_to(src, home);
    const double cap = core.core_bw_gbps * kGB * eff;
    // Remote flows occupy controller/link capacity longer per delivered
    // byte (latency-limited MLP): weight = 1/eff.
    const double weight = 1.0 / eff;

    FlowNetwork::ConstraintIdx constraints[4];
    int nc = 0;
    if (f.far) {
      if (far_c_[src_i] < 0) {
        far_c_[src_i] = net_.add_constraint(topo_.node(src).far.bw_gbps * kGB);
      }
      constraints[nc++] = far_c_[src_i];
    }
    constraints[nc++] = controller_c_[src_i];
    constraints[nc++] = core_c_[rec.core.index()];
    const auto s_src = topo_.socket_of(src);
    const auto s_dst = core.socket;
    if (s_src != s_dst) {
      const std::size_t li = s_src.index() * ns + s_dst.index();
      if (link_c_[li] < 0) {
        link_c_[li] = net_.add_constraint(topo_.socket(s_src).xlink_bw_gbps * kGB);
      }
      constraints[nc++] = link_c_[li];
    }
    f.net_idx = net_.add_flow(cap, weight,
                              std::span<const FlowNetwork::ConstraintIdx>(
                                  constraints, static_cast<std::size_t>(nc)));
    net_structural_ = true;
  }
}

void MemorySystem::tombstone_flow(FlowState& f) {
  net_.remove_flow(f.net_idx);
  if (!f.gather) --controller_live_[static_cast<std::size_t>(f.src_node)];
  f.net_idx = -1;
  f.rate = 0.0;
  net_structural_ = true;
}

void MemorySystem::compact_network() {
  net_.clear();
  std::fill(controller_c_.begin(), controller_c_.end(), -1);
  std::fill(far_c_.begin(), far_c_.end(), -1);
  std::fill(core_c_.begin(), core_c_.end(), -1);
  std::fill(link_c_.begin(), link_c_.end(), -1);
  std::fill(controller_live_.begin(), controller_live_.end(), 0);
  for (auto& [id, rec] : active_) append_exec_flows(rec);
}

void MemorySystem::resolve() {
  const sim::SimTime now = engine_.now();
  const auto nn = static_cast<std::size_t>(topo_.num_nodes());
  ++solver_stats_.resolves;

  // 0. Same-instant coalescing: a second resolve event at the timestamp of
  // the last one with nothing dirty (no execution started or finished, no
  // fault knob moved, no explicit request) would recompute every value it
  // computed — zero time has passed, so no flow drained and no structural
  // bit changed. Only the completion rescheduling has an observable effect
  // (it consumes schedule sequence numbers); replay just that.
  if (!resolve_dirty_ && now == last_resolve_time_) {
    ++solver_stats_.coalesced;
    reschedule_completions(now);
    return;
  }
  resolve_dirty_ = false;
  last_resolve_time_ = now;

  // 1. Advance everyone to `now`, then re-read each core's effective
  // frequency: consumed cycles were burned at the old rate, remaining
  // cycles drain at the current one. With only static noise this re-reads
  // the same value; with a throttle fault active it is how the slowdown
  // takes effect mid-execution.
  for (auto& [id, rec] : active_) {
    advance(rec, now);
    rec.cpu_hz = core_hz(rec.core);
  }

  // 2. Structural maintenance: tombstone flows that crossed the drain
  // threshold since the last resolve (new executions' flows were appended
  // by begin()). A drained flow contributes nothing to the max-min problem;
  // excluding it here is exactly the "skip drained flows" a from-scratch
  // build performs.
  for (auto& [id, rec] : active_) {
    for (auto& f : rec.flows) {
      if (f.net_idx >= 0 && f.remaining <= kTinyBytes) tombstone_flow(f);
    }
  }

  // 3. Stream load per controller for the congestion derating. One task is
  // one request stream; a task whose bytes split across controllers loads
  // each with its byte fraction (a sequential reader visits one controller
  // at a time — counting whole flows would overstate interference).
  std::vector<double>& streams_on_controller = streams_scratch_;
  streams_on_controller.assign(nn, 0.0);
  for (const auto& [id, rec] : active_) {
    double total = 0.0;
    for (const auto& f : rec.flows) {
      if (f.remaining > kTinyBytes) total += f.remaining;
    }
    if (total <= 0.0) continue;
    for (const auto& f : rec.flows) {
      if (f.remaining <= kTinyBytes) continue;
      const double frac = f.remaining / total;
      if (f.gather) {
        // The aggregate gather stream pressures each source controller by
        // its byte fraction.
        for (std::size_t i = 0; i < nn; ++i) {
          streams_on_controller[i] += frac * rec.gather_frac[i];
        }
      } else {
        streams_on_controller[static_cast<std::size_t>(f.src_node)] +=
            frac;
      }
    }
  }
  // Fault-injected co-runner pressure joins the stream count on controllers
  // the workload is actually using (a constraint only exists where task
  // flows source from; pressuring an untouched controller affects nobody).
  // Adding 0.0 on the no-fault path leaves every count bit-identical.
  for (std::size_t i = 0; i < nn; ++i) {
    if (streams_on_controller[i] > 0.0) streams_on_controller[i] += extra_streams_[i];
    if (streams_on_controller[i] > node_peak_streams_[i]) {
      node_peak_streams_[i] = streams_on_controller[i];
    }
  }

  // 4. Bring the persistent network up to date. Compact first if
  // tombstones dominate, then refresh every derived capacity: controller
  // caps on nodes with live stream members (a controller without any is
  // inert — active weight exactly 0 — so its stale cap can influence no
  // rate), and the per-flow caps of live gather flows. set_capacity/
  // set_flow_cap discard equal values, so net_.dirty() afterwards means
  // "some input actually moved".
  const bool rebuilt = net_needs_rebuild_ ||
                       net_.dead_flows() > net_.live_flows() + kCompactSlack;
  if (rebuilt) {
    if (!net_needs_rebuild_) {
      ++solver_stats_.compactions;
      solver_stats_.flows_reclaimed += net_.dead_flows();
    }
    net_needs_rebuild_ = false;
    compact_network();
  }
  for (std::size_t i = 0; i < nn; ++i) {
    if (controller_c_[i] >= 0 && controller_live_[i] > 0) {
      net_.set_capacity(controller_c_[i], controller_cap(i, streams_on_controller));
    }
  }
  for (auto& [id, rec] : active_) {
    for (auto& f : rec.flows) {
      if (f.gather && f.net_idx >= 0) {
        net_.set_flow_cap(f.net_idx, gather_cap_for(rec, streams_on_controller));
      }
    }
  }

  // 5. Re-level. Structural edits re-run the water-filling from zero on the
  // persistent structure (the journal they invalidated re-records);
  // cap-only updates replay the journal (FlowNetwork::solve_delta); an
  // unchanged problem is skipped outright — the solver is deterministic,
  // so the current rates are still exact.
  if (rebuilt) {
    ++solver_stats_.full_builds;
    net_.solve();
  } else if (net_structural_) {
    ++solver_stats_.cap_updates;
    net_.solve();
  } else if (net_.dirty()) {
    ++solver_stats_.cap_updates;
    const FlowNetwork::DeltaResult dr = net_.solve_delta();
    if (!dr.full_fallback) {
      ++solver_stats_.delta_solves;
      solver_stats_.delta_rounds_reused += dr.rounds_reused;
      solver_stats_.delta_rounds_total += dr.rounds_total;
    }
  } else {
    ++solver_stats_.skipped;
  }
  net_structural_ = false;
  if (solver_check_) check_against_fresh(streams_on_controller);

  for (auto& [id, rec] : active_) {
    for (auto& f : rec.flows) {
      if (f.net_idx >= 0) f.rate = net_.rate(f.net_idx);
    }
  }

  // 6. Reschedule completions. Live executions keep their event slot (and
  // its callback closure) across resolves — reschedule() consumes exactly
  // the one sequence number cancel+schedule_at used to, so the committed
  // event stream is unchanged while the slot-recycling churn is gone.
  std::vector<ExecId> done;
  for (auto& [id, rec] : active_) {
    bool finished = rec.cpu_remaining <= kTinyCycles;
    if (finished) {
      for (const auto& f : rec.flows) {
        if (f.remaining > kTinyBytes) {
          finished = false;
          break;
        }
      }
    }
    if (finished) {
      if (rec.completion_event != sim::kInvalidEvent) {
        engine_.cancel(rec.completion_event);
        rec.completion_event = sim::kInvalidEvent;
      }
      done.push_back(id);
    } else if (rec.completion_event != sim::kInvalidEvent) {
      rec.completion_event = engine_.reschedule(rec.completion_event, eta(rec, now));
    } else {
      const ExecId eid = id;
      rec.completion_event = engine_.schedule_at(
          eta(rec, now), [this, eid] { complete(eid); }, sim::kTagMemComplete);
    }
  }
  for (const ExecId id : done) complete(id);
}

double MemorySystem::gather_cap_for(
    const ExecRecord& rec, const std::vector<double>& streams_on_controller) const {
  // Latency-bound dependent-load chain: rate = MLP / loaded latency.
  // Loaded latency averages (byte-weighted) over the source controllers'
  // queue depths and distances. The chain's bandwidth is small, so it loads
  // no shared capacity constraint beyond the core.
  const auto nn = static_cast<std::size_t>(topo_.num_nodes());
  const auto& core = topo_.core(rec.core);
  const topo::NodeId home = core.node;
  double lat_factor = 0.0;
  double eff_avg = 0.0;
  for (std::size_t i = 0; i < nn; ++i) {
    const double frac = rec.gather_frac[i];
    if (frac <= 0.0) continue;
    const topo::NodeId src{static_cast<std::int32_t>(i)};
    eff_avg += frac * eff_to(src, home);
    lat_factor +=
        frac * (1.0 + params_.gather_lat_beta *
                          std::max(0.0, streams_on_controller[i] -
                                            params_.gather_lat_knee));
  }
  return core.core_bw_gbps * kGB * params_.gather_bw_factor * eff_avg /
         std::max(1.0, lat_factor);
}

void MemorySystem::check_against_fresh(
    const std::vector<double>& streams_on_controller) {
  // The non-incremental reference: build a fresh network over only the live
  // flows, in active_ (ExecId) order, exactly as a from-scratch resolve
  // would, and demand bit-identical rates from the persistent network.
  const auto nn = static_cast<std::size_t>(topo_.num_nodes());
  const auto ns = static_cast<std::size_t>(topo_.num_sockets());
  FlowNetwork& net = check_net_;
  net.clear();

  std::vector<FlowNetwork::ConstraintIdx> controller_c(nn, -1);
  for (std::size_t i = 0; i < nn; ++i) {
    if (streams_on_controller[i] <= 0.0) continue;
    controller_c[i] = net.add_constraint(controller_cap(i, streams_on_controller));
  }
  std::vector<FlowNetwork::ConstraintIdx> far_c(nn, -1);
  std::vector<FlowNetwork::ConstraintIdx> link_c(ns * ns, -1);
  std::vector<FlowNetwork::ConstraintIdx> core_c(
      static_cast<std::size_t>(topo_.num_cores()), -1);

  for (auto& [id, rec] : active_) {
    const auto& core = topo_.core(rec.core);
    const topo::NodeId home = core.node;
    for (auto& f : rec.flows) {
      if (f.net_idx < 0) continue;
      if (core_c[rec.core.index()] < 0) {
        core_c[rec.core.index()] = net.add_constraint(core.core_bw_gbps * kGB);
      }
      if (f.gather) {
        const double cap = gather_cap_for(rec, streams_on_controller);
        const FlowNetwork::ConstraintIdx constraints[1] = {core_c[rec.core.index()]};
        net.add_flow(cap, 1.0, constraints);
        continue;
      }
      const topo::NodeId src{f.src_node};
      const auto src_i = static_cast<std::size_t>(f.src_node);
      const double eff = f.far ? eff_to(src, home) * far_eff_[src_i] : eff_to(src, home);
      const double weight = 1.0 / eff;
      FlowNetwork::ConstraintIdx constraints[4];
      int nc = 0;
      if (f.far) {
        if (far_c[src_i] < 0) {
          far_c[src_i] = net.add_constraint(topo_.node(src).far.bw_gbps * kGB);
        }
        constraints[nc++] = far_c[src_i];
      }
      constraints[nc++] = controller_c[src_i];
      constraints[nc++] = core_c[rec.core.index()];
      const auto s_src = topo_.socket_of(src);
      const auto s_dst = core.socket;
      if (s_src != s_dst) {
        const std::size_t li = s_src.index() * ns + s_dst.index();
        if (link_c[li] < 0) {
          link_c[li] = net.add_constraint(topo_.socket(s_src).xlink_bw_gbps * kGB);
        }
        constraints[nc++] = link_c[li];
      }
      net.add_flow(core.core_bw_gbps * kGB * eff, weight,
                   std::span<const FlowNetwork::ConstraintIdx>(
                       constraints, static_cast<std::size_t>(nc)));
    }
  }
  net.solve();

  FlowNetwork::FlowIdx k = 0;
  for (auto& [id, rec] : active_) {
    for (auto& f : rec.flows) {
      if (f.net_idx < 0) continue;
      if (net.rate(k) != net_.rate(f.net_idx)) {
        throw std::logic_error(
            "MemorySystem: incremental resolve diverged from fresh build "
            "(ILAN_SOLVER_CHECK)");
      }
      ++k;
    }
  }
}

void MemorySystem::complete(ExecId id) {
  const auto it = active_.find(id);
  if (it == active_.end()) return;
  advance(it->second, engine_.now());
  for (auto& f : it->second.flows) {
    if (f.net_idx >= 0) tombstone_flow(f);
  }
  auto cb = std::move(it->second.on_complete);
  active_.erase(it);
  resolve_dirty_ = true;
  schedule_resolve();
  cb();
}

std::vector<MemorySystem::ExecSnapshot> MemorySystem::snapshot() const {
  std::vector<ExecSnapshot> out;
  out.reserve(active_.size());
  for (const auto& [id, rec] : active_) {
    ExecSnapshot s;
    s.id = id;
    s.core = rec.core;
    s.cpu_remaining = rec.cpu_remaining;
    for (const auto& f : rec.flows) {
      s.flows.push_back({f.src_node, f.gather, f.remaining, f.rate, f.far});
    }
    out.push_back(std::move(s));
  }
  return out;
}

void MemorySystem::reset_run() {
  if (!active_.empty()) throw std::logic_error("MemorySystem::reset_run with active executions");
  cache_.invalidate_all();
  traffic_ = TrafficStats{};
  solver_stats_ = SolverStats{};
  std::fill(node_src_bytes_.begin(), node_src_bytes_.end(), 0.0);
  std::fill(node_peak_streams_.begin(), node_peak_streams_.end(), 0.0);
  // Discard the persistent network: the next resolve rebuilds from scratch.
  net_.clear();
  std::fill(controller_c_.begin(), controller_c_.end(), -1);
  std::fill(far_c_.begin(), far_c_.end(), -1);
  std::fill(core_c_.begin(), core_c_.end(), -1);
  std::fill(link_c_.begin(), link_c_.end(), -1);
  std::fill(controller_live_.begin(), controller_live_.end(), 0);
  net_structural_ = false;
  net_needs_rebuild_ = true;
  resolve_dirty_ = true;
}

}  // namespace ilan::mem
