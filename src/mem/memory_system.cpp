#include "mem/memory_system.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/event_tags.hpp"

namespace ilan::mem {

namespace {
constexpr double kGB = 1e9;
// Completion tolerance: a record is "drained" below these residuals.
constexpr double kTinyBytes = 0.5;
constexpr double kTinyCycles = 0.5;
}  // namespace

MemorySystem::MemorySystem(sim::Engine& engine, const topo::Topology& topo,
                           const MemParams& params, RegionTable& regions,
                           sim::NoiseModel* noise)
    : engine_(engine),
      topo_(topo),
      params_(params),
      regions_(regions),
      noise_(noise),
      cache_(topo, params.cache) {
  if (regions_.num_nodes() != topo_.num_nodes()) {
    throw std::invalid_argument("MemorySystem: region table node count mismatch");
  }
  stream_bytes_.resize(static_cast<std::size_t>(topo_.num_nodes()));
  gather_bytes_.resize(static_cast<std::size_t>(topo_.num_nodes()));
  extra_streams_.assign(static_cast<std::size_t>(topo_.num_nodes()), 0.0);
  bw_scale_.assign(static_cast<std::size_t>(topo_.num_nodes()), 1.0);
  node_src_bytes_.assign(static_cast<std::size_t>(topo_.num_nodes()), 0.0);
  node_peak_streams_.assign(static_cast<std::size_t>(topo_.num_nodes()), 0.0);
}

void MemorySystem::set_extra_streams(topo::NodeId node, double streams) {
  if (streams < 0.0) {
    throw std::invalid_argument("MemorySystem: extra streams must be >= 0");
  }
  extra_streams_.at(node.index()) = streams;
}

double MemorySystem::extra_streams(topo::NodeId node) const {
  return extra_streams_.at(node.index());
}

void MemorySystem::set_bw_scale(topo::NodeId node, double scale) {
  if (scale <= 0.0) throw std::invalid_argument("MemorySystem: bw scale must be > 0");
  bw_scale_.at(node.index()) = scale;
}

double MemorySystem::bw_scale(topo::NodeId node) const {
  return bw_scale_.at(node.index());
}

void MemorySystem::request_resolve() { schedule_resolve(); }

double MemorySystem::core_hz(topo::CoreId core) const {
  const double base = topo_.core(core).base_freq_ghz * 1e9;
  const double factor = noise_ ? noise_->core_freq_factor(core.value()) : 1.0;
  return base * factor;
}

ExecId MemorySystem::begin(topo::CoreId core, double cpu_cycles,
                           std::span<const AccessDescriptor> accesses,
                           std::function<void()> on_complete) {
  if (cpu_cycles < 0.0) throw std::invalid_argument("MemorySystem::begin: negative cycles");
  if (!on_complete) throw std::invalid_argument("MemorySystem::begin: null callback");

  const ExecId id = next_id_++;
  ExecRecord rec;
  rec.core = core;
  rec.cpu_remaining = cpu_cycles;
  rec.cpu_hz = core_hz(core);
  rec.on_complete = std::move(on_complete);
  rec.last_update = engine_.now();
  build_flows(rec, accesses);
  active_.emplace(id, std::move(rec));
  schedule_resolve();
  return id;
}

void MemorySystem::build_flows(ExecRecord& rec,
                               std::span<const AccessDescriptor> accesses) {
  const auto n = static_cast<std::size_t>(topo_.num_nodes());
  std::fill(stream_bytes_.begin(), stream_bytes_.end(), 0.0);
  std::fill(gather_bytes_.begin(), gather_bytes_.end(), 0.0);

  const topo::NodeId home = topo_.node_of(rec.core);
  const topo::CcdId ccd = topo_.ccd_of(rec.core);

  for (const auto& a : accesses) {
    if (a.len == 0) continue;
    DataRegion& region = regions_.get(a.region);
    switch (a.kind) {
      case AccessKind::kRead:
      case AccessKind::kWrite: {
        region.touch(a.offset, a.len, home);
        const double hit = cache_.access(ccd, a.region, a.offset, a.len);
        if (hit >= 1.0) break;
        // Distribute the full range, then scale by the miss fraction.
        const double scale = 1.0 - hit;
        if (scale <= 0.0) break;
        std::vector<double> tmp(n, 0.0);
        region.bytes_by_node(a.offset, a.len, tmp);
        for (std::size_t i = 0; i < n; ++i) stream_bytes_[i] += tmp[i] * scale;
        break;
      }
      case AccessKind::kGather: {
        // Irregular access over the whole region: caching is ineffective
        // unless the entire region is L3-resident, which the bypass logic
        // in CacheModel already captures for small regions.
        double hit = 0.0;
        if (region.bytes() <= params_.cache.block_bytes * 64) {
          hit = cache_.access(ccd, a.region, 0, region.bytes());
        }
        const double scale = 1.0 - hit;
        if (scale <= 0.0) break;
        region.spread_by_histogram(static_cast<double>(a.len) * scale, gather_bytes_);
        break;
      }
    }
  }

  // Merge sub-threshold flows into the largest same-kind flow so no bytes
  // are lost but the solver sees few flows.
  const auto emit = [&](std::vector<double>& by_node, bool gather) {
    std::size_t largest = n;
    double largest_v = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (by_node[i] > largest_v) {
        largest_v = by_node[i];
        largest = i;
      }
    }
    if (largest == n) return;  // all zero
    double merged = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (i != largest && by_node[i] > 0.0 && by_node[i] < params_.min_flow_bytes) {
        merged += by_node[i];
        by_node[i] = 0.0;
      }
    }
    by_node[largest] += merged;
    for (std::size_t i = 0; i < n; ++i) {
      if (by_node[i] <= 0.0) continue;
      rec.flows.push_back(FlowState{static_cast<std::int32_t>(i), gather, by_node[i], 0.0});
      node_src_bytes_[i] += by_node[i];
      const topo::NodeId src{static_cast<std::int32_t>(i)};
      if (src == home) {
        traffic_.local_bytes += by_node[i];
      } else {
        traffic_.remote_bytes += by_node[i];
        if (topo_.socket_of(src) != topo_.socket_of(home)) {
          traffic_.cross_socket_bytes += by_node[i];
        }
      }
    }
  };
  emit(stream_bytes_, /*gather=*/false);

  // Gathers aggregate into ONE latency-bound flow per task: a dependent
  // load chain has one outstanding miss stream no matter how many
  // controllers its targets live on. Keep the per-node byte fractions for
  // loaded-latency averaging and traffic accounting.
  double gather_total = 0.0;
  for (std::size_t i = 0; i < n; ++i) gather_total += gather_bytes_[i];
  if (gather_total > 0.0) {
    rec.gather_frac.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      if (gather_bytes_[i] <= 0.0) continue;
      rec.gather_frac[i] = gather_bytes_[i] / gather_total;
      node_src_bytes_[i] += gather_bytes_[i];
      const topo::NodeId src{static_cast<std::int32_t>(i)};
      if (src == home) {
        traffic_.local_bytes += gather_bytes_[i];
      } else {
        traffic_.remote_bytes += gather_bytes_[i];
        if (topo_.socket_of(src) != topo_.socket_of(home)) {
          traffic_.cross_socket_bytes += gather_bytes_[i];
        }
      }
    }
    rec.flows.push_back(FlowState{-1, true, gather_total, 0.0});
  }

  // Enforce the per-execution flow cap: repeatedly fold the two smallest
  // flows together. Byte totals (and thus times) are preserved, and merging
  // small-into-small keeps the byte distribution balanced — folding into
  // the largest flow would fabricate a single-controller hotspot that
  // dominates the task's completion time.
  const auto max_flows = static_cast<std::size_t>(std::max(1, params_.max_flows_per_exec));
  while (rec.flows.size() > max_flows) {
    std::size_t s1 = 0;  // smallest
    std::size_t s2 = 1;  // second smallest
    if (rec.flows[s2].remaining < rec.flows[s1].remaining) std::swap(s1, s2);
    for (std::size_t i = 2; i < rec.flows.size(); ++i) {
      if (rec.flows[i].remaining < rec.flows[s1].remaining) {
        s2 = s1;
        s1 = i;
      } else if (rec.flows[i].remaining < rec.flows[s2].remaining) {
        s2 = i;
      }
    }
    rec.flows[s2].remaining += rec.flows[s1].remaining;
    rec.flows.erase(rec.flows.begin() + static_cast<std::ptrdiff_t>(s1));
  }
}

void MemorySystem::schedule_resolve() {
  if (resolve_pending_) return;
  resolve_pending_ = true;
  engine_.schedule_after(
      0,
      [this] {
        resolve_pending_ = false;
        resolve();
      },
      sim::kTagMemResolve);
}

void MemorySystem::advance(ExecRecord& rec, sim::SimTime now) {
  const double dt = sim::to_seconds(now - rec.last_update);
  if (dt > 0.0) {
    rec.cpu_remaining = std::max(0.0, rec.cpu_remaining - dt * rec.cpu_hz);
    for (auto& f : rec.flows) {
      f.remaining = std::max(0.0, f.remaining - dt * f.rate);
    }
  }
  rec.last_update = now;
}

sim::SimTime MemorySystem::eta(const ExecRecord& rec, sim::SimTime now) const {
  double secs = 0.0;
  if (rec.cpu_remaining > kTinyCycles) {
    secs = std::max(secs, rec.cpu_remaining / rec.cpu_hz);
  }
  for (const auto& f : rec.flows) {
    if (f.remaining > kTinyBytes) {
      // rate > 0 is guaranteed by solve(): every flow has a positive cap.
      secs = std::max(secs, f.remaining / f.rate);
    }
  }
  return now + std::max<sim::SimTime>(1, sim::from_seconds(secs));
}

void MemorySystem::resolve() {
  const sim::SimTime now = engine_.now();
  const auto nn = static_cast<std::size_t>(topo_.num_nodes());
  ++solver_stats_.resolves;

  // 1. Advance everyone to `now`, then re-read each core's effective
  // frequency: consumed cycles were burned at the old rate, remaining
  // cycles drain at the current one. With only static noise this re-reads
  // the same value; with a throttle fault active it is how the slowdown
  // takes effect mid-execution.
  for (auto& [id, rec] : active_) {
    advance(rec, now);
    rec.cpu_hz = core_hz(rec.core);
  }

  // Structural signature of the max-min problem. The constraint/membership
  // structure is a pure function of, per active execution in order: the
  // core, and per flow (source node, gather flag, active bit, and for
  // gather flows the set of nodes with a nonzero byte fraction). ExecIds
  // are deliberately NOT part of the signature: a new task starting on the
  // same core with the same flow layout as the one the cached network was
  // built from is a cache hit — the steady-state pattern of every kernel.
  sig_scratch_.clear();
  bool sig_ok = nn <= 64;  // gather node masks hold <= 64 nodes
  for (auto& [id, rec] : active_) {
    sig_scratch_.push_back((static_cast<std::uint64_t>(rec.core.index()) << 32) |
                           rec.flows.size());
    for (const auto& f : rec.flows) {
      const std::uint64_t active = f.remaining > kTinyBytes ? 1 : 0;
      if (f.gather) {
        std::uint64_t mask = 0;
        for (std::size_t i = 0; i < nn && i < 64; ++i) {
          if (rec.gather_frac[i] > 0.0) mask |= 1ull << i;
        }
        sig_scratch_.push_back((mask << 32) | 2u | active);
      } else {
        sig_scratch_.push_back(
            (static_cast<std::uint64_t>(static_cast<std::uint32_t>(f.src_node + 1)) << 2) |
            active);
      }
    }
  }

  // 2. Stream load per controller for the congestion derating. One task is
  // one request stream; a task whose bytes split across controllers loads
  // each with its byte fraction (a sequential reader visits one controller
  // at a time — counting whole flows would overstate interference).
  std::vector<double>& streams_on_controller = streams_scratch_;
  streams_on_controller.assign(nn, 0.0);
  for (const auto& [id, rec] : active_) {
    double total = 0.0;
    for (const auto& f : rec.flows) {
      if (f.remaining > kTinyBytes) total += f.remaining;
    }
    if (total <= 0.0) continue;
    for (const auto& f : rec.flows) {
      if (f.remaining <= kTinyBytes) continue;
      const double frac = f.remaining / total;
      if (f.gather) {
        // The aggregate gather stream pressures each source controller by
        // its byte fraction.
        for (std::size_t i = 0; i < nn; ++i) {
          streams_on_controller[i] += frac * rec.gather_frac[i];
        }
      } else {
        streams_on_controller[static_cast<std::size_t>(f.src_node)] +=
            frac;
      }
    }
  }
  // Fault-injected co-runner pressure joins the stream count on controllers
  // the workload is actually using (a constraint only exists where task
  // flows source from; pressuring an untouched controller affects nobody).
  // Adding 0.0 on the no-fault path leaves every count bit-identical.
  for (std::size_t i = 0; i < nn; ++i) {
    if (streams_on_controller[i] > 0.0) streams_on_controller[i] += extra_streams_[i];
    if (streams_on_controller[i] > node_peak_streams_[i]) {
      node_peak_streams_[i] = streams_on_controller[i];
    }
  }

  // 3. Solve the max-min problem. Re-point the flow references at the
  // current records (they may be new executions with a cached structure),
  // then either refresh a cached network in place or build a fresh one
  // into the round-robin victim slot — and solve only when some input
  // actually changed (the solver is deterministic, so a network whose caps
  // all match the cached values still holds exact rates).
  rebuild_refs();
  NetCache* entry = nullptr;
  if (sig_ok) {
    for (auto& e : net_cache_) {
      if (e.sig == sig_scratch_) {
        entry = &e;
        break;
      }
    }
  }
  if (entry == nullptr) {
    ++solver_stats_.full_builds;
    entry = &net_cache_[net_cache_victim_];
    net_cache_victim_ = (net_cache_victim_ + 1) % kNetCacheEntries;
    if (sig_ok) {
      entry->sig = sig_scratch_;
    } else {
      entry->sig.assign(1, ~0ull);  // sentinel: no exec word is all-ones
    }
    rebuild_network(*entry, streams_on_controller);
    entry->net.solve();
  } else {
    bool caps_changed = false;
    for (std::size_t k = 0; k < entry->controller_nodes.size(); ++k) {
      const auto i = static_cast<std::size_t>(entry->controller_nodes[k]);
      const auto& node = topo_.node(topo::NodeId{entry->controller_nodes[k]});
      const double derate = std::min(
          params_.congestion_derate_max,
          1.0 + params_.congestion_beta *
                    std::max(0.0, streams_on_controller[i] - params_.congestion_knee));
      const double cap = node.mem_bw_gbps * bw_scale_[i] * kGB / derate;
      if (cap != entry->controller_cap[k]) {
        entry->controller_cap[k] = cap;
        entry->net.set_capacity(entry->controller_cidx[k], cap);
        caps_changed = true;
      }
    }
    for (std::size_t g = 0; g < gather_refs_.size(); ++g) {
      const std::size_t ri = gather_refs_[g];
      const double cap = gather_cap_for(*refs_[ri].rec, streams_on_controller);
      if (cap != entry->gather_cap[g]) {
        entry->gather_cap[g] = cap;
        entry->net.set_flow_cap(static_cast<FlowNetwork::FlowIdx>(ri), cap);
        caps_changed = true;
      }
    }
    if (caps_changed) {
      ++solver_stats_.cap_updates;
      entry->net.solve();
    } else {
      ++solver_stats_.skipped;  // identical caps: the cached rates are exact
    }
  }
  for (std::size_t i = 0; i < refs_.size(); ++i) {
    refs_[i].rec->flows[refs_[i].idx].rate = entry->net.rate(static_cast<std::int32_t>(i));
  }

  // 4. Reschedule completions.
  std::vector<ExecId> done;
  for (auto& [id, rec] : active_) {
    if (rec.completion_event != sim::kInvalidEvent) {
      engine_.cancel(rec.completion_event);
      rec.completion_event = sim::kInvalidEvent;
    }
    bool finished = rec.cpu_remaining <= kTinyCycles;
    if (finished) {
      for (const auto& f : rec.flows) {
        if (f.remaining > kTinyBytes) {
          finished = false;
          break;
        }
      }
    }
    if (finished) {
      done.push_back(id);
    } else {
      const ExecId eid = id;
      rec.completion_event = engine_.schedule_at(
          eta(rec, now), [this, eid] { complete(eid); }, sim::kTagMemComplete);
    }
  }
  for (const ExecId id : done) complete(id);
}

double MemorySystem::gather_cap_for(
    const ExecRecord& rec, const std::vector<double>& streams_on_controller) const {
  // Latency-bound dependent-load chain: rate = MLP / loaded latency.
  // Loaded latency averages (byte-weighted) over the source controllers'
  // queue depths and distances. The chain's bandwidth is small, so it loads
  // no shared capacity constraint beyond the core.
  const auto nn = static_cast<std::size_t>(topo_.num_nodes());
  const auto& core = topo_.core(rec.core);
  const topo::NodeId home = core.node;
  double lat_factor = 0.0;
  double eff_avg = 0.0;
  for (std::size_t i = 0; i < nn; ++i) {
    const double frac = rec.gather_frac[i];
    if (frac <= 0.0) continue;
    const topo::NodeId src{static_cast<std::int32_t>(i)};
    const double dist = topo_.distance(src, home);
    eff_avg += frac * std::pow(10.0 / dist, params_.remote_eff_exponent);
    lat_factor +=
        frac * (1.0 + params_.gather_lat_beta *
                          std::max(0.0, streams_on_controller[i] -
                                            params_.gather_lat_knee));
  }
  return core.core_bw_gbps * kGB * params_.gather_bw_factor * eff_avg /
         std::max(1.0, lat_factor);
}

void MemorySystem::rebuild_refs() {
  refs_.clear();
  gather_refs_.clear();
  for (auto& [id, rec] : active_) {
    for (std::size_t fi = 0; fi < rec.flows.size(); ++fi) {
      auto& f = rec.flows[fi];
      if (f.remaining <= kTinyBytes) {
        f.rate = 0.0;
        continue;
      }
      if (f.gather) gather_refs_.push_back(refs_.size());
      refs_.push_back(FlowRef{&rec, fi});
    }
  }
}

void MemorySystem::rebuild_network(NetCache& entry,
                                   const std::vector<double>& streams_on_controller) {
  const auto nn = static_cast<std::size_t>(topo_.num_nodes());
  FlowNetwork& net = entry.net;
  net.clear();
  entry.controller_nodes.clear();
  entry.controller_cidx.clear();
  entry.controller_cap.clear();
  entry.gather_cap.clear();

  std::vector<FlowNetwork::ConstraintIdx> controller_c(nn, -1);
  for (std::size_t i = 0; i < nn; ++i) {
    if (streams_on_controller[i] <= 0.0) continue;
    const auto& node = topo_.node(topo::NodeId{static_cast<std::int32_t>(i)});
    const double derate = std::min(
        params_.congestion_derate_max,
        1.0 + params_.congestion_beta *
                  std::max(0.0, streams_on_controller[i] - params_.congestion_knee));
    const double cap = node.mem_bw_gbps * bw_scale_[i] * kGB / derate;
    controller_c[i] = net.add_constraint(cap);
    entry.controller_nodes.push_back(static_cast<std::int32_t>(i));
    entry.controller_cidx.push_back(controller_c[i]);
    entry.controller_cap.push_back(cap);
  }
  // One link constraint per ordered socket pair with traffic.
  const auto ns = static_cast<std::size_t>(topo_.num_sockets());
  std::vector<FlowNetwork::ConstraintIdx> link_c(ns * ns, -1);
  // Per-core constraints created lazily.
  std::vector<FlowNetwork::ConstraintIdx> core_c(
      static_cast<std::size_t>(topo_.num_cores()), -1);

  // Walks the same (record, flow) order as rebuild_refs(): network flow i
  // is refs_[i].
  for (auto& [id, rec] : active_) {
    const auto& core = topo_.core(rec.core);
    const topo::NodeId home = core.node;
    for (std::size_t fi = 0; fi < rec.flows.size(); ++fi) {
      auto& f = rec.flows[fi];
      if (f.remaining <= kTinyBytes) continue;
      if (core_c[rec.core.index()] < 0) {
        core_c[rec.core.index()] = net.add_constraint(core.core_bw_gbps * kGB);
      }

      if (f.gather) {
        const double cap = gather_cap_for(rec, streams_on_controller);
        const FlowNetwork::ConstraintIdx constraints[1] = {core_c[rec.core.index()]};
        net.add_flow(cap, 1.0, constraints);
        entry.gather_cap.push_back(cap);
        continue;
      }

      const topo::NodeId src{f.src_node};
      const double dist = topo_.distance(src, home);
      const double eff = std::pow(10.0 / dist, params_.remote_eff_exponent);
      const double cap = core.core_bw_gbps * kGB * eff;
      // Remote flows occupy controller/link capacity longer per delivered
      // byte (latency-limited MLP): weight = 1/eff.
      const double weight = 1.0 / eff;

      FlowNetwork::ConstraintIdx constraints[3];
      int nc = 0;
      constraints[nc++] = controller_c[static_cast<std::size_t>(f.src_node)];
      constraints[nc++] = core_c[rec.core.index()];
      const auto s_src = topo_.socket_of(src);
      const auto s_dst = core.socket;
      if (s_src != s_dst) {
        const std::size_t li = s_src.index() * ns + s_dst.index();
        if (link_c[li] < 0) {
          link_c[li] = net.add_constraint(topo_.socket(s_src).xlink_bw_gbps * kGB);
        }
        constraints[nc++] = link_c[li];
      }
      net.add_flow(cap, weight,
                   std::span<const FlowNetwork::ConstraintIdx>(
                       constraints, static_cast<std::size_t>(nc)));
    }
  }
}

void MemorySystem::complete(ExecId id) {
  const auto it = active_.find(id);
  if (it == active_.end()) return;
  advance(it->second, engine_.now());
  auto cb = std::move(it->second.on_complete);
  active_.erase(it);
  schedule_resolve();
  cb();
}

std::vector<MemorySystem::ExecSnapshot> MemorySystem::snapshot() const {
  std::vector<ExecSnapshot> out;
  out.reserve(active_.size());
  for (const auto& [id, rec] : active_) {
    ExecSnapshot s;
    s.id = id;
    s.core = rec.core;
    s.cpu_remaining = rec.cpu_remaining;
    for (const auto& f : rec.flows) {
      s.flows.push_back({f.src_node, f.gather, f.remaining, f.rate});
    }
    out.push_back(std::move(s));
  }
  return out;
}

void MemorySystem::reset_run() {
  if (!active_.empty()) throw std::logic_error("MemorySystem::reset_run with active executions");
  cache_.invalidate_all();
  traffic_ = TrafficStats{};
  solver_stats_ = SolverStats{};
  std::fill(node_src_bytes_.begin(), node_src_bytes_.end(), 0.0);
  std::fill(node_peak_streams_.begin(), node_peak_streams_.end(), 0.0);
  // Force full rebuilds on the next resolves.
  for (auto& e : net_cache_) e.sig.assign(1, ~0ull);
}

}  // namespace ilan::mem
