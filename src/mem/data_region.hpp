// Simulated data regions (arrays) and their NUMA page placement.
//
// A DataRegion is metadata only: a byte size, a page size, and a page->node
// map filled in by a placement policy. FirstTouch regions are placed lazily
// by the first worker that touches each page — exactly the Linux default the
// paper's locality effects hinge on. The region also maintains a per-node
// byte histogram so gather-style accesses can be attributed to source nodes
// in O(nodes).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "topo/ids.hpp"

namespace ilan::mem {

using RegionId = std::int32_t;

enum class Placement {
  kFirstTouch,  // page owned by the node of the first core touching it
  kBlock,       // contiguous equal blocks across all nodes
  kInterleave,  // round-robin pages across all nodes
  kNodeBound,   // everything on one node
};

class DataRegion {
 public:
  DataRegion(RegionId id, std::string name, std::uint64_t bytes, Placement policy,
             int num_nodes, std::uint64_t page_bytes = 2ull << 20,
             topo::NodeId bound_node = topo::NodeId::invalid());

  [[nodiscard]] RegionId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }
  [[nodiscard]] std::uint64_t page_bytes() const { return page_bytes_; }
  [[nodiscard]] std::size_t num_pages() const { return page_node_.size(); }
  [[nodiscard]] Placement policy() const { return policy_; }

  // Node owning the page containing `offset`; invalid if not yet placed.
  [[nodiscard]] topo::NodeId node_of(std::uint64_t offset) const;

  // First-touch: places every unplaced page in [offset, offset+len) on
  // `toucher`. No-op for pages already placed. Returns pages placed.
  std::size_t touch(std::uint64_t offset, std::uint64_t len, topo::NodeId toucher);

  // Distributes the bytes of [offset, offset+len) over their owning nodes,
  // adding into `out` (size >= num_nodes). Unplaced pages are attributed
  // round-robin (they would be placed by the access itself in reality).
  void bytes_by_node(std::uint64_t offset, std::uint64_t len,
                     std::span<double> out) const;

  // Distributes `len` bytes according to the region-wide placement
  // histogram (for gather/scatter accesses that sample the whole region).
  void spread_by_histogram(double len, std::span<double> out) const;

  // Fraction of the region's pages currently placed on each node.
  [[nodiscard]] std::span<const std::uint64_t> pages_per_node() const {
    return pages_per_node_;
  }
  [[nodiscard]] std::size_t placed_pages() const { return placed_; }

  // Drops all placement (e.g., between independent simulated runs).
  void reset_placement();

 private:
  void place_page(std::size_t page, topo::NodeId node);

  RegionId id_;
  std::string name_;
  std::uint64_t bytes_;
  std::uint64_t page_bytes_;
  Placement policy_;
  int num_nodes_;
  topo::NodeId bound_node_;
  std::vector<std::int32_t> page_node_;  // -1 = unplaced
  std::vector<std::uint64_t> pages_per_node_;
  std::size_t placed_ = 0;
};

// Owning collection of regions with stable ids.
class RegionTable {
 public:
  explicit RegionTable(int num_nodes) : num_nodes_(num_nodes) {}

  RegionId create(std::string name, std::uint64_t bytes, Placement policy,
                  std::uint64_t page_bytes = 2ull << 20,
                  topo::NodeId bound_node = topo::NodeId::invalid());

  [[nodiscard]] DataRegion& get(RegionId id) { return regions_.at(static_cast<std::size_t>(id)); }
  [[nodiscard]] const DataRegion& get(RegionId id) const {
    return regions_.at(static_cast<std::size_t>(id));
  }
  [[nodiscard]] std::size_t size() const { return regions_.size(); }
  [[nodiscard]] int num_nodes() const { return num_nodes_; }

  void reset_placement();

 private:
  int num_nodes_;
  std::vector<DataRegion> regions_;
};

}  // namespace ilan::mem
