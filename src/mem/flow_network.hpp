// Max-min fair bandwidth allocation (progressive water-filling).
//
// Flows share capacity constraints (memory controllers, per-core load/store
// links, cross-socket links). The solver raises all unfrozen flow rates
// uniformly until some constraint (or a flow's own cap) saturates, freezes
// the affected flows, and repeats — the textbook max-min fair allocation.
// This is the fluid model SimGrid-style network simulators use, applied to
// a NUMA memory system.
//
// Designed as a PERSISTENT, incrementally-updated problem: callers append
// flows as work arrives (add_flow) and tombstone them as it drains
// (remove_flow) instead of rebuilding from scratch. A tombstoned flow keeps
// its index — so recorded journals and caller-side flow handles stay valid
// — but is excluded from every solve: it contributes no active weight,
// receives no rate and is skipped by the freeze scan. Because exclusion
// just skips terms of ordered sums and min-reductions, a solve over the
// persistent network is bit-identical to a from-scratch solve over only the
// live flows in the same order. Constraints are never removed; one with no
// live member flows has active weight exactly 0.0 and is inert (it can
// never own a round or freeze a flow), so its capacity may go stale without
// affecting any rate. Callers compact (clear + re-add live flows) when
// tombstones accumulate.
//
// Delta re-solving: with set_record(true), solve() journals every
// water-filling round — just the uniform increment, which element
// determined it, and which flows froze. Recording deliberately stores no
// per-round state snapshots: the journal walk in solve_delta()
// reconstructs the residual / active-weight trajectory by re-applying the
// recorded increments and freezes with the exact arithmetic (same values,
// same order) the recording solve performed, so every start-of-round state
// it visits is bit-identical to what a snapshot would have held. That
// keeps the hot path (every solve records) nearly free and puts the
// reconstruction cost on the rare cap-only resolve that replays. A
// recorded round stays valid as long as no *changed* element undercuts the
// recorded increment, changes its saturation outcome, or was the element
// that determined the increment. The first round where that fails, the
// solver keeps the reconstructed start-of-round state and re-enters the
// generic loop — every arithmetic operation performed on surviving state
// is the same operation the full solve would perform, in the same order,
// so the resulting rates are bit-identical to a from-scratch solve()
// (checkable at runtime with check_against_full()). Structural edits
// (add_flow, remove_flow, add_constraint) invalidate the journal; the next
// solve re-levels from zero on the persistent structure and re-records.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ilan::mem {

class FlowNetwork {
 public:
  using ConstraintIdx = std::int32_t;
  using FlowIdx = std::int32_t;

  // Resets to an empty problem, retaining capacity (and the recording
  // flag). Any recorded journal is discarded.
  void clear();

  // Adds a capacity constraint (capacity in arbitrary rate units, > 0).
  ConstraintIdx add_constraint(double capacity);

  // Adds a flow with its own rate cap (> 0), an occupancy weight (>= such
  // that a flow consumes `weight` units of constraint capacity per unit of
  // rate — remote flows occupy controllers/links longer per delivered byte),
  // and the constraints it loads. A flow may appear in each constraint at
  // most once.
  FlowIdx add_flow(double cap, double weight,
                   std::span<const ConstraintIdx> constraints);

  // Tombstones a live flow: it keeps its index but is excluded from all
  // subsequent solves (rate forced to 0). Invalidates the journal.
  void remove_flow(FlowIdx f);
  [[nodiscard]] bool dead(FlowIdx f) const {
    return dead_.at(static_cast<std::size_t>(f)) != 0;
  }

  // In-place updates for incremental re-solving: callers that keep the
  // constraint/membership structure of a previous problem can refresh
  // capacities and flow caps without rebuilding, then call solve() (or,
  // with recording on, solve_delta()) again. Setting a value equal to the
  // current one is a no-op and does not dirty the recorded journal.
  void set_capacity(ConstraintIdx c, double capacity);
  void set_flow_cap(FlowIdx f, double cap);
  // True when set_capacity/set_flow_cap changed something since the last
  // solve()/solve_delta().
  [[nodiscard]] bool dirty() const { return !dirty_c_.empty() || !dirty_f_.empty(); }

  [[nodiscard]] std::int32_t num_flows() const { return static_cast<std::int32_t>(flow_cap_.size()); }
  [[nodiscard]] std::int32_t num_constraints() const {
    return static_cast<std::int32_t>(cap_.size());
  }
  // Flows not (yet) tombstoned; num_flows() - live_flows() are dead.
  [[nodiscard]] std::size_t live_flows() const { return live_; }
  [[nodiscard]] std::size_t dead_flows() const { return flow_cap_.size() - live_; }

  // Solves max-min fairness from scratch; results via rate().
  void solve();

  // --- delta re-solving ---------------------------------------------------

  // Enables/disables journal recording. Off by default: plain solve() users
  // pay nothing. Turning recording off discards the journal.
  void set_record(bool on);
  [[nodiscard]] bool record() const { return record_; }
  // True when a journal from a completed solve is available for replay.
  [[nodiscard]] bool journal_valid() const { return journal_valid_; }

  struct DeltaResult {
    // No usable journal (recording off, structure changed, first solve):
    // solve_delta() fell back to a full solve().
    bool full_fallback = false;
    // Rounds replayed from the journal vs. rounds the full solve ran last
    // time. rounds_reused == rounds_total means no re-levelling at all.
    std::int32_t rounds_reused = 0;
    std::int32_t rounds_total = 0;
  };

  // Re-solves after set_capacity/set_flow_cap updates by journal replay
  // (see the header comment). Bit-identical to calling solve(). With no
  // pending updates this returns immediately — the current rates are exact.
  DeltaResult solve_delta();

  // Debug cross-check: re-runs the full solve and throws std::logic_error
  // if any rate differs bit-for-bit from the current (delta-produced)
  // rates. The full re-solve re-records the journal, so the object remains
  // usable for further delta solves.
  void check_against_full();

  [[nodiscard]] double rate(FlowIdx f) const { return rate_.at(static_cast<std::size_t>(f)); }
  [[nodiscard]] std::span<const double> rates() const { return rate_; }

 private:
  // One recorded water-filling round. Deliberately tiny — no state
  // snapshot; solve_delta() reconstructs the start-of-round state by
  // replaying increments and freezes in recorded order.
  struct Round {
    double delta = 0.0;
    // What determined delta: 0 = a constraint (owner is its index),
    // 1 = a flow's own cap (owner is the flow index).
    std::int32_t owner_kind = 0;
    std::int32_t owner_idx = 0;
    // Flows frozen by this round: journal_frozen_[frozen_begin, frozen_end).
    std::int32_t frozen_begin = 0;
    std::int32_t frozen_end = 0;
  };
  static constexpr std::int32_t kNoRound = -1;

  void invalidate_journal();
  // The generic water-filling loop, recording rounds when record_ is set.
  // residual_/active_weight_/frozen_/rate_ must describe a consistent
  // mid-solve state on entry (dead flows marked frozen); the unfrozen set
  // is derived from frozen_ and maintained as a compact, index-ordered list
  // so per-round work scales with live flows, not lifetime appends.
  void run_waterfill();

  // Constraint capacities.
  std::vector<double> cap_;
  // Flow caps, weights and rates.
  std::vector<double> flow_cap_;
  std::vector<double> flow_weight_;
  std::vector<double> rate_;
  // CSR-style membership: flow -> constraints.
  std::vector<std::int32_t> memb_begin_;
  std::vector<ConstraintIdx> memb_;
  // Tombstones (1 = dead) and the live count.
  std::vector<std::uint8_t> dead_;
  std::size_t live_ = 0;

  // Scratch (kept across solves).
  std::vector<double> residual_;
  std::vector<double> active_weight_;
  std::vector<std::uint8_t> frozen_;
  std::vector<FlowIdx> unfrozen_;  // compact, increasing flow index

  // Pending in-place updates since the last solve (first-write order; both
  // lists keep the pre-update value so replay can walk the old trajectory
  // and compare freeze outcomes old-vs-new).
  std::vector<ConstraintIdx> dirty_c_;
  std::vector<double> dirty_c_old_cap_;
  std::vector<FlowIdx> dirty_f_;
  std::vector<double> dirty_f_old_cap_;

  // Round journal (valid only while journal_valid_).
  bool record_ = false;
  bool journal_valid_ = false;
  std::vector<Round> journal_;
  std::vector<FlowIdx> journal_frozen_;
  std::vector<std::int32_t> freeze_round_;  // per flow; kNoRound = unfrozen
  // Per dirty constraint scratch: start-of-round residuals on the new
  // (updated-cap) and old (recorded-cap) trajectories.
  std::vector<double> replay_res_;
  std::vector<double> replay_res_old_;
};

}  // namespace ilan::mem
