// Max-min fair bandwidth allocation (progressive water-filling).
//
// Flows share capacity constraints (memory controllers, per-core load/store
// links, cross-socket links). The solver raises all unfrozen flow rates
// uniformly until some constraint (or a flow's own cap) saturates, freezes
// the affected flows, and repeats — the textbook max-min fair allocation.
// This is the fluid model SimGrid-style network simulators use, applied to
// a NUMA memory system.
//
// Designed for repeated re-solving: the object is reusable (clear() keeps
// allocated buffers) and solving is O(iterations * (flows + constraints)).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ilan::mem {

class FlowNetwork {
 public:
  using ConstraintIdx = std::int32_t;
  using FlowIdx = std::int32_t;

  // Resets to an empty problem, retaining capacity.
  void clear();

  // Adds a capacity constraint (capacity in arbitrary rate units, > 0).
  ConstraintIdx add_constraint(double capacity);

  // Adds a flow with its own rate cap (> 0), an occupancy weight (>= such
  // that a flow consumes `weight` units of constraint capacity per unit of
  // rate — remote flows occupy controllers/links longer per delivered byte),
  // and the constraints it loads. A flow may appear in each constraint at
  // most once.
  FlowIdx add_flow(double cap, double weight,
                   std::span<const ConstraintIdx> constraints);

  // In-place updates for incremental re-solving: callers that keep the
  // constraint/membership structure of a previous problem can refresh
  // capacities and flow caps without rebuilding, then call solve() again.
  void set_capacity(ConstraintIdx c, double capacity);
  void set_flow_cap(FlowIdx f, double cap);

  [[nodiscard]] std::int32_t num_flows() const { return static_cast<std::int32_t>(flow_cap_.size()); }
  [[nodiscard]] std::int32_t num_constraints() const {
    return static_cast<std::int32_t>(cap_.size());
  }

  // Solves max-min fairness; results via rate().
  void solve();

  [[nodiscard]] double rate(FlowIdx f) const { return rate_.at(static_cast<std::size_t>(f)); }
  [[nodiscard]] std::span<const double> rates() const { return rate_; }

 private:
  // Constraint capacities.
  std::vector<double> cap_;
  // Flow caps, weights and rates.
  std::vector<double> flow_cap_;
  std::vector<double> flow_weight_;
  std::vector<double> rate_;
  // CSR-style membership: flow -> constraints.
  std::vector<std::int32_t> memb_begin_;
  std::vector<ConstraintIdx> memb_;

  // Scratch (kept across solves).
  std::vector<double> residual_;
  std::vector<double> active_weight_;
  std::vector<std::uint8_t> frozen_;
};

}  // namespace ilan::mem
