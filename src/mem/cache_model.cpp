#include "mem/cache_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace ilan::mem {

CacheModel::CacheModel(const topo::Topology& topo, const CacheParams& params)
    : params_(params) {
  if (params_.block_bytes == 0) throw std::invalid_argument("CacheModel: zero block size");
  ccds_.resize(static_cast<std::size_t>(topo.num_ccds()));
  for (const auto& ccd : topo.ccds()) {
    ccds_[ccd.id.index()].capacity_blocks = std::max<std::size_t>(
        1, static_cast<std::size_t>(ccd.l3_bytes / static_cast<double>(params_.block_bytes)));
  }
}

void CacheModel::touch_block(CcdCache& c, const BlockKey& key) {
  const auto it = c.index.find(key);
  if (it != c.index.end()) {
    c.lru.splice(c.lru.begin(), c.lru, it->second);
    return;
  }
  c.lru.push_front(key);
  c.index.emplace(key, c.lru.begin());
  while (c.index.size() > c.capacity_blocks) {
    c.index.erase(c.lru.back());
    c.lru.pop_back();
  }
}

double CacheModel::access(topo::CcdId ccd, RegionId region, std::uint64_t offset,
                          std::uint64_t len) {
  if (len == 0) return 0.0;
  CcdCache& c = ccds_.at(ccd.index());
  const std::uint64_t capacity_bytes =
      static_cast<std::uint64_t>(c.capacity_blocks) * params_.block_bytes;
  const bool bypass =
      static_cast<double>(len) >
      params_.streaming_bypass_fraction * static_cast<double>(capacity_bytes);

  const std::uint64_t first = offset / params_.block_bytes;
  const std::uint64_t last = (offset + len - 1) / params_.block_bytes;
  const auto nblocks = last - first + 1;

  std::uint64_t resident = 0;
  for (std::uint64_t b = first; b <= last; ++b) {
    const BlockKey key{region, b};
    if (bypass) {
      if (c.index.contains(key)) ++resident;
    } else {
      if (c.index.contains(key)) ++resident;
      touch_block(c, key);
    }
  }
  probes_ += nblocks;
  hits_ += resident;
  const double frac = static_cast<double>(resident) / static_cast<double>(nblocks);
  return frac * params_.resident_hit_rate;
}

void CacheModel::invalidate(topo::CcdId ccd) {
  CcdCache& c = ccds_.at(ccd.index());
  c.lru.clear();
  c.index.clear();
}

void CacheModel::invalidate_all() {
  for (std::size_t i = 0; i < ccds_.size(); ++i) {
    invalidate(topo::CcdId{static_cast<std::int32_t>(i)});
  }
  hits_ = 0;
  probes_ = 0;
}

}  // namespace ilan::mem
