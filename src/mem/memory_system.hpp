// The machine's memory model: executes tasks in simulated time.
//
// A task execution is (cpu cycles, set of memory accesses). Compute and
// memory overlap (roofline-style): the execution finishes when both the
// cycle budget and every memory flow have drained. Flow rates come from a
// max-min fair allocation over
//   * per-NUMA-node memory controllers, derated past a concurrency knee
//     (row-buffer/queue interference — what moldability exploits),
//   * per-core load/store bandwidth, derated for remote sources by a
//     SLIT-distance efficiency factor,
//   * cross-socket link capacity shared by all inter-socket traffic.
// Rates are re-solved whenever an execution starts or finishes.
//
// Access kinds:
//   kRead/kWrite  — streaming over [offset, offset+len); first-touch places
//                   pages; the CCD L3 model can satisfy part of the traffic.
//   kGather       — `len` bytes sampled across the whole region (irregular
//                   access); spread by the region's placement histogram and
//                   served at a reduced per-flow efficiency.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "mem/cache_model.hpp"
#include "mem/data_region.hpp"
#include "mem/flow_network.hpp"
#include "sim/engine.hpp"
#include "sim/noise.hpp"
#include "topo/topology.hpp"

namespace ilan::mem {

enum class AccessKind { kRead, kWrite, kGather };

struct AccessDescriptor {
  RegionId region = -1;
  std::uint64_t offset = 0;
  std::uint64_t len = 0;  // bytes moved (traffic; may exceed the footprint
                          // when imbalance amplifies re-reads of hot lines)
  AccessKind kind = AccessKind::kRead;
  // Distinct bytes addressed: [offset, offset+footprint). 0 means "same as
  // len". The memory system charges traffic by len; the race auditor
  // (src/analysis/) intersects footprints.
  std::uint64_t footprint = 0;
};

struct MemParams {
  // Remote-flow efficiency: (10 / distance)^exponent. Also sets the
  // occupancy weight (1/eff) a remote flow imposes on the constraints it
  // crosses — remote streams hold controller/link resources longer per
  // delivered byte (latency-limited MLP).
  double remote_eff_exponent = 0.22;
  // Controller derating: cap / min(derate_max, 1 + beta * max(0, flows - knee)).
  // Models row-buffer/queue interference between concurrent request streams;
  // the cap keeps the penalty physical (a controller never loses more than
  // ~60% of peak to stream interleaving).
  double congestion_beta = 0.50;
  double congestion_knee = 3.0;
  double congestion_derate_max = 3.5;
  // Irregular (gather) accesses reach this fraction of streaming bandwidth
  // when the machine is quiet...
  double gather_bw_factor = 0.35;
  // ...and degrade with the source controller's queue depth: the achievable
  // rate of a dependent-load chain is MLP/loaded-latency, and loaded
  // latency grows with the number of streams queued at the controller:
  //   rate_factor = 1 + gather_lat_beta * max(0, streams - gather_lat_knee).
  // This is the interference channel the paper's Section 5.2 describes for
  // CG and SP, and the one moldability relieves.
  double gather_lat_beta = 0.75;
  double gather_lat_knee = 3.0;
  // Flows below this byte count are merged into the largest flow.
  double min_flow_bytes = 65536.0;
  // Hard cap on flows per execution (smallest flows merge into the largest;
  // keeps the max-min solve cheap for gather-heavy tasks).
  int max_flows_per_exec = 9;
  CacheParams cache;
};

using ExecId = std::uint64_t;

struct TrafficStats {
  double local_bytes = 0.0;
  double remote_bytes = 0.0;
  double cross_socket_bytes = 0.0;
  [[nodiscard]] double total() const { return local_bytes + remote_bytes; }
};

// Counters for the incremental resolve cache (host-side perf diagnostics).
// resolves = full_builds + cap_updates + skipped.
struct SolverStats {
  std::uint64_t resolves = 0;     // resolve() invocations
  std::uint64_t full_builds = 0;  // flow set changed: rebuild + solve
  std::uint64_t cap_updates = 0;  // same flow set: capacity refresh + solve
  std::uint64_t skipped = 0;      // flow set and caps unchanged: no solve
};

class MemorySystem {
 public:
  MemorySystem(sim::Engine& engine, const topo::Topology& topo, const MemParams& params,
               RegionTable& regions, sim::NoiseModel* noise);

  MemorySystem(const MemorySystem&) = delete;
  MemorySystem& operator=(const MemorySystem&) = delete;

  // Starts a task execution on `core`. `on_complete` fires exactly once, at
  // the simulated completion time. Returns an id (diagnostics only).
  ExecId begin(topo::CoreId core, double cpu_cycles,
               std::span<const AccessDescriptor> accesses,
               std::function<void()> on_complete);

  [[nodiscard]] std::size_t active_executions() const { return active_.size(); }
  [[nodiscard]] const TrafficStats& traffic() const { return traffic_; }
  [[nodiscard]] const SolverStats& solver_stats() const { return solver_stats_; }
  // Per-NUMA-node observability: bytes sourced from each node's controller
  // over the run (the per-node split of traffic()), and the peak concurrent
  // stream pressure each controller saw (co-runner faults included) — the
  // quantity the congestion derating keys on. Indexed by node; exported
  // into the metrics registry by the bench harness at run end.
  [[nodiscard]] std::span<const double> node_src_bytes() const { return node_src_bytes_; }
  [[nodiscard]] std::span<const double> node_peak_streams() const {
    return node_peak_streams_;
  }
  [[nodiscard]] CacheModel& cache() { return cache_; }
  [[nodiscard]] RegionTable& regions() { return regions_; }
  [[nodiscard]] const topo::Topology& topology() const { return topo_; }

  // Effective frequency of a core (base * per-run noise factor), in Hz.
  [[nodiscard]] double core_hz(topo::CoreId core) const;

  // --- fault-injection knobs (src/fault/) --------------------------------
  // Co-runner bandwidth pressure: `streams` extra request streams queued at
  // node `node`'s controller. They enter the congestion derating (and the
  // gather loaded-latency channel) exactly like task-generated streams, but
  // carry no bytes of their own.
  void set_extra_streams(topo::NodeId node, double streams);
  [[nodiscard]] double extra_streams(topo::NodeId node) const;
  // Transient controller degradation: node `node`'s controller capacity is
  // multiplied by `scale` (1.0 = healthy) until changed back.
  void set_bw_scale(topo::NodeId node, double scale);
  [[nodiscard]] double bw_scale(topo::NodeId node) const;
  // Forces a rate re-solve at the current simulated time (coalesced with any
  // already-pending resolve). Fault transitions call this so rate and
  // frequency changes take effect at the transition instant, not at the
  // next task boundary.
  void request_resolve();

  // Clears caches and traffic stats between runs. Requires no active
  // executions.
  void reset_run();

  // Snapshot of one active execution's progress (diagnostics/visualization).
  struct ExecSnapshot {
    ExecId id;
    topo::CoreId core;
    double cpu_remaining;
    struct FlowSnapshot {
      std::int32_t src_node;
      bool gather;
      double remaining_bytes;
      double rate_bytes_per_s;
    };
    std::vector<FlowSnapshot> flows;
  };
  [[nodiscard]] std::vector<ExecSnapshot> snapshot() const;

 private:
  struct FlowState {
    std::int32_t src_node;  // -1 for the aggregate gather flow
    bool gather;
    double remaining;  // bytes
    double rate;       // bytes/s
  };
  struct ExecRecord {
    topo::CoreId core;
    double cpu_remaining;  // cycles
    double cpu_hz;
    std::vector<FlowState> flows;
    // Byte fractions per source node of the aggregate gather flow (empty if
    // the task has no gather component).
    std::vector<double> gather_frac;
    std::function<void()> on_complete;
    sim::SimTime last_update = 0;
    sim::EventId completion_event = sim::kInvalidEvent;
  };

  struct FlowRef {
    ExecRecord* rec;
    std::size_t idx;
  };

  // One cached max-min network, keyed by the structural signature it was
  // built from (see the cache comment below).
  struct NetCache {
    std::vector<std::uint64_t> sig;
    FlowNetwork net;
    std::vector<std::int32_t> controller_nodes;  // nodes with a controller constraint
    std::vector<FlowNetwork::ConstraintIdx> controller_cidx;  // parallel to ^
    std::vector<double> controller_cap;                       // parallel to ^
    std::vector<double> gather_cap;  // parallel to gather_refs_
  };

  void build_flows(ExecRecord& rec, std::span<const AccessDescriptor> accesses);
  void schedule_resolve();
  void resolve();
  void rebuild_refs();
  void rebuild_network(NetCache& entry, const std::vector<double>& streams_on_controller);
  [[nodiscard]] double gather_cap_for(const ExecRecord& rec,
                                      const std::vector<double>& streams_on_controller) const;
  void advance(ExecRecord& rec, sim::SimTime now);
  [[nodiscard]] sim::SimTime eta(const ExecRecord& rec, sim::SimTime now) const;
  void complete(ExecId id);

  sim::Engine& engine_;
  const topo::Topology& topo_;
  MemParams params_;
  RegionTable& regions_;
  sim::NoiseModel* noise_;
  CacheModel cache_;

  std::map<ExecId, ExecRecord> active_;  // ordered: deterministic iteration
  ExecId next_id_ = 1;
  bool resolve_pending_ = false;
  TrafficStats traffic_;
  std::vector<double> node_src_bytes_;     // per node, cumulative
  std::vector<double> node_peak_streams_;  // per node, high-water mark

  // Fault-injection state (all-1.0/0.0 when no fault is active; the resolve
  // math then reproduces the unperturbed values bit-for-bit).
  std::vector<double> extra_streams_;  // per node
  std::vector<double> bw_scale_;       // per node

  // Scratch buffers reused across resolves.
  std::vector<double> stream_bytes_;
  std::vector<double> gather_bytes_;
  std::vector<double> streams_scratch_;

  // Incremental resolve cache. The constraint/membership structure of the
  // max-min problem is a pure function of the *structural signature* —
  // per active execution in order: its core, and per flow its source node,
  // gather flag, active bit, and (gather only) the set of nodes with
  // nonzero byte fractions. ExecIds are excluded on purpose, so a new task
  // whose flow layout matches a cached network still hits. On a hit only
  // controller capacities and gather flow caps can differ from the cached
  // network, so it is refreshed in place (set_capacity/set_flow_cap) and
  // re-solved — and when the refreshed values are exactly unchanged the
  // solve is skipped outright (the solver is deterministic, so the cached
  // rates are still exact).
  //
  // Several entries are kept (round-robin eviction) because resolve runs
  // on every task start AND finish: the steady state alternates between
  // "all cores busy" and "one core between tasks" structures, so the
  // all-busy network would be rebuilt from scratch on every task boundary
  // with only a single slot.
  static constexpr std::size_t kNetCacheEntries = 4;
  SolverStats solver_stats_;
  std::vector<std::uint64_t> sig_scratch_;  // candidate signature
  std::vector<FlowRef> refs_;               // active flows in network order
  std::vector<std::size_t> gather_refs_;    // indices into refs_ of gather flows
  std::array<NetCache, kNetCacheEntries> net_cache_;
  std::size_t net_cache_victim_ = 0;
};

}  // namespace ilan::mem
