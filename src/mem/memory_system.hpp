// The machine's memory model: executes tasks in simulated time.
//
// A task execution is (cpu cycles, set of memory accesses). Compute and
// memory overlap (roofline-style): the execution finishes when both the
// cycle budget and every memory flow have drained. Flow rates come from a
// max-min fair allocation over
//   * per-NUMA-node memory controllers, derated past a concurrency knee
//     (row-buffer/queue interference — what moldability exploits),
//   * per-core load/store bandwidth, derated for remote sources by a
//     SLIT-distance efficiency factor,
//   * cross-socket link capacity shared by all inter-socket traffic.
// Rates are re-solved whenever an execution starts or finishes.
//
// Access kinds:
//   kRead/kWrite  — streaming over [offset, offset+len); first-touch places
//                   pages; the CCD L3 model can satisfy part of the traffic.
//   kGather       — `len` bytes sampled across the whole region (irregular
//                   access); spread by the region's placement histogram and
//                   served at a reduced per-flow efficiency.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "mem/cache_model.hpp"
#include "mem/data_region.hpp"
#include "mem/flow_network.hpp"
#include "sim/engine.hpp"
#include "sim/noise.hpp"
#include "topo/topology.hpp"

namespace ilan::mem {

enum class AccessKind { kRead, kWrite, kGather };

struct AccessDescriptor {
  RegionId region = -1;
  std::uint64_t offset = 0;
  std::uint64_t len = 0;  // bytes moved (traffic; may exceed the footprint
                          // when imbalance amplifies re-reads of hot lines)
  AccessKind kind = AccessKind::kRead;
  // Distinct bytes addressed: [offset, offset+footprint). 0 means "same as
  // len". The memory system charges traffic by len; the race auditor
  // (src/analysis/) intersects footprints.
  std::uint64_t footprint = 0;
};

struct MemParams {
  // Remote-flow efficiency: (10 / distance)^exponent. Also sets the
  // occupancy weight (1/eff) a remote flow imposes on the constraints it
  // crosses — remote streams hold controller/link resources longer per
  // delivered byte (latency-limited MLP).
  double remote_eff_exponent = 0.22;
  // Controller derating: cap / min(derate_max, 1 + beta * max(0, flows - knee)).
  // Models row-buffer/queue interference between concurrent request streams;
  // the cap keeps the penalty physical (a controller never loses more than
  // ~60% of peak to stream interleaving).
  double congestion_beta = 0.50;
  double congestion_knee = 3.0;
  double congestion_derate_max = 3.5;
  // Irregular (gather) accesses reach this fraction of streaming bandwidth
  // when the machine is quiet...
  double gather_bw_factor = 0.35;
  // ...and degrade with the source controller's queue depth: the achievable
  // rate of a dependent-load chain is MLP/loaded-latency, and loaded
  // latency grows with the number of streams queued at the controller:
  //   rate_factor = 1 + gather_lat_beta * max(0, streams - gather_lat_knee).
  // This is the interference channel the paper's Section 5.2 describes for
  // CG and SP, and the one moldability relieves.
  double gather_lat_beta = 0.75;
  double gather_lat_knee = 3.0;
  // Flows below this byte count are merged into the largest flow.
  double min_flow_bytes = 65536.0;
  // Hard cap on flows per execution (smallest flows merge into the largest;
  // keeps the max-min solve cheap for gather-heavy tasks).
  int max_flows_per_exec = 9;
  CacheParams cache;
};

using ExecId = std::uint64_t;

struct TrafficStats {
  double local_bytes = 0.0;
  double remote_bytes = 0.0;
  double cross_socket_bytes = 0.0;
  [[nodiscard]] double total() const { return local_bytes + remote_bytes; }
};

// Counters for the incremental resolve pipeline (host-side perf
// diagnostics). resolves = full_builds + cap_updates + skipped + coalesced.
struct SolverStats {
  std::uint64_t resolves = 0;     // resolve() invocations
  std::uint64_t full_builds = 0;  // from-scratch network rebuild + solve
  // In-place incremental resolves: flows appended/tombstoned on the
  // persistent network and/or capacities refreshed, then re-solved without
  // rebuilding the constraint structure.
  std::uint64_t cap_updates = 0;
  std::uint64_t skipped = 0;    // nothing changed since the last solve
  std::uint64_t coalesced = 0;  // same-instant repeat with nothing dirty
  // Tombstone reclamation: full_builds triggered because dead flows came to
  // dominate the persistent network (subset of full_builds), and how many
  // tombstoned flow slots those rebuilds discarded.
  std::uint64_t compactions = 0;
  std::uint64_t flows_reclaimed = 0;
  // cap_updates served by FlowNetwork journal replay (vs full re-levelling
  // on the persistent structure), and how much re-levelling the replay
  // saved: of delta_rounds_total water-filling rounds, delta_rounds_reused
  // came from the journal instead of being re-run.
  std::uint64_t delta_solves = 0;
  std::uint64_t delta_rounds_reused = 0;
  std::uint64_t delta_rounds_total = 0;
  // Fraction of resolves that avoided a from-scratch rebuild.
  [[nodiscard]] double hit_rate() const {
    return resolves > 0 ? static_cast<double>(cap_updates + skipped + coalesced) /
                              static_cast<double>(resolves)
                        : 0.0;
  }
};

class MemorySystem {
 public:
  MemorySystem(sim::Engine& engine, const topo::Topology& topo, const MemParams& params,
               RegionTable& regions, sim::NoiseModel* noise);

  MemorySystem(const MemorySystem&) = delete;
  MemorySystem& operator=(const MemorySystem&) = delete;

  // Starts a task execution on `core`. `on_complete` fires exactly once, at
  // the simulated completion time. Returns an id (diagnostics only).
  ExecId begin(topo::CoreId core, double cpu_cycles,
               std::span<const AccessDescriptor> accesses,
               std::function<void()> on_complete);

  [[nodiscard]] std::size_t active_executions() const { return active_.size(); }
  [[nodiscard]] const TrafficStats& traffic() const { return traffic_; }
  [[nodiscard]] const SolverStats& solver_stats() const { return solver_stats_; }
  // Per-NUMA-node observability: bytes sourced from each node's controller
  // over the run (the per-node split of traffic()), and the peak concurrent
  // stream pressure each controller saw (co-runner faults included) — the
  // quantity the congestion derating keys on. Indexed by node; exported
  // into the metrics registry by the bench harness at run end.
  [[nodiscard]] std::span<const double> node_src_bytes() const { return node_src_bytes_; }
  [[nodiscard]] std::span<const double> node_peak_streams() const {
    return node_peak_streams_;
  }
  [[nodiscard]] CacheModel& cache() { return cache_; }
  [[nodiscard]] RegionTable& regions() { return regions_; }
  [[nodiscard]] const topo::Topology& topology() const { return topo_; }

  // Effective frequency of a core (base * per-run noise factor), in Hz.
  [[nodiscard]] double core_hz(topo::CoreId core) const;

  // --- fault-injection knobs (src/fault/) --------------------------------
  // Co-runner bandwidth pressure: `streams` extra request streams queued at
  // node `node`'s controller. They enter the congestion derating (and the
  // gather loaded-latency channel) exactly like task-generated streams, but
  // carry no bytes of their own.
  void set_extra_streams(topo::NodeId node, double streams);
  [[nodiscard]] double extra_streams(topo::NodeId node) const;
  // Transient controller degradation: node `node`'s controller capacity is
  // multiplied by `scale` (1.0 = healthy) until changed back.
  void set_bw_scale(topo::NodeId node, double scale);
  [[nodiscard]] double bw_scale(topo::NodeId node) const;
  // Forces a rate re-solve at the current simulated time (coalesced with any
  // already-pending resolve). Fault transitions call this so rate and
  // frequency changes take effect at the transition instant, not at the
  // next task boundary.
  void request_resolve();

  // Clears caches and traffic stats between runs. Requires no active
  // executions.
  void reset_run();

  // Snapshot of one active execution's progress (diagnostics/visualization).
  struct ExecSnapshot {
    ExecId id;
    topo::CoreId core;
    double cpu_remaining;
    struct FlowSnapshot {
      std::int32_t src_node;
      bool gather;
      double remaining_bytes;
      double rate_bytes_per_s;
      // Served from the node's CXL far-memory tier (always false on
      // tierless machines).
      bool far = false;
    };
    std::vector<FlowSnapshot> flows;
  };
  [[nodiscard]] std::vector<ExecSnapshot> snapshot() const;

 private:
  struct FlowState {
    std::int32_t src_node;  // -1 for the aggregate gather flow
    bool gather;
    double remaining;  // bytes
    double rate;       // bytes/s
    // Far-tier stream: crosses the node's CXL device constraint in addition
    // to the controller. Never true for gather flows or on tierless
    // machines.
    bool far = false;
    // This flow's slot in the persistent network; -1 once drained
    // (tombstoned) or when the flow was born below the drain threshold.
    FlowNetwork::FlowIdx net_idx = -1;
  };
  struct ExecRecord {
    topo::CoreId core;
    double cpu_remaining;  // cycles
    double cpu_hz;
    std::vector<FlowState> flows;
    // Byte fractions per source node of the aggregate gather flow (empty if
    // the task has no gather component).
    std::vector<double> gather_frac;
    std::function<void()> on_complete;
    sim::SimTime last_update = 0;
    sim::EventId completion_event = sim::kInvalidEvent;
  };

  void build_flows(ExecRecord& rec, std::span<const AccessDescriptor> accesses);
  void schedule_resolve();
  void resolve();
  // Appends rec's live flows to the persistent network (constraints created
  // on demand through the index maps), recording each flow's net_idx.
  void append_exec_flows(ExecRecord& rec);
  // Tombstones one flow in the persistent network (drained or completing).
  void tombstone_flow(FlowState& f);
  // From-scratch rebuild of the persistent network from the live flows of
  // active_ (ExecId order) — reclaims tombstones and unused constraints.
  void compact_network();
  // ILAN_SOLVER_CHECK=1: rebuilds a scratch network from scratch (the
  // non-incremental path) and throws if any rate differs bit-for-bit from
  // the persistent network's.
  void check_against_fresh(const std::vector<double>& streams_on_controller);
  void reschedule_completions(sim::SimTime now);
  [[nodiscard]] double gather_cap_for(const ExecRecord& rec,
                                      const std::vector<double>& streams_on_controller) const;
  [[nodiscard]] double eff_to(topo::NodeId src, topo::NodeId home) const {
    return eff_table_[static_cast<std::size_t>(src.index()) *
                          static_cast<std::size_t>(topo_.num_nodes()) +
                      static_cast<std::size_t>(home.index())];
  }
  [[nodiscard]] double controller_cap(std::size_t node,
                                      const std::vector<double>& streams_on_controller) const;
  // Fraction of node `node`'s currently placed bytes that overflow its near
  // DRAM capacity into the far tier (0 on tierless nodes). Placement-driven:
  // first-touch grows it as pages land.
  [[nodiscard]] double far_fraction(std::size_t node) const;
  void advance(ExecRecord& rec, sim::SimTime now);
  [[nodiscard]] sim::SimTime eta(const ExecRecord& rec, sim::SimTime now) const;
  void complete(ExecId id);

  sim::Engine& engine_;
  const topo::Topology& topo_;
  MemParams params_;
  RegionTable& regions_;
  sim::NoiseModel* noise_;
  CacheModel cache_;

  std::map<ExecId, ExecRecord> active_;  // ordered: deterministic iteration
  ExecId next_id_ = 1;
  bool resolve_pending_ = false;
  // Same-instant coalescing: set by anything that can change the max-min
  // problem (begin/complete, fault knobs, request_resolve), cleared by a
  // resolve. A resolve firing at the timestamp of the previous one with
  // nothing dirty replays only the completion rescheduling — the rest of
  // the pipeline would recompute identical values.
  bool resolve_dirty_ = true;
  sim::SimTime last_resolve_time_ = 0;
  TrafficStats traffic_;
  std::vector<double> node_src_bytes_;     // per node, cumulative
  std::vector<double> node_peak_streams_;  // per node, high-water mark

  // Fault-injection state (all-1.0/0.0 when no fault is active; the resolve
  // math then reproduces the unperturbed values bit-for-bit).
  std::vector<double> extra_streams_;  // per node
  std::vector<double> bw_scale_;       // per node

  // Scratch buffers reused across resolves.
  std::vector<double> stream_bytes_;
  std::vector<double> far_stream_bytes_;  // far-tier split of stream_bytes_
  std::vector<double> gather_bytes_;
  std::vector<double> streams_scratch_;
  std::vector<double> bytes_scratch_;  // build_flows per-access distribution

  // Precomputed (10 / distance)^remote_eff_exponent per (src, home) node
  // pair — the same pow() the network build and gather_cap_for used to
  // evaluate per flow per resolve. Row-major: src * num_nodes + home.
  std::vector<double> eff_table_;
  // Per-node far-tier efficiency factor (near_lat / far_lat)^exponent,
  // multiplied into the distance efficiency of far flows. 1.0 on tierless
  // nodes (never read there: far flows only exist where the tier does).
  std::vector<double> far_eff_;
  bool far_present_ = false;  // topo.has_far_tier(), cached

  // The persistent incremental network. Profiling killed the alternative —
  // an LRU cache of immutable networks keyed by a structural signature:
  // on sp, 1510 resolves produced 1490 DISTINCT whole-state signatures
  // (infinite-cache hit ceiling 1.3%), because 64 cores × a handful of
  // per-core flow layouts is a combinatorial state space that essentially
  // never recurs. What DOES hold in steady state is that the median resolve
  // changes exactly ONE execution's flows — so instead of keying whole
  // states, ONE network is updated structurally in place: begin() appends
  // the execution's flows (ExecIds are monotone, so append order equals the
  // ExecId-ordered fresh-build order), drains and completions tombstone
  // them, and each resolve refreshes only derived capacities and re-levels.
  // Constraints are created once per controller/core/socket-pair through
  // the index maps below and never removed; one with no live member flows
  // has active weight exactly 0.0 and is inert, so its stale capacity can
  // never influence a rate (capacities are only refreshed for controllers
  // with live stream members). When tombstones outnumber live flows the
  // network is compacted (a counted full rebuild). Rates are bit-identical
  // to a per-resolve fresh build — see flow_network.hpp for the argument —
  // which ILAN_SOLVER_CHECK=1 verifies at runtime against a from-scratch
  // build every resolve.
  FlowNetwork net_;
  FlowNetwork check_net_;  // ILAN_SOLVER_CHECK scratch, rebuilt per check
  std::vector<FlowNetwork::ConstraintIdx> controller_c_;  // per node, -1 = none
  std::vector<FlowNetwork::ConstraintIdx> core_c_;        // per core, -1 = none
  std::vector<FlowNetwork::ConstraintIdx> link_c_;  // per (src,dst) socket, -1
  // Per-node CXL far-tier device constraint, -1 = none yet. Created lazily
  // like the others, so it NEVER exists on tierless machines — the
  // persistent network (and its delta-solve behavior) is bit-identical to
  // the pre-tier code there.
  std::vector<FlowNetwork::ConstraintIdx> far_c_;
  std::vector<std::int32_t> controller_live_;  // live stream members per node
  // Set by append/tombstone: the next resolve must re-level even if no
  // capacity moved. Cleared by the solve decision.
  bool net_structural_ = false;
  // Set by reset_run() and construction: the next resolve rebuilds from
  // scratch (counted as a full_build, not a compaction).
  bool net_needs_rebuild_ = true;
  // Compact when dead flows exceed live flows by this much — bounds both
  // the per-solve O(num_flows) sweeps and journal memory, while keeping
  // rebuilds rare enough to amortize to noise.
  static constexpr std::size_t kCompactSlack = 64;

  SolverStats solver_stats_;
  bool solver_check_ = false;  // ILAN_SOLVER_CHECK=1: cross-check every resolve
};

}  // namespace ilan::mem
