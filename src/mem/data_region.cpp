#include "mem/data_region.hpp"

#include <algorithm>
#include <stdexcept>

namespace ilan::mem {

DataRegion::DataRegion(RegionId id, std::string name, std::uint64_t bytes,
                       Placement policy, int num_nodes, std::uint64_t page_bytes,
                       topo::NodeId bound_node)
    : id_(id),
      name_(std::move(name)),
      bytes_(bytes),
      page_bytes_(page_bytes),
      policy_(policy),
      num_nodes_(num_nodes),
      bound_node_(bound_node),
      pages_per_node_(static_cast<std::size_t>(num_nodes), 0) {
  if (bytes == 0) throw std::invalid_argument("DataRegion: zero size");
  if (page_bytes == 0) throw std::invalid_argument("DataRegion: zero page size");
  if (num_nodes <= 0) throw std::invalid_argument("DataRegion: num_nodes must be positive");
  if (policy == Placement::kNodeBound && !bound_node.valid()) {
    throw std::invalid_argument("DataRegion: NodeBound requires a node");
  }
  const std::size_t pages = static_cast<std::size_t>((bytes + page_bytes - 1) / page_bytes);
  page_node_.assign(pages, -1);
  reset_placement();
}

void DataRegion::place_page(std::size_t page, topo::NodeId node) {
  if (page_node_[page] >= 0) return;
  page_node_[page] = node.value();
  ++pages_per_node_[node.index()];
  ++placed_;
}

void DataRegion::reset_placement() {
  std::fill(page_node_.begin(), page_node_.end(), -1);
  std::fill(pages_per_node_.begin(), pages_per_node_.end(), 0);
  placed_ = 0;
  const std::size_t pages = page_node_.size();
  switch (policy_) {
    case Placement::kFirstTouch:
      break;  // lazy
    case Placement::kBlock: {
      const std::size_t per = (pages + static_cast<std::size_t>(num_nodes_) - 1) /
                              static_cast<std::size_t>(num_nodes_);
      for (std::size_t p = 0; p < pages; ++p) {
        place_page(p, topo::NodeId{static_cast<std::int32_t>(
                          std::min<std::size_t>(p / per,
                                                static_cast<std::size_t>(num_nodes_ - 1)))});
      }
      break;
    }
    case Placement::kInterleave:
      for (std::size_t p = 0; p < pages; ++p) {
        place_page(p, topo::NodeId{static_cast<std::int32_t>(
                          p % static_cast<std::size_t>(num_nodes_))});
      }
      break;
    case Placement::kNodeBound:
      for (std::size_t p = 0; p < pages; ++p) place_page(p, bound_node_);
      break;
  }
}

topo::NodeId DataRegion::node_of(std::uint64_t offset) const {
  if (offset >= bytes_) throw std::out_of_range("DataRegion::node_of: offset beyond region");
  const auto page = static_cast<std::size_t>(offset / page_bytes_);
  const std::int32_t n = page_node_[page];
  return n < 0 ? topo::NodeId::invalid() : topo::NodeId{n};
}

std::size_t DataRegion::touch(std::uint64_t offset, std::uint64_t len,
                              topo::NodeId toucher) {
  if (len == 0) return 0;
  if (offset + len > bytes_) throw std::out_of_range("DataRegion::touch: range beyond region");
  const auto first = static_cast<std::size_t>(offset / page_bytes_);
  const auto last = static_cast<std::size_t>((offset + len - 1) / page_bytes_);
  std::size_t placed = 0;
  for (std::size_t p = first; p <= last; ++p) {
    if (page_node_[p] < 0) {
      place_page(p, toucher);
      ++placed;
    }
  }
  return placed;
}

void DataRegion::bytes_by_node(std::uint64_t offset, std::uint64_t len,
                               std::span<double> out) const {
  if (len == 0) return;
  if (offset + len > bytes_) {
    throw std::out_of_range("DataRegion::bytes_by_node: range beyond region");
  }
  if (out.size() < static_cast<std::size_t>(num_nodes_)) {
    throw std::invalid_argument("DataRegion::bytes_by_node: output span too small");
  }
  const auto first = static_cast<std::size_t>(offset / page_bytes_);
  const auto last = static_cast<std::size_t>((offset + len - 1) / page_bytes_);
  std::size_t rr = first;  // round-robin attribution for unplaced pages
  for (std::size_t p = first; p <= last; ++p) {
    const std::uint64_t page_begin = static_cast<std::uint64_t>(p) * page_bytes_;
    const std::uint64_t lo = std::max(offset, page_begin);
    const std::uint64_t hi = std::min(offset + len, page_begin + page_bytes_);
    const double span = static_cast<double>(hi - lo);
    std::int32_t n = page_node_[p];
    if (n < 0) n = static_cast<std::int32_t>(rr++ % static_cast<std::size_t>(num_nodes_));
    out[static_cast<std::size_t>(n)] += span;
  }
}

void DataRegion::spread_by_histogram(double len, std::span<double> out) const {
  if (out.size() < static_cast<std::size_t>(num_nodes_)) {
    throw std::invalid_argument("DataRegion::spread_by_histogram: output span too small");
  }
  if (placed_ == 0) {
    // Nothing placed yet: attribute uniformly.
    const double share = len / static_cast<double>(num_nodes_);
    for (int n = 0; n < num_nodes_; ++n) out[static_cast<std::size_t>(n)] += share;
    return;
  }
  const double total = static_cast<double>(placed_);
  for (int n = 0; n < num_nodes_; ++n) {
    out[static_cast<std::size_t>(n)] +=
        len * static_cast<double>(pages_per_node_[static_cast<std::size_t>(n)]) / total;
  }
}

RegionId RegionTable::create(std::string name, std::uint64_t bytes, Placement policy,
                             std::uint64_t page_bytes, topo::NodeId bound_node) {
  const auto id = static_cast<RegionId>(regions_.size());
  regions_.emplace_back(id, std::move(name), bytes, policy, num_nodes_, page_bytes,
                        bound_node);
  return id;
}

void RegionTable::reset_placement() {
  for (auto& r : regions_) r.reset_placement();
}

}  // namespace ilan::mem
