#include "mem/flow_network.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <stdexcept>

namespace ilan::mem {

namespace {
constexpr double kEps = 1e-12;
}

void FlowNetwork::clear() {
  cap_.clear();
  flow_cap_.clear();
  flow_weight_.clear();
  rate_.clear();
  memb_begin_.clear();
  memb_.clear();
  dead_.clear();
  live_ = 0;
  dirty_c_.clear();
  dirty_c_old_cap_.clear();
  dirty_f_.clear();
  dirty_f_old_cap_.clear();
  invalidate_journal();
}

void FlowNetwork::invalidate_journal() {
  journal_valid_ = false;
  journal_.clear();
  journal_frozen_.clear();
}

void FlowNetwork::set_record(bool on) {
  if (record_ == on) return;
  record_ = on;
  invalidate_journal();
}

FlowNetwork::ConstraintIdx FlowNetwork::add_constraint(double capacity) {
  if (capacity <= 0.0) throw std::invalid_argument("FlowNetwork: non-positive capacity");
  cap_.push_back(capacity);
  invalidate_journal();
  return static_cast<ConstraintIdx>(cap_.size() - 1);
}

FlowNetwork::FlowIdx FlowNetwork::add_flow(double cap, double weight,
                                           std::span<const ConstraintIdx> constraints) {
  if (cap <= 0.0) throw std::invalid_argument("FlowNetwork: non-positive flow cap");
  if (weight <= 0.0) throw std::invalid_argument("FlowNetwork: non-positive weight");
  if (memb_begin_.empty()) memb_begin_.push_back(0);
  for (const auto c : constraints) {
    if (c < 0 || static_cast<std::size_t>(c) >= cap_.size()) {
      throw std::out_of_range("FlowNetwork: bad constraint index");
    }
    memb_.push_back(c);
  }
  memb_begin_.push_back(static_cast<std::int32_t>(memb_.size()));
  flow_cap_.push_back(cap);
  flow_weight_.push_back(weight);
  rate_.push_back(0.0);
  dead_.push_back(0);
  ++live_;
  invalidate_journal();
  return static_cast<FlowIdx>(flow_cap_.size() - 1);
}

void FlowNetwork::remove_flow(FlowIdx f) {
  if (f < 0 || static_cast<std::size_t>(f) >= flow_cap_.size()) {
    throw std::out_of_range("FlowNetwork: bad flow index");
  }
  auto& d = dead_[static_cast<std::size_t>(f)];
  if (d != 0) throw std::logic_error("FlowNetwork: flow already removed");
  d = 1;
  --live_;
  rate_[static_cast<std::size_t>(f)] = 0.0;
  invalidate_journal();
}

void FlowNetwork::set_capacity(ConstraintIdx c, double capacity) {
  if (c < 0 || static_cast<std::size_t>(c) >= cap_.size()) {
    throw std::out_of_range("FlowNetwork: bad constraint index");
  }
  if (capacity <= 0.0) throw std::invalid_argument("FlowNetwork: non-positive capacity");
  auto& slot = cap_[static_cast<std::size_t>(c)];
  if (slot == capacity) return;
  if (std::find(dirty_c_.begin(), dirty_c_.end(), c) == dirty_c_.end()) {
    dirty_c_.push_back(c);
    dirty_c_old_cap_.push_back(slot);
  }
  slot = capacity;
}

void FlowNetwork::set_flow_cap(FlowIdx f, double cap) {
  if (f < 0 || static_cast<std::size_t>(f) >= flow_cap_.size()) {
    throw std::out_of_range("FlowNetwork: bad flow index");
  }
  if (dead_[static_cast<std::size_t>(f)] != 0) {
    throw std::invalid_argument("FlowNetwork: set_flow_cap on removed flow");
  }
  if (cap <= 0.0) throw std::invalid_argument("FlowNetwork: non-positive flow cap");
  auto& slot = flow_cap_[static_cast<std::size_t>(f)];
  if (slot == cap) return;
  if (std::find(dirty_f_.begin(), dirty_f_.end(), f) == dirty_f_.end()) {
    dirty_f_.push_back(f);
    dirty_f_old_cap_.push_back(slot);
  }
  slot = cap;
}

void FlowNetwork::solve() {
  const std::size_t nf = flow_cap_.size();
  const std::size_t nc = cap_.size();
  if (memb_begin_.empty()) memb_begin_.push_back(0);

  residual_.assign(cap_.begin(), cap_.end());
  active_weight_.assign(nc, 0.0);
  frozen_.assign(nf, 0);
  std::fill(rate_.begin(), rate_.end(), 0.0);

  // Dead flows enter the solve pre-frozen with zero rate and contribute no
  // weight. Skipping their terms of these ordered sums is the only
  // difference from a from-scratch build over the live flows alone, and
  // skipping a term leaves every partial sum bit-identical — so a solve on
  // the persistent network equals a fresh-build solve exactly.
  for (std::size_t f = 0; f < nf; ++f) {
    if (dead_[f] != 0) {
      frozen_[f] = 1;
      continue;
    }
    for (std::int32_t m = memb_begin_[f]; m < memb_begin_[f + 1]; ++m) {
      active_weight_[static_cast<std::size_t>(memb_[m])] += flow_weight_[f];
    }
  }

  dirty_c_.clear();
  dirty_c_old_cap_.clear();
  dirty_f_.clear();
  dirty_f_old_cap_.clear();
  if (record_) {
    journal_.clear();
    journal_frozen_.clear();
    freeze_round_.assign(nf, kNoRound);
  }
  run_waterfill();
  journal_valid_ = record_;
}

void FlowNetwork::run_waterfill() {
  const std::size_t nf = flow_cap_.size();
  const std::size_t nc = cap_.size();
  unfrozen_.clear();
  for (std::size_t f = 0; f < nf; ++f) {
    if (frozen_[f] == 0) unfrozen_.push_back(static_cast<FlowIdx>(f));
  }
  while (!unfrozen_.empty()) {
    Round rd;
    if (record_) {
      rd.frozen_begin = static_cast<std::int32_t>(journal_frozen_.size());
    }

    // Largest uniform rate increment no constraint or flow cap forbids.
    // A constraint drains at (sum of unfrozen weights) per unit of rate.
    // The first element attaining the minimum is the round's "owner": the
    // element whose value determined the increment (journal replay must
    // diverge if a capacity update moved it).
    double delta = std::numeric_limits<double>::infinity();
    std::int32_t owner_kind = 0;
    std::int32_t owner_idx = 0;
    for (std::size_t c = 0; c < nc; ++c) {
      if (active_weight_[c] > kEps) {
        const double v = residual_[c] / active_weight_[c];
        if (v < delta) {
          delta = v;
          owner_kind = 0;
          owner_idx = static_cast<std::int32_t>(c);
        }
      }
    }
    for (const FlowIdx fi : unfrozen_) {
      const auto f = static_cast<std::size_t>(fi);
      const double v = flow_cap_[f] - rate_[f];
      if (v < delta) {
        delta = v;
        owner_kind = 1;
        owner_idx = fi;
      }
    }
    delta = std::max(delta, 0.0);

    if (delta > 0.0) {
      for (const FlowIdx fi : unfrozen_) {
        rate_[static_cast<std::size_t>(fi)] += delta;
      }
      for (std::size_t c = 0; c < nc; ++c) {
        residual_[c] -= delta * active_weight_[c];
      }
    }

    // Freeze flows at their cap or in a saturated constraint. The delta
    // choice guarantees at least one flow freezes per iteration. The
    // unfrozen list is compacted in place — index order is preserved, so
    // every scan visits the same flows in the same order as a loop over
    // all of them that skips the frozen.
    std::size_t keep = 0;
    std::size_t frozen_now = 0;
    for (std::size_t i = 0; i < unfrozen_.size(); ++i) {
      const FlowIdx fi = unfrozen_[i];
      const auto f = static_cast<std::size_t>(fi);
      bool freeze = rate_[f] >= flow_cap_[f] - kEps;
      if (!freeze) {
        for (std::int32_t m = memb_begin_[f]; m < memb_begin_[f + 1] && !freeze; ++m) {
          freeze = residual_[static_cast<std::size_t>(memb_[m])] <= kEps;
        }
      }
      if (freeze) {
        frozen_[f] = 1;
        for (std::int32_t m = memb_begin_[f]; m < memb_begin_[f + 1]; ++m) {
          active_weight_[static_cast<std::size_t>(memb_[m])] -= flow_weight_[f];
        }
        if (record_) {
          journal_frozen_.push_back(fi);
          freeze_round_[f] = static_cast<std::int32_t>(journal_.size());
        }
        ++frozen_now;
      } else {
        unfrozen_[keep++] = fi;
      }
    }
    unfrozen_.resize(keep);
    if (frozen_now == 0) {
      // Numerical corner: force-freeze the first unfrozen flow.
      const FlowIdx fi = unfrozen_.front();
      const auto f = static_cast<std::size_t>(fi);
      frozen_[f] = 1;
      for (std::int32_t m = memb_begin_[f]; m < memb_begin_[f + 1]; ++m) {
        active_weight_[static_cast<std::size_t>(memb_[m])] -= flow_weight_[f];
      }
      if (record_) {
        journal_frozen_.push_back(fi);
        freeze_round_[f] = static_cast<std::int32_t>(journal_.size());
      }
      unfrozen_.erase(unfrozen_.begin());
    }
    if (record_) {
      rd.delta = delta;
      rd.owner_kind = owner_kind;
      rd.owner_idx = owner_idx;
      rd.frozen_end = static_cast<std::int32_t>(journal_frozen_.size());
      journal_.push_back(rd);
    }
  }
}

FlowNetwork::DeltaResult FlowNetwork::solve_delta() {
  DeltaResult out;
  if (!record_ || !journal_valid_) {
    solve();
    out.full_fallback = true;
    out.rounds_total = static_cast<std::int32_t>(journal_.size());
    return out;
  }
  out.rounds_total = static_cast<std::int32_t>(journal_.size());
  if (dirty_c_.empty() && dirty_f_.empty()) {
    out.rounds_reused = out.rounds_total;
    return out;
  }
  const std::size_t nf = flow_cap_.size();
  const std::size_t nc = cap_.size();

  // Reconstruct the recorded trajectory instead of reading snapshots: the
  // journal stores no per-round state, so the walk recomputes what it
  // needs with the exact arithmetic (same values, same order) the
  // recording solve performed — every quantity inspected below is
  // bit-identical to what a snapshot would have held. Validation needs
  // only the active weights (cheap to maintain: each recorded freeze is
  // retired once, so the whole walk costs O(total memberships)) and the
  // residuals of the *changed* constraints, tracked on both the old
  // (recorded-cap) and new (updated-cap) trajectories. The full residual
  // vector is only materialized if some round actually diverges — see the
  // second pass below. Net effect: recording costs the hot path almost
  // nothing, a surviving replay costs O(flows + rounds * changes), and
  // only a divergent replay pays O(rounds * constraints).
  //
  // Same accumulation order as solve()'s init: flow order, dead skipped.
  active_weight_.assign(nc, 0.0);
  for (std::size_t f = 0; f < nf; ++f) {
    if (dead_[f] != 0) continue;
    for (std::int32_t m = memb_begin_[f]; m < memb_begin_[f + 1]; ++m) {
      active_weight_[static_cast<std::size_t>(memb_[m])] += flow_weight_[f];
    }
  }

  // Start-of-round residuals for the changed constraints on both
  // trajectories.
  replay_res_.clear();
  replay_res_old_.clear();
  for (std::size_t k = 0; k < dirty_c_.size(); ++k) {
    replay_res_.push_back(cap_[static_cast<std::size_t>(dirty_c_[k])]);
    replay_res_old_.push_back(dirty_c_old_cap_[k]);
  }

  double sum = 0.0;  // shared rate of every unfrozen flow (prefix sum)
  std::size_t div = journal_.size();
  for (std::size_t r = 0; r < journal_.size(); ++r) {
    const Round& rd = journal_[r];
    bool valid = true;

    // A changed element that determined the recorded increment moves it.
    if (rd.owner_kind == 0) {
      for (std::size_t k = 0; k < dirty_c_.size() && valid; ++k) {
        if (rd.owner_idx == dirty_c_[k]) valid = false;
      }
    } else {
      for (std::size_t k = 0; k < dirty_f_.size() && valid; ++k) {
        if (rd.owner_idx == dirty_f_[k]) valid = false;
      }
    }

    // Changed constraints must not undercut the recorded increment, and
    // must keep their recorded saturation outcome. Both sides of the
    // saturation test repeat the full solve's exact arithmetic
    // (residual -= delta * active_weight, applied only when delta > 0).
    for (std::size_t k = 0; k < dirty_c_.size() && valid; ++k) {
      const auto c = static_cast<std::size_t>(dirty_c_[k]);
      const double aw = active_weight_[c];
      const double res_new = replay_res_[k];
      if (aw > kEps && res_new / aw < rd.delta) valid = false;
      const double after_new = rd.delta > 0.0 ? res_new - rd.delta * aw : res_new;
      const double after_old =
          rd.delta > 0.0 ? replay_res_old_[k] - rd.delta * aw : replay_res_old_[k];
      if ((after_new <= kEps) != (after_old <= kEps)) valid = false;
    }
    // Changed flows still unfrozen at this round: same two conditions
    // against their own (old vs new) caps. Every unfrozen flow's rate is
    // the shared prefix sum, so no per-flow state is needed.
    for (std::size_t k = 0; k < dirty_f_.size() && valid; ++k) {
      const auto f = static_cast<std::size_t>(dirty_f_[k]);
      const std::int32_t fr = freeze_round_[f];
      if (fr != kNoRound && fr < static_cast<std::int32_t>(r)) continue;
      const double cap_new = flow_cap_[f];
      const double cap_old = dirty_f_old_cap_[k];
      if (cap_new - sum < rd.delta) valid = false;
      const double next = rd.delta > 0.0 ? sum + rd.delta : sum;
      if ((next >= cap_new - kEps) != (next >= cap_old - kEps)) valid = false;
    }

    if (!valid) {
      div = r;
      break;
    }

    // Round r survives the update bit-for-bit. Advance both trajectories
    // of the changed constraints, then retire this round's freezes from
    // the active weights — the same ops, in the same order, as the
    // recording solve.
    if (rd.delta > 0.0) {
      for (std::size_t k = 0; k < dirty_c_.size(); ++k) {
        const double aw = active_weight_[static_cast<std::size_t>(dirty_c_[k])];
        replay_res_[k] -= rd.delta * aw;
        replay_res_old_[k] -= rd.delta * aw;
      }
      sum += rd.delta;
    }
    for (std::int32_t i = rd.frozen_begin; i < rd.frozen_end; ++i) {
      const auto f =
          static_cast<std::size_t>(journal_frozen_[static_cast<std::size_t>(i)]);
      for (std::int32_t m = memb_begin_[f]; m < memb_begin_[f + 1]; ++m) {
        active_weight_[static_cast<std::size_t>(memb_[m])] -= flow_weight_[f];
      }
    }
    ++out.rounds_reused;
  }

  if (div == journal_.size()) {
    // The whole journal survives: increments and freeze schedule match what
    // a full solve under the new values would produce, so the rates — sums
    // of those increments — are already exact.
    dirty_c_.clear();
    dirty_c_old_cap_.clear();
    dirty_f_.clear();
    dirty_f_old_cap_.clear();
    return out;
  }

  // Round `div` diverged: materialize the full start-of-round state with a
  // second journal pass. Replaying increments and freezes from the old
  // capacities repeats the recording solve's arithmetic exactly, so this
  // residual_ / active_weight_ state is bit-identical to the state the
  // solve held entering round `div`; the dirty constraints then switch to
  // the new trajectory. Only this (rare) divergent path pays the
  // O(rounds * constraints) cost.
  const Round dr = journal_[div];
  residual_.assign(cap_.begin(), cap_.end());
  for (std::size_t k = 0; k < dirty_c_.size(); ++k) {
    residual_[static_cast<std::size_t>(dirty_c_[k])] = dirty_c_old_cap_[k];
  }
  active_weight_.assign(nc, 0.0);
  for (std::size_t f = 0; f < nf; ++f) {
    if (dead_[f] != 0) continue;
    for (std::int32_t m = memb_begin_[f]; m < memb_begin_[f + 1]; ++m) {
      active_weight_[static_cast<std::size_t>(memb_[m])] += flow_weight_[f];
    }
  }
  for (std::size_t r = 0; r < div; ++r) {
    const Round& rd = journal_[r];
    if (rd.delta > 0.0) {
      for (std::size_t c = 0; c < nc; ++c) {
        residual_[c] -= rd.delta * active_weight_[c];
      }
    }
    for (std::int32_t i = rd.frozen_begin; i < rd.frozen_end; ++i) {
      const auto f =
          static_cast<std::size_t>(journal_frozen_[static_cast<std::size_t>(i)]);
      for (std::int32_t m = memb_begin_[f]; m < memb_begin_[f + 1]; ++m) {
        active_weight_[static_cast<std::size_t>(memb_[m])] -= flow_weight_[f];
      }
    }
  }
  for (std::size_t k = 0; k < dirty_c_.size(); ++k) {
    residual_[static_cast<std::size_t>(dirty_c_[k])] = replay_res_[k];
  }
  frozen_.assign(nf, 0);
  for (std::size_t f = 0; f < nf; ++f) {
    if (dead_[f] != 0) frozen_[f] = 1;  // dead flows stay excluded
  }
  for (std::int32_t i = 0; i < dr.frozen_begin; ++i) {
    frozen_[static_cast<std::size_t>(journal_frozen_[static_cast<std::size_t>(i)])] = 1;
  }
  // Unfrozen rates are the shared prefix sum (bit-identical to the full
  // solve's repeated `rate += delta`); frozen rates keep their journaled,
  // prefix-validated values.
  for (std::size_t f = 0; f < nf; ++f) {
    if (frozen_[f] == 0) rate_[f] = sum;
  }
  journal_.resize(div);
  journal_frozen_.resize(static_cast<std::size_t>(dr.frozen_begin));
  for (std::size_t f = 0; f < nf; ++f) {
    if (freeze_round_[f] >= static_cast<std::int32_t>(div)) freeze_round_[f] = kNoRound;
  }
  dirty_c_.clear();
  dirty_c_old_cap_.clear();
  dirty_f_.clear();
  dirty_f_old_cap_.clear();
  run_waterfill();
  out.rounds_total = static_cast<std::int32_t>(journal_.size());
  return out;
}

void FlowNetwork::check_against_full() {
  const std::vector<double> got(rate_.begin(), rate_.end());
  solve();
  const bool same =
      got.size() == rate_.size() &&
      (got.empty() ||
       std::memcmp(got.data(), rate_.data(), got.size() * sizeof(double)) == 0);
  if (!same) {
    throw std::logic_error(
        "FlowNetwork::check_against_full: delta solve diverged from full solve");
  }
}

}  // namespace ilan::mem
