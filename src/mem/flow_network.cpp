#include "mem/flow_network.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace ilan::mem {

namespace {
constexpr double kEps = 1e-12;
}

void FlowNetwork::clear() {
  cap_.clear();
  flow_cap_.clear();
  flow_weight_.clear();
  rate_.clear();
  memb_begin_.clear();
  memb_.clear();
}

FlowNetwork::ConstraintIdx FlowNetwork::add_constraint(double capacity) {
  if (capacity <= 0.0) throw std::invalid_argument("FlowNetwork: non-positive capacity");
  cap_.push_back(capacity);
  return static_cast<ConstraintIdx>(cap_.size() - 1);
}

FlowNetwork::FlowIdx FlowNetwork::add_flow(double cap, double weight,
                                           std::span<const ConstraintIdx> constraints) {
  if (cap <= 0.0) throw std::invalid_argument("FlowNetwork: non-positive flow cap");
  if (weight <= 0.0) throw std::invalid_argument("FlowNetwork: non-positive weight");
  if (memb_begin_.empty()) memb_begin_.push_back(0);
  for (const auto c : constraints) {
    if (c < 0 || static_cast<std::size_t>(c) >= cap_.size()) {
      throw std::out_of_range("FlowNetwork: bad constraint index");
    }
    memb_.push_back(c);
  }
  memb_begin_.push_back(static_cast<std::int32_t>(memb_.size()));
  flow_cap_.push_back(cap);
  flow_weight_.push_back(weight);
  rate_.push_back(0.0);
  return static_cast<FlowIdx>(flow_cap_.size() - 1);
}

void FlowNetwork::set_capacity(ConstraintIdx c, double capacity) {
  if (c < 0 || static_cast<std::size_t>(c) >= cap_.size()) {
    throw std::out_of_range("FlowNetwork: bad constraint index");
  }
  if (capacity <= 0.0) throw std::invalid_argument("FlowNetwork: non-positive capacity");
  cap_[static_cast<std::size_t>(c)] = capacity;
}

void FlowNetwork::set_flow_cap(FlowIdx f, double cap) {
  if (f < 0 || static_cast<std::size_t>(f) >= flow_cap_.size()) {
    throw std::out_of_range("FlowNetwork: bad flow index");
  }
  if (cap <= 0.0) throw std::invalid_argument("FlowNetwork: non-positive flow cap");
  flow_cap_[static_cast<std::size_t>(f)] = cap;
}

void FlowNetwork::solve() {
  const std::size_t nf = flow_cap_.size();
  const std::size_t nc = cap_.size();
  if (memb_begin_.empty()) memb_begin_.push_back(0);

  residual_.assign(cap_.begin(), cap_.end());
  active_weight_.assign(nc, 0.0);
  frozen_.assign(nf, 0);
  std::fill(rate_.begin(), rate_.end(), 0.0);

  for (std::size_t f = 0; f < nf; ++f) {
    for (std::int32_t m = memb_begin_[f]; m < memb_begin_[f + 1]; ++m) {
      active_weight_[static_cast<std::size_t>(memb_[m])] += flow_weight_[f];
    }
  }

  std::size_t remaining = nf;
  while (remaining > 0) {
    // Largest uniform rate increment no constraint or flow cap forbids.
    // A constraint drains at (sum of unfrozen weights) per unit of rate.
    double delta = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < nc; ++c) {
      if (active_weight_[c] > kEps) {
        delta = std::min(delta, residual_[c] / active_weight_[c]);
      }
    }
    for (std::size_t f = 0; f < nf; ++f) {
      if (!frozen_[f]) delta = std::min(delta, flow_cap_[f] - rate_[f]);
    }
    delta = std::max(delta, 0.0);

    if (delta > 0.0) {
      for (std::size_t f = 0; f < nf; ++f) {
        if (!frozen_[f]) rate_[f] += delta;
      }
      for (std::size_t c = 0; c < nc; ++c) {
        residual_[c] -= delta * active_weight_[c];
      }
    }

    // Freeze flows at their cap or in a saturated constraint. The delta
    // choice guarantees at least one flow freezes per iteration.
    std::size_t frozen_now = 0;
    for (std::size_t f = 0; f < nf; ++f) {
      if (frozen_[f]) continue;
      bool freeze = rate_[f] >= flow_cap_[f] - kEps;
      if (!freeze) {
        for (std::int32_t m = memb_begin_[f]; m < memb_begin_[f + 1] && !freeze; ++m) {
          freeze = residual_[static_cast<std::size_t>(memb_[m])] <= kEps;
        }
      }
      if (freeze) {
        frozen_[f] = 1;
        for (std::int32_t m = memb_begin_[f]; m < memb_begin_[f + 1]; ++m) {
          active_weight_[static_cast<std::size_t>(memb_[m])] -= flow_weight_[f];
        }
        ++frozen_now;
      }
    }
    if (frozen_now == 0) {
      // Numerical corner: force-freeze the first unfrozen flow.
      for (std::size_t f = 0; f < nf; ++f) {
        if (!frozen_[f]) {
          frozen_[f] = 1;
          for (std::int32_t m = memb_begin_[f]; m < memb_begin_[f + 1]; ++m) {
            active_weight_[static_cast<std::size_t>(memb_[m])] -= flow_weight_[f];
          }
          frozen_now = 1;
          break;
        }
      }
    }
    remaining -= frozen_now;
  }
}

}  // namespace ilan::mem
