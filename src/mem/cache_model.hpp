// Shared-L3 reuse model, one cache per CCD.
//
// Tracks which (region, block) chunks are resident in each CCD's L3 at a
// coarse block granularity and reports the hit fraction of an access. This
// is deliberately not a cycle-accurate cache: the quantity that matters to
// the scheduler study is how much DRAM traffic is *avoided* when successive
// taskloop executions place the same iterations on the same CCD — the
// temporal-reuse benefit of ILAN's deterministic block mapping.
//
// Accesses with a footprint larger than a capacity fraction bypass the LRU
// (pure streaming evicts itself; modelling it as resident would be wrong).
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "mem/data_region.hpp"
#include "topo/topology.hpp"

namespace ilan::mem {

struct CacheParams {
  std::uint64_t block_bytes = 256 * 1024;
  double streaming_bypass_fraction = 0.75;  // footprint > frac*L3 -> bypass
  double resident_hit_rate = 0.95;          // hit rate on a resident block
};

class CacheModel {
 public:
  CacheModel(const topo::Topology& topo, const CacheParams& params);

  // Probes [offset, offset+len) of `region` on `ccd`; returns the fraction
  // of bytes served from L3 and marks the touched blocks most-recently-used
  // (unless the access bypasses).
  double access(topo::CcdId ccd, RegionId region, std::uint64_t offset,
                std::uint64_t len);

  // Invalidate one CCD or all (used between independent runs).
  void invalidate(topo::CcdId ccd);
  void invalidate_all();

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t probes() const { return probes_; }

 private:
  struct BlockKey {
    RegionId region;
    std::uint64_t block;
    bool operator==(const BlockKey&) const = default;
  };
  struct BlockKeyHash {
    std::size_t operator()(const BlockKey& k) const {
      // SplitMix64 finalizer: stdlib-independent (std::hash of an integer is
      // the identity on libstdc++) and well mixed across buckets.
      std::uint64_t z =
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.region)) << 40) ^
          k.block;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      return static_cast<std::size_t>(z ^ (z >> 31));
    }
  };
  struct CcdCache {
    std::size_t capacity_blocks = 0;
    std::list<BlockKey> lru;  // front = most recent
    std::unordered_map<BlockKey, std::list<BlockKey>::iterator, BlockKeyHash> index;
  };

  void touch_block(CcdCache& c, const BlockKey& key);

  CacheParams params_;
  std::vector<CcdCache> ccds_;
  std::uint64_t hits_ = 0;
  std::uint64_t probes_ = 0;
};

}  // namespace ilan::mem
