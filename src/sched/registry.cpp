#include "sched/registry.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/env.hpp"
#include "sched/schedulers.hpp"

namespace ilan::sched {

std::string SchedulerSpec::to_string() const {
  std::string s = name;
  for (std::size_t i = 0; i < options.size(); ++i) {
    s += i == 0 ? ':' : ',';
    s += options[i].key;
    s += '=';
    s += options[i].value;
  }
  return s;
}

namespace {

std::string join(const std::vector<std::string>& items) {
  std::string s;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) s += ", ";
    s += items[i];
  }
  return s;
}

// Every spec diagnostic carries the registered names so a typo'd
// ILAN_SCHED tells the user what would have worked (the satellite error
// contract; mirrors obs/env.hpp's name-the-offender strictness).
[[noreturn]] void fail_spec(std::string_view spec_text, const std::string& what) {
  throw std::invalid_argument(
      "scheduler spec '" + std::string(spec_text) + "': " + what +
      "; registered schedulers: " + join(SchedulerRegistry::instance().names()));
}

bool parse_bool_value(std::string_view spec, const SpecOption& opt) {
  if (opt.value == "on" || opt.value == "true" || opt.value == "1" ||
      opt.value == "yes") {
    return true;
  }
  if (opt.value == "off" || opt.value == "false" || opt.value == "0" ||
      opt.value == "no") {
    return false;
  }
  fail_spec(spec, "key '" + opt.key + "': expected on/off, got '" + opt.value + "'");
}

int parse_int_value(std::string_view spec, const SpecOption& opt, int min, int max) {
  const auto v = obs::parse_full_int(opt.value);
  if (!v || *v < min || *v > max) {
    fail_spec(spec, "key '" + opt.key + "': expected an integer in [" +
                        std::to_string(min) + ", " + std::to_string(max) +
                        "], got '" + opt.value + "'");
  }
  return static_cast<int>(*v);
}

double parse_double_value(std::string_view spec, const SpecOption& opt, double min,
                          double max) {
  const auto v = obs::parse_full_double(opt.value);
  if (!v || *v < min || *v > max) {
    fail_spec(spec, "key '" + opt.key + "': expected a number in [" +
                        std::to_string(min) + ", " + std::to_string(max) +
                        "], got '" + opt.value + "'");
  }
  return *v;
}

trace::Objective parse_objective_value(std::string_view spec, const SpecOption& opt) {
  if (opt.value == "time") return trace::Objective::kTime;
  if (opt.value == "energy") return trace::Objective::kEnergy;
  if (opt.value == "edp") return trace::Objective::kEdp;
  fail_spec(spec, "key '" + opt.key + "': expected time/energy/edp, got '" +
                      opt.value + "'");
}

rt::StealPolicy parse_policy_value(std::string_view spec, const SpecOption& opt) {
  if (opt.value == "strict") return rt::StealPolicy::kStrict;
  if (opt.value == "full") return rt::StealPolicy::kFull;
  fail_spec(spec, "key '" + opt.key + "': expected strict/full, got '" + opt.value +
                      "'");
}

// The shared IlanParams key set ("ilan", "ilan-nomold" and "composed" all
// accept it). Returns false when the key is not a param key.
bool apply_param_key(std::string_view spec, const SpecOption& opt,
                     core::IlanParams& params) {
  if (opt.key == "mold") {
    params.moldability = parse_bool_value(spec, opt);
  } else if (opt.key == "counter") {
    params.counter_guided = parse_bool_value(spec, opt);
  } else if (opt.key == "reactive") {
    params.reactive = parse_bool_value(spec, opt);
  } else if (opt.key == "objective") {
    params.objective = parse_objective_value(spec, opt);
  } else if (opt.key == "granularity") {
    params.granularity = parse_int_value(spec, opt, 0, 1 << 20);
  } else if (opt.key == "stealable") {
    params.stealable_fraction = parse_double_value(spec, opt, 0.0, 1.0);
  } else if (opt.key == "chunk") {
    params.remote_steal_chunk = parse_int_value(spec, opt, 1, 1 << 20);
  } else if (opt.key == "staleness-factor") {
    params.staleness_factor = parse_double_value(spec, opt, 1.0 + 1e-9, 1e6);
  } else if (opt.key == "staleness-patience") {
    params.staleness_patience = parse_int_value(spec, opt, 1, 1 << 20);
  } else if (opt.key == "max-reexplorations") {
    params.max_reexplorations = parse_int_value(spec, opt, 0, 1 << 20);
  } else {
    return false;
  }
  return true;
}

[[noreturn]] void fail_key(std::string_view spec, const SpecOption& opt,
                           const std::string& scheduler, const char* valid) {
  fail_spec(spec, "unknown key '" + opt.key + "' for scheduler '" + scheduler +
                      "' (valid: " + valid + ")");
}

constexpr const char* kParamKeys =
    "mold, counter, reactive, objective, granularity, stealable, chunk, "
    "staleness-factor, staleness-patience, max-reexplorations";

std::unique_ptr<rt::Scheduler> make_ilan(const SchedulerSpec& spec,
                                         bool default_mold) {
  // Spec keys override env knobs override IlanParams defaults — so a bare
  // "ilan" is exactly the pre-registry harness construction, and the
  // resolved spec records whatever the env contributed.
  core::IlanParams base;
  base.moldability = default_mold;
  core::IlanParams params = core::params_from_env(base);
  const std::string text = spec.to_string();
  for (const SpecOption& opt : spec.options) {
    if (!apply_param_key(text, opt, params)) {
      fail_key(text, opt, spec.name, kParamKeys);
    }
  }
  return std::make_unique<IlanScheduler>(params);
}

std::unique_ptr<rt::Scheduler> make_manual(const SchedulerSpec& spec) {
  core::IlanParams params = core::params_from_env();
  rt::LoopConfig cfg;
  const std::string text = spec.to_string();
  for (const SpecOption& opt : spec.options) {
    if (opt.key == "threads") {
      cfg.num_threads = parse_int_value(text, opt, 0, 1 << 20);
    } else if (opt.key == "policy") {
      cfg.steal_policy = parse_policy_value(text, opt);
    } else if (opt.key == "stealable") {
      params.stealable_fraction = parse_double_value(text, opt, 0.0, 1.0);
    } else if (opt.key == "chunk") {
      params.remote_steal_chunk = parse_int_value(text, opt, 1, 1 << 20);
    } else {
      fail_key(text, opt, spec.name, "threads, policy, stealable, chunk");
    }
  }
  return std::make_unique<ManualScheduler>(cfg, params);
}

std::unique_ptr<rt::Scheduler> make_fixed_flat(const SchedulerSpec& spec,
                                               bool work_sharing) {
  if (!spec.options.empty()) {
    fail_spec(spec.to_string(), "scheduler '" + spec.name +
                                    "' accepts no options (key '" +
                                    spec.options.front().key + "' rejected)");
  }
  if (work_sharing) return std::make_unique<WorkSharingScheduler>();
  return std::make_unique<BaselineWsScheduler>();
}

std::unique_ptr<rt::Scheduler> make_composed(const SchedulerSpec& spec) {
  core::IlanParams params = core::params_from_env();
  std::string config = "ptt-search";
  std::string dist = "hierarchical";
  std::string steal = "tiered";
  std::string feedback = "ptt";
  rt::LoopConfig fixed_cfg;
  const std::string text = spec.to_string();

  for (const SpecOption& opt : spec.options) {
    if (opt.key == "config") {
      if (opt.value != "ptt-search" && opt.value != "fixed" &&
          opt.value != "counter-only" && opt.value != "oracle-best") {
        fail_spec(text, "key 'config': expected "
                        "ptt-search/fixed/counter-only/oracle-best, got '" +
                            opt.value + "'");
      }
      config = opt.value;
    } else if (opt.key == "dist") {
      if (opt.value != "hierarchical" && opt.value != "flat" &&
          opt.value != "static-block" && opt.value != "health-weighted" &&
          opt.value != "dep-aware" && opt.value != "depth-aware") {
        fail_spec(text,
                  "key 'dist': expected "
                  "hierarchical/flat/static-block/health-weighted/dep-aware/"
                  "depth-aware, got '" +
                      opt.value + "'");
      }
      dist = opt.value;
    } else if (opt.key == "steal") {
      if (opt.value != "tiered" && opt.value != "strict" && opt.value != "full" &&
          opt.value != "rescue-only" && opt.value != "random" &&
          opt.value != "none") {
        fail_spec(text, "key 'steal': expected "
                        "tiered/strict/full/rescue-only/random/none, got '" +
                            opt.value + "'");
      }
      steal = opt.value;
    } else if (opt.key == "feedback") {
      if (opt.value != "ptt" && opt.value != "none") {
        fail_spec(text, "key 'feedback': expected ptt/none, got '" + opt.value + "'");
      }
      feedback = opt.value;
    } else if (opt.key == "threads") {
      fixed_cfg.num_threads = parse_int_value(text, opt, 0, 1 << 20);
    } else if (opt.key == "policy") {
      fixed_cfg.steal_policy = parse_policy_value(text, opt);
    } else if (!apply_param_key(text, opt, params)) {
      fail_key(text, opt, spec.name,
               "config, dist, steal, feedback, threads, policy + the param keys "
               "(mold, counter, reactive, objective, granularity, stealable, "
               "chunk, staleness-factor, staleness-patience, max-reexplorations)");
    }
  }

  // counter-only is moldability-by-classification: the counter check is the
  // whole point of the axis, so it is forced on.
  if (config == "counter-only") params.counter_guided = true;

  std::unique_ptr<ConfigPolicy> config_policy;
  if (config == "ptt-search") {
    config_policy = std::make_unique<PttSearchConfig>();
  } else if (config == "fixed") {
    config_policy = std::make_unique<FixedConfig>(fixed_cfg);
  } else if (config == "counter-only") {
    config_policy = std::make_unique<CounterOnlyConfig>();
  } else {
    config_policy = std::make_unique<OracleBestConfig>();
  }

  std::unique_ptr<DistributionPolicy> dist_policy;
  if (dist == "hierarchical") {
    dist_policy = std::make_unique<HierarchicalDist>(HierarchicalDist::Health::kReactive);
  } else if (dist == "flat") {
    dist_policy = std::make_unique<FlatDist>();
  } else if (dist == "static-block") {
    dist_policy = std::make_unique<StaticBlockDist>();
  } else if (dist == "dep-aware") {
    dist_policy = std::make_unique<DepAwareDist>();
  } else if (dist == "depth-aware") {
    dist_policy = std::make_unique<DepthAwareDist>();
  } else {
    dist_policy = std::make_unique<HierarchicalDist>(HierarchicalDist::Health::kForced);
  }

  std::unique_ptr<StealPolicy> steal_policy;
  if (steal == "tiered") {
    steal_policy = std::make_unique<TieredSteal>(core::CrossNodeMode::kConfig,
                                                 TieredSteal::Escalate::kReactive);
  } else if (steal == "strict") {
    steal_policy = std::make_unique<TieredSteal>(core::CrossNodeMode::kNever,
                                                 TieredSteal::Escalate::kNever);
  } else if (steal == "full") {
    steal_policy = std::make_unique<TieredSteal>(core::CrossNodeMode::kAlways,
                                                 TieredSteal::Escalate::kNever);
  } else if (steal == "rescue-only") {
    steal_policy = std::make_unique<TieredSteal>(core::CrossNodeMode::kNever,
                                                 TieredSteal::Escalate::kAlways);
  } else if (steal == "random") {
    steal_policy = std::make_unique<RandomSteal>();
  } else {
    steal_policy = std::make_unique<NoSteal>();
  }

  std::unique_ptr<FeedbackPolicy> feedback_policy;
  if (feedback == "ptt") {
    feedback_policy = std::make_unique<PttFeedback>();
  } else {
    feedback_policy = std::make_unique<NoFeedback>();
  }

  // Canonical resolved spec: axes first, then the fixed-config block (only
  // when config=fixed makes it meaningful), then the full param block.
  std::string resolved = "composed:config=" + config + ",dist=" + dist +
                         ",steal=" + steal + ",feedback=" + feedback;
  if (config == "fixed") resolved += "," + canonical_fixed_block(fixed_cfg);
  resolved += "," + canonical_param_block(params);

  return std::make_unique<ComposedScheduler>(
      "composed", resolved, params, std::move(config_policy), std::move(dist_policy),
      std::move(steal_policy), std::move(feedback_policy));
}

}  // namespace

SchedulerSpec parse_spec(std::string_view text) {
  SchedulerSpec spec;
  const auto colon = text.find(':');
  spec.name = std::string(text.substr(0, colon));
  if (spec.name.empty()) {
    throw std::invalid_argument("scheduler spec '" + std::string(text) +
                                "': empty scheduler name");
  }
  if (colon == std::string_view::npos) return spec;

  std::string_view rest = text.substr(colon + 1);
  while (true) {
    const auto comma = rest.find(',');
    const std::string_view item = rest.substr(0, comma);
    const auto eq = item.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      throw std::invalid_argument("scheduler spec '" + std::string(text) +
                                  "': option '" + std::string(item) +
                                  "' is not key=value");
    }
    SpecOption opt;
    opt.key = std::string(item.substr(0, eq));
    opt.value = std::string(item.substr(eq + 1));
    for (const SpecOption& seen : spec.options) {
      if (seen.key == opt.key) {
        throw std::invalid_argument("scheduler spec '" + std::string(text) +
                                    "': duplicate key '" + opt.key + "'");
      }
    }
    spec.options.push_back(std::move(opt));
    if (comma == std::string_view::npos) break;
    rest = rest.substr(comma + 1);
  }
  return spec;
}

SchedulerRegistry::SchedulerRegistry() {
  register_scheduler(
      "ilan", "ILAN: PTT search + hierarchical distribution + tiered stealing",
      [](const SchedulerSpec& s) { return make_ilan(s, /*default_mold=*/true); });
  register_scheduler(
      "ilan-nomold", "ILAN with moldability off (Figure 4; = ilan:mold=off)",
      [](const SchedulerSpec& s) { return make_ilan(s, /*default_mold=*/false); });
  register_scheduler(
      "baseline", "LLVM-style tasking baseline: flat deque + random-victim steals",
      [](const SchedulerSpec& s) { return make_fixed_flat(s, /*work_sharing=*/false); });
  register_scheduler(
      "work-sharing", "omp for schedule(static): static blocks, no stealing",
      [](const SchedulerSpec& s) { return make_fixed_flat(s, /*work_sharing=*/true); });
  register_scheduler(
      "manual", "fixed config on ILAN's distribution/stealing (threads=, policy=)",
      [](const SchedulerSpec& s) { return make_manual(s); });
  register_scheduler(
      "composed", "free composition: config=, dist=, steal=, feedback= + params",
      [](const SchedulerSpec& s) { return make_composed(s); });
}

SchedulerRegistry& SchedulerRegistry::instance() {
  static SchedulerRegistry registry;
  return registry;
}

void SchedulerRegistry::register_scheduler(std::string name, std::string description,
                                           Factory factory) {
  entries_[std::move(name)] = Entry{std::move(description), std::move(factory)};
}

std::vector<std::string> SchedulerRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;  // std::map iteration order == sorted
}

bool SchedulerRegistry::contains(std::string_view name) const {
  return entries_.find(std::string(name)) != entries_.end();
}

std::string SchedulerRegistry::description(const std::string& name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? std::string() : it->second.description;
}

std::unique_ptr<rt::Scheduler> SchedulerRegistry::make(
    std::string_view spec_text) const {
  const SchedulerSpec spec = parse_spec(spec_text);
  const auto it = entries_.find(spec.name);
  if (it == entries_.end()) {
    fail_spec(spec_text, "unknown scheduler '" + spec.name + "'");
  }
  return it->second.factory(spec);
}

std::string SchedulerRegistry::resolve(std::string_view spec_text) const {
  return make(spec_text)->introspect().spec;
}

std::unique_ptr<rt::Scheduler> make_scheduler(std::string_view spec_text) {
  return SchedulerRegistry::instance().make(spec_text);
}

std::string resolve_spec(std::string_view spec_text) {
  return SchedulerRegistry::instance().resolve(spec_text);
}

}  // namespace ilan::sched
