#include "sched/composed.hpp"

namespace ilan::sched {

ComposedScheduler::ComposedScheduler(std::string name, std::string spec,
                                     core::IlanParams params,
                                     std::unique_ptr<ConfigPolicy> config,
                                     std::unique_ptr<DistributionPolicy> dist,
                                     std::unique_ptr<StealPolicy> steal,
                                     std::unique_ptr<FeedbackPolicy> feedback)
    : name_(std::move(name)),
      spec_(std::move(spec)),
      config_(std::move(config)),
      dist_(std::move(dist)),
      steal_(std::move(steal)),
      feedback_(std::move(feedback)) {
  params.validate();
  state_.params = params;
}

rt::LoopConfig ComposedScheduler::select_config(const rt::TaskloopSpec& spec,
                                                rt::Team& team) {
  return config_->select(spec, team, state_);
}

std::size_t ComposedScheduler::distribute(const rt::TaskloopSpec& spec,
                                          const rt::LoopConfig& cfg, rt::Team& team,
                                          sim::SimTime& serial_cost) {
  return dist_->distribute(spec, cfg, team, state_, serial_cost);
}

rt::AcquireResult ComposedScheduler::acquire(rt::Team& team, rt::Worker& w) {
  return steal_->acquire(team, w, state_);
}

void ComposedScheduler::place_ready(const rt::TaskGraphSpec& graph, rt::Task& task,
                                    const rt::LoopConfig& cfg, rt::Team& team,
                                    std::span<const topo::NodeId> pred_nodes,
                                    sim::SimTime& cost) {
  dist_->place(graph, task, cfg, team, pred_nodes, state_, cost);
}

void ComposedScheduler::loop_finished(const rt::TaskloopSpec& spec,
                                      const rt::LoopExecStats& stats, rt::Team& team) {
  feedback_->loop_finished(spec, stats, team, state_);
}

}  // namespace ilan::sched
