// Concrete scheduler policies — the building blocks the registry composes.
//
// Each class is the verbatim logic of one axis of the pre-refactor
// monolithic schedulers (core::IlanScheduler, core::ManualScheduler,
// rt::BaselineWsScheduler, rt::WorkSharingScheduler), factored out behind
// the sched/policy.hpp interfaces. The overhead-charge sequences are part
// of the determinism contract (they feed the event digest), so every charge
// here replicates its source exactly; the sched_equivalence ctest gate
// holds the compositions to the pre-refactor digests bit-for-bit.
#pragma once

#include "core/distributor.hpp"
#include "sched/policy.hpp"

namespace ilan::sched {

// --- ConfigPolicy --------------------------------------------------------

// PTT + Algorithm 1 thread search (paper Sections 3.1-3.2): the ILAN
// configuration selection, including counter-lock and no-moldability
// short-circuits driven by SchedState::params.
class PttSearchConfig final : public ConfigPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "ptt-search"; }
  rt::LoopConfig select(const rt::TaskloopSpec& spec, rt::Team& team,
                        SchedState& state) override;
};

// A fixed base configuration with ManualScheduler's fill-in rules: illegal
// or unset thread counts become the full team, an empty mask becomes the
// first ceil(threads / cores_per_node) nodes.
class FixedConfig final : public ConfigPolicy {
 public:
  explicit FixedConfig(rt::LoopConfig config) : config_(config) {}
  [[nodiscard]] std::string_view name() const override { return "fixed"; }
  rt::LoopConfig select(const rt::TaskloopSpec& spec, rt::Team& team,
                        SchedState& state) override;
  [[nodiscard]] const rt::LoopConfig& config() const { return config_; }

 private:
  rt::LoopConfig config_;
};

// Counter-only moldability: no Algorithm 1 search — every loop runs at
// m_max until the counter classification (PttFeedback with counter_guided
// on) locks it, exactly the paper's "more performance statistics can reduce
// the exploration overhead" extension taken to its endpoint. The
// steal-policy trial still runs, so locality decisions stay adaptive.
class CounterOnlyConfig final : public ConfigPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "counter-only"; }
  rt::LoopConfig select(const rt::TaskloopSpec& spec, rt::Team& team,
                        SchedState& state) override;
};

// Oracle replay: picks the PTT's best-known configuration for the loop and
// falls back to (m_max, strict) when the table has no entry yet. Useful as
// an upper bound when a warmed PTT is replayed against the same kernel.
class OracleBestConfig final : public ConfigPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "oracle-best"; }
  rt::LoopConfig select(const rt::TaskloopSpec& spec, rt::Team& team,
                        SchedState& state) override;
};

// --- DistributionPolicy --------------------------------------------------

// Hierarchical block distribution (paper Section 3.3) via
// core::distribute_hierarchical. The health mode selects who the block
// mapping listens to: kReactive follows params.reactive (the ILAN
// composition), kBlind never weights by health (ManualScheduler's
// behaviour), kForced always does (the standalone health-weighted axis).
class HierarchicalDist final : public DistributionPolicy {
 public:
  enum class Health { kReactive, kBlind, kForced };
  explicit HierarchicalDist(Health health = Health::kReactive) : health_(health) {}
  [[nodiscard]] std::string_view name() const override {
    return health_ == Health::kForced ? "health-weighted" : "hierarchical";
  }
  std::size_t distribute(const rt::TaskloopSpec& spec, const rt::LoopConfig& cfg,
                         rt::Team& team, SchedState& state,
                         sim::SimTime& serial_cost) override;

 private:
  Health health_;
};

// Flat distribution: every chunk into the encountering worker's deque,
// location-blind (BaselineWsScheduler's placement).
class FlatDist final : public DistributionPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "flat"; }
  std::size_t distribute(const rt::TaskloopSpec& spec, const rt::LoopConfig& cfg,
                         rt::Team& team, SchedState& state,
                         sim::SimTime& serial_cost) override;
};

// schedule(static)-style contiguous blocks, one run per thread, NUMA-strict
// (WorkSharingScheduler's placement).
class StaticBlockDist final : public DistributionPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "static-block"; }
  std::size_t distribute(const rt::TaskloopSpec& spec, const rt::LoopConfig& cfg,
                         rt::Team& team, SchedState& state,
                         sim::SimTime& serial_cost) override;
};

// Dependency-aware placement for the task-graph path: a ready node goes to
// the active mask node where the plurality of its predecessors executed
// (ties break toward the earliest node in topology order; roots and
// invalid votes fall back to the base block-map). Loop distribution
// delegates to the reactive hierarchical mapping so `dist=dep-aware`
// composes with any config/steal/feedback axis on mixed loop+graph
// programs.
class DepAwareDist final : public DistributionPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "dep-aware"; }
  std::size_t distribute(const rt::TaskloopSpec& spec, const rt::LoopConfig& cfg,
                         rt::Team& team, SchedState& state,
                         sim::SimTime& serial_cost) override;
  void place(const rt::TaskGraphSpec& graph, rt::Task& task,
             const rt::LoopConfig& cfg, rt::Team& team,
             std::span<const topo::NodeId> pred_nodes, SchedState& state,
             sim::SimTime& cost) override;

 private:
  HierarchicalDist loop_dist_{HierarchicalDist::Health::kReactive};
};

// Depth-aware block distribution: walks the full machine hierarchy —
// socket, then node, then CCD — and gives every level a contiguous run of
// the iteration space. The node layer matches the hierarchical block map;
// the extra CCD layer splits each node's run across its CCDs and enqueues
// every sub-run on that CCD's first active worker, so L3 working sets stay
// CCD-local on deep topologies (4-socket, heterogeneous) instead of piling
// onto the node primary.
class DepthAwareDist final : public DistributionPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "depth-aware"; }
  std::size_t distribute(const rt::TaskloopSpec& spec, const rt::LoopConfig& cfg,
                         rt::Team& team, SchedState& state,
                         sim::SimTime& serial_cost) override;
};

// --- StealPolicy ---------------------------------------------------------

// Tiered NUMA-aware stealing (paper Section 3.4) via
// core::acquire_hierarchical: pop, intra-node, then cross-node. The
// cross-node tier either follows the LoopConfig's strict/full knob
// (kConfig), never opens (kNever), or always opens (kAlways); escalation
// adds the graceful-degradation rescue tier while any node is unhealthy.
class TieredSteal final : public StealPolicy {
 public:
  enum class Escalate { kReactive, kNever, kAlways };
  TieredSteal(core::CrossNodeMode cross, Escalate escalate)
      : cross_(cross), escalate_(escalate) {}
  [[nodiscard]] std::string_view name() const override {
    switch (cross_) {
      case core::CrossNodeMode::kNever:
        return escalate_ == Escalate::kNever ? "strict" : "rescue-only";
      case core::CrossNodeMode::kAlways:
        return "full";
      case core::CrossNodeMode::kConfig:
        break;
    }
    return "tiered";
  }
  rt::AcquireResult acquire(rt::Team& team, rt::Worker& w, SchedState& state) override;

 private:
  core::CrossNodeMode cross_;
  Escalate escalate_;
};

// Random-victim stealing from any deque, NUMA-blind (BaselineWsScheduler's
// acquisition).
class RandomSteal final : public StealPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "random"; }
  rt::AcquireResult acquire(rt::Team& team, rt::Worker& w, SchedState& state) override;
};

// Pop-only, no stealing at all (WorkSharingScheduler's acquisition). Note
// the quirk preserved from the original: the dequeue cost is charged only
// when the pop succeeds.
class NoSteal final : public StealPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "none"; }
  rt::AcquireResult acquire(rt::Team& team, rt::Worker& w, SchedState& state) override;
};

// --- FeedbackPolicy ------------------------------------------------------

// The ILAN end-of-execution feedback: PTT record, counter-guided
// classification after the first execution, and staleness-triggered
// re-exploration (graceful degradation under dynamic interference).
class PttFeedback final : public FeedbackPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "ptt"; }
  void loop_finished(const rt::TaskloopSpec& spec, const rt::LoopExecStats& stats,
                     rt::Team& team, SchedState& state) override;
};

// No observation at all (the fixed-configuration schedulers).
class NoFeedback final : public FeedbackPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "none"; }
  void loop_finished(const rt::TaskloopSpec&, const rt::LoopExecStats&, rt::Team&,
                     SchedState&) override {}
};

}  // namespace ilan::sched
