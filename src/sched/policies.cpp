#include "sched/policies.hpp"

#include <stdexcept>

#include "core/node_mask.hpp"
#include "rt/runtime.hpp"
#include "rt/task_graph.hpp"
#include "rt/team.hpp"

namespace ilan::sched {

// --- ConfigPolicy --------------------------------------------------------

rt::LoopConfig PttSearchConfig::select(const rt::TaskloopSpec& spec, rt::Team& team,
                                       SchedState& state) {
  team.costs().charge(trace::OverheadComponent::kConfigSelect);
  obs::MetricsRegistry* metrics = team.machine().metrics();
  if (metrics != nullptr) metrics->counter("ptt.probe").inc();

  LoopSearchState& st = state.loops[spec.loop_id];
  ++st.k;
  const int m_max = team.num_workers();
  const int g = state.params.granularity > 0 ? state.params.granularity
                                             : team.topology().cores_per_node();

  int threads = m_max;
  if (st.counter_locked || !state.params.moldability) {
    st.finished = true;  // no exploration: straight to steal-policy trial
  } else {
    const bool was_finished = st.finished;
    if (!st.search) st.search = std::make_unique<core::ThreadSearch>(m_max, g);
    // k - k0 is the search-local execution index: a staleness-triggered
    // restart replays Algorithm 1's warm-up instead of resuming mid-search.
    threads = st.search->next_threads(st.k - st.k0, state.ptt, spec.loop_id);
    st.finished = st.search->finished();
    if (st.finished && !was_finished) {
      // Algorithm 1 just locked in a thread count for this loop.
      if (metrics != nullptr) {
        metrics->counter("ptt.lock").inc();
        metrics->gauge("ptt.converge_execs").add(static_cast<double>(st.k - st.k0));
      }
      if (team.tracer() != nullptr) {
        team.tracer()->add_instant(trace::InstantEvent{
            "ptt lock loop " + std::to_string(spec.loop_id) + " @" +
                std::to_string(threads) + "thr",
            team.now()});
      }
    }
  }

  // The reactive path routes around unhealthy nodes; with every node
  // healthy it selects exactly the health-blind mask.
  const rt::NodeHealth* health =
      state.params.reactive ? &team.machine().health() : nullptr;

  rt::LoopConfig cfg;
  cfg.num_threads = threads;
  cfg.node_mask = core::select_node_mask(team.topology(), state.ptt, spec.loop_id,
                                         threads, g, health);
  cfg.steal_policy =
      st.policy.next_policy(st.finished, threads, state.ptt, spec.loop_id);
  return cfg;
}

rt::LoopConfig FixedConfig::select(const rt::TaskloopSpec&, rt::Team& team,
                                   SchedState&) {
  rt::LoopConfig cfg = config_;
  if (cfg.num_threads <= 0 || cfg.num_threads > team.num_workers()) {
    cfg.num_threads = team.num_workers();
  }
  if (cfg.node_mask.empty()) {
    const int per_node = team.topology().cores_per_node();
    cfg.node_mask = rt::NodeMask::first_n((cfg.num_threads + per_node - 1) / per_node);
  }
  return cfg;
}

rt::LoopConfig CounterOnlyConfig::select(const rt::TaskloopSpec& spec, rt::Team& team,
                                         SchedState& state) {
  // The ptt-search path with the Algorithm 1 search permanently skipped:
  // every execution runs at m_max, the counter classification (PttFeedback)
  // is the only moldability signal, and the steal-policy trial still runs.
  team.costs().charge(trace::OverheadComponent::kConfigSelect);
  obs::MetricsRegistry* metrics = team.machine().metrics();
  if (metrics != nullptr) metrics->counter("ptt.probe").inc();

  LoopSearchState& st = state.loops[spec.loop_id];
  ++st.k;
  const int m_max = team.num_workers();
  const int g = state.params.granularity > 0 ? state.params.granularity
                                             : team.topology().cores_per_node();
  // The first execution is the classification window (PttFeedback's counter
  // check requires an unfinished search at k == 1); from the second on the
  // loop is locked at m_max either way and the steal-policy trial begins.
  if (st.k - st.k0 > 1) st.finished = true;

  const rt::NodeHealth* health =
      state.params.reactive ? &team.machine().health() : nullptr;

  rt::LoopConfig cfg;
  cfg.num_threads = m_max;
  cfg.node_mask = core::select_node_mask(team.topology(), state.ptt, spec.loop_id,
                                         m_max, g, health);
  cfg.steal_policy =
      st.policy.next_policy(st.finished, m_max, state.ptt, spec.loop_id);
  return cfg;
}

rt::LoopConfig OracleBestConfig::select(const rt::TaskloopSpec& spec, rt::Team& team,
                                        SchedState& state) {
  team.costs().charge(trace::OverheadComponent::kConfigSelect);

  LoopSearchState& st = state.loops[spec.loop_id];
  ++st.k;
  st.finished = true;
  const int m_max = team.num_workers();
  const int g = state.params.granularity > 0 ? state.params.granularity
                                             : team.topology().cores_per_node();

  // Replay the best configuration the PTT has ever seen for this loop; a
  // cold table degenerates to (m_max, strict), i.e. run wide and local.
  int threads = m_max;
  rt::StealPolicy policy = rt::StealPolicy::kStrict;
  if (const core::PttEntry* best = state.ptt.fastest(spec.loop_id)) {
    threads = best->config.num_threads;
    policy = best->config.steal_policy;
  }

  const rt::NodeHealth* health =
      state.params.reactive ? &team.machine().health() : nullptr;

  rt::LoopConfig cfg;
  cfg.num_threads = threads;
  cfg.node_mask = core::select_node_mask(team.topology(), state.ptt, spec.loop_id,
                                         threads, g, health);
  cfg.steal_policy = policy;
  return cfg;
}

// --- DistributionPolicy --------------------------------------------------

std::size_t HierarchicalDist::distribute(const rt::TaskloopSpec& spec,
                                         const rt::LoopConfig& cfg, rt::Team& team,
                                         SchedState& state,
                                         sim::SimTime& serial_cost) {
  core::DistributionOptions opts;
  opts.stealable_fraction = state.params.stealable_fraction;
  switch (health_) {
    case Health::kReactive:
      opts.react_to_health = state.params.reactive;
      break;
    case Health::kBlind:
      opts.react_to_health = false;
      break;
    case Health::kForced:
      opts.react_to_health = true;
      break;
  }
  return core::distribute_hierarchical(spec, cfg, team, opts, serial_cost);
}

std::size_t FlatDist::distribute(const rt::TaskloopSpec& spec,
                                 const rt::LoopConfig& cfg, rt::Team& team,
                                 SchedState&, sim::SimTime& serial_cost) {
  const auto chunks = rt::make_chunks(spec.iterations, spec.grainsize,
                                      cfg.num_threads, spec.tasks_per_thread);
  // The "encountering thread": the primary worker of the first node in the
  // config's mask. With a full mask (the baseline composition) that is
  // worker 0, bit-identical to the pre-refactor scheduler; under a narrow
  // searched mask it keeps the flat queue on an *active* node so the
  // composition with ptt-search cannot strand tasks on a parked worker.
  const auto nodes = cfg.node_mask.to_nodes();
  rt::Worker& encountering =
      nodes.empty() ? team.worker(0)
                    : team.worker(team.node_workers(nodes.front()).front());
  for (const auto& [b, e] : chunks) {
    serial_cost += team.costs().charge(trace::OverheadComponent::kTaskCreate);
    serial_cost += team.costs().charge(trace::OverheadComponent::kEnqueue);
    rt::Task t;
    t.begin = b;
    t.end = e;
    t.loop = &spec;
    t.home_node = topo::NodeId::invalid();
    t.numa_strict = false;
    encountering.deque.push_back(t);
  }
  return chunks.size();
}

std::size_t StaticBlockDist::distribute(const rt::TaskloopSpec& spec,
                                        const rt::LoopConfig& cfg, rt::Team& team,
                                        SchedState&, sim::SimTime& serial_cost) {
  const auto chunks = rt::make_chunks(spec.iterations, spec.grainsize,
                                      cfg.num_threads, spec.tasks_per_thread);
  // Resolve the participating workers in activation order (nodes in the
  // config's mask, then each node's workers). Under a full mask this is
  // workers 0..num_threads-1, identical to the historical layout; under a
  // narrowed mask (e.g. a multi-tenant carve) it keeps every static block
  // on a worker that is actually active — with no stealing, a block on a
  // parked worker would strand forever.
  std::vector<int> owners;
  owners.reserve(static_cast<std::size_t>(cfg.num_threads));
  for (const auto& node : team.topology().nodes()) {
    if (!cfg.node_mask.empty() && !cfg.node_mask.test(node.id)) continue;
    for (const int wid : team.node_workers(node.id)) {
      if (owners.size() == static_cast<std::size_t>(cfg.num_threads)) break;
      owners.push_back(wid);
    }
  }
  // Contiguous runs of chunks per thread, like schedule(static) with the
  // equivalent chunk size. The "fork" costs one enqueue per thread.
  const std::size_t nw = owners.size();
  const std::size_t nc = chunks.size();
  for (std::size_t t = 0; t < nw; ++t) {
    const std::size_t lo = nc * t / nw;
    const std::size_t hi = nc * (t + 1) / nw;
    if (lo < hi) {
      serial_cost += team.costs().charge(trace::OverheadComponent::kEnqueue);
    }
    rt::Worker& owner = team.worker(owners[t]);
    for (std::size_t c = lo; c < hi; ++c) {
      rt::Task task;
      task.begin = chunks[c].first;
      task.end = chunks[c].second;
      task.loop = &spec;
      task.home_node = owner.node;
      task.numa_strict = true;  // static assignment never migrates
      owner.deque.push_back(task);
    }
  }
  return nc;
}

namespace {

// Mask nodes whose primary worker is active. Worker activation fills nodes
// in mask order until the thread budget runs out, so a node with any active
// worker always has an active primary; a mask node past the budget has
// none and must not receive DAG placements (nothing there would ever run
// them).
std::vector<topo::NodeId> active_mask_nodes(const rt::LoopConfig& cfg,
                                            rt::Team& team) {
  std::vector<topo::NodeId> nodes;
  for (const auto& node : team.topology().nodes()) {
    if (!cfg.node_mask.empty() && !cfg.node_mask.test(node.id)) continue;
    if (!team.worker(team.node_workers(node.id).front()).active) continue;
    nodes.push_back(node.id);
  }
  return nodes;
}

}  // namespace

// Default DAG placement: block-map the node id across the active mask
// nodes, so siblings of a wide graph spread deterministically even when the
// policy knows nothing about dependencies.
void DistributionPolicy::place(const rt::TaskGraphSpec& graph, rt::Task& task,
                               const rt::LoopConfig& cfg, rt::Team& team,
                               std::span<const topo::NodeId> /*pred_nodes*/,
                               SchedState& /*state*/, sim::SimTime& cost) {
  cost += team.costs().charge(trace::OverheadComponent::kTaskCreate);
  cost += team.costs().charge(trace::OverheadComponent::kEnqueue);
  const auto nodes = active_mask_nodes(cfg, team);
  if (nodes.empty()) {
    // No activated mask node (direct construction outside a prologue):
    // degrade to the first active worker, as the rt-layer default does.
    for (auto& w : team.workers()) {
      if (!w.active) continue;
      task.home_node = w.node;
      task.numa_strict = false;
      w.deque.push_back(task);
      return;
    }
    throw std::logic_error(
        "DistributionPolicy::place: no active worker to place on");
  }
  const std::size_t nn = nodes.size();
  const auto n = static_cast<std::size_t>(graph.num_nodes());
  std::size_t idx = static_cast<std::size_t>(task.begin) * nn / n;
  if (idx >= nn) idx = nn - 1;
  const topo::NodeId home = nodes[idx];
  rt::Worker& owner = team.worker(team.node_workers(home).front());
  task.home_node = home;
  task.numa_strict = false;
  owner.deque.push_back(task);
}

std::size_t DepAwareDist::distribute(const rt::TaskloopSpec& spec,
                                     const rt::LoopConfig& cfg, rt::Team& team,
                                     SchedState& state,
                                     sim::SimTime& serial_cost) {
  return loop_dist_.distribute(spec, cfg, team, state, serial_cost);
}

void DepAwareDist::place(const rt::TaskGraphSpec& graph, rt::Task& task,
                         const rt::LoopConfig& cfg, rt::Team& team,
                         std::span<const topo::NodeId> pred_nodes,
                         SchedState& state, sim::SimTime& cost) {
  const auto nodes = active_mask_nodes(cfg, team);
  // Plurality vote over where the predecessors ran, restricted to nodes
  // that can actually execute the task. Ties keep the earliest node in
  // topology order (deterministic); roots and votes for nodes outside the
  // active mask fall through to the block-map default.
  topo::NodeId best = topo::NodeId::invalid();
  std::size_t best_votes = 0;
  for (const topo::NodeId cand : nodes) {
    std::size_t votes = 0;
    for (const topo::NodeId p : pred_nodes) {
      if (p == cand) ++votes;
    }
    if (votes > best_votes) {
      best = cand;
      best_votes = votes;
    }
  }
  if (best_votes == 0) {
    DistributionPolicy::place(graph, task, cfg, team, pred_nodes, state, cost);
    return;
  }
  cost += team.costs().charge(trace::OverheadComponent::kTaskCreate);
  cost += team.costs().charge(trace::OverheadComponent::kEnqueue);
  rt::Worker& owner = team.worker(team.node_workers(best).front());
  task.home_node = best;
  task.numa_strict = false;
  owner.deque.push_back(task);
}

std::size_t DepthAwareDist::distribute(const rt::TaskloopSpec& spec,
                                       const rt::LoopConfig& cfg, rt::Team& team,
                                       SchedState& state,
                                       sim::SimTime& serial_cost) {
  // Walk the machine depth-first — socket, then node — so the block map
  // respects the physical package order on any registered topology.
  const topo::Topology& topo = team.topology();
  std::vector<topo::NodeId> nodes;
  for (const auto& socket : topo.sockets()) {
    for (const topo::NodeId n : socket.nodes) {
      if (!cfg.node_mask.empty() && !cfg.node_mask.test(n)) continue;
      if (!team.worker(team.node_workers(n).front()).active) continue;
      nodes.push_back(n);
    }
  }
  if (nodes.empty()) {
    // No activated mask node (direct callers outside a Team prologue): fall
    // back to the full mask, as the hierarchical distributor does.
    for (const auto& socket : topo.sockets()) {
      for (const topo::NodeId n : socket.nodes) {
        if (cfg.node_mask.empty() || cfg.node_mask.test(n)) nodes.push_back(n);
      }
    }
  }
  if (nodes.empty()) throw std::invalid_argument("DepthAwareDist: empty mask");

  const auto chunks = rt::make_chunks(spec.iterations, spec.grainsize, cfg.num_threads,
                                      spec.tasks_per_thread);
  const std::size_t nc = chunks.size();
  const std::size_t nn = nodes.size();
  for (std::size_t ni = 0; ni < nn; ++ni) {
    // Node layer: the classic contiguous block map, even split.
    const std::size_t lo = nc * ni / nn;
    const std::size_t hi = nc * (ni + 1) / nn;
    if (lo == hi) continue;
    const std::size_t node_tasks = hi - lo;
    const auto strict_count = static_cast<std::size_t>(
        static_cast<double>(node_tasks) * (1.0 - state.params.stealable_fraction) +
        0.5);
    const topo::NodeInfo& node = topo.node(nodes[ni]);
    // CCD layer: the node's run splits into one contiguous sub-run per CCD,
    // enqueued on the CCD's first active worker (fallback: node primary).
    const std::size_t nccd = node.ccds.size();
    for (std::size_t ci = 0; ci < nccd; ++ci) {
      const std::size_t clo = lo + node_tasks * ci / nccd;
      const std::size_t chi = lo + node_tasks * (ci + 1) / nccd;
      if (clo == chi) continue;
      int owner = team.node_workers(node.id).front();
      for (const int wid : team.node_workers(node.id)) {
        const rt::Worker& cand = team.worker(wid);
        if (cand.ccd == node.ccds[ci] && cand.active) {
          owner = wid;
          break;
        }
      }
      for (std::size_t c = clo; c < chi; ++c) {
        serial_cost += team.costs().charge(trace::OverheadComponent::kTaskCreate);
        serial_cost += team.costs().charge(trace::OverheadComponent::kEnqueue);
        rt::Task t;
        t.begin = chunks[c].first;
        t.end = chunks[c].second;
        t.loop = &spec;
        t.home_node = node.id;
        t.numa_strict = cfg.steal_policy == rt::StealPolicy::kStrict ||
                        (c - lo) < strict_count;
        team.worker(owner).deque.push_back(t);
      }
    }
  }
  return nc;
}

// --- StealPolicy ---------------------------------------------------------

rt::AcquireResult TieredSteal::acquire(rt::Team& team, rt::Worker& w,
                                       SchedState& state) {
  bool escalate = false;
  switch (escalate_) {
    case Escalate::kReactive:
      // Steal-policy escalation engages only while some node is unhealthy;
      // otherwise the configured policy applies unchanged.
      escalate = state.params.reactive && !team.machine().health().all_healthy();
      break;
    case Escalate::kNever:
      escalate = false;
      break;
    case Escalate::kAlways:
      escalate = !team.machine().health().all_healthy();
      break;
  }
  return core::acquire_hierarchical(team, w, state.params.remote_steal_chunk,
                                    escalate, cross_);
}

rt::AcquireResult RandomSteal::acquire(rt::Team& team, rt::Worker& w, SchedState&) {
  rt::AcquireResult r;
  r.cost += team.costs().charge(trace::OverheadComponent::kDequeue, w.core);
  if (auto t = w.deque.pop_front()) {
    r.task = std::move(t);
    return r;
  }

  // Random-victim stealing: random start, linear probe over all workers.
  // Probing an empty deque is a cached-flag read; only a contended attempt
  // on a non-empty deque costs a miss.
  const int n = team.num_workers();
  const int start = static_cast<int>(team.rng().below(static_cast<std::uint64_t>(n)));
  bool probed_nonempty = false;
  for (int i = 0; i < n; ++i) {
    const int vid = (start + i) % n;
    if (vid == w.id) continue;
    rt::Worker& victim = team.worker(vid);
    if (victim.deque.empty()) continue;
    probed_nonempty = true;
    if (auto t = victim.deque.steal_back(/*allow_strict=*/true)) {
      r.cost += team.costs().charge(trace::OverheadComponent::kStealHit, w.core);
      team.note_steal(victim.node != w.node);
      r.task = std::move(t);
      return r;
    }
    r.cost += team.costs().charge(trace::OverheadComponent::kStealMiss, w.core);
  }
  if (!probed_nonempty) {
    r.cost += team.costs().charge(trace::OverheadComponent::kStealMiss, w.core);
  }
  return r;  // no work anywhere
}

rt::AcquireResult NoSteal::acquire(rt::Team& team, rt::Worker& w, SchedState&) {
  rt::AcquireResult r;
  if (auto t = w.deque.pop_front()) {
    r.cost += team.costs().charge(trace::OverheadComponent::kDequeue, w.core);
    r.task = std::move(t);
  }
  return r;
}

// --- FeedbackPolicy ------------------------------------------------------

void PttFeedback::loop_finished(const rt::TaskloopSpec& spec,
                                const rt::LoopExecStats& stats, rt::Team& team,
                                SchedState& state) {
  team.costs().charge(trace::OverheadComponent::kPttUpdate);
  const double obj = trace::objective_value(state.params.objective, stats,
                                            team.topology().num_nodes(),
                                            state.params.energy);
  state.ptt.record(spec.loop_id, stats, obj);

  // Counter-guided classification after the first (m_max) execution: a loop
  // that achieved only a small fraction of machine bandwidth is compute-
  // bound, and no narrower configuration can beat m_max — skip the search.
  if (state.params.counter_guided && state.params.moldability) {
    LoopSearchState& st = state.loops[spec.loop_id];
    if (st.k == 1 && !st.finished) {
      const double wall_s = sim::to_seconds(stats.wall);
      const double achieved_gbps = wall_s > 0.0 ? stats.bytes_moved / wall_s / 1e9 : 0.0;
      const double machine_gbps = team.topology().total_mem_bw_gbps();
      if (achieved_gbps < state.params.counter_bw_threshold * machine_gbps) {
        st.counter_locked = true;
        if (obs::MetricsRegistry* m = team.machine().metrics()) {
          m->counter("ptt.counter_lock").inc();
        }
        if (team.tracer() != nullptr) {
          team.tracer()->add_instant(trace::InstantEvent{
              "counter-lock loop " + std::to_string(spec.loop_id), team.now()});
        }
      }
    }
  }

  // PTT staleness detection (graceful degradation): once the search has
  // locked in a configuration, executions that keep landing far above the
  // best wall time ever observed for that configuration mean the PTT no
  // longer describes the machine — interference, throttling, a degraded
  // node. After `staleness_patience` consecutive stale executions the
  // search restarts (bounded by max_reexplorations so interference that
  // never settles cannot turn exploration into a steady-state cost).
  if (state.params.reactive && state.params.moldability) {
    LoopSearchState& st = state.loops[spec.loop_id];
    if (st.finished || st.counter_locked) {
      const core::PttEntry* e = state.ptt.find(spec.loop_id, stats.config.num_threads,
                                               stats.config.steal_policy);
      const double wall_s = sim::to_seconds(stats.wall);
      const bool stale = e != nullptr && e->wall.min() > 0.0 &&
                         wall_s > state.params.staleness_factor * e->wall.min();
      st.stale_streak = stale ? st.stale_streak + 1 : 0;
      if (st.stale_streak >= state.params.staleness_patience &&
          st.reexplorations < state.params.max_reexplorations) {
        st.search.reset();
        st.finished = false;
        st.counter_locked = false;
        st.policy = core::StealPolicyEvaluator{};
        st.k0 = st.k;
        st.stale_streak = 0;
        ++st.reexplorations;
        ++state.total_reexplorations;
        if (obs::MetricsRegistry* m = team.machine().metrics()) {
          m->counter("ptt.reexplore").inc();
        }
        if (team.tracer() != nullptr) {
          team.tracer()->add_instant(trace::InstantEvent{
              "ptt re-explore loop " + std::to_string(spec.loop_id), team.now()});
        }
      }
    } else {
      st.stale_streak = 0;
    }
  }
}

}  // namespace ilan::sched
