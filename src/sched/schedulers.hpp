// The named schedulers, rebuilt as registered compositions.
//
// Pre-refactor, these were four monolithic classes (core::IlanScheduler,
// core::ManualScheduler, rt::BaselineWsScheduler, rt::WorkSharingScheduler).
// Now each is a thin facade over ComposedScheduler that wires up the policy
// set the old class hard-coded — same name(), same public introspection API,
// bit-identical digests (the sched_equivalence ctest gate) — so existing
// call sites keep constructing them directly while the registry builds the
// very same compositions from spec strings.
#pragma once

#include "sched/composed.hpp"
#include "sched/policies.hpp"

namespace ilan::sched {

// The ILAN scheduler: interference-aware moldability (PTT + Algorithm 1)
// composed with locality-aware hierarchical distribution, tiered NUMA-aware
// stealing, and the PTT feedback loop. Registry names "ilan" /
// "ilan-nomold" (the latter = moldability off, Figure 4's ablation,
// spec-equivalent to "ilan:mold=off").
class IlanScheduler : public ComposedScheduler {
 public:
  explicit IlanScheduler(const core::IlanParams& params = {});

  // --- introspection (tests, examples, harnesses) -------------------------
  [[nodiscard]] const core::PerfTraceTable& ptt() const { return state().ptt; }
  [[nodiscard]] const core::IlanParams& params() const { return state().params; }
  [[nodiscard]] int executions(rt::LoopId loop) const {
    return state().executions(loop);
  }
  [[nodiscard]] bool search_finished(rt::LoopId loop) const {
    return state().search_finished(loop);
  }
  // True when counter-guided selection classified the loop compute-bound
  // and skipped the thread search.
  [[nodiscard]] bool counter_locked(rt::LoopId loop) const {
    return state().counter_locked(loop);
  }
  // Re-exploration windows triggered by PTT staleness (graceful
  // degradation under dynamic interference), per loop and in total.
  [[nodiscard]] int reexplorations(rt::LoopId loop) const {
    return state().reexplorations(loop);
  }
  [[nodiscard]] int total_reexplorations() const {
    return state().total_reexplorations;
  }
};

// ILAN's hierarchical distribution and NUMA-aware stealing with a FIXED,
// user-chosen configuration (no PTT, no exploration, health-blind).
// `config.num_threads <= 0` means all; an empty mask means "first
// ceil(threads/node_size) nodes". Registry name "manual".
class ManualScheduler : public ComposedScheduler {
 public:
  explicit ManualScheduler(rt::LoopConfig config, core::IlanParams params = {});
};

// The paper's baseline: the default LLVM OpenMP tasking scheduler.
// Topology-agnostic flat distribution + random-victim stealing. Registry
// name "baseline".
class BaselineWsScheduler : public ComposedScheduler {
 public:
  BaselineWsScheduler();
};

// The OpenMP work-sharing comparator (Figure 6): `omp for schedule(static)`
// — static contiguous blocks, no task creation overhead, no stealing.
// Registry name "work-sharing".
class WorkSharingScheduler : public ComposedScheduler {
 public:
  WorkSharingScheduler();
};

// --- canonical spec formatting ------------------------------------------
// Shared by the facades and the registry so resolve() is idempotent: every
// knob appears exactly once, in a fixed order, with %g double formatting.

// "mold=on,counter=off,...,max-reexplorations=4" — the IlanParams block.
[[nodiscard]] std::string canonical_param_block(const core::IlanParams& params);

// "threads=N,policy=strict|full" — the fixed-configuration block.
[[nodiscard]] std::string canonical_fixed_block(const rt::LoopConfig& config);

// Canonical %g formatting for spec double values.
[[nodiscard]] std::string spec_value(double v);

}  // namespace ilan::sched
