#include "sched/schedulers.hpp"

#include <cstdio>

namespace ilan::sched {

std::string spec_value(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

std::string canonical_param_block(const core::IlanParams& params) {
  std::string s;
  s += "mold=";
  s += params.moldability ? "on" : "off";
  s += ",counter=";
  s += params.counter_guided ? "on" : "off";
  s += ",reactive=";
  s += params.reactive ? "on" : "off";
  s += ",objective=";
  s += trace::to_string(params.objective);
  s += ",granularity=" + std::to_string(params.granularity);
  s += ",stealable=" + spec_value(params.stealable_fraction);
  s += ",chunk=" + std::to_string(params.remote_steal_chunk);
  s += ",staleness-factor=" + spec_value(params.staleness_factor);
  s += ",staleness-patience=" + std::to_string(params.staleness_patience);
  s += ",max-reexplorations=" + std::to_string(params.max_reexplorations);
  return s;
}

std::string canonical_fixed_block(const rt::LoopConfig& config) {
  std::string s;
  s += "threads=" + std::to_string(config.num_threads);
  s += ",policy=";
  s += config.steal_policy == rt::StealPolicy::kFull ? "full" : "strict";
  return s;
}

IlanScheduler::IlanScheduler(const core::IlanParams& params)
    : ComposedScheduler(
          params.moldability ? "ilan" : "ilan-nomold",
          "ilan:" + canonical_param_block(params), params,
          std::make_unique<PttSearchConfig>(),
          std::make_unique<HierarchicalDist>(HierarchicalDist::Health::kReactive),
          std::make_unique<TieredSteal>(core::CrossNodeMode::kConfig,
                                        TieredSteal::Escalate::kReactive),
          std::make_unique<PttFeedback>()) {}

ManualScheduler::ManualScheduler(rt::LoopConfig config, core::IlanParams params)
    : ComposedScheduler(
          "ilan-manual",
          "manual:" + canonical_fixed_block(config) +
              ",stealable=" + spec_value(params.stealable_fraction) +
              ",chunk=" + std::to_string(params.remote_steal_chunk),
          params, std::make_unique<FixedConfig>(config),
          std::make_unique<HierarchicalDist>(HierarchicalDist::Health::kBlind),
          std::make_unique<TieredSteal>(core::CrossNodeMode::kConfig,
                                        TieredSteal::Escalate::kNever),
          std::make_unique<NoFeedback>()) {}

namespace {

rt::LoopConfig flat_config(rt::StealPolicy policy) {
  rt::LoopConfig cfg;  // num_threads 0 -> all, empty mask -> all used nodes
  cfg.steal_policy = policy;
  return cfg;
}

}  // namespace

BaselineWsScheduler::BaselineWsScheduler()
    : ComposedScheduler("baseline-ws", "baseline", {},
                        std::make_unique<FixedConfig>(flat_config(rt::StealPolicy::kFull)),
                        std::make_unique<FlatDist>(), std::make_unique<RandomSteal>(),
                        std::make_unique<NoFeedback>()) {}

WorkSharingScheduler::WorkSharingScheduler()
    : ComposedScheduler(
          "work-sharing", "work-sharing", {},
          std::make_unique<FixedConfig>(flat_config(rt::StealPolicy::kStrict)),
          std::make_unique<StaticBlockDist>(), std::make_unique<NoSteal>(),
          std::make_unique<NoFeedback>()) {}

}  // namespace ilan::sched
