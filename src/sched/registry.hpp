// String-keyed scheduler registry and spec parsing.
//
// A scheduler spec is `name[:key=value[,key=value...]]` — e.g. "ilan",
// "ilan:mold=off", "manual:threads=16,policy=full",
// "composed:config=fixed,dist=flat,steal=full,stealable=0.25". The registry
// maps the name to a factory; the options are parsed with the same
// strictness contract as obs/env.hpp: an unknown scheduler name, an unknown
// key, or a malformed value throws std::invalid_argument naming the
// offender and listing the registered scheduler names. Every built
// scheduler reports its fully-resolved spec through
// rt::Scheduler::introspect(), which is what BENCH json records and what
// resolve() returns (resolve is idempotent: resolve(resolve(s)) ==
// resolve(s)).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "rt/scheduler.hpp"

namespace ilan::sched {

struct SpecOption {
  std::string key;
  std::string value;
};

struct SchedulerSpec {
  std::string name;
  std::vector<SpecOption> options;

  [[nodiscard]] std::string to_string() const;
};

// Parses `name[:key=value[,key=value...]]`. Throws std::invalid_argument on
// an empty name, an option without '=', an empty key, or a duplicate key.
// Does NOT check the name against the registry — make() does.
[[nodiscard]] SchedulerSpec parse_spec(std::string_view text);

class SchedulerRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<rt::Scheduler>(const SchedulerSpec&)>;

  // The process-wide registry, with the built-in schedulers ("ilan",
  // "ilan-nomold", "baseline", "work-sharing", "manual", "composed")
  // pre-registered.
  static SchedulerRegistry& instance();

  // Registers (or replaces) a named scheduler factory.
  void register_scheduler(std::string name, std::string description,
                          Factory factory);

  // Registered names, sorted — the list every spec error embeds and
  // --list-schedulers prints.
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] bool contains(std::string_view name) const;
  [[nodiscard]] std::string description(const std::string& name) const;

  // Parses the spec and builds the scheduler. Throws std::invalid_argument
  // (unknown name / key / bad value) with the registered names appended.
  [[nodiscard]] std::unique_ptr<rt::Scheduler> make(std::string_view spec_text) const;

  // The fully-resolved canonical spec `spec_text` denotes: every knob
  // explicit, fixed key order (== make(spec_text)->introspect().spec).
  [[nodiscard]] std::string resolve(std::string_view spec_text) const;

 private:
  SchedulerRegistry();

  struct Entry {
    std::string description;
    Factory factory;
  };
  std::map<std::string, Entry> entries_;
};

// Convenience wrappers over SchedulerRegistry::instance().
[[nodiscard]] std::unique_ptr<rt::Scheduler> make_scheduler(std::string_view spec_text);
[[nodiscard]] std::string resolve_spec(std::string_view spec_text);

}  // namespace ilan::sched
