// Composable scheduler policy interfaces.
//
// The paper's ILAN scheduler is three separable decisions — moldable
// configuration selection (PTT + Algorithm 1), hierarchical locality-aware
// distribution, and tiered stealing — plus the end-of-execution feedback
// that keeps the PTT honest. This layer makes each axis a first-class,
// swappable policy (in the spirit of BubbleSched's pluggable hierarchical
// scheduling modules), so scheduler variants are data (a registry spec
// string), not code:
//
//   ConfigPolicy        how the LoopConfig is chosen   (ptt-search, fixed,
//                       counter-only, oracle-best)
//   DistributionPolicy  how chunk tasks are placed     (hierarchical, flat,
//                       static, health-weighted)
//   StealPolicy         how idle workers acquire work  (tiered, strict,
//                       full, rescue-only, random, none)
//   FeedbackPolicy      what observes finished loops   (ptt, none)
//
// ComposedScheduler (sched/composed.hpp) binds one of each into an
// rt::Scheduler; SchedulerRegistry (sched/registry.hpp) builds compositions
// from string specs.
#pragma once

#include <memory>
#include <string_view>
#include <unordered_map>

#include "core/config.hpp"
#include "core/config_selector.hpp"
#include "core/ptt.hpp"
#include "core/steal_policy.hpp"
#include "rt/scheduler.hpp"

namespace ilan::rt {
class Team;
struct Worker;
}  // namespace ilan::rt

namespace ilan::sched {

// Per-taskloop search bookkeeping shared between the ptt-search config
// policy and the ptt feedback policy (the staleness re-exploration path
// resets search state the config policy owns).
struct LoopSearchState {
  int k = 0;  // executions seen (1-based during selection)
  // Execution count at which the current search window opened: the
  // search-local execution index is k - k0, so a staleness-triggered
  // restart replays Algorithm 1 from its warm-up step.
  int k0 = 0;
  std::unique_ptr<core::ThreadSearch> search;
  core::StealPolicyEvaluator policy;
  bool finished = false;
  // Counter-guided classification: loop proven compute-bound after k = 1,
  // search skipped entirely.
  bool counter_locked = false;
  // Consecutive locked-in executions slower than staleness_factor x the
  // PTT's best observed wall time for the executed configuration.
  int stale_streak = 0;
  // Re-exploration windows consumed (bounded by max_reexplorations).
  int reexplorations = 0;
};

// Mutable state shared by the four policies of one ComposedScheduler. The
// policies are stateless beyond their construction parameters; everything
// that must survive across calls (and be visible across axes) lives here.
struct SchedState {
  core::IlanParams params;
  core::PerfTraceTable ptt;
  std::unordered_map<rt::LoopId, LoopSearchState> loops;
  int total_reexplorations = 0;

  [[nodiscard]] int executions(rt::LoopId loop) const {
    const auto it = loops.find(loop);
    return it == loops.end() ? 0 : it->second.k;
  }
  [[nodiscard]] bool search_finished(rt::LoopId loop) const {
    const auto it = loops.find(loop);
    return it != loops.end() && it->second.finished;
  }
  [[nodiscard]] bool counter_locked(rt::LoopId loop) const {
    const auto it = loops.find(loop);
    return it != loops.end() && it->second.counter_locked;
  }
  [[nodiscard]] int reexplorations(rt::LoopId loop) const {
    const auto it = loops.find(loop);
    return it == loops.end() ? 0 : it->second.reexplorations;
  }
};

// Axis 1: chooses this execution's thread count, node mask and steal policy.
class ConfigPolicy {
 public:
  virtual ~ConfigPolicy() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  virtual rt::LoopConfig select(const rt::TaskloopSpec& spec, rt::Team& team,
                                SchedState& state) = 0;
};

// Axis 2: creates the chunk tasks and pushes them into worker deques.
class DistributionPolicy {
 public:
  virtual ~DistributionPolicy() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  virtual std::size_t distribute(const rt::TaskloopSpec& spec,
                                 const rt::LoopConfig& cfg, rt::Team& team,
                                 SchedState& state, sim::SimTime& serial_cost) = 0;
  // Task-graph path (rt::Scheduler::place_ready routed through
  // ComposedScheduler): places one ready DAG node. `pred_nodes` holds the
  // NUMA nodes the node's predecessors executed on (empty for roots). The
  // default block-maps the node id across the config's active mask nodes —
  // deterministic and locality-blind; DepAwareDist overrides it to follow
  // the predecessors' placement.
  virtual void place(const rt::TaskGraphSpec& graph, rt::Task& task,
                     const rt::LoopConfig& cfg, rt::Team& team,
                     std::span<const topo::NodeId> pred_nodes, SchedState& state,
                     sim::SimTime& cost);
};

// Axis 3: implements pop + steal for a worker that ran dry. (Distinct from
// rt::StealPolicy, the per-execution strict/full knob inside a LoopConfig —
// this is the *algorithm* that honours, overrides or ignores that knob.)
class StealPolicy {
 public:
  virtual ~StealPolicy() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  virtual rt::AcquireResult acquire(rt::Team& team, rt::Worker& w,
                                    SchedState& state) = 0;
};

// Axis 4: end-of-execution observation (PTT update, staleness detection).
class FeedbackPolicy {
 public:
  virtual ~FeedbackPolicy() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  virtual void loop_finished(const rt::TaskloopSpec& spec,
                             const rt::LoopExecStats& stats, rt::Team& team,
                             SchedState& state) = 0;
};

}  // namespace ilan::sched
