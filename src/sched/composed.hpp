// ComposedScheduler: an rt::Scheduler assembled from one policy per axis.
#pragma once

#include <string>
#include <utility>

#include "sched/policy.hpp"

namespace ilan::sched {

// Binds one ConfigPolicy, DistributionPolicy, StealPolicy and FeedbackPolicy
// plus the shared SchedState they communicate through into a scheduler. The
// name is the registry name the composition answers to; the spec is the
// fully-resolved spec string introspect() reports (what BENCH json records).
class ComposedScheduler : public rt::Scheduler {
 public:
  ComposedScheduler(std::string name, std::string spec, core::IlanParams params,
                    std::unique_ptr<ConfigPolicy> config,
                    std::unique_ptr<DistributionPolicy> dist,
                    std::unique_ptr<StealPolicy> steal,
                    std::unique_ptr<FeedbackPolicy> feedback);

  [[nodiscard]] std::string_view name() const override { return name_; }

  rt::LoopConfig select_config(const rt::TaskloopSpec& spec, rt::Team& team) override;
  std::size_t distribute(const rt::TaskloopSpec& spec, const rt::LoopConfig& cfg,
                         rt::Team& team, sim::SimTime& serial_cost) override;
  rt::AcquireResult acquire(rt::Team& team, rt::Worker& w) override;
  // Task-graph placement routes through the distribution axis, so dep-aware
  // (or any future graph-conscious) placement composes with every
  // config/steal/feedback combination.
  void place_ready(const rt::TaskGraphSpec& graph, rt::Task& task,
                   const rt::LoopConfig& cfg, rt::Team& team,
                   std::span<const topo::NodeId> pred_nodes,
                   sim::SimTime& cost) override;
  void loop_finished(const rt::TaskloopSpec& spec, const rt::LoopExecStats& stats,
                     rt::Team& team) override;

  [[nodiscard]] rt::SchedulerInfo introspect() const override {
    return {spec_, state_.total_reexplorations};
  }

  // --- introspection (tests, examples, harnesses) -------------------------
  [[nodiscard]] const std::string& spec() const { return spec_; }
  [[nodiscard]] const SchedState& state() const { return state_; }
  [[nodiscard]] const ConfigPolicy& config_policy() const { return *config_; }
  [[nodiscard]] const DistributionPolicy& distribution_policy() const { return *dist_; }
  [[nodiscard]] const StealPolicy& steal_policy() const { return *steal_; }
  [[nodiscard]] const FeedbackPolicy& feedback_policy() const { return *feedback_; }

 protected:
  [[nodiscard]] SchedState& mutable_state() { return state_; }

 private:
  std::string name_;
  std::string spec_;
  SchedState state_;
  std::unique_ptr<ConfigPolicy> config_;
  std::unique_ptr<DistributionPolicy> dist_;
  std::unique_ptr<StealPolicy> steal_;
  std::unique_ptr<FeedbackPolicy> feedback_;
};

}  // namespace ilan::sched
