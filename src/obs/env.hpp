// Strict environment-knob parsing and scoped save/restore.
//
// Every ILAN_* knob used to go through std::atoi/std::atof, which silently
// map garbage ("abc", "4x", overflowing digits) to 0 and fall back to the
// default — a typo'd ILAN_BENCH_RUNS=3O ran the 30-run default and nobody
// noticed. These helpers parse the FULL string with std::from_chars, range-
// check, and throw std::invalid_argument naming the variable and value, so
// a bad knob fails the run loudly instead of quietly running the wrong
// experiment.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace ilan::obs {

// Parses env var `name` as an integer. Returns `fallback` when the variable
// is unset or empty. Throws std::invalid_argument when set to anything that
// is not a full-string integer in [min, max] (trailing junk, overflow, ...).
[[nodiscard]] int parse_env_int(const char* name, int fallback,
                                int min = INT32_MIN, int max = INT32_MAX);

// Same contract for doubles (full-string parse, finite, within [min, max]).
[[nodiscard]] double parse_env_double(const char* name, double fallback,
                                      double min = -1e308, double max = 1e308);

// Strict full-string integer parse of `text` (no env lookup); nullopt on
// any violation. The primitive parse_env_int is built on.
[[nodiscard]] std::optional<long long> parse_full_int(std::string_view text);

// Strict full-string double parse of `text` (no env lookup); nullopt on any
// violation, including non-finite values. Shares parse_env_double's parsing
// contract; spec-string values (sched/registry.hpp) are parsed with this.
[[nodiscard]] std::optional<double> parse_full_double(std::string_view text);

// True when env var `name` is set to a truthy value ("1", "true", "on",
// "yes" — anything except unset/"", "0", "false", "off", "no").
[[nodiscard]] bool env_flag(const char* name);

// Sets an environment variable for a scope and restores the previous state
// on destruction — including *absence*: a variable that was unset on entry
// is unset again on exit, never left behind as an empty string. Nested
// scopes on the same variable unwind correctly in reverse order.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value);
  // Unsets the variable for the scope.
  explicit ScopedEnv(const char* name);
  ~ScopedEnv();
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  std::string name_;
  bool had_ = false;
  std::string saved_;
};

}  // namespace ilan::obs
