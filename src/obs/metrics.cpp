#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ilan::obs {

namespace {

// SplitMix64 finalizer (same construction as sim::Engine::mix64; duplicated
// here so obs does not depend on the engine).
constexpr std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// FNV-1a over the name bytes: stable across implementations, unlike
// std::hash.
constexpr std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace

const char* to_string(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

void Histogram::record(double x) {
  // Upper-bound bucketing: the first edge >= x wins, so a sample exactly on
  // an edge lands in that edge's bucket (pinned by tests).
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), x);
  const auto idx = static_cast<std::size_t>(it - edges_.begin());
  ++counts_[idx];  // idx == edges_.size() is the overflow bucket
  ++total_;
  sum_ += x;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  if (const auto it = index_.find(name); it != index_.end()) {
    const Entry& e = entries_[it->second];
    if (e.kind != MetricKind::kCounter) {
      throw std::invalid_argument("MetricsRegistry: '" + std::string(name) +
                                  "' already registered as " + to_string(e.kind));
    }
    return counters_[e.index];
  }
  counters_.emplace_back();
  entries_.push_back(Entry{std::string(name), MetricKind::kCounter, counters_.size() - 1});
  index_.emplace(std::string(name), entries_.size() - 1);
  return counters_.back();
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  if (const auto it = index_.find(name); it != index_.end()) {
    const Entry& e = entries_[it->second];
    if (e.kind != MetricKind::kGauge) {
      throw std::invalid_argument("MetricsRegistry: '" + std::string(name) +
                                  "' already registered as " + to_string(e.kind));
    }
    return gauges_[e.index];
  }
  gauges_.emplace_back();
  entries_.push_back(Entry{std::string(name), MetricKind::kGauge, gauges_.size() - 1});
  index_.emplace(std::string(name), entries_.size() - 1);
  return gauges_.back();
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> edges) {
  if (edges.empty()) {
    throw std::invalid_argument("MetricsRegistry: histogram needs at least one edge");
  }
  if (!std::is_sorted(edges.begin(), edges.end())) {
    throw std::invalid_argument("MetricsRegistry: histogram edges must be sorted");
  }
  if (const auto it = index_.find(name); it != index_.end()) {
    const Entry& e = entries_[it->second];
    if (e.kind != MetricKind::kHistogram) {
      throw std::invalid_argument("MetricsRegistry: '" + std::string(name) +
                                  "' already registered as " + to_string(e.kind));
    }
    Histogram& h = histograms_[e.index];
    if (!std::equal(h.edges_.begin(), h.edges_.end(), edges.begin(), edges.end())) {
      throw std::invalid_argument("MetricsRegistry: '" + std::string(name) +
                                  "' re-registered with different bucket edges");
    }
    return h;
  }
  histograms_.emplace_back();
  Histogram& h = histograms_.back();
  h.edges_.assign(edges.begin(), edges.end());
  h.counts_.assign(edges.size() + 1, 0);
  entries_.push_back(
      Entry{std::string(name), MetricKind::kHistogram, histograms_.size() - 1});
  index_.emplace(std::string(name), entries_.size() - 1);
  return h;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) return nullptr;
  const Entry& e = entries_[it->second];
  return e.kind == MetricKind::kCounter ? &counters_[e.index] : nullptr;
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) return nullptr;
  const Entry& e = entries_[it->second];
  return e.kind == MetricKind::kGauge ? &gauges_[e.index] : nullptr;
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) return nullptr;
  const Entry& e = entries_[it->second];
  return e.kind == MetricKind::kHistogram ? &histograms_[e.index] : nullptr;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const Entry& oe : other.entries_) {
    switch (oe.kind) {
      case MetricKind::kCounter: {
        counter(oe.name).value_ += other.counters_[oe.index].value_;
        break;
      }
      case MetricKind::kGauge: {
        Gauge& g = gauge(oe.name);
        const Gauge& og = other.gauges_[oe.index];
        g.value_ += og.value_;
        g.samples_ += og.samples_;
        break;
      }
      case MetricKind::kHistogram: {
        const Histogram& oh = other.histograms_[oe.index];
        Histogram& h = histogram(oe.name, oh.edges_);
        for (std::size_t i = 0; i < h.counts_.size(); ++i) {
          h.counts_[i] += oh.counts_[i];
        }
        h.total_ += oh.total_;
        h.sum_ += oh.sum_;
        break;
      }
    }
  }
}

template <typename T>
std::uint64_t MetricsRegistry::bits(T v) {
  static_assert(sizeof(T) <= sizeof(std::uint64_t));
  if constexpr (std::is_same_v<T, double>) {
    return std::bit_cast<std::uint64_t>(v);
  } else {
    return static_cast<std::uint64_t>(v);
  }
}

std::uint64_t MetricsRegistry::digest() const {
  std::uint64_t d = 0x9E3779B97F4A7C15ull;
  for (const Entry& e : entries_) {
    d = mix64(d ^ fnv1a(e.name));
    d = mix64(d ^ static_cast<std::uint64_t>(e.kind));
    switch (e.kind) {
      case MetricKind::kCounter:
        d = mix64(d ^ bits(counters_[e.index].value_));
        break;
      case MetricKind::kGauge:
        d = mix64(d ^ bits(gauges_[e.index].value_));
        d = mix64(d ^ bits(gauges_[e.index].samples_));
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = histograms_[e.index];
        for (const double edge : h.edges_) d = mix64(d ^ bits(edge));
        for (const std::int64_t c : h.counts_) d = mix64(d ^ bits(c));
        d = mix64(d ^ bits(h.sum_));
        break;
      }
    }
  }
  return d;
}

namespace {

void write_escaped(std::ostream& os, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

void write_double(std::ostream& os, double v) {
  // JSON has no inf/nan literals; metrics never produce them, but never
  // emit an invalid document even if one slips through.
  if (!(v >= -1.7976931348623157e308 && v <= 1.7976931348623157e308)) {
    os << "null";
    return;
  }
  // %.17g round-trips doubles exactly; snprintf avoids stream-state leaks.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

}  // namespace

void MetricsRegistry::write_json(std::ostream& os) const {
  os << "{";
  bool first = true;
  for (const Entry& e : entries_) {
    if (!first) os << ", ";
    first = false;
    os << '"';
    write_escaped(os, e.name);
    os << "\": ";
    switch (e.kind) {
      case MetricKind::kCounter:
        os << counters_[e.index].value_;
        break;
      case MetricKind::kGauge:
        write_double(os, gauges_[e.index].value_);
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = histograms_[e.index];
        os << "{\"count\": " << h.total_ << ", \"sum\": ";
        write_double(os, h.sum_);
        os << ", \"edges\": [";
        for (std::size_t i = 0; i < h.edges_.size(); ++i) {
          if (i != 0) os << ", ";
          write_double(os, h.edges_[i]);
        }
        os << "], \"buckets\": [";
        for (std::size_t i = 0; i < h.counts_.size(); ++i) {
          if (i != 0) os << ", ";
          os << h.counts_[i];
        }
        os << "]}";
        break;
      }
    }
  }
  os << "}";
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream ss;
  write_json(ss);
  return ss.str();
}

}  // namespace ilan::obs
