// Deterministic, simulation-time metrics.
//
// A MetricsRegistry is a named set of counters, gauges and histograms that
// instrumentation points in src/core, src/rt, src/mem and src/fault write
// while a run executes. Everything about it is deterministic:
//   * values derive only from simulated state (no wall clock, no host RNG);
//   * registration order is the order of first use, which in a
//     deterministic simulation is itself deterministic — entries() iterates
//     in exactly that order on every identical run;
//   * digest() folds (name, kind, values) over the registration order into
//     a 64-bit value, so two runs produced identical metrics iff their
//     digests match. bench/selfcheck compares metrics digests the same way
//     it compares event-stream digests (2-run and jobs=1-vs-4 parity).
//
// Metrics never feed back into the simulation: attaching a registry to a
// Machine must leave the committed event stream bit-identical (the
// selfcheck's "does observing the run perturb it" check covers this).
//
// Handles returned by counter()/gauge()/histogram() are stable for the
// registry's lifetime (values live in deques); instrumentation sites cache
// them once and write through the pointer afterwards.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ilan::obs {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

[[nodiscard]] const char* to_string(MetricKind k);

// Monotonic integer count of discrete occurrences (steals, probes, ...).
class Counter {
 public:
  void inc(std::int64_t n = 1) { value_ += n; }
  [[nodiscard]] std::int64_t value() const { return value_; }

 private:
  friend class MetricsRegistry;
  std::int64_t value_ = 0;
};

// A level (double). set() records the latest value, max_of()/add() the
// common derived uses. Merging across runs sums values and sample counts so
// a mean is still derivable (mean() below).
class Gauge {
 public:
  void set(double v) {
    value_ = v;
    samples_ = 1;
  }
  void add(double v) {
    value_ += v;
    samples_ = 1;
  }
  void max_of(double v) {
    if (samples_ == 0 || v > value_) value_ = v;
    samples_ = 1;
  }
  [[nodiscard]] double value() const { return value_; }
  // Mean across merged runs (== value() for a single-run registry).
  [[nodiscard]] double mean() const {
    return samples_ > 0 ? value_ / static_cast<double>(samples_) : 0.0;
  }
  [[nodiscard]] std::int64_t samples() const { return samples_; }

 private:
  friend class MetricsRegistry;
  double value_ = 0.0;
  std::int64_t samples_ = 0;
};

// Fixed-bucket histogram. Bucket i counts samples x with
//   edges[i-1] < x <= edges[i]        (bucket 0: x <= edges[0]),
// and one overflow bucket counts x > edges.back(). Edge values are part of
// the metric's identity: registering the same name with different edges
// throws.
class Histogram {
 public:
  void record(double x);

  [[nodiscard]] std::span<const double> edges() const { return edges_; }
  // counts().size() == edges().size() + 1; the last entry is the overflow.
  [[nodiscard]] std::span<const std::int64_t> counts() const { return counts_; }
  [[nodiscard]] std::int64_t total_count() const { return total_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return total_ > 0 ? sum_ / static_cast<double>(total_) : 0.0;
  }

 private:
  friend class MetricsRegistry;
  std::vector<double> edges_;
  std::vector<std::int64_t> counts_;
  std::int64_t total_ = 0;
  double sum_ = 0.0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  // Copyable on purpose: the bench harness snapshots each run's registry
  // into its RunResult. Handles into the copy are re-fetched by name.
  MetricsRegistry(const MetricsRegistry&) = default;
  MetricsRegistry& operator=(const MetricsRegistry&) = default;
  MetricsRegistry(MetricsRegistry&&) = default;
  MetricsRegistry& operator=(MetricsRegistry&&) = default;

  // Get-or-create. Throws std::invalid_argument if `name` is already
  // registered as a different kind (or, for histograms, with different
  // bucket edges).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::span<const double> edges);

  // Read-only lookup; nullptr when the name is absent or of another kind.
  [[nodiscard]] const Counter* find_counter(std::string_view name) const;
  [[nodiscard]] const Gauge* find_gauge(std::string_view name) const;
  [[nodiscard]] const Histogram* find_histogram(std::string_view name) const;

  struct Entry {
    std::string name;
    MetricKind kind;
    std::size_t index;  // into the kind's storage
  };
  // Registration order — fixed for the registry's lifetime.
  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  [[nodiscard]] const Counter& counter_at(const Entry& e) const {
    return counters_[e.index];
  }
  [[nodiscard]] const Gauge& gauge_at(const Entry& e) const { return gauges_[e.index]; }
  [[nodiscard]] const Histogram& histogram_at(const Entry& e) const {
    return histograms_[e.index];
  }

  // Merges `other` into this registry by name: counters and histogram
  // buckets add, gauges sum values and sample counts (mean() recovers the
  // average). Names absent here are appended in `other`'s registration
  // order. Kind or bucket-edge mismatches throw.
  void merge(const MetricsRegistry& other);

  // 64-bit digest over (name, kind, values) in registration order. Uses a
  // repo-local FNV/SplitMix construction, never std::hash (whose values are
  // implementation-defined).
  [[nodiscard]] std::uint64_t digest() const;

  // JSON object {"name": value, ...}; histograms become
  // {"count": N, "sum": S, "buckets": [...], "edges": [...]}.
  void write_json(std::ostream& os) const;
  [[nodiscard]] std::string to_json() const;

 private:
  template <typename T>
  [[nodiscard]] static std::uint64_t bits(T v);

  std::vector<Entry> entries_;
  // std::map, not unordered_map: lookup order never feeds iteration, but
  // keeping the index ordered costs nothing and leaves nothing to audit.
  std::map<std::string, std::size_t, std::less<>> index_;  // -> entries_ slot
  // Deques: stable addresses for cached handles as metrics register.
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
};

}  // namespace ilan::obs
