#include "obs/env.hpp"

#include <charconv>
#include <cstdlib>
#include <stdexcept>

namespace ilan::obs {

std::optional<long long> parse_full_int(std::string_view text) {
  if (text.empty()) return std::nullopt;
  long long value = 0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

std::optional<double> parse_full_double(std::string_view text) {
  if (text.empty()) return std::nullopt;
  double value = 0.0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  const bool finite =
      value >= -1.7976931348623157e308 && value <= 1.7976931348623157e308;
  if (ec != std::errc{} || ptr != last || !finite) return std::nullopt;
  return value;
}

int parse_env_int(const char* name, int fallback, int min, int max) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  const auto parsed = parse_full_int(v);
  if (!parsed || *parsed < min || *parsed > max) {
    throw std::invalid_argument(std::string(name) + "='" + v +
                                "': expected an integer in [" + std::to_string(min) +
                                ", " + std::to_string(max) + "]");
  }
  return static_cast<int>(*parsed);
}

double parse_env_double(const char* name, double fallback, double min, double max) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  double value = 0.0;
  const char* last = v;
  while (*last != '\0') ++last;
  const auto [ptr, ec] = std::from_chars(v, last, value);
  const bool finite = value >= -1.7976931348623157e308 && value <= 1.7976931348623157e308;
  if (ec != std::errc{} || ptr != last || !finite || value < min || value > max) {
    throw std::invalid_argument(std::string(name) + "='" + v +
                                "': expected a number in [" + std::to_string(min) +
                                ", " + std::to_string(max) + "]");
  }
  return value;
}

bool env_flag(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr) return false;
  const std::string_view s(v);
  return !(s.empty() || s == "0" || s == "false" || s == "off" || s == "no");
}

ScopedEnv::ScopedEnv(const char* name, const std::string& value) : name_(name) {
  const char* old = std::getenv(name);
  had_ = old != nullptr;
  if (had_) saved_ = old;
  ::setenv(name, value.c_str(), 1);
}

ScopedEnv::ScopedEnv(const char* name) : name_(name) {
  const char* old = std::getenv(name);
  had_ = old != nullptr;
  if (had_) saved_ = old;
  ::unsetenv(name);
}

ScopedEnv::~ScopedEnv() {
  // Restoring "unset" must unset — setenv(name, "", 1) would leave the
  // variable present-but-empty, which getenv-based guards (and any child
  // process) see as "set".
  if (had_) {
    ::setenv(name_.c_str(), saved_.c_str(), 1);
  } else {
    ::unsetenv(name_.c_str());
  }
}

}  // namespace ilan::obs
