// Deterministic fault plans.
//
// A FaultPlan is a list of timed perturbation clauses parsed from the
// ILAN_FAULTS environment knob: either a named scenario from the shipped
// catalog ("burst", "storm", ...) or a small DSL. Unspecified timing/target
// fields are drawn from a substream of the run's seeded RNG, so a plan
// realization is a pure function of (spec text, seed, topology) — fault
// runs stay bit-reproducible and digest-stable, the property PR 2's
// determinism digests verify.
//
// Grammar (whitespace ignored):
//   spec   ::= clause { ';' clause }
//   clause ::= kind [ '(' [ key '=' value { ',' key '=' value } ] ')' ]
//   kind   ::= burst | throttle | degrade | offline | latency
//   key    ::= at | dur | period | node | mag     (times in seconds)
//
// Clause semantics (applied by fault::FaultInjector):
//   burst     co-runner bandwidth pressure: `mag` extra request streams on
//             `node`'s memory controller.
//   throttle  core frequency throttling: `node`'s cores run at `mag` (< 1)
//             of their effective frequency.
//   degrade   transient node degradation: NodeCondition::kDegraded plus
//             frequency and controller bandwidth scaled by `mag`.
//   offline   severe degradation: NodeCondition::kOffline, frequency and
//             bandwidth scaled by `mag` (default 0.2). The node still
//             completes work (nothing in the model can drop a task), but
//             the reactive scheduler should route around it.
//   latency   machine-wide scheduling-latency spike: scheduling-path
//             latencies multiply by `mag`.
//
// A clause first fires at `at`, reverts after `dur` (0 = never reverts),
// and re-applies every `period` (0 = one-shot). Unspecified `at` is drawn
// uniformly in [0, period) (or [0, 10ms) for one-shots); unspecified `node`
// is drawn uniformly over the topology's nodes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"
#include "topo/topology.hpp"

namespace ilan::fault {

enum class FaultKind : std::uint8_t {
  kBandwidthBurst,
  kCoreThrottle,
  kNodeDegrade,
  kNodeOffline,
  kLatencySpike,
};

[[nodiscard]] const char* to_string(FaultKind k);

struct FaultClause {
  FaultKind kind = FaultKind::kBandwidthBurst;
  sim::SimTime start = 0;     // first application (absolute)
  sim::SimTime duration = 0;  // effect length; 0 = until run end
  sim::SimTime period = 0;    // re-application period; 0 = one-shot
  int node = -1;              // target node; -1 = machine-wide (latency only)
  double magnitude = 1.0;     // kind-specific (streams or scale factor)
};

struct FaultPlan {
  std::string spec;  // the text the plan was parsed from
  std::vector<FaultClause> clauses;
  [[nodiscard]] bool empty() const { return clauses.empty(); }
};

// The shipped scenario catalog (what `bench/selfcheck --faults` and
// fig7_fault_resilience sweep). "none" is the fault-free control.
[[nodiscard]] const std::vector<std::string>& scenario_names();
[[nodiscard]] bool is_scenario(std::string_view name);
// DSL text a scenario name expands to; throws on unknown names.
[[nodiscard]] std::string_view scenario_spec(std::string_view name);

// Parses a scenario name or DSL spec into a realized plan. Throws
// std::invalid_argument on syntax errors, unknown kinds/keys, or
// out-of-range values (node beyond the topology, non-positive magnitudes,
// dur > period, ...).
[[nodiscard]] FaultPlan parse_plan(std::string_view spec, std::uint64_t seed,
                                   const topo::Topology& topo);

}  // namespace ilan::fault
