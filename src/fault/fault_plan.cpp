#include "fault/fault_plan.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

#include "sim/rng.hpp"

namespace ilan::fault {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kBandwidthBurst: return "burst";
    case FaultKind::kCoreThrottle: return "throttle";
    case FaultKind::kNodeDegrade: return "degrade";
    case FaultKind::kNodeOffline: return "offline";
    case FaultKind::kLatencySpike: return "latency";
  }
  return "?";
}

namespace {

struct Scenario {
  std::string name;
  std::string spec;
};

// Timing is millisecond-scale so every kernel (loop walls are ~0.1–10 ms,
// whole runs tens of ms at the selfcheck timestep counts) sees several
// fault windows per run regardless of ILAN_BENCH_TIMESTEPS.
const std::vector<Scenario>& catalog() {
  static const std::vector<Scenario> scenarios = {
      {"none", ""},
      {"burst", "burst(dur=0.005,period=0.012,mag=8)"},
      {"throttle", "throttle(dur=0.008,period=0.020,mag=0.4)"},
      {"nodedown", "degrade(dur=0.018,period=0.045,mag=0.35)"},
      {"offline", "offline(dur=0.012,period=0.060,mag=0.2)"},
      {"latency", "latency(dur=0.004,period=0.016,mag=12)"},
      {"storm",
       "burst(dur=0.005,period=0.013,mag=8);"
       "throttle(dur=0.007,period=0.021,mag=0.45);"
       "degrade(dur=0.015,period=0.047,mag=0.4);"
       "latency(dur=0.003,period=0.017,mag=10)"},
  };
  return scenarios;
}

[[noreturn]] void fail(const std::string& msg) {
  throw std::invalid_argument("FaultPlan: " + msg);
}

struct Defaults {
  double dur_s;
  double period_s;
  double mag;
  bool needs_node;
};

Defaults defaults_for(FaultKind kind) {
  switch (kind) {
    case FaultKind::kBandwidthBurst: return {0.005, 0.012, 8.0, true};
    case FaultKind::kCoreThrottle: return {0.008, 0.020, 0.4, true};
    case FaultKind::kNodeDegrade: return {0.018, 0.045, 0.35, true};
    case FaultKind::kNodeOffline: return {0.012, 0.060, 0.2, true};
    case FaultKind::kLatencySpike: return {0.004, 0.016, 12.0, false};
  }
  fail("unknown kind");
}

FaultKind parse_kind(std::string_view word) {
  if (word == "burst") return FaultKind::kBandwidthBurst;
  if (word == "throttle") return FaultKind::kCoreThrottle;
  if (word == "degrade") return FaultKind::kNodeDegrade;
  if (word == "offline") return FaultKind::kNodeOffline;
  if (word == "latency") return FaultKind::kLatencySpike;
  fail("unknown fault kind '" + std::string(word) + "'");
}

std::string strip(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (std::isspace(static_cast<unsigned char>(c)) == 0) out.push_back(c);
  }
  return out;
}

double parse_number(const std::string& text, const std::string& what) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    fail("bad " + what + " value '" + text + "'");
  }
  return v;
}

void validate_clause(const FaultClause& c, const topo::Topology& topo) {
  if (c.start < 0) fail("'at' must be >= 0");
  if (c.duration < 0) fail("'dur' must be >= 0");
  if (c.period < 0) fail("'period' must be >= 0");
  if (c.period > 0 && c.duration > c.period) {
    fail("'dur' must not exceed 'period' (a clause may not overlap itself)");
  }
  if (c.period > 0 && c.duration == 0) {
    fail("a periodic clause needs a finite 'dur'");
  }
  if (c.kind == FaultKind::kLatencySpike) {
    if (c.node != -1) fail("'node' is not meaningful for latency spikes");
  } else if (c.node < 0 || c.node >= topo.num_nodes()) {
    fail("'node' outside the topology (have " + std::to_string(topo.num_nodes()) +
         " nodes)");
  }
  if (c.magnitude <= 0.0) fail("'mag' must be > 0");
  const bool is_scale = c.kind == FaultKind::kCoreThrottle ||
                        c.kind == FaultKind::kNodeDegrade ||
                        c.kind == FaultKind::kNodeOffline;
  if (is_scale && c.magnitude >= 1.0) {
    fail(std::string(to_string(c.kind)) + " 'mag' is a slowdown factor in (0, 1)");
  }
  if (c.kind == FaultKind::kLatencySpike && c.magnitude <= 1.0) {
    fail("latency 'mag' is a latency multiplier > 1");
  }
}

}  // namespace

const std::vector<std::string>& scenario_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const auto& s : catalog()) out.push_back(s.name);
    return out;
  }();
  return names;
}

bool is_scenario(std::string_view name) {
  for (const auto& s : catalog()) {
    if (s.name == name) return true;
  }
  return false;
}

std::string_view scenario_spec(std::string_view name) {
  for (const auto& s : catalog()) {
    if (s.name == name) return s.spec;
  }
  fail("unknown scenario '" + std::string(name) + "'");
}

FaultPlan parse_plan(std::string_view spec, std::uint64_t seed,
                     const topo::Topology& topo) {
  FaultPlan plan;
  std::string text = strip(spec);
  if (is_scenario(text)) text = strip(scenario_spec(text));
  plan.spec = text;
  if (text.empty()) return plan;

  // All plan randomness comes from one substream of the run seed: the
  // realization is a pure function of (spec, seed, topology), and drawing
  // it here never perturbs the machine's own noise/jitter streams.
  sim::Xoshiro256ss rng = sim::Xoshiro256ss(seed).split(0xfa177u);

  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t end = text.find(';', pos);
    const std::string clause_text =
        text.substr(pos, end == std::string::npos ? std::string::npos : end - pos);
    pos = end == std::string::npos ? text.size() : end + 1;
    if (clause_text.empty()) continue;

    const std::size_t open = clause_text.find('(');
    std::string kind_word = clause_text.substr(0, open);
    FaultClause c;
    c.kind = parse_kind(kind_word);
    const Defaults dfl = defaults_for(c.kind);
    double at_s = -1.0;  // unset
    double dur_s = dfl.dur_s;
    double period_s = dfl.period_s;
    c.magnitude = dfl.mag;
    bool node_set = false;

    if (open != std::string::npos) {
      if (clause_text.back() != ')') fail("missing ')' in '" + clause_text + "'");
      const std::string args = clause_text.substr(open + 1, clause_text.size() - open - 2);
      std::size_t a = 0;
      while (a < args.size()) {
        const std::size_t comma = args.find(',', a);
        const std::string kv =
            args.substr(a, comma == std::string::npos ? std::string::npos : comma - a);
        a = comma == std::string::npos ? args.size() : comma + 1;
        if (kv.empty()) continue;
        const std::size_t eq = kv.find('=');
        if (eq == std::string::npos) fail("expected key=value, got '" + kv + "'");
        const std::string key = kv.substr(0, eq);
        const std::string value = kv.substr(eq + 1);
        if (key == "at") {
          at_s = parse_number(value, key);
        } else if (key == "dur") {
          dur_s = parse_number(value, key);
        } else if (key == "period") {
          period_s = parse_number(value, key);
        } else if (key == "node") {
          c.node = static_cast<int>(parse_number(value, key));
          node_set = true;
        } else if (key == "mag") {
          c.magnitude = parse_number(value, key);
        } else {
          fail("unknown key '" + key + "'");
        }
      }
    }

    // Draw unspecified fields. Both draws always consume the stream in the
    // same order, so adding an explicit key to one clause never shifts the
    // realization of the next.
    const double at_draw =
        rng.uniform(0.0, period_s > 0.0 ? period_s : 0.010);
    if (at_s < 0.0) at_s = at_draw;
    const int node_draw =
        static_cast<int>(rng.below(static_cast<std::uint64_t>(topo.num_nodes())));
    if (!node_set && dfl.needs_node) c.node = node_draw;

    c.start = sim::from_seconds(at_s);
    c.duration = sim::from_seconds(dur_s);
    c.period = sim::from_seconds(period_s);
    validate_clause(c, topo);
    plan.clauses.push_back(c);
  }
  if (plan.clauses.empty()) fail("spec '" + std::string(spec) + "' has no clauses");
  return plan;
}

}  // namespace ilan::fault
