#include "fault/injector.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/event_tags.hpp"

namespace ilan::fault {

FaultInjector::FaultInjector(rt::Machine& machine, FaultPlan plan)
    : machine_(machine), plan_(std::move(plan)) {
  for (const auto& c : plan_.clauses) {
    if (c.node >= machine_.topology().num_nodes()) {
      throw std::invalid_argument("FaultInjector: clause node outside topology");
    }
  }
  active_.assign(plan_.clauses.size(), false);
  open_since_.assign(plan_.clauses.size(), sim::SimTime{-1});
}

std::string FaultInjector::clause_label(std::size_t ci) const {
  const FaultClause& c = plan_.clauses[ci];
  std::string label = to_string(c.kind);
  if (c.node >= 0) label += " node" + std::to_string(c.node);
  label += " mag" + std::to_string(c.magnitude);
  return label;
}

std::vector<FaultInjector::FaultSpan> FaultInjector::collect_spans(
    sim::SimTime run_end) const {
  std::vector<FaultSpan> out = closed_spans_;
  for (std::size_t ci = 0; ci < open_since_.size(); ++ci) {
    if (open_since_[ci] >= 0) {
      out.push_back(FaultSpan{clause_label(ci), open_since_[ci],
                              std::max(run_end, open_since_[ci])});
    }
  }
  return out;
}

void FaultInjector::arm() {
  if (armed_) throw std::logic_error("FaultInjector: arm() called twice");
  armed_ = true;
  for (std::size_t ci = 0; ci < plan_.clauses.size(); ++ci) {
    schedule_occurrence(ci, plan_.clauses[ci].start);
  }
}

void FaultInjector::schedule_occurrence(std::size_t ci, sim::SimTime at) {
  machine_.engine().schedule_at(
      at, [this, ci] { on_apply(ci); }, sim::kTagFaultApply, /*daemon=*/true);
}

void FaultInjector::on_apply(std::size_t ci) {
  const FaultClause& c = plan_.clauses[ci];
  active_[ci] = true;
  ++applications_;
  if (open_since_[ci] < 0) open_since_[ci] = machine_.engine().now();
  if (obs::MetricsRegistry* m = machine_.metrics()) {
    m->counter("fault.applies").inc();
    std::int64_t live = 0;
    for (const bool a : active_) live += a ? 1 : 0;
    m->gauge("fault.active_peak").max_of(static_cast<double>(live));
  }
  refresh();
  auto& engine = machine_.engine();
  if (c.duration > 0) {
    engine.schedule_after(
        c.duration, [this, ci] { on_revert(ci); }, sim::kTagFaultRevert,
        /*daemon=*/true);
  }
  // Lazy periodic re-scheduling: the next occurrence is created only when
  // this one fires, so an indefinitely repeating clause holds one pending
  // apply (plus at most one pending revert) at any time.
  if (c.period > 0) schedule_occurrence(ci, engine.now() + c.period);
}

void FaultInjector::on_revert(std::size_t ci) {
  active_[ci] = false;
  ++reversions_;
  if (open_since_[ci] >= 0) {
    closed_spans_.push_back(
        FaultSpan{clause_label(ci), open_since_[ci], machine_.engine().now()});
    open_since_[ci] = -1;
  }
  if (obs::MetricsRegistry* m = machine_.metrics()) {
    m->counter("fault.reverts").inc();
  }
  refresh();
}

void FaultInjector::refresh() {
  const auto& topo = machine_.topology();
  const auto nn = static_cast<std::size_t>(topo.num_nodes());
  std::vector<double> freq(nn, 1.0);
  std::vector<double> bw(nn, 1.0);
  std::vector<double> streams(nn, 0.0);
  std::vector<rt::NodeCondition> cond(nn, rt::NodeCondition::kHealthy);
  double sched = 1.0;

  for (std::size_t ci = 0; ci < plan_.clauses.size(); ++ci) {
    if (!active_[ci]) continue;
    const FaultClause& c = plan_.clauses[ci];
    const auto n = static_cast<std::size_t>(std::max(c.node, 0));
    switch (c.kind) {
      case FaultKind::kBandwidthBurst:
        streams[n] += c.magnitude;
        break;
      case FaultKind::kCoreThrottle:
        freq[n] *= c.magnitude;
        break;
      case FaultKind::kNodeDegrade:
        freq[n] *= c.magnitude;
        bw[n] *= c.magnitude;
        if (cond[n] == rt::NodeCondition::kHealthy) {
          cond[n] = rt::NodeCondition::kDegraded;
        }
        break;
      case FaultKind::kNodeOffline:
        freq[n] *= c.magnitude;
        bw[n] *= c.magnitude;
        cond[n] = rt::NodeCondition::kOffline;
        break;
      case FaultKind::kLatencySpike:
        sched *= c.magnitude;
        break;
    }
  }

  auto& noise = machine_.noise();
  auto& memory = machine_.memory();
  auto& health = machine_.health();
  bool memory_touched = false;
  for (std::size_t i = 0; i < nn; ++i) {
    const topo::NodeId node{static_cast<std::int32_t>(i)};
    for (const topo::CoreId core : topo.node(node).cores) {
      if (noise.freq_scale(core.value()) != freq[i]) {
        noise.set_freq_scale(core.value(), freq[i]);
        memory_touched = true;  // cpu_hz re-read happens inside resolve()
      }
    }
    if (memory.bw_scale(node) != bw[i]) {
      memory.set_bw_scale(node, bw[i]);
      memory_touched = true;
    }
    if (memory.extra_streams(node) != streams[i]) {
      memory.set_extra_streams(node, streams[i]);
      memory_touched = true;
    }
    if (health.condition(node) == rt::NodeCondition::kHealthy &&
        cond[i] != rt::NodeCondition::kHealthy) {
      if (obs::MetricsRegistry* m = machine_.metrics()) {
        m->counter("fault.demotions").inc();
      }
    }
    health.set(node, cond[i]);
  }
  noise.set_sched_scale(sched);
  if (memory_touched) memory.request_resolve();
}

std::vector<topo::NodeId> FaultInjector::degraded_targets() const {
  std::vector<topo::NodeId> out;
  for (const auto& c : plan_.clauses) {
    if (c.kind != FaultKind::kNodeDegrade && c.kind != FaultKind::kNodeOffline) {
      continue;
    }
    const topo::NodeId n{c.node};
    if (std::find(out.begin(), out.end(), n) == out.end()) out.push_back(n);
  }
  return out;
}

}  // namespace ilan::fault
