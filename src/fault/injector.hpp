// FaultInjector: realizes a FaultPlan against a live Machine.
//
// arm() schedules every clause's first occurrence as *daemon* events in the
// simulation engine (sim/engine.hpp): they fire in time order while real
// work is running but can never keep the engine alive or stretch a run past
// its workload. Periodic clauses re-schedule themselves lazily on each
// firing, so an indefinitely repeating fault costs O(1) pending events.
//
// Effects are composed, not toggled: every apply/revert recomputes the
// machine-facing composites (per-core frequency scale, per-node bandwidth
// scale and co-runner streams, node health, global scheduling-latency
// scale) from the set of currently-active clauses. Overlapping clauses on
// the same node therefore stack multiplicatively and revert cleanly in any
// order. Every transition also forces a memory-system rate re-solve so the
// perturbation takes effect at the transition instant.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_plan.hpp"
#include "rt/runtime.hpp"

namespace ilan::fault {

class FaultInjector {
 public:
  FaultInjector(rt::Machine& machine, FaultPlan plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Schedules the plan's first occurrences. Call once, before the run.
  void arm();

  // --- telemetry ----------------------------------------------------------
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] std::int64_t applications() const { return applications_; }
  [[nodiscard]] std::int64_t reversions() const { return reversions_; }
  // Nodes any degrade/offline clause targets (for demotion accounting).
  [[nodiscard]] std::vector<topo::NodeId> degraded_targets() const;

  // One realized fault interval: "<kind> node<N> magM", apply → revert. A
  // clause still active at run end (duration 0, or the run finished first)
  // is clamped to `run_end`. Exported to the Chrome trace's fault lane.
  struct FaultSpan {
    std::string label;
    sim::SimTime start = 0;
    sim::SimTime end = 0;
  };
  [[nodiscard]] std::vector<FaultSpan> collect_spans(sim::SimTime run_end) const;

 private:
  void schedule_occurrence(std::size_t ci, sim::SimTime at);
  void on_apply(std::size_t ci);
  void on_revert(std::size_t ci);
  // Recomputes all composites from active_ and pushes them to the machine.
  void refresh();

  [[nodiscard]] std::string clause_label(std::size_t ci) const;

  rt::Machine& machine_;
  FaultPlan plan_;
  std::vector<bool> active_;  // per clause
  bool armed_ = false;
  std::int64_t applications_ = 0;
  std::int64_t reversions_ = 0;
  std::vector<FaultSpan> closed_spans_;
  std::vector<sim::SimTime> open_since_;  // per clause; -1 = not active
};

}  // namespace ilan::fault
