// Per-component scheduling-overhead accounting (drives Figure 5).
//
// Every scheduler action charges simulated time to one of these components;
// the tracker accumulates totals per component and overall.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "sim/time.hpp"

namespace ilan::trace {

enum class OverheadComponent : int {
  kTaskCreate = 0,
  kEnqueue,
  kDequeue,
  kStealHit,
  kStealMiss,
  kRemoteSteal,
  kConfigSelect,
  kPttUpdate,
  kBarrier,
  kCount,
};

[[nodiscard]] std::string_view to_string(OverheadComponent c);

class OverheadTracker {
 public:
  void charge(OverheadComponent c, sim::SimTime t) {
    totals_[static_cast<std::size_t>(c)] += t;
    counts_[static_cast<std::size_t>(c)] += 1;
  }

  [[nodiscard]] sim::SimTime total(OverheadComponent c) const {
    return totals_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::uint64_t count(OverheadComponent c) const {
    return counts_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] sim::SimTime grand_total() const;

  void reset();

 private:
  static constexpr std::size_t kN = static_cast<std::size_t>(OverheadComponent::kCount);
  std::array<sim::SimTime, kN> totals_{};
  std::array<std::uint64_t, kN> counts_{};
};

}  // namespace ilan::trace
