// Running statistics (Welford) and small sample-set summaries.
#pragma once

#include <cstddef>
#include <vector>

namespace ilan::trace {

// Numerically stable online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return sum_; }

  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Summary of an explicit sample vector (kept for median/percentiles).
struct SampleSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p05 = 0.0;
  double p95 = 0.0;
};

[[nodiscard]] SampleSummary summarize(std::vector<double> samples);

// Relative speedup of `candidate` over `baseline` mean times:
// baseline/candidate (1.10 == candidate 10% faster).
[[nodiscard]] double speedup(double baseline_mean_time, double candidate_mean_time);

}  // namespace ilan::trace
