// Chrome-trace (about:tracing / Perfetto) export of taskloop executions.
//
// Collect TaskEvents during a run (the Team does this when a tracer is
// attached) and write the standard JSON array format: one timeline row per
// core, one slice per task, plus loop-boundary instant events. Load the
// file at chrome://tracing or ui.perfetto.dev to see placement, stealing
// and imbalance at a glance.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace ilan::trace {

struct TaskEvent {
  std::string name;       // "loopname[begin,end)"
  int core = 0;           // timeline row
  sim::SimTime start = 0;
  sim::SimTime end = 0;
  bool stolen_remote = false;  // color category
};

struct LoopMarker {
  std::string name;
  sim::SimTime at = 0;
};

class ChromeTraceWriter {
 public:
  void add_task(TaskEvent ev) { tasks_.push_back(std::move(ev)); }
  void add_marker(LoopMarker m) { markers_.push_back(std::move(m)); }

  [[nodiscard]] std::size_t num_events() const {
    return tasks_.size() + markers_.size();
  }

  // Writes the JSON trace. Timestamps are microseconds (the format's unit).
  void write(std::ostream& os) const;
  [[nodiscard]] std::string to_json() const;

  void clear() {
    tasks_.clear();
    markers_.clear();
  }

 private:
  std::vector<TaskEvent> tasks_;
  std::vector<LoopMarker> markers_;
};

}  // namespace ilan::trace
