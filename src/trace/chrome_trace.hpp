// Chrome-trace (about:tracing / Perfetto) export of taskloop executions.
//
// Collect TaskEvents during a run (the Team does this when a tracer is
// attached) and write the standard JSON array format: one process lane per
// NUMA node with one timeline row per core, one slice per task, plus a
// control lane carrying loop-boundary / scheduler-decision instants and
// fault-injection spans. Load the file at chrome://tracing or
// ui.perfetto.dev to see placement, stealing and imbalance at a glance.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace ilan::trace {

struct TaskEvent {
  std::string name;       // "loopname[begin,end)"
  int core = 0;           // timeline row (tid)
  int node = 0;           // NUMA node of the executing core (process lane)
  sim::SimTime start = 0;
  sim::SimTime end = 0;
  bool stolen_remote = false;  // color category
};

struct LoopMarker {
  std::string name;
  sim::SimTime at = 0;
};

// A point-in-time scheduler decision (PTT config choice, lock, re-explore).
struct InstantEvent {
  std::string name;
  sim::SimTime at = 0;
};

// A duration on the fault lane (one injected clause, apply → revert).
struct SpanEvent {
  std::string name;
  sim::SimTime start = 0;
  sim::SimTime end = 0;
};

class ChromeTraceWriter {
 public:
  void add_task(TaskEvent ev) { tasks_.push_back(std::move(ev)); }
  void add_marker(LoopMarker m) { markers_.push_back(std::move(m)); }
  void add_instant(InstantEvent ev) { instants_.push_back(std::move(ev)); }
  void add_span(SpanEvent ev) { spans_.push_back(std::move(ev)); }

  [[nodiscard]] std::size_t num_events() const {
    return tasks_.size() + markers_.size() + instants_.size() + spans_.size();
  }

  // Writes the JSON trace. Timestamps are microseconds (the format's unit),
  // printed as fixed-point with nanosecond resolution — never scientific
  // notation, which some trace viewers reject.
  void write(std::ostream& os) const;
  [[nodiscard]] std::string to_json() const;

  void clear() {
    tasks_.clear();
    markers_.clear();
    instants_.clear();
    spans_.clear();
  }

 private:
  std::vector<TaskEvent> tasks_;
  std::vector<LoopMarker> markers_;
  std::vector<InstantEvent> instants_;
  std::vector<SpanEvent> spans_;
};

}  // namespace ilan::trace
