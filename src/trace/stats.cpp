#include "trace/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ilan::trace {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double nA = static_cast<double>(n_);
  const double nB = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = nA + nB;
  mean_ += delta * nB / total;
  m2_ += other.m2_ + delta * delta * nA * nB / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

SampleSummary summarize(std::vector<double> samples) {
  SampleSummary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  RunningStats rs;
  for (double x : samples) rs.add(x);
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = samples.front();
  s.max = samples.back();
  const auto at_quantile = [&](double q) {
    const double idx = q * static_cast<double>(samples.size() - 1);
    const auto lo = static_cast<std::size_t>(idx);
    const auto hi = std::min(lo + 1, samples.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
  };
  s.median = at_quantile(0.5);
  s.p05 = at_quantile(0.05);
  s.p95 = at_quantile(0.95);
  return s;
}

double speedup(double baseline_mean_time, double candidate_mean_time) {
  if (candidate_mean_time <= 0.0) throw std::invalid_argument("speedup: non-positive time");
  return baseline_mean_time / candidate_mean_time;
}

}  // namespace ilan::trace
