#include "trace/energy.hpp"

#include <stdexcept>

namespace ilan::trace {

EnergyBreakdown estimate_energy(const rt::LoopExecStats& stats, int total_nodes,
                                const EnergyParams& params) {
  if (total_nodes <= 0) throw std::invalid_argument("estimate_energy: bad node count");
  EnergyBreakdown e;
  const double wall_s = sim::to_seconds(stats.wall);

  double busy_s = 0.0;
  for (const auto b : stats.worker_busy) busy_s += sim::to_seconds(b);
  e.core_active_j = busy_s * params.core_active_w;

  // Woken-but-waiting time of the active team.
  const double team_s = wall_s * static_cast<double>(stats.config.num_threads);
  e.core_idle_j = std::max(0.0, team_s - busy_s) * params.core_idle_w;

  e.uncore_j = wall_s * params.uncore_w_per_node * static_cast<double>(total_nodes);

  e.dram_j = stats.bytes_moved * params.dram_pj_per_byte * 1e-12 +
             stats.remote_bytes_moved * params.dram_remote_extra_pj_per_byte * 1e-12;

  e.edp_js = e.total_j() * wall_s;
  return e;
}

const char* to_string(Objective o) {
  switch (o) {
    case Objective::kTime: return "time";
    case Objective::kEnergy: return "energy";
    case Objective::kEdp: return "edp";
  }
  return "?";
}

double objective_value(Objective o, const rt::LoopExecStats& stats, int total_nodes,
                       const EnergyParams& params) {
  switch (o) {
    case Objective::kTime:
      return sim::to_seconds(stats.wall);
    case Objective::kEnergy:
      return estimate_energy(stats, total_nodes, params).total_j();
    case Objective::kEdp:
      return estimate_energy(stats, total_nodes, params).edp_js;
  }
  return 0.0;
}

}  // namespace ilan::trace
