#include "trace/chrome_trace.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace ilan::trace {

namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(c) << std::dec << std::setfill(' ');
        } else {
          os << c;
        }
    }
  }
}

double us(sim::SimTime t) { return static_cast<double>(t) / 1e6; }

}  // namespace

void ChromeTraceWriter::write(std::ostream& os) const {
  os << "[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };
  for (const auto& t : tasks_) {
    sep();
    os << R"({"name":")";
    write_escaped(os, t.name);
    os << R"(","cat":")" << (t.stolen_remote ? "remote-steal" : "task")
       << R"(","ph":"X","ts":)" << us(t.start) << R"(,"dur":)" << us(t.end - t.start)
       << R"(,"pid":0,"tid":)" << t.core << "}";
  }
  for (const auto& m : markers_) {
    sep();
    os << R"({"name":")";
    write_escaped(os, m.name);
    os << R"(","ph":"i","s":"g","ts":)" << us(m.at) << R"(,"pid":0,"tid":0})";
  }
  os << "\n]\n";
}

std::string ChromeTraceWriter::to_json() const {
  std::ostringstream ss;
  write(ss);
  return ss.str();
}

}  // namespace ilan::trace
