#include "trace/chrome_trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace ilan::trace {

namespace {

// Process-id layout of the trace. Pid 0 is the control lane (loop markers,
// scheduler instants on tid 0; fault spans on tid 1); pid 1+n is NUMA node n,
// with one tid per core.
constexpr int kControlPid = 0;
constexpr int kSchedulerTid = 0;
constexpr int kFaultTid = 1;
constexpr int node_pid(int node) { return 1 + node; }

void write_escaped(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(c) << std::dec << std::setfill(' ');
        } else {
          os << c;
        }
    }
  }
}

// SimTime is picoseconds; the trace format wants microseconds. Fixed-point
// with three decimals (nanosecond resolution) via integer math: the old
// `double(t) / 1e6` streamed at default precision, which for long runs
// rounded timestamps together and for tiny ones emitted scientific notation
// ("1.2e-05") — both malformed for strict trace parsers.
void write_us(std::ostream& os, sim::SimTime t) {
  const std::int64_t ns = t / 1000;  // drop sub-ns; events are ns-scale apart
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRId64 ".%03" PRId64, ns / 1000,
                ns % 1000);
  os << buf;
}

void write_process_name(std::ostream& os, bool& first, int pid,
                        const std::string& name) {
  if (!first) os << ",";
  first = false;
  os << "\n" << R"({"name":"process_name","ph":"M","pid":)" << pid
     << R"(,"tid":0,"args":{"name":")";
  write_escaped(os, name);
  os << R"("}})";
}

}  // namespace

void ChromeTraceWriter::write(std::ostream& os) const {
  os << "[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };

  // Lane naming metadata first: the control lane, then one process per NUMA
  // node observed in the task stream.
  write_process_name(os, first, kControlPid, "scheduler+faults");
  int max_node = -1;
  for (const auto& t : tasks_) max_node = std::max(max_node, t.node);
  for (int n = 0; n <= max_node; ++n) {
    write_process_name(os, first, node_pid(n), "node" + std::to_string(n));
  }

  for (const auto& t : tasks_) {
    sep();
    os << R"({"name":")";
    write_escaped(os, t.name);
    os << R"(","cat":")" << (t.stolen_remote ? "remote-steal" : "task")
       << R"(","ph":"X","ts":)";
    write_us(os, t.start);
    os << R"(,"dur":)";
    write_us(os, t.end - t.start);
    os << R"(,"pid":)" << node_pid(t.node) << R"(,"tid":)" << t.core << "}";
  }
  for (const auto& m : markers_) {
    sep();
    os << R"({"name":")";
    write_escaped(os, m.name);
    os << R"(","cat":"loop","ph":"i","s":"g","ts":)";
    write_us(os, m.at);
    os << R"(,"pid":)" << kControlPid << R"(,"tid":)" << kSchedulerTid << "}";
  }
  for (const auto& i : instants_) {
    sep();
    os << R"({"name":")";
    write_escaped(os, i.name);
    os << R"(","cat":"sched","ph":"i","s":"p","ts":)";
    write_us(os, i.at);
    os << R"(,"pid":)" << kControlPid << R"(,"tid":)" << kSchedulerTid << "}";
  }
  for (const auto& sp : spans_) {
    sep();
    os << R"({"name":")";
    write_escaped(os, sp.name);
    os << R"(","cat":"fault","ph":"X","ts":)";
    write_us(os, sp.start);
    os << R"(,"dur":)";
    write_us(os, sp.end - sp.start);
    os << R"(,"pid":)" << kControlPid << R"(,"tid":)" << kFaultTid << "}";
  }
  os << "\n]\n";
}

std::string ChromeTraceWriter::to_json() const {
  std::ostringstream ss;
  write(ss);
  return ss.str();
}

}  // namespace ilan::trace
