#include "trace/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ilan::trace {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table: row width mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::pct(double ratio, int precision) {
  std::ostringstream os;
  const double p = (ratio - 1.0) * 100.0;
  os << (p >= 0 ? "+" : "") << std::fixed << std::setprecision(precision) << p << "%";
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << std::left << std::setw(static_cast<int>(width[c])) << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  std::string rule;
  for (std::size_t c = 0; c < header_.size(); ++c) rule += "  " + std::string(width[c], '-');
  os << rule << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string Table::to_csv() const {
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace ilan::trace
