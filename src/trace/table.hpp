// Aligned text tables and CSV output for benchmark harnesses.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ilan::trace {

// Collects rows of strings and prints them with aligned columns
// (first row is treated as the header) or as CSV.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  // Convenience: formats doubles with the given precision.
  static std::string fmt(double v, int precision = 4);
  static std::string pct(double ratio, int precision = 1);  // 1.132 -> "+13.2%"

  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_csv() const;

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& row(std::size_t i) const {
    return rows_.at(i);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ilan::trace
