// Energy model for taskloop executions.
//
// The ILAN paper (Section 3.5) notes the scheduler can optimize for other
// metrics than time, citing the authors' JOSS/SWEEP energy work. This model
// provides the metric: per-execution energy from core busy/idle time,
// uncore/socket background power, and DRAM access energy — enough to rank
// configurations by energy or energy-delay product (EDP). Default constants
// are in the ballpark of a Zen 4 server part (per-core active power a few
// watts, DRAM tens of pJ/byte).
#pragma once

#include "rt/scheduler.hpp"
#include "sim/time.hpp"

namespace ilan::trace {

struct EnergyParams {
  double core_active_w = 3.6;   // per core, while executing a task
  double core_idle_w = 0.7;    // per *active* (woken) core, while waiting
  double uncore_w_per_node = 5.5;  // fabric/L3/IO share per NUMA node, always on
  double dram_pj_per_byte = 65.0;
  double dram_remote_extra_pj_per_byte = 25.0;  // link transfer cost
};

struct EnergyBreakdown {
  double core_active_j = 0.0;
  double core_idle_j = 0.0;
  double uncore_j = 0.0;
  double dram_j = 0.0;
  [[nodiscard]] double total_j() const {
    return core_active_j + core_idle_j + uncore_j + dram_j;
  }
  // Energy-delay product in joule-seconds.
  double edp_js = 0.0;
};

// Estimates the energy of one taskloop execution on a machine with
// `total_nodes` NUMA nodes (uncore power is charged machine-wide: idle
// sockets still burn fabric power, which is what makes narrow
// configurations win on energy less often than one would hope).
[[nodiscard]] EnergyBreakdown estimate_energy(const rt::LoopExecStats& stats,
                                              int total_nodes,
                                              const EnergyParams& params = {});

// The objective a scheduler can optimize.
enum class Objective { kTime, kEnergy, kEdp };

[[nodiscard]] const char* to_string(Objective o);

// Scalar objective value for one execution (seconds, joules, or J*s).
[[nodiscard]] double objective_value(Objective o, const rt::LoopExecStats& stats,
                                     int total_nodes, const EnergyParams& params = {});

}  // namespace ilan::trace
