#include "trace/overhead.hpp"

#include <numeric>

namespace ilan::trace {

std::string_view to_string(OverheadComponent c) {
  switch (c) {
    case OverheadComponent::kTaskCreate: return "task_create";
    case OverheadComponent::kEnqueue: return "enqueue";
    case OverheadComponent::kDequeue: return "dequeue";
    case OverheadComponent::kStealHit: return "steal_hit";
    case OverheadComponent::kStealMiss: return "steal_miss";
    case OverheadComponent::kRemoteSteal: return "remote_steal";
    case OverheadComponent::kConfigSelect: return "config_select";
    case OverheadComponent::kPttUpdate: return "ptt_update";
    case OverheadComponent::kBarrier: return "barrier";
    case OverheadComponent::kCount: break;
  }
  return "unknown";
}

sim::SimTime OverheadTracker::grand_total() const {
  return std::accumulate(totals_.begin(), totals_.end(), sim::SimTime{0});
}

void OverheadTracker::reset() {
  totals_.fill(0);
  counts_.fill(0);
}

}  // namespace ilan::trace
