#include "topo/registry.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "obs/env.hpp"
#include "topo/presets.hpp"

namespace ilan::topo {

std::string TopoSpec::to_string() const {
  std::string s = name;
  for (std::size_t i = 0; i < options.size(); ++i) {
    s += i == 0 ? ':' : ',';
    s += options[i].key;
    s += '=';
    s += options[i].value;
  }
  return s;
}

namespace {

std::string join(const std::vector<std::string>& items) {
  std::string s;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) s += ", ";
    s += items[i];
  }
  return s;
}

// Every spec diagnostic carries the registered names so a typo'd ILAN_TOPO
// tells the user what would have worked (same contract as the scheduler
// registry's fail_spec).
[[noreturn]] void fail_spec(std::string_view spec_text, const std::string& what) {
  throw std::invalid_argument(
      "topology spec '" + std::string(spec_text) + "': " + what +
      "; registered topologies: " + join(TopologyRegistry::instance().names()));
}

int parse_int_value(std::string_view spec, const TopoOption& opt, int min, int max) {
  const auto v = obs::parse_full_int(opt.value);
  if (!v || *v < min || *v > max) {
    fail_spec(spec, "key '" + opt.key + "': expected an integer in [" +
                        std::to_string(min) + ", " + std::to_string(max) +
                        "], got '" + opt.value + "'");
  }
  return static_cast<int>(*v);
}

double parse_double_value(std::string_view spec, const TopoOption& opt, double min,
                          double max) {
  const auto v = obs::parse_full_double(opt.value);
  if (!v || *v < min || *v > max) {
    fail_spec(spec, "key '" + opt.key + "': expected a number in [" +
                        std::to_string(min) + ", " + std::to_string(max) +
                        "], got '" + opt.value + "'");
  }
  return *v;
}

constexpr const char* kTopoKeys =
    "sockets, nodes, ccds, cores, core_freq (alias p_freq), core_bw, l3_mb, "
    "node_gb, node_bw, node_lat, xlink_bw, dist_near, dist_far, far_gb, "
    "far_bw, far_lat, e_freq, e_per_ccd";

// Applies the universal override key set to a base spec. Structure keys
// (sockets/nodes/ccds/cores) are machine TOTALS — "quad:nodes=16" means 16
// NUMA nodes — re-derived into the per-level MachineSpec counts with
// divisibility checked, errors naming the offending key.
MachineSpec apply_options(std::string_view text, const TopoSpec& spec,
                          MachineSpec base) {
  int sockets = base.sockets;
  int nodes = base.total_nodes();
  int ccds = base.total_nodes() * base.ccds_per_node;
  int cores = base.total_cores();
  bool structure_set = false;

  for (const TopoOption& opt : spec.options) {
    if (opt.key == "sockets") {
      sockets = parse_int_value(text, opt, 1, 64);
      structure_set = true;
    } else if (opt.key == "nodes") {
      nodes = parse_int_value(text, opt, 1, 64);
      structure_set = true;
    } else if (opt.key == "ccds") {
      ccds = parse_int_value(text, opt, 1, 1 << 12);
      structure_set = true;
    } else if (opt.key == "cores") {
      cores = parse_int_value(text, opt, 1, 1 << 16);
      structure_set = true;
    } else if (opt.key == "core_freq" || opt.key == "p_freq") {
      base.core_freq_ghz = parse_double_value(text, opt, 1e-3, 1e3);
    } else if (opt.key == "core_bw") {
      base.core_bw_gbps = parse_double_value(text, opt, 1e-3, 1e6);
    } else if (opt.key == "l3_mb") {
      base.l3_mb_per_ccd = parse_double_value(text, opt, 1e-3, 1e6);
    } else if (opt.key == "node_gb") {
      base.node_mem_gb = parse_double_value(text, opt, 1e-6, 1e9);
    } else if (opt.key == "node_bw") {
      base.node_bw_gbps = parse_double_value(text, opt, 1e-3, 1e6);
    } else if (opt.key == "node_lat") {
      base.node_latency_ns = parse_double_value(text, opt, 1e-3, 1e9);
    } else if (opt.key == "xlink_bw") {
      base.xlink_bw_gbps = parse_double_value(text, opt, 1e-3, 1e6);
    } else if (opt.key == "dist_near") {
      base.dist_same_socket = parse_double_value(text, opt, 10.0, 1e3);
    } else if (opt.key == "dist_far") {
      base.dist_cross_socket = parse_double_value(text, opt, 10.0, 1e3);
    } else if (opt.key == "far_gb") {
      base.far_gb = parse_double_value(text, opt, 0.0, 1e9);
    } else if (opt.key == "far_bw") {
      base.far_bw_gbps = parse_double_value(text, opt, 0.0, 1e6);
    } else if (opt.key == "far_lat") {
      base.far_lat_ns = parse_double_value(text, opt, 0.0, 1e9);
    } else if (opt.key == "e_freq") {
      base.e_freq_ghz = parse_double_value(text, opt, 0.0, 1e3);
    } else if (opt.key == "e_per_ccd") {
      base.e_per_ccd = parse_int_value(text, opt, 0, 1 << 12);
    } else {
      fail_spec(text, "unknown key '" + opt.key + "' for topology '" + spec.name +
                          "' (valid: " + kTopoKeys + ")");
    }
  }

  if (structure_set) {
    if (nodes % sockets != 0) {
      fail_spec(text, "key 'nodes': " + std::to_string(nodes) +
                          " nodes not divisible by " + std::to_string(sockets) +
                          " sockets");
    }
    if (ccds % nodes != 0) {
      fail_spec(text, "key 'ccds': " + std::to_string(ccds) +
                          " ccds not divisible by " + std::to_string(nodes) +
                          " nodes");
    }
    if (cores % ccds != 0) {
      fail_spec(text, "key 'cores': " + std::to_string(cores) +
                          " cores not divisible by " + std::to_string(ccds) +
                          " ccds");
    }
    base.sockets = sockets;
    base.nodes_per_socket = nodes / sockets;
    base.ccds_per_node = ccds / nodes;
    base.cores_per_ccd = cores / ccds;
  }
  return base;
}

// Shortest round-trippable decimal for the canonical spec string.
std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.15g", v);
  return buf;
}

}  // namespace

TopoSpec parse_topo_spec(std::string_view text) {
  TopoSpec spec;
  const auto colon = text.find(':');
  spec.name = std::string(text.substr(0, colon));
  if (spec.name.empty()) {
    throw std::invalid_argument("topology spec '" + std::string(text) +
                                "': empty topology name");
  }
  if (colon == std::string_view::npos) return spec;

  std::string_view rest = text.substr(colon + 1);
  while (true) {
    const auto comma = rest.find(',');
    const std::string_view item = rest.substr(0, comma);
    const auto eq = item.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      throw std::invalid_argument("topology spec '" + std::string(text) +
                                  "': option '" + std::string(item) +
                                  "' is not key=value");
    }
    TopoOption opt;
    opt.key = std::string(item.substr(0, eq));
    opt.value = std::string(item.substr(eq + 1));
    for (const TopoOption& seen : spec.options) {
      if (seen.key == opt.key) {
        throw std::invalid_argument("topology spec '" + std::string(text) +
                                    "': duplicate key '" + opt.key + "'");
      }
    }
    spec.options.push_back(std::move(opt));
    if (comma == std::string_view::npos) break;
    rest = rest.substr(comma + 1);
  }
  return spec;
}

TopologyRegistry::TopologyRegistry() {
  register_topology(
      "zen4", "the paper's platform: 2-socket Zen4 EPYC 9354, 8 nodes, 64 cores",
      [] { return presets::zen4_epyc9354_2s(); });
  register_topology("tiny", "1 socket, 2 nodes, 8 cores (fast tests)",
                    [] { return presets::tiny_2n8c(); });
  register_topology("small", "1 socket, 4 nodes, 16 cores",
                    [] { return presets::small_4n16c(); });
  register_topology("quad", "4-socket NPS4 box: 16 nodes, 256 cores",
                    [] { return presets::quad_4s16n256c(); });
  register_topology(
      "cxl", "zen4 + CXL far-memory tier behind every node (far_gb/far_bw/far_lat)",
      [] { return presets::cxl_zen4_far(); });
  register_topology(
      "hetero", "zen4 with E-cores: p_freq/e_freq/e_per_ccd frequency asymmetry",
      [] { return presets::hetero_zen4_pe(); });
}

TopologyRegistry& TopologyRegistry::instance() {
  static TopologyRegistry registry;
  return registry;
}

void TopologyRegistry::register_topology(std::string name, std::string description,
                                         Factory factory) {
  entries_[std::move(name)] = Entry{std::move(description), std::move(factory)};
}

std::vector<std::string> TopologyRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;  // std::map iteration order == sorted
}

bool TopologyRegistry::contains(std::string_view name) const {
  return entries_.find(std::string(name)) != entries_.end();
}

std::string TopologyRegistry::description(const std::string& name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? std::string() : it->second.description;
}

MachineSpec TopologyRegistry::make(std::string_view spec_text) const {
  const TopoSpec spec = parse_topo_spec(spec_text);
  const auto it = entries_.find(spec.name);
  if (it == entries_.end()) {
    fail_spec(spec_text, "unknown topology '" + spec.name + "'");
  }
  MachineSpec ms = apply_options(spec_text, spec, it->second.factory());
  // Fail fast on a spec build() would reject: the registry's error names the
  // spec text AND the offending MachineSpec key.
  try {
    (void)build(ms);
  } catch (const std::invalid_argument& e) {
    fail_spec(spec_text, e.what());
  }
  return ms;
}

std::string TopologyRegistry::resolve(std::string_view spec_text) const {
  const TopoSpec spec = parse_topo_spec(spec_text);
  const MachineSpec ms = make(spec_text);
  // Canonical form: every knob explicit, fixed key order. All keys below are
  // accepted by apply_options, so resolve(resolve(s)) == resolve(s).
  std::string out = spec.name;
  out += ":sockets=" + std::to_string(ms.sockets);
  out += ",nodes=" + std::to_string(ms.total_nodes());
  out += ",ccds=" + std::to_string(ms.total_nodes() * ms.ccds_per_node);
  out += ",cores=" + std::to_string(ms.total_cores());
  out += ",core_freq=" + fmt(ms.core_freq_ghz);
  out += ",core_bw=" + fmt(ms.core_bw_gbps);
  out += ",l3_mb=" + fmt(ms.l3_mb_per_ccd);
  out += ",node_gb=" + fmt(ms.node_mem_gb);
  out += ",node_bw=" + fmt(ms.node_bw_gbps);
  out += ",node_lat=" + fmt(ms.node_latency_ns);
  out += ",xlink_bw=" + fmt(ms.xlink_bw_gbps);
  out += ",dist_near=" + fmt(ms.dist_same_socket);
  out += ",dist_far=" + fmt(ms.dist_cross_socket);
  if (ms.far_bw_gbps > 0.0) {
    out += ",far_gb=" + fmt(ms.far_gb);
    out += ",far_bw=" + fmt(ms.far_bw_gbps);
    out += ",far_lat=" + fmt(ms.far_lat_ns);
  }
  if (ms.e_per_ccd > 0) {
    out += ",e_freq=" + fmt(ms.e_freq_ghz);
    out += ",e_per_ccd=" + std::to_string(ms.e_per_ccd);
  }
  return out;
}

MachineSpec make_machine_spec(std::string_view spec_text) {
  return TopologyRegistry::instance().make(spec_text);
}

std::string resolve_topo_spec(std::string_view spec_text) {
  return TopologyRegistry::instance().resolve(spec_text);
}

std::string env_topo_spec() {
  const char* v = std::getenv("ILAN_TOPO");
  return (v == nullptr || *v == '\0') ? "zen4" : v;
}

MachineSpec machine_spec_from_env() { return make_machine_spec(env_topo_spec()); }

}  // namespace ilan::topo
