// Construction helpers for Topology.
//
// MachineSpec describes a homogeneous machine declaratively (the common
// case, and the only shape the paper's platform has); TopologyBuilder
// assembles the component lists and the SLIT distance matrix from it.
#pragma once

#include <string>

#include "topo/topology.hpp"

namespace ilan::topo {

struct MachineSpec {
  std::string name = "machine";
  int sockets = 1;
  int nodes_per_socket = 1;
  int ccds_per_node = 1;
  int cores_per_ccd = 1;

  double core_freq_ghz = 3.0;
  double core_bw_gbps = 20.0;
  double l3_mb_per_ccd = 32.0;

  double node_mem_gb = 96.0;
  double node_bw_gbps = 90.0;
  double node_latency_ns = 95.0;
  double xlink_bw_gbps = 64.0;

  // SLIT distances (local is always 10).
  double dist_same_socket = 12.0;
  double dist_cross_socket = 32.0;

  // CXL-attached far-memory tier behind every node controller. far_bw_gbps
  // == 0 (the default) means no tier exists; the built topology is then
  // bit-identical to a pre-tier build.
  double far_gb = 0.0;
  double far_bw_gbps = 0.0;
  double far_lat_ns = 0.0;

  // Heterogeneous (P/E) cores: the last e_per_ccd cores of every CCD run at
  // e_freq_ghz instead of core_freq_ghz. e_per_ccd == 0 (the default) keeps
  // the machine homogeneous.
  double e_freq_ghz = 0.0;
  int e_per_ccd = 0;

  [[nodiscard]] int total_cores() const {
    return sockets * nodes_per_socket * ccds_per_node * cores_per_ccd;
  }
  [[nodiscard]] int total_nodes() const { return sockets * nodes_per_socket; }
};

// Builds a topology from the spec. Throws std::invalid_argument naming the
// offending key on non-positive counts or attributes.
[[nodiscard]] Topology build(const MachineSpec& spec);

}  // namespace ilan::topo
