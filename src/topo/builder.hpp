// Construction helpers for Topology.
//
// MachineSpec describes a homogeneous machine declaratively (the common
// case, and the only shape the paper's platform has); TopologyBuilder
// assembles the component lists and the SLIT distance matrix from it.
#pragma once

#include <string>

#include "topo/topology.hpp"

namespace ilan::topo {

struct MachineSpec {
  std::string name = "machine";
  int sockets = 1;
  int nodes_per_socket = 1;
  int ccds_per_node = 1;
  int cores_per_ccd = 1;

  double core_freq_ghz = 3.0;
  double core_bw_gbps = 20.0;
  double l3_mb_per_ccd = 32.0;

  double node_mem_gb = 96.0;
  double node_bw_gbps = 90.0;
  double node_latency_ns = 95.0;
  double xlink_bw_gbps = 64.0;

  // SLIT distances (local is always 10).
  double dist_same_socket = 12.0;
  double dist_cross_socket = 32.0;

  [[nodiscard]] int total_cores() const {
    return sockets * nodes_per_socket * ccds_per_node * cores_per_ccd;
  }
  [[nodiscard]] int total_nodes() const { return sockets * nodes_per_socket; }
};

// Builds a homogeneous topology from the spec. Throws std::invalid_argument
// on non-positive counts or attributes.
[[nodiscard]] Topology build(const MachineSpec& spec);

}  // namespace ilan::topo
