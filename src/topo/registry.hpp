// String-keyed topology registry and spec parsing.
//
// A topology spec is `name[:key=value[,key=value...]]` — e.g. "zen4",
// "quad:sockets=4,nodes=16,cores=256", "cxl:far_gb=256,far_bw=30,far_lat=350",
// "hetero:p_freq=3.25,e_freq=2.0,e_per_ccd=2". The registry maps the name to
// a base MachineSpec; the options override it with the same strictness
// contract as the scheduler registry (sched/registry.hpp): an unknown
// topology name, an unknown key, or a malformed value throws
// std::invalid_argument naming the offender and listing the registered
// topology names. resolve() returns the fully-resolved canonical spec —
// every knob explicit, fixed key order — which is what BENCH json records
// (resolve is idempotent: resolve(resolve(s)) == resolve(s)).
//
// The machine every binary simulates comes from here via the ILAN_TOPO env
// knob (default "zen4", bit-identical to the legacy hard-coded preset).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "topo/builder.hpp"

namespace ilan::topo {

struct TopoOption {
  std::string key;
  std::string value;
};

struct TopoSpec {
  std::string name;
  std::vector<TopoOption> options;

  [[nodiscard]] std::string to_string() const;
};

// Parses `name[:key=value[,key=value...]]`. Throws std::invalid_argument on
// an empty name, an option without '=', an empty key, or a duplicate key.
// Does NOT check the name against the registry — make() does.
[[nodiscard]] TopoSpec parse_topo_spec(std::string_view text);

class TopologyRegistry {
 public:
  using Factory = std::function<MachineSpec()>;

  // The process-wide registry, with the built-in topologies ("zen4", "tiny",
  // "small", "quad", "cxl", "hetero") pre-registered.
  static TopologyRegistry& instance();

  // Registers (or replaces) a named base machine spec.
  void register_topology(std::string name, std::string description,
                         Factory factory);

  // Registered names, sorted — the list every spec error embeds and
  // --list-topologies prints.
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] bool contains(std::string_view name) const;
  [[nodiscard]] std::string description(const std::string& name) const;

  // Parses the spec, applies the option overrides to the named base, and
  // validates the result via topo::build. Throws std::invalid_argument
  // (unknown name / key / bad value) with the registered names appended.
  [[nodiscard]] MachineSpec make(std::string_view spec_text) const;

  // The fully-resolved canonical spec `spec_text` denotes: every knob
  // explicit, fixed key order.
  [[nodiscard]] std::string resolve(std::string_view spec_text) const;

 private:
  TopologyRegistry();

  struct Entry {
    std::string description;
    Factory factory;
  };
  std::map<std::string, Entry> entries_;
};

// Convenience wrappers over TopologyRegistry::instance().
[[nodiscard]] MachineSpec make_machine_spec(std::string_view spec_text);
[[nodiscard]] std::string resolve_topo_spec(std::string_view spec_text);

// The ILAN_TOPO spec text ("zen4" when unset/empty).
[[nodiscard]] std::string env_topo_spec();

// The machine the current environment selects: make(env_topo_spec()).
[[nodiscard]] MachineSpec machine_spec_from_env();

}  // namespace ilan::topo
