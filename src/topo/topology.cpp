#include "topo/topology.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace ilan::topo {

Topology::Topology(std::string name, std::vector<SocketInfo> sockets,
                   std::vector<NodeInfo> nodes, std::vector<CcdInfo> ccds,
                   std::vector<CoreInfo> cores, std::vector<double> distance)
    : name_(std::move(name)),
      sockets_(std::move(sockets)),
      nodes_(std::move(nodes)),
      ccds_(std::move(ccds)),
      cores_(std::move(cores)),
      distance_(std::move(distance)) {
  validate();
  cores_per_node_ = static_cast<int>(nodes_.front().cores.size());
}

void Topology::validate() const {
  if (sockets_.empty() || nodes_.empty() || ccds_.empty() || cores_.empty()) {
    throw std::invalid_argument("Topology: empty component list");
  }
  if (distance_.size() != nodes_.size() * nodes_.size()) {
    throw std::invalid_argument("Topology: distance matrix size mismatch");
  }
  // rt::NodeMask is a 64-bit word; a wider machine would silently truncate.
  if (nodes_.size() > 64) {
    throw std::invalid_argument("Topology: more than 64 NUMA nodes unsupported");
  }
  const std::size_t per_node = nodes_.front().cores.size();
  for (const auto& n : nodes_) {
    if (n.cores.size() != per_node) {
      throw std::invalid_argument("Topology: heterogeneous node sizes unsupported");
    }
    if (!n.primary_core.valid() ||
        n.primary_core.index() >= cores_.size() ||
        cores_[n.primary_core.index()].node != n.id) {
      throw std::invalid_argument("Topology: node primary core invalid");
    }
    if (n.socket.index() >= sockets_.size()) {
      throw std::invalid_argument("Topology: node references missing socket");
    }
    if (n.mem_bw_gbps <= 0.0 || n.mem_latency_ns <= 0.0) {
      throw std::invalid_argument("Topology: node memory attributes must be positive");
    }
  }
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    const auto& c = cores_[i];
    if (c.id.index() != i) throw std::invalid_argument("Topology: core ids not dense");
    if (c.node.index() >= nodes_.size() || c.ccd.index() >= ccds_.size()) {
      throw std::invalid_argument("Topology: core references missing node/ccd");
    }
    if (c.base_freq_ghz <= 0.0 || c.core_bw_gbps <= 0.0) {
      throw std::invalid_argument("Topology: core attributes must be positive");
    }
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (std::size_t j = 0; j < nodes_.size(); ++j) {
      const double d = distance_[i * nodes_.size() + j];
      if (d < 10.0) throw std::invalid_argument("Topology: distance below SLIT local (10)");
      if (i == j && d != 10.0) {
        throw std::invalid_argument("Topology: self-distance must be 10");
      }
    }
  }
}

std::vector<NodeId> Topology::nodes_by_distance(NodeId from) const {
  std::vector<NodeId> order(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) order[i] = NodeId{static_cast<std::int32_t>(i)};
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    const double da = distance(from, a);
    const double db = distance(from, b);
    if (da != db) return da < db;
    return a < b;
  });
  return order;
}

double Topology::total_mem_bw_gbps() const {
  return std::accumulate(nodes_.begin(), nodes_.end(), 0.0,
                         [](double acc, const NodeInfo& n) { return acc + n.mem_bw_gbps; });
}

bool Topology::has_far_tier() const {
  return std::any_of(nodes_.begin(), nodes_.end(),
                     [](const NodeInfo& n) { return n.far.present(); });
}

}  // namespace ilan::topo
