// Text serialization for MachineSpec — a minimal stand-in for hwloc XML.
//
// Format: one `key = value` pair per line, `#` comments, blank lines
// ignored. Unknown keys are an error (catches typos in experiment configs).
//
//   name = zen4-epyc9354-2s
//   sockets = 2
//   nodes_per_socket = 4
//   ...
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "topo/builder.hpp"

namespace ilan::topo {

// Serializes every MachineSpec field; parse(serialize(s)) == s.
[[nodiscard]] std::string serialize(const MachineSpec& spec);

// Parses the format above. Throws std::invalid_argument with a line number
// on malformed input, unknown keys, or non-numeric values.
[[nodiscard]] MachineSpec parse_machine_spec(std::string_view text);

// Convenience: read a spec from a file. Throws std::runtime_error if the
// file cannot be opened.
[[nodiscard]] MachineSpec load_machine_spec(const std::string& path);

}  // namespace ilan::topo
