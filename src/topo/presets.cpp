#include "topo/presets.hpp"

namespace ilan::topo::presets {

MachineSpec zen4_epyc9354_2s() {
  MachineSpec s;
  s.name = "zen4-epyc9354-2s";
  s.sockets = 2;
  s.nodes_per_socket = 4;
  s.ccds_per_node = 2;
  s.cores_per_ccd = 4;
  s.core_freq_ghz = 3.25;
  s.core_bw_gbps = 22.0;
  s.l3_mb_per_ccd = 32.0;
  s.node_mem_gb = 96.0;  // 768 GB / 8 nodes
  // 12 channels of DDR5-4800 per socket ~ 460 GB/s; NPS4 gives ~115 GB/s
  // per NUMA node peak, ~90 GB/s sustained.
  s.node_bw_gbps = 90.0;
  s.node_latency_ns = 96.0;
  // Four xGMI3 links per direction, ~40 GB/s effective each.
  s.xlink_bw_gbps = 160.0;
  s.dist_same_socket = 12.0;
  s.dist_cross_socket = 32.0;
  return s;
}

MachineSpec tiny_2n8c() {
  MachineSpec s;
  s.name = "tiny-2n8c";
  s.sockets = 1;
  s.nodes_per_socket = 2;
  s.ccds_per_node = 1;
  s.cores_per_ccd = 4;
  s.core_freq_ghz = 3.0;
  s.core_bw_gbps = 20.0;
  s.l3_mb_per_ccd = 16.0;
  s.node_mem_gb = 32.0;
  s.node_bw_gbps = 60.0;
  s.node_latency_ns = 90.0;
  s.xlink_bw_gbps = 48.0;
  s.dist_same_socket = 12.0;
  s.dist_cross_socket = 32.0;
  return s;
}

MachineSpec small_4n16c() {
  MachineSpec s;
  s.name = "small-4n16c";
  s.sockets = 1;
  s.nodes_per_socket = 4;
  s.ccds_per_node = 1;
  s.cores_per_ccd = 4;
  s.core_freq_ghz = 3.0;
  s.core_bw_gbps = 20.0;
  s.l3_mb_per_ccd = 16.0;
  s.node_mem_gb = 48.0;
  s.node_bw_gbps = 70.0;
  s.node_latency_ns = 92.0;
  s.xlink_bw_gbps = 56.0;
  s.dist_same_socket = 12.0;
  s.dist_cross_socket = 32.0;
  return s;
}

MachineSpec quad_4s16n256c() {
  MachineSpec s;
  s.name = "quad-4s16n256c";
  s.sockets = 4;
  s.nodes_per_socket = 4;
  s.ccds_per_node = 2;
  s.cores_per_ccd = 8;
  s.core_freq_ghz = 2.8;
  s.core_bw_gbps = 22.0;
  s.l3_mb_per_ccd = 32.0;
  s.node_mem_gb = 64.0;
  s.node_bw_gbps = 85.0;
  s.node_latency_ns = 105.0;
  s.xlink_bw_gbps = 128.0;
  s.dist_same_socket = 12.0;
  s.dist_cross_socket = 32.0;
  return s;
}

MachineSpec cxl_zen4_far() {
  MachineSpec s = zen4_epyc9354_2s();
  s.name = "cxl-zen4-far";
  // Near DRAM shrunk so the bench kernels' working sets (fractions of a GB
  // per node) overflow into the far tier; the spill fraction is what the
  // max-min share tests and the topology sweep exercise.
  s.node_mem_gb = 0.02;
  s.far_gb = 256.0;
  s.far_bw_gbps = 30.0;  // one x8 CXL 2.0 device per node, sustained
  s.far_lat_ns = 350.0;
  return s;
}

MachineSpec hetero_zen4_pe() {
  MachineSpec s = zen4_epyc9354_2s();
  s.name = "hetero-zen4-pe";
  s.e_freq_ghz = 2.2;
  s.e_per_ccd = 2;
  return s;
}

}  // namespace ilan::topo::presets
