// Immutable machine topology: sockets -> NUMA nodes -> CCDs -> cores,
// plus a SLIT-style NUMA distance matrix and per-component performance
// attributes (core frequency, L3 capacity, memory controller bandwidth and
// latency, cross-socket link bandwidth).
//
// This plays the role hwloc plays in the paper's artifact: it is the single
// source of truth the scheduler and the machine model query for structure.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "topo/ids.hpp"

namespace ilan::topo {

struct CoreInfo {
  CoreId id;
  CcdId ccd;
  NodeId node;
  SocketId socket;
  // Per-core frequency: heterogeneous (P/E-core) machines assign different
  // values per core; homogeneous machines repeat the spec frequency.
  double base_freq_ghz = 0.0;
  // Peak per-core streaming bandwidth to DRAM (load/store unit + LFB limit).
  double core_bw_gbps = 0.0;
};

// One memory tier behind a node: capacity, peak bandwidth, unloaded latency.
// bw_gbps == 0 means the tier does not exist (the common, tierless case).
struct MemTier {
  double bytes = 0.0;
  double bw_gbps = 0.0;
  double latency_ns = 0.0;
  [[nodiscard]] bool present() const { return bw_gbps > 0.0; }
};

struct CcdInfo {
  CcdId id;
  NodeId node;
  std::vector<CoreId> cores;
  double l3_bytes = 0.0;
};

struct NodeInfo {
  NodeId id;
  SocketId socket;
  std::vector<CcdId> ccds;
  std::vector<CoreId> cores;
  // The node's "primary" core: ILAN enqueues a node's tasks on the worker
  // pinned to this core.
  CoreId primary_core;
  double mem_bytes = 0.0;
  double mem_bw_gbps = 0.0;     // controller peak bandwidth
  double mem_latency_ns = 0.0;  // unloaded local access latency
  // Optional second capacity class behind this node (CXL-attached far
  // memory). far.present() == false on tierless machines.
  MemTier far;
};

struct SocketInfo {
  SocketId id;
  std::vector<NodeId> nodes;
  // Aggregate inter-socket (xGMI-like) link bandwidth, each direction.
  double xlink_bw_gbps = 0.0;
};

class Topology {
 public:
  Topology(std::string name, std::vector<SocketInfo> sockets,
           std::vector<NodeInfo> nodes, std::vector<CcdInfo> ccds,
           std::vector<CoreInfo> cores, std::vector<double> distance);

  [[nodiscard]] const std::string& name() const { return name_; }

  [[nodiscard]] int num_sockets() const { return static_cast<int>(sockets_.size()); }
  [[nodiscard]] int num_nodes() const { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] int num_ccds() const { return static_cast<int>(ccds_.size()); }
  [[nodiscard]] int num_cores() const { return static_cast<int>(cores_.size()); }

  [[nodiscard]] const SocketInfo& socket(SocketId id) const { return sockets_.at(id.index()); }
  [[nodiscard]] const NodeInfo& node(NodeId id) const { return nodes_.at(id.index()); }
  [[nodiscard]] const CcdInfo& ccd(CcdId id) const { return ccds_.at(id.index()); }
  [[nodiscard]] const CoreInfo& core(CoreId id) const { return cores_.at(id.index()); }

  [[nodiscard]] std::span<const SocketInfo> sockets() const { return sockets_; }
  [[nodiscard]] std::span<const NodeInfo> nodes() const { return nodes_; }
  [[nodiscard]] std::span<const CcdInfo> ccds() const { return ccds_; }
  [[nodiscard]] std::span<const CoreInfo> cores() const { return cores_; }

  [[nodiscard]] NodeId node_of(CoreId c) const { return core(c).node; }
  [[nodiscard]] CcdId ccd_of(CoreId c) const { return core(c).ccd; }
  [[nodiscard]] SocketId socket_of(NodeId n) const { return node(n).socket; }

  // SLIT-normalized distance: 10 = local, larger = further away.
  [[nodiscard]] double distance(NodeId a, NodeId b) const {
    return distance_[a.index() * nodes_.size() + b.index()];
  }

  [[nodiscard]] bool same_socket(NodeId a, NodeId b) const {
    return socket_of(a) == socket_of(b);
  }

  // All nodes ordered by increasing distance from `from` (ties broken by
  // node id so the order is deterministic). `from` itself comes first.
  [[nodiscard]] std::vector<NodeId> nodes_by_distance(NodeId from) const;

  // Cores per NUMA node; homogeneous topologies only (checked at build).
  [[nodiscard]] int cores_per_node() const { return cores_per_node_; }

  // Total machine DRAM bandwidth (sum over controllers, near tier only).
  [[nodiscard]] double total_mem_bw_gbps() const;

  // True when any node carries a far-memory tier (MemTier::present()).
  [[nodiscard]] bool has_far_tier() const;

 private:
  void validate() const;

  std::string name_;
  std::vector<SocketInfo> sockets_;
  std::vector<NodeInfo> nodes_;
  std::vector<CcdInfo> ccds_;
  std::vector<CoreInfo> cores_;
  std::vector<double> distance_;  // row-major num_nodes x num_nodes
  int cores_per_node_ = 0;
};

}  // namespace ilan::topo
