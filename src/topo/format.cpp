#include "topo/format.hpp"

#include <charconv>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <stdexcept>

namespace ilan::topo {
namespace {

std::string_view trim(std::string_view s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string_view::npos) return {};
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

[[noreturn]] void fail(int line, const std::string& msg) {
  throw std::invalid_argument("machine spec line " + std::to_string(line) + ": " + msg);
}

double parse_double(std::string_view v, int line) {
  // std::from_chars<double> is available in libstdc++ 11+.
  double out = 0.0;
  const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec != std::errc{} || ptr != v.data() + v.size()) {
    fail(line, "expected a number, got '" + std::string(v) + "'");
  }
  return out;
}

int parse_int(std::string_view v, int line) {
  int out = 0;
  const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec != std::errc{} || ptr != v.data() + v.size()) {
    fail(line, "expected an integer, got '" + std::string(v) + "'");
  }
  return out;
}

}  // namespace

std::string serialize(const MachineSpec& s) {
  std::ostringstream os;
  os << "name = " << s.name << '\n'
     << "sockets = " << s.sockets << '\n'
     << "nodes_per_socket = " << s.nodes_per_socket << '\n'
     << "ccds_per_node = " << s.ccds_per_node << '\n'
     << "cores_per_ccd = " << s.cores_per_ccd << '\n'
     << "core_freq_ghz = " << s.core_freq_ghz << '\n'
     << "core_bw_gbps = " << s.core_bw_gbps << '\n'
     << "l3_mb_per_ccd = " << s.l3_mb_per_ccd << '\n'
     << "node_mem_gb = " << s.node_mem_gb << '\n'
     << "node_bw_gbps = " << s.node_bw_gbps << '\n'
     << "node_latency_ns = " << s.node_latency_ns << '\n'
     << "xlink_bw_gbps = " << s.xlink_bw_gbps << '\n'
     << "dist_same_socket = " << s.dist_same_socket << '\n'
     << "dist_cross_socket = " << s.dist_cross_socket << '\n'
     << "far_gb = " << s.far_gb << '\n'
     << "far_bw_gbps = " << s.far_bw_gbps << '\n'
     << "far_lat_ns = " << s.far_lat_ns << '\n'
     << "e_freq_ghz = " << s.e_freq_ghz << '\n'
     << "e_per_ccd = " << s.e_per_ccd << '\n';
  return os.str();
}

MachineSpec parse_machine_spec(std::string_view text) {
  MachineSpec spec;
  const std::map<std::string_view, std::function<void(std::string_view, int)>> setters = {
      {"name", [&](std::string_view v, int) { spec.name = std::string(v); }},
      {"sockets", [&](std::string_view v, int l) { spec.sockets = parse_int(v, l); }},
      {"nodes_per_socket", [&](std::string_view v, int l) { spec.nodes_per_socket = parse_int(v, l); }},
      {"ccds_per_node", [&](std::string_view v, int l) { spec.ccds_per_node = parse_int(v, l); }},
      {"cores_per_ccd", [&](std::string_view v, int l) { spec.cores_per_ccd = parse_int(v, l); }},
      {"core_freq_ghz", [&](std::string_view v, int l) { spec.core_freq_ghz = parse_double(v, l); }},
      {"core_bw_gbps", [&](std::string_view v, int l) { spec.core_bw_gbps = parse_double(v, l); }},
      {"l3_mb_per_ccd", [&](std::string_view v, int l) { spec.l3_mb_per_ccd = parse_double(v, l); }},
      {"node_mem_gb", [&](std::string_view v, int l) { spec.node_mem_gb = parse_double(v, l); }},
      {"node_bw_gbps", [&](std::string_view v, int l) { spec.node_bw_gbps = parse_double(v, l); }},
      {"node_latency_ns", [&](std::string_view v, int l) { spec.node_latency_ns = parse_double(v, l); }},
      {"xlink_bw_gbps", [&](std::string_view v, int l) { spec.xlink_bw_gbps = parse_double(v, l); }},
      {"dist_same_socket", [&](std::string_view v, int l) { spec.dist_same_socket = parse_double(v, l); }},
      {"dist_cross_socket", [&](std::string_view v, int l) { spec.dist_cross_socket = parse_double(v, l); }},
      {"far_gb", [&](std::string_view v, int l) { spec.far_gb = parse_double(v, l); }},
      {"far_bw_gbps", [&](std::string_view v, int l) { spec.far_bw_gbps = parse_double(v, l); }},
      {"far_lat_ns", [&](std::string_view v, int l) { spec.far_lat_ns = parse_double(v, l); }},
      {"e_freq_ghz", [&](std::string_view v, int l) { spec.e_freq_ghz = parse_double(v, l); }},
      {"e_per_ccd", [&](std::string_view v, int l) { spec.e_per_ccd = parse_int(v, l); }},
  };

  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const auto nl = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? std::string_view::npos : nl - pos);
    pos = (nl == std::string_view::npos) ? text.size() + 1 : nl + 1;
    ++line_no;

    const auto hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;

    const auto eq = line.find('=');
    if (eq == std::string_view::npos) fail(line_no, "expected 'key = value'");
    const auto key = trim(line.substr(0, eq));
    const auto value = trim(line.substr(eq + 1));
    const auto it = setters.find(key);
    if (it == setters.end()) fail(line_no, "unknown key '" + std::string(key) + "'");
    if (value.empty()) fail(line_no, "empty value for '" + std::string(key) + "'");
    it->second(value, line_no);
  }
  return spec;
}

MachineSpec load_machine_spec(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open machine spec file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_machine_spec(ss.str());
}

}  // namespace ilan::topo
