// Strongly typed identifiers for hardware entities.
//
// Cores, CCDs, NUMA nodes and sockets are all dense 0-based indices, but
// mixing them up is a classic source of silent scheduling bugs.  StrongId
// gives each its own type while keeping them trivially copyable and usable
// as vector indices via .value().
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>

namespace ilan::topo {

template <typename Tag>
class StrongId {
 public:
  constexpr StrongId() = default;
  constexpr explicit StrongId(std::int32_t v) : v_(v) {}

  [[nodiscard]] constexpr std::int32_t value() const { return v_; }
  [[nodiscard]] constexpr std::size_t index() const {
    return static_cast<std::size_t>(v_);
  }
  [[nodiscard]] constexpr bool valid() const { return v_ >= 0; }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;

  static constexpr StrongId invalid() { return StrongId{-1}; }

 private:
  std::int32_t v_ = -1;
};

struct CoreTag {};
struct CcdTag {};
struct NodeTag {};
struct SocketTag {};

using CoreId = StrongId<CoreTag>;
using CcdId = StrongId<CcdTag>;
using NodeId = StrongId<NodeTag>;
using SocketId = StrongId<SocketTag>;

}  // namespace ilan::topo

template <typename Tag>
struct std::hash<ilan::topo::StrongId<Tag>> {
  std::size_t operator()(ilan::topo::StrongId<Tag> id) const noexcept {
    return std::hash<std::int32_t>{}(id.value());
  }
};
