// Ready-made machine descriptions.
#pragma once

#include "topo/builder.hpp"

namespace ilan::topo::presets {

// The paper's evaluation platform: one Vera compute node with two AMD EPYC
// 9354 ("Zen 4") sockets, 64 cores total, 8 NUMA nodes (NPS4: 4 per socket),
// 8 cores per node, 32 MB L3 shared by each 4-core CCD, 768 GB DRAM.
[[nodiscard]] MachineSpec zen4_epyc9354_2s();

// A small 2-node machine useful for fast tests.
[[nodiscard]] MachineSpec tiny_2n8c();

// A mid-size single-socket 4-node machine.
[[nodiscard]] MachineSpec small_4n16c();

// A four-socket NPS4 box: 4 sockets x 4 nodes x 2 CCDs x 8 cores = 256
// cores over 16 NUMA nodes. Denser package, slightly lower clocks and
// per-node bandwidth than the 2-socket part.
[[nodiscard]] MachineSpec quad_4s16n256c();

// The zen4 platform with a CXL far-memory tier behind every node controller
// and a near capacity small enough that the bench kernels actually spill.
[[nodiscard]] MachineSpec cxl_zen4_far();

// The zen4 platform with heterogeneous cores: the last 2 cores of every
// 4-core CCD are E-cores clocked at 2.2 GHz.
[[nodiscard]] MachineSpec hetero_zen4_pe();

}  // namespace ilan::topo::presets
