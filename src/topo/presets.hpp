// Ready-made machine descriptions.
#pragma once

#include "topo/builder.hpp"

namespace ilan::topo::presets {

// The paper's evaluation platform: one Vera compute node with two AMD EPYC
// 9354 ("Zen 4") sockets, 64 cores total, 8 NUMA nodes (NPS4: 4 per socket),
// 8 cores per node, 32 MB L3 shared by each 4-core CCD, 768 GB DRAM.
[[nodiscard]] MachineSpec zen4_epyc9354_2s();

// A small 2-node machine useful for fast tests.
[[nodiscard]] MachineSpec tiny_2n8c();

// A mid-size single-socket 4-node machine.
[[nodiscard]] MachineSpec small_4n16c();

}  // namespace ilan::topo::presets
