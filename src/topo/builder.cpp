#include "topo/builder.hpp"

#include <stdexcept>
#include <string>

namespace ilan::topo {

namespace {

// Every validation error names the offending spec key, mirroring the
// scheduler registry's error style, so a bad `ILAN_TOPO=...:k=v` points at
// the exact knob instead of a generic "attributes must be positive".
[[noreturn]] void fail_key(const char* key, const char* what) {
  throw std::invalid_argument(std::string("MachineSpec: key '") + key + "': " + what);
}

void require_positive_count(const char* key, int value) {
  if (value <= 0) fail_key(key, "must be positive");
}

void require_positive(const char* key, double value) {
  if (value <= 0.0) fail_key(key, "must be positive");
}

}  // namespace

Topology build(const MachineSpec& spec) {
  require_positive_count("sockets", spec.sockets);
  require_positive_count("nodes_per_socket", spec.nodes_per_socket);
  require_positive_count("ccds_per_node", spec.ccds_per_node);
  require_positive_count("cores_per_ccd", spec.cores_per_ccd);
  require_positive("core_freq_ghz", spec.core_freq_ghz);
  require_positive("core_bw_gbps", spec.core_bw_gbps);
  require_positive("l3_mb_per_ccd", spec.l3_mb_per_ccd);
  require_positive("node_mem_gb", spec.node_mem_gb);
  require_positive("node_bw_gbps", spec.node_bw_gbps);
  require_positive("node_latency_ns", spec.node_latency_ns);
  require_positive("xlink_bw_gbps", spec.xlink_bw_gbps);
  if (spec.dist_same_socket < 10.0) fail_key("dist_same_socket", "must be >= 10");
  if (spec.dist_cross_socket < 10.0) fail_key("dist_cross_socket", "must be >= 10");
  // The far tier is all-or-nothing: far_bw_gbps == 0 means absent, and the
  // other far_* keys must then be 0 too; present tiers need all three.
  if (spec.far_bw_gbps < 0.0) fail_key("far_bw_gbps", "must be non-negative");
  if (spec.far_bw_gbps > 0.0) {
    require_positive("far_gb", spec.far_gb);
    require_positive("far_lat_ns", spec.far_lat_ns);
  } else if (spec.far_gb != 0.0 || spec.far_lat_ns != 0.0) {
    fail_key("far_bw_gbps", "must be positive when far_gb/far_lat_ns are set");
  }
  if (spec.e_per_ccd < 0) fail_key("e_per_ccd", "must be non-negative");
  if (spec.e_per_ccd > 0 && spec.e_per_ccd >= spec.cores_per_ccd) {
    fail_key("e_per_ccd", "must leave at least one P-core per CCD");
  }
  if (spec.e_per_ccd > 0) {
    require_positive("e_freq_ghz", spec.e_freq_ghz);
  } else if (spec.e_freq_ghz != 0.0) {
    fail_key("e_per_ccd", "must be positive when e_freq_ghz is set");
  }

  std::vector<SocketInfo> sockets;
  std::vector<NodeInfo> nodes;
  std::vector<CcdInfo> ccds;
  std::vector<CoreInfo> cores;

  std::int32_t node_i = 0;
  std::int32_t ccd_i = 0;
  std::int32_t core_i = 0;
  for (std::int32_t s = 0; s < spec.sockets; ++s) {
    SocketInfo sock;
    sock.id = SocketId{s};
    sock.xlink_bw_gbps = spec.xlink_bw_gbps;
    for (int n = 0; n < spec.nodes_per_socket; ++n) {
      NodeInfo node;
      node.id = NodeId{node_i};
      node.socket = sock.id;
      node.mem_bytes = spec.node_mem_gb * 1e9;
      node.mem_bw_gbps = spec.node_bw_gbps;
      node.mem_latency_ns = spec.node_latency_ns;
      if (spec.far_bw_gbps > 0.0) {
        node.far.bytes = spec.far_gb * 1e9;
        node.far.bw_gbps = spec.far_bw_gbps;
        node.far.latency_ns = spec.far_lat_ns;
      }
      for (int d = 0; d < spec.ccds_per_node; ++d) {
        CcdInfo ccd;
        ccd.id = CcdId{ccd_i};
        ccd.node = node.id;
        ccd.l3_bytes = spec.l3_mb_per_ccd * 1024.0 * 1024.0;
        for (int c = 0; c < spec.cores_per_ccd; ++c) {
          CoreInfo core;
          core.id = CoreId{core_i};
          core.ccd = ccd.id;
          core.node = node.id;
          core.socket = sock.id;
          // The last e_per_ccd cores of each CCD are E-cores; with
          // e_per_ccd == 0 every core takes the P frequency, unchanged.
          const bool e_core = c >= spec.cores_per_ccd - spec.e_per_ccd;
          core.base_freq_ghz = e_core ? spec.e_freq_ghz : spec.core_freq_ghz;
          core.core_bw_gbps = spec.core_bw_gbps;
          ccd.cores.push_back(core.id);
          node.cores.push_back(core.id);
          cores.push_back(core);
          ++core_i;
        }
        node.ccds.push_back(ccd.id);
        ccds.push_back(std::move(ccd));
        ++ccd_i;
      }
      node.primary_core = node.cores.front();
      sock.nodes.push_back(node.id);
      nodes.push_back(std::move(node));
      ++node_i;
    }
    sockets.push_back(std::move(sock));
  }

  const std::size_t nn = nodes.size();
  std::vector<double> dist(nn * nn, spec.dist_cross_socket);
  for (std::size_t i = 0; i < nn; ++i) {
    for (std::size_t j = 0; j < nn; ++j) {
      if (i == j) {
        dist[i * nn + j] = 10.0;
      } else if (nodes[i].socket == nodes[j].socket) {
        dist[i * nn + j] = spec.dist_same_socket;
      }
    }
  }

  return Topology(spec.name, std::move(sockets), std::move(nodes), std::move(ccds),
                  std::move(cores), std::move(dist));
}

}  // namespace ilan::topo
