#include "topo/builder.hpp"

#include <stdexcept>

namespace ilan::topo {

Topology build(const MachineSpec& spec) {
  if (spec.sockets <= 0 || spec.nodes_per_socket <= 0 || spec.ccds_per_node <= 0 ||
      spec.cores_per_ccd <= 0) {
    throw std::invalid_argument("MachineSpec: counts must be positive");
  }
  if (spec.core_freq_ghz <= 0.0 || spec.core_bw_gbps <= 0.0 ||
      spec.l3_mb_per_ccd <= 0.0 || spec.node_bw_gbps <= 0.0 ||
      spec.node_latency_ns <= 0.0 || spec.xlink_bw_gbps <= 0.0) {
    throw std::invalid_argument("MachineSpec: attributes must be positive");
  }
  if (spec.dist_same_socket < 10.0 || spec.dist_cross_socket < 10.0) {
    throw std::invalid_argument("MachineSpec: distances must be >= 10");
  }

  std::vector<SocketInfo> sockets;
  std::vector<NodeInfo> nodes;
  std::vector<CcdInfo> ccds;
  std::vector<CoreInfo> cores;

  std::int32_t node_i = 0;
  std::int32_t ccd_i = 0;
  std::int32_t core_i = 0;
  for (std::int32_t s = 0; s < spec.sockets; ++s) {
    SocketInfo sock;
    sock.id = SocketId{s};
    sock.xlink_bw_gbps = spec.xlink_bw_gbps;
    for (int n = 0; n < spec.nodes_per_socket; ++n) {
      NodeInfo node;
      node.id = NodeId{node_i};
      node.socket = sock.id;
      node.mem_bytes = spec.node_mem_gb * 1e9;
      node.mem_bw_gbps = spec.node_bw_gbps;
      node.mem_latency_ns = spec.node_latency_ns;
      for (int d = 0; d < spec.ccds_per_node; ++d) {
        CcdInfo ccd;
        ccd.id = CcdId{ccd_i};
        ccd.node = node.id;
        ccd.l3_bytes = spec.l3_mb_per_ccd * 1024.0 * 1024.0;
        for (int c = 0; c < spec.cores_per_ccd; ++c) {
          CoreInfo core;
          core.id = CoreId{core_i};
          core.ccd = ccd.id;
          core.node = node.id;
          core.socket = sock.id;
          core.base_freq_ghz = spec.core_freq_ghz;
          core.core_bw_gbps = spec.core_bw_gbps;
          ccd.cores.push_back(core.id);
          node.cores.push_back(core.id);
          cores.push_back(core);
          ++core_i;
        }
        node.ccds.push_back(ccd.id);
        ccds.push_back(std::move(ccd));
        ++ccd_i;
      }
      node.primary_core = node.cores.front();
      sock.nodes.push_back(node.id);
      nodes.push_back(std::move(node));
      ++node_i;
    }
    sockets.push_back(std::move(sock));
  }

  const std::size_t nn = nodes.size();
  std::vector<double> dist(nn * nn, spec.dist_cross_socket);
  for (std::size_t i = 0; i < nn; ++i) {
    for (std::size_t j = 0; j < nn; ++j) {
      if (i == j) {
        dist[i * nn + j] = 10.0;
      } else if (nodes[i].socket == nodes[j].socket) {
        dist[i * nn + j] = spec.dist_same_socket;
      }
    }
  }

  return Topology(spec.name, std::move(sockets), std::move(nodes), std::move(ccds),
                  std::move(cores), std::move(dist));
}

}  // namespace ilan::topo
