// Hierarchical task distribution (paper Section 3.3).
//
// Iteration chunks are deterministically block-mapped onto the nodes of the
// configuration's node mask (adjacent iterations stay together — the
// paper's data-dependency assumption), enqueued on each node's primary
// thread, with the head fraction of each node's tasks NUMA-strict and the
// tail stealable across nodes (only under steal_policy = full).
#pragma once

#include <cstddef>

#include "rt/scheduler.hpp"
#include "rt/task.hpp"

namespace ilan::rt {
class Team;
}

namespace ilan::core {

struct DistributionOptions {
  double stealable_fraction = 0.2;
  // Weight the block mapping by node health (healthy nodes get twice the
  // iterations of degraded ones, offline nodes get none). With every node
  // healthy the mapping is bit-identical to the health-blind one, so this
  // is safe to leave on; it only changes placement while a fault is active.
  bool react_to_health = false;
};

// Creates and places the tasks for one taskloop execution; returns the task
// count and adds the encountering thread's creation time to serial_cost.
std::size_t distribute_hierarchical(const rt::TaskloopSpec& spec,
                                    const rt::LoopConfig& cfg, rt::Team& team,
                                    const DistributionOptions& opts,
                                    sim::SimTime& serial_cost);

// Whether the cross-node tier of acquire_hierarchical honours the current
// LoopConfig's steal policy (the default), never opens (strict / rescue-only
// compositions), or always opens (forced-full compositions). kNever still
// admits escalated rescue steals — that hatch is orthogonal to the policy.
enum class CrossNodeMode { kConfig, kNever, kAlways };

// The matching acquisition policy: pop locally, steal intra-node (primary
// first), then — only under steal_policy = full and with the local node's
// queues drained — steal `stealable` tasks from the nearest remote nodes.
// A successful remote steal may transfer up to `remote_chunk` stealable
// tasks at once (extras land in the thief's own deque), amortizing the
// migration cost as in Olivier et al.'s chunked shepherd steals.
//
// `escalate` is the graceful-degradation hatch: tasks stranded on an
// unhealthy node may migrate even when the steal policy would forbid it —
// inter-node steals open up under the strict policy and the NUMA-strict
// head becomes stealable, but only from victims whose node is degraded or
// offline. Healthy victims keep the configured policy, so with every node
// healthy the flag is a no-op.
rt::AcquireResult acquire_hierarchical(rt::Team& team, rt::Worker& w,
                                       int remote_chunk = 1, bool escalate = false,
                                       CrossNodeMode cross = CrossNodeMode::kConfig);

}  // namespace ilan::core
