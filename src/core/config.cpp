// IlanParams is header-only; this translation unit anchors the library.
#include "core/config.hpp"
