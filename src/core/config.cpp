#include "core/config.hpp"

#include "obs/env.hpp"

namespace ilan::core {

IlanParams params_from_env(IlanParams base) {
  base.granularity = obs::parse_env_int("ILAN_GRANULARITY", base.granularity, 0, 1 << 20);
  base.stealable_fraction =
      obs::parse_env_double("ILAN_STEALABLE_FRACTION", base.stealable_fraction, 0.0, 1.0);
  base.remote_steal_chunk =
      obs::parse_env_int("ILAN_REMOTE_STEAL_CHUNK", base.remote_steal_chunk, 1, 1 << 20);
  base.staleness_factor =
      obs::parse_env_double("ILAN_STALENESS_FACTOR", base.staleness_factor, 1.0, 1e6);
  base.staleness_patience =
      obs::parse_env_int("ILAN_STALENESS_PATIENCE", base.staleness_patience, 1, 1 << 20);
  base.max_reexplorations =
      obs::parse_env_int("ILAN_MAX_REEXPLORATIONS", base.max_reexplorations, 0, 1 << 20);
  base.validate();
  return base;
}

}  // namespace ilan::core
