#include "core/backoff.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/rng.hpp"

namespace ilan::core {

Backoff::Backoff(std::uint64_t seed, const BackoffParams& params)
    : seed_(seed), params_(params) {
  if (params_.base < 0 || params_.cap < 0) {
    throw std::invalid_argument("Backoff: base/cap must be non-negative");
  }
  if (params_.multiplier < 1.0) {
    throw std::invalid_argument("Backoff: multiplier must be >= 1");
  }
  if (params_.jitter < 0.0 || params_.jitter >= 1.0) {
    throw std::invalid_argument("Backoff: jitter must be in [0, 1)");
  }
}

sim::SimTime Backoff::delay(int attempt) const {
  if (attempt < 1) throw std::invalid_argument("Backoff: attempt is 1-based");
  // Exponential growth in double space so large attempt counts saturate at
  // the cap instead of overflowing the integer picosecond clock.
  const double grown = static_cast<double>(params_.base) *
                       std::pow(params_.multiplier, attempt - 1);
  double d = std::min(grown, static_cast<double>(params_.cap));
  if (params_.jitter > 0.0) {
    // The jitter draw depends only on (seed, attempt): hash both into a
    // fresh SplitMix64 rather than advancing a shared stream, keeping the
    // schedule independent of which host thread asks first.
    sim::SplitMix64 sm(seed_ ^
                       (static_cast<std::uint64_t>(attempt) * 0x9E3779B97F4A7C15ULL));
    const double u = static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
    d *= 1.0 - params_.jitter + 2.0 * params_.jitter * u;
  }
  return std::max<sim::SimTime>(1, static_cast<sim::SimTime>(d));
}

}  // namespace ilan::core
