#include "core/config_selector.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace ilan::core {

Algo1Output algorithm1_step(const Algo1Input& in) {
  if (in.g <= 0) throw std::invalid_argument("algorithm1_step: g must be positive");
  if (in.best_threads <= 0 || in.second_threads <= 0) {
    throw std::invalid_argument("algorithm1_step: needs two prior configurations");
  }

  const int threads_diff = std::abs(in.best_threads - in.second_threads);
  const int lower_bound = std::min(in.best_threads, in.second_threads);
  // Midpoint rounded down to meet granularity.
  const int midpoint = lower_bound + ((threads_diff / 2) / in.g) * in.g;

  if (in.k == 3 && in.best_threads < in.second_threads) {
    // Best previous cfg is the smallest in the PTT: probe the smallest
    // possible configuration, unless the best already is it.
    if (in.best_threads == in.g) return {in.best_threads, true};
    return {in.g, false};
  }
  if (threads_diff <= in.g) {
    // Thread counts within one granularity step: optimal cfg found.
    return {in.best_threads, true};
  }
  if (in.cur_threads == midpoint) {
    // Midpoint already executed: converged on the best.
    return {in.best_threads, true};
  }
  return {midpoint, false};
}

int ThreadSearch::next_threads(int k, const PerfTraceTable& ptt, rt::LoopId loop) {
  if (finished_) return cur_threads_;
  if (k == 1) {
    cur_threads_ = m_max_;
    if (m_max_ <= g_) {
      // Machines with a single granularity step have nothing to explore.
      finished_ = true;
    }
    return cur_threads_;
  }
  if (k == 2) {
    cur_threads_ = std::max(g_, ((m_max_ / 2) / g_) * g_);
    return cur_threads_;
  }

  const PttEntry* best = ptt.fastest(loop);
  const PttEntry* second = ptt.second_fastest(loop);
  if (best == nullptr || second == nullptr) {
    // PTT lacks two configurations (should not happen after k >= 3, but be
    // robust to callers resetting state): keep the current choice.
    return cur_threads_;
  }
  const Algo1Output out = algorithm1_step(Algo1Input{
      .best_threads = best->config.num_threads,
      .second_threads = second->config.num_threads,
      .cur_threads = cur_threads_,
      .k = k,
      .g = g_,
  });
  cur_threads_ = out.next_threads;
  finished_ = out.search_finished;
  return cur_threads_;
}

}  // namespace ilan::core
