// The ILAN scheduler: interference-aware moldability (PTT + Algorithm 1)
// composed with locality-aware hierarchical task distribution and NUMA-aware
// stealing. Plugs into the runtime through the rt::Scheduler interface the
// same way the paper's implementation plugs into the LLVM tasking layer.
#pragma once

#include <memory>
#include <unordered_map>

#include "core/config.hpp"
#include "core/config_selector.hpp"
#include "core/node_mask.hpp"
#include "core/ptt.hpp"
#include "core/steal_policy.hpp"
#include "rt/scheduler.hpp"

namespace ilan::core {

class IlanScheduler final : public rt::Scheduler {
 public:
  explicit IlanScheduler(const IlanParams& params = {});

  [[nodiscard]] std::string_view name() const override {
    return params_.moldability ? "ilan" : "ilan-nomold";
  }

  rt::LoopConfig select_config(const rt::TaskloopSpec& spec, rt::Team& team) override;
  std::size_t distribute(const rt::TaskloopSpec& spec, const rt::LoopConfig& cfg,
                         rt::Team& team, sim::SimTime& serial_cost) override;
  rt::AcquireResult acquire(rt::Team& team, rt::Worker& w) override;
  void loop_finished(const rt::TaskloopSpec& spec, const rt::LoopExecStats& stats,
                     rt::Team& team) override;

  // --- introspection (tests, examples, harnesses) -------------------------
  [[nodiscard]] const PerfTraceTable& ptt() const { return ptt_; }
  [[nodiscard]] const IlanParams& params() const { return params_; }
  [[nodiscard]] int executions(rt::LoopId loop) const;
  [[nodiscard]] bool search_finished(rt::LoopId loop) const;
  // True when counter-guided selection classified the loop compute-bound
  // and skipped the thread search.
  [[nodiscard]] bool counter_locked(rt::LoopId loop) const;
  // Re-exploration windows triggered by PTT staleness (graceful
  // degradation under dynamic interference), per loop and in total.
  [[nodiscard]] int reexplorations(rt::LoopId loop) const;
  [[nodiscard]] int total_reexplorations() const { return total_reexplorations_; }

 private:
  struct LoopState {
    int k = 0;  // executions seen (1-based during selection)
    // Execution count at which the current search window opened: the
    // search-local execution index is k - k0, so a staleness-triggered
    // restart replays Algorithm 1 from its warm-up step.
    int k0 = 0;
    std::unique_ptr<ThreadSearch> search;
    StealPolicyEvaluator policy;
    bool finished = false;
    // Counter-guided classification: loop proven compute-bound after k = 1,
    // search skipped entirely.
    bool counter_locked = false;
    // Consecutive locked-in executions slower than staleness_factor x the
    // PTT's best observed wall time for the executed configuration.
    int stale_streak = 0;
    // Re-exploration windows consumed (bounded by max_reexplorations).
    int reexplorations = 0;
  };

  IlanParams params_;
  PerfTraceTable ptt_;
  std::unordered_map<rt::LoopId, LoopState> state_;
  int total_reexplorations_ = 0;
};

}  // namespace ilan::core
