// Seeded, deterministic, jittered exponential backoff.
//
// One policy shared by every retry site: the bench harness's run_many
// per-run retries and the serving layer's shed-request re-admission
// (src/serve/). The delay for retry attempt `n` is a pure function of
// (seed, params, n) — no internal stream position — so two call sites
// (or two host worker threads in a jobs=4 pool) asking about the same
// attempt always compute the same delay, and replaying attempt k never
// requires replaying attempts 1..k-1 first.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace ilan::core {

struct BackoffParams {
  // Nominal delay before the first retry; attempt n scales it by
  // multiplier^(n-1), clamped to cap.
  sim::SimTime base = sim::from_us(50);
  double multiplier = 2.0;
  sim::SimTime cap = sim::from_ms(10);
  // Full-jitter fraction: the clamped exponential delay is scaled by a
  // uniform draw from [1 - jitter, 1 + jitter]. 0 disables jitter.
  double jitter = 0.5;
};

class Backoff {
 public:
  explicit Backoff(std::uint64_t seed, const BackoffParams& params = {});

  // Delay before retry `attempt` (1-based: 1 = first retry after the
  // initial failure). Deterministic and side-effect free; throws
  // std::invalid_argument on attempt < 1. Never returns less than 1 ps so
  // a rescheduled event always lands strictly after the failure instant.
  [[nodiscard]] sim::SimTime delay(int attempt) const;

  [[nodiscard]] const BackoffParams& params() const { return params_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
  BackoffParams params_;
};

}  // namespace ilan::core
