#include "core/ptt.hpp"

#include <algorithm>
#include <limits>

#include "sim/time.hpp"

namespace ilan::core {

namespace {

// Deterministic "better" ordering: faster best-observed time, then fewer
// threads, then smaller mask, then strict before full. Comparing minima
// rather than means keeps one-off disturbances (cold caches on the very
// first execution, OS noise) from steering the search.
bool better(const PttEntry& a, const PttEntry& b) {
  if (a.objective.min() != b.objective.min()) {
    return a.objective.min() < b.objective.min();
  }
  if (a.config.num_threads != b.config.num_threads) {
    return a.config.num_threads < b.config.num_threads;
  }
  if (a.config.node_mask.bits() != b.config.node_mask.bits()) {
    return a.config.node_mask.bits() < b.config.node_mask.bits();
  }
  return static_cast<int>(a.config.steal_policy) < static_cast<int>(b.config.steal_policy);
}

}  // namespace

void PerfTraceTable::record(rt::LoopId loop, const rt::LoopExecStats& stats,
                            double objective_value) {
  LoopRecord& rec = loops_[loop];
  ++rec.executions;

  // Accumulate (or create) the entry for this exact configuration.
  auto it = std::find_if(rec.entries.begin(), rec.entries.end(), [&](const PttEntry& e) {
    return e.config == stats.config;
  });
  if (it == rec.entries.end()) {
    rec.entries.push_back(PttEntry{stats.config, {}, {}});
    it = rec.entries.end() - 1;
  }
  const double wall_s = sim::to_seconds(stats.wall);
  it->wall.add(wall_s);
  it->objective.add(objective_value >= 0.0 ? objective_value : wall_s);

  // Per-node locality profile.
  if (rec.node_busy_s.size() < stats.node_busy.size()) {
    rec.node_busy_s.resize(stats.node_busy.size(), 0.0);
    rec.node_iters.resize(stats.node_iters.size(), 0);
  }
  for (std::size_t n = 0; n < stats.node_busy.size(); ++n) {
    rec.node_busy_s[n] += sim::to_seconds(stats.node_busy[n]);
    rec.node_iters[n] += stats.node_iters[n];
  }
}

const PerfTraceTable::LoopRecord* PerfTraceTable::get(rt::LoopId loop) const {
  const auto it = loops_.find(loop);
  return it == loops_.end() ? nullptr : &it->second;
}

const PttEntry* PerfTraceTable::fastest(rt::LoopId loop) const {
  const LoopRecord* rec = get(loop);
  if (rec == nullptr || rec->entries.empty()) return nullptr;
  const PttEntry* best = &rec->entries.front();
  for (const auto& e : rec->entries) {
    if (better(e, *best)) best = &e;
  }
  return best;
}

const PttEntry* PerfTraceTable::second_fastest(rt::LoopId loop) const {
  const LoopRecord* rec = get(loop);
  if (rec == nullptr || rec->entries.size() < 2) return nullptr;
  const PttEntry* best = fastest(loop);
  const PttEntry* second = nullptr;
  for (const auto& e : rec->entries) {
    if (&e == best) continue;
    if (second == nullptr || better(e, *second)) second = &e;
  }
  return second;
}

const PttEntry* PerfTraceTable::find(rt::LoopId loop, int threads,
                                     rt::StealPolicy policy) const {
  const LoopRecord* rec = get(loop);
  if (rec == nullptr) return nullptr;
  const PttEntry* found = nullptr;
  for (const auto& e : rec->entries) {
    if (e.config.num_threads == threads && e.config.steal_policy == policy) {
      if (found == nullptr || better(e, *found)) found = &e;
    }
  }
  return found;
}

std::vector<topo::NodeId> PerfTraceTable::nodes_ranked(rt::LoopId loop,
                                                       int num_nodes) const {
  struct Ranked {
    topo::NodeId node;
    double per_iter;  // seconds per iteration; infinity = no samples
  };
  std::vector<Ranked> ranked;
  ranked.reserve(static_cast<std::size_t>(num_nodes));
  const LoopRecord* rec = get(loop);
  for (int n = 0; n < num_nodes; ++n) {
    double per_iter = std::numeric_limits<double>::infinity();
    if (rec != nullptr && static_cast<std::size_t>(n) < rec->node_busy_s.size() &&
        rec->node_iters[static_cast<std::size_t>(n)] > 0) {
      per_iter = rec->node_busy_s[static_cast<std::size_t>(n)] /
                 static_cast<double>(rec->node_iters[static_cast<std::size_t>(n)]);
    }
    ranked.push_back(Ranked{topo::NodeId{n}, per_iter});
  }
  std::stable_sort(ranked.begin(), ranked.end(), [](const Ranked& a, const Ranked& b) {
    if (a.per_iter != b.per_iter) return a.per_iter < b.per_iter;
    return a.node < b.node;
  });
  std::vector<topo::NodeId> out;
  out.reserve(ranked.size());
  for (const auto& r : ranked) out.push_back(r.node);
  return out;
}

int PerfTraceTable::executions(rt::LoopId loop) const {
  const LoopRecord* rec = get(loop);
  return rec == nullptr ? 0 : rec->executions;
}

std::vector<const PttEntry*> PerfTraceTable::entries(rt::LoopId loop) const {
  std::vector<const PttEntry*> out;
  const LoopRecord* rec = get(loop);
  if (rec != nullptr) {
    out.reserve(rec->entries.size());
    for (const auto& e : rec->entries) out.push_back(&e);
  }
  return out;
}

}  // namespace ilan::core
