// NUMA node-mask selection (paper Section 3.2).
//
// The fastest node recorded in the PTT seeds the mask; additional nodes are
// chosen by topology proximity (same-socket nodes before cross-socket),
// preserving data locality and cheap inter-node communication.
#pragma once

#include "core/ptt.hpp"
#include "rt/health.hpp"
#include "rt/task.hpp"
#include "topo/topology.hpp"

namespace ilan::core {

// Selects ceil(num_threads / g) nodes. With no PTT history the mask starts
// at node 0 (deterministic cold start).
//
// When `health` is non-null (the reactive path), unhealthy nodes are
// demoted: the seed is the fastest *healthy* ranked node, and nodes fill
// the mask healthy-first, then degraded, then offline — a molded loop
// routes around a faulted node whenever enough healthy nodes exist. With
// every node healthy the selection is identical to the health-blind one.
[[nodiscard]] rt::NodeMask select_node_mask(const topo::Topology& topo,
                                            const PerfTraceTable& ptt,
                                            rt::LoopId loop, int num_threads, int g,
                                            const rt::NodeHealth* health = nullptr);

}  // namespace ilan::core
