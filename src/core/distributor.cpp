#include "core/distributor.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "rt/runtime.hpp"
#include "rt/team.hpp"

namespace ilan::core {

std::size_t distribute_hierarchical(const rt::TaskloopSpec& spec,
                                    const rt::LoopConfig& cfg, rt::Team& team,
                                    const DistributionOptions& opts,
                                    sim::SimTime& serial_cost) {
  const auto mask_nodes = cfg.node_mask.to_nodes();
  if (mask_nodes.empty()) {
    throw std::invalid_argument("distribute_hierarchical: empty mask");
  }
  // Restrict the block mapping to mask nodes that actually got a worker
  // activated. Worker activation fills nodes in mask order until the thread
  // budget runs out, so under a narrowed carve (mask wider than
  // ceil(threads / cores_per_node) nodes) the trailing mask nodes are fully
  // parked — a NUMA-strict head placed there would strand forever, and even
  // the stealable tail would misattribute its home node. When no mask node
  // has an active primary (direct callers outside a Team prologue never
  // activate anyone), fall back to the full mask: every worker is equally
  // parked, so the historical layout is the only consistent answer.
  std::vector<topo::NodeId> nodes;
  nodes.reserve(mask_nodes.size());
  for (const topo::NodeId n : mask_nodes) {
    if (team.worker(team.node_workers(n).front()).active) nodes.push_back(n);
  }
  if (nodes.empty()) nodes = mask_nodes;

  const auto chunks = rt::make_chunks(spec.iterations, spec.grainsize, cfg.num_threads,
                                      spec.tasks_per_thread);
  const std::size_t nc = chunks.size();
  const std::size_t nn = nodes.size();

  // Health-weighted block mapping. Healthy nodes carry weight 2, degraded
  // nodes weight 1, offline nodes weight 0; with all nodes healthy the
  // split nc*(2ni)/(2nn) floors to exactly the classic nc*ni/nn, so the
  // reactive path is bit-identical to the blind one until a fault fires.
  std::vector<std::size_t> weight(nn, 2);
  if (opts.react_to_health) {
    const rt::NodeHealth& health = team.machine().health();
    std::size_t total = 0;
    for (std::size_t ni = 0; ni < nn; ++ni) {
      switch (health.condition(nodes[ni])) {
        case rt::NodeCondition::kHealthy:
          weight[ni] = 2;
          break;
        case rt::NodeCondition::kDegraded:
          weight[ni] = 1;
          break;
        case rt::NodeCondition::kOffline:
          weight[ni] = 0;
          break;
      }
      total += weight[ni];
    }
    // Every node in the mask is unusable: fall back to an even split rather
    // than dropping the loop's iterations on the floor.
    if (total == 0) weight.assign(nn, 1);
  }
  std::vector<std::size_t> wsum(nn + 1, 0);
  for (std::size_t ni = 0; ni < nn; ++ni) wsum[ni + 1] = wsum[ni] + weight[ni];
  const std::size_t wtotal = wsum[nn];

  obs::MetricsRegistry* metrics = team.machine().metrics();
  for (std::size_t ni = 0; ni < nn; ++ni) {
    // Deterministic block mapping: node ni owns chunks [lo, hi), i.e. a
    // contiguous run of the iteration space.
    const std::size_t lo = nc * wsum[ni] / wtotal;
    const std::size_t hi = nc * wsum[ni + 1] / wtotal;
    if (lo == hi) continue;
    const std::size_t node_tasks = hi - lo;
    // Head of the node's queue is strict; the tail may migrate when the
    // policy allows it.
    const auto strict_count = static_cast<std::size_t>(
        static_cast<double>(node_tasks) * (1.0 - opts.stealable_fraction) + 0.5);

    const topo::NodeId node = nodes[ni];
    if (metrics != nullptr) {
      // Per-node block-map share plus the strict/stealable split the
      // stealable_fraction knob produced — makes a skewed health-weighted
      // distribution visible without reading queues.
      const std::size_t strict_n = cfg.steal_policy == rt::StealPolicy::kStrict
                                       ? node_tasks
                                       : std::min(strict_count, node_tasks);
      metrics->counter("core.dist.node" + std::to_string(node.value()) + ".tasks")
          .inc(static_cast<std::int64_t>(node_tasks));
      metrics->counter("core.dist.strict_tasks")
          .inc(static_cast<std::int64_t>(strict_n));
      metrics->counter("core.dist.stealable_tasks")
          .inc(static_cast<std::int64_t>(node_tasks - strict_n));
    }
    const int primary = team.node_workers(node).front();
    for (std::size_t c = lo; c < hi; ++c) {
      serial_cost += team.costs().charge(trace::OverheadComponent::kTaskCreate);
      serial_cost += team.costs().charge(trace::OverheadComponent::kEnqueue);
      rt::Task t;
      t.begin = chunks[c].first;
      t.end = chunks[c].second;
      t.loop = &spec;
      t.home_node = node;
      t.numa_strict = cfg.steal_policy == rt::StealPolicy::kStrict ||
                      (c - lo) < strict_count;
      team.worker(primary).deque.push_back(t);
    }
  }
  return nc;
}

rt::AcquireResult acquire_hierarchical(rt::Team& team, rt::Worker& w,
                                       int remote_chunk, bool escalate,
                                       CrossNodeMode cross) {
  rt::AcquireResult r;
  r.cost += team.costs().charge(trace::OverheadComponent::kDequeue, w.core);
  if (auto t = w.deque.pop_front()) {
    r.task = std::move(t);
    return r;
  }

  // Fine-grained layer: intra-node stealing, primary's queue first (that is
  // where the distributor put the node's tasks).
  for (const int vid : team.node_workers(w.node)) {
    if (vid == w.id) continue;
    rt::Worker& victim = team.worker(vid);
    if (victim.deque.empty()) continue;
    if (auto t = victim.deque.steal_back(/*allow_strict=*/true)) {
      r.cost += team.costs().charge(trace::OverheadComponent::kStealHit, w.core);
      team.note_steal(/*remote=*/false);
      r.task = std::move(t);
      return r;
    }
  }
  r.cost += team.costs().charge(trace::OverheadComponent::kStealMiss, w.core);

  // Inter-node stealing: only under the full policy, only once this node is
  // fully idle (its queues are — we just drained them), only stealable
  // tasks, nearest nodes first. Escalation widens this: an unhealthy victim
  // node may be raided regardless of policy, NUMA-strict head included —
  // work stranded on a throttled or offline node is better executed
  // remotely than waited for.
  const rt::LoopConfig& cfg = team.current_config();
  const bool full = cross == CrossNodeMode::kAlways ||
                    (cross == CrossNodeMode::kConfig &&
                     cfg.steal_policy == rt::StealPolicy::kFull);
  if (!full && !escalate) return r;

  for (const topo::NodeId node : team.topology().nodes_by_distance(w.node)) {
    if (node == w.node || !cfg.node_mask.test(node)) continue;
    const bool rescue =
        escalate && team.machine().health().condition(node) != rt::NodeCondition::kHealthy;
    if (!full && !rescue) continue;
    bool probed_any = false;
    for (const int vid : team.node_workers(node)) {
      rt::Worker& victim = team.worker(vid);
      if (victim.deque.empty()) continue;
      probed_any = true;
      if (auto t = victim.deque.steal_back(/*allow_strict=*/rescue)) {
        r.cost += team.costs().charge(trace::OverheadComponent::kStealHit, w.core);
        r.cost += team.costs().charge(trace::OverheadComponent::kRemoteSteal, w.core);
        team.note_steal(/*remote=*/true);
        if (rescue) team.note_escalated_steal();
        // Chunked migration: bring additional stealable tasks home in the
        // same transfer (each still pays its queue-operation cost).
        for (int extra = 1; extra < remote_chunk; ++extra) {
          auto more = victim.deque.steal_back(/*allow_strict=*/rescue);
          if (!more) break;
          r.cost += team.costs().charge(trace::OverheadComponent::kEnqueue, w.core);
          team.note_steal(/*remote=*/true);
          if (rescue) team.note_escalated_steal();
          w.deque.push_back(std::move(*more));
        }
        r.task = std::move(t);
        return r;
      }
    }
    if (probed_any) {
      // Non-empty queues but nothing stealable (NUMA-strict head only).
      r.cost += team.costs().charge(trace::OverheadComponent::kStealMiss, w.core);
    }
  }
  return r;
}

}  // namespace ilan::core
