// ILAN tuning parameters (paper Section 3.5 defaults).
#pragma once

#include <stdexcept>

#include "trace/energy.hpp"

namespace ilan::core {

struct IlanParams {
  // Thread-count granularity g. 0 = NUMA node size (the paper's setting:
  // nodes are never split). Any value in [1, m_max/2] is legal.
  int granularity = 0;

  // Fraction of each node's tasks marked stealable across nodes when
  // steal_policy == full (the tail of the node's queue).
  double stealable_fraction = 0.2;

  // Master switch for the thread-count search (off reproduces Figure 4).
  bool moldability = true;

  // What the PTT ranks configurations by. kTime is the paper's metric;
  // kEnergy/kEdp realize the Section 3.5 energy-efficiency extension.
  trace::Objective objective = trace::Objective::kTime;
  trace::EnergyParams energy;

  // Counter-guided selection (Section 3.5: "more performance statistics can
  // reduce the exploration overhead"): after the first execution, loops
  // whose achieved DRAM bandwidth is below `counter_bw_threshold` of the
  // machine total are classified compute-bound and locked at m_max without
  // exploring — the exploration cost Matmul/BT pay for nothing.
  bool counter_guided = false;
  double counter_bw_threshold = 0.25;

  // Remote steals may transfer up to this many stealable tasks at once
  // (Olivier et al.'s chunked shepherd steals); extras go into the thief's
  // own deque. 1 = the paper's single-task migration.
  int remote_steal_chunk = 1;

  // --- graceful degradation under dynamic interference --------------------
  // Master switch for the reactive paths: PTT staleness re-exploration,
  // health-aware node-mask/distribution demotion, and steal-policy
  // escalation. With no fault plan armed all three reduce to the
  // non-reactive behaviour bit-for-bit, so this defaults on.
  bool reactive = true;
  // A locked-in configuration is "stale" when an execution's wall time
  // exceeds staleness_factor * the PTT entry's best observed wall time.
  double staleness_factor = 1.6;
  // Consecutive stale executions before re-exploration triggers (a single
  // noisy execution must not discard a converged search).
  int staleness_patience = 2;
  // Bound on re-exploration windows per loop: interference that never
  // settles must not turn the search overhead into a steady-state cost.
  int max_reexplorations = 4;

  void validate() const {
    if (staleness_factor <= 1.0) {
      throw std::invalid_argument("IlanParams: staleness_factor must be > 1");
    }
    if (staleness_patience < 1) {
      throw std::invalid_argument("IlanParams: staleness_patience must be >= 1");
    }
    if (max_reexplorations < 0) {
      throw std::invalid_argument("IlanParams: max_reexplorations must be >= 0");
    }
    if (remote_steal_chunk < 1) {
      throw std::invalid_argument("IlanParams: remote_steal_chunk must be >= 1");
    }
    if (counter_bw_threshold < 0.0 || counter_bw_threshold > 1.0) {
      throw std::invalid_argument("IlanParams: counter_bw_threshold outside [0,1]");
    }
    if (granularity < 0) throw std::invalid_argument("IlanParams: negative granularity");
    if (stealable_fraction < 0.0 || stealable_fraction > 1.0) {
      throw std::invalid_argument("IlanParams: stealable_fraction outside [0,1]");
    }
  }
};

// Applies optional ILAN_* tuning overrides from the environment on top of
// `base`, with the strict parsers from obs/env.hpp — a typo'd knob throws
// std::invalid_argument naming the variable instead of silently running the
// defaults. Knobs (all optional):
//   ILAN_GRANULARITY          thread-count granularity g (>= 0; 0 = node)
//   ILAN_STEALABLE_FRACTION   cross-node stealable tail fraction [0, 1]
//   ILAN_REMOTE_STEAL_CHUNK   tasks per remote steal (>= 1)
//   ILAN_STALENESS_FACTOR     staleness threshold factor (> 1)
//   ILAN_STALENESS_PATIENCE   stale executions before re-exploration (>= 1)
//   ILAN_MAX_REEXPLORATIONS   re-exploration budget per loop (>= 0)
// The result is validate()d before returning.
[[nodiscard]] IlanParams params_from_env(IlanParams base = {});

}  // namespace ilan::core
