#include "core/steal_policy.hpp"

namespace ilan::core {

rt::StealPolicy StealPolicyEvaluator::next_policy(bool search_finished, int threads,
                                                  const PerfTraceTable& ptt,
                                                  rt::LoopId loop) {
  if (!search_finished) return rt::StealPolicy::kStrict;

  switch (phase_) {
    case Phase::kPending:
      // First execution after the search converged: trial full stealing.
      phase_ = Phase::kTrialFull;
      return rt::StealPolicy::kFull;
    case Phase::kTrialFull: {
      const PttEntry* strict = ptt.find(loop, threads, rt::StealPolicy::kStrict);
      const PttEntry* full = ptt.find(loop, threads, rt::StealPolicy::kFull);
      if (full != nullptr && (strict == nullptr || full->objective.min() < strict->objective.min())) {
        decided_ = rt::StealPolicy::kFull;
      } else {
        decided_ = rt::StealPolicy::kStrict;
      }
      phase_ = Phase::kDecided;
      return decided_;
    }
    case Phase::kDecided:
      return decided_;
  }
  return rt::StealPolicy::kStrict;
}

}  // namespace ilan::core
