// Performance Trace Table (PTT).
//
// Links taskloop configurations to measured execution times (paper
// Section 3.1) and accumulates per-node timing so the scheduler can
// estimate each taskloop's data-locality profile (Section 3.2). Keyed by
// the taskloop's stable loop id (one entry per OpenMP construct).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "rt/scheduler.hpp"
#include "rt/task.hpp"
#include "trace/stats.hpp"

namespace ilan::core {

struct PttEntry {
  rt::LoopConfig config;
  trace::RunningStats wall;       // seconds per execution
  trace::RunningStats objective;  // scheduler objective (== wall for kTime)
};

class PerfTraceTable {
 public:
  // Records one finished execution (wall time + per-node busy/iterations).
  // `objective_value` is what configurations are ranked by; it defaults to
  // the wall time in seconds (the paper's metric) but can be energy or EDP
  // (Section 3.5: "the optimal configuration based on other metrics, such
  // as energy efficiency").
  void record(rt::LoopId loop, const rt::LoopExecStats& stats,
              double objective_value = -1.0);

  // Fastest / second-fastest configuration by best-observed objective
  // value (robust to one-off disturbances). Ties break toward fewer
  // threads, then smaller mask bits (deterministic).
  [[nodiscard]] const PttEntry* fastest(rt::LoopId loop) const;
  [[nodiscard]] const PttEntry* second_fastest(rt::LoopId loop) const;

  // Entry with exactly this thread count and steal policy (mask ignored:
  // the mask is recomputed deterministically, the search varies threads and
  // policy). nullptr if never executed.
  [[nodiscard]] const PttEntry* find(rt::LoopId loop, int threads,
                                     rt::StealPolicy policy) const;

  // Nodes ranked fastest-first by mean busy-time-per-iteration across all
  // recorded executions of `loop`. Nodes with no samples rank last (by id).
  [[nodiscard]] std::vector<topo::NodeId> nodes_ranked(rt::LoopId loop,
                                                       int num_nodes) const;

  [[nodiscard]] int executions(rt::LoopId loop) const;
  [[nodiscard]] std::vector<const PttEntry*> entries(rt::LoopId loop) const;
  [[nodiscard]] std::size_t num_loops() const { return loops_.size(); }

 private:
  struct LoopRecord {
    std::vector<PttEntry> entries;
    std::vector<double> node_busy_s;
    std::vector<std::int64_t> node_iters;
    int executions = 0;
  };

  [[nodiscard]] const LoopRecord* get(rt::LoopId loop) const;

  std::unordered_map<rt::LoopId, LoopRecord> loops_;
};

}  // namespace ilan::core
