#include "core/node_mask.hpp"

#include <algorithm>
#include <stdexcept>

namespace ilan::core {

rt::NodeMask select_node_mask(const topo::Topology& topo, const PerfTraceTable& ptt,
                              rt::LoopId loop, int num_threads, int g) {
  if (g <= 0) throw std::invalid_argument("select_node_mask: g must be positive");
  if (num_threads <= 0) throw std::invalid_argument("select_node_mask: need threads");

  const int cores_per_node = topo.cores_per_node();
  // Nodes needed to host num_threads at granularity g (g <= node size:
  // threads never straddle more nodes than necessary).
  const int threads_rounded = ((num_threads + g - 1) / g) * g;
  int want = (threads_rounded + cores_per_node - 1) / cores_per_node;
  want = std::min(want, topo.num_nodes());
  if (want == topo.num_nodes()) return rt::NodeMask::all(topo.num_nodes());

  const auto ranked = ptt.nodes_ranked(loop, topo.num_nodes());
  const topo::NodeId seed = ranked.front();

  rt::NodeMask mask;
  int taken = 0;
  for (const topo::NodeId n : topo.nodes_by_distance(seed)) {
    mask.set(n);
    if (++taken == want) break;
  }
  return mask;
}

}  // namespace ilan::core
