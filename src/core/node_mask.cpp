#include "core/node_mask.hpp"

#include <algorithm>
#include <stdexcept>

namespace ilan::core {

rt::NodeMask select_node_mask(const topo::Topology& topo, const PerfTraceTable& ptt,
                              rt::LoopId loop, int num_threads, int g,
                              const rt::NodeHealth* health) {
  if (g <= 0) throw std::invalid_argument("select_node_mask: g must be positive");
  if (num_threads <= 0) throw std::invalid_argument("select_node_mask: need threads");

  const int cores_per_node = topo.cores_per_node();
  // Nodes needed to host num_threads at granularity g (g <= node size:
  // threads never straddle more nodes than necessary).
  const int threads_rounded = ((num_threads + g - 1) / g) * g;
  int want = (threads_rounded + cores_per_node - 1) / cores_per_node;
  want = std::min(want, topo.num_nodes());
  if (want == topo.num_nodes()) return rt::NodeMask::all(topo.num_nodes());

  // Health of a node on the health-blind path: everything counts healthy,
  // which collapses the passes below to the original single sweep.
  const auto condition_of = [&](topo::NodeId n) {
    return health != nullptr ? health->condition(n) : rt::NodeCondition::kHealthy;
  };

  const auto ranked = ptt.nodes_ranked(loop, topo.num_nodes());
  // Seed from the fastest healthy node; all-unhealthy falls back to the
  // plain ranking (there is nothing better to route to).
  topo::NodeId seed = ranked.front();
  for (const topo::NodeId n : ranked) {
    if (condition_of(n) == rt::NodeCondition::kHealthy) {
      seed = n;
      break;
    }
  }

  // Fill by proximity in demotion order: healthy nodes first, then
  // degraded, then offline — an unhealthy node joins the mask only when the
  // thread count cannot be hosted without it.
  rt::NodeMask mask;
  int taken = 0;
  for (const rt::NodeCondition pass :
       {rt::NodeCondition::kHealthy, rt::NodeCondition::kDegraded,
        rt::NodeCondition::kOffline}) {
    for (const topo::NodeId n : topo.nodes_by_distance(seed)) {
      if (condition_of(n) != pass || mask.test(n)) continue;
      mask.set(n);
      if (++taken == want) return mask;
    }
  }
  return mask;
}

}  // namespace ilan::core
