// ManualScheduler: ILAN's hierarchical distribution and NUMA-aware stealing
// with a FIXED, user-chosen configuration (no PTT, no exploration).
//
// Two uses: (1) expert control — pin a taskloop to a width/mask/policy you
// already know is right; (2) analysis — sweep widths to chart the
// moldability landscape a taskloop exposes (bench/report_width_sweep).
#pragma once

#include "core/config.hpp"
#include "rt/scheduler.hpp"

namespace ilan::core {

class ManualScheduler final : public rt::Scheduler {
 public:
  // `config.num_threads <= 0` means all; an empty mask means "first
  // ceil(threads/node_size) nodes".
  explicit ManualScheduler(rt::LoopConfig config, IlanParams params = {});

  [[nodiscard]] std::string_view name() const override { return "ilan-manual"; }

  rt::LoopConfig select_config(const rt::TaskloopSpec& spec, rt::Team& team) override;
  std::size_t distribute(const rt::TaskloopSpec& spec, const rt::LoopConfig& cfg,
                         rt::Team& team, sim::SimTime& serial_cost) override;
  rt::AcquireResult acquire(rt::Team& team, rt::Worker& w) override;

 private:
  rt::LoopConfig config_;
  IlanParams params_;
};

}  // namespace ilan::core
