#include "core/ilan_scheduler.hpp"

#include "core/distributor.hpp"
#include "rt/team.hpp"

namespace ilan::core {

IlanScheduler::IlanScheduler(const IlanParams& params) : params_(params) {
  params_.validate();
}

rt::LoopConfig IlanScheduler::select_config(const rt::TaskloopSpec& spec,
                                            rt::Team& team) {
  team.costs().charge(trace::OverheadComponent::kConfigSelect);

  LoopState& st = state_[spec.loop_id];
  ++st.k;
  const int m_max = team.num_workers();
  const int g = params_.granularity > 0 ? params_.granularity
                                        : team.topology().cores_per_node();

  int threads = m_max;
  if (st.counter_locked || !params_.moldability) {
    st.finished = true;  // no exploration: straight to steal-policy trial
  } else {
    if (!st.search) st.search = std::make_unique<ThreadSearch>(m_max, g);
    threads = st.search->next_threads(st.k, ptt_, spec.loop_id);
    st.finished = st.search->finished();
  }

  rt::LoopConfig cfg;
  cfg.num_threads = threads;
  cfg.node_mask = select_node_mask(team.topology(), ptt_, spec.loop_id, threads, g);
  cfg.steal_policy = st.policy.next_policy(st.finished, threads, ptt_, spec.loop_id);
  return cfg;
}

std::size_t IlanScheduler::distribute(const rt::TaskloopSpec& spec,
                                      const rt::LoopConfig& cfg, rt::Team& team,
                                      sim::SimTime& serial_cost) {
  DistributionOptions opts;
  opts.stealable_fraction = params_.stealable_fraction;
  return distribute_hierarchical(spec, cfg, team, opts, serial_cost);
}

rt::AcquireResult IlanScheduler::acquire(rt::Team& team, rt::Worker& w) {
  return acquire_hierarchical(team, w, params_.remote_steal_chunk);
}

void IlanScheduler::loop_finished(const rt::TaskloopSpec& spec,
                                  const rt::LoopExecStats& stats, rt::Team& team) {
  team.costs().charge(trace::OverheadComponent::kPttUpdate);
  const double obj = trace::objective_value(params_.objective, stats,
                                            team.topology().num_nodes(),
                                            params_.energy);
  ptt_.record(spec.loop_id, stats, obj);

  // Counter-guided classification after the first (m_max) execution: a loop
  // that achieved only a small fraction of machine bandwidth is compute-
  // bound, and no narrower configuration can beat m_max — skip the search.
  if (params_.counter_guided && params_.moldability) {
    LoopState& st = state_[spec.loop_id];
    if (st.k == 1 && !st.finished) {
      const double wall_s = sim::to_seconds(stats.wall);
      const double achieved_gbps = wall_s > 0.0 ? stats.bytes_moved / wall_s / 1e9 : 0.0;
      const double machine_gbps = team.topology().total_mem_bw_gbps();
      if (achieved_gbps < params_.counter_bw_threshold * machine_gbps) {
        st.counter_locked = true;
      }
    }
  }
}

int IlanScheduler::executions(rt::LoopId loop) const {
  const auto it = state_.find(loop);
  return it == state_.end() ? 0 : it->second.k;
}

bool IlanScheduler::search_finished(rt::LoopId loop) const {
  const auto it = state_.find(loop);
  return it != state_.end() && it->second.finished;
}

bool IlanScheduler::counter_locked(rt::LoopId loop) const {
  const auto it = state_.find(loop);
  return it != state_.end() && it->second.counter_locked;
}

}  // namespace ilan::core
