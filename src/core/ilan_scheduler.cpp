#include "core/ilan_scheduler.hpp"

#include "core/distributor.hpp"
#include "rt/runtime.hpp"
#include "rt/team.hpp"

namespace ilan::core {

IlanScheduler::IlanScheduler(const IlanParams& params) : params_(params) {
  params_.validate();
}

rt::LoopConfig IlanScheduler::select_config(const rt::TaskloopSpec& spec,
                                            rt::Team& team) {
  team.costs().charge(trace::OverheadComponent::kConfigSelect);
  obs::MetricsRegistry* metrics = team.machine().metrics();
  if (metrics != nullptr) metrics->counter("ptt.probe").inc();

  LoopState& st = state_[spec.loop_id];
  ++st.k;
  const int m_max = team.num_workers();
  const int g = params_.granularity > 0 ? params_.granularity
                                        : team.topology().cores_per_node();

  int threads = m_max;
  if (st.counter_locked || !params_.moldability) {
    st.finished = true;  // no exploration: straight to steal-policy trial
  } else {
    const bool was_finished = st.finished;
    if (!st.search) st.search = std::make_unique<ThreadSearch>(m_max, g);
    // k - k0 is the search-local execution index: a staleness-triggered
    // restart replays Algorithm 1's warm-up instead of resuming mid-search.
    threads = st.search->next_threads(st.k - st.k0, ptt_, spec.loop_id);
    st.finished = st.search->finished();
    if (st.finished && !was_finished) {
      // Algorithm 1 just locked in a thread count for this loop.
      if (metrics != nullptr) {
        metrics->counter("ptt.lock").inc();
        metrics->gauge("ptt.converge_execs").add(static_cast<double>(st.k - st.k0));
      }
      if (team.tracer() != nullptr) {
        team.tracer()->add_instant(trace::InstantEvent{
            "ptt lock loop " + std::to_string(spec.loop_id) + " @" +
                std::to_string(threads) + "thr",
            team.now()});
      }
    }
  }

  // The reactive path routes around unhealthy nodes; with every node
  // healthy it selects exactly the health-blind mask.
  const rt::NodeHealth* health =
      params_.reactive ? &team.machine().health() : nullptr;

  rt::LoopConfig cfg;
  cfg.num_threads = threads;
  cfg.node_mask =
      select_node_mask(team.topology(), ptt_, spec.loop_id, threads, g, health);
  cfg.steal_policy = st.policy.next_policy(st.finished, threads, ptt_, spec.loop_id);
  return cfg;
}

std::size_t IlanScheduler::distribute(const rt::TaskloopSpec& spec,
                                      const rt::LoopConfig& cfg, rt::Team& team,
                                      sim::SimTime& serial_cost) {
  DistributionOptions opts;
  opts.stealable_fraction = params_.stealable_fraction;
  opts.react_to_health = params_.reactive;
  return distribute_hierarchical(spec, cfg, team, opts, serial_cost);
}

rt::AcquireResult IlanScheduler::acquire(rt::Team& team, rt::Worker& w) {
  // Steal-policy escalation engages only while some node is unhealthy;
  // otherwise the configured policy applies unchanged.
  const bool escalate =
      params_.reactive && !team.machine().health().all_healthy();
  return acquire_hierarchical(team, w, params_.remote_steal_chunk, escalate);
}

void IlanScheduler::loop_finished(const rt::TaskloopSpec& spec,
                                  const rt::LoopExecStats& stats, rt::Team& team) {
  team.costs().charge(trace::OverheadComponent::kPttUpdate);
  const double obj = trace::objective_value(params_.objective, stats,
                                            team.topology().num_nodes(),
                                            params_.energy);
  ptt_.record(spec.loop_id, stats, obj);

  // Counter-guided classification after the first (m_max) execution: a loop
  // that achieved only a small fraction of machine bandwidth is compute-
  // bound, and no narrower configuration can beat m_max — skip the search.
  if (params_.counter_guided && params_.moldability) {
    LoopState& st = state_[spec.loop_id];
    if (st.k == 1 && !st.finished) {
      const double wall_s = sim::to_seconds(stats.wall);
      const double achieved_gbps = wall_s > 0.0 ? stats.bytes_moved / wall_s / 1e9 : 0.0;
      const double machine_gbps = team.topology().total_mem_bw_gbps();
      if (achieved_gbps < params_.counter_bw_threshold * machine_gbps) {
        st.counter_locked = true;
        if (obs::MetricsRegistry* m = team.machine().metrics()) {
          m->counter("ptt.counter_lock").inc();
        }
        if (team.tracer() != nullptr) {
          team.tracer()->add_instant(trace::InstantEvent{
              "counter-lock loop " + std::to_string(spec.loop_id), team.now()});
        }
      }
    }
  }

  // PTT staleness detection (graceful degradation): once the search has
  // locked in a configuration, executions that keep landing far above the
  // best wall time ever observed for that configuration mean the PTT no
  // longer describes the machine — interference, throttling, a degraded
  // node. After `staleness_patience` consecutive stale executions the
  // search restarts (bounded by max_reexplorations so interference that
  // never settles cannot turn exploration into a steady-state cost).
  if (params_.reactive && params_.moldability) {
    LoopState& st = state_[spec.loop_id];
    if (st.finished || st.counter_locked) {
      const PttEntry* e = ptt_.find(spec.loop_id, stats.config.num_threads,
                                    stats.config.steal_policy);
      const double wall_s = sim::to_seconds(stats.wall);
      const bool stale = e != nullptr && e->wall.min() > 0.0 &&
                         wall_s > params_.staleness_factor * e->wall.min();
      st.stale_streak = stale ? st.stale_streak + 1 : 0;
      if (st.stale_streak >= params_.staleness_patience &&
          st.reexplorations < params_.max_reexplorations) {
        st.search.reset();
        st.finished = false;
        st.counter_locked = false;
        st.policy = StealPolicyEvaluator{};
        st.k0 = st.k;
        st.stale_streak = 0;
        ++st.reexplorations;
        ++total_reexplorations_;
        if (obs::MetricsRegistry* m = team.machine().metrics()) {
          m->counter("ptt.reexplore").inc();
        }
        if (team.tracer() != nullptr) {
          team.tracer()->add_instant(trace::InstantEvent{
              "ptt re-explore loop " + std::to_string(spec.loop_id), team.now()});
        }
      }
    } else {
      st.stale_streak = 0;
    }
  }
}

int IlanScheduler::executions(rt::LoopId loop) const {
  const auto it = state_.find(loop);
  return it == state_.end() ? 0 : it->second.k;
}

bool IlanScheduler::search_finished(rt::LoopId loop) const {
  const auto it = state_.find(loop);
  return it != state_.end() && it->second.finished;
}

bool IlanScheduler::counter_locked(rt::LoopId loop) const {
  const auto it = state_.find(loop);
  return it != state_.end() && it->second.counter_locked;
}

int IlanScheduler::reexplorations(rt::LoopId loop) const {
  const auto it = state_.find(loop);
  return it == state_.end() ? 0 : it->second.reexplorations;
}

}  // namespace ilan::core
