// Steal-policy evaluation (paper Section 3.2).
//
// The policy stays `strict` while the thread search runs. Once the search
// finishes, `full` (inter-node stealing) is trialled for one execution;
// thereafter the policy with the better mean wall time is locked in.
#pragma once

#include "core/ptt.hpp"
#include "rt/task.hpp"

namespace ilan::core {

class StealPolicyEvaluator {
 public:
  // Policy for the upcoming execution. `search_finished` is the thread
  // search state; `threads` the (now fixed) thread count used to look up
  // strict/full PTT entries.
  rt::StealPolicy next_policy(bool search_finished, int threads,
                              const PerfTraceTable& ptt, rt::LoopId loop);

  [[nodiscard]] bool decided() const { return phase_ == Phase::kDecided; }
  [[nodiscard]] rt::StealPolicy decision() const { return decided_; }

 private:
  enum class Phase { kPending, kTrialFull, kDecided };
  Phase phase_ = Phase::kPending;
  rt::StealPolicy decided_ = rt::StealPolicy::kStrict;
};

}  // namespace ilan::core
