// Taskloop thread-count exploration — the paper's Algorithm 1.
//
// Executions 1 and 2 warm the PTT with m_max and m_max/2 threads; from the
// third execution on, `algorithm1_step` performs the binary-search-like
// narrowing between the fastest and second-fastest configurations seen so
// far, at thread-count granularity g, with the k = 3 special case that
// probes the smallest possible configuration when reducing threads helped.
//
// Interpretation note: the paper's pseudocode sets threads <- g in the
// k = 3 branch and then marks the search finished "if threads = g". We read
// the guard as "the previous best is already the smallest configuration"
// (best == g): then there is nothing below to probe and the search ends;
// otherwise the g-thread probe runs and the search continues.
#pragma once

#include "core/ptt.hpp"

namespace ilan::core {

struct Algo1Input {
  int best_threads = 0;    // cfg_best.threads (fastest in PTT)
  int second_threads = 0;  // cfg_second.threads
  int cur_threads = 0;     // configuration executed last
  int k = 0;               // execution count for this taskloop (1-based)
  int g = 1;               // thread-count granularity
};

struct Algo1Output {
  int next_threads = 0;
  bool search_finished = false;
};

[[nodiscard]] Algo1Output algorithm1_step(const Algo1Input& in);

// Stateful per-taskloop search driver used by IlanScheduler.
class ThreadSearch {
 public:
  ThreadSearch(int m_max, int g) : m_max_(m_max), g_(g) {}

  // Returns the thread count for execution number k (1-based) given the
  // PTT contents. Marks the search finished when Algorithm 1 converges.
  int next_threads(int k, const PerfTraceTable& ptt, rt::LoopId loop);

  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] int current_threads() const { return cur_threads_; }
  [[nodiscard]] int granularity() const { return g_; }

 private:
  int m_max_;
  int g_;
  int cur_threads_ = 0;
  bool finished_ = false;
};

}  // namespace ilan::core
