#include "core/manual_scheduler.hpp"

#include "core/distributor.hpp"
#include "rt/team.hpp"

namespace ilan::core {

ManualScheduler::ManualScheduler(rt::LoopConfig config, IlanParams params)
    : config_(config), params_(params) {
  params_.validate();
}

rt::LoopConfig ManualScheduler::select_config(const rt::TaskloopSpec&, rt::Team& team) {
  rt::LoopConfig cfg = config_;
  if (cfg.num_threads <= 0 || cfg.num_threads > team.num_workers()) {
    cfg.num_threads = team.num_workers();
  }
  if (cfg.node_mask.empty()) {
    const int per_node = team.topology().cores_per_node();
    cfg.node_mask = rt::NodeMask::first_n((cfg.num_threads + per_node - 1) / per_node);
  }
  return cfg;
}

std::size_t ManualScheduler::distribute(const rt::TaskloopSpec& spec,
                                        const rt::LoopConfig& cfg, rt::Team& team,
                                        sim::SimTime& serial_cost) {
  DistributionOptions opts;
  opts.stealable_fraction = params_.stealable_fraction;
  return distribute_hierarchical(spec, cfg, team, opts, serial_cost);
}

rt::AcquireResult ManualScheduler::acquire(rt::Team& team, rt::Worker& w) {
  return acquire_hierarchical(team, w, params_.remote_steal_chunk);
}

}  // namespace ilan::core
