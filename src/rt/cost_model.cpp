#include "rt/cost_model.hpp"

#include <algorithm>

namespace ilan::rt {

CostModel::CostModel(const CostParams& params, trace::OverheadTracker& tracker,
                     sim::NoiseModel* noise, const topo::Topology* topo)
    : params_(params), tracker_(tracker), noise_(noise) {
  if (topo == nullptr) return;
  double max_freq = 0.0;
  for (const auto& c : topo->cores()) max_freq = std::max(max_freq, c.base_freq_ghz);
  core_scale_.reserve(static_cast<std::size_t>(topo->num_cores()));
  for (const auto& c : topo->cores()) {
    // Exactly 1.0 on homogeneous machines (x / x == 1.0 in IEEE), so the
    // scaled charge below stays bit-identical there.
    core_scale_.push_back(max_freq / c.base_freq_ghz);
  }
}

double CostModel::base_ns(trace::OverheadComponent c) const {
  using OC = trace::OverheadComponent;
  switch (c) {
    case OC::kTaskCreate: return params_.task_create_ns;
    case OC::kEnqueue: return params_.enqueue_ns;
    case OC::kDequeue: return params_.dequeue_ns;
    case OC::kStealHit: return params_.steal_hit_ns;
    case OC::kStealMiss: return params_.steal_miss_ns;
    case OC::kRemoteSteal: return params_.remote_steal_extra_ns;
    case OC::kConfigSelect: return params_.config_select_ns;
    case OC::kPttUpdate: return params_.ptt_update_ns;
    case OC::kBarrier: return params_.barrier_per_thread_ns;
    case OC::kCount: break;
  }
  return 0.0;
}

sim::SimTime CostModel::charge(trace::OverheadComponent c) {
  const double jitter = noise_ ? noise_->sched_jitter() : 1.0;
  const sim::SimTime t = sim::from_ns(base_ns(c) * jitter);
  tracker_.charge(c, t);
  return t;
}

sim::SimTime CostModel::charge(trace::OverheadComponent c, topo::CoreId core) {
  const double scale =
      core_scale_.empty() ? 1.0 : core_scale_[static_cast<std::size_t>(core.index())];
  const double jitter = noise_ ? noise_->sched_jitter() : 1.0;
  const sim::SimTime t = sim::from_ns(base_ns(c) * jitter * scale);
  tracker_.charge(c, t);
  return t;
}

}  // namespace ilan::rt
