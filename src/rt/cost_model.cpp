#include "rt/cost_model.hpp"

namespace ilan::rt {

double CostModel::base_ns(trace::OverheadComponent c) const {
  using OC = trace::OverheadComponent;
  switch (c) {
    case OC::kTaskCreate: return params_.task_create_ns;
    case OC::kEnqueue: return params_.enqueue_ns;
    case OC::kDequeue: return params_.dequeue_ns;
    case OC::kStealHit: return params_.steal_hit_ns;
    case OC::kStealMiss: return params_.steal_miss_ns;
    case OC::kRemoteSteal: return params_.remote_steal_extra_ns;
    case OC::kConfigSelect: return params_.config_select_ns;
    case OC::kPttUpdate: return params_.ptt_update_ns;
    case OC::kBarrier: return params_.barrier_per_thread_ns;
    case OC::kCount: break;
  }
  return 0.0;
}

sim::SimTime CostModel::charge(trace::OverheadComponent c) {
  const double jitter = noise_ ? noise_->sched_jitter() : 1.0;
  const sim::SimTime t = sim::from_ns(base_ns(c) * jitter);
  tracker_.charge(c, t);
  return t;
}

}  // namespace ilan::rt
