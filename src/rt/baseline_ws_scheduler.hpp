// The paper's baseline: the default LLVM OpenMP tasking scheduler.
//
// Topology-agnostic: the encountering thread splits the taskloop into chunk
// tasks and keeps them in its own deque; every other thread acquires work by
// random-victim stealing (random start + linear probing, as the LLVM
// runtime's steal loop effectively does). No node masks, no strict tasks,
// always the full team.
#pragma once

#include "rt/scheduler.hpp"

namespace ilan::rt {

class BaselineWsScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override { return "baseline-ws"; }

  LoopConfig select_config(const TaskloopSpec& spec, Team& team) override;
  std::size_t distribute(const TaskloopSpec& spec, const LoopConfig& cfg, Team& team,
                         sim::SimTime& serial_cost) override;
  AcquireResult acquire(Team& team, Worker& w) override;
};

}  // namespace ilan::rt
