// Machine: assembles one simulated run (engine + topology + noise + regions
// + memory system) from declarative parameters. Each repetition of a
// benchmark constructs a fresh Machine with a distinct seed — the analogue
// of one `srun` invocation in the paper's 30-run methodology.
#pragma once

#include <cstdint>
#include <memory>

#include "mem/memory_system.hpp"
#include "obs/metrics.hpp"
#include "rt/health.hpp"
#include "sim/engine.hpp"
#include "sim/noise.hpp"
#include "topo/builder.hpp"

namespace ilan::rt {

struct MachineParams {
  topo::MachineSpec spec;
  mem::MemParams mem;
  sim::NoiseParams noise;
  std::uint64_t seed = 1;
};

class Machine {
 public:
  explicit Machine(const MachineParams& params);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] const topo::Topology& topology() const { return topo_; }
  [[nodiscard]] sim::NoiseModel& noise() { return noise_; }
  [[nodiscard]] mem::RegionTable& regions() { return regions_; }
  [[nodiscard]] mem::MemorySystem& memory() { return *memory_; }
  // Per-node health: written by the fault injector, read by the scheduler's
  // graceful-degradation paths. All-healthy for the whole run when no fault
  // plan is armed.
  [[nodiscard]] NodeHealth& health() { return health_; }
  [[nodiscard]] const NodeHealth& health() const { return health_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  // Observability: a metrics registry every subsystem instrumentation point
  // reaches through the machine. nullptr (the default) disables metrics at
  // the cost of one pointer test per instrumentation site; the simulated
  // event stream is bit-identical either way (metrics only observe). Attach
  // BEFORE constructing Teams/schedulers/injectors — they cache handles.
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }
  [[nodiscard]] obs::MetricsRegistry* metrics() const { return metrics_; }

 private:
  std::uint64_t seed_;
  sim::Engine engine_;
  topo::Topology topo_;
  sim::NoiseModel noise_;
  mem::RegionTable regions_;
  NodeHealth health_;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::unique_ptr<mem::MemorySystem> memory_;
};

}  // namespace ilan::rt
