// The OpenMP work-sharing comparator (Figure 6): `omp for schedule(static)`.
//
// Iterations are split into the same chunk granularity the tasking
// schedulers use, but chunks are assigned statically and in order to each
// thread; there is no task creation and no stealing, so scheduling overhead
// is minimal — and so is load balancing.
#pragma once

#include "rt/scheduler.hpp"

namespace ilan::rt {

class WorkSharingScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override { return "work-sharing"; }

  LoopConfig select_config(const TaskloopSpec& spec, Team& team) override;
  std::size_t distribute(const TaskloopSpec& spec, const LoopConfig& cfg, Team& team,
                         sim::SimTime& serial_cost) override;
  AcquireResult acquire(Team& team, Worker& w) override;
};

}  // namespace ilan::rt
