// Task-lifecycle observation hook.
//
// A TaskObserver attached to a Team (Team::set_observer) sees every
// semantic event of a taskloop execution — loop begin with the selected
// configuration, each task's start (with its resolved memory accesses) and
// finish, and the loop-end barrier. This is the seam the correctness
// analysis layer (analysis::RaceAuditor) builds its happens-before model
// on; it is dormant and costs nothing when no observer is attached.
//
// Hooks fire at simulated-time commit points, on the single host thread
// that drives the engine. Observers must not mutate runtime state.
#pragma once

#include <span>

#include "rt/scheduler.hpp"
#include "rt/task.hpp"
#include "sim/time.hpp"

namespace ilan::rt {

class Team;
struct Worker;
struct TaskGraphSpec;  // rt/task_graph.hpp

class TaskObserver {
 public:
  virtual ~TaskObserver() = default;

  // Configuration fixed and workers activated; task creation is about to
  // run serially on the encountering thread.
  virtual void on_loop_begin(const TaskloopSpec& /*spec*/, const LoopConfig& /*cfg*/,
                             const Team& /*team*/, sim::SimTime /*now*/) {}

  // Fired right after on_loop_begin when the execution is a task graph
  // (Team::run_taskgraph / start_taskgraph) rather than a taskloop: `graph`
  // stays valid until the matching on_loop_end. Observers that model
  // happens-before (analysis::RaceAuditor) read the predecessor lists here
  // to thread release edges from each node's finish to its successors'
  // starts. Task identity on the graph path: task.begin is the node id.
  virtual void on_graph_begin(const TaskGraphSpec& /*graph*/, const Team& /*team*/,
                              sim::SimTime /*now*/) {}

  // Task begins executing on `w`. `accesses` is the task's resolved memory
  // demand (valid only for the duration of the call).
  virtual void on_task_start(const Task& /*task*/, const Worker& /*w*/,
                             std::span<const mem::AccessDescriptor> /*accesses*/,
                             sim::SimTime /*now*/) {}

  // Task finished executing on `w`.
  virtual void on_task_finish(const Task& /*task*/, const Worker& /*w*/,
                              sim::SimTime /*now*/) {}

  // All tasks done and the team barrier has closed the loop; `stats` is the
  // execution record that will enter the Team's history.
  virtual void on_loop_end(const TaskloopSpec& /*spec*/, const LoopExecStats& /*stats*/,
                           sim::SimTime /*loop_end*/) {}
};

}  // namespace ilan::rt
