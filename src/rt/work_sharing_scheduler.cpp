#include "rt/work_sharing_scheduler.hpp"

#include "rt/team.hpp"

namespace ilan::rt {

LoopConfig WorkSharingScheduler::select_config(const TaskloopSpec&, Team& team) {
  LoopConfig cfg;
  cfg.num_threads = team.num_workers();
  cfg.node_mask = NodeMask::all(team.topology().num_nodes());
  cfg.steal_policy = StealPolicy::kStrict;
  return cfg;
}

std::size_t WorkSharingScheduler::distribute(const TaskloopSpec& spec,
                                             const LoopConfig& cfg, Team& team,
                                             sim::SimTime& serial_cost) {
  const auto chunks = make_chunks(spec.iterations, spec.grainsize, cfg.num_threads,
                                  spec.tasks_per_thread);
  // Contiguous runs of chunks per thread, like schedule(static) with the
  // equivalent chunk size. The "fork" costs one enqueue per thread.
  const auto nw = static_cast<std::size_t>(cfg.num_threads);
  const std::size_t nc = chunks.size();
  for (std::size_t t = 0; t < nw; ++t) {
    const std::size_t lo = nc * t / nw;
    const std::size_t hi = nc * (t + 1) / nw;
    if (lo < hi) {
      serial_cost += team.costs().charge(trace::OverheadComponent::kEnqueue);
    }
    for (std::size_t c = lo; c < hi; ++c) {
      Task task;
      task.begin = chunks[c].first;
      task.end = chunks[c].second;
      task.loop = &spec;
      task.home_node = team.worker(static_cast<int>(t)).node;
      task.numa_strict = true;  // static assignment never migrates
      team.worker(static_cast<int>(t)).deque.push_back(task);
    }
  }
  return nc;
}

AcquireResult WorkSharingScheduler::acquire(Team& team, Worker& w) {
  AcquireResult r;
  if (auto t = w.deque.pop_front()) {
    r.cost += team.costs().charge(trace::OverheadComponent::kDequeue);
    r.task = std::move(t);
  }
  return r;
}

}  // namespace ilan::rt
