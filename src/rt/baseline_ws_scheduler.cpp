#include "rt/baseline_ws_scheduler.hpp"

#include "rt/team.hpp"

namespace ilan::rt {

LoopConfig BaselineWsScheduler::select_config(const TaskloopSpec&, Team& team) {
  LoopConfig cfg;
  cfg.num_threads = team.num_workers();
  cfg.node_mask = NodeMask::all(team.topology().num_nodes());
  cfg.steal_policy = StealPolicy::kFull;
  return cfg;
}

std::size_t BaselineWsScheduler::distribute(const TaskloopSpec& spec,
                                            const LoopConfig& cfg, Team& team,
                                            sim::SimTime& serial_cost) {
  const auto chunks = make_chunks(spec.iterations, spec.grainsize, cfg.num_threads,
                                  spec.tasks_per_thread);
  Worker& encountering = team.worker(0);
  for (const auto& [b, e] : chunks) {
    serial_cost += team.costs().charge(trace::OverheadComponent::kTaskCreate);
    serial_cost += team.costs().charge(trace::OverheadComponent::kEnqueue);
    Task t;
    t.begin = b;
    t.end = e;
    t.loop = &spec;
    t.home_node = topo::NodeId::invalid();
    t.numa_strict = false;
    encountering.deque.push_back(t);
  }
  return chunks.size();
}

AcquireResult BaselineWsScheduler::acquire(Team& team, Worker& w) {
  AcquireResult r;
  r.cost += team.costs().charge(trace::OverheadComponent::kDequeue);
  if (auto t = w.deque.pop_front()) {
    r.task = std::move(t);
    return r;
  }

  // Random-victim stealing: random start, linear probe over all workers.
  // Probing an empty deque is a cached-flag read; only a contended attempt
  // on a non-empty deque costs a miss.
  const int n = team.num_workers();
  const int start = static_cast<int>(team.rng().below(static_cast<std::uint64_t>(n)));
  bool probed_nonempty = false;
  for (int i = 0; i < n; ++i) {
    const int vid = (start + i) % n;
    if (vid == w.id) continue;
    Worker& victim = team.worker(vid);
    if (victim.deque.empty()) continue;
    probed_nonempty = true;
    if (auto t = victim.deque.steal_back(/*allow_strict=*/true)) {
      r.cost += team.costs().charge(trace::OverheadComponent::kStealHit);
      team.note_steal(victim.node != w.node);
      r.task = std::move(t);
      return r;
    }
    r.cost += team.costs().charge(trace::OverheadComponent::kStealMiss);
  }
  if (!probed_nonempty) {
    r.cost += team.costs().charge(trace::OverheadComponent::kStealMiss);
  }
  return r;  // no work anywhere
}

}  // namespace ilan::rt
