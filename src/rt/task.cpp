#include "rt/task.hpp"

#include <algorithm>
#include <stdexcept>

namespace ilan::rt {

const char* to_string(StealPolicy p) {
  return p == StealPolicy::kStrict ? "strict" : "full";
}

std::vector<topo::NodeId> NodeMask::to_nodes() const {
  std::vector<topo::NodeId> out;
  for (int i = 0; i < 64; ++i) {
    if ((bits_ >> i) & 1u) out.push_back(topo::NodeId{i});
  }
  return out;
}

std::vector<std::pair<std::int64_t, std::int64_t>> make_chunks(
    std::int64_t iterations, std::int64_t grainsize, int num_threads,
    int tasks_per_thread) {
  if (iterations < 0) throw std::invalid_argument("make_chunks: negative iterations");
  std::vector<std::pair<std::int64_t, std::int64_t>> chunks;
  if (iterations == 0) return chunks;

  if (grainsize > 0) {
    for (std::int64_t b = 0; b < iterations; b += grainsize) {
      chunks.emplace_back(b, std::min(iterations, b + grainsize));
    }
    return chunks;
  }

  if (num_threads <= 0) throw std::invalid_argument("make_chunks: non-positive threads");
  const std::int64_t want =
      std::min<std::int64_t>(iterations,
                             static_cast<std::int64_t>(num_threads) *
                                 std::max(1, tasks_per_thread));
  const std::int64_t base = iterations / want;
  const std::int64_t extra = iterations % want;
  std::int64_t b = 0;
  for (std::int64_t i = 0; i < want; ++i) {
    const std::int64_t len = base + (i < extra ? 1 : 0);
    chunks.emplace_back(b, b + len);
    b += len;
  }
  return chunks;
}

}  // namespace ilan::rt
