// Per-NUMA-node health, the runtime's view of fault-injected degradation.
//
// The fault injector (src/fault/) writes node conditions as perturbations
// take effect and revert; the scheduler's graceful-degradation paths read
// them: node-mask selection demotes unhealthy nodes, the distributor
// down-weights their block shares, and the acquire path escalates stealing
// from nodes whose primaries have effectively stalled. The default (all
// nodes kHealthy, epoch 0) is what every non-fault run sees, so reactive
// code paths reduce to the unperturbed behaviour bit-for-bit.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "topo/ids.hpp"

namespace ilan::rt {

enum class NodeCondition : std::uint8_t {
  kHealthy,   // full capacity
  kDegraded,  // reduced frequency/bandwidth; usable but to be de-prioritised
  kOffline,   // effectively unusable (severe degradation)
};

[[nodiscard]] constexpr const char* to_string(NodeCondition c) {
  switch (c) {
    case NodeCondition::kHealthy: return "healthy";
    case NodeCondition::kDegraded: return "degraded";
    case NodeCondition::kOffline: return "offline";
  }
  return "?";
}

class NodeHealth {
 public:
  explicit NodeHealth(int num_nodes)
      : condition_(static_cast<std::size_t>(num_nodes), NodeCondition::kHealthy) {
    if (num_nodes <= 0) throw std::invalid_argument("NodeHealth: need nodes");
  }

  [[nodiscard]] NodeCondition condition(topo::NodeId n) const {
    return condition_.at(n.index());
  }

  void set(topo::NodeId n, NodeCondition c) {
    auto& cur = condition_.at(n.index());
    if (cur == c) return;
    if (cur != NodeCondition::kHealthy) --unhealthy_;
    if (c != NodeCondition::kHealthy) ++unhealthy_;
    cur = c;
    ++epoch_;
  }

  [[nodiscard]] bool all_healthy() const { return unhealthy_ == 0; }
  [[nodiscard]] int num_nodes() const { return static_cast<int>(condition_.size()); }
  // Bumped on every condition change; lets observers cheaply notice "health
  // changed since I last looked".
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

 private:
  std::vector<NodeCondition> condition_;
  int unhealthy_ = 0;
  std::uint64_t epoch_ = 0;
};

}  // namespace ilan::rt
