// Per-worker task queue with work-stealing access discipline.
//
// The owner consumes from the FRONT (keeping taskloop chunks in iteration
// order, which preserves the streaming locality the distributor set up);
// thieves steal from the BACK, so under ILAN's layout the NUMA-strict head
// of a node queue drains locally while the stealable tail is what migrates.
//
// The simulator is single-threaded so no atomics are needed, but the
// owner/thief API split is kept so the policy reads like the real runtime.
#pragma once

#include <deque>
#include <optional>

#include "rt/task.hpp"

namespace ilan::rt {

class WsDeque {
 public:
  void push_back(Task t) { tasks_.push_back(std::move(t)); }

  // Owner end.
  std::optional<Task> pop_front();

  // Thief end. `allow_strict` lets same-node thieves take strict tasks;
  // cross-node thieves must pass false and will only receive tasks with
  // numa_strict == false.
  std::optional<Task> steal_back(bool allow_strict);

  // Peek at what a thief would get (nullptr if nothing eligible).
  [[nodiscard]] const Task* peek_back(bool allow_strict) const;

  [[nodiscard]] bool empty() const { return tasks_.empty(); }
  [[nodiscard]] std::size_t size() const { return tasks_.size(); }
  void clear() { tasks_.clear(); }

 private:
  std::deque<Task> tasks_;
};

}  // namespace ilan::rt
