// Pluggable taskloop scheduler interface.
//
// A scheduler makes exactly the decisions the paper's Figure 1 workflow
// shows: (1) select the taskloop configuration, (2) create and place the
// chunk tasks, (3) hand out work to threads that run dry (the stealing
// policy), and (4) observe the finished execution (PTT updates).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "rt/task.hpp"
#include "sim/time.hpp"

namespace ilan::rt {

class Team;
struct Worker;
struct TaskGraphSpec;  // rt/task_graph.hpp

// Everything measured about one taskloop execution; what ILAN's performance
// tracing sees, and what the harnesses aggregate.
struct LoopExecStats {
  LoopId loop_id = 0;
  LoopConfig config;
  sim::SimTime start = 0;
  sim::SimTime wall = 0;
  std::int64_t tasks = 0;
  std::int64_t iterations = 0;
  std::vector<sim::SimTime> node_busy;      // indexed by node
  std::vector<std::int64_t> node_iters;     // indexed by node
  std::vector<sim::SimTime> worker_busy;    // indexed by worker
  std::int64_t steals_local = 0;
  std::int64_t steals_remote = 0;
  // DRAM traffic attributable to this execution (delta of the machine's
  // traffic counters across the loop).
  double bytes_moved = 0.0;
  double remote_bytes_moved = 0.0;
};

struct AcquireResult {
  std::optional<Task> task;
  sim::SimTime cost = 0;  // scheduling-path latency spent acquiring
};

// What a scheduler is willing to tell harnesses about itself without
// anybody dynamic_cast-ing to a concrete type: the fully-resolved registry
// spec it was built from (empty for schedulers constructed outside the
// registry that don't override introspect()) and the adaptation activity
// the reports aggregate.
struct SchedulerInfo {
  std::string spec;
  int total_reexplorations = 0;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  // Chooses this execution's thread count, node mask and steal policy.
  virtual LoopConfig select_config(const TaskloopSpec& spec, Team& team) = 0;

  // Creates the chunk tasks and pushes them into worker deques (only
  // workers Team marked active). Returns the task count and accumulates the
  // encountering thread's serial creation time into `serial_cost`.
  virtual std::size_t distribute(const TaskloopSpec& spec, const LoopConfig& cfg,
                                 Team& team, sim::SimTime& serial_cost) = 0;

  // Called when active worker `w` has no current task. Implements pop +
  // steal policy; must account its latency in the result's `cost`.
  virtual AcquireResult acquire(Team& team, Worker& w) = 0;

  // Task-graph path (Team::run_taskgraph): places one READY node of `graph`
  // into an active worker's deque. `task` arrives with begin/end/loop set;
  // the placement fills in home_node/numa_strict. `pred_nodes` holds the
  // NUMA nodes the task's predecessors executed on (empty for roots — those
  // are placed serially in the prologue). Charges the placement overhead
  // (task creation + enqueue) into `cost`. The default (rt/task_graph.cpp)
  // pushes onto the first active worker; ComposedScheduler routes this
  // through its DistributionPolicy so dep-aware placement composes with any
  // config/steal/feedback axis.
  virtual void place_ready(const TaskGraphSpec& graph, Task& task,
                           const LoopConfig& cfg, Team& team,
                           std::span<const topo::NodeId> pred_nodes,
                           sim::SimTime& cost);

  // End-of-execution hook (e.g., PTT update). Default: no-op.
  virtual void loop_finished(const TaskloopSpec& /*spec*/, const LoopExecStats& /*stats*/,
                             Team& /*team*/) {}

  // Uniform introspection for harnesses and reports. Replaces the old
  // dynamic_cast-to-IlanScheduler probing in bench/harness.cpp.
  [[nodiscard]] virtual SchedulerInfo introspect() const { return {}; }
};

}  // namespace ilan::rt
