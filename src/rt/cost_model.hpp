// Simulated costs of scheduling-path operations (drives Figure 5).
//
// Values are calibrated to the order of magnitude of the LLVM OpenMP
// tasking fast paths on a Zen 4 core (task allocation+init ~100-200ns,
// successful steal with CAS traffic ~300ns, cross-CCX cache-line transfer
// premium, etc.). Each charge is jittered by the run's NoiseModel.
#pragma once

#include "sim/noise.hpp"
#include "sim/time.hpp"
#include "topo/topology.hpp"
#include "trace/overhead.hpp"

namespace ilan::rt {

struct CostParams {
  double task_create_ns = 110.0;
  double enqueue_ns = 55.0;
  double dequeue_ns = 60.0;
  double steal_hit_ns = 310.0;
  double steal_miss_ns = 130.0;
  double remote_steal_extra_ns = 260.0;  // cross-node cache-line transfers
  double config_select_ns = 750.0;
  double ptt_update_ns = 160.0;
  double barrier_per_thread_ns = 85.0;
  double wake_ns = 600.0;  // signalling an idle worker
};

// Charges simulated time per scheduling action into an OverheadTracker and
// returns the jittered duration so callers can also delay the worker path.
//
// With a topology attached, per-core charges scale by the core's frequency
// deficit against the machine's fastest core (an E-core executes the same
// scheduling instructions at a lower clock). On homogeneous machines every
// scale is exactly 1.0 and the charge is bit-identical to the unscaled one.
class CostModel {
 public:
  CostModel(const CostParams& params, trace::OverheadTracker& tracker,
            sim::NoiseModel* noise, const topo::Topology* topo = nullptr);

  sim::SimTime charge(trace::OverheadComponent c);
  // Worker-context charge: scaled by `core`'s frequency deficit.
  sim::SimTime charge(trace::OverheadComponent c, topo::CoreId core);

  [[nodiscard]] const CostParams& params() const { return params_; }

 private:
  [[nodiscard]] double base_ns(trace::OverheadComponent c) const;

  CostParams params_;
  trace::OverheadTracker& tracker_;
  sim::NoiseModel* noise_;
  // Per-core slowdown factor (max base freq / core base freq); empty when
  // no topology was attached.
  std::vector<double> core_scale_;
};

}  // namespace ilan::rt
