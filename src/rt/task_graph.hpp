// Deterministic task-graph (DAG) specifications.
//
// A TaskGraphSpec describes a dependency graph of unit tasks: node i is the
// iteration range [i, i+1) of a synthetic taskloop, its demand (cycles +
// access descriptors) comes from the shared demand function, and preds[i]
// lists the nodes that must finish before node i may start. rt::Team
// executes a graph alongside the taskloop path (Team::run_taskgraph /
// Team::start_taskgraph): roots are placed serially in the prologue, and a
// finishing node decrements its successors' ready counts, handing each
// newly-ready node to the scheduler's place_ready hook (dependency-aware
// distribution lives there — sched/policy.hpp's DistributionPolicy::place).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "rt/task.hpp"

namespace ilan::rt {

struct TaskGraphSpec {
  LoopId graph_id = 0;  // stable per call site, like a taskloop's LoopId
  std::string name;
  // preds[i] = predecessor node ids of node i; the vector's size is the
  // node count. Roots have empty predecessor lists.
  std::vector<std::vector<std::int32_t>> preds;
  // demand(i, i+1) is node i's demand (cycles + access descriptors). The
  // runtime evaluates it lazily at task start, exactly like a taskloop's.
  DemandFn demand;

  [[nodiscard]] std::int64_t num_nodes() const {
    return static_cast<std::int64_t>(preds.size());
  }

  // Appends a node with the given predecessors; returns its id.
  std::int32_t add_node(std::vector<std::int32_t> node_preds = {}) {
    preds.push_back(std::move(node_preds));
    return static_cast<std::int32_t>(preds.size()) - 1;
  }

  // Throws std::invalid_argument on an empty graph, a missing demand
  // function, out-of-range / self / duplicate predecessor edges, or a
  // dependency cycle (Kahn check). Team runs this before every execution.
  void validate() const;
};

}  // namespace ilan::rt
