#include "rt/team.hpp"

#include <cstdio>
#include <stdexcept>

#include "sim/event_tags.hpp"

namespace ilan::rt {

Team::Team(Machine& machine, Scheduler& scheduler, const TeamParams& params)
    : machine_(machine),
      scheduler_(scheduler),
      costs_(params.costs, overhead_, &machine.noise(), &machine.topology()),
      rng_(sim::Xoshiro256ss(machine.seed()).split(0x7e47)) {
  if (obs::MetricsRegistry* m = machine_.metrics()) {
    metrics_.loops = &m->counter("rt.loops");
    metrics_.tasks = &m->counter("rt.tasks_executed");
    metrics_.steal_intra = &m->counter("rt.steal.intra_node");
    metrics_.steal_cross = &m->counter("rt.steal.cross_node");
    metrics_.steal_rescue = &m->counter("rt.steal.rescue");
    metrics_.watchdog_trips = &m->counter("rt.watchdog.trips");
    static constexpr double kOccEdges[] = {0, 1, 2, 4, 8, 16, 32, 64};
    metrics_.deque_occupancy = &m->histogram("rt.deque.occupancy", kOccEdges);
    static constexpr double kThreadEdges[] = {1, 2, 4, 8, 16, 32, 64, 128};
    metrics_.loop_threads = &m->histogram("rt.loop.threads", kThreadEdges);
  }
  const auto& topo = machine_.topology();
  workers_.resize(static_cast<std::size_t>(topo.num_cores()));
  workers_by_node_.resize(static_cast<std::size_t>(topo.num_nodes()));
  for (int i = 0; i < topo.num_cores(); ++i) {
    Worker& w = workers_[static_cast<std::size_t>(i)];
    w.id = i;
    w.core = topo::CoreId{i};
    w.node = topo.node_of(w.core);
    w.ccd = topo.ccd_of(w.core);
    workers_by_node_[w.node.index()].push_back(i);
  }
}

std::span<const int> Team::node_workers(topo::NodeId n) const {
  return workers_by_node_.at(n.index());
}

bool Team::node_queues_empty(topo::NodeId n) const {
  for (const int wid : workers_by_node_.at(n.index())) {
    if (!workers_[static_cast<std::size_t>(wid)].deque.empty()) return false;
  }
  return true;
}

void Team::note_steal(bool remote) {
  if (remote) {
    ++steals_remote_;
    if (metrics_.steal_cross != nullptr) metrics_.steal_cross->inc();
  } else {
    ++steals_local_;
    if (metrics_.steal_intra != nullptr) metrics_.steal_intra->inc();
  }
}

void Team::activate_workers(const LoopConfig& cfg) {
  for (auto& w : workers_) w.reset_loop_state();
  int budget = cfg.num_threads > 0 ? cfg.num_threads : num_workers();
  for (const auto& node : topology().nodes()) {
    if (!cfg.node_mask.empty() && !cfg.node_mask.test(node.id)) continue;
    for (const int wid : workers_by_node_[node.id.index()]) {
      if (budget == 0) return;
      workers_[static_cast<std::size_t>(wid)].active = true;
      --budget;
    }
  }
}

const LoopExecStats& Team::run_taskloop(const TaskloopSpec& spec) {
  begin_taskloop(spec);
  run_engine("taskloop");
  if (remaining_tasks_ != 0 || !loop_done_) {
    throw std::logic_error("Team: taskloop did not complete (scheduler starvation?)");
  }
  return finalize_loop();
}

void Team::start_taskloop(const TaskloopSpec& spec, LoopDoneFn on_done) {
  if (!on_done) {
    throw std::invalid_argument("Team: start_taskloop needs a completion callback");
  }
  begin_taskloop(spec);
  // Set only after the prologue validated the spec: a throw above must not
  // leave a stale completion armed on this team.
  on_loop_done_ = std::move(on_done);
}

const LoopExecStats& Team::run_taskgraph(const TaskGraphSpec& graph) {
  begin_taskgraph(graph);
  run_engine("task graph");
  if (remaining_tasks_ != 0 || !loop_done_) {
    throw std::logic_error("Team: task graph did not complete (scheduler starvation?)");
  }
  return finalize_loop();
}

void Team::start_taskgraph(const TaskGraphSpec& graph, LoopDoneFn on_done) {
  if (!on_done) {
    throw std::invalid_argument("Team: start_taskgraph needs a completion callback");
  }
  begin_taskgraph(graph);
  // As in start_taskloop: armed only after the prologue validated the graph.
  on_loop_done_ = std::move(on_done);
}

void Team::ensure_quiescent(const char* what) const {
  if (loop_done_) return;
  // Name the actual state: an armed completion callback means the previous
  // execution was started asynchronously and its barrier has not released
  // yet — a concurrency error, not nesting. Only a begin from inside a
  // blocking run (e.g. a demand function re-entering the team) is nesting.
  if (on_loop_done_) {
    throw std::logic_error(
        std::string("Team: ") + what +
        " while an asynchronous execution (start_taskloop/start_taskgraph) is "
        "still in flight; drive the engine to its completion callback first");
  }
  throw std::logic_error(std::string("Team: nested ") + what +
                         " unsupported (an execution is already running on this team)");
}

void Team::begin_taskloop(const TaskloopSpec& spec) {
  ensure_quiescent("taskloop");
  if (spec.iterations <= 0) throw std::invalid_argument("Team: taskloop needs iterations");
  if (!spec.demand) throw std::invalid_argument("Team: taskloop needs a demand function");

  sim::SimTime serial = begin_prologue(spec);

  // (2) Task creation + distribution, also serial.
  tasks_total_ = static_cast<std::int64_t>(
      scheduler_.distribute(spec, cur_cfg_, *this, serial));
  if (tasks_total_ <= 0) throw std::logic_error("Team: scheduler produced no tasks");
  remaining_tasks_ = tasks_total_;
  loop_done_ = false;

  launch_workers(serial);
}

void Team::begin_taskgraph(const TaskGraphSpec& graph) {
  ensure_quiescent("task graph");
  graph.validate();

  // The synthetic one-iteration-per-node spec: the scheduler's
  // select_config, the tracer, the observers and every Task of the graph
  // see an ordinary taskloop whose iteration i is node i.
  graph_loop_ = TaskloopSpec{};
  graph_loop_.loop_id = graph.graph_id;
  graph_loop_.name = graph.name;
  graph_loop_.iterations = graph.num_nodes();
  graph_loop_.grainsize = 1;
  graph_loop_.demand = graph.demand;

  sim::SimTime serial = begin_prologue(graph_loop_);
  cur_graph_ = &graph;
  if (observer_ != nullptr) {
    observer_->on_graph_begin(graph, *this, machine_.engine().now());
  }

  // (2) Readiness state + root placement, serial on the encountering
  // thread. Successor lists are CSR so the release path allocates nothing.
  const auto n = static_cast<std::size_t>(graph.num_nodes());
  dag_indegree_.assign(n, 0);
  dag_succ_off_.assign(n + 1, 0);
  dag_exec_node_.assign(n, topo::NodeId::invalid());
  for (std::size_t i = 0; i < n; ++i) {
    dag_indegree_[i] = static_cast<std::int32_t>(graph.preds[i].size());
    for (const std::int32_t p : graph.preds[i]) {
      ++dag_succ_off_[static_cast<std::size_t>(p) + 1];
    }
  }
  for (std::size_t i = 0; i < n; ++i) dag_succ_off_[i + 1] += dag_succ_off_[i];
  dag_succ_.assign(static_cast<std::size_t>(dag_succ_off_[n]), 0);
  std::vector<std::int32_t> fill(dag_succ_off_.begin(), dag_succ_off_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    for (const std::int32_t p : graph.preds[i]) {
      dag_succ_[static_cast<std::size_t>(fill[static_cast<std::size_t>(p)]++)] =
          static_cast<std::int32_t>(i);
    }
  }

  tasks_total_ = graph.num_nodes();
  remaining_tasks_ = tasks_total_;
  loop_done_ = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (dag_indegree_[i] != 0) continue;
    Task t;
    t.begin = static_cast<std::int64_t>(i);
    t.end = t.begin + 1;
    t.loop = &graph_loop_;
    scheduler_.place_ready(graph, t, cur_cfg_, *this, {}, serial);
  }

  launch_workers(serial);
}

sim::SimTime Team::begin_prologue(const TaskloopSpec& spec) {
  auto& engine = machine_.engine();
  cur_spec_ = &spec;
  loop_start_ = engine.now();
  steals_local_ = steals_remote_ = 0;
  traffic_before_ = machine_.memory().traffic();
  if (tracer_ != nullptr) {
    tracer_->add_marker(trace::LoopMarker{spec.name, loop_start_});
  }

  // (1) Configuration selection, serial on the encountering thread.
  // Schedulers with a real selection step (ILAN) charge kConfigSelect
  // themselves inside select_config.
  sim::SimTime serial = 0;
  cur_cfg_ = scheduler_.select_config(spec, *this);
  serial += overhead_.total(trace::OverheadComponent::kConfigSelect) -
            config_select_charged_;
  config_select_charged_ = overhead_.total(trace::OverheadComponent::kConfigSelect);
  if (cur_cfg_.node_mask.empty()) {
    cur_cfg_.node_mask = NodeMask::all(topology().num_nodes());
  }
  if (cur_cfg_.num_threads <= 0 || cur_cfg_.num_threads > num_workers()) {
    cur_cfg_.num_threads = num_workers();
  }
  activate_workers(cur_cfg_);
  if (metrics_.loops != nullptr) {
    metrics_.loops->inc();
    metrics_.loop_threads->record(static_cast<double>(cur_cfg_.num_threads));
  }
  if (tracer_ != nullptr) {
    // Scheduler-decision instant: what configuration this loop got. Lives
    // on the control lane so PTT convergence is visible against the task
    // slices it produced.
    char cfg[96];
    std::snprintf(cfg, sizeof(cfg), "cfg %dthr mask=0x%llx %s",
                  cur_cfg_.num_threads,
                  static_cast<unsigned long long>(cur_cfg_.node_mask.bits()),
                  to_string(cur_cfg_.steal_policy));
    tracer_->add_instant(trace::InstantEvent{spec.name + ": " + cfg, engine.now()});
  }
  if (observer_ != nullptr) {
    observer_->on_loop_begin(spec, cur_cfg_, *this, engine.now());
  }
  return serial;
}

void Team::launch_workers(sim::SimTime serial) {
  // (3) Wake the active workers. Worker 0 (the encountering thread, when
  // active) continues immediately after the serial section; the others pay
  // a wake-up signalling latency.
  auto& engine = machine_.engine();
  const sim::SimTime work_start = loop_start_ + serial;
  for (const auto& w : workers_) {
    if (!w.active) continue;
    sim::SimTime wake = 0;
    if (w.id != 0) {
      wake = sim::from_ns(costs_.params().wake_ns * machine_.noise().sched_jitter());
    }
    const int wid = w.id;
    engine.schedule_at(work_start + wake, [this, wid] { worker_seek(wid); },
                       sim::kTagWorkerWake);
  }
}

const LoopExecStats& Team::finalize_loop() {
  // (4) Record the execution.
  LoopExecStats stats;
  const TaskloopSpec& spec = *cur_spec_;
  stats.loop_id = spec.loop_id;
  stats.config = cur_cfg_;
  stats.start = loop_start_;
  stats.wall = loop_end_ - loop_start_;
  stats.tasks = tasks_total_;
  stats.iterations = spec.iterations;
  stats.node_busy.assign(static_cast<std::size_t>(topology().num_nodes()), 0);
  stats.node_iters.assign(static_cast<std::size_t>(topology().num_nodes()), 0);
  stats.worker_busy.resize(workers_.size());
  for (const auto& w : workers_) {
    stats.worker_busy[static_cast<std::size_t>(w.id)] = w.busy;
    stats.node_busy[w.node.index()] += w.busy;
    stats.node_iters[w.node.index()] += w.iters;
  }
  stats.steals_local = steals_local_;
  stats.steals_remote = steals_remote_;
  const mem::TrafficStats& traffic_after = machine_.memory().traffic();
  stats.bytes_moved = traffic_after.total() - traffic_before_.total();
  stats.remote_bytes_moved = traffic_after.remote_bytes - traffic_before_.remote_bytes;

  if (observer_ != nullptr) observer_->on_loop_end(spec, stats, loop_end_);
  scheduler_.loop_finished(spec, stats, *this);

  history_.push_back(std::move(stats));
  cur_spec_ = nullptr;
  cur_graph_ = nullptr;
  return history_.back();
}

void Team::worker_seek(int wid) {
  Worker& w = workers_[static_cast<std::size_t>(wid)];
  if (loop_done_ || !w.active || w.idle) return;
  if (metrics_.deque_occupancy != nullptr) {
    metrics_.deque_occupancy->record(static_cast<double>(w.deque.size()));
  }
  AcquireResult r = scheduler_.acquire(*this, w);
  if (r.task) {
    const Task task = *r.task;
    machine_.engine().schedule_after(r.cost, [this, wid, task] { start_task(wid, task); },
                                     sim::kTagTaskStart);
  } else {
    w.idle = true;
  }
}

void Team::start_task(int wid, const Task& task) {
  Worker& w = workers_[static_cast<std::size_t>(wid)];
  if (loop_done_) return;
  w.executing = true;
  const sim::SimTime exec_start = machine_.engine().now();
  TaskDemand demand = task.loop->demand(task.begin, task.end);
  if (observer_ != nullptr) {
    observer_->on_task_start(task, w, demand.accesses, exec_start);
  }
  machine_.memory().begin(w.core, demand.cpu_cycles, demand.accesses,
                          [this, wid, task, exec_start] {
                            finish_task(wid, task, exec_start);
                          });
}

void Team::finish_task(int wid, const Task& task, sim::SimTime exec_start) {
  Worker& w = workers_[static_cast<std::size_t>(wid)];
  w.executing = false;
  w.busy += machine_.engine().now() - exec_start;
  w.iters += task.size();
  if (observer_ != nullptr) {
    observer_->on_task_finish(task, w, machine_.engine().now());
  }
  if (metrics_.tasks != nullptr) metrics_.tasks->inc();
  if (tracer_ != nullptr) {
    trace::TaskEvent ev;
    ev.name = (task.loop != nullptr ? task.loop->name : std::string("task")) + "[" +
              std::to_string(task.begin) + "," + std::to_string(task.end) + ")";
    ev.core = w.core.value();
    ev.node = static_cast<int>(w.node.value());
    ev.start = exec_start;
    ev.end = machine_.engine().now();
    ev.stolen_remote = task.home_node.valid() && task.home_node != w.node;
    tracer_->add_task(std::move(ev));
  }
  // Graph path: the finished node may make successors ready. The release
  // runs before the remaining-task decrement so the last node's bookkeeping
  // (exec-node record) is complete when the barrier begins.
  if (cur_graph_ != nullptr) release_dag_successors(task, w);
  if (--remaining_tasks_ == 0) {
    begin_loop_end();
  } else {
    worker_seek(wid);
  }
}

void Team::release_dag_successors(const Task& task, const Worker& w) {
  const auto node = static_cast<std::size_t>(task.begin);
  dag_exec_node_[node] = w.node;
  sim::SimTime release_cost = 0;
  bool placed = false;
  for (std::int32_t k = dag_succ_off_[node]; k < dag_succ_off_[node + 1]; ++k) {
    const auto s = static_cast<std::size_t>(dag_succ_[static_cast<std::size_t>(k)]);
    if (--dag_indegree_[s] != 0) continue;
    Task t;
    t.begin = static_cast<std::int64_t>(s);
    t.end = t.begin + 1;
    t.loop = &graph_loop_;
    dag_pred_nodes_.clear();
    for (const std::int32_t p : cur_graph_->preds[s]) {
      dag_pred_nodes_.push_back(dag_exec_node_[static_cast<std::size_t>(p)]);
    }
    scheduler_.place_ready(*cur_graph_, t, cur_cfg_, *this, dag_pred_nodes_,
                           release_cost);
    placed = true;
  }
  if (!placed) return;
  // Wake parked workers so the newly-ready nodes get picked up after the
  // release bookkeeping cost; the releasing worker itself continues through
  // its own seek in finish_task. worker_seek early-returns on idle workers,
  // so the wake event clears the flag first. A sleeper another release
  // already woke is left alone (the idle check dedups queued wakes).
  const sim::SimTime when = machine_.engine().now() + release_cost;
  for (const auto& ww : workers_) {
    if (!ww.active || !ww.idle || ww.id == w.id) continue;
    const int wwid = ww.id;
    machine_.engine().schedule_at(
        when,
        [this, wwid] {
          Worker& sleeper = workers_[static_cast<std::size_t>(wwid)];
          if (!sleeper.idle) return;
          sleeper.idle = false;
          worker_seek(wwid);
        },
        sim::kTagDagRelease);
  }
}

void Team::begin_loop_end() {
  // Team barrier: each active thread pays the join cost; the loop's wall
  // time extends past the last task by the barrier depth.
  sim::SimTime barrier = 0;
  for (const auto& w : workers_) {
    if (w.active) barrier += costs_.charge(trace::OverheadComponent::kBarrier, w.core);
  }
  loop_done_ = true;
  loop_end_ = machine_.engine().now() + barrier;
  machine_.engine().schedule_at(loop_end_, [this] { on_barrier_release(); },
                                sim::kTagBarrierRelease);
}

void Team::on_barrier_release() {
  // Blocking mode (run_taskloop): nothing to do — the caller records the
  // execution after the engine drains, preserving the historical ordering.
  if (!on_loop_done_) return;
  // Async mode (start_taskloop): record now, at the barrier instant, then
  // hand the stats to the owner. The callback is moved out first so it may
  // start this team's next loop re-entrantly.
  LoopDoneFn done = std::move(on_loop_done_);
  on_loop_done_ = nullptr;
  const LoopExecStats& stats = finalize_loop();
  done(stats);
}

void Team::serial_compute(double cpu_cycles,
                          std::span<const mem::AccessDescriptor> accesses) {
  if (!loop_done_) throw std::logic_error("Team: serial section inside a taskloop");
  bool done = false;
  machine_.memory().begin(workers_.front().core, cpu_cycles, accesses,
                          [&done] { done = true; });
  run_engine("serial section");
  if (!done) throw std::logic_error("Team: serial section did not complete");
}

void Team::run_engine(const char* what) {
  auto& engine = machine_.engine();
  if (deadline_ <= 0) {
    engine.run();
    return;
  }
  engine.run_until(deadline_);
  if (engine.pending_regular() != 0) {
    if (metrics_.watchdog_trips != nullptr) metrics_.watchdog_trips->inc();
    throw WatchdogTimeout(
        std::string("Team: watchdog deadline (") +
            std::to_string(sim::to_seconds(deadline_)) + "s simulated) hit with " +
            std::to_string(engine.pending_regular()) + " event(s) pending in " + what,
        deadline_);
  }
}

sim::SimTime Team::total_loop_time() const {
  sim::SimTime t = 0;
  for (const auto& s : history_) t += s.wall;
  return t;
}

double Team::weighted_avg_threads() const {
  double num = 0.0;
  double den = 0.0;
  for (const auto& s : history_) {
    const double w = sim::to_seconds(s.wall);
    num += w * s.config.num_threads;
    den += w;
  }
  return den > 0.0 ? num / den : 0.0;
}

}  // namespace ilan::rt
