#include "rt/task_graph.hpp"

#include <algorithm>
#include <stdexcept>

#include "rt/scheduler.hpp"
#include "rt/team.hpp"
#include "rt/worker.hpp"

namespace ilan::rt {

void TaskGraphSpec::validate() const {
  if (num_nodes() <= 0) {
    throw std::invalid_argument("TaskGraphSpec '" + name + "': graph needs nodes");
  }
  if (!demand) {
    throw std::invalid_argument("TaskGraphSpec '" + name +
                                "': graph needs a demand function");
  }
  const std::size_t n = preds.size();
  std::vector<std::int32_t> indegree(n, 0);
  std::vector<std::vector<std::int32_t>> succ(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (const std::int32_t p : preds[i]) {
      if (p < 0 || static_cast<std::size_t>(p) >= n) {
        throw std::invalid_argument(
            "TaskGraphSpec '" + name + "': node " + std::to_string(i) +
            " has out-of-range predecessor " + std::to_string(p));
      }
      if (static_cast<std::size_t>(p) == i) {
        throw std::invalid_argument("TaskGraphSpec '" + name + "': node " +
                                    std::to_string(i) + " depends on itself");
      }
      succ[static_cast<std::size_t>(p)].push_back(static_cast<std::int32_t>(i));
    }
    // A duplicate edge would be ready-count-consistent (indegree counts it,
    // the successor list releases it twice) but it skews dependency-aware
    // placement votes, so it is rejected as a spec bug.
    std::vector<std::int32_t> sorted = preds[i];
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      throw std::invalid_argument("TaskGraphSpec '" + name + "': node " +
                                  std::to_string(i) +
                                  " lists a predecessor twice");
    }
    indegree[i] = static_cast<std::int32_t>(preds[i].size());
  }
  // Kahn peel: every node must become ready eventually, or the ready-count
  // release protocol would deadlock at run time.
  std::vector<std::int32_t> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) ready.push_back(static_cast<std::int32_t>(i));
  }
  std::size_t seen = 0;
  while (!ready.empty()) {
    const auto node = static_cast<std::size_t>(ready.back());
    ready.pop_back();
    ++seen;
    for (const std::int32_t s : succ[node]) {
      if (--indegree[static_cast<std::size_t>(s)] == 0) ready.push_back(s);
    }
  }
  if (seen != n) {
    throw std::invalid_argument("TaskGraphSpec '" + name +
                                "': dependency cycle through " +
                                std::to_string(n - seen) + " node(s)");
  }
}

// Default ready-node placement: the first active worker's deque, charged
// like any other task creation. Schedulers built outside the registry get a
// correct (if locality-blind) graph path for free; ComposedScheduler
// overrides this with its DistributionPolicy's place hook.
void Scheduler::place_ready(const TaskGraphSpec& /*graph*/, Task& task,
                            const LoopConfig& /*cfg*/, Team& team,
                            std::span<const topo::NodeId> /*pred_nodes*/,
                            sim::SimTime& cost) {
  cost += team.costs().charge(trace::OverheadComponent::kTaskCreate);
  cost += team.costs().charge(trace::OverheadComponent::kEnqueue);
  for (auto& w : team.workers()) {
    if (!w.active) continue;
    task.home_node = w.node;
    task.numa_strict = false;
    w.deque.push_back(task);
    return;
  }
  throw std::logic_error("Scheduler::place_ready: no active worker to place on");
}

}  // namespace ilan::rt
