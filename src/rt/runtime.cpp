#include "rt/runtime.hpp"

namespace ilan::rt {

Machine::Machine(const MachineParams& params)
    : seed_(params.seed),
      topo_(topo::build(params.spec)),
      noise_(params.noise, params.seed, topo_.num_cores()),
      regions_(topo_.num_nodes()),
      health_(topo_.num_nodes()) {
  memory_ = std::make_unique<mem::MemorySystem>(engine_, topo_, params.mem, regions_,
                                                &noise_);
}

}  // namespace ilan::rt
