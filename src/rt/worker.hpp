// A worker: one runtime thread pinned 1:1 to a physical core (the paper
// pins via hwloc; the simulator makes the pinning structural).
#pragma once

#include "rt/task.hpp"
#include "rt/ws_deque.hpp"
#include "sim/time.hpp"
#include "topo/ids.hpp"

namespace ilan::rt {

struct Worker {
  int id = -1;  // dense worker index == core index (1:1 pinning)
  topo::CoreId core;
  topo::NodeId node;
  topo::CcdId ccd;
  WsDeque deque;

  // Per-taskloop state.
  bool active = false;   // participates in the current taskloop
  bool idle = false;     // gave up seeking work for this taskloop
  bool executing = false;
  sim::SimTime busy = 0;
  std::int64_t iters = 0;

  void reset_loop_state() {
    active = false;
    idle = false;
    executing = false;
    busy = 0;
    iters = 0;
  }
};

}  // namespace ilan::rt
