#include "rt/ws_deque.hpp"

namespace ilan::rt {

std::optional<Task> WsDeque::pop_front() {
  if (tasks_.empty()) return std::nullopt;
  Task t = std::move(tasks_.front());
  tasks_.pop_front();
  return t;
}

const Task* WsDeque::peek_back(bool allow_strict) const {
  if (tasks_.empty()) return nullptr;
  const Task& t = tasks_.back();
  if (!allow_strict && t.numa_strict) return nullptr;
  return &t;
}

std::optional<Task> WsDeque::steal_back(bool allow_strict) {
  if (peek_back(allow_strict) == nullptr) return std::nullopt;
  Task t = std::move(tasks_.back());
  tasks_.pop_back();
  return t;
}

}  // namespace ilan::rt
