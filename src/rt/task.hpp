// Core task-runtime types: taskloop specifications, task chunks, loop
// configurations (thread count / node mask / steal policy) and chunking
// helpers. These mirror the concepts the paper adds to the LLVM tasking
// layer.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mem/memory_system.hpp"
#include "topo/ids.hpp"

namespace ilan::rt {

using LoopId = std::int64_t;

// Which NUMA nodes a taskloop may execute on. Bit i = node i eligible.
class NodeMask {
 public:
  constexpr NodeMask() = default;
  constexpr explicit NodeMask(std::uint64_t bits) : bits_(bits) {}

  [[nodiscard]] constexpr bool test(topo::NodeId n) const {
    return (bits_ >> n.value()) & 1u;
  }
  constexpr void set(topo::NodeId n) { bits_ |= (1ull << n.value()); }
  constexpr void clear(topo::NodeId n) { bits_ &= ~(1ull << n.value()); }
  [[nodiscard]] int count() const { return __builtin_popcountll(bits_); }
  [[nodiscard]] constexpr std::uint64_t bits() const { return bits_; }
  [[nodiscard]] constexpr bool empty() const { return bits_ == 0; }

  // Mask with the first `n` nodes set.
  [[nodiscard]] static constexpr NodeMask first_n(int n) {
    return NodeMask(n >= 64 ? ~0ull : ((1ull << n) - 1));
  }
  [[nodiscard]] static constexpr NodeMask all(int num_nodes) { return first_n(num_nodes); }

  [[nodiscard]] std::vector<topo::NodeId> to_nodes() const;

  friend constexpr bool operator==(NodeMask, NodeMask) = default;

 private:
  std::uint64_t bits_ = 0;
};

enum class StealPolicy : std::uint8_t {
  kStrict,  // work stealing confined to the local NUMA node
  kFull,    // inter-node stealing of `stealable` tasks permitted
};

[[nodiscard]] const char* to_string(StealPolicy p);

// The three knobs the paper's Section 3.1 gives every taskloop execution.
struct LoopConfig {
  int num_threads = 0;
  NodeMask node_mask;
  StealPolicy steal_policy = StealPolicy::kFull;

  friend bool operator==(const LoopConfig&, const LoopConfig&) = default;
};

// What one task (an iteration chunk) demands from the machine.
struct TaskDemand {
  double cpu_cycles = 0.0;
  std::vector<mem::AccessDescriptor> accesses;
};

// Maps an iteration range [begin, end) to its demand. Must be pure: the
// runtime may evaluate it lazily at task start.
using DemandFn = std::function<TaskDemand(std::int64_t begin, std::int64_t end)>;

struct TaskloopSpec {
  LoopId loop_id = 0;  // stable per call site, like an OpenMP construct
  std::string name;
  std::int64_t iterations = 0;
  // Desired tasks per active thread when chunking (LLVM-style heuristic);
  // grainsize (iterations per task) wins if nonzero.
  std::int64_t grainsize = 0;
  int tasks_per_thread = 2;
  DemandFn demand;
};

// A chunk of a taskloop, the unit of scheduling.
struct Task {
  std::int64_t begin = 0;
  std::int64_t end = 0;
  const TaskloopSpec* loop = nullptr;
  topo::NodeId home_node;        // node the distributor assigned (may be invalid)
  bool numa_strict = false;      // may never leave home_node
  [[nodiscard]] std::int64_t size() const { return end - begin; }
};

// Splits [0, iterations) into contiguous chunks: `grainsize` iterations per
// chunk when nonzero, otherwise ~tasks_per_thread chunks per active thread.
// Every iteration appears in exactly one chunk; chunk sizes differ by at
// most 1 when grainsize is 0.
[[nodiscard]] std::vector<std::pair<std::int64_t, std::int64_t>> make_chunks(
    std::int64_t iterations, std::int64_t grainsize, int num_threads,
    int tasks_per_thread);

}  // namespace ilan::rt
