// Team: one parallel region's worth of workers, pinned 1:1 to cores, plus
// the event-driven taskloop execution machinery.
//
// `run_taskloop` reproduces the paper's Figure 1 workflow in simulated
// time: configuration selection and task creation run serially on the
// encountering thread (worker 0), then active workers wake, drain their
// deques front-to-back and steal per the scheduler's policy; when the last
// chunk finishes, the team barrier closes the loop and the scheduler's
// `loop_finished` hook observes the measured execution.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "rt/cost_model.hpp"
#include "rt/observer.hpp"
#include "rt/runtime.hpp"
#include "rt/scheduler.hpp"
#include "rt/task_graph.hpp"
#include "rt/worker.hpp"
#include "sim/rng.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/overhead.hpp"

namespace ilan::rt {

struct TeamParams {
  CostParams costs;
};

// Thrown when a run's simulated time crosses the watchdog deadline with
// work still pending: a runaway configuration (or a fault scenario the
// scheduler failed to absorb) is aborted instead of simulated forever. The
// bench harness turns this into a structured RunResult failure record.
class WatchdogTimeout : public std::runtime_error {
 public:
  WatchdogTimeout(const std::string& what, sim::SimTime deadline)
      : std::runtime_error(what), deadline_(deadline) {}
  [[nodiscard]] sim::SimTime deadline() const { return deadline_; }

 private:
  sim::SimTime deadline_;
};

class Team {
 public:
  Team(Machine& machine, Scheduler& scheduler, const TeamParams& params = {});

  Team(const Team&) = delete;
  Team& operator=(const Team&) = delete;

  // Executes one taskloop to completion in simulated time.
  // Returns the stats recorded for this execution.
  const LoopExecStats& run_taskloop(const TaskloopSpec& spec);

  // Asynchronous taskloop: performs the serial prologue (configuration
  // selection, task creation, worker wake-up) and returns WITHOUT driving
  // the engine. When the team barrier releases, the execution is recorded
  // exactly as in run_taskloop and `on_done` is invoked at the barrier
  // instant with the recorded stats. The caller owns the engine drive —
  // this is what lets several Teams share one engine (the serving layer
  // runs one job per tenant concurrently, src/serve/). The Team must
  // outlive the completion callback.
  using LoopDoneFn = std::function<void(const LoopExecStats&)>;
  void start_taskloop(const TaskloopSpec& spec, LoopDoneFn on_done);

  // Executes one task graph (rt/task_graph.hpp) to completion in simulated
  // time. The graph's roots are placed serially in the prologue; a node
  // becomes ready when its last predecessor finishes, at which point the
  // scheduler's place_ready hook assigns it a deque and parked workers are
  // woken (sim::kTagDagRelease events). Records a LoopExecStats exactly as
  // a taskloop with one unit iteration per node would.
  const LoopExecStats& run_taskgraph(const TaskGraphSpec& graph);

  // Asynchronous task graph, mirroring start_taskloop's prologue/finalize
  // split: the serial prologue (configuration selection, root placement,
  // worker wake-up) runs here, the caller drives the engine, and `on_done`
  // fires at the final barrier instant with the recorded stats.
  void start_taskgraph(const TaskGraphSpec& graph, LoopDoneFn on_done);

  // Executes a serial section on worker 0 (between taskloops).
  void serial_compute(double cpu_cycles,
                      std::span<const mem::AccessDescriptor> accesses = {});

  // --- accessors used by schedulers -------------------------------------
  [[nodiscard]] Machine& machine() { return machine_; }
  [[nodiscard]] const topo::Topology& topology() const { return machine_.topology(); }
  [[nodiscard]] CostModel& costs() { return costs_; }
  [[nodiscard]] sim::Xoshiro256ss& rng() { return rng_; }
  [[nodiscard]] int num_workers() const { return static_cast<int>(workers_.size()); }
  [[nodiscard]] Worker& worker(int i) { return workers_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] const Worker& worker(int i) const {
    return workers_.at(static_cast<std::size_t>(i));
  }
  [[nodiscard]] std::vector<Worker>& workers() { return workers_; }

  // Workers of one NUMA node (dense worker ids == core ids).
  [[nodiscard]] std::span<const int> node_workers(topo::NodeId n) const;

  // True when no deque on node `n` holds a task (the paper's "fully idle"
  // precondition for inter-node migration).
  [[nodiscard]] bool node_queues_empty(topo::NodeId n) const;

  void note_steal(bool remote);
  // A steal permitted only by health-aware escalation (reactive fallback
  // raiding an unhealthy node under a strict policy). Telemetry only.
  void note_escalated_steal() {
    ++steals_escalated_total_;
    if (metrics_.steal_rescue != nullptr) metrics_.steal_rescue->inc();
  }
  [[nodiscard]] std::int64_t total_escalated_steals() const {
    return steals_escalated_total_;
  }

  // Watchdog: absolute simulated-time deadline for the whole run. 0 (the
  // default) disables it. When a taskloop or serial section still has
  // pending work past the deadline, run_taskloop/serial_compute throw
  // WatchdogTimeout instead of simulating on.
  void set_deadline(sim::SimTime deadline) { deadline_ = deadline; }
  [[nodiscard]] sim::SimTime deadline() const { return deadline_; }

  // Loop currently executing (nullptr outside run_taskloop) and its config.
  [[nodiscard]] const TaskloopSpec* current_loop() const { return cur_spec_; }
  [[nodiscard]] const LoopConfig& current_config() const { return cur_cfg_; }
  // Task graph currently executing (nullptr outside run_taskgraph /
  // start_taskgraph; on the graph path current_loop() is the synthetic
  // one-iteration-per-node spec the graph's tasks point at).
  [[nodiscard]] const TaskGraphSpec* current_graph() const { return cur_graph_; }

  // --- program-level results ---------------------------------------------
  [[nodiscard]] const std::vector<LoopExecStats>& history() const { return history_; }
  [[nodiscard]] trace::OverheadTracker& overhead() { return overhead_; }
  [[nodiscard]] sim::SimTime now() const { return machine_.engine().now(); }

  // Sum over history of wall times (the tasking portion of a program).
  [[nodiscard]] sim::SimTime total_loop_time() const;

  // Weighted average thread count (weights = loop wall time) — Figure 3.
  [[nodiscard]] double weighted_avg_threads() const;

  // Attach a Chrome-trace collector: every task execution and loop boundary
  // is recorded (see trace/chrome_trace.hpp). Pass nullptr to detach.
  void set_tracer(trace::ChromeTraceWriter* tracer) { tracer_ = tracer; }
  // Schedulers use this to add their own instant markers (PTT decisions).
  [[nodiscard]] trace::ChromeTraceWriter* tracer() const { return tracer_; }

  // Attach a task-lifecycle observer (see rt/observer.hpp) — the hook the
  // correctness auditors use. Pass nullptr to detach.
  void set_observer(TaskObserver* observer) { observer_ = observer; }
  [[nodiscard]] TaskObserver* observer() const { return observer_; }

 private:
  // Marks workers active per the config: nodes in the mask contribute cores
  // in order until num_threads workers are active.
  void activate_workers(const LoopConfig& cfg);
  // Throws when an execution is already active on this team, naming the
  // actual state: an in-flight asynchronous execution (start_taskloop /
  // start_taskgraph not yet completed) vs true nesting inside a blocking
  // run. `what` names the attempted operation for the diagnostic.
  void ensure_quiescent(const char* what) const;
  // Shared prologue of run_taskloop/start_taskloop: steps (1)-(3).
  void begin_taskloop(const TaskloopSpec& spec);
  // Shared prologue of run_taskgraph/start_taskgraph: builds the readiness
  // state (indegrees + CSR successor lists), places the roots serially and
  // wakes the workers.
  void begin_taskgraph(const TaskGraphSpec& graph);
  // Step (1) shared by both paths: loop markers, configuration selection
  // with mask/thread fill-ins, worker activation and the loop-begin
  // observer hook. Returns the serial time accumulated so far.
  sim::SimTime begin_prologue(const TaskloopSpec& spec);
  // Step (3) shared by both paths: wakes every active worker at
  // loop_start_ + serial (worker 0 immediately, the rest after the wake
  // signalling latency).
  void launch_workers(sim::SimTime serial);
  // Graph path: records where `task`'s node executed, decrements successor
  // ready counts, places newly-ready nodes via the scheduler's place_ready
  // hook and wakes parked workers (kTagDagRelease).
  void release_dag_successors(const Task& task, const Worker& w);
  // Step (4): records the finished execution into history_ and fires the
  // observer + scheduler end-of-loop hooks. Returns the recorded stats.
  const LoopExecStats& finalize_loop();
  // Drives the engine to completion or the watchdog deadline; throws
  // WatchdogTimeout if regular events still pend past the deadline.
  void run_engine(const char* what);
  void worker_seek(int wid);
  void start_task(int wid, const Task& task);
  void finish_task(int wid, const Task& task, sim::SimTime exec_start);
  void begin_loop_end();
  // Barrier-release event body: no-op in blocking mode, records + notifies
  // in async mode.
  void on_barrier_release();

  // Metric handles cached once at construction from the machine's registry
  // (all nullptr when none is attached). Caching keeps instrumentation sites
  // to a pointer test + increment — cheap enough to leave always compiled in.
  struct TeamMetrics {
    obs::Counter* loops = nullptr;
    obs::Counter* tasks = nullptr;
    obs::Counter* steal_intra = nullptr;
    obs::Counter* steal_cross = nullptr;
    obs::Counter* steal_rescue = nullptr;
    obs::Counter* watchdog_trips = nullptr;
    obs::Histogram* deque_occupancy = nullptr;
    obs::Histogram* loop_threads = nullptr;
  };

  Machine& machine_;
  Scheduler& scheduler_;
  TeamMetrics metrics_;
  trace::OverheadTracker overhead_;
  CostModel costs_;
  sim::Xoshiro256ss rng_;
  std::vector<Worker> workers_;
  std::vector<std::vector<int>> workers_by_node_;

  // Current-loop state.
  const TaskloopSpec* cur_spec_ = nullptr;
  LoopConfig cur_cfg_;
  // Task-graph state (cur_graph_ null outside a graph execution). The
  // synthetic spec gives the graph's unit tasks a TaskloopSpec to point at,
  // so the task start/finish machinery, tracer and observers apply
  // verbatim; node i is the task [i, i+1).
  const TaskGraphSpec* cur_graph_ = nullptr;
  TaskloopSpec graph_loop_;
  std::vector<std::int32_t> dag_indegree_;
  std::vector<std::int32_t> dag_succ_;      // CSR successor lists
  std::vector<std::int32_t> dag_succ_off_;  // size num_nodes + 1
  std::vector<topo::NodeId> dag_exec_node_;   // node each finished task ran on
  std::vector<topo::NodeId> dag_pred_nodes_;  // scratch for place_ready
  std::int64_t remaining_tasks_ = 0;
  bool loop_done_ = true;
  sim::SimTime loop_start_ = 0;
  sim::SimTime loop_end_ = 0;
  std::int64_t steals_local_ = 0;
  std::int64_t steals_remote_ = 0;
  std::int64_t tasks_total_ = 0;
  std::int64_t steals_escalated_total_ = 0;
  mem::TrafficStats traffic_before_;
  sim::SimTime config_select_charged_ = 0;
  sim::SimTime deadline_ = 0;  // 0 = watchdog off

  std::vector<LoopExecStats> history_;
  trace::ChromeTraceWriter* tracer_ = nullptr;
  TaskObserver* observer_ = nullptr;
  // Async completion hook (start_taskloop). Empty in blocking mode, where
  // run_taskloop records the execution after the engine drains instead.
  LoopDoneFn on_loop_done_;
};

}  // namespace ilan::rt
