// Circuit breaker for the serving layer's quarantine machinery.
//
// Classic three-state breaker over simulated time, with no events of its
// own: state transitions happen lazily when the server consults it, so a
// breaker never perturbs the engine's event stream. Closed admits and
// counts consecutive failures; `threshold` consecutive failures trip it
// Open, which rejects everything for a cooldown; after the cooldown the
// next `allow()` becomes the single Half-Open probe. The probe's outcome
// decides: success closes the breaker (counters reset), failure re-opens
// it with the cooldown doubled (capped at 8x) so a persistently failing
// tenant or node is probed at a decaying rate. Deterministic: every
// decision is a pure function of the feedback sequence and `now`.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>

#include "sim/time.hpp"

namespace ilan::serve {

class Breaker {
 public:
  enum class State : std::uint8_t { kClosed, kOpen, kHalfOpen };

  Breaker() = default;
  Breaker(int threshold, sim::SimTime cooldown)
      : threshold_(threshold), base_cooldown_(cooldown), cooldown_(cooldown) {
    if (threshold < 1) throw std::invalid_argument("Breaker: threshold must be >= 1");
    if (cooldown <= 0) throw std::invalid_argument("Breaker: cooldown must be > 0");
  }

  // Current state, resolving an expired cooldown to Half-Open.
  [[nodiscard]] State state(sim::SimTime now) const {
    if (state_ == State::kOpen && now >= open_until_) return State::kHalfOpen;
    return state_;
  }

  // Admission check. Closed: admit. Half-Open: admit exactly one in-flight
  // probe, reject the rest. Open: reject.
  [[nodiscard]] bool allow(sim::SimTime now) {
    switch (state(now)) {
      case State::kClosed: return true;
      case State::kOpen: return false;
      case State::kHalfOpen:
        if (state_ == State::kOpen) {  // cooldown just expired: latch
          state_ = State::kHalfOpen;
          probe_outstanding_ = false;
        }
        if (probe_outstanding_) return false;
        probe_outstanding_ = true;
        return true;
    }
    return false;
  }

  void on_success(sim::SimTime /*now*/) {
    state_ = State::kClosed;
    probe_outstanding_ = false;
    failures_ = 0;
    cooldown_ = base_cooldown_;  // recovery restores the probing cadence
  }

  void on_failure(sim::SimTime now) {
    if (state_ == State::kHalfOpen) {
      // The probe failed: straight back to Open, probe less often.
      cooldown_ = std::min(cooldown_ * 2, base_cooldown_ * 8);
      trip(now);
      return;
    }
    if (state_ == State::kOpen) return;  // already quarantined
    if (++failures_ >= threshold_) trip(now);
  }

  [[nodiscard]] std::int64_t trips() const { return trips_; }
  [[nodiscard]] sim::SimTime open_until() const { return open_until_; }

 private:
  void trip(sim::SimTime now) {
    state_ = State::kOpen;
    open_until_ = now + cooldown_;
    probe_outstanding_ = false;
    failures_ = 0;
    ++trips_;
  }

  int threshold_ = 4;
  sim::SimTime base_cooldown_ = sim::from_ms(20);
  sim::SimTime cooldown_ = sim::from_ms(20);
  State state_ = State::kClosed;
  sim::SimTime open_until_ = 0;
  bool probe_outstanding_ = false;
  int failures_ = 0;
  std::int64_t trips_ = 0;
};

}  // namespace ilan::serve
