// Multi-tenant serving layer: admission control, deadlines, load shedding
// and circuit-breaker quarantine over the shared simulation engine.
//
// A Server carves the machine's NUMA nodes between tenants (largest-
// remainder split by tenant weight), gives each tenant its own registry
// scheduler wrapped in a mask-confining adapter and its own rt::Team, and
// replays a TrafficSpec's open-loop arrival schedule as engine events.
// Tenants run at most one job at a time (a job = one scaled-down kernel
// program); concurrent tenants interleave on the one engine and contend
// in the shared memory system, so co-runner interference now comes from
// other tenants rather than injected fault streams.
//
// Robustness machinery, all deterministic in simulated time:
//   * per-request absolute deadlines, enforced by a daemon watchdog event
//     (kTagServeDeadline) — a miss is a structured Outcome, never a crash;
//   * queue-depth- and deadline-aware admission: a full tenant queue or a
//     backlog that already implies an SLO violation sheds the request;
//   * shed requests retry after core::Backoff's seeded jittered
//     exponential delay (kTagServeRetry), bounded by max_retries and by
//     the request's own deadline;
//   * circuit breakers quarantine failing tenants (admission-side) and
//     failing nodes (placement-side, mirrored into rt::NodeHealth so the
//     schedulers' PR-3 degradation paths see breaker quarantines exactly
//     like fault demotions), with half-open probes before readmission.
//
// Everything the layer does is a pure function of (traffic spec, machine
// seed, params): selfcheck extends its 2-run and jobs-parity digest
// checks over serve mode unchanged.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/backoff.hpp"
#include "rt/runtime.hpp"
#include "rt/task.hpp"
#include "serve/breaker.hpp"
#include "serve/traffic.hpp"

namespace ilan::serve {

// Terminal disposition of one request. Shed/backoff events are not
// terminal (the request may still succeed on retry); a request whose
// retries are exhausted or whose deadline passed while shed ends kDropped.
enum class Outcome : std::uint8_t {
  kOk,            // completed within its deadline
  kDeadlineMiss,  // completed, but past the deadline watchdog
  kExpired,       // deadline passed while queued — never dispatched
  kDropped,       // shed and out of retry budget (or no time left to retry)
};

[[nodiscard]] const char* to_string(Outcome o);

struct ServeParams {
  int queue_cap = 8;            // per-tenant pending-queue depth
  int max_retries = 3;          // backoff retries per shed request
  int breaker_threshold = 4;    // consecutive failures tripping a breaker
  double breaker_cooldown_s = 0.05;  // open -> half-open (simulated)
  core::BackoffParams backoff;  // shed-retry delay policy
  double ewma_alpha = 0.3;      // service-time estimator smoothing
};

struct TenantStats {
  std::string name;
  double weight = 1.0;
  std::uint64_t carve_bits = 0;  // NodeMask the tenant was carved
  std::int64_t offered = 0;      // arrivals (first attempts only)
  std::int64_t admitted = 0;     // enqueued admissions (incl. retries)
  std::int64_t completed = 0;    // jobs run to completion
  std::int64_t ok = 0;           // completed within deadline
  std::int64_t deadline_miss = 0;
  std::int64_t shed_queue = 0;   // shed: queue full
  std::int64_t shed_slo = 0;     // shed: backlog implies deadline violation
  std::int64_t shed_breaker = 0; // shed: tenant breaker open
  std::int64_t expired = 0;
  std::int64_t dropped = 0;
  std::int64_t retries = 0;      // backoff retries scheduled
  std::int64_t breaker_trips = 0;
  std::vector<double> latencies_s;  // ok requests only, arrival -> completion
};

struct ServeReport {
  std::string scenario;
  std::string sched_spec;
  double duration_s = 0.0;  // simulated makespan of the whole run
  std::vector<TenantStats> tenants;

  // Aggregates over tenants, filled by finalize().
  std::int64_t offered = 0, admitted = 0, completed = 0, ok = 0;
  std::int64_t deadline_miss = 0, shed_queue = 0, shed_slo = 0, shed_breaker = 0;
  std::int64_t expired = 0, dropped = 0, retries = 0;
  std::int64_t tenant_trips = 0, node_trips = 0;
  double p50_s = 0.0, p99_s = 0.0, p999_s = 0.0;
  double goodput_rps = 0.0;  // ok completions per simulated second
  // Fraction of offered requests that did not complete within deadline:
  // 1 - ok/offered (0 when nothing was offered). The serve_slo_gate floor
  // applies to this under the nominal scenario.
  double shed_rate = 0.0;
  // Jain fairness over per-tenant weight-normalized goodput; 1 = ideal.
  double fairness = 1.0;

  void finalize();
};

// Nearest-rank percentile of an unsorted sample (p in [0, 1]); 0 on empty.
[[nodiscard]] double percentile(std::vector<double> sample, double p);

class Server {
 public:
  // `default_sched` substitutes every tenant whose TenantSpec.sched_spec
  // is empty. The machine must outlive the server; attach metrics to the
  // machine BEFORE constructing the server (handles are cached).
  Server(rt::Machine& machine, const TrafficSpec& traffic,
         const ServeParams& params, const std::string& default_sched);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Realizes the arrival schedule from the machine's seed and drives the
  // engine until every request reached a terminal outcome. One-shot.
  ServeReport run();

  // Placement mask for a tenant right now: its carve minus breaker-open
  // and health-offline nodes, falling back to the full carve when the
  // subtraction would leave nothing. Consulted by the per-tenant mask
  // adapter on every config selection.
  [[nodiscard]] rt::NodeMask placement_mask(int tenant) const;

 private:
  struct Tenant;
  struct ServeMetrics;

  void on_arrival();
  void admit(const Request& r);
  void retry_or_drop(const Request& r);
  void enqueue(const Request& r, bool probe);
  void dispatch(int tenant);
  void start_job(int tenant, const Request& r, bool probe);
  void advance_job(int tenant);
  void finish_job(int tenant);
  void on_deadline(int tenant, int request_id);
  void tenant_feedback(int tenant, bool failed);
  void node_feedback(const rt::NodeMask& used, bool failed);
  void sync_node_health();
  [[nodiscard]] double backlog_estimate_s(const Tenant& t) const;
  kernels::Program& program(int tenant, int cls);

  rt::Machine& machine_;
  TrafficSpec traffic_;
  ServeParams params_;
  std::string default_sched_;
  std::vector<std::unique_ptr<Tenant>> tenants_;
  std::vector<Request> schedule_;
  std::size_t next_arrival_ = 0;
  std::vector<Breaker> node_breakers_;
  std::vector<bool> health_owned_;  // nodes we demoted (vs the fault layer)
  std::int64_t node_trips_ = 0;
  std::unique_ptr<ServeMetrics> metrics_;
  sim::SimTime t0_ = 0;
  bool ran_ = false;
};

}  // namespace ilan::serve
