#include "serve/traffic.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/rng.hpp"

namespace ilan::serve {

const char* to_string(ArrivalProcess p) {
  switch (p) {
    case ArrivalProcess::kPoisson: return "poisson";
    case ArrivalProcess::kBursty: return "bursty";
    case ArrivalProcess::kDiurnal: return "diurnal";
  }
  return "?";
}

namespace {

constexpr double kBurstyDuty = 0.3;     // fraction of the period in-burst
constexpr double kBurstyTrough = 0.25;  // off-phase rate multiplier

// Rate multiplier at time `t_s`, relative to the tenant's base rate.
double rate_factor(const TrafficSpec& spec, double t_s) {
  switch (spec.process) {
    case ArrivalProcess::kPoisson: return 1.0;
    case ArrivalProcess::kBursty:
      return std::fmod(t_s, spec.period_s) < kBurstyDuty * spec.period_s
                 ? spec.burst_factor
                 : kBurstyTrough;
    case ArrivalProcess::kDiurnal:
      return 1.0 + (spec.burst_factor - 1.0) * 0.5 *
                       (1.0 + std::sin(2.0 * 3.141592653589793 * t_s / spec.period_s));
  }
  return 1.0;
}

double peak_factor(const TrafficSpec& spec) {
  return spec.process == ArrivalProcess::kPoisson ? 1.0 : spec.burst_factor;
}

RequestClass cls(std::string kernel, int timesteps, double size, double weight,
                 double deadline_s) {
  RequestClass c;
  c.kernel = std::move(kernel);
  c.opts.timesteps = timesteps;
  c.opts.size_factor = size;
  c.weight = weight;
  c.deadline_s = deadline_s;
  return c;
}

}  // namespace

const std::vector<std::string>& scenario_names() {
  static const std::vector<std::string> names = {"nominal", "burst", "overload"};
  return names;
}

TrafficSpec make_scenario(const std::string& name) {
  TrafficSpec spec;
  spec.name = name;
  // Class sizes and deadlines are calibrated against measured simulated
  // service times on the zen4 paper machine under a two-tenant 4+4 carve:
  // cg@0.03 ~2 ms (p99 ~4 ms), sp@0.03 ~8 ms (p99 ~16 ms), cg@0.05 ~11 ms
  // (p99 ~22 ms), matmul@any ~74 ms (dimension floor dominates size_factor).
  if (name == "nominal") {
    // Two equal tenants, steady Poisson traffic comfortably below the
    // carve capacity with deadlines ~3x the contended p99: the
    // serve_slo_gate shed-rate floor and p99 bound apply here.
    spec.process = ArrivalProcess::kPoisson;
    spec.duration_s = 0.40;
    spec.tenants = {{"alpha", 40.0, 1.0, ""}, {"beta", 40.0, 1.0, ""}};
    spec.classes = {cls("cg", 1, 0.03, 2.0, 0.030),
                    cls("sp", 1, 0.03, 1.0, 0.050),
                    cls("cg", 1, 0.05, 1.0, 0.060)};
  } else if (name == "burst") {
    // Three tenants, on-off bursts whose peaks transiently exceed the
    // (smaller, 4+2+2) carve capacity: the queue-depth and deadline-aware
    // shed paths engage during bursts and drain between them, and shed
    // requests retried into a trough succeed.
    spec.process = ArrivalProcess::kBursty;
    spec.duration_s = 0.40;
    spec.burst_factor = 5.0;
    spec.period_s = 0.08;
    spec.tenants = {{"alpha", 60.0, 2.0, ""},
                    {"beta", 60.0, 1.0, ""},
                    {"gamma", 30.0, 1.0, ""}};
    spec.classes = {cls("cg", 1, 0.03, 3.0, 0.030),
                    cls("sp", 1, 0.03, 1.0, 0.070)};
  } else if (name == "overload") {
    // Sustained offered load far beyond capacity mixing a feasible class
    // with a hopeless one (matmul's ~74 ms floor against a 30 ms
    // deadline): shedding is continuous, and the repeated SLO failures
    // trip the tenant circuit breakers, whose half-open probes keep
    // failing into doubled cooldowns (the acceptance scenario for both
    // mechanisms).
    spec.process = ArrivalProcess::kDiurnal;
    spec.duration_s = 0.40;
    spec.burst_factor = 3.0;
    spec.period_s = 0.20;
    spec.tenants = {{"alpha", 250.0, 1.0, ""}, {"beta", 250.0, 1.0, ""}};
    spec.classes = {cls("cg", 1, 0.03, 3.0, 0.020),
                    cls("matmul", 1, 0.02, 1.0, 0.030)};
  } else {
    throw std::invalid_argument("serve: unknown scenario '" + name +
                                "' (nominal, burst, overload)");
  }
  return spec;
}

std::vector<Request> generate(const TrafficSpec& spec, std::uint64_t seed) {
  if (spec.tenants.empty()) throw std::invalid_argument("serve: spec needs tenants");
  if (spec.classes.empty()) throw std::invalid_argument("serve: spec needs classes");
  if (spec.duration_s <= 0.0) throw std::invalid_argument("serve: spec needs duration");
  double total_weight = 0.0;
  for (const auto& c : spec.classes) {
    if (c.weight <= 0.0) throw std::invalid_argument("serve: class weights must be > 0");
    total_weight += c.weight;
  }

  // Per-tenant thinning: draw a homogeneous stream at the peak rate, keep
  // each arrival with probability rate(t)/peak. Each tenant owns an
  // independent substream, so adding a tenant never perturbs the others'
  // schedules.
  std::vector<Request> out;
  const double peak_mult = peak_factor(spec);
  for (int ti = 0; ti < static_cast<int>(spec.tenants.size()); ++ti) {
    const TenantSpec& tenant = spec.tenants[static_cast<std::size_t>(ti)];
    if (tenant.rate_hz <= 0.0) {
      throw std::invalid_argument("serve: tenant rate must be > 0");
    }
    sim::Xoshiro256ss rng =
        sim::Xoshiro256ss(seed).split(0xA441u + static_cast<std::uint64_t>(ti));
    const double peak_hz = tenant.rate_hz * peak_mult;
    double t_s = 0.0;
    int local = 0;
    while (true) {
      t_s += -std::log(1.0 - rng.uniform()) / peak_hz;
      if (t_s >= spec.duration_s) break;
      const bool keep = rng.uniform() * peak_mult <= rate_factor(spec, t_s);
      // Class pick consumes a draw either way so thinning never shifts
      // the class sequence of later arrivals.
      double w = rng.uniform() * total_weight;
      int ci = 0;
      for (; ci + 1 < static_cast<int>(spec.classes.size()); ++ci) {
        w -= spec.classes[static_cast<std::size_t>(ci)].weight;
        if (w < 0.0) break;
      }
      if (!keep) continue;
      Request r;
      r.tenant = ti;
      r.cls = ci;
      r.arrival = sim::from_seconds(t_s);
      r.deadline =
          r.arrival +
          sim::from_seconds(spec.classes[static_cast<std::size_t>(ci)].deadline_s);
      r.id = local++;  // per-tenant index until the merge assigns dense ids
      out.push_back(r);
    }
  }

  std::sort(out.begin(), out.end(), [](const Request& a, const Request& b) {
    if (a.arrival != b.arrival) return a.arrival < b.arrival;
    if (a.tenant != b.tenant) return a.tenant < b.tenant;
    return a.id < b.id;
  });
  if (static_cast<int>(out.size()) > spec.max_requests) {
    out.resize(static_cast<std::size_t>(spec.max_requests));
  }
  for (int i = 0; i < static_cast<int>(out.size()); ++i) {
    out[static_cast<std::size_t>(i)].id = i;
  }
  return out;
}

}  // namespace ilan::serve
